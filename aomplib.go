// Package aomplib is a Go reproduction of AOmpLib (Medeiros & Sobral,
// ICPP 2013): an aspect-oriented library of pluggable parallelism modules
// that mimics the OpenMP standard. Base programs register their externally
// visible methods as joinpoints; aspect modules — parallel regions, for
// work-sharing, barriers, critical sections, tasks, thread-local fields,
// reductions and more — are bound to those joinpoints by pointcut
// expressions or annotations and woven in (or unplugged) at any time,
// preserving the base program's sequential semantics.
//
// A minimal parallel loop:
//
//	prog := aomplib.NewProgram("demo")
//	cls := prog.Class("Demo")
//	loop := cls.ForProc("loop", func(lo, hi, step int) {
//		for i := lo; i < hi; i += step {
//			work(i)
//		}
//	})
//	run := cls.Proc("run", func() { loop(0, n, 1) })
//
//	prog.Use(aomplib.ParallelRegion("call(* Demo.run(..))").Threads(8))
//	prog.Use(aomplib.ForShare("call(* Demo.loop(..))"))
//	prog.MustWeave()
//	run()          // parallel
//	prog.Unweave()
//	run()          // sequential again
//
// The same composition in the annotation style:
//
//	prog.MustAnnotate("Demo.run", aomplib.Parallel{Threads: 8})
//	prog.MustAnnotate("Demo.loop", aomplib.For{})
//	prog.Use(aomplib.AnnotationAspects(prog)...)
//	prog.MustWeave()
//
// This package is a thin facade over the implementation packages
// (internal/weaver, internal/core, internal/rt, internal/sched,
// internal/pointcut); see DESIGN.md for the architecture and the mapping
// to the paper.
//
// For call sites that want a parallel loop, reduction, sort or pipeline
// without registering joinpoints, the sibling package aomplib/parallel is
// a generic (type-parameterized) algorithms layer on the same runtime —
// both styles share the hot-team pool, the loop schedules, admission
// control and tracing, and compose freely: a parallel.For inside a woven
// region decomposes onto the current team.
package aomplib

import (
	"aomplib/internal/core"
	"aomplib/internal/obs"
	"aomplib/internal/pointcut"
	"aomplib/internal/rt"
	"aomplib/internal/sched"
	"aomplib/internal/weaver"
)

// ------------------------------------------------ programs & joinpoints --

// Program is a base program's joinpoint registry plus its deployed
// aspects (the analogue of an AspectJ build).
type Program = weaver.Program

// Class is a declaring scope for joinpoints, carrying inheritance and
// interface metadata for pointcut matching.
type Class = weaver.Class

// Joinpoint identifies one registered method.
type Joinpoint = weaver.Joinpoint

// Call is the reified invocation flowing through advice chains.
type Call = weaver.Call

// HandlerFunc is one stage of a woven chain.
type HandlerFunc = weaver.HandlerFunc

// Advice is one parallelism mechanism applicable to joinpoints.
type Advice = weaver.Advice

// Aspect is a deployable module of pointcut→advice bindings.
type Aspect = weaver.Aspect

// Binding attaches advice to the joinpoints selected by a matcher.
type Binding = weaver.Binding

// Matcher selects joinpoints (pointcuts or exact matchers).
type Matcher = weaver.Matcher

// SimpleAspect is a convenience aspect for ad-hoc modules.
type SimpleAspect = weaver.SimpleAspect

// Annotation is the plain-annotation analogue attached via
// Program.Annotate.
type Annotation = weaver.Annotation

// WovenMethod describes one method's weave state in reports.
type WovenMethod = weaver.WovenMethod

// AdviceInfo is the per-advice detail in a weave report: deploying aspect,
// advice name, matching pointcut and current gate state.
type AdviceInfo = weaver.AdviceInfo

// ProgramOpt configures a Program at creation (see Ungated).
type ProgramOpt = weaver.ProgramOpt

// Ungated builds advice chains without per-advice enable gates — the
// ablation baseline for measuring gate cost. Ungated programs cannot use
// Program.SetAdviceEnabled.
var Ungated = weaver.Ungated

// StaticPlan is a frozen snapshot of a program's weave, embedded by the
// static-weave backend (cmd/weavegen) and re-verified at bind time with
// Program.VerifyPlan.
type StaticPlan = weaver.StaticPlan

// PlannedMethod is one method's weave state inside a StaticPlan.
type PlannedMethod = weaver.PlannedMethod

// PlannedAdvice identifies one applied advice inside a PlannedMethod.
type PlannedAdvice = weaver.PlannedAdvice

// NewProgram creates an empty program registry.
func NewProgram(name string, opts ...ProgramOpt) *Program {
	return weaver.NewProgram(name, opts...)
}

// Implements declares interfaces a class implements (class option).
var Implements = weaver.Implements

// Extends declares a superclass (class option).
var Extends = weaver.Extends

// Exact returns a matcher selecting a single joinpoint by identity.
var Exact = weaver.Exact

// ------------------------------------------------------------ pointcuts --

// Pointcut is a compiled pointcut expression.
type Pointcut = pointcut.Pointcut

// ParsePointcut compiles a pointcut expression such as
// "call(* Linpack.reduceAllCols(..)) || within(MD)".
var ParsePointcut = pointcut.Parse

// MustParsePointcut is ParsePointcut panicking on error.
var MustParsePointcut = pointcut.MustParse

// ------------------------------------------------------------ schedules --

// Schedule selects a for work-sharing policy.
type Schedule = sched.Kind

// Work-sharing schedules (paper Table 1: staticBlock, staticCyclic,
// dynamic; guided, steal, auto, runtime and case-specific are the
// documented extensions). Auto picks StaticBlock or Guided per encounter
// from the trip count and team size, then re-tunes re-encounters of the
// same construct from the imbalance the previous encounter measured;
// Runtime resolves to the process-wide default set with
// SetDefaultSchedule (the OMP_SCHEDULE analogue). Steal carves one
// contiguous range per worker and lets workers that run dry steal half a
// loaded sibling's remainder (the nonmonotonic:dynamic analogue):
// dynamic-grade balancing with static-grade dispensing cost.
// WeightedSteal is Steal made asymmetry-aware: initial ranges are carved
// proportionally to each worker's measured speed (an EWMA trained on the
// hot team across loop encounters) and thieves pick the most-loaded
// victim, so slow workers — efficiency cores, throttled cores, noisy
// neighbours — are handed less work up front instead of being bailed out
// chunk by chunk. Adaptive is the fully feedback-driven kind: every
// encounter of the construct re-decides kind and chunk from the last
// encounter's measured imbalance, starting from WeightedSteal.
const (
	StaticBlock   = sched.StaticBlock
	StaticCyclic  = sched.StaticCyclic
	Dynamic       = sched.Dynamic
	Guided        = sched.Guided
	Steal         = sched.Steal
	CaseSpecific  = sched.Custom
	Auto          = sched.Auto
	Runtime       = sched.Runtime
	WeightedSteal = sched.WeightedSteal
	Adaptive      = sched.Adaptive
)

// ParseSchedule resolves a schedule name ("staticBlock", "dynamic",
// "auto", ...) to its Schedule, erroring with the valid list on unknown
// names — the parser behind benchmark flags like jgfbench -schedule.
var ParseSchedule = sched.ParseKind

// SetDefaultSchedule sets the process-wide schedule that @For constructs
// declared with the Runtime kind resolve to. It returns the previous
// default; Runtime and CaseSpecific are rejected.
var SetDefaultSchedule = core.SetDefaultSchedule

// DefaultSchedule returns the process-wide default schedule.
var DefaultSchedule = core.DefaultSchedule

// ScheduleFunc is the case-specific schedule extension point.
type ScheduleFunc = sched.ScheduleFunc

// Space is a loop iteration space (start, end, step).
type Space = sched.Space

// ------------------------------------------------- aspect constructors --

// ParallelRegion makes matched methods parallel regions (@Parallel).
var ParallelRegion = core.ParallelRegion

// ForShare applies the for work-sharing construct to matched for methods
// (@For).
var ForShare = core.ForShare

// TaskSpawn spawns matched methods as new activities (@Task). Attach
// dependence clauses with .Depend (@Depend).
var TaskSpawn = core.TaskSpawn

// TaskWaitPoint makes matched methods join points for spawned activities
// (@TaskWait).
var TaskWaitPoint = core.TaskWaitPoint

// TaskGroupSection scopes matched methods as task groups (@TaskGroup):
// the method joins every task spawned in its dynamic extent before
// returning.
var TaskGroupSection = core.TaskGroupSection

// TaskLoopShare decomposes matched for methods into deferred,
// work-stealable tasks (@TaskLoop).
var TaskLoopShare = core.TaskLoopShare

// FutureTaskSpawn runs matched value-returning methods asynchronously
// behind a Future (@FutureTask). Attach dependence clauses with .Depend.
var FutureTaskSpawn = core.FutureTaskSpawn

// OrderedSection serialises matched keyed methods in iteration order
// (@Ordered).
var OrderedSection = core.OrderedSection

// CriticalSection enforces mutual exclusion on matched methods
// (@Critical).
var CriticalSection = core.CriticalSection

// BarrierBeforePoint inserts a team barrier before matched methods
// (@BarrierBefore).
var BarrierBeforePoint = core.BarrierBeforePoint

// BarrierAfterPoint inserts a team barrier after matched methods
// (@BarrierAfter).
var BarrierAfterPoint = core.BarrierAfterPoint

// BarrierAroundPoint inserts barriers on both sides of matched methods.
var BarrierAroundPoint = core.BarrierAroundPoint

// ReadersWriter builds a readers/writer aspect (@Reader/@Writer).
var ReadersWriter = core.ReadersWriter

// SingleSection lets one worker execute each encounter (@Single).
var SingleSection = core.SingleSection

// MasterSection restricts matched methods to the master (@Master).
var MasterSection = core.MasterSection

// NewThreadLocal makes matched accessors return per-thread values
// (@ThreadLocalField).
var NewThreadLocal = core.NewThreadLocal

// ReducePoint merges thread-local copies into the global value at matched
// methods (@Reduce).
var ReducePoint = core.ReducePoint

// Around builds a case-specific aspect from a raw advice function.
var Around = core.Around

// Compose aggregates aspects into one module (combined constructs).
var Compose = core.Compose

// AnnotationAspects translates a program's annotations into concrete
// aspects (the annotation style of paper Fig. 5).
var AnnotationAspects = core.AnnotationAspects

// Aspect types returned by the constructors, for callers that configure
// them across statements.
type (
	// ParallelRegionAspect is ParallelRegion's aspect type.
	ParallelRegionAspect = core.ParallelRegionAspect
	// ForAspect is ForShare's aspect type.
	ForAspect = core.ForAspect
	// CriticalAspect is CriticalSection's aspect type.
	CriticalAspect = core.CriticalAspect
	// TaskAspect is TaskSpawn's aspect type (carries .Depend).
	TaskAspect = core.TaskAspect
	// FutureTaskAspect is FutureTaskSpawn's aspect type (carries .Depend).
	FutureTaskAspect = core.FutureTaskAspect
	// TaskLoopAspect is TaskLoopShare's aspect type (.Grainsize/.Collapse).
	TaskLoopAspect = core.TaskLoopAspect
	// ThreadLocalAspect is NewThreadLocal's aspect type.
	ThreadLocalAspect = core.ThreadLocalAspect
	// RWAspect is ReadersWriter's aspect type.
	RWAspect = core.RWAspect
)

// ----------------------------------------------------------- annotations --

// Annotation types (paper Table 1), attached with Program.Annotate and
// realised by AnnotationAspects.
type (
	// Parallel marks a parallel region — @Parallel[(threads=n)].
	Parallel = core.Parallel
	// For marks a for method for work sharing — @For[(schedule=...)].
	For = core.For
	// Task spawns the method as a new activity — @Task.
	Task = core.Task
	// Depend orders a @Task/@FutureTask after conflicting earlier spawns —
	// @Depend(in=…, out=…, inout=…) on address keys.
	Depend = core.Depend
	// DepFn computes a dependence address from a keyed method's key at
	// spawn time (dynamic @Depend clause element).
	DepFn = core.DepFn
	// TaskGroup makes the method a scoped wait for the tasks spawned in
	// its dynamic extent — @TaskGroup.
	TaskGroup = core.TaskGroup
	// TaskLoop decomposes a for method into deferred tasks —
	// @TaskLoop[(grainsize=n)].
	TaskLoop = core.TaskLoop
	// TaskWait joins spawned activities — @TaskWait.
	TaskWait = core.TaskWait
	// FutureTask spawns a value-returning method — @FutureTask.
	FutureTask = core.FutureTask
	// Ordered serialises a keyed method in iteration order — @Ordered.
	Ordered = core.Ordered
	// Critical enforces mutual exclusion — @Critical[(id=name)].
	Critical = core.Critical
	// BarrierBefore inserts a barrier before the method.
	BarrierBefore = core.BarrierBefore
	// BarrierAfter inserts a barrier after the method.
	BarrierAfter = core.BarrierAfter
	// Reader marks a read access of a readers/writer pair — @Reader.
	Reader = core.Reader
	// Writer marks a write access of a readers/writer pair — @Writer.
	Writer = core.Writer
	// Single lets one worker execute each encounter — @Single.
	Single = core.Single
	// Master restricts execution to the master — @Master.
	Master = core.Master
	// ThreadLocalField makes an accessor thread-local — @ThreadLocalField.
	ThreadLocalField = core.ThreadLocalField
	// Reduce merges thread-local copies — @Reduce[(id=name)].
	Reduce = core.Reduce
)

// --------------------------------------------------------------- runtime --

// Future is the synchronisation object of @FutureTask methods
// (@FutureResult: Get blocks until the value is produced).
type Future = rt.Future

// ThreadID returns the caller's id within its team (the paper's
// getThreadId()), 0 outside parallel regions.
var ThreadID = core.ThreadID

// NumThreads returns the caller's team size, 1 outside regions.
var NumThreads = core.NumThreads

// InParallel reports whether the caller is inside a parallel region.
var InParallel = core.InParallel

// Level reports the parallel-region nesting depth at the caller: 0 outside
// any region, 1 inside an outermost region, and so on.
var Level = core.Level

// SetNested enables or disables nested parallel regions (the analogue of
// OMP_NESTED; enabled by default). With nesting disabled, a region entered
// from inside a team runs serialized on a single-worker inner team. It
// returns the previous setting.
var SetNested = core.SetNested

// NestedEnabled reports whether nested parallel regions spawn real teams.
var NestedEnabled = core.NestedEnabled

// TaskYield is an explicit task scheduling point: the calling worker
// executes up to n queued deferred tasks of its team (its own first, then
// stolen from siblings) and reports how many ran. Outside parallel regions
// it is a no-op — tasks spawned there run on their own goroutines.
var TaskYield = core.TaskYield

// SetDefaultThreads sets the process-wide default team size (0 restores
// the GOMAXPROCS default); it returns the previous value.
var SetDefaultThreads = core.SetDefaultThreads

// DefaultThreads returns the effective default team size.
var DefaultThreads = core.DefaultThreads

// SetHotTeams enables or disables hot teams (enabled by default): parallel
// regions lease long-lived worker teams — goroutines, deques, barrier and
// dependence tracker included — from a process-wide pool and return them
// afterwards, so region-per-iteration programs do not pay team
// construction per entry. Disabling drains the pool and restores
// spawn-and-discard teams. It returns the previous setting.
var SetHotTeams = core.SetHotTeams

// HotTeamsEnabled reports whether parallel regions reuse pooled teams.
var HotTeamsEnabled = core.HotTeamsEnabled

// SetAsymSpin installs a software model of an asymmetric multicore for
// benchmarks and tests on symmetric machines: the worker with team ID i
// executes spins[i] busy-work units per loop iteration it runs (one unit
// is one multiply-add). Workers beyond the slice, and all workers when
// spins is nil or empty, run unthrottled. The throttle applies to every
// schedule equally — it models slow hardware, not a slow schedule — so
// schedule comparisons under it are fair; it is how jgfbench -asym makes
// WeightedSteal's speed-proportional carving measurable without
// efficiency cores. Not intended for production use.
var SetAsymSpin = rt.SetAsymSpin

// SetPoolSize bounds how many workers the hot-team pool may keep parked
// between regions (0 restores the default of four default-sized teams).
// It returns the previous explicit bound.
var SetPoolSize = core.SetPoolSize

// PoolStats snapshots the hot-team pool — the observability hook for
// tuning SetPoolSize. Counter fields are cumulative since process start:
//
//   - Leases: parallel region entries (every entry leases a team);
//   - Hits: entries served by a cached pool team;
//   - Misses: entries that cold-spawned a team with hot teams enabled
//     (pool empty for that size, or nesting overflowed it);
//   - Disabled: entries that cold-spawned because hot teams were off;
//   - Recycled: clean entries that returned their team to the pool;
//   - Retired: teams destroyed after a panic or a dead worker — poisoned
//     state is never recycled;
//   - Evicted: healthy teams dropped because the pool was full, shrunk by
//     SetPoolSize, or disabled by SetHotTeams(false).
//
// Instantaneous fields describe the moment of the call: IdleTeams and
// IdleWorkers are what is parked right now, MaxIdleWorkers the current
// capacity bound. Hits+Misses+Disabled == Leases, and every lease ends in
// exactly one of Recycled, Retired or Evicted once its region completes.
var PoolStats = core.PoolStats

// TeamPoolStats is the snapshot type returned by PoolStats.
type TeamPoolStats = rt.PoolStats

// ----------------------------------------------- multi-tenant admission --

// AdmitPolicy selects what a parallel region entry does when admission
// control has no team lease slot available: block in the FIFO queue, wait
// up to a timeout, or reject immediately. Refused entries never fail —
// they degrade to serialized execution on the calling goroutine.
type AdmitPolicy = rt.AdmitPolicy

// Admission backpressure policies (SetAdmitPolicy).
const (
	AdmitBlock   = rt.AdmitBlock
	AdmitTimeout = rt.AdmitTimeout
	AdmitReject  = rt.AdmitReject
)

// SetAdmissionControl enables or disables multi-tenant admission over the
// hot-team pool (disabled by default), returning the previous setting.
// Enabled, every top-level parallel region entry first obtains a lease
// slot from a bounded controller: at most SetAdmitMaxTeams regions hold
// teams concurrently, waiters queue FIFO — so no tenant waits unboundedly
// while another monopolizes warm teams — per-tenant quotas
// (SetTenantQuota) cap concurrent occupancy, and entries refused a lease
// (reject policy, full queue, or timeout) run serialized on a pool-
// bypassing team of one instead of failing. Nested regions ride their
// top-level entry's slot and never queue. With admission off, region
// entry pays one extra atomic load — the allocation-free warm path is
// unchanged.
var SetAdmissionControl = core.SetAdmissionControl

// AdmissionEnabled reports whether top-level region entries pass through
// admission control.
var AdmissionEnabled = core.AdmissionEnabled

// SetAdmitPolicy sets the admission backpressure policy and the queue-wait
// timeout (meaningful for AdmitTimeout; 0 keeps the current one),
// returning the previous pair.
var SetAdmitPolicy = core.SetAdmitPolicy

// SetAdmitMaxTeams bounds how many top-level regions may hold teams
// concurrently (0 restores the default, which tracks the hot-team pool
// capacity in default-sized teams). It returns the previous explicit
// bound.
var SetAdmitMaxTeams = core.SetAdmitMaxTeams

// SetAdmitQueueBound bounds the admission wait queue (0 restores the
// default of rt.DefaultAdmitQueueBound waiters); entries that would
// overflow it degrade to serialized execution instead of queueing, so a
// saturated server sheds load rather than deadlocking. It returns the
// previous explicit bound.
var SetAdmitQueueBound = core.SetAdmitQueueBound

// SetTenantQuota caps how many lease slots the named tenant may hold
// concurrently (0 removes the cap), returning the previous quota. A
// tenant over its quota waits for its own releases without blocking the
// FIFO queue behind it.
var SetTenantQuota = core.SetTenantQuota

// EnterTenant binds the calling goroutine to the named tenant for
// admission accounting and returns the token; call its Exit when the
// request scope ends. Parallel regions entered in the token's scope are
// arbitrated against the tenant's quota and record their outcomes —
// Admitted, Queued, Rejected, TimedOut, Degraded — on the token, so a
// request handler can tell afterwards whether it should shed load:
//
//	tok := aomplib.EnterTenant(customerID)
//	defer tok.Exit()
//	handle(req) // woven parallel code
//	if tok.Rejected() > 0 { w.WriteHeader(http.StatusServiceUnavailable) }
var EnterTenant = core.EnterTenant

// Tenant is the per-request admission token returned by EnterTenant.
type Tenant = rt.TenantToken

// AdmissionStats snapshots the admission controller: policy and bounds,
// live queue depth and held slots, cumulative grant/reject/wait counters,
// and the per-tenant breakdown (occupancy, quota, waits) sorted by name.
var AdmissionStats = core.ReadAdmissionStats

// AdmissionSnapshot is the snapshot type returned by AdmissionStats.
type AdmissionSnapshot = rt.AdmissionStats

// TenantAdmissionStats is one tenant's slice of an AdmissionSnapshot.
type TenantAdmissionStats = rt.TenantAdmissionStats

// ------------------------------------------------------------- tracing --

// EnableTracing installs (or uninstalls) the built-in runtime tracer — an
// OMPT-style tool the runtime reports region forks, hot-team leases, task
// lifecycles, steals, barrier waits and dependence releases into — and
// returns whether it was previously installed. Enabled, the aggregate
// counters behind RuntimeStats accumulate; event buffering for timeline
// export additionally needs StartTrace. Disabled (the default), every
// emit point costs one atomic load and a predicted branch, so the
// allocation-free hot paths are unchanged.
var EnableTracing = core.EnableTracing

// TracingEnabled reports whether the built-in tracer is installed.
var TracingEnabled = core.TracingEnabled

// StartTrace begins recording runtime events into lock-free per-worker
// ring buffers, enabling the tracer if needed and discarding any previous
// trace.
var StartTrace = core.StartTrace

// StopTrace ends the recording and writes the timeline as Chrome
// trace-event JSON to the writer — load it at ui.perfetto.dev: one track
// per worker, nested region/work/task slices, barrier-wait slices, and
// flow arrows from task spawn (and dependence release) to task run.
var StopTrace = core.StopTrace

// RuntimeStats snapshots the runtime's observability counters: the
// tracer's event statistics (steals, tasks spawned/inlined, barrier wait
// nanoseconds, ...) plus the hot-team pool's lease counters and the
// admission controller's queue state. The Events slice also carries the
// ring-buffer accounting production monitors watch — RingDrops (events
// shed cumulatively across traces), TraceRings (buffers allocated) and
// WorkersFolded (workers sharing rings past the ring bound) — so a quiet
// trace is distinguishable from one that silently dropped its events.
var RuntimeStats = core.ReadRuntimeStats

// RuntimeSnapshot is the aggregate returned by RuntimeStats.
type RuntimeSnapshot = core.RuntimeSnapshot

// TraceStats is the tracer's counter snapshot (RuntimeSnapshot.Events).
type TraceStats = obs.Stats

// TraceHooks is the OMPT-style tool interface: one callback per runtime
// event (region fork/join, team lease/retire, task lifecycle, steals,
// barrier waits, dependence releases, spans). Nil entries are skipped;
// callbacks run inline on the emitting goroutine and must not block,
// allocate, or re-enter the runtime.
type TraceHooks = obs.Hooks

// TraceWorkerID identifies a worker in TraceHooks callbacks — a
// process-unique identity, stable across hot-team reuse.
type TraceWorkerID = obs.WorkerID

// NoTraceWorker marks events emitted outside any worker context.
const NoTraceWorker = obs.NoWorker

// TraceTaskKind classifies task-creation events in TraceHooks callbacks.
type TraceTaskKind = obs.TaskKind

// SetTraceHooks installs a custom tool's hook table (nil uninstalls),
// returning the previous table — the OMPT analogue of registering a tool.
// EnableTracing installs the built-in tracer through the same slot.
var SetTraceHooks = core.SetTraceHooks

// TraceSpans builds a tracing aspect: matched methods become named spans
// on the recording trace — instrumentation woven into the base program
// like any other crosscutting concern, and unplugged the same way.
var TraceSpans = core.TraceSpans

// TraceAspect is TraceSpans' aspect type.
type TraceAspect = core.TraceAspect
