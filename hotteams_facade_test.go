package aomplib_test

import (
	"sync/atomic"
	"testing"

	"aomplib"
)

// The hot-team knobs are part of the public facade: toggling, pool
// sizing and stats must round-trip, and a woven program must produce
// identical results with hot teams on and off.
func TestFacadeHotTeamKnobs(t *testing.T) {
	defer aomplib.SetHotTeams(aomplib.SetHotTeams(true))
	if !aomplib.HotTeamsEnabled() {
		t.Fatal("hot teams not enabled after SetHotTeams(true)")
	}

	prog := aomplib.NewProgram("knobs")
	var sum atomic.Int64
	loop := prog.Class("K").ForProc("loop", func(lo, hi, step int) {
		var local int64
		for i := lo; i < hi; i += step {
			local += int64(i)
		}
		sum.Add(local)
	})
	run := prog.Class("K").Proc("run", func() { loop(0, 1000, 1) })
	prog.Use(aomplib.ParallelRegion("call(* K.run(..))").Threads(2))
	prog.Use(aomplib.ForShare("call(* K.loop(..))"))
	prog.MustWeave()

	const want = 999 * 1000 / 2
	before := aomplib.PoolStats()
	for _, hot := range []bool{true, false, true} {
		aomplib.SetHotTeams(hot)
		sum.Store(0)
		run()
		if sum.Load() != want {
			t.Fatalf("hot=%v: sum = %d, want %d", hot, sum.Load(), want)
		}
	}
	after := aomplib.PoolStats()
	if after.Leases <= before.Leases {
		t.Fatalf("PoolStats leases did not advance: %d -> %d", before.Leases, after.Leases)
	}
	if after.MaxIdleWorkers <= 0 {
		t.Fatalf("MaxIdleWorkers = %d, want positive", after.MaxIdleWorkers)
	}

	prevSize := aomplib.SetPoolSize(16)
	if got := aomplib.SetPoolSize(prevSize); got != 16 {
		t.Fatalf("SetPoolSize did not return the previous bound: %d", got)
	}
}

// ParseSchedule and SetDefaultSchedule drive the runtime schedule kind
// from flags (jgfbench -schedule); the facade must round-trip names and
// reject non-defaultable kinds.
func TestFacadeScheduleKnobs(t *testing.T) {
	orig := aomplib.DefaultSchedule()
	defer aomplib.SetDefaultSchedule(orig) //nolint:errcheck

	k, err := aomplib.ParseSchedule("guided")
	if err != nil || k != aomplib.Guided {
		t.Fatalf("ParseSchedule(guided) = %v, %v", k, err)
	}
	if _, err := aomplib.ParseSchedule("nope"); err == nil {
		t.Fatal("unknown schedule parsed")
	}
	if prev, err := aomplib.SetDefaultSchedule(aomplib.Guided); err != nil || prev != orig {
		t.Fatalf("SetDefaultSchedule = %v, %v", prev, err)
	}
	if aomplib.DefaultSchedule() != aomplib.Guided {
		t.Fatalf("DefaultSchedule = %v", aomplib.DefaultSchedule())
	}
	if _, err := aomplib.SetDefaultSchedule(aomplib.Runtime); err == nil {
		t.Fatal("Runtime accepted as its own default")
	}
	if _, err := aomplib.SetDefaultSchedule(aomplib.CaseSpecific); err == nil {
		t.Fatal("CaseSpecific accepted as process default")
	}
}
