package aomplib

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"aomplib/internal/obs"
	"aomplib/internal/rt"
)

// The diagnostics handler's /metrics output must pass the strict
// exposition lint and carry both registry counters and the live runtime
// gauges, with real traffic reflected in the values.
func TestDiagnosticsMetricsEndpoint(t *testing.T) {
	srv := httptest.NewServer(Handler())
	defer srv.Close()
	defer EnableMetrics(false)

	rt.Region(2, func(w *rt.Worker) {})

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET /metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("wrong exposition content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	text := string(body)
	if err := obs.LintExposition(strings.NewReader(text)); err != nil {
		t.Fatalf("/metrics fails the exposition lint: %v\n%s", err, text)
	}
	for _, fam := range []string{
		"aomp_region_entries_total",
		"aomp_region_latency_seconds_bucket",
		"aomp_pool_idle_workers",
		"aomp_admission_queue_depth",
		"aomp_trace_ring_drops_total",
	} {
		if !strings.Contains(text, fam) {
			t.Fatalf("/metrics missing family %s:\n%s", fam, text)
		}
	}
	// Handler() enabled metrics, so the region above must have counted.
	var entries float64
	for _, line := range strings.Split(text, "\n") {
		if v, ok := strings.CutPrefix(line, "aomp_region_entries_total "); ok {
			entries, err = strconv.ParseFloat(strings.TrimSpace(v), 64)
			if err != nil {
				t.Fatalf("unparseable region entries %q", v)
			}
		}
	}
	if entries < 1 {
		t.Fatalf("aomp_region_entries_total = %v after a region ran", entries)
	}
}

// /debug/aomp/stats must serve the combined runtime + metrics snapshot as
// JSON, including the new ring-accounting Stats fields.
func TestDiagnosticsStatsEndpoint(t *testing.T) {
	srv := httptest.NewServer(Handler())
	defer srv.Close()
	defer EnableMetrics(false)

	resp, err := srv.Client().Get(srv.URL + "/debug/aomp/stats")
	if err != nil {
		t.Fatalf("GET stats: %v", err)
	}
	defer resp.Body.Close()
	var payload struct {
		Runtime struct {
			Events struct {
				RingDrops     *uint64 `json:"RingDrops"`
				TraceRings    *int    `json:"TraceRings"`
				WorkersFolded *int    `json:"WorkersFolded"`
			}
		} `json:"runtime"`
		Metrics map[string]any `json:"metrics"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		t.Fatalf("stats is not valid JSON: %v", err)
	}
	if payload.Runtime.Events.RingDrops == nil || payload.Runtime.Events.TraceRings == nil ||
		payload.Runtime.Events.WorkersFolded == nil {
		t.Fatal("stats JSON missing the ring-accounting fields")
	}
	if payload.Metrics == nil {
		t.Fatal("stats JSON missing the metrics snapshot")
	}
}

// /debug/aomp/trace must capture a bounded window, restore the tracer's
// prior install state, reject malformed durations, and refuse concurrent
// captures.
func TestDiagnosticsTraceEndpoint(t *testing.T) {
	srv := httptest.NewServer(Handler())
	defer srv.Close()
	defer EnableMetrics(false)

	wasEnabled := TracingEnabled()
	resp, err := srv.Client().Get(srv.URL + "/debug/aomp/trace?sec=0.01") // clamped to 0.1
	if err != nil {
		t.Fatalf("GET trace: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("trace status %d: %s", resp.StatusCode, body)
	}
	if !json.Valid(body) {
		t.Fatalf("trace is not valid JSON: %.200s", body)
	}
	if TracingEnabled() != wasEnabled {
		t.Fatalf("trace capture leaked tracer state: was %v, now %v", wasEnabled, TracingEnabled())
	}

	resp, err = srv.Client().Get(srv.URL + "/debug/aomp/trace?sec=bogus")
	if err != nil {
		t.Fatalf("GET bogus trace: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("bogus sec got status %d, want 400", resp.StatusCode)
	}
}

// /debug/aomp/flight must serve a valid Chrome trace whether or not the
// recorder is enabled, and ServeDiagnostics must bind a working listener.
func TestDiagnosticsFlightAndServe(t *testing.T) {
	srv, err := ServeDiagnostics("127.0.0.1:0")
	if err != nil {
		t.Fatalf("ServeDiagnostics: %v", err)
	}
	defer srv.Close()
	defer EnableMetrics(false)

	resp, err := http.Get("http://" + srv.Addr + "/debug/aomp/flight")
	if err != nil {
		t.Fatalf("GET flight: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !json.Valid(body) {
		t.Fatalf("flight endpoint: status %d, valid JSON %v", resp.StatusCode, json.Valid(body))
	}
	if got := resp.Header.Get("X-Aomp-Flight-Triggered"); got != "false" {
		t.Fatalf("untriggered flight header = %q, want false", got)
	}
}
