package aomplib

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"

	"aomplib/internal/obs"
)

// Production diagnostics: the always-on metrics registry, its Prometheus
// exposition, the flight recorder, and the HTTP surface that serves them.
// Handler mounts everything on one http.Handler a server embeds next to
// its own routes; ServeDiagnostics runs it standalone on a sidecar port.

// ------------------------------------------------------------- metrics --

// EnableMetrics turns the always-on metrics registry on or off, returning
// the previous setting. Enabled, every runtime emit point also feeds
// cache-line-sharded counters and log-bucketed latency histograms —
// region latency, barrier waits, admission queue waits, task
// spawn-to-run latency, steals, per-schedule loop shares, per-tenant
// admission outcomes — behind ReadMetrics and the /metrics endpoint. The
// record path touches only preallocated padded atomics (0 allocs/op);
// disabled (the default), emit points cost their usual one atomic load
// and predicted branch. Metrics compose with the tracer, the flight
// recorder and custom tools: enabling one never evicts another.
var EnableMetrics = obs.EnableMetrics

// MetricsEnabled reports whether the metrics registry is recording.
var MetricsEnabled = obs.MetricsEnabled

// ReadMetrics merges the registry's shards into one point-in-time
// snapshot. Safe from any goroutine at any time; counters are cumulative
// since the first EnableMetrics and never reset.
var ReadMetrics = obs.ReadMetrics

// MetricsSnapshot is the merged registry view returned by ReadMetrics.
type MetricsSnapshot = obs.MetricsSnapshot

// MetricsHistogram is one merged latency histogram of a MetricsSnapshot:
// cumulative log2 buckets in nanoseconds plus total count and sum.
type MetricsHistogram = obs.HistogramSnapshot

// MetricsHistogramBucket is one cumulative bucket of a MetricsHistogram.
type MetricsHistogramBucket = obs.HistogramBucket

// TenantMetrics is one tenant's admission counters in a MetricsSnapshot.
type TenantMetrics = obs.TenantMetrics

// ScheduleShareCount is one schedule kind's loop-share counter in a
// MetricsSnapshot.
type ScheduleShareCount = obs.ScheduleShareCount

// WriteMetricsText renders the metrics registry as Prometheus text
// exposition (content type "text/plain; version=0.0.4") — what the
// /metrics endpoint serves, exposed directly for servers that register
// runtime metrics with their own exposition plumbing.
func WriteMetricsText(w io.Writer) error { return obs.WriteMetricsText(w, runtimeGauges()...) }

// ------------------------------------------------------ flight recorder --

// EnableFlightRecorder turns the flight recorder on or off, returning the
// previous setting. Enabled, the runtime continuously records its last
// few seconds of events (SetFlightWindow) into bounded per-worker rings —
// memory stays fixed regardless of uptime — and triggers (a region
// slower than SetFlightRegionLatencyThreshold, an admission reject spike
// per SetFlightRejectSpike) freeze that window so WriteFlightSnapshot can
// export the moments leading up to the anomaly as a Chrome trace.
var EnableFlightRecorder = obs.EnableFlight

// FlightRecorderEnabled reports whether the flight recorder is recording.
var FlightRecorderEnabled = obs.FlightEnabled

// SetFlightWindow sets how far back the flight recorder retains events,
// returning the previous window (default 5s).
var SetFlightWindow = obs.SetFlightWindow

// SetFlightRegionLatencyThreshold arms the flight recorder's slow-region
// trigger: a parallel region whose fork-to-join latency exceeds the
// duration freezes the flight window. Non-positive disarms; returns the
// previous threshold (zero = disarmed, the default).
var SetFlightRegionLatencyThreshold = obs.SetFlightRegionLatencyThreshold

// SetFlightRejectSpike arms the flight recorder's admission trigger: the
// given number of rejects inside one second freezes the flight window.
// Non-positive disarms; returns the previous setting (zero = disarmed,
// the default).
var SetFlightRejectSpike = obs.SetFlightRejectSpike

// FlightTriggered reports whether a flight trigger fired and its frozen
// capture awaits WriteFlightSnapshot.
var FlightTriggered = obs.FlightTriggered

// WriteFlightSnapshot writes the flight recorder's window as Chrome
// trace-event JSON (load it at ui.perfetto.dev). After a trigger it
// writes the capture frozen at the trigger moment and re-arms; otherwise
// it snapshots the live window without disturbing recording. The boolean
// reports which case applied.
var WriteFlightSnapshot = obs.WriteFlightSnapshot

// -------------------------------------------------------- HTTP surface --

// Handler returns the diagnostics HTTP handler, enabling the metrics
// registry as a side effect (a mounted-but-disabled /metrics would
// silently scrape zeros). Routes, relative to where the caller mounts it:
//
//	/metrics                Prometheus text exposition: the metrics
//	                        registry plus live pool, admission and
//	                        trace-ring gauges;
//	/debug/aomp/stats       RuntimeStats() as JSON (tracer counters,
//	                        pool, admission);
//	/debug/aomp/trace?sec=N Chrome trace of the next N seconds
//	                        (default 2, clamped to [0.1, 30]) — captures
//	                        serialize, concurrent requests get 503;
//	/debug/aomp/flight      the flight recorder's Chrome trace snapshot
//	                        (enable via EnableFlightRecorder).
//
// Mount it on a mux the process already serves, or pass the same routes
// to ServeDiagnostics for a standalone listener.
func Handler() http.Handler {
	EnableMetrics(true)
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", serveMetrics)
	mux.HandleFunc("/debug/aomp/stats", serveStats)
	mux.HandleFunc("/debug/aomp/trace", serveTrace)
	mux.HandleFunc("/debug/aomp/flight", serveFlight)
	return mux
}

// ServeDiagnostics starts a standalone HTTP server for Handler's routes
// on addr (e.g. "127.0.0.1:9150") and returns once the listener is
// bound. The caller owns the returned server — Close (or Shutdown) it on
// the way down. Production processes that already run an HTTP server
// should mount Handler on their own mux instead.
func ServeDiagnostics(addr string) (*http.Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Addr: ln.Addr().String(), Handler: Handler()}
	go srv.Serve(ln)
	return srv, nil
}

// runtimeGauges builds the exposition families whose truth lives outside
// the metrics registry: pool occupancy, admission queue state, and
// trace-ring accounting, sampled at scrape time.
func runtimeGauges() []obs.Family {
	rs := RuntimeStats()
	gauge := func(name, help string, v float64) obs.Family {
		return obs.Family{Name: "aomp_" + name, Help: help, Type: "gauge",
			Samples: []obs.Sample{{Value: v}}}
	}
	counter := func(name, help string, v uint64) obs.Family {
		return obs.Family{Name: "aomp_" + name, Help: help, Type: "counter",
			Samples: []obs.Sample{{Value: float64(v)}}}
	}
	return []obs.Family{
		counter("pool_leases_total", "Team leases served by the hot-team pool machinery.", rs.Pool.Leases),
		counter("pool_hits_total", "Leases served by a cached pool team.", rs.Pool.Hits),
		gauge("pool_idle_teams", "Teams parked in the hot-team pool right now.", float64(rs.Pool.IdleTeams)),
		gauge("pool_idle_workers", "Workers parked in the hot-team pool right now.", float64(rs.Pool.IdleWorkers)),
		gauge("admission_queue_depth", "Admission waiters queued right now.", float64(rs.Admission.QueueDepth)),
		gauge("admission_held_slots", "Admission lease slots granted right now.", float64(rs.Admission.Held)),
		counter("admission_degraded_total", "Region entries that ran serialized without a lease.", rs.Admission.Degraded),
		counter("trace_ring_drops_total", "Trace events dropped by full or draining ring buffers.", rs.Events.RingDrops),
		gauge("trace_rings", "Trace ring buffers allocated by the built-in tracer.", float64(rs.Events.TraceRings)),
		gauge("trace_workers_folded", "Workers folded onto shared trace rings (id beyond the ring bound).", float64(rs.Events.WorkersFolded)),
	}
}

func serveMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := obs.WriteMetricsText(w, runtimeGauges()...); err != nil {
		// Headers are gone; all we can do is cut the response short.
		return
	}
}

func serveStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(struct {
		Runtime RuntimeSnapshot `json:"runtime"`
		Metrics MetricsSnapshot `json:"metrics"`
	}{RuntimeStats(), ReadMetrics()})
}

// traceMu serializes /debug/aomp/trace captures: StartTrace/StopTrace
// drive one global tracer, so two overlapping captures would truncate
// each other.
var traceMu sync.Mutex

func serveTrace(w http.ResponseWriter, r *http.Request) {
	sec := 2.0
	if s := r.URL.Query().Get("sec"); s != "" {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			http.Error(w, fmt.Sprintf("bad sec parameter %q", s), http.StatusBadRequest)
			return
		}
		sec = v
	}
	if sec < 0.1 {
		sec = 0.1
	}
	if sec > 30 {
		sec = 30
	}
	if !traceMu.TryLock() {
		http.Error(w, "a trace capture is already running", http.StatusServiceUnavailable)
		return
	}
	defer traceMu.Unlock()

	// Capture restores the tracer's install state afterwards: a server
	// that keeps the tracer off should not find it on because somebody
	// curled a trace.
	wasEnabled := TracingEnabled()
	StartTrace()
	select {
	case <-time.After(time.Duration(sec * float64(time.Second))):
	case <-r.Context().Done():
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", `attachment; filename="aomp-trace.json"`)
	StopTrace(w)
	if !wasEnabled {
		EnableTracing(false)
	}
}

func serveFlight(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", `attachment; filename="aomp-flight.json"`)
	// The header must precede the body, so report the pre-write trigger
	// state; WriteFlightSnapshot prefers the frozen capture when set.
	w.Header().Set("X-Aomp-Flight-Triggered", strconv.FormatBool(FlightTriggered()))
	WriteFlightSnapshot(w)
}
