package aomplib_test

import (
	"sync/atomic"
	"testing"

	"aomplib"
	"aomplib/internal/jgf/crypt"
	"aomplib/internal/jgf/harness"
	"aomplib/internal/jgf/lufact"
	"aomplib/internal/jgf/moldyn"
	"aomplib/internal/jgf/montecarlo"
	"aomplib/internal/jgf/raytracer"
	"aomplib/internal/jgf/series"
	"aomplib/internal/jgf/sor"
	"aomplib/internal/jgf/sparse"
)

// TestPublicAPIQuickstart runs the README's quickstart through the facade.
func TestPublicAPIQuickstart(t *testing.T) {
	prog := aomplib.NewProgram("demo")
	cls := prog.Class("Demo")
	const n = 10_000
	hits := make([]atomic.Int32, n)
	loop := cls.ForProc("loop", func(lo, hi, step int) {
		for i := lo; i < hi; i += step {
			hits[i].Add(1)
		}
	})
	run := cls.Proc("run", func() { loop(0, n, 1) })

	prog.Use(aomplib.ParallelRegion("call(* Demo.run(..))").Threads(4))
	prog.Use(aomplib.ForShare("call(* Demo.loop(..))"))
	prog.MustWeave()
	run()
	for i := range hits {
		if hits[i].Load() != 1 {
			t.Fatalf("iteration %d ran %d times", i, hits[i].Load())
		}
	}
	// Sequential semantics restored.
	prog.Unweave()
	run()
	for i := range hits {
		if hits[i].Load() != 2 {
			t.Fatalf("unwoven iteration %d total %d, want 2", i, hits[i].Load())
		}
	}
}

// TestPublicAPIAnnotationStyle runs the same composition via annotations.
func TestPublicAPIAnnotationStyle(t *testing.T) {
	prog := aomplib.NewProgram("demo")
	cls := prog.Class("Demo")
	var count atomic.Int32
	work := cls.Proc("work", func() { count.Add(1) })
	prog.MustAnnotate("Demo.work", aomplib.Parallel{Threads: 3})
	prog.Use(aomplib.AnnotationAspects(prog)...)
	prog.MustWeave()
	work()
	if count.Load() != 3 {
		t.Fatalf("annotated region ran %d times, want 3", count.Load())
	}
}

// TestPublicAPIRuntimeHelpers exercises ThreadID/NumThreads/InParallel and
// the default-threads override through the facade.
func TestPublicAPIRuntimeHelpers(t *testing.T) {
	if aomplib.InParallel() || aomplib.ThreadID() != 0 || aomplib.NumThreads() != 1 {
		t.Fatal("sequential helpers wrong")
	}
	prev := aomplib.SetDefaultThreads(2)
	defer aomplib.SetDefaultThreads(prev)
	if aomplib.DefaultThreads() != 2 {
		t.Fatal("SetDefaultThreads not effective")
	}

	prog := aomplib.NewProgram("demo")
	var inside atomic.Int32
	region := prog.Class("D").Proc("r", func() {
		if aomplib.InParallel() && aomplib.NumThreads() == 2 {
			inside.Add(1)
		}
	})
	prog.Use(aomplib.ParallelRegion("call(* D.r(..))")) // default threads
	prog.MustWeave()
	region()
	if inside.Load() != 2 {
		t.Fatalf("helpers saw wrong team: %d", inside.Load())
	}
}

// TestSuiteIntegration runs every benchmark's three versions end to end at
// test size through the harness — the Figure 13 pipeline in miniature —
// and requires every validation to pass and every speed-up to be sane.
func TestSuiteIntegration(t *testing.T) {
	type versions struct {
		name string
		seq  harness.Instance
		mt   harness.Instance
		aomp harness.Instance
	}
	const threads = 2
	suite := []versions{
		{"Crypt", crypt.NewSeq(crypt.SizeTest), crypt.NewMT(crypt.SizeTest, threads), crypt.NewAomp(crypt.SizeTest, threads)},
		{"LUFact", lufact.NewSeq(lufact.SizeTest), lufact.NewMT(lufact.SizeTest, threads), lufact.NewAomp(lufact.SizeTest, threads)},
		{"Series", series.NewSeq(series.SizeTest), series.NewMT(series.SizeTest, threads), series.NewAomp(series.SizeTest, threads)},
		{"SOR", sor.NewSeq(sor.SizeTest), sor.NewMT(sor.SizeTest, threads), sor.NewAomp(sor.SizeTest, threads)},
		{"Sparse", sparse.NewSeq(sparse.SizeTest), sparse.NewMT(sparse.SizeTest, threads), sparse.NewAomp(sparse.SizeTest, threads)},
		{"MolDyn", moldyn.NewSeq(moldyn.SizeTest), moldyn.NewMT(moldyn.SizeTest, threads), moldyn.NewAomp(moldyn.SizeTest, threads, moldyn.ThreadLocalStrategy)},
		{"MonteCarlo", montecarlo.NewSeq(montecarlo.SizeTest), montecarlo.NewMT(montecarlo.SizeTest, threads), montecarlo.NewAomp(montecarlo.SizeTest, threads)},
		{"RayTracer", raytracer.NewSeq(raytracer.SizeTest), raytracer.NewMT(raytracer.SizeTest, threads), raytracer.NewAomp(raytracer.SizeTest, threads)},
	}
	table := harness.NewTable()
	for _, v := range suite {
		for _, run := range []struct {
			version harness.Version
			inst    harness.Instance
		}{{harness.Seq, v.seq}, {harness.MT, v.mt}, {harness.Aomp, v.aomp}} {
			m := harness.Measure(v.name, run.version, threads, run.inst, 1)
			if m.Err != nil {
				t.Fatalf("%s/%s: %v", v.name, run.version, m.Err)
			}
			if m.Seconds <= 0 {
				t.Fatalf("%s/%s: non-positive time", v.name, run.version)
			}
			table.Add(m)
		}
	}
	// Every benchmark must have produced an Aomp/MT delta.
	if deltas := table.Deltas(threads); len(deltas) != len(suite) {
		t.Fatalf("deltas incomplete: %v", deltas)
	}
}

// TestMolDynStrategiesIntegration runs the Figure 15 variants end to end.
func TestMolDynStrategiesIntegration(t *testing.T) {
	p := moldyn.SizeTest
	for _, s := range []moldyn.Strategy{
		moldyn.ThreadLocalStrategy, moldyn.CriticalStrategy, moldyn.LockPerParticleStrategy,
	} {
		m := harness.Measure("MolDyn", harness.Version(s.String()), 2, moldyn.NewAomp(p, 2, s), 1)
		if m.Err != nil {
			t.Fatalf("strategy %v: %v", s, m.Err)
		}
	}
}
