module aomplib

go 1.24
