module aomplib

go 1.23
