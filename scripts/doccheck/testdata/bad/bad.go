// Package bad is the doccheck test fixture: one documented and several
// undocumented exported identifiers.
package bad

// Documented has a doc comment and must not be reported.
func Documented() {}

func Undocumented() {}

type Widget struct{}

func (w *Widget) Method() {}

// quiet is unexported and must not be reported.
func quiet() { _ = MissingConst }

const MissingConst = 1

// DocumentedConst is fine.
const DocumentedConst = 2
