// Command doccheck fails (exit 1) when an exported top-level identifier —
// function, method, type, or const/var name — in any of the given package
// directories lacks a doc comment. It is the CI docs gate for the public
// packages (the parallel algorithms layer and the facade): an exported API
// without godoc is a build failure, not a review nit.
//
// Usage:
//
//	go run ./scripts/doccheck ./parallel .
//
// A const/var group is considered documented if either the grouped decl
// or the individual spec carries a comment. Test files are skipped.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	dirs := os.Args[1:]
	if len(dirs) == 0 {
		fmt.Fprintln(os.Stderr, "usage: doccheck <package-dir> [more dirs]")
		os.Exit(2)
	}
	bad := 0
	for _, dir := range dirs {
		missing, err := checkDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doccheck: %s: %v\n", dir, err)
			os.Exit(2)
		}
		for _, m := range missing {
			fmt.Printf("%s: exported %s is missing a doc comment\n", m.pos, m.name)
			bad++
		}
	}
	if bad > 0 {
		fmt.Printf("doccheck: %d exported identifiers lack doc comments\n", bad)
		os.Exit(1)
	}
}

// finding is one undocumented exported identifier.
type finding struct {
	pos  string
	name string
}

// checkDir parses every non-test .go file in dir and reports exported
// top-level identifiers without doc comments.
func checkDir(dir string) ([]finding, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var out []finding
	for _, pkg := range pkgs {
		files := make([]string, 0, len(pkg.Files))
		for name := range pkg.Files {
			files = append(files, name)
		}
		// Deterministic order for stable CI output.
		for _, name := range sorted(files) {
			out = append(out, checkFile(fset, pkg.Files[name])...)
		}
	}
	return out, nil
}

// checkFile walks one file's top-level declarations.
func checkFile(fset *token.FileSet, f *ast.File) []finding {
	var out []finding
	report := func(pos token.Pos, name string) {
		p := fset.Position(pos)
		out = append(out, finding{
			pos:  fmt.Sprintf("%s:%d", filepath.ToSlash(p.Filename), p.Line),
			name: name,
		})
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || !receiverExported(d) {
				continue
			}
			if d.Doc == nil {
				report(d.Pos(), funcLabel(d))
			}
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && d.Doc == nil && s.Doc == nil {
						report(s.Pos(), "type "+s.Name.Name)
					}
				case *ast.ValueSpec:
					documented := d.Doc != nil || s.Doc != nil || s.Comment != nil
					for _, n := range s.Names {
						if n.IsExported() && !documented {
							report(n.Pos(), kindWord(d.Tok)+" "+n.Name)
						}
					}
				}
			}
		}
	}
	return out
}

// receiverExported reports whether a method's receiver type is exported
// (methods on unexported types are not public API).
func receiverExported(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch v := t.(type) {
		case *ast.StarExpr:
			t = v.X
		case *ast.IndexExpr: // generic receiver T[P]
			t = v.X
		case *ast.IndexListExpr:
			t = v.X
		case *ast.Ident:
			return v.IsExported()
		default:
			return true
		}
	}
}

// funcLabel renders "func Name" or "method (T).Name" for findings.
func funcLabel(d *ast.FuncDecl) string {
	if d.Recv == nil {
		return "func " + d.Name.Name
	}
	return "method " + d.Name.Name
}

// kindWord maps a GenDecl token to its keyword.
func kindWord(tok token.Token) string {
	if tok == token.CONST {
		return "const"
	}
	return "var"
}

// sorted returns names in lexical order.
func sorted(names []string) []string {
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return names
}
