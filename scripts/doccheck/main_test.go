package main

import "testing"

func TestCheckDirFindsUndocumentedExports(t *testing.T) {
	missing, err := checkDir("testdata/bad")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"func Undocumented":  true,
		"type Widget":        true,
		"method Method":      true,
		"const MissingConst": true,
	}
	got := map[string]bool{}
	for _, m := range missing {
		got[m.name] = true
	}
	for name := range want {
		if !got[name] {
			t.Errorf("missing finding for %s (got %v)", name, missing)
		}
	}
	for name := range got {
		if !want[name] {
			t.Errorf("false positive: %s", name)
		}
	}
}
