// Package scripts_test exercises the repo's shell tooling the way CI
// invokes it, so the scripts' loud-failure contract — bad inputs exit
// non-zero with a message, never a silent green — is itself under test.
package scripts_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// runScript invokes a script under sh and returns combined output + exit code.
func runScript(t *testing.T, name string, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command("sh", append([]string{name}, args...)...)
	out, err := cmd.CombinedOutput()
	if err == nil {
		return string(out), 0
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("running %s: %v\n%s", name, err, out)
	}
	return string(out), ee.ExitCode()
}

func writeBench(t *testing.T, dir, name, body string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

const baseBench = `goos: linux
BenchmarkOverhead_RegionEntry-4     2000    1000 ns/op    0 B/op    0 allocs/op
BenchmarkBarrierPhase/w=4-4         2000    2000 ns/op    0 B/op    0 allocs/op
BenchmarkDispenseContended-4        2000    5000 ns/op    0 B/op    0 allocs/op
PASS
`

func TestBenchCompareMissingInputFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	ok := writeBench(t, dir, "ok.txt", baseBench)
	out, code := runScript(t, "bench_compare.sh", filepath.Join(dir, "nope.txt"), ok)
	if code == 0 {
		t.Fatalf("missing old file exited 0:\n%s", out)
	}
	if !strings.Contains(out, "does not exist") {
		t.Fatalf("no loud message for missing file:\n%s", out)
	}
	out, code = runScript(t, "bench_compare.sh", ok, filepath.Join(dir, "nope.txt"))
	if code == 0 || !strings.Contains(out, "does not exist") {
		t.Fatalf("missing new file not flagged (exit %d):\n%s", code, out)
	}
}

func TestBenchCompareEmptyInputFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	ok := writeBench(t, dir, "ok.txt", baseBench)
	empty := writeBench(t, dir, "empty.txt", "")
	out, code := runScript(t, "bench_compare.sh", empty, ok)
	if code == 0 {
		t.Fatalf("empty baseline exited 0 — the silent-pass regression is back:\n%s", out)
	}
	if !strings.Contains(out, "no 'Benchmark' lines") {
		t.Fatalf("no loud message for empty baseline:\n%s", out)
	}
}

func TestBenchCompareBadThresholdFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	ok := writeBench(t, dir, "ok.txt", baseBench)
	out, code := runScript(t, "bench_compare.sh", ok, ok, "twenty")
	if code == 0 || !strings.Contains(out, "not a number") {
		t.Fatalf("bad threshold not flagged (exit %d):\n%s", code, out)
	}
}

func TestBenchComparePassesWithinThreshold(t *testing.T) {
	dir := t.TempDir()
	old := writeBench(t, dir, "old.txt", baseBench)
	newer := writeBench(t, dir, "new.txt", strings.ReplaceAll(baseBench, "1000 ns/op", "1100 ns/op"))
	out, code := runScript(t, "bench_compare.sh", old, newer, "20")
	if code != 0 {
		t.Fatalf("10%% drift under a 20%% threshold failed (exit %d):\n%s", code, out)
	}
	if !strings.Contains(out, "BenchmarkOverhead_RegionEntry") {
		t.Fatalf("delta table missing the gated benchmark:\n%s", out)
	}
}

func TestBenchCompareGatesRegression(t *testing.T) {
	dir := t.TempDir()
	old := writeBench(t, dir, "old.txt", baseBench)
	// RegionEntry +50% is gated; the dispenser is reported but not gated.
	regressed := strings.ReplaceAll(baseBench, "1000 ns/op", "1500 ns/op")
	newer := writeBench(t, dir, "new.txt", regressed)
	out, code := runScript(t, "bench_compare.sh", old, newer, "20")
	if code != 1 {
		t.Fatalf("gated 50%% regression exited %d, want 1:\n%s", code, out)
	}
	if !strings.Contains(out, "FAIL") || !strings.Contains(out, "Overhead_RegionEntry") {
		t.Fatalf("gate fired without naming the offender:\n%s", out)
	}

	// An ungated benchmark regressing alone must not fail the comparison.
	regressed = strings.ReplaceAll(baseBench, "5000 ns/op", "9000 ns/op")
	newer = writeBench(t, dir, "new2.txt", regressed)
	out, code = runScript(t, "bench_compare.sh", old, newer, "20")
	if code != 0 {
		t.Fatalf("ungated regression failed the gate (exit %d):\n%s", code, out)
	}
}

func TestBenchSnapshotRejectsGarbageArg(t *testing.T) {
	out, code := runScript(t, "bench_snapshot.sh", "sixteen")
	if code == 0 || !strings.Contains(out, "not a non-negative integer") {
		t.Fatalf("garbage PR number not flagged (exit %d):\n%s", code, out)
	}
	out, code = runScript(t, "bench_snapshot.sh", "-3")
	if code == 0 {
		t.Fatalf("negative PR number accepted:\n%s", out)
	}
}
