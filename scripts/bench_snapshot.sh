#!/bin/sh
# bench_snapshot.sh — write the repo-root JGF benchmark snapshot for this
# PR sequence (BENCH_<n>.json). The committed snapshots are the perf
# trajectory across PRs: compare like-for-like fields only (size, threads,
# gomaxprocs, hot_teams, schedule are all recorded in the report header).
#
# Usage:
#   scripts/bench_snapshot.sh            # writes BENCH_5.json
#   scripts/bench_snapshot.sh 6          # writes BENCH_6.json
#   scripts/bench_snapshot.sh 6 -size=A  # extra flags pass through
set -eu
cd "$(dirname "$0")/.."

n=${1:-5}
[ $# -gt 0 ] && shift

exec go run ./cmd/jgfbench -size=test -threads=1,4 -reps=3 -json "BENCH_${n}.json" "$@"
