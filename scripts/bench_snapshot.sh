#!/bin/sh
# bench_snapshot.sh — write the repo-root JGF benchmark snapshot for this
# PR sequence (BENCH_<n>.json). The committed snapshots are the perf
# trajectory across PRs: compare like-for-like fields only (size, threads,
# gomaxprocs, hot_teams, schedule are all recorded in the report header).
#
# Usage:
#   scripts/bench_snapshot.sh            # writes BENCH_5.json
#   scripts/bench_snapshot.sh 6          # writes BENCH_6.json
#   scripts/bench_snapshot.sh 6 -size=A  # extra flags pass through
#
# A bad PR number or a missing go toolchain fails loudly (exit 2 with a
# message) instead of writing BENCH_garbage.json or dying on an opaque
# "go: not found".
set -eu
cd "$(dirname "$0")/.."

fail() { echo "bench_snapshot.sh: $*" >&2; exit 2; }

n=${1:-5}
[ $# -gt 0 ] && shift
case $n in
  ''|*[!0-9]*) fail "PR number \"$n\" is not a non-negative integer" ;;
esac
command -v go >/dev/null 2>&1 || fail "go toolchain not found in PATH"

exec go run ./cmd/jgfbench -size=test -threads=1,4 -reps=3 -json "BENCH_${n}.json" "$@"
