#!/bin/sh
# bench_compare.sh old.txt new.txt [threshold_pct]
#
# Compares two raw `go test -bench` outputs (use -count=N for stable
# medians) by per-benchmark median ns/op and prints the delta table. Exits
# 1 when a *gated* benchmark — Overhead_RegionEntry or any BarrierPhase
# variant — regressed by more than threshold_pct (default 20) against old.
# Benchmarks present in only one file are reported as unmatched and never
# gate (a merge base predating a benchmark must not fail its PR).
#
# Missing or benchmark-less inputs are an error (exit 2 with a message),
# never a silent pass: a CI step comparing two files that do not exist
# must fail the job, not green-light the regression it was gating. A
# caller that legitimately has no baseline (e.g. a root commit) must skip
# the comparison explicitly rather than feed an empty file through.
set -u
usage="usage: bench_compare.sh old.txt new.txt [threshold_pct]"
old=${1?$usage}
new=${2?$usage}
thr=${3:-20}

fail() { echo "bench_compare.sh: $*" >&2; exit 2; }

case $thr in
  ''|*[!0-9.]*) fail "threshold \"$thr\" is not a number" ;;
esac
for f in "$old" "$new"; do
  [ -f "$f" ] || fail "input \"$f\" does not exist"
  grep -qE '^Benchmark' "$f" ||
    fail "input \"$f\" contains no 'Benchmark' lines — wrong file, or the bench run produced nothing"
done

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

# medians FILE OUT: one "name median_ns" line per benchmark.
medians() {
  grep -E '^Benchmark' "$1" 2>/dev/null |
    awk '$4 == "ns/op" { print $1, $3 }' |
    sort -k1,1 -k2,2g |
    awk '{ v[$1] = v[$1] " " $2 }
         END { for (b in v) { c = split(v[b], a, " "); print b, a[int((c+1)/2)] } }' |
    sort -k1,1 >"$2"
}

medians "$old" "$tmp/old"
medians "$new" "$tmp/new"

join -j 1 "$tmp/old" "$tmp/new" >"$tmp/joined"
join -j 1 -v 1 "$tmp/old" "$tmp/new" | sed 's/^/only in old: /'
join -j 1 -v 2 "$tmp/old" "$tmp/new" | sed 's/^/only in new: /'

awk -v thr="$thr" '
  BEGIN { printf "%-55s %14s %14s %9s\n", "benchmark (median of counts)", "old ns/op", "new ns/op", "delta" }
  {
    delta = ($2 + 0 > 0) ? ($3 - $2) / $2 * 100 : 0
    printf "%-55s %14.1f %14.1f %+8.1f%%\n", $1, $2, $3, delta
    if ($1 ~ /Overhead_RegionEntry(-|$)|BarrierPhase\// && delta > thr)
      bad = bad "  " $1 sprintf(" (%+.1f%%)", delta)
  }
  END {
    if (bad != "") { printf "FAIL: gated benchmarks regressed beyond %s%%:%s\n", thr, bad; exit 1 }
  }' "$tmp/joined"
