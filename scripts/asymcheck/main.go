// Command asymcheck is the CI gate for the asymmetry smoke test: it
// compares two jgfbench -json reports — one run under a uniform
// schedule (steal), one under the speed-weighted schedule
// (weightedSteal or adaptive), both with the same -asym throttle — and
// fails when the weighted run is slower than the uniform run by more
// than a tolerance.
//
//	go run ./scripts/asymcheck uniform.json weighted.json
//	go run ./scripts/asymcheck -bench SOR -maxratio 1.10 uniform.json weighted.json
//
// The gate is a tolerance (weighted ≤ uniform × maxratio), not a strict
// win, by design: on a time-shared CPU — one hardware thread running
// every worker, the common CI shape — work-conserving stealing re-feeds
// a throttled worker during its own scheduler slices no matter how the
// initial ranges were carved, so wall time converges to total executed
// work and the weighted carve shows up as parity, not speedup. The
// carve's correctness (proportional ranges, most-loaded victim
// selection) is pinned deterministically by the dispenser unit tests in
// internal/sched; this gate catches the regression that matters at the
// system level: the weighted machinery must never make the whole run
// meaningfully slower than its uniform baseline. On multi-core runners
// the same gate holds and the headroom simply tightens.
//
// Exit codes: 0 pass, 1 gate failure, 2 unusable input — missing file,
// unparseable report, benchmark absent — so a broken pipeline can never
// read as a green gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// The slice of jgfbench's report schema the gate reads. Decoding into a
// local mirror keeps the tool usable on any schema version that still
// carries these fields.
type report struct {
	Schema     int         `json:"schema"`
	Schedule   string      `json:"schedule"`
	Asym       string      `json:"asym"`
	SchedStats *schedStats `json:"sched_stats"`
	Results    []result    `json:"results"`
}

type schedStats struct {
	StealAttempts uint64 `json:"steal_attempts"`
	Steals        uint64 `json:"steals"`
	StealProbes   uint64 `json:"steal_probes"`
	BarrierWaitNs uint64 `json:"barrier_wait_ns"`
}

type result struct {
	Benchmark string  `json:"benchmark"`
	Version   string  `json:"version"`
	Threads   int     `json:"threads"`
	MeanSecs  float64 `json:"mean_seconds"`
	Valid     bool    `json:"valid"`
}

var (
	bench = flag.String("bench", "SOR",
		"benchmark name to gate on (jgfbench report naming)")
	version = flag.String("version", "Aomp",
		"result version to gate on; Aomp is the woven variant that obeys -schedule")
	maxRatio = flag.Float64("maxratio", 1.10,
		"fail when weighted mean seconds exceed uniform × this ratio")
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: asymcheck [flags] <uniform.json> <weighted.json>\n\nflags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	if !(*maxRatio > 0) {
		fatalf("-maxratio %v is not a positive number", *maxRatio)
	}
	uni, err := load(flag.Arg(0))
	if err != nil {
		fatalf("%v", err)
	}
	wei, err := load(flag.Arg(1))
	if err != nil {
		fatalf("%v", err)
	}
	uSecs, err := parallelMean(flag.Arg(0), uni, *bench, *version)
	if err != nil {
		fatalf("%v", err)
	}
	wSecs, err := parallelMean(flag.Arg(1), wei, *bench, *version)
	if err != nil {
		fatalf("%v", err)
	}

	ratio := wSecs / uSecs
	fmt.Printf("asymcheck: %s (asym %q)\n", *bench, orNone(uni.Asym))
	fmt.Printf("  uniform  (%s): %.6fs\n", uni.Schedule, uSecs)
	fmt.Printf("  weighted (%s): %.6fs\n", wei.Schedule, wSecs)
	fmt.Printf("  ratio weighted/uniform: %.3f (gate ≤ %.3f)\n", ratio, *maxRatio)
	printStats("uniform", uni.SchedStats)
	printStats("weighted", wei.SchedStats)
	if ratio > *maxRatio {
		fmt.Printf("FAIL: weighted schedule is %.1f%% slower than uniform under the same asymmetry\n",
			(ratio-1)*100)
		os.Exit(1)
	}
	fmt.Println("ok")
}

// parallelMean returns the mean seconds of bench's version results at
// the widest thread count the report holds, erring when the report
// cannot answer — a gate with no measurement must not pass. The version
// matters: only the woven "Aomp" variants run under the schedule the
// -schedule flag declared; gating on the hand-threaded "JGF-MT"
// baseline would compare two identical runs.
func parallelMean(path string, rep *report, bench, version string) (float64, error) {
	best := result{Threads: -1}
	for _, r := range rep.Results {
		if r.Benchmark == bench && r.Version == version && r.Threads > best.Threads {
			best = r
		}
	}
	switch {
	case best.Threads < 0:
		return 0, fmt.Errorf("%s: no %s result for benchmark %q", path, version, bench)
	case !best.Valid:
		return 0, fmt.Errorf("%s: %s result at %d threads failed validation", path, bench, best.Threads)
	case !(best.MeanSecs > 0):
		return 0, fmt.Errorf("%s: %s mean_seconds is %v, not a positive time", path, bench, best.MeanSecs)
	}
	return best.MeanSecs, nil
}

func load(path string) (*report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: parsing report: %w", path, err)
	}
	if len(rep.Results) == 0 {
		return nil, fmt.Errorf("%s: report holds no results", path)
	}
	return &rep, nil
}

// printStats reports the steal counters informationally. They are not
// gated: on a time-shared CPU the loaded-victim scan probes more
// siblings per steal by design, so probe and steal counts move with
// scheduler interleaving, not with the property the gate protects.
func printStats(label string, s *schedStats) {
	if s == nil {
		return
	}
	fmt.Printf("  %s sched_stats: steals %d/%d attempts, %d probes, barrier wait %dns\n",
		label, s.Steals, s.StealAttempts, s.StealProbes, s.BarrierWaitNs)
}

func orNone(s string) string {
	if s == "" {
		return "none"
	}
	return s
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "asymcheck: "+format+"\n", args...)
	os.Exit(2)
}
