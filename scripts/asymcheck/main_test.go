package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// sampleReport builds a jgfbench-shaped report with SOR results at 1 and
// 4 threads; the 4-thread Aomp mean is the one the gate must pick — the
// hand-threaded JGF-MT rows do not run under -schedule and are decoys.
func sampleReport(meanAt4 string) string {
	return `{
  "schema": 3,
  "schedule": "steal",
  "asym": "0:300",
  "sched_stats": {"steal_attempts": 100, "steals": 40, "steal_probes": 250, "barrier_wait_ns": 9000},
  "results": [
    {"benchmark": "SOR", "version": "Seq", "threads": 1, "mean_seconds": 0.5, "valid": true},
    {"benchmark": "SOR", "version": "JGF-MT", "threads": 4, "mean_seconds": 0.9, "valid": true},
    {"benchmark": "SOR", "version": "Aomp", "threads": 1, "mean_seconds": 0.7, "valid": true},
    {"benchmark": "SOR", "version": "Aomp", "threads": 4, "mean_seconds": ` + meanAt4 + `, "valid": true},
    {"benchmark": "LUFact", "version": "Aomp", "threads": 4, "mean_seconds": 0.2, "valid": true}
  ]
}`
}

func writeReport(t *testing.T, name, body string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestParallelMeanPicksWidestScheduledResult(t *testing.T) {
	rep, err := load(writeReport(t, "r.json", sampleReport("0.25")))
	if err != nil {
		t.Fatal(err)
	}
	secs, err := parallelMean("r.json", rep, "SOR", "Aomp")
	if err != nil {
		t.Fatal(err)
	}
	if secs != 0.25 {
		t.Fatalf("picked %v, want the 4-thread Aomp mean 0.25 (not the JGF-MT decoy)", secs)
	}
	if secs, err = parallelMean("r.json", rep, "LUFact", "Aomp"); err != nil || secs != 0.2 {
		t.Fatalf("LUFact = %v, %v, want 0.2", secs, err)
	}
}

func TestParallelMeanRefusesUnusableReports(t *testing.T) {
	cases := []struct {
		name, body, bench, wantErr string
	}{
		{"absent benchmark", sampleReport("0.25"), "Series", "no Aomp result"},
		{"invalid result", strings.ReplaceAll(sampleReport("0.25"), `0.25, "valid": true`, `0.25, "valid": false`), "SOR", "failed validation"},
		{"zero time", sampleReport("0"), "SOR", "not a positive time"},
	}
	for _, c := range cases {
		rep, err := load(writeReport(t, "r.json", c.body))
		if err != nil {
			t.Fatalf("%s: load: %v", c.name, err)
		}
		if _, err := parallelMean("r.json", rep, c.bench, "Aomp"); err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: err = %v, want it to mention %q", c.name, err, c.wantErr)
		}
	}
}

func TestLoadRefusesGarbage(t *testing.T) {
	if _, err := load(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Error("missing file loaded")
	}
	if _, err := load(writeReport(t, "bad.json", "not json")); err == nil || !strings.Contains(err.Error(), "parsing report") {
		t.Errorf("garbage JSON: err = %v", err)
	}
	if _, err := load(writeReport(t, "empty.json", `{"schema":3,"results":[]}`)); err == nil || !strings.Contains(err.Error(), "no results") {
		t.Errorf("empty results: err = %v", err)
	}
}
