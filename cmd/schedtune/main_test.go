package main

import (
	"fmt"
	"strings"
	"testing"
)

// synthetic builds a minimal Chrome trace: enc encounters of a loop under
// kind on nw workers, where worker 0's share takes skew times the others'.
func synthetic(kind string, nw, enc int, skew float64) string {
	var b strings.Builder
	b.WriteString(`{"traceEvents":[`)
	ts := 0.0
	for e := 0; e < enc; e++ {
		for w := 0; w < nw; w++ {
			dur := 100.0
			if w == 0 {
				dur *= skew
			}
			if e > 0 || w > 0 {
				b.WriteString(",")
			}
			fmt.Fprintf(&b, `{"name":"for (%s)","cat":"work","ph":"X","pid":1,"tid":%d,"ts":%g,"dur":%g}`,
				kind, w+2, ts, dur)
		}
		ts += 100*skew + 10 // next encounter starts after the slowest share
	}
	// Noise the parser must skip: a barrier slice and an instant.
	b.WriteString(`,{"name":"barrier","cat":"barrier","ph":"X","pid":1,"tid":2,"ts":0,"dur":5}`)
	b.WriteString(`,{"name":"steal","cat":"steal","ph":"i","pid":1,"tid":2,"ts":1}`)
	b.WriteString(`]}`)
	return b.String()
}

func analyzeString(t *testing.T, trace string) []loopReport {
	t.Helper()
	reports, err := analyze(strings.NewReader(trace), 1.25, 1.08)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return reports
}

func TestAnalyzeReconstructsEncounters(t *testing.T) {
	reports := analyzeString(t, synthetic("steal", 4, 5, 4.0))
	if len(reports) != 1 {
		t.Fatalf("got %d reports, want 1: %+v", len(reports), reports)
	}
	r := reports[0]
	if r.Kind != "steal" || r.Encounters != 5 || r.Workers != 4 {
		t.Fatalf("report = %+v, want kind=steal encounters=5 workers=4", r)
	}
	// durs 400,100,100,100 → mean 175 → imb 400/175 ≈ 2.286 every encounter.
	if r.MeanImb < 2.2 || r.MeanImb > 2.4 || r.WorstImb < 2.2 {
		t.Fatalf("imbalance = mean %.3f worst %.3f, want ≈2.286", r.MeanImb, r.WorstImb)
	}
}

// TestAnalyzeSerializedSlices pins the alignment rule on a trace from a
// time-shared CPU: the four workers' slices of each encounter run strictly
// one after another (no wall-time overlap), which any overlap-based
// clustering would shred into width-1 encounters. Per-worker sequence
// alignment must still reconstruct full-width encounters.
func TestAnalyzeSerializedSlices(t *testing.T) {
	var b strings.Builder
	b.WriteString(`{"traceEvents":[`)
	ts := 0.0
	first := true
	for e := 0; e < 3; e++ {
		for w := 0; w < 4; w++ {
			dur := 100.0
			if w == 0 {
				dur = 400.0
			}
			if !first {
				b.WriteString(",")
			}
			first = false
			fmt.Fprintf(&b, `{"name":"for (steal)","cat":"work","ph":"X","pid":1,"tid":%d,"ts":%g,"dur":%g}`,
				w+2, ts, dur)
			ts += dur + 1 // next slice starts after this one ends
		}
	}
	b.WriteString(`]}`)
	reports := analyzeString(t, b.String())
	if len(reports) != 1 {
		t.Fatalf("got %d reports, want 1: %+v", len(reports), reports)
	}
	r := reports[0]
	if r.Encounters != 3 || r.Workers != 4 {
		t.Fatalf("report = %+v, want encounters=3 workers=4", r)
	}
	if r.MeanImb < 2.2 || r.MeanImb > 2.4 {
		t.Fatalf("mean imb = %.3f, want ≈2.286", r.MeanImb)
	}
}

// TestAdvicePolicy pins the recommendation table to the runtime's
// adaptation policy: skewed → weighted steal (or finer chunks when
// already balancing), balanced → coarsen, hysteresis band → keep.
func TestAdvicePolicy(t *testing.T) {
	cases := []struct {
		kind string
		skew float64
		want string
	}{
		{"steal", 4.0, "weightedSteal"},
		{"staticBlock", 4.0, "weightedSteal"},
		{"dynamic", 4.0, "halve the chunk"},
		{"weightedSteal", 4.0, "halve the chunk"},
		{"staticBlock", 1.0, "balanced: keep"},
		{"guided", 1.0, "coarsen chunk"},
		{"steal", 1.15, "hysteresis"},
	}
	for _, c := range cases {
		reports := analyzeString(t, synthetic(c.kind, 4, 3, c.skew))
		if len(reports) != 1 {
			t.Fatalf("%s skew %.2f: %d reports", c.kind, c.skew, len(reports))
		}
		if !strings.Contains(reports[0].Advice, c.want) {
			t.Errorf("%s skew %.2f: advice %q, want it to mention %q",
				c.kind, c.skew, reports[0].Advice, c.want)
		}
	}
}

// TestAnalyzeSkipsUnmeasurableGroups pins the single-worker rule: a
// width-1 trace measures no imbalance and must say so instead of
// recommending on a fabricated 1.0.
func TestAnalyzeSkipsUnmeasurableGroups(t *testing.T) {
	reports := analyzeString(t, synthetic("guided", 1, 4, 1.0))
	if len(reports) != 1 {
		t.Fatalf("got %d reports, want 1", len(reports))
	}
	r := reports[0]
	if r.MeanImb != 0 || !strings.Contains(r.Advice, "no multi-worker") {
		t.Fatalf("width-1 report = %+v, want zero imbalance and the no-measurement advice", r)
	}
}

func TestAnalyzeRejectsGarbage(t *testing.T) {
	if _, err := analyze(strings.NewReader("not json"), 1.25, 1.08); err == nil {
		t.Fatal("garbage input parsed")
	}
	reports := analyzeString(t, `{"traceEvents":[]}`)
	if len(reports) != 0 {
		t.Fatalf("empty trace produced reports: %+v", reports)
	}
}

func TestKindOf(t *testing.T) {
	if k, ok := kindOf("for (weightedSteal)"); !ok || k != "weightedSteal" {
		t.Fatalf("kindOf = %q, %v", k, ok)
	}
	for _, bad := range []string{"task 7", "for ()", "for (x", "barrier"} {
		if _, ok := kindOf(bad); ok {
			t.Errorf("kindOf(%q) accepted", bad)
		}
	}
}
