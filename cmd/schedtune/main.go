// Command schedtune is the offline half of the feedback loop behind the
// adaptive schedule: it replays a Chrome trace recorded by jgfbench -trace
// (or any aomplib.StartTrace/StopTrace session) and prints a per-loop
// schedule recommendation table from the measured per-worker share times —
// the same imbalance policy the runtime applies online (internal/rt,
// adaptResolve), applied after the fact to a whole run.
//
// Use it when a program cannot run Adaptive in production (e.g. the
// schedule is pinned in source) but a representative trace exists: the
// table says which for constructs wasted their team at the implicit
// barrier and what to declare instead.
//
//	go run ./cmd/jgfbench -size=A -threads=4 -only=sor -trace=sor.trace.json
//	go run ./cmd/schedtune sor.trace.json
//
// Work slices in the trace are named "for (<kind>)" and carry no further
// loop identity, so constructs that declared the same schedule aggregate
// into one row; the tool is an advisor over schedule groups, not a
// per-source-line profiler.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"text/tabwriter"
)

// traceEvent is the slice of the Chrome trace-event schema schedtune
// consumes: duration events ("ph": "X") with a worker track and, for work
// slices, the schedule-kind-bearing name.
type traceEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`  // microseconds
	Dur  float64 `json:"dur"` // microseconds
	Tid  int     `json:"tid"`
}

type traceFile struct {
	TraceEvents []traceEvent `json:"traceEvents"`
}

// encounter is one reconstructed work-sharing encounter: the
// "for (<kind>)" slices the team's workers ran between the same barriers.
type encounter struct {
	durs []float64 // one per participating worker, microseconds
}

// imbalance returns max/mean of the per-worker share times, the ratio the
// runtime's adaptive policy thresholds on; 0 when undefined.
func (e *encounter) imbalance() float64 {
	if len(e.durs) == 0 {
		return 0
	}
	var sum, max float64
	for _, d := range e.durs {
		sum += d
		if d > max {
			max = d
		}
	}
	mean := sum / float64(len(e.durs))
	if mean <= 0 {
		return 0
	}
	return max / mean
}

// loopReport aggregates every encounter of one schedule group.
type loopReport struct {
	Kind       string  // schedule name out of the slice name
	Encounters int     // reconstructed encounters
	Workers    int     // widest team observed
	MeanImb    float64 // mean over encounters of max/mean share time
	WorstImb   float64
	TotalUs    float64 // total worker-time spent in this group's slices
	Advice     string
}

// The same thresholds the runtime adapts on (internal/rt adaptImbHigh /
// adaptImbLow), flag-overridable so a trace can be re-judged more or less
// aggressively without re-running the program.
var (
	imbHigh = flag.Float64("imb-high", 1.25,
		"imbalance ratio above which a loop should rebalance harder")
	imbLow = flag.Float64("imb-low", 1.08,
		"imbalance ratio below which a loop may use cheaper dispatch")
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: schedtune [flags] <trace.json>\n\nflags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "schedtune: %v\n", err)
		os.Exit(1)
	}
	reports, err := analyze(f, *imbHigh, *imbLow)
	f.Close()
	if err != nil {
		fmt.Fprintf(os.Stderr, "schedtune: %s: %v\n", flag.Arg(0), err)
		os.Exit(1)
	}
	if len(reports) == 0 {
		fmt.Fprintf(os.Stderr, "schedtune: %s holds no work-sharing slices — was the run traced with -trace?\n", flag.Arg(0))
		os.Exit(1)
	}
	render(os.Stdout, reports)
}

// analyze parses a Chrome trace and reduces its work slices to one report
// per schedule group, with the advice the imbalance thresholds imply.
func analyze(r io.Reader, high, low float64) ([]loopReport, error) {
	var tf traceFile
	if err := json.NewDecoder(r).Decode(&tf); err != nil {
		return nil, fmt.Errorf("parsing trace: %w", err)
	}
	groups := map[string][]traceEvent{}
	for _, ev := range tf.TraceEvents {
		if ev.Cat != "work" || ev.Ph != "X" {
			continue
		}
		kind, ok := kindOf(ev.Name)
		if !ok {
			continue
		}
		groups[kind] = append(groups[kind], ev)
	}
	var out []loopReport
	for kind, evs := range groups {
		rep := reduce(kind, evs)
		rep.Advice = advise(kind, rep.MeanImb, high, low)
		out = append(out, rep)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].TotalUs > out[j].TotalUs })
	return out, nil
}

// kindOf extracts the schedule name from a work slice name "for (<kind>)".
func kindOf(name string) (string, bool) {
	rest, ok := strings.CutPrefix(name, "for (")
	if !ok {
		return "", false
	}
	kind, ok := strings.CutSuffix(rest, ")")
	return kind, ok && kind != ""
}

// reduce aligns one group's slices into encounters. Wall-time overlap is
// not usable for the alignment — on a time-shared CPU one encounter's
// per-worker slices serialize and need not overlap at all — but the
// work-sharing contract is: every worker of the team executes every
// encounter of a construct exactly once, in program order. So each
// worker's k-th slice of the group belongs to encounter k. (Ring-buffer
// overflow that dropped slices can shift a worker's sequence; the tool is
// an advisor over aggregates, where a rare shift washes out.)
func reduce(kind string, evs []traceEvent) loopReport {
	byTid := map[int][]traceEvent{}
	for _, ev := range evs {
		byTid[ev.Tid] = append(byTid[ev.Tid], ev)
	}
	count := 0
	for _, s := range byTid {
		sort.Slice(s, func(i, j int) bool { return s[i].Ts < s[j].Ts })
		if len(s) > count {
			count = len(s)
		}
	}
	encs := make([]encounter, count)
	for _, s := range byTid {
		for i, ev := range s {
			encs[i].durs = append(encs[i].durs, ev.Dur)
		}
	}
	rep := loopReport{Kind: kind, Encounters: len(encs)}
	var imbSum float64
	measured := 0
	for i := range encs {
		e := &encs[i]
		if len(e.durs) > rep.Workers {
			rep.Workers = len(e.durs)
		}
		for _, d := range e.durs {
			rep.TotalUs += d
		}
		// Single-worker encounters (width-1 teams, or slices lost to ring
		// overflow) measure no imbalance; skip them rather than report a
		// meaningless perfect 1.0.
		if len(e.durs) < 2 {
			continue
		}
		if imb := e.imbalance(); imb > 0 {
			imbSum += imb
			measured++
			if imb > rep.WorstImb {
				rep.WorstImb = imb
			}
		}
	}
	if measured > 0 {
		rep.MeanImb = imbSum / float64(measured)
	}
	return rep
}

// advise maps a schedule group's measured imbalance onto the runtime's
// adaptation policy: skewed loops move to the weighted steal schedule
// (or refine their chunk if already on a balancing schedule), balanced
// loops may coarsen, and the hysteresis band keeps what works. A group
// with no measurable imbalance gets no advice rather than a guess.
func advise(kind string, imb, high, low float64) string {
	switch {
	case imb == 0:
		return "no multi-worker encounters measured"
	case imb > high:
		switch kind {
		case "weightedSteal", "dynamic":
			return "imbalanced: halve the chunk size"
		case "steal":
			return "imbalanced: schedule=weightedSteal (speed-weighted ranges)"
		default:
			return "imbalanced: schedule=weightedSteal, or schedule=adaptive to self-tune"
		}
	case imb < low:
		switch kind {
		case "staticBlock", "staticCyclic":
			return "balanced: keep"
		default:
			return "balanced: coarsen chunk, or staticBlock for zero dispatch cost"
		}
	default:
		return "within hysteresis band: keep"
	}
}

func render(w io.Writer, reports []loopReport) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "schedule\tencounters\tworkers\ttotal(ms)\tmean imb\tworst imb\tadvice")
	for _, r := range reports {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.2f\t%.3f\t%.3f\t%s\n",
			r.Kind, r.Encounters, r.Workers, r.TotalUs/1e3, r.MeanImb, r.WorstImb, r.Advice)
	}
	tw.Flush()
}
