package main

import (
	"os"
	"path/filepath"
	"testing"
)

// TestGeneratedFilesAreCurrent regenerates every target in memory and
// compares it with the committed file: any change to a target's joinpoints
// or aspect composition must be accompanied by re-running go generate.
func TestGeneratedFilesAreCurrent(t *testing.T) {
	for name, tgt := range targets() {
		got, err := generate(name)
		if err != nil {
			t.Fatalf("generate(%q): %v", name, err)
		}
		path := filepath.Join("..", "..", tgt.defaultOut)
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("target %q: %v (run: go run aomplib/cmd/weavegen -target=%s)", name, err, name)
		}
		if string(got) != string(want) {
			t.Errorf("target %q: %s is stale — re-run go generate (go run aomplib/cmd/weavegen -target=%s -o=%s)",
				name, tgt.defaultOut, name, tgt.defaultOut)
		}
	}
}

// TestGenerateRejectsUnknownTarget pins the error path.
func TestGenerateRejectsUnknownTarget(t *testing.T) {
	if _, err := generate("nope"); err == nil {
		t.Fatal("unknown target accepted")
	}
}

// TestBenchDemoProgramMatchesPlan pins that the in-tool demo constructor
// produces the configuration its emitted copy claims to.
func TestBenchDemoProgramMatchesPlan(t *testing.T) {
	p := newBenchDemoProgram(4)
	plan := p.Plan()
	if plan.Program != "staticbench" || len(plan.Methods) != 2 {
		t.Fatalf("demo plan = %+v", plan)
	}
	for _, m := range plan.Methods {
		switch m.FQN {
		case "A.m":
			if len(m.Advice) != 1 || m.Advice[0].Name != "parallel" {
				t.Fatalf("A.m advice = %+v", m.Advice)
			}
		case "A.plain":
			if len(m.Advice) != 0 {
				t.Fatalf("A.plain advice = %+v", m.Advice)
			}
		default:
			t.Fatalf("unexpected method %s", m.FQN)
		}
	}
}
