// Command weavegen is the static-weave backend: it reads a program's
// registered joinpoints and deployed aspects (by constructing the program
// exactly as the target package does), freezes the current weave into a
// weaver.StaticPlan, and emits Go source with direct-call entry points —
// no Call reification for unadvised methods, no chain load and no gate
// checks for advised ones. The generated Bind function re-verifies the
// embedded plan against the live program, so configuration drift fails
// loudly instead of silently running stale woven code.
//
// Usage:
//
//	go run aomplib/cmd/weavegen -list
//	go run aomplib/cmd/weavegen -target=series -o=internal/jgf/series/static_gen.go
//
// Each generated file is committed; cmd/weavegen's tests regenerate every
// target in memory and fail on drift, which keeps `go generate` honest.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"go/format"
	"os"
	"sort"
	"strings"

	"aomplib/internal/core"
	"aomplib/internal/jgf/series"
	"aomplib/internal/jgf/sor"
	"aomplib/internal/weaver"
)

// programHolder is implemented by the JGF aomp instances that expose
// their weave registry.
type programHolder interface{ Program() *weaver.Program }

// target describes one generated file.
type target struct {
	// defaultOut is the output path relative to the repository root.
	defaultOut string
	// pkg is the generated file's package clause.
	pkg string
	// planVar, entriesType, bindFunc name the generated identifiers.
	planVar, entriesType, bindFunc string
	// exported controls doc-comment phrasing only; identifier casing is
	// already fixed by the names above.
	program func() *weaver.Program
	// extra is verbatim source appended after the imports (demo program
	// constructors for self-contained targets).
	extra string
}

// benchDemoConstructor must stay in sync with newBenchDemoProgram below:
// the same construction is emitted into the generated file so benchmarks
// rebuild the exact configuration the plan was frozen from.
const benchDemoConstructor = `
// newStaticBenchProgram builds the frozen demo configuration the static
// plan below was generated from: class A with one region-entry method
// ("A.m", advised by a ParallelRegion) and one unadvised method
// ("A.plain"). Benchmarks construct it with their own thread count; the
// plan does not depend on it.
func newStaticBenchProgram(threadCount int) *weaver.Program {
	p := weaver.NewProgram("staticbench")
	cls := p.Class("A")
	cls.Proc("m", func() {})
	cls.Proc("plain", func() {})
	p.Use(core.ParallelRegion("call(* A.m(..))").Threads(threadCount))
	p.MustWeave()
	return p
}
`

func newBenchDemoProgram(threadCount int) *weaver.Program {
	p := weaver.NewProgram("staticbench")
	cls := p.Class("A")
	cls.Proc("m", func() {})
	cls.Proc("plain", func() {})
	p.Use(core.ParallelRegion("call(* A.m(..))").Threads(threadCount))
	p.MustWeave()
	return p
}

func targets() map[string]target {
	return map[string]target{
		"series": {
			defaultOut:  "internal/jgf/series/static_gen.go",
			pkg:         "series",
			planVar:     "staticPlan",
			entriesType: "StaticEntries",
			bindFunc:    "BindStatic",
			program: func() *weaver.Program {
				inst := series.NewAomp(series.SizeTest, 2)
				inst.Setup()
				return inst.(programHolder).Program()
			},
		},
		"sor": {
			defaultOut:  "internal/jgf/sor/static_gen.go",
			pkg:         "sor",
			planVar:     "staticPlan",
			entriesType: "StaticEntries",
			bindFunc:    "BindStatic",
			program: func() *weaver.Program {
				inst := sor.NewAomp(sor.SizeTest, 2)
				inst.Setup()
				return inst.(programHolder).Program()
			},
		},
		"benchdemo": {
			defaultOut:  "staticweave_gen_test.go",
			pkg:         "aomplib_test",
			planVar:     "staticBenchPlan",
			entriesType: "staticBenchEntries",
			bindFunc:    "bindStaticBench",
			program:     func() *weaver.Program { return newBenchDemoProgram(2) },
			extra:       benchDemoConstructor,
		},
	}
}

// entryName derives the generated entry field from "Class.method":
// "Series.buildCoeffs" → "BuildCoeffs".
func entryName(fqn string) string {
	name := fqn
	if i := strings.LastIndexByte(fqn, '.'); i >= 0 {
		name = fqn[i+1:]
	}
	return strings.ToUpper(name[:1]) + name[1:]
}

func kindConst(k weaver.Kind) string {
	switch k {
	case weaver.ProcKind:
		return "weaver.ProcKind"
	case weaver.ForKind:
		return "weaver.ForKind"
	case weaver.KeyedKind:
		return "weaver.KeyedKind"
	default:
		return "weaver.ValueKind"
	}
}

// signature maps a joinpoint kind to its entry-point type.
func signature(k weaver.Kind) (params, call string) {
	switch k {
	case weaver.ForKind:
		return "func(lo, hi, step int)", "c.JP, c.Lo, c.Hi, c.Step = jp, lo, hi, step"
	case weaver.KeyedKind:
		return "func(key int)", "c.JP, c.Key = jp, key"
	case weaver.ValueKind:
		return "func() any", "c.JP = jp"
	default:
		return "func()", "c.JP = jp"
	}
}

// enabledAdvice counts the advice stages a frozen handler would compose.
func enabledAdvice(m weaver.PlannedMethod) int {
	n := 0
	for _, a := range m.Advice {
		if a.Enabled {
			n++
		}
	}
	return n
}

// generate builds the target's program, freezes its plan and renders the
// static-weave source file.
func generate(name string) ([]byte, error) {
	t, ok := targets()[name]
	if !ok {
		return nil, fmt.Errorf("weavegen: unknown target %q", name)
	}
	plan := t.program().Plan()
	sort.Slice(plan.Methods, func(i, j int) bool { return plan.Methods[i].FQN < plan.Methods[j].FQN })

	needsRT := false
	for _, m := range plan.Methods {
		if m.NeedsWorker {
			needsRT = true
		}
	}
	needsCore := strings.Contains(t.extra, "core.")

	var b bytes.Buffer
	fmt.Fprintf(&b, "// Code generated by weavegen (go run aomplib/cmd/weavegen -target=%s). DO NOT EDIT.\n\n", name)
	fmt.Fprintf(&b, "package %s\n\n", t.pkg)
	b.WriteString("import (\n\t\"fmt\"\n\n")
	if needsCore {
		b.WriteString("\t\"aomplib/internal/core\"\n")
	}
	if needsRT {
		b.WriteString("\t\"aomplib/internal/rt\"\n")
	}
	b.WriteString("\t\"aomplib/internal/weaver\"\n)\n")
	if t.extra != "" {
		b.WriteString(t.extra)
	}

	fmt.Fprintf(&b, "\n// %s is the frozen weave this file was generated for. The bind\n", t.planVar)
	fmt.Fprintf(&b, "// function verifies it against the live program before handing out\n")
	fmt.Fprintf(&b, "// static entry points.\n")
	fmt.Fprintf(&b, "var %s = weaver.StaticPlan{\n\tProgram: %q,\n\tMethods: []weaver.PlannedMethod{\n", t.planVar, plan.Program)
	for _, m := range plan.Methods {
		fmt.Fprintf(&b, "\t\t{FQN: %q, Kind: %s, NeedsWorker: %v", m.FQN, kindConst(m.Kind), m.NeedsWorker)
		if len(m.Advice) > 0 {
			b.WriteString(", Advice: []weaver.PlannedAdvice{\n")
			for _, a := range m.Advice {
				fmt.Fprintf(&b, "\t\t\t{Aspect: %q, Name: %q, Enabled: %v},\n", a.Aspect, a.Name, a.Enabled)
			}
			b.WriteString("\t\t}")
		}
		b.WriteString("},\n")
	}
	b.WriteString("\t},\n}\n\n")

	fmt.Fprintf(&b, "// %s holds the statically woven entry points: direct calls for\n", t.entriesType)
	fmt.Fprintf(&b, "// unadvised methods, frozen (gate-free, chain-load-free) handlers for\n")
	fmt.Fprintf(&b, "// advised ones.\n")
	fmt.Fprintf(&b, "type %s struct {\n", t.entriesType)
	for _, m := range plan.Methods {
		params, _ := signature(m.Kind)
		fmt.Fprintf(&b, "\t// %s dispatches %s.\n", entryName(m.FQN), m.FQN)
		fmt.Fprintf(&b, "\t%s %s\n", entryName(m.FQN), params)
	}
	b.WriteString("}\n\n")

	fmt.Fprintf(&b, "// %s verifies that prog still matches the generated plan and\n", t.bindFunc)
	fmt.Fprintf(&b, "// returns its static entry points. A drift error means the dynamic\n")
	fmt.Fprintf(&b, "// configuration changed since generation: re-run go generate.\n")
	fmt.Fprintf(&b, "func %s(prog *weaver.Program) (*%s, error) {\n", t.bindFunc, t.entriesType)
	fmt.Fprintf(&b, "\tif err := prog.VerifyPlan(%s); err != nil {\n\t\treturn nil, err\n\t}\n", t.planVar)
	fmt.Fprintf(&b, "\te := &%s{}\n", t.entriesType)
	for _, m := range plan.Methods {
		params, assign := signature(m.Kind)
		field := entryName(m.FQN)
		if enabledAdvice(m) == 0 {
			fmt.Fprintf(&b, "\t{\n\t\tbody, ok := prog.Method(%q).BodyFunc().(%s)\n", m.FQN, params)
			fmt.Fprintf(&b, "\t\tif !ok {\n\t\t\treturn nil, fmt.Errorf(\"weavegen: body of %s has unexpected type\")\n\t\t}\n", m.FQN)
			fmt.Fprintf(&b, "\t\te.%s = body\n\t}\n", field)
			continue
		}
		fmt.Fprintf(&b, "\t{\n\t\tm := prog.Method(%q)\n", m.FQN)
		fmt.Fprintf(&b, "\t\th, ok := prog.FrozenHandler(%q)\n", m.FQN)
		fmt.Fprintf(&b, "\t\tif m == nil || !ok {\n\t\t\treturn nil, fmt.Errorf(\"weavegen: method %s missing\")\n\t\t}\n", m.FQN)
		b.WriteString("\t\tjp := m.JP()\n")
		fmt.Fprintf(&b, "\t\te.%s = %s {\n", field, params)
		b.WriteString("\t\t\tc := weaver.GetCall()\n")
		fmt.Fprintf(&b, "\t\t\t%s\n", assign)
		if m.NeedsWorker {
			b.WriteString("\t\t\tc.Worker = rt.Current()\n")
		}
		b.WriteString("\t\t\th(c)\n")
		if m.Kind == weaver.ValueKind {
			b.WriteString("\t\t\tret := c.Ret\n\t\t\tweaver.PutCall(c)\n\t\t\treturn ret\n")
		} else {
			b.WriteString("\t\t\tweaver.PutCall(c)\n")
		}
		b.WriteString("\t\t}\n\t}\n")
	}
	b.WriteString("\treturn e, nil\n}\n")

	src, err := format.Source(b.Bytes())
	if err != nil {
		return nil, fmt.Errorf("weavegen: generated source for %q does not format: %w\n%s", name, err, b.String())
	}
	return src, nil
}

func main() {
	targetName := flag.String("target", "", "target to generate (see -list)")
	out := flag.String("o", "", "output path (default: the target's canonical path)")
	list := flag.Bool("list", false, "list targets and exit")
	flag.Parse()

	if *list {
		names := make([]string, 0)
		for n, t := range targets() {
			names = append(names, fmt.Sprintf("%-10s → %s", n, t.defaultOut))
		}
		sort.Strings(names)
		fmt.Println(strings.Join(names, "\n"))
		return
	}
	t, ok := targets()[*targetName]
	if !ok {
		fmt.Fprintf(os.Stderr, "weavegen: unknown target %q (use -list)\n", *targetName)
		os.Exit(2)
	}
	src, err := generate(*targetName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	path := *out
	if path == "" {
		path = t.defaultOut
	}
	if err := os.WriteFile(path, src, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("weavegen: wrote %s (%d bytes)\n", path, len(src))
}
