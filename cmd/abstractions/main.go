// Command abstractions regenerates the paper's Table 2 ("Refactoring and
// abstractions used") by introspecting the *actual* weave state of each
// benchmark's AOmpLib version rather than hand-maintaining a table:
// refactorings are derived from the registered joinpoint kinds (for
// methods = M2FOR, advised plain/value methods = M2M) and abstractions
// from the advice applied to them.
//
// Usage:
//
//	go run ./cmd/abstractions
package main

import (
	"fmt"
	"sort"
	"strings"

	"aomplib/internal/jgf/crypt"
	"aomplib/internal/jgf/harness"
	"aomplib/internal/jgf/lufact"
	"aomplib/internal/jgf/moldyn"
	"aomplib/internal/jgf/montecarlo"
	"aomplib/internal/jgf/raytracer"
	"aomplib/internal/jgf/series"
	"aomplib/internal/jgf/sor"
	"aomplib/internal/jgf/sparse"
	"aomplib/internal/weaver"
)

// weaveReporter is implemented by every benchmark's Aomp instance.
type weaveReporter interface {
	harness.Instance
	WeaveReport() []weaver.WovenMethod
}

func describe(rep []weaver.WovenMethod) (refactorings, abstractions string) {
	counts := map[string]int{}
	m2for, m2m := 0, 0
	for _, wm := range rep {
		advised := len(wm.Advice) > 0
		switch {
		case wm.Kind == weaver.ForKind:
			m2for++
		case advised:
			m2m++
		}
		for _, adv := range wm.Advice {
			// adv is "aspect/advice"; classify by the advice mechanism.
			mech := adv[strings.LastIndexByte(adv, '/')+1:]
			switch {
			case mech == "parallel":
				counts["PR"]++
			case strings.HasPrefix(mech, "for(caseSpecific"):
				counts["FOR (Case Specific)"]++
				counts["CS"]++
			case strings.HasPrefix(mech, "for("):
				counts["FOR ("+mech[4:len(mech)-1]+")"]++
			case mech == "barrier":
				counts["BR"]++
			case mech == "master":
				counts["MA"]++
			case mech == "single":
				counts["SI"]++
			case mech == "critical":
				counts["CR"]++
			case strings.HasPrefix(mech, "threadLocal"):
				counts["TLF"]++
			case strings.HasPrefix(mech, "reduce"):
				// reductions are part of the TLF mechanism in Table 2
			case mech == "ordered":
				counts["ORD"]++
			default:
				counts["CS"]++ // case-specific custom advice
			}
		}
	}
	var refs []string
	if m2for > 0 {
		refs = append(refs, multi(m2for, "M2FOR"))
	}
	if m2m > 0 {
		refs = append(refs, multi(m2m, "M2M"))
	}
	var keys []string
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return order(keys[i]) < order(keys[j]) })
	var abs []string
	for _, k := range keys {
		abs = append(abs, multi(counts[k], k))
	}
	return strings.Join(refs, ", "), strings.Join(abs, ", ")
}

func multi(n int, label string) string {
	if n == 1 {
		return label
	}
	return fmt.Sprintf("%dx%s", n, label)
}

func order(k string) string {
	rank := map[string]string{"PR": "0", "BR": "2", "MA": "3", "SI": "4", "CR": "5", "TLF": "6", "ORD": "7", "CS": "9"}
	if strings.HasPrefix(k, "FOR") {
		return "1" + k
	}
	if r, ok := rank[k]; ok {
		return r + k
	}
	return "8" + k
}

func main() {
	benchmarks := []struct {
		name string
		inst weaveReporter
	}{
		{"Crypt", crypt.NewAomp(crypt.SizeTest, 2).(weaveReporter)},
		{"LUFact", lufact.NewAomp(lufact.SizeTest, 2).(weaveReporter)},
		{"Series", series.NewAomp(series.SizeTest, 2).(weaveReporter)},
		{"SOR", sor.NewAomp(sor.SizeTest, 2).(weaveReporter)},
		{"Sparse", sparse.NewAomp(sparse.SizeTest, 2).(weaveReporter)},
		{"MolDyn", moldyn.NewAomp(moldyn.SizeTest, 2, moldyn.ThreadLocalStrategy).(weaveReporter)},
		{"MonteCarlo", montecarlo.NewAomp(montecarlo.SizeTest, 2).(weaveReporter)},
		{"RayTracer", raytracer.NewAomp(raytracer.SizeTest, 2).(weaveReporter)},
	}

	fmt.Println("Table 2 — refactorings and abstractions used (introspected from the live weave)")
	fmt.Printf("\n%-12s %-18s %s\n", "benchmark", "refactorings", "abstractions")
	for _, b := range benchmarks {
		b.inst.Setup() // registers joinpoints and weaves aspects
		refs, abs := describe(b.inst.WeaveReport())
		fmt.Printf("%-12s %-18s %s\n", b.name, refs, abs)
	}
	fmt.Println("\nLegend: PR parallel region; FOR(x) work-sharing with schedule x;")
	fmt.Println("BR barrier; MA master; SI single; CR critical; TLF thread-local field")
	fmt.Println("(incl. its reduction); CS case-specific aspect; M2FOR/M2M the paper's")
	fmt.Println("move-to-for-method / move-to-method refactorings.")
}
