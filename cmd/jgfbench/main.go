// Command jgfbench regenerates the paper's Figure 13: speed-ups of the
// hand-threaded JGF versions and the AOmpLib versions over the sequential
// base programs, across all eight Java Grande benchmarks, plus the
// Aomp-vs-MT relative difference backing the "less than 1%" claim (§V).
//
// Usage:
//
//	go run ./cmd/jgfbench -size=test -threads=1,2 -reps=3
//	go run ./cmd/jgfbench -size=A -threads=2 -only=crypt,moldyn
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"

	"aomplib/internal/jgf/crypt"
	"aomplib/internal/jgf/harness"
	"aomplib/internal/jgf/lufact"
	"aomplib/internal/jgf/moldyn"
	"aomplib/internal/jgf/montecarlo"
	"aomplib/internal/jgf/raytracer"
	"aomplib/internal/jgf/series"
	"aomplib/internal/jgf/sor"
	"aomplib/internal/jgf/sparse"
)

type bench struct {
	name string
	seq  func() harness.Instance
	mt   func(threads int) harness.Instance
	aomp func(threads int) harness.Instance
}

func suite(size string) []bench {
	pick := func(test, a, b any) any {
		switch size {
		case "A":
			return a
		case "B":
			return b
		default:
			return test
		}
	}
	sp := pick(series.SizeTest, series.SizeA, series.SizeB).(series.Params)
	cp := pick(crypt.SizeTest, crypt.SizeA, crypt.SizeB).(crypt.Params)
	lp := pick(lufact.SizeTest, lufact.SizeA, lufact.SizeB).(lufact.Params)
	op := pick(sor.SizeTest, sor.SizeA, sor.SizeB).(sor.Params)
	pp := pick(sparse.SizeTest, sparse.SizeA, sparse.SizeB).(sparse.Params)
	mp := pick(moldyn.SizeTest, moldyn.SizeA, moldyn.SizeB).(moldyn.Params)
	qp := pick(montecarlo.SizeTest, montecarlo.SizeA, montecarlo.SizeB).(montecarlo.Params)
	rp := pick(raytracer.SizeTest, raytracer.SizeA, raytracer.SizeB).(raytracer.Params)

	return []bench{
		{"Crypt", func() harness.Instance { return crypt.NewSeq(cp) },
			func(t int) harness.Instance { return crypt.NewMT(cp, t) },
			func(t int) harness.Instance { return crypt.NewAomp(cp, t) }},
		{"LUFact", func() harness.Instance { return lufact.NewSeq(lp) },
			func(t int) harness.Instance { return lufact.NewMT(lp, t) },
			func(t int) harness.Instance { return lufact.NewAomp(lp, t) }},
		{"Series", func() harness.Instance { return series.NewSeq(sp) },
			func(t int) harness.Instance { return series.NewMT(sp, t) },
			func(t int) harness.Instance { return series.NewAomp(sp, t) }},
		{"SOR", func() harness.Instance { return sor.NewSeq(op) },
			func(t int) harness.Instance { return sor.NewMT(op, t) },
			func(t int) harness.Instance { return sor.NewAomp(op, t) }},
		{"Sparse", func() harness.Instance { return sparse.NewSeq(pp) },
			func(t int) harness.Instance { return sparse.NewMT(pp, t) },
			func(t int) harness.Instance { return sparse.NewAomp(pp, t) }},
		{"MolDyn", func() harness.Instance { return moldyn.NewSeq(mp) },
			func(t int) harness.Instance { return moldyn.NewMT(mp, t) },
			func(t int) harness.Instance { return moldyn.NewAomp(mp, t, moldyn.ThreadLocalStrategy) }},
		{"MonteCarlo", func() harness.Instance { return montecarlo.NewSeq(qp) },
			func(t int) harness.Instance { return montecarlo.NewMT(qp, t) },
			func(t int) harness.Instance { return montecarlo.NewAomp(qp, t) }},
		{"RayTracer", func() harness.Instance { return raytracer.NewSeq(rp) },
			func(t int) harness.Instance { return raytracer.NewMT(rp, t) },
			func(t int) harness.Instance { return raytracer.NewAomp(rp, t) }},
	}
}

func parseThreads(s string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "jgfbench: bad thread count %q\n", part)
			os.Exit(2)
		}
		out = append(out, n)
	}
	return out
}

func main() {
	size := flag.String("size", "test", "problem size: test, A or B")
	threadsFlag := flag.String("threads", fmt.Sprintf("1,%d", runtime.GOMAXPROCS(0)),
		"comma-separated team sizes")
	reps := flag.Int("reps", 3, "kernel repetitions (fastest kept)")
	only := flag.String("only", "", "comma-separated benchmark filter (e.g. crypt,moldyn)")
	flag.Parse()

	threads := parseThreads(*threadsFlag)
	filter := map[string]bool{}
	for _, f := range strings.Split(*only, ",") {
		if f = strings.TrimSpace(strings.ToLower(f)); f != "" {
			filter[f] = true
		}
	}

	table := harness.NewTable()
	failures := 0
	for _, b := range suite(*size) {
		if len(filter) > 0 && !filter[strings.ToLower(b.name)] {
			continue
		}
		fmt.Fprintf(os.Stderr, "running %s (seq)...\n", b.name)
		table.Add(record(&failures, harness.Measure(b.name, harness.Seq, 1, b.seq(), *reps)))
		for _, t := range threads {
			fmt.Fprintf(os.Stderr, "running %s (MT, %d threads)...\n", b.name, t)
			table.Add(record(&failures, harness.Measure(b.name, harness.MT, t, b.mt(t), *reps)))
			fmt.Fprintf(os.Stderr, "running %s (Aomp, %d threads)...\n", b.name, t)
			table.Add(record(&failures, harness.Measure(b.name, harness.Aomp, t, b.aomp(t), *reps)))
		}
	}

	fmt.Printf("\nFigure 13 — speed-up over sequential (size %s, GOMAXPROCS=%d)\n\n",
		*size, runtime.GOMAXPROCS(0))
	table.Render(os.Stdout)

	fmt.Printf("\nAomp vs JGF-MT relative time difference (paper: < 1%%):\n")
	for _, t := range threads {
		deltas := table.Deltas(t)
		var names []string
		for n := range deltas {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Printf("  %-12s %2d threads: %+6.2f%%\n", n, t, deltas[n]*100)
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "jgfbench: %d validation failures\n", failures)
		os.Exit(1)
	}
}

func record(failures *int, m harness.Measurement) harness.Measurement {
	if m.Err != nil {
		fmt.Fprintf(os.Stderr, "VALIDATION FAILURE %s/%s: %v\n", m.Benchmark, m.Version, m.Err)
		*failures++
	}
	return m
}
