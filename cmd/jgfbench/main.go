// Command jgfbench regenerates the paper's Figure 13: speed-ups of the
// hand-threaded JGF versions and the AOmpLib versions over the sequential
// base programs, across all eight Java Grande benchmarks, plus the
// Aomp-vs-MT relative difference backing the "less than 1%" claim (§V).
// Benchmarks with a dataflow port (LUFact, SOR) additionally run the
// @Depend-based Aomp-DF version against the barrier-based Aomp one, and
// benchmarks with a generic-algorithms port (Series, SOR) run a Parallel
// version (package parallel's For/ForRange) against the woven Aomp one.
//
// Usage:
//
//	go run ./cmd/jgfbench -size=test -threads=1,2 -reps=3
//	go run ./cmd/jgfbench -size=A -threads=2 -only=crypt,moldyn
//	go run ./cmd/jgfbench -size=test -threads=1,4 -json=BENCH_ci.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"aomplib"
	"aomplib/internal/jgf/crypt"
	"aomplib/internal/jgf/harness"
	"aomplib/internal/jgf/lufact"
	"aomplib/internal/jgf/moldyn"
	"aomplib/internal/jgf/montecarlo"
	"aomplib/internal/jgf/raytracer"
	"aomplib/internal/jgf/series"
	"aomplib/internal/jgf/sor"
	"aomplib/internal/jgf/sparse"
)

type bench struct {
	name string
	seq  func() harness.Instance
	mt   func(threads int) harness.Instance
	aomp func(threads int) harness.Instance
	// dep is the dataflow (@Depend) version, when the benchmark has one.
	dep func(threads int) harness.Instance
	// par is the generic-algorithms (package parallel) version, when the
	// benchmark has one: the Aomp kernel re-expressed as parallel.ForRange,
	// so the layer's dispatch cost is measured against the woven @For.
	par func(threads int) harness.Instance
}

func suite(size string) []bench {
	pick := func(test, a, b any) any {
		switch size {
		case "A":
			return a
		case "B":
			return b
		default:
			return test
		}
	}
	sp := pick(series.SizeTest, series.SizeA, series.SizeB).(series.Params)
	cp := pick(crypt.SizeTest, crypt.SizeA, crypt.SizeB).(crypt.Params)
	lp := pick(lufact.SizeTest, lufact.SizeA, lufact.SizeB).(lufact.Params)
	op := pick(sor.SizeTest, sor.SizeA, sor.SizeB).(sor.Params)
	pp := pick(sparse.SizeTest, sparse.SizeA, sparse.SizeB).(sparse.Params)
	mp := pick(moldyn.SizeTest, moldyn.SizeA, moldyn.SizeB).(moldyn.Params)
	qp := pick(montecarlo.SizeTest, montecarlo.SizeA, montecarlo.SizeB).(montecarlo.Params)
	rp := pick(raytracer.SizeTest, raytracer.SizeA, raytracer.SizeB).(raytracer.Params)

	return []bench{
		{name: "Crypt", seq: func() harness.Instance { return crypt.NewSeq(cp) },
			mt:   func(t int) harness.Instance { return crypt.NewMT(cp, t) },
			aomp: func(t int) harness.Instance { return crypt.NewAomp(cp, t) }},
		{name: "LUFact", seq: func() harness.Instance { return lufact.NewSeq(lp) },
			mt:   func(t int) harness.Instance { return lufact.NewMT(lp, t) },
			aomp: func(t int) harness.Instance { return lufact.NewAomp(lp, t) },
			dep:  func(t int) harness.Instance { return lufact.NewAompDep(lp, t) }},
		{name: "Series", seq: func() harness.Instance { return series.NewSeq(sp) },
			mt:   func(t int) harness.Instance { return series.NewMT(sp, t) },
			aomp: func(t int) harness.Instance { return series.NewAomp(sp, t) },
			par:  func(t int) harness.Instance { return series.NewParallel(sp, t) }},
		{name: "SOR", seq: func() harness.Instance { return sor.NewSeq(op) },
			mt:   func(t int) harness.Instance { return sor.NewMT(op, t) },
			aomp: func(t int) harness.Instance { return sor.NewAomp(op, t) },
			dep:  func(t int) harness.Instance { return sor.NewAompDep(op, t) },
			par:  func(t int) harness.Instance { return sor.NewParallel(op, t) }},
		{name: "Sparse", seq: func() harness.Instance { return sparse.NewSeq(pp) },
			mt:   func(t int) harness.Instance { return sparse.NewMT(pp, t) },
			aomp: func(t int) harness.Instance { return sparse.NewAomp(pp, t) }},
		{name: "MolDyn", seq: func() harness.Instance { return moldyn.NewSeq(mp) },
			mt:   func(t int) harness.Instance { return moldyn.NewMT(mp, t) },
			aomp: func(t int) harness.Instance { return moldyn.NewAomp(mp, t, moldyn.ThreadLocalStrategy) }},
		{name: "MonteCarlo", seq: func() harness.Instance { return montecarlo.NewSeq(qp) },
			mt:   func(t int) harness.Instance { return montecarlo.NewMT(qp, t) },
			aomp: func(t int) harness.Instance { return montecarlo.NewAomp(qp, t) }},
		{name: "RayTracer", seq: func() harness.Instance { return raytracer.NewSeq(rp) },
			mt:   func(t int) harness.Instance { return raytracer.NewMT(rp, t) },
			aomp: func(t int) harness.Instance { return raytracer.NewAomp(rp, t) }},
	}
}

func parseThreads(s string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "jgfbench: bad thread count %q\n", part)
			os.Exit(2)
		}
		out = append(out, n)
	}
	return out
}

// parseAsym parses the -asym spec — comma-separated worker:spins pairs —
// into the per-worker spin table (index = team worker ID). Malformed
// pairs are hard errors: a silently ignored throttle would invalidate the
// asymmetry comparison the flag exists for.
func parseAsym(s string) []int {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	var spins []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		id, units, ok := strings.Cut(part, ":")
		w, err1 := strconv.Atoi(strings.TrimSpace(id))
		u, err2 := strconv.Atoi(strings.TrimSpace(units))
		if !ok || err1 != nil || err2 != nil || w < 0 || u < 0 {
			fmt.Fprintf(os.Stderr, "jgfbench: bad -asym pair %q (want worker:spins, e.g. 0:300)\n", part)
			os.Exit(2)
		}
		for len(spins) <= w {
			spins = append(spins, 0)
		}
		spins[w] = u
	}
	return spins
}

// parseOnly validates the -only filter against the suite's benchmark
// names; an unknown name is a hard error listing the valid ones, not a
// silent empty run.
func parseOnly(s string, benches []bench) map[string]bool {
	valid := make([]string, len(benches))
	for i, b := range benches {
		valid[i] = strings.ToLower(b.name)
	}
	filter := map[string]bool{}
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(strings.ToLower(f))
		if f == "" {
			continue
		}
		known := false
		for _, v := range valid {
			if f == v {
				known = true
				break
			}
		}
		if !known {
			fmt.Fprintf(os.Stderr, "jgfbench: unknown benchmark %q in -only (valid: %s)\n",
				f, strings.Join(valid, ", "))
			os.Exit(2)
		}
		filter[f] = true
	}
	return filter
}

// jsonResult is one measurement in the machine-readable report. Seconds
// is the fastest repetition (the JGF headline); min/max/mean/stddev
// summarise all repetitions so a noisy run is distinguishable from a slow
// one when comparing reports across commits.
type jsonResult struct {
	Benchmark string  `json:"benchmark"`
	Version   string  `json:"version"`
	Threads   int     `json:"threads"`
	Seconds   float64 `json:"seconds"`
	MinSecs   float64 `json:"min_seconds"`
	MaxSecs   float64 `json:"max_seconds"`
	MeanSecs  float64 `json:"mean_seconds"`
	Stddev    float64 `json:"stddev_seconds"`
	Reps      int     `json:"reps"`
	Speedup   float64 `json:"speedup,omitempty"`
	Valid     bool    `json:"valid"`
	Error     string  `json:"error,omitempty"`
}

// jsonSchedStats is the scheduling-mechanism slice of the runtime's
// observability counters, included in the report when the run was traced
// (-trace installs the counting hooks). It is what lets an asymmetry A/B
// compare mechanisms, not just wall time: a weighted carve that works
// shows up as fewer loop-range steals than the uniform carve under the
// same throttle.
type jsonSchedStats struct {
	StealAttempts uint64 `json:"steal_attempts"`
	Steals        uint64 `json:"steals"`
	StealProbes   uint64 `json:"steal_probes"`
	BarrierWaitNs uint64 `json:"barrier_wait_ns"`
}

// jsonReport is the -json output: enough metadata to compare runs across
// commits (the CI perf trajectory) plus every measurement. HotTeams and
// Schedule record the runtime configuration of the run — numbers measured
// with pooled teams or a non-default schedule must not be compared
// against runs without them.
type jsonReport struct {
	Schema     int             `json:"schema"`
	Size       string          `json:"size"`
	Threads    []int           `json:"threads"`
	Reps       int             `json:"reps"`
	GOMAXPROCS int             `json:"gomaxprocs"`
	GoVersion  string          `json:"go_version"`
	HotTeams   bool            `json:"hot_teams"`
	Schedule   string          `json:"schedule"`
	Asym       string          `json:"asym,omitempty"`
	Timestamp  string          `json:"timestamp"`
	SchedStats *jsonSchedStats `json:"sched_stats,omitempty"`
	Results    []jsonResult    `json:"results"`
}

func main() {
	size := flag.String("size", "test", "problem size: test, A or B")
	threadsFlag := flag.String("threads", fmt.Sprintf("1,%d", runtime.GOMAXPROCS(0)),
		"comma-separated team sizes")
	reps := flag.Int("reps", 3, "kernel repetitions (fastest kept)")
	only := flag.String("only", "",
		"comma-separated benchmark filter\n"+
			"(valid: crypt, lufact, series, sor, sparse, moldyn, montecarlo, raytracer)")
	jsonPath := flag.String("json", "", "write machine-readable results to this file")
	tracePath := flag.String("trace", "",
		"record the whole run and write a Chrome trace (load at ui.perfetto.dev) to this file")
	schedule := flag.String("schedule", "",
		"process-wide default schedule resolved by @For(schedule=runtime) constructs\n"+
			"(staticBlock, staticCyclic, dynamic, guided, steal, weightedSteal, adaptive, auto)")
	hotTeams := flag.Bool("hotteams", true, "reuse pooled worker teams across region entries")
	asym := flag.String("asym", "",
		"simulate an asymmetric machine: comma-separated worker:spins pairs\n"+
			"(e.g. 0:300 makes the worker with team ID 0 execute 300 extra\n"+
			"busy-work units per loop iteration, roughly modelling a slow core)")
	flag.Parse()

	if *reps <= 0 {
		fmt.Fprintf(os.Stderr, "jgfbench: -reps must be > 0 (got %d): a run with zero repetitions measures nothing\n", *reps)
		os.Exit(2)
	}
	if *schedule != "" {
		k, err := aomplib.ParseSchedule(*schedule)
		if err != nil {
			fmt.Fprintf(os.Stderr, "jgfbench: -schedule: %v\n", err)
			os.Exit(2)
		}
		if _, err := aomplib.SetDefaultSchedule(k); err != nil {
			fmt.Fprintf(os.Stderr, "jgfbench: -schedule=%s: %v\n", k, err)
			os.Exit(2)
		}
	}
	aomplib.SetHotTeams(*hotTeams)
	aomplib.SetAsymSpin(parseAsym(*asym))

	threads := parseThreads(*threadsFlag)
	benches := suite(*size)
	filter := parseOnly(*only, benches)

	table := harness.NewTable()
	failures := 0
	var all []harness.Measurement
	seqSecs := map[string]float64{}
	add := func(m harness.Measurement) {
		table.Add(record(&failures, m))
		all = append(all, m)
		if m.Version == harness.Seq {
			seqSecs[m.Benchmark] = m.Seconds
		}
	}
	runAll := func() {
		for _, b := range benches {
			if len(filter) > 0 && !filter[strings.ToLower(b.name)] {
				continue
			}
			fmt.Fprintf(os.Stderr, "running %s (seq)...\n", b.name)
			add(harness.Measure(b.name, harness.Seq, 1, b.seq(), *reps))
			for _, t := range threads {
				fmt.Fprintf(os.Stderr, "running %s (MT, %d threads)...\n", b.name, t)
				add(harness.Measure(b.name, harness.MT, t, b.mt(t), *reps))
				fmt.Fprintf(os.Stderr, "running %s (Aomp, %d threads)...\n", b.name, t)
				add(harness.Measure(b.name, harness.Aomp, t, b.aomp(t), *reps))
				if b.dep != nil {
					fmt.Fprintf(os.Stderr, "running %s (Aomp-DF, %d threads)...\n", b.name, t)
					add(harness.Measure(b.name, harness.AompDep, t, b.dep(t), *reps))
				}
				if b.par != nil {
					fmt.Fprintf(os.Stderr, "running %s (Parallel, %d threads)...\n", b.name, t)
					add(harness.Measure(b.name, harness.Par, t, b.par(t), *reps))
				}
			}
		}
	}
	var schedStats *jsonSchedStats
	if *tracePath != "" {
		traced := func() {
			runAll()
			// Read inside the traced window: the counting hooks are
			// installed only while tracing, and the next StartTrace resets.
			ev := aomplib.RuntimeStats().Events
			schedStats = &jsonSchedStats{
				StealAttempts: ev.StealAttempts,
				Steals:        ev.Steals,
				StealProbes:   ev.StealProbes,
				BarrierWaitNs: ev.BarrierWaitNs,
			}
		}
		if err := traceRun(*tracePath, traced); err != nil {
			fmt.Fprintf(os.Stderr, "jgfbench: writing trace %s: %v\n", *tracePath, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "jgfbench: wrote %s\n", *tracePath)
	} else {
		runAll()
	}

	fmt.Printf("\nFigure 13 — speed-up over sequential (size %s, GOMAXPROCS=%d, hotteams=%v)\n\n",
		*size, runtime.GOMAXPROCS(0), aomplib.HotTeamsEnabled())
	table.Render(os.Stdout)

	fmt.Printf("\nAomp vs JGF-MT relative time difference (paper: < 1%%):\n")
	for _, t := range threads {
		deltas := table.Deltas(t)
		var names []string
		for n := range deltas {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Printf("  %-12s %2d threads: %+6.2f%%\n", n, t, deltas[n]*100)
		}
	}

	if *jsonPath != "" {
		if err := writeJSON(*jsonPath, *size, *asym, threads, *reps, schedStats, all, seqSecs); err != nil {
			fmt.Fprintf(os.Stderr, "jgfbench: writing %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "jgfbench: wrote %s\n", *jsonPath)
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "jgfbench: %d validation failures\n", failures)
		os.Exit(1)
	}
}

func writeJSON(path, size, asym string, threads []int, reps int,
	schedStats *jsonSchedStats, all []harness.Measurement, seqSecs map[string]float64) error {
	rep := jsonReport{
		Schema:     3,
		Size:       size,
		Threads:    threads,
		Reps:       reps,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		HotTeams:   aomplib.HotTeamsEnabled(),
		Schedule:   aomplib.DefaultSchedule().String(),
		Asym:       asym,
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		SchedStats: schedStats,
	}
	for _, m := range all {
		r := jsonResult{
			Benchmark: m.Benchmark,
			Version:   string(m.Version),
			Threads:   m.Threads,
			Seconds:   m.Seconds,
			MinSecs:   m.Min,
			MaxSecs:   m.Max,
			MeanSecs:  m.Mean,
			Stddev:    m.Stddev,
			Reps:      m.Reps,
			Valid:     m.Err == nil,
		}
		if m.Err != nil {
			r.Error = m.Err.Error()
		}
		if m.Version != harness.Seq && m.Seconds > 0 {
			if s, ok := seqSecs[m.Benchmark]; ok {
				r.Speedup = s / m.Seconds
			}
		}
		rep.Results = append(rep.Results, r)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func record(failures *int, m harness.Measurement) harness.Measurement {
	if m.Err != nil {
		fmt.Fprintf(os.Stderr, "VALIDATION FAILURE %s/%s: %v\n", m.Benchmark, m.Version, m.Err)
		*failures++
	}
	return m
}
