package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"aomplib/internal/jgf/harness"
	"aomplib/internal/jgf/series"
	"aomplib/internal/jgf/sor"
)

// These tests validate the -trace artifact contract: running a JGF
// benchmark under traceRun (exactly what `jgfbench -only Series -trace
// out.json` does) must produce Chrome trace-event JSON with correctly
// nested phase slices, one track per team worker, and — for task-based
// workloads — matched task flow arrows.

type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Tid  int            `json:"tid"`
	ID   uint64         `json:"id"`
	Args map[string]any `json:"args"`
}

func loadTrace(t *testing.T, path string) []traceEvent {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading trace: %v", err)
	}
	var trace struct {
		TraceEvents []traceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &trace); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(trace.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
	return trace.TraceEvents
}

// checkPhaseNesting asserts every track's duration slices are properly
// nested: any two slices on one track are disjoint or one contains the
// other (what Perfetto requires to stack them).
func checkPhaseNesting(t *testing.T, evs []traceEvent) {
	t.Helper()
	const eps = 1e-6
	byTid := map[int][]traceEvent{}
	for _, ev := range evs {
		if ev.Ph == "X" {
			byTid[ev.Tid] = append(byTid[ev.Tid], ev)
		}
	}
	if len(byTid) == 0 {
		t.Fatal("trace has no duration slices")
	}
	for tid, spans := range byTid {
		sort.Slice(spans, func(i, j int) bool {
			if spans[i].Ts != spans[j].Ts {
				return spans[i].Ts < spans[j].Ts
			}
			return spans[i].Dur > spans[j].Dur
		})
		var stack []traceEvent
		for _, sp := range spans {
			for len(stack) > 0 && stack[len(stack)-1].Ts+stack[len(stack)-1].Dur <= sp.Ts+eps {
				stack = stack[:len(stack)-1]
			}
			if len(stack) > 0 {
				top := stack[len(stack)-1]
				if sp.Ts+sp.Dur > top.Ts+top.Dur+eps {
					t.Fatalf("track %d: slice %q [%f,%f] partially overlaps %q [%f,%f]",
						tid, sp.Name, sp.Ts, sp.Ts+sp.Dur, top.Name, top.Ts, top.Ts+top.Dur)
				}
			}
			stack = append(stack, sp)
		}
	}
}

// workerTracks counts thread_name metadata entries naming worker tracks.
func workerTracks(evs []traceEvent) int {
	n := 0
	for _, ev := range evs {
		if ev.Name == "thread_name" && ev.Ph == "M" {
			if name, _ := ev.Args["name"].(string); strings.HasPrefix(name, "worker ") {
				n++
			}
		}
	}
	return n
}

// matchedFlows counts flow arrows with both a start and a finish,
// splitting spawn arrows (even ids) from dependence-release arrows (odd).
func matchedFlows(evs []traceEvent) (spawn, dep int) {
	starts := map[uint64]bool{}
	for _, ev := range evs {
		if ev.Ph == "s" {
			starts[ev.ID] = true
		}
	}
	for _, ev := range evs {
		if ev.Ph == "f" && starts[ev.ID] {
			if ev.ID&1 == 0 {
				spawn++
			} else {
				dep++
			}
		}
	}
	return spawn, dep
}

func TestTraceSeriesChromeArtifact(t *testing.T) {
	const threads = 4
	path := filepath.Join(t.TempDir(), "out.json")
	err := traceRun(path, func() {
		m := harness.Measure("Series", harness.Aomp, threads,
			series.NewAomp(series.SizeTest, threads), 1)
		if m.Err != nil {
			t.Errorf("Series validation: %v", m.Err)
		}
	})
	if err != nil {
		t.Fatalf("traceRun: %v", err)
	}
	evs := loadTrace(t, path)
	checkPhaseNesting(t, evs)
	if got := workerTracks(evs); got < threads {
		t.Fatalf("trace has %d worker tracks, want >= %d (one per worker)", got, threads)
	}
	regions := 0
	for _, ev := range evs {
		if ev.Ph == "X" && ev.Cat == "region" {
			regions++
		}
	}
	if regions < threads {
		t.Fatalf("trace has %d region slices, want >= %d", regions, threads)
	}
}

func TestTraceTaskFlowArrows(t *testing.T) {
	const threads = 2
	path := filepath.Join(t.TempDir(), "out.json")
	err := traceRun(path, func() {
		// The dataflow SOR version spawns @Depend tasks — the workload that
		// must yield spawn→run flow arrows and dependence-release instants.
		m := harness.Measure("SOR", harness.AompDep, threads,
			sor.NewAompDep(sor.SizeTest, threads), 1)
		if m.Err != nil {
			t.Errorf("SOR validation: %v", m.Err)
		}
	})
	if err != nil {
		t.Fatalf("traceRun: %v", err)
	}
	evs := loadTrace(t, path)
	checkPhaseNesting(t, evs)
	spawnArrows, depArrows := matchedFlows(evs)
	if spawnArrows == 0 {
		t.Fatal("no matched spawn flow arrows in a dataflow trace")
	}
	if depArrows == 0 {
		t.Fatal("no matched dependence-release flow arrows in a dataflow trace")
	}
	tasks := 0
	for _, ev := range evs {
		if ev.Ph == "X" && ev.Cat == "task" {
			tasks++
		}
	}
	if tasks == 0 {
		t.Fatal("no task slices in a dataflow trace")
	}
}
