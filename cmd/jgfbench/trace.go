package main

import (
	"os"

	"aomplib"
)

// traceRun executes run inside a recording runtime trace and writes the
// timeline as Chrome trace-event JSON to path — the -trace flag's
// implementation, shared with the trace-validity test. Tracing stays
// enabled only for the run: the tracer is uninstalled afterwards so a
// traced benchmark process ends in the same runtime state it started in.
func traceRun(path string, run func()) error {
	aomplib.StartTrace()
	defer aomplib.EnableTracing(false)
	run()
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := aomplib.StopTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
