// Command moldynstudy regenerates the paper's Figure 15: the performance
// of different MolDyn parallelisations — a critical region on the force
// update, one lock per particle, and the JGF thread-local-array strategy —
// across particle counts and team sizes, all as pluggable aspects over the
// same base program.
//
// Usage:
//
//	go run ./cmd/moldynstudy -mm=6,8 -threads=2 -moves=10
//	go run ./cmd/moldynstudy -mm=6,8,13,17 -big -threads=2,4   # paper sweep
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"aomplib/internal/jgf/harness"
	"aomplib/internal/jgf/moldyn"
)

func parseInts(s string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "moldynstudy: bad integer %q\n", part)
			os.Exit(2)
		}
		out = append(out, n)
	}
	return out
}

func main() {
	mmFlag := flag.String("mm", "6,8", "lattice sizes (particles = 4·mm³); paper uses 6,8,13,17,40,50")
	big := flag.Bool("big", false, "append the paper's 256k/500k sizes (mm=40,50; slow)")
	moves := flag.Int("moves", 10, "time steps per run")
	threadsFlag := flag.String("threads", "2", "comma-separated team sizes")
	reps := flag.Int("reps", 1, "kernel repetitions (fastest kept)")
	flag.Parse()

	mms := parseInts(*mmFlag)
	if *big {
		mms = append(mms, 40, 50)
	}
	threads := parseInts(*threadsFlag)

	type variant struct {
		name string
		mk   func(p moldyn.Params, t int) harness.Instance
	}
	variants := []variant{
		{"Critical", func(p moldyn.Params, t int) harness.Instance {
			return moldyn.NewAomp(p, t, moldyn.CriticalStrategy)
		}},
		{"Locks", func(p moldyn.Params, t int) harness.Instance {
			return moldyn.NewAomp(p, t, moldyn.LockPerParticleStrategy)
		}},
		{"JGF", func(p moldyn.Params, t int) harness.Instance {
			return moldyn.NewMT(p, t)
		}},
		{"AompTL", func(p moldyn.Params, t int) harness.Instance {
			return moldyn.NewAomp(p, t, moldyn.ThreadLocalStrategy)
		}},
	}

	fmt.Printf("Figure 15 — MolDyn parallelisation strategies, speed-up over sequential\n")
	fmt.Printf("(moves=%d; Critical/Locks/AompTL are aspects over one base program)\n\n", *moves)
	fmt.Printf("%-10s %-10s %10s", "variant", "particles", "seq(s)")
	for _, t := range threads {
		fmt.Printf(" %9dT", t)
	}
	fmt.Println()

	exit := 0
	for _, mm := range mms {
		p := moldyn.Params{MM: mm, Moves: *moves}
		seq := harness.Measure("MolDyn", harness.Seq, 1, moldyn.NewSeq(p), *reps)
		if seq.Err != nil {
			fmt.Fprintf(os.Stderr, "seq validation failed (mm=%d): %v\n", mm, seq.Err)
			exit = 1
			continue
		}
		for _, v := range variants {
			fmt.Printf("%-10s %-10d %10.3f", v.name, p.N(), seq.Seconds)
			for _, t := range threads {
				m := harness.Measure("MolDyn", harness.Version(v.name), t, v.mk(p, t), *reps)
				if m.Err != nil {
					fmt.Printf(" %10s", "INVALID")
					fmt.Fprintf(os.Stderr, "validation failed %s mm=%d t=%d: %v\n", v.name, mm, t, m.Err)
					exit = 1
					continue
				}
				fmt.Printf(" %9.2fx", harness.Speedup(seq, m))
			}
			fmt.Println()
		}
		fmt.Println()
	}
	os.Exit(exit)
}
