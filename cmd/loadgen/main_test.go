package main

import (
	"strings"
	"testing"
	"time"
)

// shortConfig keeps in-process sweeps fast enough for `go test ./...`.
func shortConfig() Config {
	cfg := DefaultConfig()
	cfg.Sweep = []int{1, 2}
	cfg.Duration = 300 * time.Millisecond
	return cfg
}

func TestRunSweepDirectFairness(t *testing.T) {
	cfg := shortConfig()
	rep, err := runSweep(cfg)
	if err != nil {
		t.Fatalf("runSweep: %v", err)
	}
	if len(rep.Points) != len(cfg.Sweep) {
		t.Fatalf("got %d points, want %d", len(rep.Points), len(cfg.Sweep))
	}
	for _, p := range rep.Points {
		if p.Requests == 0 {
			t.Fatalf("point %d completed no requests", p.ClientsPerTenant)
		}
		if len(p.Tenants) != cfg.Tenants {
			t.Fatalf("point %d has %d tenant rows, want %d", p.ClientsPerTenant, len(p.Tenants), cfg.Tenants)
		}
		if p.P99Ms < p.P50Ms {
			t.Fatalf("point %d: p99 %.3fms < p50 %.3fms", p.ClientsPerTenant, p.P99Ms, p.P50Ms)
		}
		if len(p.Starved) > 0 {
			t.Fatalf("point %d starved tenants %v (fairness %.3f)", p.ClientsPerTenant, p.Starved, p.Fairness)
		}
	}
	if err := rep.Check(); err != nil {
		t.Fatalf("Check on a healthy report: %v", err)
	}
	if rep.Admission.Admitted == 0 {
		t.Fatal("admission snapshot recorded no admits")
	}
}

func TestRunSweepRejectShedsWithoutDeadlock(t *testing.T) {
	cfg := shortConfig()
	cfg.MaxTeams = 1
	cfg.Policy = "reject"
	cfg.Sweep = []int{4} // 16 clients over 1 slot: saturation
	done := make(chan struct{})
	var rep *Report
	var err error
	go func() {
		defer close(done)
		rep, err = runSweep(cfg)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("saturated reject sweep deadlocked")
	}
	if err != nil {
		t.Fatalf("runSweep: %v", err)
	}
	p := rep.Points[0]
	if p.Rejected == 0 {
		t.Fatal("saturated reject sweep shed nothing")
	}
	if p.Degraded < p.Rejected {
		t.Fatalf("rejected requests must degrade, not vanish: rejected=%d degraded=%d", p.Rejected, p.Degraded)
	}
	if len(p.Starved) > 0 {
		t.Fatalf("degraded service still starved %v (fairness %.3f)", p.Starved, p.Fairness)
	}
}

func TestRunSweepHTTPMode(t *testing.T) {
	cfg := shortConfig()
	cfg.HTTP = true
	cfg.Kernel = "mix"
	cfg.Tenants = 2
	cfg.Sweep = []int{2}
	rep, err := runSweep(cfg)
	if err != nil {
		t.Fatalf("runSweep(http): %v", err)
	}
	if rep.Points[0].Requests == 0 {
		t.Fatal("HTTP sweep completed no requests")
	}
	if err := rep.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
}

func TestReportCheckFlagsStarvation(t *testing.T) {
	rep := &Report{Config: Config{FairMin: 0.25}}
	rep.Points = []Point{{ClientsPerTenant: 2, Requests: 10, Fairness: 0.1, Starved: []string{"tenant-3"}}}
	err := rep.Check()
	if err == nil || !strings.Contains(err.Error(), "tenant-3") {
		t.Fatalf("starvation not flagged: %v", err)
	}
	rep.Config.P99Max = time.Millisecond
	rep.Points = []Point{{ClientsPerTenant: 1, Requests: 10, Fairness: 1, P99Ms: 50}}
	err = rep.Check()
	if err == nil || !strings.Contains(err.Error(), "p99") {
		t.Fatalf("p99 bound not flagged: %v", err)
	}
}

func TestParseSweepAndPolicy(t *testing.T) {
	if got, err := parseSweep("1, 2,8"); err != nil || len(got) != 3 || got[2] != 8 {
		t.Fatalf("parseSweep: %v %v", got, err)
	}
	if _, err := parseSweep("1,x"); err == nil {
		t.Fatal("garbage sweep accepted")
	}
	if _, err := parsePolicy("drop"); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if _, err := runSweep(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	cfg := shortConfig()
	cfg.Kernel = "fortran"
	if _, err := runSweep(cfg); err == nil {
		t.Fatal("unknown kernel accepted")
	}
}
