package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"aomplib"
	"aomplib/internal/graph"
	"aomplib/internal/jgf/montecarlo"
	"aomplib/internal/sched"
)

// Config describes one load-test run: the multi-tenant runtime shape
// (admission slots, team width, policy, quotas) and the offered-load sweep
// (closed-loop clients per tenant, one sweep point per entry).
type Config struct {
	Tenants    int           // concurrent tenants (named tenant-0..N-1)
	MaxTeams   int           // admission lease slots over the hot-team pool
	TeamSize   int           // workers per parallel region
	Kernel     string        // pagerank | montecarlo | mix
	Policy     string        // block | timeout | reject
	Timeout    time.Duration // queue-wait bound for the timeout policy
	Quota      int           // per-tenant concurrent-lease cap (0 = none)
	QueueBound int           // admission queue bound (0 = library default)
	Sweep      []int         // clients per tenant, one point per entry
	Duration   time.Duration // wall time per sweep point
	HTTP       bool          // drive requests through a local HTTP server
	Metrics    bool          // mount the aomplib diagnostics (/metrics, /debug/aomp/*)
	Addr       string        // listen address ("" = loopback ephemeral)
	Seed       int64         // graph/workload seed

	// Check thresholds (applied by Report.Check).
	FairMin float64       // min acceptable min/max tenant throughput ratio
	P99Max  time.Duration // max acceptable p99 latency (0 = unchecked)
}

// DefaultConfig is the shape the CI smoke and the README quick-start use:
// four tenants arbitrated over two admission slots of two-worker teams.
func DefaultConfig() Config {
	return Config{
		Tenants:  4,
		MaxTeams: 2,
		TeamSize: 2,
		Kernel:   "pagerank",
		Policy:   "timeout",
		Timeout:  5 * time.Millisecond,
		Sweep:    []int{1, 2, 4},
		Duration: 2 * time.Second,
		Seed:     1,
		FairMin:  0.25,
	}
}

// TenantPoint is one tenant's slice of a sweep point.
type TenantPoint struct {
	Name     string  `json:"name"`
	Requests int     `json:"requests"`
	RPS      float64 `json:"rps"`
	P50Ms    float64 `json:"p50_ms"`
	P99Ms    float64 `json:"p99_ms"`
	Queued   int     `json:"queued"`
	Rejected int     `json:"rejected"`
	TimedOut int     `json:"timed_out"`
	Degraded int     `json:"degraded"`
}

// Point is one offered-load level of the sweep.
type Point struct {
	ClientsPerTenant int     `json:"clients_per_tenant"`
	Clients          int     `json:"clients"`
	DurationSec      float64 `json:"duration_sec"`
	Requests         int     `json:"requests"`
	ThroughputRPS    float64 `json:"throughput_rps"`
	P50Ms            float64 `json:"p50_ms"`
	P99Ms            float64 `json:"p99_ms"`
	MaxMs            float64 `json:"max_ms"`
	Queued           int     `json:"queued"`
	Rejected         int     `json:"rejected"`
	TimedOut         int     `json:"timed_out"`
	Degraded         int     `json:"degraded"`
	RejectionRate    float64 `json:"rejection_rate"`
	// Fairness is min/max tenant throughput: 1.0 is perfectly fair, and a
	// tenant below FairMin of the best tenant counts as starved.
	Fairness float64       `json:"fairness"`
	Starved  []string      `json:"starved,omitempty"`
	Tenants  []TenantPoint `json:"tenants"`
}

// Report is the loadgen output, serialised as JSON.
type Report struct {
	Config    Config                    `json:"config"`
	Points    []Point                   `json:"points"`
	Admission aomplib.AdmissionSnapshot `json:"admission"`
}

// Check validates the report against the config thresholds: no starved
// tenants at any point, and p99 under the bound when one is set.
func (r *Report) Check() error {
	var probs []string
	for _, p := range r.Points {
		if len(p.Starved) > 0 {
			probs = append(probs, fmt.Sprintf(
				"point %d clients/tenant: starved tenants %v (fairness %.3f < %.3f)",
				p.ClientsPerTenant, p.Starved, p.Fairness, r.Config.FairMin))
		}
		if r.Config.P99Max > 0 && p.P99Ms > float64(r.Config.P99Max)/1e6 {
			probs = append(probs, fmt.Sprintf(
				"point %d clients/tenant: p99 %.2fms over bound %v",
				p.ClientsPerTenant, p.P99Ms, r.Config.P99Max))
		}
		if p.Requests == 0 {
			probs = append(probs, fmt.Sprintf(
				"point %d clients/tenant: no requests completed", p.ClientsPerTenant))
		}
	}
	if len(probs) > 0 {
		return fmt.Errorf("loadgen check failed:\n  %s", strings.Join(probs, "\n  "))
	}
	return nil
}

// outcome is what one request observed on its tenant token.
type outcome struct {
	lat      time.Duration
	queued   bool
	rejected bool
	timedOut bool
	degraded bool
}

// clientStats accumulates one closed-loop client's outcomes (merged per
// tenant after the point; no sharing during the run).
type clientStats struct {
	lats     []time.Duration
	queued   int
	rejected int
	timedOut int
	degraded int
}

func (s *clientStats) add(o outcome) {
	s.lats = append(s.lats, o.lat)
	if o.queued {
		s.queued++
	}
	if o.rejected {
		s.rejected++
	}
	if o.timedOut {
		s.timedOut++
	}
	if o.degraded {
		s.degraded++
	}
}

// buildKernels returns one independent request function per client slot.
// PageRank instances share one power-law graph (the read-only part);
// Monte Carlo instances are self-contained. Every call of a returned
// function enters exactly one parallel region.
func buildKernels(cfg Config, clients int) ([]func(), error) {
	kernels := make([]func(), clients)
	var g *graph.Graph
	newPagerank := func() func() {
		if g == nil {
			g = graph.NewPowerLaw(1500, 8, cfg.Seed)
		}
		pr := graph.NewPageRank(g, 0.85, 2)
		run, _ := graph.BuildAomp(pr, cfg.TeamSize, sched.Dynamic, 64)
		return run
	}
	newMontecarlo := func() func() {
		inst := montecarlo.NewAomp(montecarlo.Params{Runs: 300, Steps: 60}, cfg.TeamSize)
		inst.Setup()
		return inst.Kernel
	}
	for i := range kernels {
		switch cfg.Kernel {
		case "pagerank":
			kernels[i] = newPagerank()
		case "montecarlo":
			kernels[i] = newMontecarlo()
		case "mix":
			if i%2 == 0 {
				kernels[i] = newPagerank()
			} else {
				kernels[i] = newMontecarlo()
			}
		default:
			return nil, fmt.Errorf("unknown kernel %q (pagerank, montecarlo, mix)", cfg.Kernel)
		}
	}
	return kernels, nil
}

// serveOne runs one request under the named tenant and reports what the
// admission controller did with it.
func serveOne(tenant string, work func()) outcome {
	tok := aomplib.EnterTenant(tenant)
	defer tok.Exit()
	start := time.Now()
	work()
	return outcome{
		lat:      time.Since(start),
		queued:   tok.Queued() > 0,
		rejected: tok.Rejected() > 0,
		timedOut: tok.TimedOut() > 0,
		degraded: tok.Degraded() > 0,
	}
}

func parsePolicy(s string) (aomplib.AdmitPolicy, error) {
	switch s {
	case "block":
		return aomplib.AdmitBlock, nil
	case "timeout":
		return aomplib.AdmitTimeout, nil
	case "reject":
		return aomplib.AdmitReject, nil
	}
	return 0, fmt.Errorf("unknown policy %q (block, timeout, reject)", s)
}

func percentileMs(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return float64(sorted[idx]) / 1e6
}

// runSweep configures the runtime per cfg and drives every sweep point:
// Tenants×clients closed-loop request goroutines hammering the admission
// layer for cfg.Duration each, directly or through a local HTTP server.
func runSweep(cfg Config) (*Report, error) {
	if cfg.Tenants < 1 || cfg.MaxTeams < 1 || cfg.TeamSize < 1 || len(cfg.Sweep) == 0 {
		return nil, fmt.Errorf("config needs >=1 tenant, team, worker and sweep point: %+v", cfg)
	}
	policy, err := parsePolicy(cfg.Policy)
	if err != nil {
		return nil, err
	}

	maxClients := 0
	for _, c := range cfg.Sweep {
		if c < 1 {
			return nil, fmt.Errorf("sweep point %d is not a positive client count", c)
		}
		if cfg.Tenants*c > maxClients {
			maxClients = cfg.Tenants * c
		}
	}
	kernels, err := buildKernels(cfg, maxClients)
	if err != nil {
		return nil, err
	}

	// Runtime shape: a hot-team pool sized to the admission slots, so the
	// arbitrated teams stay warm while saturation traffic degrades instead
	// of thrashing the cache.
	prevPool := aomplib.SetPoolSize(cfg.MaxTeams * cfg.TeamSize)
	defer aomplib.SetPoolSize(prevPool)
	prevOn := aomplib.SetAdmissionControl(true)
	defer aomplib.SetAdmissionControl(prevOn)
	prevPolicy, prevTimeout := aomplib.SetAdmitPolicy(policy, cfg.Timeout)
	defer aomplib.SetAdmitPolicy(prevPolicy, prevTimeout)
	prevMax := aomplib.SetAdmitMaxTeams(cfg.MaxTeams)
	defer aomplib.SetAdmitMaxTeams(prevMax)
	if cfg.QueueBound > 0 {
		prevQB := aomplib.SetAdmitQueueBound(cfg.QueueBound)
		defer aomplib.SetAdmitQueueBound(prevQB)
	}
	tenantName := func(t int) string { return fmt.Sprintf("tenant-%d", t) }
	if cfg.Quota > 0 {
		for t := 0; t < cfg.Tenants; t++ {
			prev := aomplib.SetTenantQuota(tenantName(t), cfg.Quota)
			defer aomplib.SetTenantQuota(tenantName(t), prev)
		}
	}

	// request(client, tenant) issues one request and returns its outcome.
	request := func(client int, tenant string) (outcome, error) {
		return serveOne(tenant, kernels[client]), nil
	}
	if cfg.HTTP {
		srv, httpReq, err := startHTTPServer(cfg, kernels)
		if err != nil {
			return nil, err
		}
		defer srv.Close()
		request = httpReq
	} else if cfg.Metrics {
		// No request server to share: serve the diagnostics standalone so
		// a scraper can still watch the run.
		addr := cfg.Addr
		if addr == "" {
			addr = "127.0.0.1:0"
		}
		srv, err := aomplib.ServeDiagnostics(addr)
		if err != nil {
			return nil, err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "loadgen: diagnostics on http://%s/metrics\n", srv.Addr)
	}

	rep := &Report{Config: cfg}
	for _, perTenant := range cfg.Sweep {
		clients := cfg.Tenants * perTenant
		stats := make([]clientStats, clients)
		deadline := time.Now().Add(cfg.Duration)
		start := time.Now()
		var wg sync.WaitGroup
		errs := make(chan error, clients)
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				tenant := tenantName(c % cfg.Tenants)
				for time.Now().Before(deadline) {
					o, err := request(c, tenant)
					if err != nil {
						errs <- err
						return
					}
					stats[c].add(o)
				}
			}(c)
		}
		wg.Wait()
		elapsed := time.Since(start)
		close(errs)
		if err := <-errs; err != nil {
			return nil, err
		}

		rep.Points = append(rep.Points, summarize(cfg, perTenant, elapsed, stats, tenantName))
	}
	rep.Admission = aomplib.AdmissionStats()
	return rep, nil
}

// summarize folds the point's client stats into per-tenant and aggregate
// latency/throughput/fairness numbers.
func summarize(cfg Config, perTenant int, elapsed time.Duration, stats []clientStats, tenantName func(int) string) Point {
	pt := Point{
		ClientsPerTenant: perTenant,
		Clients:          len(stats),
		DurationSec:      elapsed.Seconds(),
	}
	var all []time.Duration
	for t := 0; t < cfg.Tenants; t++ {
		tp := TenantPoint{Name: tenantName(t)}
		var lats []time.Duration
		for c := t; c < len(stats); c += cfg.Tenants {
			s := &stats[c]
			tp.Requests += len(s.lats)
			tp.Queued += s.queued
			tp.Rejected += s.rejected
			tp.TimedOut += s.timedOut
			tp.Degraded += s.degraded
			lats = append(lats, s.lats...)
		}
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		tp.RPS = float64(tp.Requests) / elapsed.Seconds()
		tp.P50Ms = percentileMs(lats, 0.50)
		tp.P99Ms = percentileMs(lats, 0.99)
		all = append(all, lats...)
		pt.Requests += tp.Requests
		pt.Queued += tp.Queued
		pt.Rejected += tp.Rejected
		pt.TimedOut += tp.TimedOut
		pt.Degraded += tp.Degraded
		pt.Tenants = append(pt.Tenants, tp)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pt.ThroughputRPS = float64(pt.Requests) / elapsed.Seconds()
	pt.P50Ms = percentileMs(all, 0.50)
	pt.P99Ms = percentileMs(all, 0.99)
	if len(all) > 0 {
		pt.MaxMs = float64(all[len(all)-1]) / 1e6
	}
	if pt.Requests > 0 {
		pt.RejectionRate = float64(pt.Rejected) / float64(pt.Requests)
	}

	minRPS, maxRPS := math.Inf(1), 0.0
	for _, tp := range pt.Tenants {
		minRPS = math.Min(minRPS, tp.RPS)
		maxRPS = math.Max(maxRPS, tp.RPS)
	}
	if maxRPS > 0 {
		pt.Fairness = minRPS / maxRPS
	}
	for _, tp := range pt.Tenants {
		if tp.RPS < cfg.FairMin*maxRPS {
			pt.Starved = append(pt.Starved, tp.Name)
		}
	}
	return pt
}

// startHTTPServer exposes the kernels as a request service on a loopback
// listener: POST /run?client=N with an X-Tenant header runs one request
// and answers 200 (admitted) or 503 (shed — rejected or timed out, served
// serialized) with the outcome as JSON. With cfg.Metrics, the aomplib
// diagnostics handler is mounted on the same mux (/metrics and
// /debug/aomp/*), so a Prometheus scraper can watch the run mid-flight.
// The returned request func is what the sweep clients call.
func startHTTPServer(cfg Config, kernels []func()) (*http.Server, func(int, string) (outcome, error), error) {
	addr := cfg.Addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	type wire struct {
		LatNs    int64 `json:"lat_ns"`
		Queued   bool  `json:"queued"`
		Rejected bool  `json:"rejected"`
		TimedOut bool  `json:"timed_out"`
		Degraded bool  `json:"degraded"`
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/run", func(w http.ResponseWriter, r *http.Request) {
		var client int
		if _, err := fmt.Sscanf(r.URL.Query().Get("client"), "%d", &client); err != nil ||
			client < 0 || client >= len(kernels) {
			http.Error(w, "bad client index", http.StatusBadRequest)
			return
		}
		tenant := r.Header.Get("X-Tenant")
		if tenant == "" {
			http.Error(w, "missing X-Tenant", http.StatusBadRequest)
			return
		}
		o := serveOne(tenant, kernels[client])
		if o.rejected {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		json.NewEncoder(w).Encode(wire{
			LatNs: int64(o.lat), Queued: o.queued,
			Rejected: o.rejected, TimedOut: o.timedOut, Degraded: o.degraded,
		})
	})
	if cfg.Metrics {
		diag := aomplib.Handler()
		mux.Handle("/metrics", diag)
		mux.Handle("/debug/aomp/", diag)
		fmt.Fprintf(os.Stderr, "loadgen: diagnostics on http://%s/metrics\n", ln.Addr())
	}
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)

	base := fmt.Sprintf("http://%s/run", ln.Addr())
	httpClient := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 256}}
	request := func(client int, tenant string) (outcome, error) {
		req, err := http.NewRequest(http.MethodPost, fmt.Sprintf("%s?client=%d", base, client), nil)
		if err != nil {
			return outcome{}, err
		}
		req.Header.Set("X-Tenant", tenant)
		start := time.Now()
		resp, err := httpClient.Do(req)
		if err != nil {
			return outcome{}, err
		}
		var w wire
		err = json.NewDecoder(resp.Body).Decode(&w)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if err != nil {
			return outcome{}, fmt.Errorf("decode response (status %d): %w", resp.StatusCode, err)
		}
		if (resp.StatusCode == http.StatusServiceUnavailable) != w.Rejected {
			return outcome{}, fmt.Errorf("status %d disagrees with rejected=%v", resp.StatusCode, w.Rejected)
		}
		// End-to-end latency, so queueing and transport are both in it.
		return outcome{
			lat: time.Since(start), queued: w.Queued,
			rejected: w.Rejected, timedOut: w.TimedOut, degraded: w.Degraded,
		}, nil
	}
	return srv, request, nil
}
