// Command loadgen load-tests the multi-tenant server mode: N tenants'
// closed-loop clients push PageRank / Monte Carlo requests — each one a
// parallel region — through the admission layer over the hot-team pool,
// sweeping offered load and reporting p50/p99 latency, throughput,
// rejection rate and cross-tenant fairness as JSON.
//
// The CI smoke (and a quick local look) is:
//
//	go run ./cmd/loadgen -tenants 4 -teams 2 -sweep 1,2 -duration 2s -check
//
// which fails (exit 1) if any tenant starves — throughput under -fairmin
// of the best tenant's — or, with -p99max set, if p99 exceeds the bound.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

func parseSweep(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("bad sweep point %q: %w", f, err)
		}
		out = append(out, n)
	}
	return out, nil
}

func main() {
	def := DefaultConfig()
	tenants := flag.Int("tenants", def.Tenants, "concurrent tenants")
	teams := flag.Int("teams", def.MaxTeams, "admission lease slots (concurrent teams)")
	teamsize := flag.Int("teamsize", def.TeamSize, "workers per parallel region")
	kernel := flag.String("kernel", def.Kernel, "request kernel: pagerank, montecarlo or mix")
	policy := flag.String("policy", def.Policy, "backpressure policy: block, timeout or reject")
	timeout := flag.Duration("timeout", def.Timeout, "queue-wait bound for -policy timeout")
	quota := flag.Int("quota", 0, "per-tenant concurrent-lease cap (0 = none)")
	queue := flag.Int("queue", 0, "admission queue bound (0 = library default)")
	sweepStr := flag.String("sweep", "1,2,4", "closed-loop clients per tenant, comma-separated")
	duration := flag.Duration("duration", def.Duration, "wall time per sweep point")
	useHTTP := flag.Bool("http", false, "drive requests through a local HTTP server")
	metrics := flag.Bool("metrics", false, "serve the aomplib diagnostics (/metrics, /debug/aomp/*) during the run")
	addr := flag.String("addr", "", "listen address for -http/-metrics (default loopback ephemeral)")
	seed := flag.Int64("seed", def.Seed, "workload seed")
	out := flag.String("o", "", "write the JSON report here instead of stdout")
	check := flag.Bool("check", false, "exit 1 on starved tenants or a busted -p99max")
	fairmin := flag.Float64("fairmin", def.FairMin, "starvation threshold: min/max tenant throughput")
	p99max := flag.Duration("p99max", 0, "p99 latency bound for -check (0 = unchecked)")
	flag.Parse()

	sweep, err := parseSweep(*sweepStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(2)
	}
	cfg := Config{
		Tenants: *tenants, MaxTeams: *teams, TeamSize: *teamsize,
		Kernel: *kernel, Policy: *policy, Timeout: *timeout,
		Quota: *quota, QueueBound: *queue,
		Sweep: sweep, Duration: *duration, HTTP: *useHTTP, Seed: *seed,
		Metrics: *metrics, Addr: *addr,
		FairMin: *fairmin, P99Max: *p99max,
	}

	rep, err := runSweep(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(2)
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(2)
	}
	enc = append(enc, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, enc, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(2)
		}
	} else {
		os.Stdout.Write(enc)
	}

	for _, p := range rep.Points {
		fmt.Fprintf(os.Stderr,
			"loadgen: %2d clients/tenant  %8.1f req/s  p50 %7.2fms  p99 %7.2fms  reject %5.1f%%  fairness %.3f\n",
			p.ClientsPerTenant, p.ThroughputRPS, p.P50Ms, p.P99Ms, 100*p.RejectionRate, p.Fairness)
	}
	if *check {
		if err := rep.Check(); err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "loadgen: check passed — no starved tenants")
	}
}
