// Command weavedump prints the woven structure of a benchmark's AOmpLib
// version — every joinpoint with its annotations and the advice chain
// applied to it, outermost first. It is the analogue of the AspectJ
// compiler's weave-info messages and is the quickest way to see what a
// given aspect composition actually does.
//
// Usage:
//
//	go run ./cmd/weavedump            # all benchmarks
//	go run ./cmd/weavedump -only=lufact
//	go run ./cmd/weavedump -explain   # show which pointcut matched each advice
//
// Each advice line carries its gate state ([on]/[off], see
// Program.SetAdviceEnabled); with -explain it also shows the pointcut
// expression that selected the joinpoint, resolved through the weaver's
// pointcut index.
package main

import (
	"flag"
	"fmt"
	"strings"

	"aomplib/internal/jgf/crypt"
	"aomplib/internal/jgf/harness"
	"aomplib/internal/jgf/lufact"
	"aomplib/internal/jgf/moldyn"
	"aomplib/internal/jgf/montecarlo"
	"aomplib/internal/jgf/raytracer"
	"aomplib/internal/jgf/series"
	"aomplib/internal/jgf/sor"
	"aomplib/internal/jgf/sparse"
	"aomplib/internal/weaver"
)

type weaveReporter interface {
	harness.Instance
	WeaveReport() []weaver.WovenMethod
}

func main() {
	only := flag.String("only", "", "comma-separated benchmark filter")
	explain := flag.Bool("explain", false, "show the pointcut that matched each joinpoint")
	flag.Parse()
	filter := map[string]bool{}
	for _, f := range strings.Split(*only, ",") {
		if f = strings.TrimSpace(strings.ToLower(f)); f != "" {
			filter[f] = true
		}
	}

	benchmarks := []struct {
		name string
		inst weaveReporter
	}{
		{"Crypt", crypt.NewAomp(crypt.SizeTest, 2).(weaveReporter)},
		{"LUFact", lufact.NewAomp(lufact.SizeTest, 2).(weaveReporter)},
		{"Series", series.NewAomp(series.SizeTest, 2).(weaveReporter)},
		{"SOR", sor.NewAomp(sor.SizeTest, 2).(weaveReporter)},
		{"Sparse", sparse.NewAomp(sparse.SizeTest, 2).(weaveReporter)},
		{"MolDyn", moldyn.NewAomp(moldyn.SizeTest, 2, moldyn.ThreadLocalStrategy).(weaveReporter)},
		{"MonteCarlo", montecarlo.NewAomp(montecarlo.SizeTest, 2).(weaveReporter)},
		{"RayTracer", raytracer.NewAomp(raytracer.SizeTest, 2).(weaveReporter)},
	}
	for _, b := range benchmarks {
		if len(filter) > 0 && !filter[strings.ToLower(b.name)] {
			continue
		}
		b.inst.Setup()
		fmt.Printf("=== %s ===\n", b.name)
		for _, wm := range b.inst.WeaveReport() {
			fmt.Printf("  %-28s [%s]", wm.FQN, wm.Kind)
			if len(wm.Annotations) > 0 {
				fmt.Printf(" @%s", strings.Join(wm.Annotations, " @"))
			}
			fmt.Println()
			if len(wm.Advice) == 0 {
				fmt.Println("      (unadvised — direct call)")
				continue
			}
			for i, d := range wm.Details {
				state := "on"
				if !d.Enabled {
					state = "off"
				}
				fmt.Printf("      %s%s/%s [%s]", strings.Repeat("  ", i), d.Aspect, d.Advice, state)
				if *explain {
					fmt.Printf("  ← %s", d.Pointcut)
				}
				fmt.Println()
			}
		}
		fmt.Println()
	}
}
