// Quickstart: estimate π by numerical integration with AOmpLib.
//
// The base program is plain sequential Go: a for method integrating
// 4/(1+x²) over [0,1] into an accumulator field. Parallelism is plugged in
// afterwards: a parallel region, block work-sharing, a thread-local
// accumulator and a reduction — without touching the base logic. The
// program runs the same computation three ways (sequential, woven,
// unwoven again) to demonstrate that aspects can be (un)plugged at any
// time while preserving sequential semantics.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"aomplib"
)

const steps = 50_000_000

// piProgram is the base program: note there is no parallelism-related
// code anywhere in it. The accumulator is read through an accessor
// joinpoint so the thread-local aspect can substitute a per-thread cell
// (the @ThreadLocalField seam); sequentially it is simply the field.
type piProgram struct {
	sum float64
}

func main() {
	base := &piProgram{}
	prog := aomplib.NewProgram("quickstart")
	cls := prog.Class("Pi")

	acc := cls.ValueProc("acc", func() any { return &base.sum })
	integrate := cls.ForProc("integrate", func(lo, hi, step int) {
		cell := acc().(*float64)
		h := 1.0 / float64(steps)
		local := 0.0
		for i := lo; i < hi; i += step {
			x := (float64(i) + 0.5) * h
			local += 4 / (1 + x*x)
		}
		*cell += local * h
	})
	collect := cls.Proc("collect", func() {})
	run := cls.Proc("run", func() {
		integrate(0, steps, 1)
		collect()
	})

	compute := func(label string) {
		base.sum = 0
		start := time.Now()
		run()
		fmt.Printf("%-28s pi ≈ %.12f  (err %.2e)  in %v\n",
			label, base.sum, math.Abs(base.sum-math.Pi), time.Since(start).Round(time.Millisecond))
	}

	// 1. Sequential semantics: nothing woven yet.
	compute("sequential (unwoven)")

	// 2. Plug in the parallelism aspects.
	threads := runtime.GOMAXPROCS(0)
	sumTL := aomplib.NewThreadLocal("call(* Pi.acc(..))", "sum").
		InitFresh(func() any { return new(float64) })
	prog.Use(
		aomplib.ParallelRegion("call(* Pi.run(..))").Threads(threads),
		aomplib.ForShare("call(* Pi.integrate(..))"), // staticBlock default
		sumTL,
		aomplib.ReducePoint("call(* Pi.collect(..))", sumTL, func(local any) {
			base.sum += *(local.(*float64))
		}),
	)
	prog.MustWeave()
	compute(fmt.Sprintf("parallel (%d threads)", threads))

	// 3. Unplug everything: the original program is back.
	prog.Unweave()
	compute("sequential again (unwoven)")
}
