// Tasks and futures: the @Task/@TaskWait/@FutureTask constructs.
//
// A tiny build pipeline: independent "compile units" are annotated @Task
// so each call spawns an activity; the "link" step is a @TaskWait join
// point; a checksum "report" runs as a @FutureTask whose Future getter is
// the @FutureResult synchronisation point. Unplugging the aspects runs
// the identical program sequentially.
//
// Run with:
//
//	go run ./examples/tasks
package main

import (
	"fmt"
	"sync/atomic"
	"time"

	"aomplib"
)

func main() {
	prog := aomplib.NewProgram("pipeline")
	cls := prog.Class("Build")

	var compiled atomic.Int64
	compile := cls.KeyedProc("compile", func(unit int) {
		// Simulate uneven compile times.
		time.Sleep(time.Duration(5+unit%3*5) * time.Millisecond)
		compiled.Add(1)
	})
	link := cls.Proc("link", func() {
		fmt.Printf("link: %d units compiled\n", compiled.Load())
	})
	report := cls.FutureProc("report", func() any {
		return fmt.Sprintf("artifact-%04d", compiled.Load()*37%9973)
	})

	build := func(label string) {
		compiled.Store(0)
		start := time.Now()
		for unit := 0; unit < 8; unit++ {
			compile(unit) // @Task: returns immediately when woven
		}
		link() // @TaskWait: joins all spawned compiles first
		fut := report()
		fmt.Printf("%s: %v in %v\n\n", label, fut.Get(), time.Since(start).Round(time.Millisecond))
	}

	// Sequential semantics first.
	build("sequential (unwoven)")

	prog.MustAnnotate("Build.compile", aomplib.Task{})
	prog.MustAnnotate("Build.link", aomplib.TaskWait{})
	prog.MustAnnotate("Build.report", aomplib.FutureTask{})
	prog.Use(aomplib.AnnotationAspects(prog)...)
	prog.MustWeave()
	build("tasked (woven)")
}
