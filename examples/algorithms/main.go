// Algorithms: the generic parallel layer end to end, no weaving.
//
// Where the other examples register joinpoints and plug aspects in, this
// one uses aomplib/parallel directly — the oneTBB-style "specify tasks,
// not threads" face of the same runtime. It walks a tiny image-style
// workload through the whole surface: For to generate, Reduce and Scan
// for deterministic statistics, Sort for an order statistic, a
// token-bounded Pipeline for streaming, and a FlowGraph tying dependent
// stages together. Everything runs on the hot-team pool and shows up in
// traces exactly like woven @For loops.
//
// Run with:
//
//	go run ./examples/algorithms
package main

import (
	"fmt"
	"math"

	"aomplib/parallel"
)

const n = 1 << 16

func main() {
	// For: data-parallel fill. The schedule is pluggable; steal handles
	// the skewed per-index cost of the sin/exp mix gracefully.
	xs := make([]float64, n)
	parallel.For(0, n, func(i int) {
		x := float64(i) / n
		xs[i] = math.Sin(13*x) * math.Exp(-x)
	}, parallel.WithSchedule(parallel.Steal))

	// Reduce: the combine tree is fixed by the input length, so this
	// float sum is bit-identical at every team width.
	sum := parallel.Reduce(0, n, 0.0,
		func(lo, hi int, acc float64) float64 {
			for i := lo; i < hi; i++ {
				acc += xs[i]
			}
			return acc
		},
		func(a, b float64) float64 { return a + b })
	fmt.Printf("mean %.6f\n", sum/n)

	// Scan: in-place inclusive prefix — running energy of the signal.
	energy := make([]float64, n)
	parallel.For(0, n, func(i int) { energy[i] = xs[i] * xs[i] })
	parallel.Scan(energy, 0, func(a, b float64) float64 { return a + b })
	fmt.Printf("total energy %.6f\n", energy[n-1])

	// Sort: order statistics without a full sequential sort.
	sorted := append([]float64(nil), xs...)
	parallel.Sort(sorted, func(a, b float64) bool { return a < b })
	fmt.Printf("median %.6f\n", sorted[n/2])

	// Pipeline: stream the signal through a parallel transform into a
	// serial accumulator. At most 8 chunks are in flight; the Serial
	// stage sees them in exact source order, so no locking is needed.
	const chunk = 4096
	next := 0
	var streamed float64
	parallel.Pipeline(8,
		func() ([]float64, bool) {
			if next >= n {
				return nil, false
			}
			lo := next
			next += chunk
			return xs[lo:min(next, n)], true
		},
		[]parallel.Stage[[]float64]{
			parallel.ParallelStage(func(c []float64) []float64 {
				s := 0.0
				for _, v := range c {
					s += math.Abs(v)
				}
				return []float64{s}
			}),
			parallel.SerialStage(func(c []float64) []float64 {
				streamed += c[0]
				return c
			}),
		})
	fmt.Printf("streamed |x| sum %.6f\n", streamed)

	// FlowGraph: dependent stages as a graph — the diamond a -> {b,c} -> d.
	var lowpass, highpass []float64
	var crossover float64
	g := parallel.NewFlowGraph()
	a := g.Node("split", func() {
		lowpass = make([]float64, n)
		highpass = make([]float64, n)
	})
	b := g.Node("low", func() {
		prev := 0.0
		for i, v := range xs {
			prev = 0.9*prev + 0.1*v
			lowpass[i] = prev
		}
	})
	c := g.Node("high", func() {
		parallel.For(0, n, func(i int) { highpass[i] = xs[i] * xs[i] })
	})
	d := g.Node("join", func() {
		for i := range lowpass {
			crossover += lowpass[i] * highpass[i]
		}
	})
	g.Edge(a, b)
	g.Edge(a, c)
	g.Edge(b, d)
	g.Edge(c, d)
	if err := g.Run(); err != nil {
		panic(err)
	}
	fmt.Printf("crossover %.6f\n", crossover)
}
