// Evolutionary computation with AOmpLib aspects: the paper's JECoLi case
// study in miniature (§VII: "enabling the independent development of
// parallelism modules ... the JECoLi (Java Evolutionary Computation
// Library)").
//
// A generational genetic algorithm minimises the Rastrigin function. The
// GA is a plain sequential program; one aspect module turns each
// generation into a parallel region with dynamically scheduled fitness
// evaluation and block-scheduled breeding. Per-slot seeding makes the
// woven run bit-identical to the sequential one.
//
// Run with:
//
//	go run ./examples/evolution
package main

import (
	"fmt"
	"runtime"
	"time"

	"aomplib/internal/evolib"
)

func config() evolib.Config {
	return evolib.Config{
		PopSize: 240, GenomeLen: 24, Generations: 60,
		TournamentK: 3, CrossoverRate: 0.9,
		MutationRate: 0.08, MutationSigma: 0.25, Elite: 4,
		Seed: 7, LowerBound: -5.12, UpperBound: 5.12,
	}
}

// slowRastrigin adds per-evaluation work so the fitness loop dominates,
// as in realistic metaheuristic workloads.
func slowRastrigin(genome []float64) float64 {
	f := 0.0
	for r := 0; r < 200; r++ {
		f = evolib.Rastrigin(genome)
	}
	return f
}

func main() {
	seqGA, err := evolib.New(config(), slowRastrigin)
	if err != nil {
		panic(err)
	}
	start := time.Now()
	seqBest := evolib.RunSeq(seqGA)
	seqTime := time.Since(start)
	fmt.Printf("%-22s best fitness %.6f  in %v\n", "sequential", seqBest.Fitness, seqTime.Round(time.Millisecond))

	threads := runtime.GOMAXPROCS(0)
	aompGA, err := evolib.New(config(), slowRastrigin)
	if err != nil {
		panic(err)
	}
	run, prog := evolib.BuildAomp(aompGA, threads)
	start = time.Now()
	aompBest := run()
	aompTime := time.Since(start)
	fmt.Printf("%-22s best fitness %.6f  in %v\n",
		fmt.Sprintf("aspects (%d threads)", threads), aompBest.Fitness, aompTime.Round(time.Millisecond))

	if seqBest.Fitness != aompBest.Fitness {
		fmt.Println("ERROR: woven run diverged from sequential")
		return
	}
	fmt.Printf("\nidentical evolution, %.2fx speed-up; deployed aspects: %v\n",
		seqTime.Seconds()/aompTime.Seconds(), prog.Aspects())
}
