// Linpack: the paper's §III.E case study, both binding styles.
//
// The program factorises a dense matrix with the Java Linpack kernel
// (dgefa) refactored exactly as the paper's Figure 6: an interchange
// method, a dscal method and a reduceAllCols for method. It then shows the
// two ways of parallelising it:
//
//   - the pointcut style of Figure 7 (a concrete "ParallelLinpack" aspect),
//   - the annotation style of Figure 8 (@Parallel/@For/@Master/@Barrier*).
//
// Both produce bit-identical factors, and the weave report shows the
// advice applied to each joinpoint.
//
// Run with:
//
//	go run ./examples/linpack
package main

import (
	"fmt"
	"math"
	"runtime"
	"strings"
	"time"

	"aomplib"
	"aomplib/internal/rng"
)

const n = 400

// linpack is the base program (see internal/jgf/lufact for the fully
// instrumented benchmark version; this example keeps the kernel compact).
type linpack struct {
	a    [][]float64 // column-major: a[j] is column j
	ipvt []int
	k, l int // current pivot step, set by the master between barriers
}

func newLinpack(seed int64) *linpack {
	lp := &linpack{a: make([][]float64, n), ipvt: make([]int, n)}
	r := rng.New(seed)
	for j := range lp.a {
		lp.a[j] = make([]float64, n)
		for i := range lp.a[j] {
			lp.a[j][i] = r.NextDouble() - 0.5
		}
	}
	return lp
}

func (lp *linpack) interchange() {
	lp.ipvt[lp.k] = lp.l
	if lp.l != lp.k {
		col := lp.a[lp.k]
		col[lp.l], col[lp.k] = col[lp.k], col[lp.l]
	}
}

func (lp *linpack) dscal() {
	col := lp.a[lp.k]
	t := -1.0 / col[lp.k]
	for i := lp.k + 1; i < n; i++ {
		col[i] *= t
	}
}

func (lp *linpack) reduceAllCols(lo, hi, step int) {
	colK := lp.a[lp.k]
	for j := lo; j < hi; j += step {
		colJ := lp.a[j]
		t := colJ[lp.l]
		if lp.l != lp.k {
			colJ[lp.l] = colJ[lp.k]
			colJ[lp.k] = t
		}
		for i := lp.k + 1; i < n; i++ {
			colJ[i] += t * colK[i]
		}
	}
}

func (lp *linpack) idamax(k int) int {
	col := lp.a[k]
	best, bi := math.Abs(col[k]), k
	for i := k + 1; i < n; i++ {
		if v := math.Abs(col[i]); v > best {
			best, bi = v, i
		}
	}
	return bi
}

// build registers the joinpoints and returns the dgefa entry point.
func build(lp *linpack, prog *aomplib.Program) func() {
	cls := prog.Class("Linpack")
	interchange := cls.Proc("interchange", lp.interchange)
	dscal := cls.Proc("dscal", lp.dscal)
	reduceAllCols := cls.ForProc("reduceAllCols", lp.reduceAllCols)
	return cls.Proc("dgefa", func() {
		for k := 0; k < n-1; k++ {
			l := lp.idamax(k)
			if aomplib.ThreadID() == 0 {
				lp.k, lp.l = k, l
			}
			interchange()
			if lp.a[k][k] != 0 {
				dscal()
				reduceAllCols(k+1, n, 1)
			}
		}
		if aomplib.ThreadID() == 0 {
			lp.ipvt[n-1] = n - 1
		}
	})
}

func checksum(lp *linpack) float64 {
	s := 0.0
	for j := range lp.a {
		for i := range lp.a[j] {
			s += lp.a[j][i] * float64(i%7-3)
		}
	}
	return s
}

func main() {
	threads := runtime.GOMAXPROCS(0)

	// Sequential reference.
	seqLP := newLinpack(1325)
	seqProg := aomplib.NewProgram("linpack-seq")
	seqRun := build(seqLP, seqProg)
	t0 := time.Now()
	seqRun()
	fmt.Printf("sequential:        checksum %.10f  in %v\n", checksum(seqLP), time.Since(t0).Round(time.Millisecond))

	// Pointcut style — the paper's Figure 7 "ParallelLinpack" aspect.
	pcLP := newLinpack(1325)
	pcProg := aomplib.NewProgram("linpack-pointcut")
	pcRun := build(pcLP, pcProg)
	parallelLinpack := aomplib.Compose("ParallelLinpack",
		aomplib.ParallelRegion("call(* Linpack.dgefa(..))").Threads(threads),
		aomplib.ForShare("call(* Linpack.reduceAllCols(..))"),
		aomplib.MasterSection("call(* Linpack.interchange(..)) || call(* Linpack.dscal(..))"),
		aomplib.BarrierBeforePoint("call(* Linpack.interchange(..))"),
		aomplib.BarrierAfterPoint("call(* Linpack.reduceAllCols(..)) || call(* Linpack.interchange(..)) || call(* Linpack.dscal(..))"),
	)
	pcProg.Use(parallelLinpack)
	pcProg.MustWeave()
	t0 = time.Now()
	pcRun()
	fmt.Printf("pointcut style:    checksum %.10f  in %v\n", checksum(pcLP), time.Since(t0).Round(time.Millisecond))

	// Annotation style — the paper's Figure 8.
	anLP := newLinpack(1325)
	anProg := aomplib.NewProgram("linpack-annotation")
	anRun := build(anLP, anProg)
	anProg.MustAnnotate("Linpack.dgefa", aomplib.Parallel{Threads: threads})
	anProg.MustAnnotate("Linpack.reduceAllCols", aomplib.For{}, aomplib.BarrierAfter{})
	anProg.MustAnnotate("Linpack.interchange",
		aomplib.Master{}, aomplib.BarrierBefore{}, aomplib.BarrierAfter{})
	anProg.MustAnnotate("Linpack.dscal", aomplib.Master{}, aomplib.BarrierAfter{})
	anProg.Use(aomplib.AnnotationAspects(anProg)...)
	anProg.MustWeave()
	t0 = time.Now()
	anRun()
	fmt.Printf("annotation style:  checksum %.10f  in %v\n", checksum(anLP), time.Since(t0).Round(time.Millisecond))

	if checksum(seqLP) != checksum(pcLP) || checksum(seqLP) != checksum(anLP) {
		fmt.Println("ERROR: versions disagree")
	} else {
		fmt.Println("all three versions produced bit-identical factors")
	}

	fmt.Println("\nweave report (annotation style):")
	for _, wm := range anProg.Report() {
		fmt.Printf("  %-24s %s\n", wm.FQN, strings.Join(wm.Advice, " -> "))
	}
}
