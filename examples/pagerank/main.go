// PageRank on a power-law graph: the paper's "irregular algorithms"
// extension (§VII current work).
//
// Per-vertex work in the pull-style update is proportional to in-degree,
// which spans orders of magnitude on a power-law graph — the worst case
// for static block scheduling and the reason AOmpLib exposes the schedule
// as a pluggable aspect parameter. This example runs the same base
// program under all four schedules, verifies the ranks are identical, and
// prints the timings so the imbalance is visible.
//
// Run with:
//
//	go run ./examples/pagerank
package main

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"aomplib/internal/graph"
	"aomplib/internal/sched"
)

func main() {
	const (
		vertices = 30_000
		avgDeg   = 12
		iters    = 20
		damping  = 0.85
	)
	g := graph.NewPowerLaw(vertices, avgDeg, 2013)
	fmt.Printf("power-law graph: %d vertices, %d edges, hub degree %d\n\n",
		g.N, g.Edges(), g.OutDeg[0])

	ref := graph.NewPageRank(g, damping, iters)
	start := time.Now()
	ref.RunSeq()
	fmt.Printf("%-24s Σrank %.9f  Δ %.3e  in %v\n",
		"sequential", ref.Sum(), ref.Delta(), time.Since(start).Round(time.Millisecond))

	threads := runtime.GOMAXPROCS(0)
	schedules := []struct {
		name  string
		kind  sched.Kind
		chunk int
	}{
		{"staticBlock", sched.StaticBlock, 0},
		{"staticCyclic", sched.StaticCyclic, 0},
		{"dynamic(64)", sched.Dynamic, 64},
		{"guided", sched.Guided, 16},
	}
	for _, s := range schedules {
		pr := graph.NewPageRank(g, damping, iters)
		run, _ := graph.BuildAomp(pr, threads, s.kind, s.chunk)
		start = time.Now()
		run()
		maxErr := 0.0
		for v := range pr.Ranks() {
			if d := math.Abs(pr.Ranks()[v] - ref.Ranks()[v]); d > maxErr {
				maxErr = d
			}
		}
		fmt.Printf("%-24s Σrank %.9f  maxΔ vs seq %.1e  in %v\n",
			fmt.Sprintf("aspects: %s", s.name), pr.Sum(), maxErr,
			time.Since(start).Round(time.Millisecond))
	}
	fmt.Println("\nthe schedule is an aspect parameter — the base PageRank never changes")
}
