// Multi-tenant server mode: arbitrating the hot-team pool between
// competing request streams.
//
// A server embedding AOmpLib has many request goroutines, each wanting a
// small parallel region; left alone they would each cold-spawn or fight
// over the pool. This example turns on admission control — a fair FIFO
// lease queue over the hot-team pool — binds each simulated request to a
// tenant, caps one noisy tenant with a quota, and prints the per-tenant
// outcome counters: every tenant makes progress, the noisy one cannot
// monopolize, and overload degrades to serialized execution instead of
// failing or queueing without bound.
//
// Run with:
//
//	go run ./examples/multitenant
package main

import (
	"fmt"
	"sync"
	"time"

	"aomplib"
)

// handle is one "request": a small parallel region doing fake work.
func handle(tenant string) {
	tok := aomplib.EnterTenant(tenant)
	defer tok.Exit()
	prog := aomplib.NewProgram("serve")
	n := 0
	work := prog.Class("Req").Proc("work", func() {
		time.Sleep(200 * time.Microsecond) // stand-in for kernel work
		n++
	})
	prog.Use(aomplib.ParallelRegion("call(* Req.work(..))").Threads(2))
	prog.MustWeave()
	work()
}

func main() {
	// Two concurrent teams, FIFO queue with a 2ms wait bound; "free" may
	// hold at most one of them at a time.
	aomplib.SetAdmissionControl(true)
	defer aomplib.SetAdmissionControl(false)
	aomplib.SetAdmitMaxTeams(2)
	aomplib.SetAdmitPolicy(aomplib.AdmitTimeout, 2*time.Millisecond)
	aomplib.SetTenantQuota("free", 1)

	var wg sync.WaitGroup
	for _, tenant := range []string{"enterprise", "pro", "free", "free", "free"} {
		wg.Add(1)
		go func(tenant string) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				handle(tenant)
			}
		}(tenant)
	}
	wg.Wait()

	st := aomplib.AdmissionStats()
	fmt.Printf("policy=%s slots=%d  admitted=%d queued=%d degraded=%d (timeouts=%d)\n",
		st.Policy, st.MaxTeams, st.Admitted, st.Queued, st.Degraded, st.TimedOut)
	for _, ts := range st.Tenants {
		if ts.Admitted+ts.Degraded == 0 {
			continue
		}
		fmt.Printf("  %-10s admitted=%4d degraded=%4d maxWait=%v\n",
			ts.Name, ts.Admitted, ts.Degraded, time.Duration(ts.MaxWaitNs))
	}
}
