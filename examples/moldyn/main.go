// MolDyn strategies: the paper's §V experiment in miniature (Figure 15).
//
// One molecular dynamics base program; three dependence-management
// strategies for the symmetric force updates, each plugged in as aspects
// without modifying the base: thread-local force buffers with reduction
// (the JGF approach), a critical region on the force update, and one lock
// per particle. The program runs all of them, checks they agree with the
// sequential simulation, and prints their timings.
//
// Run with:
//
//	go run ./examples/moldyn            # 864 particles
//	go run ./examples/moldyn -mm=8      # 2048 particles
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"time"

	"aomplib/internal/jgf/harness"
	"aomplib/internal/jgf/moldyn"
)

func main() {
	mm := flag.Int("mm", 6, "FCC lattice size (particles = 4·mm³)")
	moves := flag.Int("moves", 10, "time steps")
	flag.Parse()

	p := moldyn.Params{MM: *mm, Moves: *moves}
	threads := runtime.GOMAXPROCS(0)
	fmt.Printf("MolDyn: %d particles, %d steps, %d threads\n\n", p.N(), p.Moves, threads)

	type result struct {
		ekin, epot float64
		seconds    float64
	}
	run := func(name string, inst harness.Instance) result {
		start := time.Now()
		inst.Setup()
		inst.Kernel()
		secs := time.Since(start).Seconds()
		if err := inst.Validate(); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed validation: %v\n", name, err)
			os.Exit(1)
		}
		e := inst.(interface {
			Energies() (float64, float64, float64)
		})
		ekin, epot, _ := e.Energies()
		fmt.Printf("%-22s ekin %.8f  epot %.8f  in %6.3fs\n", name, ekin, epot, secs)
		return result{ekin, epot, secs}
	}

	seq := run("sequential", moldyn.NewSeq(p))
	variants := map[string]harness.Instance{
		"aspects: ThreadLocal": moldyn.NewAomp(p, threads, moldyn.ThreadLocalStrategy),
		"aspects: Critical":    moldyn.NewAomp(p, threads, moldyn.CriticalStrategy),
		"aspects: Locks":       moldyn.NewAomp(p, threads, moldyn.LockPerParticleStrategy),
	}
	ok := true
	for _, name := range []string{"aspects: ThreadLocal", "aspects: Critical", "aspects: Locks"} {
		r := run(name, variants[name])
		if math.Abs(r.ekin-seq.ekin) > 1e-9*math.Abs(seq.ekin) ||
			math.Abs(r.epot-seq.epot) > 1e-9*math.Abs(seq.epot) {
			fmt.Fprintf(os.Stderr, "%s diverged from the sequential simulation\n", name)
			ok = false
		}
	}
	if ok {
		fmt.Println("\nall strategies reproduce the sequential physics —")
		fmt.Println("\"multiple parallelisation approaches can be experimented")
		fmt.Println(" without modifying the base program\" (paper §V)")
	} else {
		os.Exit(1)
	}
}
