package parallel

import (
	"aomplib/internal/rt"
	"aomplib/internal/sched"
)

// reduceEntry is the pooled region argument of a Reduce[T] call; one pool
// per instantiated T (see poolOf).
type reduceEntry[T any] struct {
	cfg      config
	lo, hi   int
	grain    int
	kind     sched.Kind
	key      any // encounter key: e itself, or a stable loopKey for Adaptive
	identity T
	leaf     func(lo, hi int, acc T) T
	partials []T
	// body/span cache the instantiated generic func values: materializing
	// one inside Reduce[T] builds a dictionary closure at runtime (one
	// 16-byte allocation per value), so they are built once per pooled
	// entry and reused, which is what keeps steady-state dispatch at
	// 0 allocs/op.
	body func(*rt.Worker, any)
	span rt.SpanFunc
}

// Reduce folds [lo, hi) in parallel: leaf(clo, chi, identity) computes the
// partial result of one chunk, and combine merges two partials. The input
// is cut into fixed chunks of WithGrain length (default: derived from the
// input length only), the chunk index space is distributed over the team
// under WithSchedule, and the partials are merged in a fixed binary tree
// over chunk indices.
//
// Determinism: the chunk boundaries and the combine tree depend only on
// (hi-lo, grain) — never on the team width or execution order — so for a
// given input the same combine calls happen in the same association at
// every width, including width 1 and widths larger than the input. The
// result equals the sequential fold exactly when combine is associative
// with identity as a true identity element; for non-associative
// floating-point sums it is still bit-reproducible run-to-run.
//
// leaf and combine may run concurrently on distinct chunks; combine runs
// single-threaded during the final merge. Inside an existing parallel
// region the chunks are evaluated serially on the caller (same shape,
// no nested region).
func Reduce[T any](lo, hi int, identity T, leaf func(lo, hi int, acc T) T, combine func(a, b T) T, opts ...Opt) T {
	n := hi - lo
	if n <= 0 {
		return identity
	}
	pool := poolOf[reduceEntry[T]]()
	e := pool.Get().(*reduceEntry[T])
	if e.body == nil {
		e.body = reduceBody[T]
		e.span = reduceSpan[T]
	}
	applyInto(&e.cfg, opts)
	grain := e.cfg.grain
	if grain < 1 {
		grain = sched.AutoGrain(n)
	}
	chunks := (n + grain - 1) / grain
	e.lo, e.hi, e.grain, e.identity, e.leaf = lo, hi, grain, identity, leaf
	if cap(e.partials) < chunks {
		e.partials = make([]T, chunks)
	} else {
		e.partials = e.partials[:chunks]
	}

	width := e.cfg.width(chunks)
	if width <= 1 || chunks == 1 || rt.Current() != nil {
		// Serial (or nested) path: same chunking, same tree, one goroutine —
		// this is what makes the result width-independent.
		reduceSpan[T](sched.Space{Lo: 0, Hi: chunks, Step: 1}, e)
	} else {
		e.kind = sched.Resolve(e.cfg.sched, chunks, width)
		e.key = e
		if e.kind == sched.Adaptive {
			// Key the learning by the leaf's code location — pooled entries
			// are recycled between unrelated reductions.
			e.key = stableKey(leaf, 0)
		}
		rt.RegionArg(width, e.body, e)
	}

	res := treeCombine(e.partials, combine)
	var zero T
	e.leaf = nil
	for i := range e.partials {
		e.partials[i] = zero
	}
	pool.Put(e)
	return res
}

// reduceBody is the region body of Reduce: the team work-shares the chunk
// index space, each worker filling the partials of its assigned chunks.
func reduceBody[T any](w *rt.Worker, arg any) {
	e := arg.(*reduceEntry[T])
	rt.ForSpan(w, sched.Space{Lo: 0, Hi: len(e.partials), Step: 1}, e.kind, e.key, 1, e.span, arg)
}

// reduceSpan evaluates the leaf over one dispensed range of chunk indices.
func reduceSpan[T any](sub sched.Space, arg any) {
	e := arg.(*reduceEntry[T])
	n := sub.Count()
	for i := 0; i < n; i++ {
		k := sub.At(i)
		clo := e.lo + k*e.grain
		chi := clo + e.grain
		if chi > e.hi {
			chi = e.hi
		}
		e.partials[k] = e.leaf(clo, chi, e.identity)
	}
}

// treeCombine merges partials pairwise in a fixed binary tree over chunk
// indices (stride 1, 2, 4, ...). For an associative combine the result
// equals the left-to-right fold; the fixed shape is what Reduce's
// determinism guarantee rests on.
func treeCombine[T any](partials []T, combine func(a, b T) T) T {
	n := len(partials)
	for stride := 1; stride < n; stride *= 2 {
		for i := 0; i+stride < n; i += 2 * stride {
			partials[i] = combine(partials[i], partials[i+stride])
		}
	}
	return partials[0]
}
