package parallel

import (
	"aomplib/internal/rt"
	"aomplib/internal/sched"
)

// scanEntry is the pooled region argument of a Scan[T] call.
type scanEntry[T any] struct {
	cfg      config
	xs       []T
	grain    int
	kind     sched.Kind
	identity T
	// Encounter keys of the two worked phases: e itself, or stable
	// loopKeys (distinct phase tags) for Adaptive — the sum and apply
	// passes have different cost profiles, so they learn separately.
	keySum   any
	keyApply any
	combine  func(a, b T) T
	sums     []T
	// Cached instantiated generic func values, for the same 0 allocs/op
	// reason as reduceEntry: a generic func value is a runtime dictionary
	// closure, built once per pooled entry instead of once per call.
	body      func(*rt.Worker, any)
	spanSum   rt.SpanFunc
	spanApply rt.SpanFunc
}

// Scan replaces xs in place with its inclusive prefix combination:
// xs[i] becomes combine(combine(...combine(identity, xs[0])...), xs[i]).
// It is the classic two-pass parallel prefix: pass one folds each chunk to
// a partial sum, a serial sweep turns the chunk sums into chunk offsets,
// and pass two rewrites each chunk from its offset — all three phases
// inside a single region, separated by team barriers, so the team is
// leased once.
//
// Chunking follows the same rule as Reduce: boundaries depend only on
// (len(xs), WithGrain), so the combine-call tree is identical at every
// team width and the result is deterministic (and equal to the sequential
// scan when combine is associative with identity as a true identity).
// Inside an existing parallel region the same three phases run serially on
// the caller.
func Scan[T any](xs []T, identity T, combine func(a, b T) T, opts ...Opt) {
	n := len(xs)
	if n == 0 {
		return
	}
	pool := poolOf[scanEntry[T]]()
	e := pool.Get().(*scanEntry[T])
	if e.body == nil {
		e.body = scanBody[T]
		e.spanSum = scanSumSpan[T]
		e.spanApply = scanApplySpan[T]
	}
	applyInto(&e.cfg, opts)
	grain := e.cfg.grain
	if grain < 1 {
		grain = sched.AutoGrain(n)
	}
	chunks := (n + grain - 1) / grain
	e.xs, e.grain, e.identity, e.combine = xs, grain, identity, combine
	if cap(e.sums) < chunks {
		e.sums = make([]T, chunks)
	} else {
		e.sums = e.sums[:chunks]
	}

	width := e.cfg.width(chunks)
	if width <= 1 || chunks == 1 || rt.Current() != nil {
		cs := sched.Space{Lo: 0, Hi: chunks, Step: 1}
		scanSumSpan[T](cs, e)
		scanOffsets(e)
		scanApplySpan[T](cs, e)
	} else {
		e.kind = sched.Resolve(e.cfg.sched, chunks, width)
		e.keySum, e.keyApply = e, e
		if e.kind == sched.Adaptive {
			e.keySum = stableKey(combine, 0)
			e.keyApply = stableKey(combine, 1)
		}
		rt.RegionArg(width, e.body, e)
	}

	var zero T
	e.xs, e.combine = nil, nil
	for i := range e.sums {
		e.sums[i] = zero
	}
	pool.Put(e)
}

// scanBody runs the three scan phases on one worker, with team barriers
// between them: chunk sums, serial offset sweep on worker 0, chunk apply.
func scanBody[T any](w *rt.Worker, arg any) {
	e := arg.(*scanEntry[T])
	cs := sched.Space{Lo: 0, Hi: len(e.sums), Step: 1}
	rt.ForSpan(w, cs, e.kind, e.keySum, 1, e.spanSum, arg)
	w.Team.Barrier().WaitWorker(w)
	if w.ID == 0 {
		scanOffsets(e)
	}
	w.Team.Barrier().WaitWorker(w)
	rt.ForSpan(w, cs, e.kind, e.keyApply, 1, e.spanApply, arg)
}

// scanSumSpan folds each assigned chunk to its partial sum (pass one).
func scanSumSpan[T any](sub sched.Space, arg any) {
	e := arg.(*scanEntry[T])
	n := sub.Count()
	for i := 0; i < n; i++ {
		k := sub.At(i)
		lo, hi := chunkBounds(k, e.grain, len(e.xs))
		acc := e.identity
		for j := lo; j < hi; j++ {
			acc = e.combine(acc, e.xs[j])
		}
		e.sums[k] = acc
	}
}

// scanOffsets turns chunk sums into exclusive chunk offsets in place
// (serial middle phase).
func scanOffsets[T any](e *scanEntry[T]) {
	prev := e.identity
	for k := range e.sums {
		s := e.sums[k]
		e.sums[k] = prev
		prev = e.combine(prev, s)
	}
}

// scanApplySpan rewrites each assigned chunk as a running prefix seeded
// from its offset (pass two).
func scanApplySpan[T any](sub sched.Space, arg any) {
	e := arg.(*scanEntry[T])
	n := sub.Count()
	for i := 0; i < n; i++ {
		k := sub.At(i)
		lo, hi := chunkBounds(k, e.grain, len(e.xs))
		acc := e.sums[k]
		for j := lo; j < hi; j++ {
			acc = e.combine(acc, e.xs[j])
			e.xs[j] = acc
		}
	}
}

// chunkBounds returns the half-open element range of chunk k.
func chunkBounds(k, grain, n int) (lo, hi int) {
	lo = k * grain
	hi = lo + grain
	if hi > n {
		hi = n
	}
	return lo, hi
}
