package parallel_test

import (
	"fmt"
	"strings"

	"aomplib/parallel"
)

func ExampleFor() {
	squares := make([]int, 8)
	parallel.For(0, len(squares), func(i int) {
		squares[i] = i * i
	}, parallel.WithThreads(4))
	fmt.Println(squares)
	// Output: [0 1 4 9 16 25 36 49]
}

func ExampleForRange() {
	// The range-chunk variant: the body receives whole sub-ranges, one per
	// scheduling unit, so per-call overhead amortizes over the chunk.
	data := make([]float64, 1000)
	parallel.ForRange(0, len(data), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			data[i] = float64(i) * 0.5
		}
	}, parallel.WithThreads(4), parallel.WithSchedule(parallel.Steal))
	fmt.Println(data[10], data[999])
	// Output: 5 499.5
}

func ExampleReduce() {
	// Sum of squares of 1..100. The combine tree is fixed by the input
	// length and grain, so the result is identical at any team width.
	sum := parallel.Reduce(1, 101, 0,
		func(lo, hi int, acc int) int {
			for i := lo; i < hi; i++ {
				acc += i * i
			}
			return acc
		},
		func(a, b int) int { return a + b },
		parallel.WithThreads(4), parallel.WithGrain(16))
	fmt.Println(sum)
	// Output: 338350
}

func ExampleScan() {
	// In-place inclusive prefix sum (running total).
	xs := []int{3, 1, 4, 1, 5, 9, 2, 6}
	parallel.Scan(xs, 0, func(a, b int) int { return a + b },
		parallel.WithThreads(4), parallel.WithGrain(2))
	fmt.Println(xs)
	// Output: [3 4 8 9 14 23 25 31]
}

func ExampleSort() {
	words := []string{"pear", "apple", "fig", "date", "cherry", "banana"}
	parallel.Sort(words, func(a, b string) bool { return a < b },
		parallel.WithThreads(4), parallel.WithGrain(2))
	fmt.Println(words)
	// Output: [apple banana cherry date fig pear]
}

func ExamplePipeline() {
	// A three-stage stream: parallel middle stage between two serial
	// in-order endpoints, at most 3 items in flight. The serial last stage
	// sees items in ingestion order regardless of middle-stage timing.
	var out strings.Builder
	next := 0
	parallel.Pipeline(3,
		func() (int, bool) { // source: the numbers 0..4
			if next >= 5 {
				return 0, false
			}
			next++
			return next - 1, true
		},
		[]parallel.Stage[int]{
			parallel.ParallelStage(func(v int) int { return v * v }),
			parallel.SerialStage(func(v int) int {
				fmt.Fprintf(&out, "%d ", v)
				return v
			}),
		},
		parallel.WithThreads(4))
	fmt.Println(out.String())
	// Output: 0 1 4 9 16
}

func ExampleFlowGraph() {
	// A diamond: fetch runs first, two independent transforms run in
	// parallel, publish runs last.
	var a, b int
	g := parallel.NewFlowGraph()
	fetch := g.Node("fetch", func() { a, b = 2, 3 })
	double := g.Node("double", func() { a *= 2 })
	triple := g.Node("triple", func() { b *= 3 })
	publish := g.Node("publish", func() { fmt.Println(a + b) })
	g.Edge(fetch, double)
	g.Edge(fetch, triple)
	g.Edge(double, publish)
	g.Edge(triple, publish)
	if err := g.Run(parallel.WithThreads(4)); err != nil {
		fmt.Println("cycle:", err)
	}
	// Output: 13
}
