package parallel_test

import (
	"math/rand"
	"sort"
	"sync/atomic"
	"testing"

	"aomplib/parallel"
)

// widths deliberately includes 1 (serial path) and values larger than the
// small input sizes below (width > len must clamp, not break).
var widths = []int{1, 2, 3, 4, 8, 17}

var sizes = []int{0, 1, 2, 3, 7, 16, 100, 1000, 4096}

var schedules = []parallel.Schedule{
	parallel.Static, parallel.Cyclic, parallel.Dynamic,
	parallel.Guided, parallel.Steal, parallel.Auto, parallel.Runtime,
	parallel.WeightedSteal, parallel.Adaptive,
}

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, width := range widths {
		for _, s := range schedules {
			for _, n := range sizes {
				hits := make([]int32, n)
				parallel.For(0, n, func(i int) {
					atomic.AddInt32(&hits[i], 1)
				}, parallel.WithThreads(width), parallel.WithSchedule(s))
				for i, h := range hits {
					if h != 1 {
						t.Fatalf("width=%d sched=%v n=%d: index %d run %d times", width, s, n, i, h)
					}
				}
			}
		}
	}
}

func TestForRangeCoversEveryIndexOnce(t *testing.T) {
	for _, width := range widths {
		for _, s := range schedules {
			for _, n := range sizes {
				hits := make([]int32, n)
				parallel.ForRange(0, n, func(lo, hi int) {
					for i := lo; i < hi; i++ {
						atomic.AddInt32(&hits[i], 1)
					}
				}, parallel.WithThreads(width), parallel.WithSchedule(s), parallel.WithGrain(3))
				for i, h := range hits {
					if h != 1 {
						t.Fatalf("width=%d sched=%v n=%d: index %d run %d times", width, s, n, i, h)
					}
				}
			}
		}
	}
}

func TestForNonZeroBase(t *testing.T) {
	var sum atomic.Int64
	parallel.For(10, 20, func(i int) { sum.Add(int64(i)) }, parallel.WithThreads(4))
	if got := sum.Load(); got != 145 {
		t.Fatalf("sum of 10..19 = %d, want 145", got)
	}
	// Empty and inverted ranges are no-ops.
	parallel.For(5, 5, func(i int) { t.Errorf("body ran for empty range: i=%d", i) })
	parallel.For(7, 3, func(i int) { t.Errorf("body ran for inverted range: i=%d", i) })
}

func TestNestedForComposes(t *testing.T) {
	const outer, inner = 8, 64
	hits := make([][]int32, outer)
	for i := range hits {
		hits[i] = make([]int32, inner)
	}
	parallel.For(0, outer, func(i int) {
		// Nested call from inside a region: must decompose onto the
		// current team, not deadlock or over-subscribe.
		parallel.For(0, inner, func(j int) {
			atomic.AddInt32(&hits[i][j], 1)
		}, parallel.WithGrain(8))
	}, parallel.WithThreads(4))
	for i := range hits {
		for j, h := range hits[i] {
			if h != 1 {
				t.Fatalf("nested: (%d,%d) run %d times", i, j, h)
			}
		}
	}
}

func TestForPanicPropagates(t *testing.T) {
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recover = %v, want boom", r)
		}
	}()
	parallel.For(0, 100, func(i int) {
		if i == 37 {
			panic("boom")
		}
	}, parallel.WithThreads(4))
	t.Fatal("unreachable")
}

// seqReduce is the reference sequential fold.
func seqReduce(xs []int64) int64 {
	var acc int64
	for _, x := range xs {
		acc += x
	}
	return acc
}

func TestReduceEqualsSequentialFold(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range sizes {
		xs := make([]int64, n)
		for i := range xs {
			xs[i] = int64(rng.Intn(2001) - 1000)
		}
		want := seqReduce(xs)
		for _, width := range widths {
			for _, s := range schedules {
				got := parallel.Reduce(0, n, int64(0),
					func(lo, hi int, acc int64) int64 {
						for i := lo; i < hi; i++ {
							acc += xs[i]
						}
						return acc
					},
					func(a, b int64) int64 { return a + b },
					parallel.WithThreads(width), parallel.WithSchedule(s), parallel.WithGrain(rng.Intn(64)))
				if got != want {
					t.Fatalf("n=%d width=%d sched=%v: got %d want %d", n, width, s, got, want)
				}
			}
		}
	}
}

func TestReduceDeterministicAcrossWidths(t *testing.T) {
	// Floating-point addition is not associative, so equality across team
	// widths holds only because the combine tree shape is fixed. This is
	// the determinism guarantee, tested directly.
	rng := rand.New(rand.NewSource(11))
	const n = 10_000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = rng.NormFloat64() * float64(i%97)
	}
	leaf := func(lo, hi int, acc float64) float64 {
		for i := lo; i < hi; i++ {
			acc += xs[i]
		}
		return acc
	}
	add := func(a, b float64) float64 { return a + b }
	ref := parallel.Reduce(0, n, 0.0, leaf, add, parallel.WithThreads(1))
	for _, width := range widths {
		got := parallel.Reduce(0, n, 0.0, leaf, add, parallel.WithThreads(width))
		if got != ref {
			t.Fatalf("width=%d: %v != width-1 result %v (combine tree not width-invariant)", width, got, ref)
		}
	}
}

func TestScanEqualsSequentialPrefix(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, n := range sizes {
		base := make([]int64, n)
		for i := range base {
			base[i] = int64(rng.Intn(201) - 100)
		}
		want := make([]int64, n)
		var acc int64
		for i, x := range base {
			acc += x
			want[i] = acc
		}
		for _, width := range widths {
			for _, s := range schedules {
				xs := append([]int64(nil), base...)
				parallel.Scan(xs, 0, func(a, b int64) int64 { return a + b },
					parallel.WithThreads(width), parallel.WithSchedule(s), parallel.WithGrain(rng.Intn(32)))
				for i := range xs {
					if xs[i] != want[i] {
						t.Fatalf("n=%d width=%d sched=%v: xs[%d]=%d want %d", n, width, s, i, xs[i], want[i])
					}
				}
			}
		}
	}
}

func TestScanDeterministicAcrossWidths(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	const n = 5000
	base := make([]float64, n)
	for i := range base {
		base[i] = rng.NormFloat64()
	}
	add := func(a, b float64) float64 { return a + b }
	ref := append([]float64(nil), base...)
	parallel.Scan(ref, 0, add, parallel.WithThreads(1))
	for _, width := range widths {
		xs := append([]float64(nil), base...)
		parallel.Scan(xs, 0, add, parallel.WithThreads(width))
		for i := range xs {
			if xs[i] != ref[i] {
				t.Fatalf("width=%d: xs[%d]=%v != width-1 %v", width, i, xs[i], ref[i])
			}
		}
	}
}

// TestReduceBitEqualAcrossWidthsAdaptive pins the determinism guarantee
// where it is hardest to keep: the self-tuning schedules re-carve the
// iteration space between encounters (weighted ranges move with measured
// speeds, adaptive state re-tunes chunk and kind), yet the fixed combine
// tree must make float64 results bit-equal across widths and encounters.
// Each configuration runs several encounters under one stable construct
// identity so re-tunes actually happen mid-test.
func TestReduceBitEqualAcrossWidthsAdaptive(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	const n, encounters = 10_000, 4
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = rng.NormFloat64() * float64(i%89)
	}
	leaf := func(lo, hi int, acc float64) float64 {
		for i := lo; i < hi; i++ {
			acc += xs[i]
		}
		return acc
	}
	add := func(a, b float64) float64 { return a + b }
	ref := parallel.Reduce(0, n, 0.0, leaf, add, parallel.WithThreads(1))
	for _, s := range []parallel.Schedule{parallel.Adaptive, parallel.WeightedSteal} {
		for _, width := range widths {
			for e := 0; e < encounters; e++ {
				got := parallel.Reduce(0, n, 0.0, leaf, add,
					parallel.WithThreads(width), parallel.WithSchedule(s))
				if got != ref {
					t.Fatalf("sched=%v width=%d encounter=%d: %v != serial %v", s, width, e, got, ref)
				}
			}
		}
	}
}

// TestScanBitEqualAcrossWidthsAdaptive is the Scan half of the adaptive
// determinism pin: both of Scan's phases run under the self-tuning
// schedules (learning separately) and every prefix must stay bit-equal
// to the serial scan across widths and re-tuned encounters.
func TestScanBitEqualAcrossWidthsAdaptive(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	const n, encounters = 5000, 4
	base := make([]float64, n)
	for i := range base {
		base[i] = rng.NormFloat64()
	}
	add := func(a, b float64) float64 { return a + b }
	ref := append([]float64(nil), base...)
	parallel.Scan(ref, 0, add, parallel.WithThreads(1))
	for _, s := range []parallel.Schedule{parallel.Adaptive, parallel.WeightedSteal} {
		for _, width := range widths {
			for e := 0; e < encounters; e++ {
				xs := append([]float64(nil), base...)
				parallel.Scan(xs, 0, add, parallel.WithThreads(width), parallel.WithSchedule(s))
				for i := range xs {
					if xs[i] != ref[i] {
						t.Fatalf("sched=%v width=%d encounter=%d: xs[%d]=%v != serial %v",
							s, width, e, i, xs[i], ref[i])
					}
				}
			}
		}
	}
}

func TestSortMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	inputs := [][]int{}
	for _, n := range sizes {
		xs := make([]int, n)
		for i := range xs {
			xs[i] = rng.Intn(n + 1)
		}
		inputs = append(inputs, xs)
	}
	// Adversarial shapes for the pivot/partition code.
	for _, n := range []int{1000, 4097} {
		sorted := make([]int, n)
		reversed := make([]int, n)
		equal := make([]int, n)
		sawtooth := make([]int, n)
		for i := 0; i < n; i++ {
			sorted[i] = i
			reversed[i] = n - i
			equal[i] = 42
			sawtooth[i] = i % 7
		}
		inputs = append(inputs, sorted, reversed, equal, sawtooth)
	}
	for _, base := range inputs {
		want := append([]int(nil), base...)
		sort.Ints(want)
		for _, width := range widths {
			xs := append([]int(nil), base...)
			parallel.Sort(xs, func(a, b int) bool { return a < b },
				parallel.WithThreads(width), parallel.WithGrain(64))
			for i := range xs {
				if xs[i] != want[i] {
					t.Fatalf("n=%d width=%d: xs[%d]=%d want %d", len(base), width, i, xs[i], want[i])
				}
			}
		}
	}
}

func TestSortNestedInsideRegion(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	const rows, cols = 4, 3000
	data := make([][]int, rows)
	for i := range data {
		data[i] = make([]int, cols)
		for j := range data[i] {
			data[i][j] = rng.Int()
		}
	}
	parallel.For(0, rows, func(i int) {
		parallel.Sort(data[i], func(a, b int) bool { return a < b }, parallel.WithGrain(256))
	}, parallel.WithThreads(4))
	for i := range data {
		if !sort.IntsAreSorted(data[i]) {
			t.Fatalf("row %d not sorted after nested Sort", i)
		}
	}
}

func TestFlowGraphCycleError(t *testing.T) {
	g := parallel.NewFlowGraph()
	a := g.Node("a", func() { t.Error("node a ran despite cycle") })
	b := g.Node("b", func() { t.Error("node b ran despite cycle") })
	g.Edge(a, b)
	g.Edge(b, a)
	if err := g.Run(); err == nil {
		t.Fatal("Run on a cyclic graph returned nil error")
	}
}

func TestFlowGraphOrderAndReuse(t *testing.T) {
	var trace []string
	g := parallel.NewFlowGraph()
	src := g.Node("src", func() { trace = append(trace, "src") })
	mid := g.Node("mid", func() { trace = append(trace, "mid") })
	sink := g.Node("sink", func() { trace = append(trace, "sink") })
	g.Edge(src, mid)
	g.Edge(mid, sink)
	for run := 0; run < 3; run++ { // the graph is reusable
		trace = trace[:0]
		if err := g.Run(parallel.WithThreads(4)); err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		if len(trace) != 3 || trace[0] != "src" || trace[1] != "mid" || trace[2] != "sink" {
			t.Fatalf("run %d: order %v", run, trace)
		}
	}
}

func TestFlowGraphPanicSkipsDownstream(t *testing.T) {
	var ran atomic.Int32
	g := parallel.NewFlowGraph()
	boom := g.Node("boom", func() { panic("graph-boom") })
	after := g.Node("after", func() { ran.Add(1) })
	g.Edge(boom, after)
	func() {
		defer func() {
			if r := recover(); r != "graph-boom" {
				t.Fatalf("recover = %v", r)
			}
		}()
		_ = g.Run(parallel.WithThreads(2))
		t.Fatal("unreachable")
	}()
	if ran.Load() != 0 {
		t.Fatal("downstream node ran after upstream panic")
	}
}
