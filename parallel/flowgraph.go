package parallel

import (
	"fmt"
	"sync"
	"sync/atomic"

	"aomplib/internal/rt"
)

// FlowGraph is a small static task graph: nodes are functions, edges are
// happens-before constraints, and Run executes every node with maximal
// parallelism subject to the edges — a minimal dependency-graph layer in
// the spirit of oneTBB's flow graph, built directly on the runtime's
// dependence tracker (rt.SpawnDep): each node's task carries In
// dependences on its predecessors' keys, so the tracker releases a node
// the moment its last predecessor retires, with no central coordinator.
//
// Build once with Node/Edge, then Run as many times as needed; the graph
// is reusable (but not concurrently runnable) and may not be mutated
// while Run is in flight. FlowGraph is not safe for concurrent
// construction.
type FlowGraph struct {
	nodes    []*GraphNode
	canceled atomic.Bool
	panicMu  sync.Mutex
	panicVal any
}

// GraphNode is one node of a FlowGraph, created by (*FlowGraph).Node.
type GraphNode struct {
	name  string
	fn    func()
	preds []*GraphNode
	g     *FlowGraph
	key   byte
}

// NewFlowGraph returns an empty graph.
func NewFlowGraph() *FlowGraph { return &FlowGraph{} }

// Node adds a node executing fn. The name appears in cycle errors and
// has no other meaning; fn runs at most once per Run, after all
// predecessors added via Edge.
func (g *FlowGraph) Node(name string, fn func()) *GraphNode {
	n := &GraphNode{name: name, fn: fn, g: g}
	g.nodes = append(g.nodes, n)
	return n
}

// Edge adds the constraint that from completes before to starts. Both
// nodes must belong to this graph; duplicate edges are harmless.
func (g *FlowGraph) Edge(from, to *GraphNode) {
	if from == nil || to == nil || from.g != g || to.g != g {
		panic("parallel: FlowGraph.Edge with a nil or foreign node")
	}
	to.preds = append(to.preds, from)
}

// Run executes the graph: nodes with no unfinished predecessors run
// concurrently on a team of WithThreads width (nested calls reuse the
// current team). It returns an error if the graph has a cycle, without
// running any node. A node panic cancels the run — nodes that have not
// started are skipped, in-flight nodes finish — and the first panic value
// is re-raised after the graph drains.
func (g *FlowGraph) Run(opts ...Opt) error {
	order, err := g.topoOrder()
	if err != nil {
		return err
	}
	if len(order) == 0 {
		return nil
	}
	g.canceled.Store(false)
	g.panicVal = nil
	if rt.Current() != nil {
		rt.TaskGroupScope(func() { g.spawnAll(order) })
	} else {
		c := apply(opts)
		width := c.width(len(order))
		rt.Region(width, func(w *rt.Worker) {
			// Spawn before the barrier so the join never sees an empty
			// deque while the graph is still being seeded.
			if w.ID == 0 {
				g.spawnAll(order)
			}
			w.Team.Barrier().WaitWorker(w)
		})
	}
	if g.panicVal != nil {
		panic(g.panicVal)
	}
	return nil
}

// spawnAll hands every node to the dependence tracker in topological
// order: spawn order makes each node's In keys refer to already-enqueued
// predecessors, so edge derivation is exactly the user's edge set.
func (g *FlowGraph) spawnAll(order []*GraphNode) {
	for _, n := range order {
		n := n
		var d rt.Deps
		d.Out = []any{&n.key}
		for _, p := range n.preds {
			d.In = append(d.In, &p.key)
		}
		rt.SpawnDep(func() { g.runNode(n) }, d)
	}
}

// runNode executes one node unless the run is canceled, recording the
// first panic (independent nodes may panic concurrently, hence the lock).
func (g *FlowGraph) runNode(n *GraphNode) {
	if g.canceled.Load() {
		return
	}
	defer func() {
		if r := recover(); r != nil {
			g.canceled.Store(true)
			g.panicMu.Lock()
			if g.panicVal == nil {
				g.panicVal = r
			}
			g.panicMu.Unlock()
		}
	}()
	n.fn()
}

// topoOrder returns the nodes in a topological order, or an error naming
// a node on a cycle (Kahn's algorithm).
func (g *FlowGraph) topoOrder() ([]*GraphNode, error) {
	indeg := make(map[*GraphNode]int, len(g.nodes))
	succs := make(map[*GraphNode][]*GraphNode, len(g.nodes))
	for _, n := range g.nodes {
		indeg[n] += 0
		for _, p := range n.preds {
			indeg[n]++
			succs[p] = append(succs[p], n)
		}
	}
	queue := make([]*GraphNode, 0, len(g.nodes))
	for _, n := range g.nodes {
		if indeg[n] == 0 {
			queue = append(queue, n)
		}
	}
	order := make([]*GraphNode, 0, len(g.nodes))
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		order = append(order, n)
		for _, s := range succs[n] {
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if len(order) != len(g.nodes) {
		for _, n := range g.nodes {
			if indeg[n] > 0 {
				return nil, fmt.Errorf("parallel: flow graph has a cycle through node %q", n.name)
			}
		}
	}
	return order, nil
}
