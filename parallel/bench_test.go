package parallel_test

import (
	"testing"

	"aomplib/parallel"
)

// The CI-gated dispatch benchmarks: steady-state For/Reduce entry must be
// 0 allocs/op — pooled region arguments on warm hot-team entry, same
// standard the facade's Overhead_RegionEntry gate holds dispatch to.
// Bodies write through a package sink so the loop is not optimized away.

var benchSink = make([]int64, 4096)

var benchOpts = []parallel.Opt{parallel.WithThreads(4)}

func BenchmarkOverhead_ParallelFor(b *testing.B) {
	body := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			benchSink[i]++
		}
	}
	parallel.ForRange(0, len(benchSink), body, benchOpts...) // warm the pools
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		parallel.ForRange(0, len(benchSink), body, benchOpts...)
	}
}

func BenchmarkOverhead_ParallelForIndex(b *testing.B) {
	body := func(i int) { benchSink[i]++ }
	parallel.For(0, len(benchSink), body, benchOpts...)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		parallel.For(0, len(benchSink), body, benchOpts...)
	}
}

func BenchmarkOverhead_ParallelReduce(b *testing.B) {
	leaf := func(lo, hi int, acc int64) int64 {
		for i := lo; i < hi; i++ {
			acc += benchSink[i]
		}
		return acc
	}
	combine := func(x, y int64) int64 { return x + y }
	var res int64
	res = parallel.Reduce(0, len(benchSink), int64(0), leaf, combine, benchOpts...)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = parallel.Reduce(0, len(benchSink), int64(0), leaf, combine, benchOpts...)
	}
	benchSink[0] = res
}

func BenchmarkOverhead_ParallelScan(b *testing.B) {
	combine := func(x, y int64) int64 { return x + y }
	parallel.Scan(benchSink, 0, combine, benchOpts...)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		parallel.Scan(benchSink, 0, combine, benchOpts...)
	}
}

func BenchmarkParallelForSteal(b *testing.B) {
	opts := []parallel.Opt{
		parallel.WithThreads(4), parallel.WithSchedule(parallel.Steal), parallel.WithGrain(64),
	}
	body := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			benchSink[i]++
		}
	}
	parallel.ForRange(0, len(benchSink), body, opts...)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		parallel.ForRange(0, len(benchSink), body, opts...)
	}
}
