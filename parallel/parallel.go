// Package parallel is AOmpLib's generic algorithms layer: type-parameterized
// building blocks — For, Reduce, Scan, Sort, Pipeline, FlowGraph — in the
// "specify tasks, not threads" style of oneTBB, implemented directly on the
// runtime in internal/rt. Where the aomplib facade mirrors OpenMP (regions
// and directives woven around methods), this package is for call sites that
// just want a loop, a reduction or a streaming pipeline run in parallel,
// with the decomposition, scheduling and joining handled by the library.
//
// Everything here executes on the existing runtime machinery: hot teams
// (leased, admission-controlled worker pools — a parallel.For at top level
// is a warm region entry with zero steady-state allocations), the
// work-stealing task deques (nested calls decompose onto the current team
// instead of spawning a new one), the loop schedules of internal/sched
// including the steal schedule, and the obs hook table (every construct
// emits the same region/work/task events the woven aspects do, so Chrome
// traces show generic loops alongside @For loops).
//
// Determinism: Reduce and Scan decompose the input by a grain that depends
// only on the input length (or WithGrain), never on the team width or on
// timing, and combine the per-chunk partials in a fixed tree order. For a
// given input and grain the exact sequence of combine calls is therefore
// identical at every width — including width 1 — which makes
// floating-point results reproducible run-to-run and width-to-width.
//
// Composability: any entry point called from inside an existing parallel
// region (a woven @For body, a task, another algorithm's leaf) does not
// open a nested region; it decomposes into stealable tasks on the current
// team, the oneTBB notion of composable nested parallelism.
package parallel

import (
	"reflect"
	"sync"

	"aomplib/internal/rt"
	"aomplib/internal/sched"
)

// Schedule selects how loop iterations are distributed over the team; it
// aliases the runtime's schedule kind, so facade and generic layers accept
// the same values.
type Schedule = sched.Kind

// The loop schedules accepted by WithSchedule. They are the same policies
// the woven @For construct and the jgfbench -schedule flag accept.
const (
	// Static divides the space into one contiguous block per worker; the
	// default, and the only choice with zero shared scheduling state.
	Static Schedule = sched.StaticBlock
	// Cyclic deals iterations round-robin (chunk-sized hands) across the
	// team; balances regular-but-heterogeneous iterations.
	Cyclic Schedule = sched.StaticCyclic
	// Dynamic hands out fixed-size chunks from a shared atomic cursor;
	// workers draw batches to amortize contention.
	Dynamic Schedule = sched.Dynamic
	// Guided hands out exponentially shrinking chunks — large early, small
	// at the tail — trading contention against tail imbalance.
	Guided Schedule = sched.Guided
	// Steal gives every worker a private contiguous range and lets idle
	// workers steal the back half of a victim's remainder with a single
	// CAS (the static_steal schedule from PR 5).
	Steal Schedule = sched.Steal
	// Auto lets the library pick from the trip count and team width. At
	// this layer the choice is made per call from shape alone, keeping the
	// dispatch allocation-free; loops that should learn from their own
	// re-encounters ask for Adaptive instead. (The woven facade's Auto
	// does upgrade on re-encounters: its constructs always pass through
	// the runtime's encounter state.)
	Auto Schedule = sched.Auto
	// Runtime defers to the process-wide default schedule
	// (aomplib.SetDefaultSchedule / OMP_SCHEDULE-style configuration).
	Runtime Schedule = sched.Runtime
	// WeightedSteal is Steal with asymmetry awareness: initial per-worker
	// ranges are carved proportionally to each worker's measured speed
	// (trained automatically on hot teams), and stealing targets the
	// most-loaded sibling. On a team with no speed history it behaves
	// like Steal.
	WeightedSteal Schedule = sched.WeightedSteal
	// Adaptive re-tunes the schedule kind and chunk on every encounter of
	// the same loop from the imbalance the previous encounter measured —
	// the feedback-driven choice for loops executed repeatedly (solvers,
	// per-frame work, server request loops). State is keyed by the body
	// function's code location and lives on the hot team, so distinct
	// call sites learn independently and the learning survives region
	// entries. Unlike the other kinds its dispatch is not allocation-free
	// (the stable key costs a small interning lookup); per-call overhead
	// is still far below one region entry.
	Adaptive Schedule = sched.Adaptive
)

// config carries the resolved options of one algorithm call.
type config struct {
	threads int
	sched   Schedule
	grain   int
}

// Opt configures one algorithm invocation; construct with WithThreads,
// WithSchedule or WithGrain.
type Opt func(*config)

// WithThreads caps the team width for this call. Zero or negative means
// the library default (aomplib.SetNumThreads / GOMAXPROCS-derived); the
// width is additionally clamped so no worker is guaranteed empty.
func WithThreads(n int) Opt { return func(c *config) { c.threads = n } }

// WithSchedule selects the loop schedule for this call (default Static).
// Reduce and Scan schedule over the chunk space, so dynamic kinds balance
// chunk-level skew without changing the deterministic combine shape.
func WithSchedule(s Schedule) Opt { return func(c *config) { c.sched = s } }

// WithGrain sets the decomposition grain: the chunk size for Dynamic,
// Guided and Steal loop schedules, the per-partial chunk length of Reduce
// and Scan, the task grain of nested For calls, and the serial cutoff of
// Sort. Zero or negative means an automatic grain derived from the input
// length alone (width-independent, preserving determinism).
func WithGrain(n int) Opt { return func(c *config) { c.grain = n } }

// apply folds opts over the default configuration. The result escapes
// (option funcs are opaque), so allocation-sensitive entry points use
// applyInto with a pooled destination instead.
func apply(opts []Opt) config {
	c := config{sched: Static}
	for _, o := range opts {
		o(&c)
	}
	return c
}

// applyInto folds opts into a caller-owned (pooled) config, keeping the
// hot For/Reduce/Scan dispatch paths allocation-free: escape analysis
// pins a stack config passed to opaque option funcs to the heap, so the
// destination lives inside the recycled entry struct instead.
func applyInto(c *config, opts []Opt) {
	*c = config{sched: Static}
	for _, o := range opts {
		o(c)
	}
}

// width resolves the team width for an n-iteration call: the WithThreads
// value or the library default, clamped to [1, n] so a width larger than
// the input never leases workers with nothing to do (width > len inputs
// are legal, just clamped).
func (c config) width(n int) int {
	w := c.threads
	if w < 1 {
		w = rt.DefaultThreads()
	}
	if n > 0 && w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// loopKey is the adaptive-state identity of one loop: the code pointer of
// its body function plus a phase tag (Scan's two passes learn separately).
// Pooled entry structs are recycled between unrelated loops, so the entry
// pointer — the encounter key for every other schedule — would conflate
// adaptive state; the body's code location is stable across calls instead.
// Two closures created at the same source location share a key (they are
// "the same loop" for tuning purposes); distinct call sites never collide.
// Comparable by value, so a freshly built key finds the state an earlier
// call registered.
type loopKey struct {
	pc    uintptr
	phase uint8
}

// stableKey builds the adaptive-state key for a loop body fn (any func
// value). Boxing fn and the returned key allocates a few words — the
// documented cost of the Adaptive dispatch path.
func stableKey(fn any, phase uint8) any {
	return loopKey{pc: reflect.ValueOf(fn).Pointer(), phase: phase}
}

// entryPools caches one sync.Pool of region-argument structs per
// instantiated entry type, so generic entry points stay allocation-free in
// steady state: the first Reduce[float64] call creates the pool for its
// entry type, every later call recycles. Keyed by reflect.Type of the
// *pointer* type, which interns without allocating.
var entryPools sync.Map

// poolOf returns the shared pool for entry type E.
func poolOf[E any]() *sync.Pool {
	k := reflect.TypeOf((*E)(nil))
	if p, ok := entryPools.Load(k); ok {
		return p.(*sync.Pool)
	}
	p, _ := entryPools.LoadOrStore(k, &sync.Pool{New: func() any { return new(E) }})
	return p.(*sync.Pool)
}
