package parallel

import (
	"sync"
	"sync/atomic"

	"aomplib/internal/rt"
)

// Stage is one step of a Pipeline: Fn transforms an item, and Serial
// marks the stage as serial in-order (at most one item inside the stage
// at a time, in ingestion order — a oneTBB serial_in_order filter).
// Construct with SerialStage/ParallelStage, or fill the struct directly.
type Stage[T any] struct {
	// Fn transforms one item. Parallel stages may run Fn concurrently on
	// different items; Fn must not retain its argument past return.
	Fn func(T) T
	// Serial serializes the stage in ingestion order.
	Serial bool
}

// SerialStage returns a serial in-order stage: items pass through fn one
// at a time, in the order the source produced them. Use it for stages
// that touch shared state (writers, accumulators) or that must preserve
// stream order.
func SerialStage[T any](fn func(T) T) Stage[T] { return Stage[T]{Fn: fn, Serial: true} }

// ParallelStage returns a parallel stage: any number of in-flight items
// may be inside fn concurrently.
func ParallelStage[T any](fn func(T) T) Stage[T] { return Stage[T]{Fn: fn} }

// Pipeline streams items from source through stages with at most tokens
// items in flight, returning when the source is exhausted and every
// admitted item has left the last stage. It is bounded-token streaming in
// the oneTBB parallel_pipeline style: the token count is the only
// buffering — a full pipeline stops pulling from the source (backpressure)
// rather than queueing unboundedly.
//
// Each admitted item holds one token from rt.TokenPool until it leaves
// the last stage; the per-item stage chain and the serial-stage ordering
// are expressed as dependence-tracked tasks (rt.SpawnDep) on the team's
// deques, so parallel stages of different items overlap freely while a
// serial stage processes items strictly in ingestion order. The ingesting
// worker helps execute stage tasks whenever it waits for a token, so even
// a one-worker team makes progress.
//
// source runs on a single goroutine and returns (item, false) to end the
// stream. A panic in a stage cancels the pipeline: the source is no
// longer polled, in-flight items drain without running further stage
// functions, and the first panic value is re-raised to the caller.
// Called inside an existing parallel region, Pipeline spawns onto the
// current team instead of opening a nested region.
func Pipeline[T any](tokens int, source func() (T, bool), stages []Stage[T], opts ...Opt) {
	if len(stages) == 0 {
		for {
			if _, ok := source(); !ok {
				return
			}
		}
	}
	if tokens < 1 {
		tokens = 1
	}
	p := newPipeRun(tokens, stages)
	if rt.Current() != nil {
		rt.TaskGroupScope(func() { p.ingest(source) })
	} else {
		c := apply(opts)
		width := c.threads
		if width < 1 {
			width = rt.DefaultThreads()
		}
		rt.Region(width, func(w *rt.Worker) {
			if w.ID == 0 {
				p.ingest(source)
			}
			// Non-ingesting workers fall through to the region-end join,
			// where they execute stage tasks until the stream drains.
		})
	}
	if p.panicVal != nil {
		panic(p.panicVal)
	}
}

// pipeSlot is the reusable carrier of one in-flight item. Its dependence
// keys, Deps views and stage-task closures are built once per slot: a
// steady-state pipeline spawns preallocated bodies with preallocated
// dependence lists.
type pipeSlot[T any] struct {
	val    T
	failed bool
	idx    int
	keys   []byte    // keys[s] is the dependence address of stage s
	deps   []rt.Deps // deps[s] for this slot's stage-s task
	bodies []func()  // bodies[s] runs stage s on this slot
}

// pipeRun is the shared state of one Pipeline call.
type pipeRun[T any] struct {
	stages     []Stage[T]
	slots      []*pipeSlot[T]
	serialKeys []byte // serialKeys[s] orders serial stage s across items
	tok        *rt.TokenPool
	freeIdx    chan int
	canceled   atomic.Bool
	panicMu    sync.Mutex
	panicVal   any
}

// newPipeRun builds the slot table for a tokens-bounded run over stages.
func newPipeRun[T any](tokens int, stages []Stage[T]) *pipeRun[T] {
	p := &pipeRun[T]{
		stages:     stages,
		slots:      make([]*pipeSlot[T], tokens),
		serialKeys: make([]byte, len(stages)),
		tok:        rt.NewTokenPool(tokens),
		freeIdx:    make(chan int, tokens),
	}
	for i := range p.slots {
		slot := &pipeSlot[T]{
			idx:    i,
			keys:   make([]byte, len(stages)),
			deps:   make([]rt.Deps, len(stages)),
			bodies: make([]func(), len(stages)),
		}
		for s := range stages {
			d := rt.Deps{Out: []any{&slot.keys[s]}}
			if s > 0 {
				d.In = []any{&slot.keys[s-1]}
			}
			if stages[s].Serial {
				d.InOut = []any{&p.serialKeys[s]}
			}
			slot.deps[s] = d
			s := s
			slot.bodies[s] = func() { p.runStage(slot, s) }
		}
		p.slots[i] = slot
		p.freeIdx <- i
	}
	return p
}

// ingest pulls from source and launches the stage chain of each item.
// Runs on exactly one goroutine; Acquire is the backpressure point (and,
// on a worker, a task scheduling point).
func (p *pipeRun[T]) ingest(source func() (T, bool)) {
	for !p.canceled.Load() {
		v, ok := source()
		if !ok {
			return
		}
		p.tok.Acquire()
		idx := <-p.freeIdx // a released token implies a free slot: never blocks
		slot := p.slots[idx]
		slot.val, slot.failed = v, false
		for s := range p.stages {
			rt.SpawnDep(slot.bodies[s], slot.deps[s])
		}
	}
}

// runStage executes stage s on a slot, skipping the stage function for
// failed items or a canceled pipeline so the stream always drains; the
// last stage recycles the slot and returns the item's token.
func (p *pipeRun[T]) runStage(slot *pipeSlot[T], s int) {
	if !slot.failed && !p.canceled.Load() {
		p.applyStage(slot, s)
	}
	if s == len(p.stages)-1 {
		var zero T
		slot.val = zero
		p.freeIdx <- slot.idx
		p.tok.Release()
	}
}

// applyStage runs one stage function under a recover that records the
// first panic and flips the pipeline to canceled.
func (p *pipeRun[T]) applyStage(slot *pipeSlot[T], s int) {
	defer func() {
		if r := recover(); r != nil {
			slot.failed = true
			p.canceled.Store(true)
			p.panicMu.Lock()
			if p.panicVal == nil {
				p.panicVal = r
			}
			p.panicMu.Unlock()
		}
	}()
	slot.val = p.stages[s].Fn(slot.val)
}
