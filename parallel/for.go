package parallel

import (
	"aomplib/internal/rt"
	"aomplib/internal/sched"
)

// forEntry is the pooled region argument of For/ForRange. It is not
// generic — index bodies need no type parameter — so one pool serves every
// call site.
type forEntry struct {
	cfg   config
	sp    sched.Space
	kind  sched.Kind
	chunk int
	key   any // encounter key: e itself, or a stable loopKey for Adaptive
	idx   func(i int)
	rng   func(lo, hi int)
}

// For executes body(i) for every i in [lo, hi), distributing iterations
// over a worker team according to WithSchedule (default Static, one
// contiguous block per worker). It returns when every iteration has run;
// the region join is the barrier. At top level a call is a warm hot-team
// region entry — zero allocations in steady state; called inside an
// existing parallel region it instead splits the range into stealable
// tasks on the current team (composable nesting, no nested region).
//
// body must be safe to call concurrently from multiple goroutines for
// distinct i. A panic in body propagates to the caller after the loop
// drains, matching the woven @For construct.
func For(lo, hi int, body func(i int), opts ...Opt) {
	runFor(sched.Space{Lo: lo, Hi: hi, Step: 1}, opts, body, nil)
}

// ForRange is the range-chunk variant of For: body(lo, hi) receives whole
// sub-ranges instead of single indices, one call per scheduling unit —
// one block per worker under Static, one chunk per draw under Dynamic,
// Guided and Steal. Use it when the body amortizes per-call work over a
// range (slice kernels, SIMD-friendly inner loops): it is For with the
// per-index indirect call hoisted out.
func ForRange(lo, hi int, body func(lo, hi int), opts ...Opt) {
	runFor(sched.Space{Lo: lo, Hi: hi, Step: 1}, opts, nil, body)
}

// runFor is the shared driver behind For and ForRange. The options fold
// into the pooled entry's config so the dispatch stays allocation-free.
func runFor(sp sched.Space, opts []Opt, idx func(int), rng func(int, int)) {
	n := sp.Count()
	if n == 0 {
		return
	}
	e := forPool.Get().(*forEntry)
	applyInto(&e.cfg, opts)
	if w := rt.Current(); w != nil {
		// Nested: decompose onto the current team's deques.
		grain := e.cfg.grain
		forPool.Put(e)
		if grain < 1 {
			grain = sched.AutoGrain(n)
		}
		rt.TaskGroupScope(func() {
			rt.SpawnRange(sp, grain, func(sub sched.Space) { forSpanFuncs(sub, idx, rng) })
		})
		return
	}
	width := e.cfg.width(n)
	if width <= 1 {
		forPool.Put(e)
		forSpanFuncs(sp, idx, rng)
		return
	}
	e.sp = sp
	e.kind = sched.Resolve(e.cfg.sched, n, width)
	e.chunk = e.cfg.grain
	e.idx, e.rng = idx, rng
	e.key = e
	if e.kind == sched.Adaptive {
		// Adaptive state must survive entry recycling: key by the body's
		// code location instead of the pooled entry.
		if idx != nil {
			e.key = stableKey(idx, 0)
		} else {
			e.key = stableKey(rng, 0)
		}
	}
	rt.RegionArg(width, forBody, e)
	e.idx, e.rng = nil, nil
	forPool.Put(e)
}

// forPool recycles forEntry region arguments.
var forPool = poolOf[forEntry]()

// forBody is the region body: every worker runs its schedule-assigned
// share of the space. Package-level func value + pooled arg keeps the
// dispatch allocation-free.
func forBody(w *rt.Worker, arg any) {
	e := arg.(*forEntry)
	rt.ForSpan(w, e.sp, e.kind, e.key, e.chunk, forSpan, arg)
}

// forSpan executes one dispensed sub-range.
func forSpan(sub sched.Space, arg any) {
	e := arg.(*forEntry)
	forSpanFuncs(sub, e.idx, e.rng)
}

// forSpanFuncs runs a sub-range through whichever body shape was given.
// Cyclic assignments arrive as strided spaces; a range body then receives
// one unit-width call per index, so every schedule is legal for both
// variants.
func forSpanFuncs(sub sched.Space, idx func(int), rng func(int, int)) {
	if sub.Step == 1 {
		if idx != nil {
			for i := sub.Lo; i < sub.Hi; i++ {
				idx(i)
			}
			return
		}
		rng(sub.Lo, sub.Hi)
		return
	}
	n := sub.Count()
	for k := 0; k < n; k++ {
		i := sub.At(k)
		if idx != nil {
			idx(i)
		} else {
			rng(i, i+1)
		}
	}
}
