package parallel

import (
	"math/bits"
	"slices"

	"aomplib/internal/rt"
)

// sortCutoff is the default serial cutoff: partitions at or below this
// length go straight to the stdlib sort. Small enough to expose
// parallelism on mid-sized inputs, large enough that task overhead stays
// in the noise next to a real sort of that many elements.
const sortCutoff = 1024

// Sort sorts xs in place by less, a parallel quicksort over the runtime's
// task deques with a serial cutoff: partitions are split around a
// median-of-three pivot, one side is spawned as a stealable task while the
// other is sorted on the spot, and partitions at or below the cutoff
// (WithGrain overrides it) are finished with the stdlib's pattern-defeating
// quicksort. A depth bound of 2·log2(n) guards against adversarial pivot
// behavior by falling back to the serial sort, so the worst case stays
// O(n log n).
//
// less must be a strict weak ordering and safe for concurrent calls.
// Sort is not stable. Called inside an existing parallel region it spawns
// onto the current team (composable nesting); at top level it opens one
// region of WithThreads width, and idle workers steal partitions as the
// recursion produces them.
func Sort[T any](xs []T, less func(a, b T) bool, opts ...Opt) {
	n := len(xs)
	c := apply(opts)
	cutoff := c.grain
	if cutoff < 1 {
		cutoff = sortCutoff
	}
	if n <= cutoff || n < 2 {
		serialSort(xs, less)
		return
	}
	depth := 2 * bits.Len(uint(n))
	if rt.Current() != nil {
		rt.TaskGroupScope(func() { quickSort(xs, less, cutoff, depth) })
		return
	}
	width := c.width(n)
	if width <= 1 {
		serialSort(xs, less)
		return
	}
	rt.Region(width, func(w *rt.Worker) {
		// The root partition is a task, spawned before the barrier releases
		// the team, so workers entering the region-end join always find
		// claimable work instead of exiting an empty deque.
		if w.ID == 0 {
			rt.Spawn(func() { quickSort(xs, less, cutoff, depth) })
		}
		w.Team.Barrier().WaitWorker(w)
	})
}

// quickSort recurses on partitions, spawning the smaller side as a task
// and looping on the larger (bounded stack, stealable spare work).
func quickSort[T any](xs []T, less func(a, b T) bool, cutoff, depth int) {
	for len(xs) > cutoff && depth > 0 {
		depth--
		p := partition(xs, less)
		left, right := xs[:p], xs[p:]
		if len(left) < len(right) {
			spawnSort(left, less, cutoff, depth)
			xs = right
		} else {
			spawnSort(right, less, cutoff, depth)
			xs = left
		}
	}
	serialSort(xs, less)
}

// spawnSort defers one partition to the task deques.
func spawnSort[T any](xs []T, less func(a, b T) bool, cutoff, depth int) {
	if len(xs) == 0 {
		return
	}
	rt.Spawn(func() { quickSort(xs, less, cutoff, depth) })
}

// partition splits xs around a median-of-three pivot value (Hoare scheme):
// on return xs[:p] holds elements ≤ pivot and xs[p:] elements ≥ pivot,
// with 0 < p < len(xs) not guaranteed for pathological orderings — the
// caller's depth bound absorbs degenerate splits.
func partition[T any](xs []T, less func(a, b T) bool) int {
	pivot := medianOfThree(xs[0], xs[len(xs)/2], xs[len(xs)-1], less)
	i, j := -1, len(xs)
	for {
		for {
			i++
			if !less(xs[i], pivot) {
				break
			}
		}
		for {
			j--
			if !less(pivot, xs[j]) {
				break
			}
		}
		if i >= j {
			return j + 1
		}
		xs[i], xs[j] = xs[j], xs[i]
	}
}

// medianOfThree returns the median of a, b, c under less.
func medianOfThree[T any](a, b, c T, less func(x, y T) bool) T {
	if less(b, a) {
		a, b = b, a
	}
	if less(c, b) {
		b = c
		if less(b, a) {
			b = a
		}
	}
	return b
}

// serialSort is the cutoff sort: the stdlib's pdqsort via a cmp adapter.
func serialSort[T any](xs []T, less func(a, b T) bool) {
	slices.SortFunc(xs, func(a, b T) int {
		switch {
		case less(a, b):
			return -1
		case less(b, a):
			return 1
		default:
			return 0
		}
	})
}
