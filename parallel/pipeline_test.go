package parallel_test

import (
	"sync/atomic"
	"testing"

	"aomplib/parallel"
)

func TestPipelineProcessesEveryItemInOrder(t *testing.T) {
	const items = 500
	for _, tokens := range []int{1, 2, 4, 16} {
		for _, width := range []int{1, 2, 4, 8} {
			next := 0
			var got []int
			parallel.Pipeline(tokens,
				func() (int, bool) {
					if next >= items {
						return 0, false
					}
					next++
					return next - 1, true
				},
				[]parallel.Stage[int]{
					parallel.ParallelStage(func(v int) int { return v * 3 }),
					parallel.SerialStage(func(v int) int {
						got = append(got, v) // serial in-order: no lock needed
						return v
					}),
				},
				parallel.WithThreads(width))
			if len(got) != items {
				t.Fatalf("tokens=%d width=%d: %d items, want %d", tokens, width, len(got), items)
			}
			for i, v := range got {
				if v != i*3 {
					t.Fatalf("tokens=%d width=%d: got[%d]=%d, want %d (serial stage out of order)", tokens, width, i, v, i*3)
				}
			}
		}
	}
}

func TestPipelineTokenBoundNeverExceeded(t *testing.T) {
	// The acceptance property of bounded-token streaming: the number of
	// items between entering the first stage and leaving the last never
	// exceeds the token count. Tracked with an in-flight high-water mark;
	// run under -race this is also the concurrency stress.
	const items = 2000
	for _, tokens := range []int{1, 2, 3, 8} {
		var inFlight, highWater atomic.Int64
		next := 0
		parallel.Pipeline(tokens,
			func() (int, bool) {
				if next >= items {
					return 0, false
				}
				next++
				return next - 1, true
			},
			[]parallel.Stage[int]{
				parallel.ParallelStage(func(v int) int {
					cur := inFlight.Add(1)
					for {
						hw := highWater.Load()
						if cur <= hw || highWater.CompareAndSwap(hw, cur) {
							break
						}
					}
					return v
				}),
				parallel.ParallelStage(func(v int) int { return v + 1 }),
				parallel.SerialStage(func(v int) int {
					inFlight.Add(-1)
					return v
				}),
			},
			parallel.WithThreads(4))
		if hw := highWater.Load(); hw > int64(tokens) {
			t.Fatalf("tokens=%d: high-water mark %d exceeds the bound", tokens, hw)
		}
		if fl := inFlight.Load(); fl != 0 {
			t.Fatalf("tokens=%d: %d items still in flight after drain", tokens, fl)
		}
	}
}

func TestPipelinePanicCancelsAndDrains(t *testing.T) {
	// A panicking stage must cancel the stream: the source stops being
	// polled (no unbounded pulls), the pipeline drains without deadlock,
	// and the panic surfaces to the caller.
	const panicAt = 40
	for _, width := range []int{1, 4} {
		pulled := 0
		var afterPanic atomic.Int32
		func() {
			defer func() {
				if r := recover(); r != "stage-boom" {
					t.Fatalf("width=%d: recover = %v, want stage-boom", width, r)
				}
			}()
			parallel.Pipeline(4,
				func() (int, bool) {
					pulled++
					return pulled, pulled <= 100_000
				},
				[]parallel.Stage[int]{
					parallel.ParallelStage(func(v int) int {
						if v == panicAt {
							panic("stage-boom")
						}
						return v
					}),
					parallel.SerialStage(func(v int) int {
						if v == panicAt {
							afterPanic.Add(1)
						}
						return v
					}),
				},
				parallel.WithThreads(width))
			t.Fatalf("width=%d: Pipeline returned instead of panicking", width)
		}()
		if pulled >= 100_000 {
			t.Fatalf("width=%d: source fully drained after cancellation (%d pulls)", width, pulled)
		}
		if afterPanic.Load() != 0 {
			t.Fatalf("width=%d: failed item reached a later stage", width)
		}
	}
}

func TestPipelineNestedInsideRegion(t *testing.T) {
	var total atomic.Int64
	parallel.For(0, 4, func(lane int) {
		next := 0
		parallel.Pipeline(2,
			func() (int, bool) {
				if next >= 50 {
					return 0, false
				}
				next++
				return next, true
			},
			[]parallel.Stage[int]{
				parallel.ParallelStage(func(v int) int { return v * 2 }),
				parallel.SerialStage(func(v int) int { total.Add(int64(v)); return v }),
			})
	}, parallel.WithThreads(2))
	// 4 lanes × 2 × (1+..+50) = 4 × 2550 = 10200
	if got := total.Load(); got != 10200 {
		t.Fatalf("nested pipelines total = %d, want 10200", got)
	}
}

func TestPipelineNoStages(t *testing.T) {
	// Zero stages: the source is drained and nothing else happens.
	n := 0
	parallel.Pipeline(3, func() (int, bool) {
		n++
		return n, n < 10
	}, nil)
	if n != 10 {
		t.Fatalf("source pulled %d times, want 10", n)
	}
}
