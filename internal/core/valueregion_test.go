package core

import (
	"sync/atomic"
	"testing"

	"aomplib/internal/weaver"
)

// A value-returning parallel region must return the master's result.
func TestValueReturningParallelRegion(t *testing.T) {
	p := weaver.NewProgram("t")
	var runs atomic.Int32
	val := p.Class("A").ValueProc("compute", func() any {
		runs.Add(1)
		return ThreadID() * 10
	})
	p.Use(ParallelRegion("call(* A.compute(..))").Threads(3))
	p.MustWeave()
	got := val()
	if runs.Load() != 3 {
		t.Fatalf("region body ran %d times", runs.Load())
	}
	if got != 0 {
		t.Fatalf("region result = %v, want master's 0", got)
	}
}

// FutureTask inside a parallel region: tasks join at the region end.
func TestFutureTaskInsideRegion(t *testing.T) {
	p := weaver.NewProgram("t")
	cls := p.Class("A")
	compute := cls.FutureProc("compute", func() any { return NumThreads() })
	var bad atomic.Int32
	region := cls.Proc("region", func() {
		f := compute()
		if f.Get() != 2 {
			bad.Add(1)
		}
	})
	p.Use(ParallelRegion("call(* A.region(..))").Threads(2))
	p.Use(FutureTaskSpawn("call(* A.compute(..))"))
	p.MustWeave()
	region()
	if bad.Load() != 0 {
		t.Fatalf("%d futures resolved outside region context", bad.Load())
	}
}

// Re-weaving with different parameters mid-experiment — the paper's
// "quickly (and independently) test new parallelisation approaches".
func TestSwapAspectConfigurationsBetweenRuns(t *testing.T) {
	p := weaver.NewProgram("t")
	var count atomic.Int32
	work := p.Class("A").Proc("work", func() { count.Add(1) })

	p.Use(ParallelRegion("call(* A.work(..))").Named("r2").Threads(2))
	p.MustWeave()
	work()
	if count.Load() != 2 {
		t.Fatalf("first configuration ran %d", count.Load())
	}

	p.RemoveAspect("r2")
	p.Use(ParallelRegion("call(* A.work(..))").Named("r4").Threads(4))
	p.MustWeave()
	count.Store(0)
	work()
	if count.Load() != 4 {
		t.Fatalf("second configuration ran %d", count.Load())
	}
}

// Barrier advice outside any region must be a no-op even when composed
// with master/single (regression guard for deadlocks in sequential runs).
func TestSequentialCompositionNoDeadlock(t *testing.T) {
	p := weaver.NewProgram("t")
	cls := p.Class("A")
	var order []string
	m := cls.Proc("m", func() { order = append(order, "m") })
	p.Use(MasterSection("call(* A.m(..))"))
	p.Use(BarrierAroundPoint("call(* A.m(..))"))
	p.Use(CriticalSection("call(* A.m(..))"))
	p.MustWeave()
	for i := 0; i < 3; i++ {
		m()
	}
	if len(order) != 3 {
		t.Fatalf("sequential composed method ran %d times", len(order))
	}
}

// Two independent programs must not share construct state even when their
// aspects have identical names.
func TestProgramsAreIsolated(t *testing.T) {
	mk := func() (func(), *atomic.Int32) {
		p := weaver.NewProgram("iso")
		var n atomic.Int32
		f := p.Class("A").Proc("m", func() { n.Add(1) })
		p.Use(ParallelRegion("call(* A.m(..))").Threads(2))
		p.MustWeave()
		return f, &n
	}
	f1, n1 := mk()
	f2, n2 := mk()
	f1()
	f2()
	f1()
	if n1.Load() != 4 || n2.Load() != 2 {
		t.Fatalf("programs interfered: %d, %d", n1.Load(), n2.Load())
	}
}
