package core

import (
	"aomplib/internal/rt"
	"aomplib/internal/weaver"
)

// ParallelRegionAspect makes every matched method a parallel region: the
// caller becomes the master of a new team whose workers all execute the
// method body, with an implicit join at the end (paper §III.A and Fig. 9).
// It is the analogue of extending the abstract aspect ParallelRegion and
// defining its parallelMethod() pointcut (paper Fig. 4).
type ParallelRegionAspect struct {
	name      string
	matcher   weaver.Matcher
	threads   int
	threadsFn func() int
}

// ParallelRegion binds a parallel region to the methods selected by the
// pointcut expression pc.
func ParallelRegion(pc string) *ParallelRegionAspect {
	return newParallelRegion(mustPC(pc))
}

func newParallelRegion(m weaver.Matcher) *ParallelRegionAspect {
	return &ParallelRegionAspect{name: "ParallelRegion", matcher: m}
}

// Named renames the aspect module for reports and removal.
func (a *ParallelRegionAspect) Named(name string) *ParallelRegionAspect {
	a.name = name
	return a
}

// Threads fixes the team size — the analogue of @Parallel(threads=n).
func (a *ParallelRegionAspect) Threads(n int) *ParallelRegionAspect {
	a.threads = n
	return a
}

// ThreadsFunc derives the team size at region entry — the analogue of
// overriding int numThreads() in a concrete aspect.
func (a *ParallelRegionAspect) ThreadsFunc(fn func() int) *ParallelRegionAspect {
	a.threadsFn = fn
	return a
}

// AspectName implements weaver.Aspect.
func (a *ParallelRegionAspect) AspectName() string { return a.name }

// Bindings implements weaver.Aspect.
func (a *ParallelRegionAspect) Bindings() []weaver.Binding {
	adv := advice{
		name: "parallel",
		prec: PrecParallel,
		wrap: func(jp *weaver.Joinpoint, next weaver.HandlerFunc) weaver.HandlerFunc {
			return func(c *weaver.Call) {
				n := a.threads
				if a.threadsFn != nil {
					n = a.threadsFn()
				}
				if n <= 0 {
					n = DefaultThreads()
				}
				// Each worker runs the body on its own (pooled) copy of the
				// Call so range rewrites and results stay private (Fig. 9:
				// every thread, master included, "proceeds"). The copy
				// source is snapshotted before the team starts so the
				// master's result write cannot race with worker copies.
				template := *c
				rt.Region(n, func(w *rt.Worker) {
					wc := weaver.GetCall()
					*wc = template
					wc.Worker = w
					next(wc)
					if w.ID == 0 {
						c.Ret = wc.Ret // master's result is the region's result
					}
					weaver.PutCall(wc)
				})
			}
		},
	}
	return []weaver.Binding{{Matcher: a.matcher, Advice: adv}}
}
