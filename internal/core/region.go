package core

import (
	"sync"

	"aomplib/internal/rt"
	"aomplib/internal/weaver"
)

// ParallelRegionAspect makes every matched method a parallel region: the
// caller becomes the master of a new team whose workers all execute the
// method body, with an implicit join at the end (paper §III.A and Fig. 9).
// It is the analogue of extending the abstract aspect ParallelRegion and
// defining its parallelMethod() pointcut (paper Fig. 4).
type ParallelRegionAspect struct {
	name      string
	matcher   weaver.Matcher
	threads   int
	threadsFn func() int
}

// ParallelRegion binds a parallel region to the methods selected by the
// pointcut expression pc.
func ParallelRegion(pc string) *ParallelRegionAspect {
	return newParallelRegion(mustPC(pc))
}

func newParallelRegion(m weaver.Matcher) *ParallelRegionAspect {
	return &ParallelRegionAspect{name: "ParallelRegion", matcher: m}
}

// Named renames the aspect module for reports and removal.
func (a *ParallelRegionAspect) Named(name string) *ParallelRegionAspect {
	a.name = name
	return a
}

// Threads fixes the team size — the analogue of @Parallel(threads=n).
func (a *ParallelRegionAspect) Threads(n int) *ParallelRegionAspect {
	a.threads = n
	return a
}

// ThreadsFunc derives the team size at region entry — the analogue of
// overriding int numThreads() in a concrete aspect.
func (a *ParallelRegionAspect) ThreadsFunc(fn func() int) *ParallelRegionAspect {
	a.threadsFn = fn
	return a
}

// AspectName implements weaver.Aspect.
func (a *ParallelRegionAspect) AspectName() string { return a.name }

// regionEntry is the per-entry state threaded through rt.RegionArg: the
// snapshot of the entering call that every worker copies, the rest of the
// advice chain, and the call whose result the master fills in. Entries
// are recycled through a pool so a warm region entry allocates nothing —
// a per-entry closure would escape to the heap on every call, because the
// team stores the body for its workers.
type regionEntry struct {
	template weaver.Call
	next     weaver.HandlerFunc
	out      *weaver.Call
}

var regionEntryPool = sync.Pool{New: func() any { return new(regionEntry) }}

func putRegionEntry(e *regionEntry) {
	*e = regionEntry{}
	regionEntryPool.Put(e)
}

// regionBody runs one worker's share of a region entry. Each worker runs
// the chain on its own (pooled) copy of the Call so range rewrites and
// results stay private (Fig. 9: every thread, master included,
// "proceeds"); the template is snapshotted before the team starts, so the
// master's result write cannot race with worker copies.
func regionBody(w *rt.Worker, arg any) {
	e := arg.(*regionEntry)
	wc := weaver.GetCall()
	*wc = e.template
	wc.Worker = w
	e.next(wc)
	if w.ID == 0 {
		e.out.Ret = wc.Ret // master's result is the region's result
	}
	weaver.PutCall(wc)
}

// Bindings implements weaver.Aspect.
func (a *ParallelRegionAspect) Bindings() []weaver.Binding {
	adv := advice{
		name: "parallel",
		prec: PrecParallel,
		wrap: func(jp *weaver.Joinpoint, next weaver.HandlerFunc) weaver.HandlerFunc {
			return func(c *weaver.Call) {
				n := a.threads
				if a.threadsFn != nil {
					n = a.threadsFn()
				}
				if n <= 0 {
					n = DefaultThreads()
				}
				e := regionEntryPool.Get().(*regionEntry)
				e.template = *c
				e.next = next
				e.out = c
				defer putRegionEntry(e) // also on the region's re-raised panic
				rt.RegionArg(n, regionBody, e)
			}
		},
	}
	return []weaver.Binding{{Matcher: a.matcher, Advice: adv}}
}
