package core

import (
	"fmt"
	"sync"

	"aomplib/internal/rt"
	"aomplib/internal/weaver"
)

// ---------------------------------------------------------- barriers --

// BarrierAspect inserts a team barrier before and/or after matched method
// executions (@BarrierBefore / @BarrierAfter). Outside a region it is a
// no-op, preserving sequential semantics.
type BarrierAspect struct {
	name          string
	matcher       weaver.Matcher
	before, after bool
}

// BarrierBeforePoint places a barrier before matched calls.
func BarrierBeforePoint(pc string) *BarrierAspect { return newBarrier(mustPC(pc), true, false) }

// BarrierAfterPoint places a barrier after matched calls.
func BarrierAfterPoint(pc string) *BarrierAspect { return newBarrier(mustPC(pc), false, true) }

// BarrierAroundPoint places barriers on both sides of matched calls.
func BarrierAroundPoint(pc string) *BarrierAspect { return newBarrier(mustPC(pc), true, true) }

func newBarrier(m weaver.Matcher, before, after bool) *BarrierAspect {
	name := "BarrierAfter"
	if before && after {
		name = "BarrierAround"
	} else if before {
		name = "BarrierBefore"
	}
	return &BarrierAspect{name: name, matcher: m, before: before, after: after}
}

// Named renames the aspect module.
func (a *BarrierAspect) Named(name string) *BarrierAspect { a.name = name; return a }

// AspectName implements weaver.Aspect.
func (a *BarrierAspect) AspectName() string { return a.name }

// Bindings implements weaver.Aspect.
func (a *BarrierAspect) Bindings() []weaver.Binding {
	adv := advice{
		name:        "barrier",
		prec:        PrecBarrier,
		needsWorker: true,
		wrap: func(jp *weaver.Joinpoint, next weaver.HandlerFunc) weaver.HandlerFunc {
			return func(c *weaver.Call) {
				if c.Worker == nil {
					next(c)
					return
				}
				if a.before {
					c.Worker.Team.Barrier().WaitWorker(c.Worker)
				}
				next(c)
				if a.after {
					c.Worker.Team.Barrier().WaitWorker(c.Worker)
				}
			}
		},
	}
	return []weaver.Binding{{Matcher: a.matcher, Advice: adv}}
}

// ---------------------------------------------------------- critical --

type criticalMode int

const (
	criticalCaptured criticalMode = iota // lock of the target joinpoint
	criticalNamed                        // process-wide named lock
	criticalShared                       // one lock per aspect instance
	criticalPerKey                       // lock table indexed by the method key
)

// CriticalAspect restricts matched method executions to one activity at a
// time (@Critical). Its scope is "all threads in the system", not one
// team. Four lock disciplines are supported, mirroring the paper:
// captured (per target, the default — criticalUsingCapturedLock), named
// (@Critical(id=...)), shared (one lock per aspect —
// criticalUsingSharedLock) and per-key (a case-specific table enabling
// e.g. one lock per particle, Fig. 15 "Locks").
type CriticalAspect struct {
	name       string
	matcher    weaver.Matcher
	mode       criticalMode
	id         string
	sharedLock sync.Mutex
	table      *rt.LockTable
}

// CriticalSection binds mutual exclusion to the methods selected by pc,
// using each matched method's own captured lock.
func CriticalSection(pc string) *CriticalAspect { return newCritical(mustPC(pc)) }

func newCritical(m weaver.Matcher) *CriticalAspect {
	return &CriticalAspect{name: "Critical", matcher: m, mode: criticalCaptured}
}

// Named renames the aspect module.
func (a *CriticalAspect) Named(name string) *CriticalAspect { a.name = name; return a }

// ID selects a process-wide named lock that can be "shared among multiple
// type-unrelated objects".
func (a *CriticalAspect) ID(id string) *CriticalAspect {
	a.mode, a.id = criticalNamed, id
	return a
}

// SharedLock makes all joinpoints matched by this aspect instance share a
// single lock (criticalUsingSharedLock).
func (a *CriticalAspect) SharedLock() *CriticalAspect {
	a.mode = criticalShared
	return a
}

// PerKey uses a table of n locks indexed by the method's key parameter;
// requires keyed methods.
func (a *CriticalAspect) PerKey(n int) *CriticalAspect {
	a.mode, a.table = criticalPerKey, rt.NewLockTable(n)
	return a
}

// AspectName implements weaver.Aspect.
func (a *CriticalAspect) AspectName() string { return a.name }

// Bindings implements weaver.Aspect.
func (a *CriticalAspect) Bindings() []weaver.Binding {
	adv := advice{
		name: "critical",
		prec: PrecCritical,
		validate: func(jp *weaver.Joinpoint) error {
			if a.mode == criticalPerKey && jp.Kind() != weaver.KeyedKind {
				return fmt.Errorf("@Critical per-key requires a keyed method, got %s %s", jp.Kind(), jp.FQN())
			}
			return nil
		},
		wrap: func(jp *weaver.Joinpoint, next weaver.HandlerFunc) weaver.HandlerFunc {
			switch a.mode {
			case criticalNamed:
				// Resolved once per weave and cached in the binding:
				// steady-state critical entries do one pointer load and
				// never touch the (sharded) registry.
				l := rt.NamedLock(a.id)
				return func(c *weaver.Call) {
					l.Lock()
					defer l.Unlock()
					next(c)
				}
			case criticalShared:
				return func(c *weaver.Call) {
					a.sharedLock.Lock()
					defer a.sharedLock.Unlock()
					next(c)
				}
			case criticalPerKey:
				return func(c *weaver.Call) {
					a.table.Lock(c.Key)
					defer a.table.Unlock(c.Key)
					next(c)
				}
			default: // captured: the matched method's own lock
				l := rt.ObjectLock(jp)
				return func(c *weaver.Call) {
					l.Lock()
					defer l.Unlock()
					next(c)
				}
			}
		},
	}
	return []weaver.Binding{{Matcher: a.matcher, Advice: adv}}
}

// ------------------------------------------------------ master/single --

// MasterAspect restricts matched executions to the team's master thread
// (@Master). On value-returning methods the master's result is propagated
// to all workers, which therefore wait for it.
type MasterAspect struct {
	name    string
	matcher weaver.Matcher
}

// MasterSection binds @Master to the methods selected by pc.
func MasterSection(pc string) *MasterAspect { return newMaster(mustPC(pc)) }

func newMaster(m weaver.Matcher) *MasterAspect { return &MasterAspect{name: "Master", matcher: m} }

// Named renames the aspect module.
func (a *MasterAspect) Named(name string) *MasterAspect { a.name = name; return a }

// AspectName implements weaver.Aspect.
func (a *MasterAspect) AspectName() string { return a.name }

// Bindings implements weaver.Aspect.
func (a *MasterAspect) Bindings() []weaver.Binding {
	adv := advice{
		name:        "master",
		prec:        PrecMaster,
		needsWorker: true,
		wrap: func(jp *weaver.Joinpoint, next weaver.HandlerFunc) weaver.HandlerFunc {
			returns := jp.Kind() == weaver.ValueKind
			return func(c *weaver.Call) {
				w := c.Worker
				if w == nil {
					next(c)
					return
				}
				claim, st := rt.MasterBegin(w, a, returns)
				switch {
				case claim && returns:
					next(c)
					st.Publish(c.Ret)
				case claim:
					next(c)
				case returns:
					c.Ret = st.Await()
				}
			}
		},
	}
	return []weaver.Binding{{Matcher: a.matcher, Advice: adv}}
}

// SingleAspect lets exactly one (unspecified) worker of the team execute
// each encounter of the matched methods (@Single). Value-returning
// methods broadcast the result.
type SingleAspect struct {
	name    string
	matcher weaver.Matcher
}

// SingleSection binds @Single to the methods selected by pc.
func SingleSection(pc string) *SingleAspect { return newSingle(mustPC(pc)) }

func newSingle(m weaver.Matcher) *SingleAspect { return &SingleAspect{name: "Single", matcher: m} }

// Named renames the aspect module.
func (a *SingleAspect) Named(name string) *SingleAspect { a.name = name; return a }

// AspectName implements weaver.Aspect.
func (a *SingleAspect) AspectName() string { return a.name }

// Bindings implements weaver.Aspect.
func (a *SingleAspect) Bindings() []weaver.Binding {
	adv := advice{
		name:        "single",
		prec:        PrecSingle,
		needsWorker: true,
		wrap: func(jp *weaver.Joinpoint, next weaver.HandlerFunc) weaver.HandlerFunc {
			returns := jp.Kind() == weaver.ValueKind
			return func(c *weaver.Call) {
				w := c.Worker
				if w == nil {
					next(c)
					return
				}
				claim, st := rt.SingleBegin(w, a, returns)
				switch {
				case claim && returns:
					next(c)
					st.Publish(c.Ret)
				case claim:
					next(c)
				case returns:
					c.Ret = st.Await()
				}
			}
		},
	}
	return []weaver.Binding{{Matcher: a.matcher, Advice: adv}}
}

// ----------------------------------------------------------- ordered --

// OrderedAspect serialises matched keyed methods in loop-iteration order
// within the innermost enclosing for construct (@Ordered: "only supported
// within the calling context of a for method").
type OrderedAspect struct {
	name    string
	matcher weaver.Matcher
}

// OrderedSection binds @Ordered to the keyed methods selected by pc; the
// key parameter carries the iteration value.
func OrderedSection(pc string) *OrderedAspect { return newOrdered(mustPC(pc)) }

func newOrdered(m weaver.Matcher) *OrderedAspect { return &OrderedAspect{name: "Ordered", matcher: m} }

// Named renames the aspect module.
func (a *OrderedAspect) Named(name string) *OrderedAspect { a.name = name; return a }

// AspectName implements weaver.Aspect.
func (a *OrderedAspect) AspectName() string { return a.name }

// Bindings implements weaver.Aspect.
func (a *OrderedAspect) Bindings() []weaver.Binding {
	adv := advice{
		name:        "ordered",
		prec:        PrecOrdered,
		needsWorker: true,
		validate: func(jp *weaver.Joinpoint) error {
			if jp.Kind() != weaver.KeyedKind {
				return fmt.Errorf("@Ordered requires a keyed method carrying the iteration value, got %s %s", jp.Kind(), jp.FQN())
			}
			return nil
		},
		wrap: func(jp *weaver.Joinpoint, next weaver.HandlerFunc) weaver.HandlerFunc {
			return func(c *weaver.Call) {
				w := c.Worker
				if w == nil {
					next(c)
					return
				}
				fc := w.ActiveFor()
				if fc == nil {
					next(c) // outside a for construct: plain execution
					return
				}
				fc.Ordered(c.Key, func() { next(c) })
			}
		},
	}
	return []weaver.Binding{{Matcher: a.matcher, Advice: adv}}
}

// ---------------------------------------------------- readers/writer --

// RWAspect implements the readers/writer mechanism: "multiple readers, but
// a single exclusive writer", with the two hook points bound by separate
// pointcuts (@Reader / @Writer).
type RWAspect struct {
	name             string
	readers, writers []weaver.Matcher
	lock             rt.RWLock
}

// ReadersWriter creates an empty readers/writer aspect; attach hook points
// with Reader and Writer.
func ReadersWriter() *RWAspect { return &RWAspect{name: "ReadersWriter"} }

// Named renames the aspect module.
func (a *RWAspect) Named(name string) *RWAspect { a.name = name; return a }

// Reader marks methods selected by pc as read accesses.
func (a *RWAspect) Reader(pc string) *RWAspect {
	a.readers = append(a.readers, mustPC(pc))
	return a
}

// Writer marks methods selected by pc as write accesses.
func (a *RWAspect) Writer(pc string) *RWAspect {
	a.writers = append(a.writers, mustPC(pc))
	return a
}

// AspectName implements weaver.Aspect.
func (a *RWAspect) AspectName() string { return a.name }

// Bindings implements weaver.Aspect.
func (a *RWAspect) Bindings() []weaver.Binding {
	rAdv := advice{
		name: "reader", prec: PrecRW,
		wrap: func(jp *weaver.Joinpoint, next weaver.HandlerFunc) weaver.HandlerFunc {
			return func(c *weaver.Call) {
				a.lock.RLock()
				defer a.lock.RUnlock()
				next(c)
			}
		},
	}
	wAdv := advice{
		name: "writer", prec: PrecRW,
		wrap: func(jp *weaver.Joinpoint, next weaver.HandlerFunc) weaver.HandlerFunc {
			return func(c *weaver.Call) {
				a.lock.Lock()
				defer a.lock.Unlock()
				next(c)
			}
		},
	}
	var out []weaver.Binding
	for _, m := range a.readers {
		out = append(out, weaver.Binding{Matcher: m, Advice: rAdv})
	}
	for _, m := range a.writers {
		out = append(out, weaver.Binding{Matcher: m, Advice: wAdv})
	}
	return out
}
