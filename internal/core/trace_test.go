package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"aomplib/internal/weaver"
)

// TraceSpans woven over a region method must emit one named slice per
// worker (the aspect runs inside the parallel advice), and unweaving must
// remove the instrumentation like any other aspect.
func TestTraceSpansAspect(t *testing.T) {
	p := weaver.NewProgram("t")
	var ran int32
	work := p.Class("Demo").Proc("work", func() { ran++ })
	region := p.Class("Demo").Proc("run", func() { work() })
	_ = region
	p.Use(ParallelRegion("call(* Demo.run(..))").Threads(2))
	p.Use(TraceSpans("call(* Demo.run(..))"))
	p.MustWeave()

	StartTrace()
	defer EnableTracing(false)
	region()
	var buf bytes.Buffer
	if err := StopTrace(&buf); err != nil {
		t.Fatalf("StopTrace: %v", err)
	}
	spans := countSpans(t, buf.Bytes(), "Demo.run")
	if spans != 2 {
		t.Fatalf("got %d Demo.run slices, want 2 (one per worker)", spans)
	}

	// Unplugged, the aspect leaves no instrumentation behind.
	p.Unweave()
	StartTrace()
	region()
	buf.Reset()
	if err := StopTrace(&buf); err != nil {
		t.Fatalf("StopTrace: %v", err)
	}
	if got := countSpans(t, buf.Bytes(), "Demo.run"); got != 0 {
		t.Fatalf("unwoven program still emitted %d spans", got)
	}
}

// countSpans parses a Chrome trace and counts "X" slices with the name.
func countSpans(t *testing.T, data []byte, name string) int {
	t.Helper()
	var trace struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &trace); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	n := 0
	for _, ev := range trace.TraceEvents {
		if ev.Ph == "X" && strings.Contains(ev.Name, name) {
			n++
		}
	}
	return n
}

// ReadRuntimeStats aggregates tracer counters with pool counters.
func TestRuntimeSnapshotAggregates(t *testing.T) {
	EnableTracing(true)
	defer EnableTracing(false)
	before := ReadRuntimeStats()
	p := weaver.NewProgram("t")
	region := p.Class("Demo").Proc("run", func() {})
	p.Use(ParallelRegion("call(* Demo.run(..))").Threads(2))
	p.MustWeave()
	region()
	st := ReadRuntimeStats()
	if st.Events.RegionForks <= before.Events.RegionForks {
		t.Fatalf("Events.RegionForks did not advance: %d -> %d",
			before.Events.RegionForks, st.Events.RegionForks)
	}
	if st.Pool.Leases <= before.Pool.Leases {
		t.Fatalf("Pool.Leases did not advance: %d -> %d", before.Pool.Leases, st.Pool.Leases)
	}
}
