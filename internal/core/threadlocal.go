package core

import (
	"fmt"
	"sync"

	"aomplib/internal/rt"
	"aomplib/internal/weaver"
)

// ThreadLocalAspect instantiates an object field per thread instead of per
// object (@ThreadLocalField): matched accessor methods (value-returning,
// produced by the M2M refactoring of a field access) return a per-worker
// value inside parallel regions and the global value outside them.
//
// Initialisation follows the paper: "each thread local object field is
// initialised with the value of the field outside the thread local
// context, if the first thread access is a read operation. Otherwise, the
// thread local value is not initialised" — i.e. write-first fields start
// fresh. InitFromGlobal covers the first case, InitFresh the second
// (e.g. per-thread force accumulators, which start zeroed).
type ThreadLocalAspect struct {
	name    string
	id      string
	matcher weaver.Matcher

	fresh      func() any
	fromGlobal func() any

	mu      sync.Mutex
	perTeam map[teamLease]map[int]any
}

// teamLease identifies one region entry served by a (possibly hot,
// reused) team: recording values under the lease epoch guarantees that a
// drain can never pick up copies left behind by an earlier region entry
// of the same pooled team.
type teamLease struct {
	team  *rt.Team
	epoch uint64
}

func leaseOf(t *rt.Team) teamLease { return teamLease{team: t, epoch: t.Epoch()} }

// NewThreadLocal binds @ThreadLocalField with the given id to the accessor
// methods selected by pc.
func NewThreadLocal(pc, id string) *ThreadLocalAspect { return newThreadLocal(mustPC(pc), id) }

func newThreadLocal(m weaver.Matcher, id string) *ThreadLocalAspect {
	return &ThreadLocalAspect{
		name:    "ThreadLocal(" + id + ")",
		id:      id,
		matcher: m,
		perTeam: make(map[teamLease]map[int]any),
	}
}

// Named renames the aspect module.
func (a *ThreadLocalAspect) Named(name string) *ThreadLocalAspect { a.name = name; return a }

// ID returns the field id distinguishing "several thread local fields".
func (a *ThreadLocalAspect) ID() string { return a.id }

// InitFresh initialises each worker's value with make (write-first
// semantics, e.g. zeroed accumulators).
func (a *ThreadLocalAspect) InitFresh(make func() any) *ThreadLocalAspect {
	a.fresh = make
	return a
}

// InitFromGlobal initialises each worker's value from the field value
// outside the thread-local context (read-first semantics). get must
// return an independent copy.
func (a *ThreadLocalAspect) InitFromGlobal(get func() any) *ThreadLocalAspect {
	a.fromGlobal = get
	return a
}

func (a *ThreadLocalAspect) newValue() any {
	if a.fresh != nil {
		return a.fresh()
	}
	return a.fromGlobal()
}

func (a *ThreadLocalAspect) record(team *rt.Team, id int, v any) {
	key := leaseOf(team)
	a.mu.Lock()
	byID := a.perTeam[key]
	if byID == nil {
		byID = make(map[int]any)
		a.perTeam[key] = byID
	}
	byID[id] = v
	a.mu.Unlock()
}

// Drain removes and returns all per-worker values created for the current
// region entry of team, in worker-id order. It is the collection step of
// a reduction.
func (a *ThreadLocalAspect) Drain(team *rt.Team) []any {
	key := leaseOf(team)
	a.mu.Lock()
	byID := a.perTeam[key]
	delete(a.perTeam, key)
	a.mu.Unlock()
	out := make([]any, 0, len(byID))
	for id := 0; id < team.Size; id++ {
		if v, ok := byID[id]; ok {
			out = append(out, v)
		}
	}
	return out
}

// Values returns a snapshot of the per-worker values for the current
// region entry of team without draining them (worker-id order).
func (a *ThreadLocalAspect) Values(team *rt.Team) []any {
	key := leaseOf(team)
	a.mu.Lock()
	byID := a.perTeam[key]
	out := make([]any, 0, len(byID))
	for id := 0; id < team.Size; id++ {
		if v, ok := byID[id]; ok {
			out = append(out, v)
		}
	}
	a.mu.Unlock()
	return out
}

// AspectName implements weaver.Aspect.
func (a *ThreadLocalAspect) AspectName() string { return a.name }

// Bindings implements weaver.Aspect.
func (a *ThreadLocalAspect) Bindings() []weaver.Binding {
	adv := advice{
		name:        "threadLocal(" + a.id + ")",
		prec:        PrecThreadLocal,
		needsWorker: true,
		validate: func(jp *weaver.Joinpoint) error {
			if jp.Kind() != weaver.ValueKind {
				return fmt.Errorf("@ThreadLocalField requires a value-returning accessor, got %s %s", jp.Kind(), jp.FQN())
			}
			if a.fresh == nil && a.fromGlobal == nil {
				return fmt.Errorf("@ThreadLocalField(%s) has no initialiser (InitFresh or InitFromGlobal)", a.id)
			}
			return nil
		},
		wrap: func(jp *weaver.Joinpoint, next weaver.HandlerFunc) weaver.HandlerFunc {
			return func(c *weaver.Call) {
				w := c.Worker
				if w == nil {
					next(c) // outside regions the global field is used
					return
				}
				c.Ret = w.TLS(a, func() any {
					v := a.newValue()
					a.record(w.Team, w.ID, v)
					return v
				})
			}
		},
	}
	return []weaver.Binding{{Matcher: a.matcher, Advice: adv}}
}

// ReduceAspect merges all thread-local copies of a field into its global
// value at matched methods (@Reduce): a barrier ensures all workers have
// finished producing, the master merges every copy, thread-local caches
// are invalidated, and a second barrier publishes the merged value before
// the method proceeds.
type ReduceAspect struct {
	name    string
	matcher weaver.Matcher
	tl      *ThreadLocalAspect
	merge   func(local any)
}

// ReducePoint binds @Reduce(id=tl.ID()) to the methods selected by pc.
// merge folds one thread-local copy into the global value; it runs on the
// master, serially, once per copy.
func ReducePoint(pc string, tl *ThreadLocalAspect, merge func(local any)) *ReduceAspect {
	return newReduce(mustPC(pc), tl, merge)
}

func newReduce(m weaver.Matcher, tl *ThreadLocalAspect, merge func(local any)) *ReduceAspect {
	return &ReduceAspect{name: "Reduce(" + tl.ID() + ")", matcher: m, tl: tl, merge: merge}
}

// Named renames the aspect module.
func (a *ReduceAspect) Named(name string) *ReduceAspect { a.name = name; return a }

// AspectName implements weaver.Aspect.
func (a *ReduceAspect) AspectName() string { return a.name }

// Bindings implements weaver.Aspect.
func (a *ReduceAspect) Bindings() []weaver.Binding {
	adv := advice{
		name:        "reduce(" + a.tl.ID() + ")",
		prec:        PrecReduce,
		needsWorker: true,
		wrap: func(jp *weaver.Joinpoint, next weaver.HandlerFunc) weaver.HandlerFunc {
			return func(c *weaver.Call) {
				w := c.Worker
				if w == nil {
					next(c)
					return
				}
				w.Team.Barrier().WaitWorker(w) // all producers done
				if w.ID == 0 {
					for _, v := range a.tl.Drain(w.Team) {
						a.merge(v)
					}
				}
				w.TLSDelete(a.tl)              // next access re-initialises
				w.Team.Barrier().WaitWorker(w) // merged value visible
				next(c)
			}
		},
	}
	return []weaver.Binding{{Matcher: a.matcher, Advice: adv}}
}
