// Package core implements the AOmpLib itself: "a library of aspects
// modules implementing most common used OpenMP abstractions, which can be
// composed with a base program either through plain Java annotations or
// through AspectJ pointcuts" (paper §I) — transliterated to Go on top of
// the weaver, rt, sched and gls substrates.
//
// Every abstraction of the paper's Table 1 is provided, in both styles:
//
//	Pointcut style                      Annotation style
//	------------------------------      ----------------------------
//	ParallelRegion(pc)                  Parallel{Threads: n}
//	ForShare(pc).Schedule(k)            For{Schedule: k}
//	TaskSpawn(pc)                       Task{}
//	TaskWaitPoint(pc)                   TaskWait{}
//	FutureTaskSpawn(pc)                 FutureTask{}  (+ Future getters)
//	OrderedSection(pc)                  Ordered{}
//	CriticalSection(pc).ID(name)        Critical{ID: name}
//	BarrierBeforePoint(pc)              BarrierBefore{}
//	BarrierAfterPoint(pc)               BarrierAfter{}
//	ReadersWriter().Reader(pc)...       Reader{ID}/Writer{ID}
//	SingleSection(pc)                   Single{}
//	MasterSection(pc)                   Master{}
//	NewThreadLocal(pc, id)              ThreadLocalField{ID: id, ...}
//	ReducePoint(pc, tl, merge)          Reduce{ID: id, Merge: ...}
//
// Case-specific mechanisms are built with Around (custom advice) and
// ForShare(...).CustomSchedule (custom loop scheduling), the two extension
// points the paper calls out for tuning performance.
package core

import (
	"aomplib/internal/pointcut"
	"aomplib/internal/rt"
	"aomplib/internal/sched"
	"aomplib/internal/weaver"
)

// Advice precedence: higher wraps further out. The ordering encodes the
// execution model: a parallel region encloses everything; barriers enclose
// the work they delimit; work-sharing splits before single/master filter;
// mutual exclusion and thread-local access are innermost.
const (
	PrecParallel    = 100
	PrecTaskWait    = 96
	PrecTask        = 95
	PrecTaskGroup   = 93 // inside @Task: a spawned task's body opens the scope
	PrecBarrier     = 90
	PrecReduce      = 85
	PrecTaskLoop    = 81 // outside @For: a shared sub-range may be task-decomposed
	PrecFor         = 80
	PrecMaster      = 70
	PrecSingle      = 70
	PrecOrdered     = 60
	PrecCritical    = 50
	PrecRW          = 50
	PrecThreadLocal = 40
)

// ThreadID returns the id of the calling worker within its team, 0 outside
// parallel regions — the paper's getThreadId(), available to
// application-specific aspects.
func ThreadID() int { return rt.ThreadID() }

// NumThreads returns the calling worker's team size, 1 outside regions.
func NumThreads() int { return rt.NumThreads() }

// InParallel reports whether the caller executes inside a parallel region.
func InParallel() bool { return rt.Current() != nil }

// Level reports the parallel-region nesting depth at the caller: 0 outside
// any region, 1 inside an outermost region, and so on.
func Level() int { return rt.Level() }

// SetNested enables or disables nested parallel regions (the analogue of
// OMP_NESTED; enabled by default). With nesting disabled, a region entered
// from inside a team runs serialized on a single-worker inner team. It
// returns the previous setting.
func SetNested(on bool) bool { return rt.SetNested(on) }

// NestedEnabled reports whether nested parallel regions spawn real teams.
func NestedEnabled() bool { return rt.NestedEnabled() }

// TaskYield is an explicit task scheduling point: the calling worker
// executes up to n queued tasks of its team (its own first, then stolen
// from siblings) and reports how many ran. Outside parallel regions it is
// a no-op.
func TaskYield(n int) int { return rt.TaskYield(n) }

// SetDefaultThreads sets the process-wide default team size (0 restores
// the live GOMAXPROCS default), atomically and for every layer — regions
// entered through the runtime directly and through aspects read the same
// default. It returns the previously stored override (0 when the default
// was GOMAXPROCS-tracking), so save/restore round-trips exactly.
// Benchmark harnesses use it to sweep thread counts without touching
// aspect definitions.
func SetDefaultThreads(n int) int { return rt.SetDefaultThreads(n) }

// DefaultThreads returns the effective default team size.
func DefaultThreads() int { return rt.DefaultThreads() }

// SetHotTeams enables or disables hot-team reuse — parallel regions
// leasing long-lived worker teams from a process-wide pool instead of
// spawning goroutines per entry (enabled by default). Disabling drains
// the pool and restores spawn-and-discard teams. It returns the previous
// setting.
func SetHotTeams(on bool) bool { return rt.SetHotTeams(on) }

// HotTeamsEnabled reports whether parallel regions reuse pooled teams.
func HotTeamsEnabled() bool { return rt.HotTeamsEnabled() }

// SetPoolSize bounds how many workers the hot-team pool may keep parked
// (0 restores the default of four default-sized teams). It returns the
// previous explicit bound.
func SetPoolSize(maxIdleWorkers int) int { return rt.SetPoolSize(maxIdleWorkers) }

// PoolStats snapshots the hot-team pool: lease/hit/miss/retire counters
// and the currently parked teams and workers.
func PoolStats() rt.PoolStats { return rt.ReadPoolStats() }

// SetDefaultSchedule sets the process-wide schedule that @For constructs
// declared with the Runtime kind resolve to (the OMP_SCHEDULE analogue).
// It returns the previous default; Runtime and Custom are rejected.
func SetDefaultSchedule(k sched.Kind) (sched.Kind, error) { return sched.SetDefault(k) }

// DefaultSchedule returns the process-wide default schedule.
func DefaultSchedule() sched.Kind { return sched.Default() }

// mustPC parses a pointcut expression, panicking on malformed aspect
// definitions (they are compile-time constants of the using program).
func mustPC(pc string) weaver.Matcher { return pointcut.MustParse(pc) }

// advice is the common base for the library's advice implementations.
type advice struct {
	name        string
	prec        int
	needsWorker bool
	wrap        func(jp *weaver.Joinpoint, next weaver.HandlerFunc) weaver.HandlerFunc
	validate    func(jp *weaver.Joinpoint) error
}

func (a advice) AdviceName() string { return a.name }
func (a advice) Precedence() int    { return a.prec }
func (a advice) NeedsWorker() bool  { return a.needsWorker }
func (a advice) Wrap(jp *weaver.Joinpoint, next weaver.HandlerFunc) weaver.HandlerFunc {
	return a.wrap(jp, next)
}
func (a advice) ValidateJP(jp *weaver.Joinpoint) error {
	if a.validate == nil {
		return nil
	}
	return a.validate(jp)
}

// Compose aggregates several aspects into one deployable module — the
// analogue of "creating a new abstract aspect enclosing several aspects as
// inner aspects" for OpenMP's combined constructs.
func Compose(name string, aspects ...weaver.Aspect) weaver.Aspect {
	var bind []weaver.Binding
	for _, a := range aspects {
		bind = append(bind, a.Bindings()...)
	}
	return &weaver.SimpleAspect{Name: name, Bind: bind}
}

// Around builds a case-specific aspect from a raw around-advice function,
// the library's general extension point: "specific aspect modules can
// provide such code". proceed invokes the rest of the chain; the advice
// may call it zero, one or several times, rewriting the Call in between.
func Around(name, pc string, precedence int, needsWorker bool,
	fn func(c *weaver.Call, proceed func(*weaver.Call))) weaver.Aspect {
	adv := advice{
		name: name, prec: precedence, needsWorker: needsWorker,
		wrap: func(jp *weaver.Joinpoint, next weaver.HandlerFunc) weaver.HandlerFunc {
			return func(c *weaver.Call) { fn(c, next) }
		},
	}
	return &weaver.SimpleAspect{Name: name, Bind: []weaver.Binding{{Matcher: mustPC(pc), Advice: adv}}}
}
