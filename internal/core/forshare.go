package core

import (
	"fmt"

	"aomplib/internal/rt"
	"aomplib/internal/sched"
	"aomplib/internal/weaver"
)

// ForAspect applies the for work-sharing construct to for methods
// (methods exposing the loop iteration space in their first three int
// parameters): each team worker executes a rewritten iteration range
// according to the schedule (paper §III.C, Figs. 10-11).
//
// Outside a parallel region the method runs its full range — sequential
// semantics are preserved when the enclosing region aspect is unplugged.
type ForAspect struct {
	name    string
	matcher weaver.Matcher
	kind    sched.Kind
	chunk   int
	custom  sched.ScheduleFunc
	wait    *bool // explicit barrier override; nil = schedule default
}

// ForShare binds the for construct to the for methods selected by pc.
// The default schedule is static by blocks, as in OpenMP.
func ForShare(pc string) *ForAspect { return newForShare(mustPC(pc)) }

func newForShare(m weaver.Matcher) *ForAspect {
	return &ForAspect{name: "For", matcher: m, kind: sched.StaticBlock}
}

// Named renames the aspect module.
func (a *ForAspect) Named(name string) *ForAspect { a.name = name; return a }

// Schedule selects the scheduling policy — @For(schedule=...).
func (a *ForAspect) Schedule(k sched.Kind) *ForAspect { a.kind = k; return a }

// Chunk sets the chunk size for dynamic/guided schedules (default 1,
// "for simplicity the chunk size was defined as one").
func (a *ForAspect) Chunk(n int) *ForAspect { a.chunk = n; return a }

// CustomSchedule installs a case-specific schedule (Table 2: the Sparse
// benchmark's nonzero-balanced partition is one).
func (a *ForAspect) CustomSchedule(fn sched.ScheduleFunc) *ForAspect {
	a.kind = sched.Custom
	a.custom = fn
	return a
}

// NoWait suppresses the implicit end-of-construct barrier that dynamic and
// guided schedules otherwise perform (paper Fig. 11: "Each thread, after
// finishing its work, will call a barrier").
func (a *ForAspect) NoWait() *ForAspect { f := false; a.wait = &f; return a }

// Wait forces an end-of-construct barrier for static schedules as well.
func (a *ForAspect) Wait() *ForAspect { tr := true; a.wait = &tr; return a }

// implicitBarrier decides the end-of-construct barrier for the schedule an
// encounter resolved to (Auto, Runtime and Adaptive resolve per encounter,
// so the decision cannot be precomputed from the declared kind). The steal
// kinds barrier like dynamic: workers finish at data-dependent points
// after range migration, so code after the construct may not assume its
// own static share ran last.
func (a *ForAspect) implicitBarrier(k sched.Kind) bool {
	if a.wait != nil {
		return *a.wait
	}
	return k == sched.Dynamic || k == sched.Guided || k == sched.Steal || k == sched.WeightedSteal
}

// AspectName implements weaver.Aspect.
func (a *ForAspect) AspectName() string { return a.name }

// Bindings implements weaver.Aspect.
func (a *ForAspect) Bindings() []weaver.Binding {
	adv := advice{
		name:        fmt.Sprintf("for(%s)", a.kind),
		prec:        PrecFor,
		needsWorker: true,
		validate: func(jp *weaver.Joinpoint) error {
			if jp.Kind() != weaver.ForKind {
				return fmt.Errorf("@For requires a for method (start,end,step), got %s %s", jp.Kind(), jp.FQN())
			}
			if a.kind == sched.Custom && a.custom == nil {
				return fmt.Errorf("@For custom schedule on %s has no ScheduleFunc", jp.FQN())
			}
			return nil
		},
		wrap: func(jp *weaver.Joinpoint, next weaver.HandlerFunc) weaver.HandlerFunc {
			return func(c *weaver.Call) {
				w := c.Worker
				if w == nil {
					next(c) // sequential semantics: full range
					return
				}
				sp := sched.Space{Lo: c.Lo, Hi: c.Hi, Step: c.Step}
				// Auto picks from the loop shape, Runtime from the process
				// default. Resolution happens once per encounter inside the
				// team-shared state (the first arriving worker decides), so
				// a concurrent SetDefaultSchedule can never split one
				// encounter across two schedules and desynchronise the
				// implicit barrier; every worker switches on fc.Kind.
				fc := rt.BeginFor(w, a, sp, a.kind, a.chunk)
				k := fc.Kind
				// One pooled sub-call is reused for every sub-range this
				// worker executes, so dynamic/guided chunking does not
				// allocate per chunk.
				sc := weaver.GetCall()
				runSub := func(sub sched.Space) {
					n := sub.Count()
					if n == 0 {
						return
					}
					rt.AsymDelay(w.ID, n)
					*sc = *c
					sc.Lo, sc.Hi, sc.Step = sub.Lo, sub.Hi, sub.Step
					next(sc)
				}
				switch k {
				case sched.StaticBlock:
					runSub(sched.Block(sp, w.Team.Size, w.ID))
				case sched.StaticCyclic:
					runSub(sched.Cyclic(sp, w.Team.Size, w.ID))
				case sched.Custom:
					for _, sub := range a.custom(w.ID, w.Team.Size, sp) {
						runSub(sub)
					}
				case sched.Steal, sched.WeightedSteal:
					for {
						sub, ok := fc.DispenseSteal()
						if !ok {
							break
						}
						runSub(sub)
					}
				default: // Dynamic, Guided
					for {
						sub, ok := fc.Dispense()
						if !ok {
							break
						}
						runSub(sub)
					}
				}
				weaver.PutCall(sc)
				fc.EndFor()
				if a.implicitBarrier(k) {
					w.Team.Barrier().WaitWorker(w)
				}
			}
		},
	}
	return []weaver.Binding{{Matcher: a.matcher, Advice: adv}}
}
