package core

import (
	"io"

	"aomplib/internal/obs"
	"aomplib/internal/rt"
	"aomplib/internal/weaver"
)

// Tracing facade: instrumentation is the canonical crosscutting concern,
// so the library treats it exactly like its parallelism constructs — a
// runtime substrate (internal/obs) plus an aspect (TraceSpans) woven like
// any other. EnableTracing/StartTrace/StopTrace drive the built-in tracer;
// ReadRuntimeStats aggregates its counters with the hot-team pool's.

// EnableTracing installs (or uninstalls) the built-in runtime tracer and
// returns whether it was previously installed. Enabled, every runtime
// transition — region forks, team leases, task spawns, steals, barrier
// waits, dependence releases — feeds the aggregate counters behind
// ReadRuntimeStats. Event buffering for timeline export additionally needs
// StartTrace. Disabled (the default), the runtime's emit points cost one
// atomic load and a predicted branch each, keeping the allocation-free hot
// paths intact.
func EnableTracing(on bool) bool { return obs.EnableTracing(on) }

// TracingEnabled reports whether the built-in tracer is installed.
func TracingEnabled() bool { return obs.TracingEnabled() }

// StartTrace begins recording runtime events into per-worker ring buffers
// (enabling the tracer if needed), discarding any previous trace.
func StartTrace() { obs.StartTrace() }

// StopTrace ends the recording, drains the ring buffers and writes the
// timeline as Chrome trace-event JSON to w — load it at ui.perfetto.dev:
// one track per worker, nested region/work/task slices, barrier-wait
// slices, and flow arrows from task spawn to task run.
func StopTrace(w io.Writer) error { return obs.StopTrace(w) }

// RuntimeSnapshot aggregates the observability counters: the tracer's
// event statistics, the hot-team pool's lease counters, and the
// multi-tenant admission controller's queue and fairness counters.
type RuntimeSnapshot struct {
	// Events are the built-in tracer's cumulative counters (zero unless
	// EnableTracing/StartTrace installed it).
	Events obs.Stats
	// Pool is the hot-team pool snapshot, always live.
	Pool rt.PoolStats
	// Admission is the multi-tenant admission snapshot, always live
	// (zero-counter when admission control has never been enabled).
	Admission rt.AdmissionStats
}

// ReadRuntimeStats snapshots the runtime: tracer counters plus pool and
// admission state.
func ReadRuntimeStats() RuntimeSnapshot {
	return RuntimeSnapshot{
		Events:    obs.ReadStats(),
		Pool:      rt.ReadPoolStats(),
		Admission: rt.ReadAdmissionStats(),
	}
}

// SetTraceHooks installs a custom tool's hook table in place of (or
// alongside the absence of) the built-in tracer — the OMPT analogue of
// tool registration. nil uninstalls; the previous table is returned.
func SetTraceHooks(h *obs.Hooks) *obs.Hooks { return obs.SetHooks(h) }

// PrecTrace places span advice just inside the parallel region, so a span
// woven on a region method brackets each worker's share (one slice per
// worker track), and a span on an inner method nests inside its caller's.
const PrecTrace = 98

// TraceAspect marks matched methods as named trace spans: while a trace is
// recording, every call emits a begin/end pair that the Chrome export
// renders as a slice named after the joinpoint, on the calling worker's
// track. Instrumentation stays out of the base program, woven and
// unplugged like any other aspect.
type TraceAspect struct {
	name    string
	matcher weaver.Matcher
}

// TraceSpans binds trace spans to the methods selected by pc.
func TraceSpans(pc string) *TraceAspect {
	return &TraceAspect{name: "TraceSpans", matcher: mustPC(pc)}
}

// Named renames the aspect module.
func (a *TraceAspect) Named(name string) *TraceAspect { a.name = name; return a }

// AspectName implements weaver.Aspect.
func (a *TraceAspect) AspectName() string { return a.name }

// Bindings implements weaver.Aspect.
func (a *TraceAspect) Bindings() []weaver.Binding {
	adv := advice{
		name:        "trace",
		prec:        PrecTrace,
		needsWorker: true,
		wrap: func(jp *weaver.Joinpoint, next weaver.HandlerFunc) weaver.HandlerFunc {
			// The span name is interned once at weave time; the per-call
			// path emits only scalars.
			id := obs.InternName(jp.FQN())
			return func(c *weaver.Call) {
				h := obs.Active()
				if h == nil {
					next(c)
					return
				}
				gid := obs.NoWorker
				if c.Worker != nil {
					gid = c.Worker.ObsID()
				}
				if h.SpanBegin != nil {
					h.SpanBegin(gid, id)
				}
				if h.SpanEnd != nil {
					defer h.SpanEnd(gid, id)
				}
				next(c)
			}
		},
	}
	return []weaver.Binding{{Matcher: a.matcher, Advice: adv}}
}
