package core

import (
	"fmt"

	"aomplib/internal/sched"
	"aomplib/internal/weaver"
)

// This file provides the annotation style of programming (paper §III.B):
// plain metadata attached to methods via Program.Annotate, translated into
// concrete aspects by AnnotationAspects — the analogue of the library's
// ParallelAnnotation aspect, "the aspect that acts upon all methods that
// are annotated with @Parallel" (paper Fig. 5).

// Parallel marks a method as a parallel region — @Parallel[(threads=n)].
type Parallel struct {
	// Threads fixes the team size; 0 uses the process default.
	Threads int
}

// AnnotationName implements weaver.Annotation.
func (Parallel) AnnotationName() string { return "Parallel" }

// For marks a for method for work sharing —
// @For[(schedule=staticBlock|staticCyclic|dynamic)].
type For struct {
	// Schedule selects the policy (default staticBlock).
	Schedule sched.Kind
	// Chunk is the dynamic/guided chunk size (default 1).
	Chunk int
	// NoWait suppresses the dynamic schedule's implicit barrier.
	NoWait bool
	// Custom supplies a case-specific schedule; set Schedule to
	// sched.Custom.
	Custom sched.ScheduleFunc
}

// AnnotationName implements weaver.Annotation.
func (For) AnnotationName() string { return "For" }

// Task spawns the method as a new parallel activity — @Task.
type Task struct{}

// AnnotationName implements weaver.Annotation.
func (Task) AnnotationName() string { return "Task" }

// Depend attaches OpenMP 4.x-style dependence clauses to a @Task or
// @FutureTask method — @Depend(in=…, out=…, inout=…). Each clause lists
// address keys (&x, &a[i]); spawns are ordered after previously spawned
// conflicting tasks: an in clause waits for the last writer of the
// address, an out/inout clause waits for the last writer and all readers
// since. Elements of type DepFn are resolved against the keyed method's
// key at every spawn, expressing per-call addresses (wavefront blocks,
// grid neighbours); nil elements are skipped.
type Depend struct {
	In, Out, InOut []any
}

// AnnotationName implements weaver.Annotation.
func (Depend) AnnotationName() string { return "Depend" }

// TaskGroup scopes the method as a task group — @TaskGroup: the method
// returns only when every task spawned in its dynamic extent (descendants
// included) has completed. A scoped wait, unlike the team-wide @TaskWait.
type TaskGroup struct{}

// AnnotationName implements weaver.Annotation.
func (TaskGroup) AnnotationName() string { return "TaskGroup" }

// TaskLoop decomposes a for method into deferred tasks —
// @TaskLoop[(grainsize=n)]: the iteration space is split into balanced
// parts spawned as work-stealable tasks, and the call joins them before
// returning. Execute it from a single caller (@Single/@Master); the team
// picks the parts up at scheduling points.
type TaskLoop struct {
	// Grainsize is the minimum iterations per task (0: four parts per
	// team worker).
	Grainsize int
	// Collapse records how many perfectly nested loops the linearized
	// iteration space covers (the M2FOR refactoring linearizes nested
	// loops at registration); the decomposition operates on the
	// linearized space either way.
	Collapse int
}

// AnnotationName implements weaver.Annotation.
func (TaskLoop) AnnotationName() string { return "TaskLoop" }

// TaskWait makes the method a join point for spawned activities — @TaskWait.
type TaskWait struct {
	// After joins after the body instead of before it.
	After bool
}

// AnnotationName implements weaver.Annotation.
func (TaskWait) AnnotationName() string { return "TaskWait" }

// FutureTask spawns a value-returning method asynchronously — @FutureTask.
// The method's Future getter is the synchronisation point (@FutureResult).
type FutureTask struct{}

// AnnotationName implements weaver.Annotation.
func (FutureTask) AnnotationName() string { return "FutureTask" }

// Ordered serialises a keyed method in iteration order within the
// enclosing for construct — @Ordered.
type Ordered struct{}

// AnnotationName implements weaver.Annotation.
func (Ordered) AnnotationName() string { return "Ordered" }

// Critical enforces mutual exclusion — @Critical[(id=name)]. An empty ID
// uses the annotated method's own captured lock, "as in plain Java".
type Critical struct {
	// ID names a process-wide lock shared by all @Critical(id=ID) uses.
	ID string
	// PerKey, when positive, uses a table of that many locks indexed by
	// the keyed method's key (case-specific fine-grained locking).
	PerKey int
}

// AnnotationName implements weaver.Annotation.
func (Critical) AnnotationName() string { return "Critical" }

// BarrierBefore inserts a team barrier before the method — @BarrierBefore.
type BarrierBefore struct{}

// AnnotationName implements weaver.Annotation.
func (BarrierBefore) AnnotationName() string { return "BarrierBefore" }

// BarrierAfter inserts a team barrier after the method — @BarrierAfter.
type BarrierAfter struct{}

// AnnotationName implements weaver.Annotation.
func (BarrierAfter) AnnotationName() string { return "BarrierAfter" }

// Reader marks a read access of a readers/writer pair — @Reader. Pairs
// share locks by ID.
type Reader struct{ ID string }

// AnnotationName implements weaver.Annotation.
func (Reader) AnnotationName() string { return "Reader" }

// Writer marks a write access of a readers/writer pair — @Writer.
type Writer struct{ ID string }

// AnnotationName implements weaver.Annotation.
func (Writer) AnnotationName() string { return "Writer" }

// Single lets one worker execute each encounter — @Single.
type Single struct{}

// AnnotationName implements weaver.Annotation.
func (Single) AnnotationName() string { return "Single" }

// Master restricts execution to the master thread — @Master.
type Master struct{}

// AnnotationName implements weaver.Annotation.
func (Master) AnnotationName() string { return "Master" }

// ThreadLocalField makes the annotated accessor return a per-thread value
// — @ThreadLocalField[(id=name)]. Exactly one of Fresh/FromGlobal must be
// set (write-first vs read-first initialisation).
type ThreadLocalField struct {
	ID         string
	Fresh      func() any
	FromGlobal func() any
}

// AnnotationName implements weaver.Annotation.
func (ThreadLocalField) AnnotationName() string { return "ThreadLocalField" }

// Reduce merges the thread-local copies identified by ID into the global
// value at the annotated method — @Reduce[(id=name)].
type Reduce struct {
	ID    string
	Merge func(local any)
}

// AnnotationName implements weaver.Annotation.
func (Reduce) AnnotationName() string { return "Reduce" }

// AnnotationAspects scans the program's joinpoints and builds the concrete
// aspects realising their annotations, one aspect per annotated method
// (bound by exact matcher so per-method parameters — thread counts, lock
// ids, schedules — apply precisely). Deploy the result with Use, then
// Weave:
//
//	prog.MustAnnotate("Linpack.dgefa", core.Parallel{})
//	prog.Use(core.AnnotationAspects(prog)...)
//	prog.MustWeave()
func AnnotationAspects(p *weaver.Program) []weaver.Aspect {
	var out []weaver.Aspect
	tls := map[string]*ThreadLocalAspect{}
	rws := map[string]*RWAspect{}

	// First pass: thread-local fields and readers/writer pairs, which
	// later annotations reference by id.
	for _, jp := range p.Joinpoints() {
		for _, an := range jp.Annotations() {
			switch a := an.(type) {
			case ThreadLocalField:
				t := newThreadLocal(weaver.Exact(jp), a.ID)
				if a.Fresh != nil {
					t.InitFresh(a.Fresh)
				}
				if a.FromGlobal != nil {
					t.InitFromGlobal(a.FromGlobal)
				}
				if prev, dup := tls[a.ID]; dup {
					panic(fmt.Sprintf("core: duplicate @ThreadLocalField id %q (%s)", a.ID, prev.AspectName()))
				}
				tls[a.ID] = t
				out = append(out, named(t, "@ThreadLocalField", jp))
			case Reader:
				rw := rws[a.ID]
				if rw == nil {
					rw = ReadersWriter().Named("@ReadersWriter(" + a.ID + ")")
					rws[a.ID] = rw
				}
				rw.readers = append(rw.readers, weaver.Exact(jp))
			case Writer:
				rw := rws[a.ID]
				if rw == nil {
					rw = ReadersWriter().Named("@ReadersWriter(" + a.ID + ")")
					rws[a.ID] = rw
				}
				rw.writers = append(rw.writers, weaver.Exact(jp))
			}
		}
	}
	for _, rw := range rws {
		out = append(out, rw)
	}

	// Second pass: all remaining constructs.
	for _, jp := range p.Joinpoints() {
		for _, an := range jp.Annotations() {
			switch a := an.(type) {
			case Parallel:
				asp := newParallelRegion(weaver.Exact(jp)).Threads(a.Threads)
				out = append(out, named(asp, "@Parallel", jp))
			case For:
				asp := newForShare(weaver.Exact(jp)).Schedule(a.Schedule).Chunk(a.Chunk)
				if a.Custom != nil {
					asp.CustomSchedule(a.Custom)
				}
				if a.NoWait {
					asp.NoWait()
				}
				out = append(out, named(asp, "@For", jp))
			case Task:
				asp := newTask(weaver.Exact(jp))
				kind := "@Task"
				if d, ok := dependOf(jp); ok {
					asp.Depend(d)
					kind = "@Task+@Depend"
				}
				out = append(out, named(asp, kind, jp))
			case Depend:
				// Realised by the @Task/@FutureTask case; standalone it
				// orders nothing, which is always a composition bug.
				if !jp.HasAnnotation("Task") && !jp.HasAnnotation("FutureTask") {
					panic(fmt.Sprintf("core: @Depend on %s without @Task or @FutureTask", jp.FQN()))
				}
			case TaskGroup:
				out = append(out, named(newTaskGroup(weaver.Exact(jp)), "@TaskGroup", jp))
			case TaskLoop:
				asp := newTaskLoop(weaver.Exact(jp)).Grainsize(a.Grainsize).Collapse(a.Collapse)
				out = append(out, named(asp, "@TaskLoop", jp))
			case TaskWait:
				asp := newTaskWait(weaver.Exact(jp))
				if a.After {
					asp.After()
				}
				out = append(out, named(asp, "@TaskWait", jp))
			case FutureTask:
				asp := newFutureTask(weaver.Exact(jp))
				kind := "@FutureTask"
				if d, ok := dependOf(jp); ok {
					asp.Depend(d)
					kind = "@FutureTask+@Depend"
				}
				out = append(out, named(asp, kind, jp))
			case Ordered:
				out = append(out, named(newOrdered(weaver.Exact(jp)), "@Ordered", jp))
			case Critical:
				asp := newCritical(weaver.Exact(jp))
				if a.ID != "" {
					asp.ID(a.ID)
				}
				if a.PerKey > 0 {
					asp.PerKey(a.PerKey)
				}
				out = append(out, named(asp, "@Critical", jp))
			case BarrierBefore:
				out = append(out, named(newBarrier(weaver.Exact(jp), true, false), "@BarrierBefore", jp))
			case BarrierAfter:
				out = append(out, named(newBarrier(weaver.Exact(jp), false, true), "@BarrierAfter", jp))
			case Single:
				out = append(out, named(newSingle(weaver.Exact(jp)), "@Single", jp))
			case Master:
				out = append(out, named(newMaster(weaver.Exact(jp)), "@Master", jp))
			case Reduce:
				t := tls[a.ID]
				if t == nil {
					panic(fmt.Sprintf("core: @Reduce(id=%q) on %s has no matching @ThreadLocalField", a.ID, jp.FQN()))
				}
				out = append(out, named(newReduce(weaver.Exact(jp), t, a.Merge), "@Reduce", jp))
			case ThreadLocalField, Reader, Writer:
				// handled in the first pass
			default:
				// Unknown annotations are inert metadata, exactly like
				// unprocessed Java annotations.
			}
		}
	}
	return out
}

// dependOf returns the @Depend annotation attached to jp, if any.
func dependOf(jp *weaver.Joinpoint) (Depend, bool) {
	for _, an := range jp.Annotations() {
		if d, ok := an.(Depend); ok {
			return d, true
		}
	}
	return Depend{}, false
}

func named[A interface {
	weaver.Aspect
	Named(string) A
}](a A, kind string, jp *weaver.Joinpoint) weaver.Aspect {
	return a.Named(kind + "(" + jp.FQN() + ")")
}
