package core

import (
	"sync"
	"sync/atomic"
	"testing"

	"aomplib/internal/rt"
	"aomplib/internal/sched"
	"aomplib/internal/weaver"
)

func TestParallelRegionTeamAndJoin(t *testing.T) {
	p := weaver.NewProgram("t")
	var ids sync.Map
	var count atomic.Int32
	region := p.Class("App").Proc("region", func() {
		count.Add(1)
		ids.Store(ThreadID(), true)
		if NumThreads() != 3 {
			t.Errorf("NumThreads = %d, want 3", NumThreads())
		}
		if !InParallel() {
			t.Error("InParallel false inside region")
		}
	})
	p.Use(ParallelRegion("call(* App.region(..))").Threads(3))
	p.MustWeave()
	region()
	if count.Load() != 3 {
		t.Fatalf("region body ran %d times, want 3", count.Load())
	}
	for id := 0; id < 3; id++ {
		if _, ok := ids.Load(id); !ok {
			t.Errorf("missing thread id %d", id)
		}
	}
	if InParallel() {
		t.Error("InParallel true after region")
	}
}

func TestParallelRegionDefaultAndOverride(t *testing.T) {
	p := weaver.NewProgram("t")
	var count atomic.Int32
	region := p.Class("App").Proc("region", func() { count.Add(1) })
	p.Use(ParallelRegion("call(* App.region(..))"))
	p.MustWeave()

	prev := SetDefaultThreads(2)
	defer SetDefaultThreads(prev)
	region()
	if count.Load() != 2 {
		t.Fatalf("default threads not honoured: ran %d", count.Load())
	}

	count.Store(0)
	SetDefaultThreads(0)
	region()
	if int(count.Load()) != rt.DefaultThreads() {
		t.Fatalf("GOMAXPROCS default not honoured: %d", count.Load())
	}
}

func TestParallelRegionThreadsFunc(t *testing.T) {
	p := weaver.NewProgram("t")
	var count atomic.Int32
	region := p.Class("App").Proc("region", func() { count.Add(1) })
	n := 4
	p.Use(ParallelRegion("call(* App.region(..))").ThreadsFunc(func() int { return n }))
	p.MustWeave()
	region()
	if count.Load() != 4 {
		t.Fatalf("ThreadsFunc not honoured: %d", count.Load())
	}
}

// forCoverage runs a region+for with the given schedule and verifies
// every iteration executes exactly once.
func forCoverage(t *testing.T, cfg func(*ForAspect) *ForAspect, lo, hi, step, threads int) {
	t.Helper()
	p := weaver.NewProgram("t")
	n := sched.Space{Lo: lo, Hi: hi, Step: step}.Count()
	hits := make([]atomic.Int32, max(n, 1))
	idx := 0
	loop := p.Class("App").ForProc("loop", func(l, h, s int) {
		for i := l; (s > 0 && i < h) || (s < 0 && i > h); i += s {
			hits[(i-lo)/step].Add(1)
		}
	})
	_ = idx
	region := p.Class("App").Proc("region", func() { loop(lo, hi, step) })
	p.Use(ParallelRegion("call(* App.region(..))").Threads(threads))
	p.Use(cfg(ForShare("call(* App.loop(..))")))
	p.MustWeave()
	region()
	for i := 0; i < n; i++ {
		if got := hits[i].Load(); got != 1 {
			t.Fatalf("iteration %d ran %d times", lo+i*step, got)
		}
	}
}

func TestForStaticBlockCoverage(t *testing.T) {
	forCoverage(t, func(a *ForAspect) *ForAspect { return a.Schedule(sched.StaticBlock) }, 0, 101, 1, 4)
	forCoverage(t, func(a *ForAspect) *ForAspect { return a.Schedule(sched.StaticBlock) }, 3, 50, 3, 3)
}

func TestForStaticCyclicCoverage(t *testing.T) {
	forCoverage(t, func(a *ForAspect) *ForAspect { return a.Schedule(sched.StaticCyclic) }, 0, 101, 1, 4)
	forCoverage(t, func(a *ForAspect) *ForAspect { return a.Schedule(sched.StaticCyclic) }, 5, 47, 2, 5)
}

func TestForDynamicCoverage(t *testing.T) {
	forCoverage(t, func(a *ForAspect) *ForAspect { return a.Schedule(sched.Dynamic).Chunk(3) }, 0, 97, 1, 4)
}

func TestForGuidedCoverage(t *testing.T) {
	forCoverage(t, func(a *ForAspect) *ForAspect { return a.Schedule(sched.Guided) }, 0, 512, 1, 4)
}

func TestForCustomScheduleCoverage(t *testing.T) {
	// Case-specific schedule: reversed block assignment.
	custom := func(id, nthreads int, sp sched.Space) []sched.Space {
		return []sched.Space{sched.Block(sp, nthreads, nthreads-1-id)}
	}
	forCoverage(t, func(a *ForAspect) *ForAspect { return a.CustomSchedule(custom) }, 0, 64, 1, 4)
}

func TestForOutsideRegionRunsFullRange(t *testing.T) {
	p := weaver.NewProgram("t")
	var n int
	loop := p.Class("App").ForProc("loop", func(l, h, s int) {
		for i := l; i < h; i += s {
			n++
		}
	})
	p.Use(ForShare("call(* App.loop(..))").Schedule(sched.StaticCyclic))
	p.MustWeave()
	loop(0, 10, 1) // sequential call: aspects must not split anything
	if n != 10 {
		t.Fatalf("sequential for ran %d iterations, want 10", n)
	}
}

func TestForRequiresForMethod(t *testing.T) {
	p := weaver.NewProgram("t")
	p.Class("App").Proc("notAForMethod", func() {})
	p.Use(ForShare("call(* App.notAForMethod(..))"))
	if err := p.Weave(); err == nil {
		t.Fatal("@For on a plain method must fail weaving")
	}
}

func TestLinpackStyleComposition(t *testing.T) {
	// Reproduces the structure of paper Fig. 7: a parallel dgefa whose
	// body repeatedly calls a shared-for + two master methods with
	// barriers — and verifies the result matches sequential execution.
	p := weaver.NewProgram("linpack-ish")
	const n, iters = 64, 20
	data := make([]int64, n)
	var masterCount atomic.Int32
	cls := p.Class("Linpack")
	reduceAll := cls.ForProc("reduceAllCols", func(lo, hi, step int) {
		for i := lo; i < hi; i += step {
			atomic.AddInt64(&data[i], 1)
		}
	})
	interchange := cls.Proc("interchange", func() { masterCount.Add(1) })
	dgefa := cls.Proc("dgefa", func() {
		for k := 0; k < iters; k++ {
			interchange()
			reduceAll(0, n, 1)
		}
	})

	p.Use(ParallelRegion("call(* Linpack.dgefa(..))").Threads(4))
	p.Use(ForShare("call(* Linpack.reduceAllCols(..))"))
	p.Use(MasterSection("call(* Linpack.interchange(..))"))
	p.Use(BarrierBeforePoint("call(* Linpack.interchange(..))"))
	p.Use(BarrierAfterPoint("call(* Linpack.interchange(..)) || call(* Linpack.reduceAllCols(..))"))
	p.MustWeave()

	dgefa()
	for i, v := range data {
		if v != iters {
			t.Fatalf("data[%d] = %d, want %d", i, v, iters)
		}
	}
	if masterCount.Load() != iters {
		t.Fatalf("master ran %d times, want %d", masterCount.Load(), iters)
	}

	// Sequential semantics: unweave, rerun, same per-call behaviour.
	p.Unweave()
	for i := range data {
		data[i] = 0
	}
	masterCount.Store(0)
	dgefa()
	for i, v := range data {
		if v != iters {
			t.Fatalf("sequential data[%d] = %d", i, v)
		}
	}
}

func TestCriticalMutualExclusion(t *testing.T) {
	p := weaver.NewProgram("t")
	counter := 0 // protected only by @Critical
	crit := p.Class("App").Proc("crit", func() { counter++ })
	region := p.Class("App").Proc("region", func() {
		for i := 0; i < 500; i++ {
			crit()
		}
	})
	p.Use(ParallelRegion("call(* App.region(..))").Threads(4))
	p.Use(CriticalSection("call(* App.crit(..))"))
	p.MustWeave()
	region()
	if counter != 4*500 {
		t.Fatalf("counter = %d, want %d (race through critical)", counter, 4*500)
	}
}

func TestCriticalNamedSharedAcrossMethods(t *testing.T) {
	p := weaver.NewProgram("t")
	counter := 0
	a := p.Class("A").Proc("inc1", func() { counter++ })
	b := p.Class("B").Proc("inc2", func() { counter++ })
	region := p.Class("App").Proc("region", func() {
		for i := 0; i < 300; i++ {
			a()
			b()
		}
	})
	p.Use(ParallelRegion("call(* App.region(..))").Threads(4))
	// Two type-unrelated methods sharing one named lock.
	p.Use(CriticalSection("call(* A.inc1(..))").ID("shared"))
	p.Use(CriticalSection("call(* B.inc2(..))").ID("shared"))
	p.MustWeave()
	region()
	if counter != 4*600 {
		t.Fatalf("counter = %d, want %d", counter, 4*600)
	}
}

func TestCriticalPerKeyAllowsDisjointParallelism(t *testing.T) {
	p := weaver.NewProgram("t")
	counters := make([]int, 8)
	upd := p.Class("App").KeyedProc("update", func(k int) { counters[k]++ })
	region := p.Class("App").Proc("region", func() {
		for i := 0; i < 400; i++ {
			upd(i % 8)
		}
	})
	p.Use(ParallelRegion("call(* App.region(..))").Threads(4))
	p.Use(CriticalSection("call(* App.update(..))").PerKey(8))
	p.MustWeave()
	region()
	for k, c := range counters {
		if c != 4*400/8 {
			t.Fatalf("counters[%d] = %d, want %d", k, c, 4*400/8)
		}
	}
}

func TestCriticalPerKeyRequiresKeyedMethod(t *testing.T) {
	p := weaver.NewProgram("t")
	p.Class("App").Proc("plain", func() {})
	p.Use(CriticalSection("call(* App.plain(..))").PerKey(4))
	if err := p.Weave(); err == nil {
		t.Fatal("per-key critical on plain method must fail weaving")
	}
}

func TestMasterBroadcastsValue(t *testing.T) {
	p := weaver.NewProgram("t")
	var execs atomic.Int32
	val := p.Class("App").ValueProc("pivot", func() any {
		execs.Add(1)
		return 123
	})
	var wrong atomic.Int32
	region := p.Class("App").Proc("region", func() {
		if v := val(); v != 123 {
			wrong.Add(1)
		}
	})
	p.Use(ParallelRegion("call(* App.region(..))").Threads(4))
	p.Use(MasterSection("call(* App.pivot(..))"))
	p.MustWeave()
	region()
	if execs.Load() != 1 {
		t.Fatalf("master value method ran %d times, want 1", execs.Load())
	}
	if wrong.Load() != 0 {
		t.Fatalf("%d workers saw a wrong broadcast value", wrong.Load())
	}
}

func TestSingleRunsOncePerEncounter(t *testing.T) {
	p := weaver.NewProgram("t")
	var execs atomic.Int32
	sgl := p.Class("App").Proc("init", func() { execs.Add(1) })
	region := p.Class("App").Proc("region", func() {
		for i := 0; i < 7; i++ {
			sgl()
		}
	})
	p.Use(ParallelRegion("call(* App.region(..))").Threads(4))
	p.Use(SingleSection("call(* App.init(..))"))
	p.MustWeave()
	region()
	if execs.Load() != 7 {
		t.Fatalf("single ran %d times, want 7 (once per encounter)", execs.Load())
	}
}

func TestOrderedWithinDynamicFor(t *testing.T) {
	p := weaver.NewProgram("t")
	var mu sync.Mutex
	var order []int
	emit := p.Class("App").KeyedProc("emit", func(i int) {
		mu.Lock()
		order = append(order, i)
		mu.Unlock()
	})
	loop := p.Class("App").ForProc("loop", func(lo, hi, step int) {
		for i := lo; i < hi; i += step {
			emit(i)
		}
	})
	region := p.Class("App").Proc("region", func() { loop(0, 40, 1) })
	p.Use(ParallelRegion("call(* App.region(..))").Threads(4))
	p.Use(ForShare("call(* App.loop(..))").Schedule(sched.Dynamic))
	p.Use(OrderedSection("call(* App.emit(..))"))
	p.MustWeave()
	region()
	if len(order) != 40 {
		t.Fatalf("ordered emitted %d values", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d — ordered constraint violated", i, v)
		}
	}
}

func TestTaskAndTaskWait(t *testing.T) {
	p := weaver.NewProgram("t")
	var done atomic.Int32
	work := p.Class("App").Proc("work", func() { done.Add(1) })
	var seen atomic.Int32
	join := p.Class("App").Proc("join", func() { seen.Store(done.Load()) })
	p.Use(TaskSpawn("call(* App.work(..))"))
	p.Use(TaskWaitPoint("call(* App.join(..))"))
	p.MustWeave()
	for i := 0; i < 8; i++ {
		work() // spawns, returns immediately
	}
	join()
	if seen.Load() != 8 {
		t.Fatalf("taskwait saw %d completed tasks, want 8", seen.Load())
	}
}

func TestFutureTask(t *testing.T) {
	p := weaver.NewProgram("t")
	compute := p.Class("App").FutureProc("compute", func() any { return 6 * 7 })
	p.Use(FutureTaskSpawn("call(* App.compute(..))"))
	p.MustWeave()
	f := compute()
	if got := f.Get(); got != 42 {
		t.Fatalf("future = %v, want 42", got)
	}
	// Unplugged: synchronous resolution, same observable value.
	p.Unweave()
	if got := compute().Get(); got != 42 {
		t.Fatalf("sequential future = %v", got)
	}
}

func TestFutureTaskRequiresValueMethod(t *testing.T) {
	p := weaver.NewProgram("t")
	p.Class("App").Proc("void", func() {})
	p.Use(FutureTaskSpawn("call(* App.void(..))"))
	if err := p.Weave(); err == nil {
		t.Fatal("@FutureTask on void method must fail weaving")
	}
}

func TestReadersWriter(t *testing.T) {
	p := weaver.NewProgram("t")
	value := 0
	var readers atomic.Int32
	read := p.Class("App").ValueProc("read", func() any {
		readers.Add(1)
		v := value
		readers.Add(-1)
		return v
	})
	write := p.Class("App").Proc("write", func() {
		if readers.Load() != 0 {
			t.Error("writer overlapped readers")
		}
		value++
	})
	region := p.Class("App").Proc("region", func() {
		for i := 0; i < 200; i++ {
			if ThreadID() == 0 {
				write()
			} else {
				read()
			}
		}
	})
	p.Use(ParallelRegion("call(* App.region(..))").Threads(4))
	p.Use(ReadersWriter().Reader("call(* App.read(..))").Writer("call(* App.write(..))"))
	p.MustWeave()
	region()
	if value != 200 {
		t.Fatalf("value = %d, want 200", value)
	}
}

func TestThreadLocalAndReduce(t *testing.T) {
	p := weaver.NewProgram("t")
	var global int64 // the "object field"
	tl := NewThreadLocal("call(* App.acc(..))", "sum").
		InitFresh(func() any { return new(int64) })
	acc := p.Class("App").ValueProc("acc", func() any { return &global })
	collect := p.Class("App").Proc("collect", func() {})
	loop := p.Class("App").ForProc("loop", func(lo, hi, step int) {
		for i := lo; i < hi; i += step {
			*(acc().(*int64)) += int64(i) // races unless thread-local
		}
	})
	region := p.Class("App").Proc("region", func() {
		loop(0, 1000, 1)
		collect()
	})
	p.Use(ParallelRegion("call(* App.region(..))").Threads(4))
	p.Use(ForShare("call(* App.loop(..))"))
	p.Use(tl)
	p.Use(ReducePoint("call(* App.collect(..))", tl, func(local any) {
		global += *(local.(*int64))
	}))
	p.MustWeave()
	region()
	if want := int64(999 * 1000 / 2); global != want {
		t.Fatalf("reduced global = %d, want %d", global, want)
	}
	// Sequential semantics: unplugged, accumulate into global directly.
	p.Unweave()
	global = 0
	region()
	if want := int64(999 * 1000 / 2); global != want {
		t.Fatalf("sequential global = %d, want %d", global, want)
	}
}

func TestThreadLocalInitFromGlobal(t *testing.T) {
	p := weaver.NewProgram("t")
	global := 100
	tl := NewThreadLocal("call(* App.field(..))", "f").
		InitFromGlobal(func() any { v := global; return &v })
	field := p.Class("App").ValueProc("field", func() any { return &global })
	var bad atomic.Int32
	region := p.Class("App").Proc("region", func() {
		v := field().(*int)
		if *v != 100 {
			bad.Add(1)
		}
		*v += ThreadID() // private: no interference
		if *v != 100+ThreadID() {
			bad.Add(1)
		}
	})
	p.Use(ParallelRegion("call(* App.region(..))").Threads(4))
	p.Use(tl)
	p.MustWeave()
	region()
	if bad.Load() != 0 {
		t.Fatalf("%d thread-local invariant violations", bad.Load())
	}
	if global != 100 {
		t.Fatalf("global clobbered: %d", global)
	}
}

func TestAnnotationStyleLinpack(t *testing.T) {
	// Figure 8: the same composition expressed purely with annotations.
	p := weaver.NewProgram("linpack-anno")
	const n, iters = 32, 10
	data := make([]int64, n)
	cls := p.Class("Linpack")
	reduceAll := cls.ForProc("reduceAllCols", func(lo, hi, step int) {
		for i := lo; i < hi; i += step {
			atomic.AddInt64(&data[i], 1)
		}
	})
	interchange := cls.Proc("interchange", func() {})
	dgefa := cls.Proc("dgefa", func() {
		for k := 0; k < iters; k++ {
			interchange()
			reduceAll(0, n, 1)
		}
	})
	p.MustAnnotate("Linpack.dgefa", Parallel{Threads: 4})
	p.MustAnnotate("Linpack.reduceAllCols", For{}, BarrierAfter{})
	p.MustAnnotate("Linpack.interchange", Master{}, BarrierBefore{}, BarrierAfter{})
	p.Use(AnnotationAspects(p)...)
	p.MustWeave()
	dgefa()
	for i, v := range data {
		if v != iters {
			t.Fatalf("data[%d] = %d, want %d", i, v, iters)
		}
	}
}

func TestAnnotationThreadLocalReduce(t *testing.T) {
	p := weaver.NewProgram("t")
	var global int64
	acc := p.Class("App").ValueProc("acc", func() any { return &global })
	collect := p.Class("App").Proc("collect", func() {})
	region := p.Class("App").Proc("region", func() {
		sub := ThreadID() + 1
		*(acc().(*int64)) += int64(sub)
		collect()
	})
	p.MustAnnotate("App.region", Parallel{Threads: 4})
	p.MustAnnotate("App.acc", ThreadLocalField{ID: "sum", Fresh: func() any { return new(int64) }})
	p.MustAnnotate("App.collect", Reduce{ID: "sum", Merge: func(local any) {
		global += *(local.(*int64))
	}})
	p.Use(AnnotationAspects(p)...)
	p.MustWeave()
	region()
	if global != 1+2+3+4 {
		t.Fatalf("global = %d, want 10", global)
	}
}

func TestAnnotationReduceWithoutFieldPanics(t *testing.T) {
	p := weaver.NewProgram("t")
	p.Class("App").Proc("collect", func() {})
	p.MustAnnotate("App.collect", Reduce{ID: "nope", Merge: func(any) {}})
	defer func() {
		if recover() == nil {
			t.Fatal("dangling @Reduce id did not panic")
		}
	}()
	AnnotationAspects(p)
}

func TestNestedParallelRegions(t *testing.T) {
	p := weaver.NewProgram("t")
	var innerRuns atomic.Int32
	inner := p.Class("App").Proc("inner", func() { innerRuns.Add(1) })
	outer := p.Class("App").Proc("outer", func() { inner() })
	p.Use(ParallelRegion("call(* App.outer(..))").Named("outerRegion").Threads(2))
	p.Use(ParallelRegion("call(* App.inner(..))").Named("innerRegion").Threads(3))
	p.MustWeave()
	outer()
	if innerRuns.Load() != 6 {
		t.Fatalf("nested regions ran inner %d times, want 6", innerRuns.Load())
	}
}

func TestCombinedConstructCompose(t *testing.T) {
	// OpenMP's "parallel for" combined construct: region + for on the
	// same method, composed as one aspect module.
	p := weaver.NewProgram("t")
	const n = 100
	hits := make([]atomic.Int32, n)
	loop := p.Class("App").ForProc("loop", func(lo, hi, step int) {
		for i := lo; i < hi; i += step {
			hits[i].Add(1)
		}
	})
	parallelFor := Compose("ParallelFor",
		ParallelRegion("call(* App.loop(..))").Threads(4),
		ForShare("call(* App.loop(..))"),
	)
	p.Use(parallelFor)
	p.MustWeave()
	loop(0, n, 1)
	for i := range hits {
		if hits[i].Load() != 1 {
			t.Fatalf("iteration %d ran %d times", i, hits[i].Load())
		}
	}
}

func TestAroundCustomAspect(t *testing.T) {
	// Case-specific mechanism: conditionally execute a method call
	// according to method parameters (paper §III.C last paragraph).
	p := weaver.NewProgram("t")
	var ran []int
	work := p.Class("App").KeyedProc("work", func(k int) { ran = append(ran, k) })
	skipOdd := Around("SkipOdd", "call(* App.work(..))", 55, false,
		func(c *weaver.Call, proceed func(*weaver.Call)) {
			if c.Key%2 == 0 {
				proceed(c)
			}
		})
	p.Use(skipOdd)
	p.MustWeave()
	for i := 0; i < 6; i++ {
		work(i)
	}
	if len(ran) != 3 || ran[0] != 0 || ran[1] != 2 || ran[2] != 4 {
		t.Fatalf("conditional execution ran %v", ran)
	}
}

func TestWeaveReportNamesAspects(t *testing.T) {
	p := weaver.NewProgram("t")
	p.Class("App").ForProc("loop", func(lo, hi, step int) {})
	p.MustAnnotate("App.loop", For{Schedule: sched.StaticCyclic})
	p.Use(AnnotationAspects(p)...)
	p.MustWeave()
	rep := p.Report()
	if len(rep) != 1 || len(rep[0].Advice) != 1 {
		t.Fatalf("unexpected report %+v", rep)
	}
	if rep[0].Advice[0] != "@For(App.loop)/for(staticCyclic)" {
		t.Fatalf("advice label = %q", rep[0].Advice[0])
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
