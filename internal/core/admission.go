package core

import (
	"time"

	"aomplib/internal/rt"
)

// Multi-tenant admission facade: fair arbitration of the hot-team pool for
// server workloads — thousands of request goroutines each entering small
// parallel regions. The mechanism lives in internal/rt (admission.go); this
// layer only re-exports it so the public package and woven programs share
// one controller.

// SetAdmissionControl enables or disables multi-tenant admission over the
// hot-team pool (disabled by default), returning the previous setting.
// Enabled, every top-level parallel region entry first obtains a lease
// slot: at most AdmitMaxTeams regions hold teams concurrently, waiters
// queue FIFO (starvation-free across tenants), per-tenant quotas cap
// monopolization, and refused entries degrade to serialized execution
// instead of failing. Disabling grants every queued waiter.
func SetAdmissionControl(on bool) bool { return rt.SetAdmissionControl(on) }

// AdmissionEnabled reports whether top-level region entries pass through
// admission control.
func AdmissionEnabled() bool { return rt.AdmissionEnabled() }

// SetAdmitPolicy sets the admission backpressure policy — AdmitBlock,
// AdmitTimeout or AdmitReject — and the queue-wait timeout (meaningful for
// AdmitTimeout; pass 0 to keep the current one). Returns the previous pair.
func SetAdmitPolicy(p rt.AdmitPolicy, timeout time.Duration) (rt.AdmitPolicy, time.Duration) {
	return rt.SetAdmitPolicy(p, timeout)
}

// SetAdmitMaxTeams bounds how many top-level regions may hold teams
// concurrently (0 restores the default, which tracks the hot-team pool
// capacity in default-sized teams). Returns the previous explicit bound.
func SetAdmitMaxTeams(n int) int { return rt.SetAdmitMaxTeams(n) }

// SetAdmitQueueBound bounds the admission wait queue (0 restores
// rt.DefaultAdmitQueueBound); overflow degrades to serialized execution
// instead of queueing. Returns the previous explicit bound.
func SetAdmitQueueBound(n int) int { return rt.SetAdmitQueueBound(n) }

// SetTenantQuota caps how many lease slots the named tenant may hold
// concurrently (0 removes the cap), returning the previous quota.
func SetTenantQuota(name string, maxConcurrent int) int {
	return rt.SetTenantQuota(name, maxConcurrent)
}

// EnterTenant binds the calling goroutine to the named tenant for
// admission accounting and returns the token; call Exit when the request
// scope ends. Region entries in the token's scope are arbitrated against
// the tenant's quota and record their outcomes (admitted, queued,
// rejected, degraded) on the token.
func EnterTenant(name string) *rt.TenantToken { return rt.EnterTenant(name) }

// ReadAdmissionStats snapshots the admission controller: policy and
// bounds, live queue depth and held slots, cumulative grant/reject/wait
// counters, and the per-tenant breakdown.
func ReadAdmissionStats() rt.AdmissionStats { return rt.ReadAdmissionStats() }
