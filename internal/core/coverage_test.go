package core

import (
	"strings"
	"sync/atomic"
	"testing"

	"aomplib/internal/sched"
	"aomplib/internal/weaver"
)

// All constructs must degrade to plain sequential execution when invoked
// outside a parallel region — the "sequential semantics" guarantee.
func TestConstructsOutsideRegionAreSequential(t *testing.T) {
	p := weaver.NewProgram("t")
	cls := p.Class("A")
	var log []string
	add := func(s string) { log = append(log, s) }

	bar := cls.Proc("bar", func() { add("bar") })
	mst := cls.Proc("mst", func() { add("mst") })
	sgl := cls.Proc("sgl", func() { add("sgl") })
	ord := cls.KeyedProc("ord", func(k int) { add("ord") })
	crt := cls.Proc("crt", func() { add("crt") })

	p.Use(BarrierAroundPoint("call(* A.bar(..))"))
	p.Use(MasterSection("call(* A.mst(..))"))
	p.Use(SingleSection("call(* A.sgl(..))"))
	p.Use(OrderedSection("call(* A.ord(..))"))
	p.Use(CriticalSection("call(* A.crt(..))"))
	p.MustWeave()

	bar()
	mst()
	sgl()
	ord(3)
	crt()
	want := "bar mst sgl ord crt"
	if got := strings.Join(log, " "); got != want {
		t.Fatalf("sequential execution = %q, want %q", got, want)
	}
}

func TestValueSingleOutsideRegion(t *testing.T) {
	p := weaver.NewProgram("t")
	v := p.Class("A").ValueProc("v", func() any { return 5 })
	p.Use(SingleSection("call(* A.v(..))"))
	p.MustWeave()
	if got := v(); got != 5 {
		t.Fatalf("sequential single value = %v", got)
	}
}

func TestAnnotationSingleTaskOrderedCritical(t *testing.T) {
	p := weaver.NewProgram("t")
	cls := p.Class("A")
	var singles, tasks atomic.Int32
	sgl := cls.Proc("sgl", func() { singles.Add(1) })
	wrk := cls.Proc("wrk", func() { tasks.Add(1) })
	join := cls.Proc("join", func() {})
	counter := 0
	crt := cls.Proc("crt", func() { counter++ })
	region := cls.Proc("region", func() {
		sgl()
		for i := 0; i < 50; i++ {
			crt()
		}
	})
	p.MustAnnotate("A.region", Parallel{Threads: 4})
	p.MustAnnotate("A.sgl", Single{})
	p.MustAnnotate("A.crt", Critical{ID: "c"})
	p.MustAnnotate("A.wrk", Task{})
	p.MustAnnotate("A.join", TaskWait{})
	p.Use(AnnotationAspects(p)...)
	p.MustWeave()

	region()
	if singles.Load() != 1 {
		t.Fatalf("@Single ran %d times", singles.Load())
	}
	if counter != 4*50 {
		t.Fatalf("@Critical counter = %d", counter)
	}
	for i := 0; i < 5; i++ {
		wrk()
	}
	join()
	if tasks.Load() != 5 {
		t.Fatalf("@Task/@TaskWait saw %d", tasks.Load())
	}
}

func TestAnnotationFutureTaskAndOrdered(t *testing.T) {
	p := weaver.NewProgram("t")
	cls := p.Class("A")
	fut := cls.FutureProc("fut", func() any { return "done" })
	var order []int
	emit := cls.KeyedProc("emit", func(i int) { order = append(order, i) })
	loop := cls.ForProc("loop", func(lo, hi, step int) {
		for i := lo; i < hi; i += step {
			emit(i)
		}
	})
	region := cls.Proc("region", func() { loop(0, 20, 1) })

	p.MustAnnotate("A.fut", FutureTask{})
	p.MustAnnotate("A.emit", Ordered{})
	p.MustAnnotate("A.loop", For{Schedule: sched.Dynamic})
	p.MustAnnotate("A.region", Parallel{Threads: 3})
	p.Use(AnnotationAspects(p)...)
	p.MustWeave()

	if got := fut().Get(); got != "done" {
		t.Fatalf("@FutureTask = %v", got)
	}
	region()
	for i, v := range order {
		if v != i {
			t.Fatalf("@Ordered broke sequence at %d: %v", i, order)
		}
	}
}

func TestAnnotationReadersWriterPairing(t *testing.T) {
	p := weaver.NewProgram("t")
	cls := p.Class("A")
	value := 0
	var readers atomic.Int32
	read := cls.Proc("read", func() {
		readers.Add(1)
		_ = value
		readers.Add(-1)
	})
	write := cls.Proc("write", func() {
		if readers.Load() != 0 {
			t.Error("writer overlapped readers")
		}
		value++
	})
	region := cls.Proc("region", func() {
		for i := 0; i < 100; i++ {
			if ThreadID()%2 == 0 {
				write()
			} else {
				read()
			}
		}
	})
	p.MustAnnotate("A.region", Parallel{Threads: 4})
	p.MustAnnotate("A.read", Reader{ID: "rw"})
	p.MustAnnotate("A.write", Writer{ID: "rw"})
	p.Use(AnnotationAspects(p)...)
	p.MustWeave()
	region()
	if value != 200 {
		t.Fatalf("value = %d, want 200", value)
	}
}

func TestAnnotationCustomSchedule(t *testing.T) {
	p := weaver.NewProgram("t")
	cls := p.Class("A")
	const n = 60
	hits := make([]atomic.Int32, n)
	loop := cls.ForProc("loop", func(lo, hi, step int) {
		for i := lo; i < hi; i += step {
			hits[i].Add(1)
		}
	})
	region := cls.Proc("region", func() { loop(0, n, 1) })
	reversed := func(id, nthreads int, sp sched.Space) []sched.Space {
		return []sched.Space{sched.Block(sp, nthreads, nthreads-1-id)}
	}
	p.MustAnnotate("A.region", Parallel{Threads: 4})
	p.MustAnnotate("A.loop", For{Schedule: sched.Custom, Custom: reversed})
	p.Use(AnnotationAspects(p)...)
	p.MustWeave()
	region()
	for i := range hits {
		if hits[i].Load() != 1 {
			t.Fatalf("iteration %d ran %d times", i, hits[i].Load())
		}
	}
}

func TestSharedLockCritical(t *testing.T) {
	p := weaver.NewProgram("t")
	cls := p.Class("A")
	counter := 0
	inc1 := cls.Proc("inc1", func() { counter++ })
	inc2 := cls.Proc("inc2", func() { counter++ })
	region := cls.Proc("region", func() {
		for i := 0; i < 200; i++ {
			inc1()
			inc2()
		}
	})
	p.Use(ParallelRegion("call(* A.region(..))").Threads(4))
	// One aspect instance, one shared lock across both methods.
	p.Use(CriticalSection("call(* A.inc1(..)) || call(* A.inc2(..))").SharedLock())
	p.MustWeave()
	region()
	if counter != 4*400 {
		t.Fatalf("counter = %d, want %d", counter, 4*400)
	}
}

func TestForWaitForcesBarrierForStatic(t *testing.T) {
	// With .Wait(), no explicit BarrierAfter is needed: the phases of a
	// two-step pipeline stay ordered.
	p := weaver.NewProgram("t")
	cls := p.Class("A")
	const n = 400
	src := make([]int64, n)
	dst := make([]int64, n)
	fill := cls.ForProc("fill", func(lo, hi, step int) {
		for i := lo; i < hi; i += step {
			atomic.StoreInt64(&src[i], int64(i))
		}
	})
	copyRev := cls.ForProc("copyRev", func(lo, hi, step int) {
		for i := lo; i < hi; i += step {
			// Reads an element another worker wrote: needs the barrier.
			atomic.StoreInt64(&dst[i], atomic.LoadInt64(&src[n-1-i]))
		}
	})
	region := cls.Proc("region", func() {
		fill(0, n, 1)
		copyRev(0, n, 1)
	})
	p.Use(ParallelRegion("call(* A.region(..))").Threads(4))
	p.Use(ForShare("call(* A.fill(..)) || call(* A.copyRev(..))").Wait())
	p.MustWeave()
	region()
	for i := range dst {
		if dst[i] != int64(n-1-i) {
			t.Fatalf("dst[%d] = %d, want %d", i, dst[i], n-1-i)
		}
	}
}

func TestDynamicNoWaitSkipsBarrier(t *testing.T) {
	// NoWait on a dynamic for must not deadlock when only some workers
	// get iterations; correctness is simply full coverage.
	p := weaver.NewProgram("t")
	cls := p.Class("A")
	var count atomic.Int32
	loop := cls.ForProc("loop", func(lo, hi, step int) {
		for i := lo; i < hi; i += step {
			count.Add(1)
		}
	})
	sync := cls.Proc("sync", func() {})
	region := cls.Proc("region", func() {
		loop(0, 3, 1) // fewer iterations than workers
		sync()
	})
	p.Use(ParallelRegion("call(* A.region(..))").Threads(4))
	p.Use(ForShare("call(* A.loop(..))").Schedule(sched.Dynamic).NoWait())
	p.Use(BarrierAfterPoint("call(* A.sync(..))"))
	p.MustWeave()
	region()
	if count.Load() != 3 {
		t.Fatalf("dynamic nowait ran %d iterations", count.Load())
	}
}

func TestPanicInsideWovenRegionPropagates(t *testing.T) {
	p := weaver.NewProgram("t")
	cls := p.Class("A")
	work := cls.Proc("work", func() {
		if ThreadID() == 1 {
			panic("worker failure")
		}
	})
	region := cls.Proc("region", func() { work() })
	p.Use(ParallelRegion("call(* A.region(..))").Threads(3))
	p.MustWeave()
	defer func() {
		if r := recover(); r != "worker failure" {
			t.Fatalf("recovered %v", r)
		}
	}()
	region()
}

func TestThreadLocalValuesSnapshot(t *testing.T) {
	p := weaver.NewProgram("t")
	cls := p.Class("A")
	tl := NewThreadLocal("call(* A.acc(..))", "x").
		InitFresh(func() any { return new(int) })
	acc := cls.ValueProc("acc", func() any { return nil })
	probe := cls.Proc("probe", func() {})
	var snapshot atomic.Int32
	region := cls.Proc("region", func() {
		*(acc().(*int)) = ThreadID()
		probe()
	})
	p.Use(ParallelRegion("call(* A.region(..))").Threads(3))
	p.Use(tl)
	p.Use(BarrierBeforePoint("call(* A.probe(..))"))
	p.Use(Around("snap", "call(* A.probe(..))", 50, true,
		func(c *weaver.Call, proceed func(*weaver.Call)) {
			if c.Worker != nil && c.Worker.ID == 0 {
				snapshot.Store(int32(len(tl.Values(c.Worker.Team))))
			}
			proceed(c)
		}))
	p.MustWeave()
	region()
	if snapshot.Load() != 3 {
		t.Fatalf("Values saw %d thread-local copies, want 3", snapshot.Load())
	}
}

func TestUnknownAnnotationIsInert(t *testing.T) {
	p := weaver.NewProgram("t")
	ran := false
	m := p.Class("A").Proc("m", func() { ran = true })
	p.MustAnnotate("A.m", customAnno{})
	p.Use(AnnotationAspects(p)...)
	p.MustWeave()
	m()
	if !ran {
		t.Fatal("method with unknown annotation did not run")
	}
	if rep := p.Report(); len(rep[0].Advice) != 0 {
		t.Fatalf("unknown annotation produced advice: %v", rep[0].Advice)
	}
}

type customAnno struct{}

func (customAnno) AnnotationName() string { return "Custom" }

func TestDuplicateThreadLocalIDPanics(t *testing.T) {
	p := weaver.NewProgram("t")
	p.Class("A").ValueProc("a", func() any { return nil })
	p.Class("A").ValueProc("b", func() any { return nil })
	p.MustAnnotate("A.a", ThreadLocalField{ID: "dup", Fresh: func() any { return new(int) }})
	p.MustAnnotate("A.b", ThreadLocalField{ID: "dup", Fresh: func() any { return new(int) }})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate thread-local id did not panic")
		}
	}()
	AnnotationAspects(p)
}

func TestThreadLocalWithoutInitFailsWeave(t *testing.T) {
	p := weaver.NewProgram("t")
	p.Class("A").ValueProc("acc", func() any { return nil })
	p.Use(NewThreadLocal("call(* A.acc(..))", "x")) // no initialiser
	if err := p.Weave(); err == nil {
		t.Fatal("uninitialised thread-local wove successfully")
	}
}

func TestNamedAspectsInReport(t *testing.T) {
	p := weaver.NewProgram("t")
	p.Class("A").Proc("m", func() {})
	p.Use(ParallelRegion("call(* A.m(..))").Named("MyRegion"))
	p.MustWeave()
	rep := p.Report()
	if rep[0].Advice[0] != "MyRegion/parallel" {
		t.Fatalf("named aspect missing from report: %v", rep[0].Advice)
	}
	if p.Aspects()[0] != "MyRegion" {
		t.Fatalf("aspect list = %v", p.Aspects())
	}
}

// Negative-step loops must be covered exactly once under every schedule.
func TestForNegativeStepCoverage(t *testing.T) {
	for _, kind := range []sched.Kind{sched.StaticBlock, sched.StaticCyclic, sched.Dynamic} {
		p := weaver.NewProgram("t")
		cls := p.Class("A")
		const n = 30
		hits := make([]atomic.Int32, n)
		loop := cls.ForProc("down", func(lo, hi, step int) {
			for i := lo; i > hi; i += step {
				hits[(n-1)-((n-1-i)/1)].Add(1) // i counts n-1..0
			}
		})
		region := cls.Proc("region", func() { loop(n-1, -1, -1) })
		p.Use(ParallelRegion("call(* A.region(..))").Threads(3))
		p.Use(ForShare("call(* A.down(..))").Schedule(kind))
		p.MustWeave()
		region()
		for i := range hits {
			if hits[i].Load() != 1 {
				t.Fatalf("%v: value %d ran %d times", kind, i, hits[i].Load())
			}
		}
	}
}
