package core

import (
	"sync"
	"sync/atomic"
	"testing"

	"aomplib/internal/weaver"
)

// TestTaskDependAnnotationOrdersChain: @Task + @Depend woven through the
// annotation path serializes an inout chain across the team.
func TestTaskDependAnnotationOrdersChain(t *testing.T) {
	prog := weaver.NewProgram("df")
	cls := prog.Class("DF")
	var mu sync.Mutex
	var seq []int
	var x int
	step := cls.KeyedProc("step", func(k int) {
		mu.Lock()
		seq = append(seq, k)
		mu.Unlock()
	})
	run := cls.Proc("run", func() {
		for k := 0; k < 50; k++ {
			step(k)
		}
	})
	prog.MustAnnotate("DF.run", Parallel{Threads: 4}, Single{})
	prog.MustAnnotate("DF.step", Task{}, Depend{InOut: []any{&x}})
	prog.Use(AnnotationAspects(prog)...)
	prog.MustWeave()
	run()
	if len(seq) != 50 {
		t.Fatalf("ran %d steps, want 50", len(seq))
	}
	for i, v := range seq {
		if v != i {
			t.Fatalf("dependent chain out of order: %v", seq)
		}
	}
}

// TestTaskDependDynamicKeys: DepFn elements resolve per call against the
// keyed method's key, and nil results are skipped.
func TestTaskDependDynamicKeys(t *testing.T) {
	const cells = 8
	prog := weaver.NewProgram("dyn")
	cls := prog.Class("Dyn")
	tags := make([]int, cells)
	order := make([][]int, cells)
	var mu sync.Mutex
	var clock int
	touch := cls.KeyedProc("touch", func(k int) {
		mu.Lock()
		clock++
		order[k] = append(order[k], clock)
		mu.Unlock()
	})
	run := cls.Proc("run", func() {
		for round := 0; round < 4; round++ {
			for k := 0; k < cells; k++ {
				touch(k)
			}
		}
	})
	prog.MustAnnotate("Dyn.run", Parallel{Threads: 3}, Single{})
	prog.MustAnnotate("Dyn.touch", Task{}, Depend{
		In: []any{DepFn(func(k int) any {
			if k == 0 {
				return nil // no left neighbour
			}
			return &tags[k-1]
		})},
		InOut: []any{DepFn(func(k int) any { return &tags[k] })},
	})
	prog.Use(AnnotationAspects(prog)...)
	prog.MustWeave()
	run()
	for k := 0; k < cells; k++ {
		if len(order[k]) != 4 {
			t.Fatalf("cell %d touched %d times, want 4", k, len(order[k]))
		}
		for r := 1; r < 4; r++ {
			if order[k][r] <= order[k][r-1] {
				t.Fatalf("cell %d rounds out of order: %v", k, order[k])
			}
		}
	}
}

// TestDependWithoutTaskPanics: @Depend must ride on @Task/@FutureTask.
func TestDependWithoutTaskPanics(t *testing.T) {
	prog := weaver.NewProgram("bad")
	cls := prog.Class("Bad")
	cls.Proc("m", func() {})
	var x int
	prog.MustAnnotate("Bad.m", Depend{In: []any{&x}})
	defer func() {
		if recover() == nil {
			t.Fatal("AnnotationAspects accepted @Depend without @Task")
		}
	}()
	AnnotationAspects(prog)
}

// TestFutureTaskDependAnnotation: @FutureTask + @Depend producers observe
// their predecessors' writes.
func TestFutureTaskDependAnnotation(t *testing.T) {
	prog := weaver.NewProgram("fdep")
	cls := prog.Class("F")
	var x int
	set := cls.Proc("set", func() { x = 21 })
	double := cls.FutureProc("double", func() any { return x * 2 })
	var got any
	run := cls.Proc("run", func() {
		set()
		got = double().Get()
	})
	prog.MustAnnotate("F.run", Parallel{Threads: 2}, Single{})
	prog.MustAnnotate("F.set", Task{}, Depend{Out: []any{&x}})
	prog.MustAnnotate("F.double", FutureTask{}, Depend{In: []any{&x}})
	prog.Use(AnnotationAspects(prog)...)
	prog.MustWeave()
	run()
	if got != 42 {
		t.Fatalf("dependent future resolved to %v, want 42", got)
	}
}

// TestTaskGroupAnnotationScopes: a @TaskGroup method joins its own spawned
// tasks (and their descendants) before returning.
func TestTaskGroupAnnotationScopes(t *testing.T) {
	prog := weaver.NewProgram("tg")
	cls := prog.Class("TG")
	var inner atomic.Int32
	leaf := cls.Proc("leaf", func() { inner.Add(1) })
	var sawAllInside atomic.Bool
	group := cls.Proc("group", func() {
		for i := 0; i < 10; i++ {
			leaf()
		}
	})
	run := cls.Proc("run", func() {
		group()
		if inner.Load() == 10 {
			sawAllInside.Store(true)
		}
	})
	prog.MustAnnotate("TG.run", Parallel{Threads: 3}, Single{})
	prog.MustAnnotate("TG.group", TaskGroup{})
	prog.MustAnnotate("TG.leaf", Task{})
	prog.Use(AnnotationAspects(prog)...)
	prog.MustWeave()
	run()
	if !sawAllInside.Load() {
		t.Fatalf("@TaskGroup returned before its %d tasks completed (saw %d)", 10, inner.Load())
	}
}

// TestTaskLoopCoversSpaceOnce: @TaskLoop executes every iteration exactly
// once and joins before returning.
func TestTaskLoopCoversSpaceOnce(t *testing.T) {
	const n = 1000
	prog := weaver.NewProgram("tl")
	cls := prog.Class("TL")
	hits := make([]atomic.Int32, n)
	loop := cls.ForProc("loop", func(lo, hi, step int) {
		for i := lo; i < hi; i += step {
			hits[i].Add(1)
		}
	})
	run := cls.Proc("run", func() { loop(0, n, 1) })
	prog.MustAnnotate("TL.run", Parallel{Threads: 4}, Single{})
	prog.MustAnnotate("TL.loop", TaskLoop{Grainsize: 64})
	prog.Use(AnnotationAspects(prog)...)
	prog.MustWeave()
	run()
	for i := range hits {
		if got := hits[i].Load(); got != 1 {
			t.Fatalf("iteration %d executed %d times, want 1", i, got)
		}
	}
}

// TestTaskLoopPartCount: grainsize controls the decomposition (parts hold
// at least grainsize iterations).
func TestTaskLoopPartCount(t *testing.T) {
	prog := weaver.NewProgram("tlg")
	cls := prog.Class("TL")
	var parts atomic.Int32
	var iters atomic.Int32
	loop := cls.ForProc("loop", func(lo, hi, step int) {
		parts.Add(1)
		iters.Add(int32(hi - lo))
		if hi-lo < 10 {
			t.Errorf("part [%d,%d) smaller than grainsize 10", lo, hi)
		}
	})
	run := cls.Proc("run", func() { loop(0, 100, 1) })
	prog.MustAnnotate("TL.run", Parallel{Threads: 2}, Single{})
	prog.MustAnnotate("TL.loop", TaskLoop{Grainsize: 10})
	prog.Use(AnnotationAspects(prog)...)
	prog.MustWeave()
	run()
	if got := parts.Load(); got != 10 {
		t.Fatalf("taskloop split into %d parts, want 10", got)
	}
	if got := iters.Load(); got != 100 {
		t.Fatalf("taskloop covered %d iterations, want 100", got)
	}
}

// TestTaskLoopSequentialOutsideRegion: without a worker context the woven
// method runs inline, preserving sequential semantics.
func TestTaskLoopSequentialOutsideRegion(t *testing.T) {
	prog := weaver.NewProgram("tls")
	cls := prog.Class("TL")
	var calls, total int
	loop := cls.ForProc("loop", func(lo, hi, step int) {
		calls++
		for i := lo; i < hi; i += step {
			total += i
		}
	})
	prog.MustAnnotate("TL.loop", TaskLoop{Grainsize: 5})
	prog.Use(AnnotationAspects(prog)...)
	prog.MustWeave()
	loop(0, 10, 1)
	if calls != 1 {
		t.Fatalf("outside a region the loop body ran %d times, want 1 inline call", calls)
	}
	if total != 45 {
		t.Fatalf("total = %d, want 45", total)
	}
}

// TestTaskLoopRequiresForMethod: weaving @TaskLoop onto a plain proc fails.
func TestTaskLoopRequiresForMethod(t *testing.T) {
	prog := weaver.NewProgram("tlbad")
	cls := prog.Class("TL")
	cls.Proc("notAForMethod", func() {})
	prog.MustAnnotate("TL.notAForMethod", TaskLoop{})
	prog.Use(AnnotationAspects(prog)...)
	if err := prog.Weave(); err == nil {
		t.Fatal("weave accepted @TaskLoop on a non-for method")
	}
}
