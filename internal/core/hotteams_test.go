package core

import (
	"sync"
	"sync/atomic"
	"testing"

	"aomplib/internal/rt"
	"aomplib/internal/sched"
	"aomplib/internal/weaver"
)

// Weaving and unweaving must stay safe while hot regions run: calls that
// started on either chain finish correctly, and every call executes its
// full iteration space exactly once — woven (region + for) or not.
// Run under -race in CI, portable-gls job included.
func TestHotTeamsWeaveUnweaveInterleaved(t *testing.T) {
	defer func(prev bool) { rt.SetHotTeams(prev) }(rt.SetHotTeams(true))

	const n, calls, weaves = 512, 120, 60
	p := weaver.NewProgram("stress")
	var sum atomic.Int64
	loop := p.Class("S").ForProc("loop", func(lo, hi, step int) {
		var local int64
		for i := lo; i < hi; i += step {
			local += int64(i)
		}
		sum.Add(local)
	})
	run := p.Class("S").Proc("run", func() { loop(0, n, 1) })
	p.Use(ParallelRegion("call(* S.run(..))").Threads(2))
	p.Use(ForShare("call(* S.loop(..))"))

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < weaves; i++ {
			if err := p.Weave(); err != nil {
				t.Errorf("weave: %v", err)
				return
			}
			p.Unweave()
		}
	}()
	for i := 0; i < calls; i++ {
		run()
	}
	wg.Wait()
	const per = int64(n) * (n - 1) / 2
	if got := sum.Load(); got != calls*per {
		t.Fatalf("sum = %d after %d calls, want %d (iterations lost or doubled)", got, calls, calls*per)
	}
}

// Thread-local state must be fresh on every lease of a reused team: an
// InitFresh accumulator reduced per region entry yields exactly one
// contribution per worker per entry, regardless of team reuse.
func TestHotTeamsThreadLocalFreshPerLease(t *testing.T) {
	defer func(prev bool) { rt.SetHotTeams(prev) }(rt.SetHotTeams(true))

	const threads, entries, iters = 2, 5, 100
	p := weaver.NewProgram("tl")
	var global int64 // master-only access: barrier-protected by @Reduce
	tl := NewThreadLocal("call(* T.acc(..))", "acc").InitFresh(func() any { return new(int64) })
	acc := p.Class("T").ValueProc("acc", func() any { return &global })
	loop := p.Class("T").ForProc("loop", func(lo, hi, step int) {
		for i := lo; i < hi; i += step {
			*(acc().(*int64))++
		}
	})
	reduced := p.Class("T").Proc("merge", func() {})
	run := p.Class("T").Proc("run", func() {
		loop(0, iters, 1)
		reduced()
	})
	p.Use(ParallelRegion("call(* T.run(..))").Threads(threads))
	p.Use(ForShare("call(* T.loop(..))"))
	p.Use(tl)
	p.Use(ReducePoint("call(* T.merge(..))", tl, func(local any) {
		global += *(local.(*int64))
	}))
	p.MustWeave()

	for e := 0; e < entries; e++ {
		run()
	}
	if global != entries*iters {
		t.Fatalf("reduced total = %d, want %d (stale thread-locals leaked across leases)", global, entries*iters)
	}
}

// A @For bound to the Runtime schedule follows the process-wide default
// per entry, covering every iteration exactly once under each resolved
// schedule — including Auto's trip-count split.
func TestForRuntimeScheduleResolvesPerEntry(t *testing.T) {
	origKind := sched.Default()
	defer sched.SetDefault(origKind) //nolint:errcheck

	const n, threads = 300, 3
	p := weaver.NewProgram("rs")
	hits := make([]atomic.Int32, n)
	loop := p.Class("R").ForProc("loop", func(lo, hi, step int) {
		for i := lo; i < hi; i += step {
			hits[i].Add(1)
		}
	})
	run := p.Class("R").Proc("run", func() { loop(0, n, 1) })
	p.Use(ParallelRegion("call(* R.run(..))").Threads(threads))
	p.Use(ForShare("call(* R.loop(..))").Schedule(sched.Runtime))
	p.MustWeave()

	for _, k := range []sched.Kind{sched.StaticBlock, sched.StaticCyclic, sched.Dynamic, sched.Guided, sched.Auto} {
		if _, err := sched.SetDefault(k); err != nil {
			t.Fatal(err)
		}
		for i := range hits {
			hits[i].Store(0)
		}
		run()
		for i := range hits {
			if hits[i].Load() != 1 {
				t.Fatalf("schedule %v: iteration %d ran %d times", k, i, hits[i].Load())
			}
		}
	}
}
