package core

import (
	"sync"
	"sync/atomic"
	"testing"

	"aomplib/internal/sched"
	"aomplib/internal/weaver"
)

// TestStealScheduleMatchesSequential weaves @For(schedule=steal) over a
// write-per-iteration loop and checks the parallel result is identical to
// the sequential run — every iteration executed exactly once, no matter
// how ranges migrated between workers.
func TestStealScheduleMatchesSequential(t *testing.T) {
	const n, iters = 257, 9 // odd size: uneven static ranges
	p := weaver.NewProgram("t")
	data := make([]int64, n)
	loop := p.Class("App").ForProc("loop", func(lo, hi, step int) {
		for i := lo; i < hi; i += step {
			atomic.AddInt64(&data[i], int64(i)+1)
		}
	})
	region := p.Class("App").Proc("region", func() {
		for k := 0; k < iters; k++ {
			loop(0, n, 1)
		}
	})
	p.Use(ParallelRegion("call(* App.region(..))").Threads(4))
	p.Use(ForShare("call(* App.loop(..))").Schedule(sched.Steal).Chunk(3))
	p.MustWeave()
	region()

	p.Unweave()
	want := make([]int64, n)
	copy(want, data)
	for i := range data {
		data[i] = 0
	}
	region() // sequential semantics restored
	for i := range data {
		if data[i] != want[i] || data[i] != int64(iters)*(int64(i)+1) {
			t.Fatalf("data[%d] = %d (parallel %d), want %d",
				i, data[i], want[i], int64(iters)*(int64(i)+1))
		}
	}
}

// TestStealScheduleAnnotationStyle drives the same schedule through the
// annotation front end, including the runtime-default route a
// `jgfbench -schedule steal` sweep takes.
func TestStealScheduleAnnotationStyle(t *testing.T) {
	prev, err := SetDefaultSchedule(sched.Steal)
	if err != nil {
		t.Fatalf("SetDefaultSchedule(steal): %v", err)
	}
	defer SetDefaultSchedule(prev) //nolint:errcheck // restoring a valid kind

	const n = 100
	p := weaver.NewProgram("t")
	var sum atomic.Int64
	loop := p.Class("App").ForProc("loop", func(lo, hi, step int) {
		for i := lo; i < hi; i += step {
			sum.Add(int64(i))
		}
	})
	region := p.Class("App").Proc("region", func() { loop(0, n, 1) })
	p.MustAnnotate("App.region", Parallel{Threads: 3})
	p.MustAnnotate("App.loop", For{Schedule: sched.Runtime})
	p.Use(AnnotationAspects(p)...)
	p.MustWeave()
	region()
	if want := int64(n * (n - 1) / 2); sum.Load() != want {
		t.Fatalf("steal-by-runtime sum = %d, want %d", sum.Load(), want)
	}
}

// TestOrderedDynamicManyEncountersRace hammers the lazily-allocated
// ordered condition variable: every encounter of the for construct builds
// a fresh shared state whose cond is allocated by whichever worker's
// ordered section arrives first, under a dynamic schedule so arrival order
// is nondeterministic. Run under -race this is the allocation-race check
// the single-encounter ordered test cannot provide.
func TestOrderedDynamicManyEncountersRace(t *testing.T) {
	const n, encounters = 32, 25
	p := weaver.NewProgram("t")
	var mu sync.Mutex
	var order []int
	emit := p.Class("App").KeyedProc("emit", func(i int) {
		mu.Lock()
		order = append(order, i)
		mu.Unlock()
	})
	loop := p.Class("App").ForProc("loop", func(lo, hi, step int) {
		for i := lo; i < hi; i += step {
			emit(i)
		}
	})
	region := p.Class("App").Proc("region", func() {
		for k := 0; k < encounters; k++ {
			loop(0, n, 1)
			// The dynamic schedule's implicit barrier pairs each encounter
			// before the next begins, so the global emit sequence is the
			// concatenation of per-encounter sequential orders.
		}
	})
	p.Use(ParallelRegion("call(* App.region(..))").Threads(4))
	p.Use(ForShare("call(* App.loop(..))").Schedule(sched.Dynamic))
	p.Use(OrderedSection("call(* App.emit(..))"))
	p.MustWeave()
	region()
	if len(order) != n*encounters {
		t.Fatalf("emitted %d values, want %d", len(order), n*encounters)
	}
	for j, v := range order {
		if v != j%n {
			t.Fatalf("order[%d] = %d, want %d — ordered violated", j, v, j%n)
		}
	}
}
