package core

import (
	"fmt"
	"sync"

	"aomplib/internal/rt"
	"aomplib/internal/sched"
	"aomplib/internal/weaver"
)

// DepFn computes a dependence address from a keyed method's key at spawn
// time — the dynamic form of a @Depend clause element, for tasks whose
// addresses vary per call (a wavefront's block index, a grid neighbour).
// Returning nil skips the element (no such neighbour).
type DepFn func(key int) any

// depScratch holds the per-spawn resolution of dynamic clauses. The
// runtime consumes the clause slices synchronously (SpawnDep copies the
// keys into its tracker before returning), so the buffers are recycled
// immediately after the spawn — dataflow spawning through the weaver does
// not allocate a fresh clause set per task.
type depScratch struct {
	in, out, inout []any
}

var depScratchPool = sync.Pool{New: func() any { return new(depScratch) }}

// release clears the key references (addresses must not be pinned past
// the spawn) and returns the buffers to the pool.
func (s *depScratch) release() {
	clear(s.in[:cap(s.in)])
	clear(s.out[:cap(s.out)])
	clear(s.inout[:cap(s.inout)])
	depScratchPool.Put(s)
}

func hasDepFn(ks []any) bool {
	for _, k := range ks {
		if _, ok := k.(DepFn); ok {
			return true
		}
	}
	return false
}

// resolveInto materialises one clause list against a call: DepFn elements
// are evaluated with the call's key, everything else passes through.
func resolveInto(dst, ks []any, c *weaver.Call) []any {
	for _, k := range ks {
		if f, ok := k.(DepFn); ok {
			k = f(c.Key)
		}
		dst = append(dst, k)
	}
	return dst
}

// resolveDeps builds the runtime dependence clauses of one spawn. The
// returned scratch is nil when the clauses are fully static (passed
// through as-is); otherwise the caller releases it after the spawn.
func resolveDeps(d Depend, c *weaver.Call) (rt.Deps, *depScratch) {
	if !hasDepFn(d.In) && !hasDepFn(d.Out) && !hasDepFn(d.InOut) {
		return rt.Deps{In: d.In, Out: d.Out, InOut: d.InOut}, nil
	}
	s := depScratchPool.Get().(*depScratch)
	s.in = resolveInto(s.in[:0], d.In, c)
	s.out = resolveInto(s.out[:0], d.Out, c)
	s.inout = resolveInto(s.inout[:0], d.InOut, c)
	return rt.Deps{In: s.in, Out: s.out, InOut: s.inout}, s
}

func (d Depend) empty() bool { return len(d.In) == 0 && len(d.Out) == 0 && len(d.InOut) == 0 }

// TaskAspect spawns a new parallel activity to execute each matched method
// call (@Task), usable inside or outside parallel regions. Completion is
// joined at a @TaskWait point or, inside a region, at the region's end.
// With dependence clauses attached (Depend), the spawn is ordered after
// the previously spawned tasks its clauses conflict with.
type TaskAspect struct {
	name    string
	matcher weaver.Matcher
	deps    Depend
}

// TaskSpawn binds @Task to the methods selected by pc.
func TaskSpawn(pc string) *TaskAspect { return newTask(mustPC(pc)) }

func newTask(m weaver.Matcher) *TaskAspect { return &TaskAspect{name: "Task", matcher: m} }

// Named renames the aspect module.
func (a *TaskAspect) Named(name string) *TaskAspect { a.name = name; return a }

// Depend attaches dependence clauses to the spawned tasks (@Depend).
func (a *TaskAspect) Depend(d Depend) *TaskAspect { a.deps = d; return a }

// AspectName implements weaver.Aspect.
func (a *TaskAspect) AspectName() string { return a.name }

// Bindings implements weaver.Aspect.
func (a *TaskAspect) Bindings() []weaver.Binding {
	deps := a.deps
	name := "task"
	if !deps.empty() {
		name = "task+depend"
	}
	adv := advice{
		name: name,
		prec: PrecTask,
		validate: func(jp *weaver.Joinpoint) error {
			if jp.Kind() == weaver.ValueKind {
				return fmt.Errorf("@Task on value-returning %s: use @FutureTask", jp.FQN())
			}
			return nil
		},
		wrap: func(jp *weaver.Joinpoint, next weaver.HandlerFunc) weaver.HandlerFunc {
			if deps.empty() {
				return func(c *weaver.Call) {
					tc := *c
					rt.Spawn(func() { next(&tc) })
				}
			}
			return func(c *weaver.Call) {
				tc := *c
				d, scratch := resolveDeps(deps, c)
				rt.SpawnDep(func() { next(&tc) }, d)
				if scratch != nil {
					scratch.release()
				}
			}
		},
	}
	return []weaver.Binding{{Matcher: a.matcher, Advice: adv}}
}

// TaskWaitAspect turns matched methods into join points between spawning
// and spawned activities (@TaskWait): all outstanding tasks of the
// caller's task scope complete before the method body runs (or after,
// with After).
type TaskWaitAspect struct {
	name    string
	matcher weaver.Matcher
	after   bool
}

// TaskWaitPoint binds @TaskWait to the methods selected by pc.
func TaskWaitPoint(pc string) *TaskWaitAspect { return newTaskWait(mustPC(pc)) }

func newTaskWait(m weaver.Matcher) *TaskWaitAspect {
	return &TaskWaitAspect{name: "TaskWait", matcher: m}
}

// Named renames the aspect module.
func (a *TaskWaitAspect) Named(name string) *TaskWaitAspect { a.name = name; return a }

// After waits after the method body instead of before it.
func (a *TaskWaitAspect) After() *TaskWaitAspect { a.after = true; return a }

// AspectName implements weaver.Aspect.
func (a *TaskWaitAspect) AspectName() string { return a.name }

// Bindings implements weaver.Aspect.
func (a *TaskWaitAspect) Bindings() []weaver.Binding {
	adv := advice{
		name: "taskwait",
		prec: PrecTaskWait,
		wrap: func(jp *weaver.Joinpoint, next weaver.HandlerFunc) weaver.HandlerFunc {
			return func(c *weaver.Call) {
				if !a.after {
					rt.TaskWait()
				}
				next(c)
				if a.after {
					rt.TaskWait()
				}
			}
		},
	}
	return []weaver.Binding{{Matcher: a.matcher, Advice: adv}}
}

// FutureTaskAspect runs matched value-returning methods asynchronously,
// delivering the result through a Future whose getter is the
// synchronisation point (@FutureTask/@FutureResult: methods "must return
// an object with getter/setter methods that act as synchronisation
// points"). Applies to methods registered with FutureProc; without this
// aspect the future resolves synchronously. With dependence clauses
// attached (Depend), the producer is ordered after conflicting tasks.
type FutureTaskAspect struct {
	name    string
	matcher weaver.Matcher
	deps    Depend
}

// FutureTaskSpawn binds @FutureTask to the methods selected by pc.
func FutureTaskSpawn(pc string) *FutureTaskAspect { return newFutureTask(mustPC(pc)) }

func newFutureTask(m weaver.Matcher) *FutureTaskAspect {
	return &FutureTaskAspect{name: "FutureTask", matcher: m}
}

// Named renames the aspect module.
func (a *FutureTaskAspect) Named(name string) *FutureTaskAspect { a.name = name; return a }

// Depend attaches dependence clauses to the spawned producers (@Depend).
func (a *FutureTaskAspect) Depend(d Depend) *FutureTaskAspect { a.deps = d; return a }

// AspectName implements weaver.Aspect.
func (a *FutureTaskAspect) AspectName() string { return a.name }

// Bindings implements weaver.Aspect.
func (a *FutureTaskAspect) Bindings() []weaver.Binding {
	deps := a.deps
	name := "futureTask"
	if !deps.empty() {
		name = "futureTask+depend"
	}
	adv := advice{
		name: name,
		prec: PrecTask,
		validate: func(jp *weaver.Joinpoint) error {
			if jp.Kind() != weaver.ValueKind {
				return fmt.Errorf("@FutureTask requires a value-returning method, got %s %s", jp.Kind(), jp.FQN())
			}
			return nil
		},
		wrap: func(jp *weaver.Joinpoint, next weaver.HandlerFunc) weaver.HandlerFunc {
			if deps.empty() {
				return func(c *weaver.Call) {
					tc := *c
					c.Ret = rt.SpawnFuture(func() any {
						next(&tc)
						return tc.Ret
					})
				}
			}
			return func(c *weaver.Call) {
				tc := *c
				d, scratch := resolveDeps(deps, c)
				c.Ret = rt.SpawnFutureDep(func() any {
					next(&tc)
					return tc.Ret
				}, d)
				if scratch != nil {
					scratch.release()
				}
			}
		},
	}
	return []weaver.Binding{{Matcher: a.matcher, Advice: adv}}
}

// TaskGroupAspect scopes matched methods as task groups (@TaskGroup): the
// method does not return until every task spawned in its dynamic extent —
// including tasks spawned by those tasks — has completed. Unlike @TaskWait
// it joins only the scope's own tasks, so independent groups proceed
// without a team-wide quiescence point.
type TaskGroupAspect struct {
	name    string
	matcher weaver.Matcher
}

// TaskGroupSection binds @TaskGroup to the methods selected by pc.
func TaskGroupSection(pc string) *TaskGroupAspect { return newTaskGroup(mustPC(pc)) }

func newTaskGroup(m weaver.Matcher) *TaskGroupAspect {
	return &TaskGroupAspect{name: "TaskGroup", matcher: m}
}

// Named renames the aspect module.
func (a *TaskGroupAspect) Named(name string) *TaskGroupAspect { a.name = name; return a }

// AspectName implements weaver.Aspect.
func (a *TaskGroupAspect) AspectName() string { return a.name }

// Bindings implements weaver.Aspect.
func (a *TaskGroupAspect) Bindings() []weaver.Binding {
	adv := advice{
		name: "taskgroup",
		prec: PrecTaskGroup,
		wrap: func(jp *weaver.Joinpoint, next weaver.HandlerFunc) weaver.HandlerFunc {
			return func(c *weaver.Call) {
				rt.TaskGroupScope(func() { next(c) })
			}
		},
	}
	return []weaver.Binding{{Matcher: a.matcher, Advice: adv}}
}

// TaskLoopAspect decomposes matched for methods into deferred tasks
// (@TaskLoop): the iteration space is split into balanced parts, each part
// is spawned as a task load-balanced by work stealing, and the call
// returns when all parts have completed (an implicit task group). Unlike
// @For — whose caller is the whole team, each worker taking a share — a
// taskloop is executed by its single caller (typically under @Single or
// @Master) and the team picks the parts up at scheduling points.
type TaskLoopAspect struct {
	name      string
	matcher   weaver.Matcher
	grainsize int
	collapse  int
}

// TaskLoopShare binds @TaskLoop to the for methods selected by pc.
func TaskLoopShare(pc string) *TaskLoopAspect { return newTaskLoop(mustPC(pc)) }

func newTaskLoop(m weaver.Matcher) *TaskLoopAspect {
	return &TaskLoopAspect{name: "TaskLoop", matcher: m}
}

// Named renames the aspect module.
func (a *TaskLoopAspect) Named(name string) *TaskLoopAspect { a.name = name; return a }

// Grainsize sets the minimum iterations per spawned task; 0 (the default)
// splits the space into four parts per team worker.
func (a *TaskLoopAspect) Grainsize(n int) *TaskLoopAspect { a.grainsize = n; return a }

// Collapse declares how many perfectly nested loops the method's
// linearized iteration space covers. The M2FOR refactoring exposes one
// (start, end, step) triple, so collapsing happens at registration — the
// for method receives the linearized space — and Collapse records the
// intent for weave reports and validation; the decomposition always
// operates on the linearized space.
func (a *TaskLoopAspect) Collapse(n int) *TaskLoopAspect { a.collapse = n; return a }

// Bindings implements weaver.Aspect.
func (a *TaskLoopAspect) Bindings() []weaver.Binding {
	grain, collapse := a.grainsize, a.collapse
	adv := advice{
		name:        "taskloop",
		prec:        PrecTaskLoop,
		needsWorker: true,
		validate: func(jp *weaver.Joinpoint) error {
			if jp.Kind() != weaver.ForKind {
				return fmt.Errorf("@TaskLoop requires a for method, got %s %s", jp.Kind(), jp.FQN())
			}
			if grain < 0 {
				return fmt.Errorf("@TaskLoop on %s: negative grainsize %d", jp.FQN(), grain)
			}
			if collapse < 0 {
				return fmt.Errorf("@TaskLoop on %s: negative collapse %d", jp.FQN(), collapse)
			}
			return nil
		},
		wrap: func(jp *weaver.Joinpoint, next weaver.HandlerFunc) weaver.HandlerFunc {
			return func(c *weaver.Call) {
				space := sched.Space{Lo: c.Lo, Hi: c.Hi, Step: c.Step}
				var parts []sched.Space
				if grain > 0 {
					parts = space.SplitGrain(grain)
				} else {
					teamSize := 1
					if c.Worker != nil {
						teamSize = c.Worker.Team.Size
					}
					parts = space.Split(4 * teamSize)
				}
				if c.Worker == nil || len(parts) <= 1 {
					// Outside a region (or trivially small): sequential
					// semantics, run the space inline.
					next(c)
					return
				}
				rt.TaskGroupScope(func() {
					for _, p := range parts {
						p := p
						tc := *c
						rt.Spawn(func() {
							tc.Lo, tc.Hi, tc.Step = p.Lo, p.Hi, p.Step
							next(&tc)
						})
					}
				})
			}
		},
	}
	return []weaver.Binding{{Matcher: a.matcher, Advice: adv}}
}

// AspectName implements weaver.Aspect.
func (a *TaskLoopAspect) AspectName() string { return a.name }
