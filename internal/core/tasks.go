package core

import (
	"fmt"

	"aomplib/internal/rt"
	"aomplib/internal/weaver"
)

// TaskAspect spawns a new parallel activity to execute each matched method
// call (@Task), usable inside or outside parallel regions. Completion is
// joined at a @TaskWait point or, inside a region, at the region's end.
type TaskAspect struct {
	name    string
	matcher weaver.Matcher
}

// TaskSpawn binds @Task to the methods selected by pc.
func TaskSpawn(pc string) *TaskAspect { return newTask(mustPC(pc)) }

func newTask(m weaver.Matcher) *TaskAspect { return &TaskAspect{name: "Task", matcher: m} }

// Named renames the aspect module.
func (a *TaskAspect) Named(name string) *TaskAspect { a.name = name; return a }

// AspectName implements weaver.Aspect.
func (a *TaskAspect) AspectName() string { return a.name }

// Bindings implements weaver.Aspect.
func (a *TaskAspect) Bindings() []weaver.Binding {
	adv := advice{
		name: "task",
		prec: PrecTask,
		validate: func(jp *weaver.Joinpoint) error {
			if jp.Kind() == weaver.ValueKind {
				return fmt.Errorf("@Task on value-returning %s: use @FutureTask", jp.FQN())
			}
			return nil
		},
		wrap: func(jp *weaver.Joinpoint, next weaver.HandlerFunc) weaver.HandlerFunc {
			return func(c *weaver.Call) {
				tc := *c
				rt.Spawn(func() { next(&tc) })
			}
		},
	}
	return []weaver.Binding{{Matcher: a.matcher, Advice: adv}}
}

// TaskWaitAspect turns matched methods into join points between spawning
// and spawned activities (@TaskWait): all outstanding tasks of the
// caller's task scope complete before the method body runs (or after,
// with After).
type TaskWaitAspect struct {
	name    string
	matcher weaver.Matcher
	after   bool
}

// TaskWaitPoint binds @TaskWait to the methods selected by pc.
func TaskWaitPoint(pc string) *TaskWaitAspect { return newTaskWait(mustPC(pc)) }

func newTaskWait(m weaver.Matcher) *TaskWaitAspect {
	return &TaskWaitAspect{name: "TaskWait", matcher: m}
}

// Named renames the aspect module.
func (a *TaskWaitAspect) Named(name string) *TaskWaitAspect { a.name = name; return a }

// After waits after the method body instead of before it.
func (a *TaskWaitAspect) After() *TaskWaitAspect { a.after = true; return a }

// AspectName implements weaver.Aspect.
func (a *TaskWaitAspect) AspectName() string { return a.name }

// Bindings implements weaver.Aspect.
func (a *TaskWaitAspect) Bindings() []weaver.Binding {
	adv := advice{
		name: "taskwait",
		prec: PrecTaskWait,
		wrap: func(jp *weaver.Joinpoint, next weaver.HandlerFunc) weaver.HandlerFunc {
			return func(c *weaver.Call) {
				if !a.after {
					rt.TaskWait()
				}
				next(c)
				if a.after {
					rt.TaskWait()
				}
			}
		},
	}
	return []weaver.Binding{{Matcher: a.matcher, Advice: adv}}
}

// FutureTaskAspect runs matched value-returning methods asynchronously,
// delivering the result through a Future whose getter is the
// synchronisation point (@FutureTask/@FutureResult: methods "must return
// an object with getter/setter methods that act as synchronisation
// points"). Applies to methods registered with FutureProc; without this
// aspect the future resolves synchronously.
type FutureTaskAspect struct {
	name    string
	matcher weaver.Matcher
}

// FutureTaskSpawn binds @FutureTask to the methods selected by pc.
func FutureTaskSpawn(pc string) *FutureTaskAspect { return newFutureTask(mustPC(pc)) }

func newFutureTask(m weaver.Matcher) *FutureTaskAspect {
	return &FutureTaskAspect{name: "FutureTask", matcher: m}
}

// Named renames the aspect module.
func (a *FutureTaskAspect) Named(name string) *FutureTaskAspect { a.name = name; return a }

// AspectName implements weaver.Aspect.
func (a *FutureTaskAspect) AspectName() string { return a.name }

// Bindings implements weaver.Aspect.
func (a *FutureTaskAspect) Bindings() []weaver.Binding {
	adv := advice{
		name: "futureTask",
		prec: PrecTask,
		validate: func(jp *weaver.Joinpoint) error {
			if jp.Kind() != weaver.ValueKind {
				return fmt.Errorf("@FutureTask requires a value-returning method, got %s %s", jp.Kind(), jp.FQN())
			}
			return nil
		},
		wrap: func(jp *weaver.Joinpoint, next weaver.HandlerFunc) weaver.HandlerFunc {
			return func(c *weaver.Call) {
				tc := *c
				c.Ret = rt.SpawnFuture(func() any {
					next(&tc)
					return tc.Ret
				})
			}
		},
	}
	return []weaver.Binding{{Matcher: a.matcher, Advice: adv}}
}
