package core

import (
	"sync"
	"sync/atomic"
	"testing"

	"aomplib/internal/weaver"
)

// Nested parallel regions through the aspect layer (Runtime v2): a
// region-woven method called from inside an outer team spawns a real inner
// team with its own ThreadID/NumThreads, work-sharing splits over the
// inner team, and thread-local reduction — barriers included — is scoped
// to each inner team. Two inner teams run concurrently (one per outer
// worker) and must not interfere.
func TestNestedParallelRegionWithReduction(t *testing.T) {
	p := weaver.NewProgram("t")
	cls := p.Class("App")
	const outerN, innerN, iters = 2, 3, 600

	var grand int64 // reduced across inner teams, mutex-guarded merges
	var mu sync.Mutex
	var badInner, badOuter, innerRuns atomic.Int32

	tl := NewThreadLocal("call(* App.acc(..))", "sum").
		InitFresh(func() any { return new(int64) })
	acc := cls.ValueProc("acc", func() any { return new(int64) })
	collect := cls.Proc("collect", func() {})
	loop := cls.ForProc("loop", func(lo, hi, step int) {
		for i := lo; i < hi; i += step {
			*(acc().(*int64)) += int64(i)
		}
	})
	inner := cls.Proc("inner", func() {
		innerRuns.Add(1)
		if NumThreads() != innerN || ThreadID() < 0 || ThreadID() >= innerN || Level() != 2 {
			badInner.Add(1)
		}
		loop(0, iters, 1)
		collect() // reduce: inner-team barriers + master merge
	})
	outer := cls.Proc("outer", func() {
		id, n := ThreadID(), NumThreads()
		if n != outerN || Level() != 1 {
			badOuter.Add(1)
		}
		inner()
		// Outer context must be restored after the nested region.
		if ThreadID() != id || NumThreads() != outerN || Level() != 1 {
			badOuter.Add(1)
		}
	})

	p.Use(ParallelRegion("call(* App.outer(..))").Named("outerRegion").Threads(outerN))
	p.Use(ParallelRegion("call(* App.inner(..))").Named("innerRegion").Threads(innerN))
	p.Use(ForShare("call(* App.loop(..))"))
	p.Use(tl)
	p.Use(ReducePoint("call(* App.collect(..))", tl, func(local any) {
		mu.Lock()
		grand += *(local.(*int64))
		mu.Unlock()
	}))
	p.MustWeave()

	outer()

	if badOuter.Load() != 0 {
		t.Errorf("%d outer-context violations", badOuter.Load())
	}
	if badInner.Load() != 0 {
		t.Errorf("%d inner-team context violations", badInner.Load())
	}
	// The inner region body runs once per (outer worker × inner worker).
	if innerRuns.Load() != outerN*innerN {
		t.Errorf("inner bodies ran %d times, want %d", innerRuns.Load(), outerN*innerN)
	}
	// Each of the outerN inner regions work-shares 0..iters-1 exactly once
	// over its own team and reduces it exactly once.
	if want := int64(outerN) * int64(iters*(iters-1)/2); grand != want {
		t.Fatalf("nested reduction = %d, want %d", grand, want)
	}
}

// The nested gate (SetNested) serializes inner regions without touching
// outer ones, and restores cleanly.
func TestNestedGateThroughAspects(t *testing.T) {
	prev := SetNested(false)
	defer SetNested(prev)

	p := weaver.NewProgram("t")
	cls := p.Class("App")
	var innerSizes sync.Map
	inner := cls.Proc("inner", func() { innerSizes.Store(ThreadID(), NumThreads()) })
	outer := cls.Proc("outer", func() { inner() })
	p.Use(ParallelRegion("call(* App.outer(..))").Named("o").Threads(2))
	p.Use(ParallelRegion("call(* App.inner(..))").Named("i").Threads(3))
	p.MustWeave()
	outer()

	if !NestedEnabled() {
		// expected: gate off — inner regions must have run single-worker
		if v, ok := innerSizes.Load(0); !ok || v.(int) != 1 {
			t.Fatalf("serialized inner region size = %v, want 1", v)
		}
	} else {
		t.Fatal("gate did not report disabled")
	}
}
