// Package pointcut implements the subset of the AspectJ pointcut language
// that AOmpLib uses to bind aspect modules to base programs (paper §III.B):
//
//	call(void Linpack.reduceAllCols(..))
//	execution(int Linpack.dgefa(..))
//	call(@Parallel * *(..))                  — annotation matching (Fig. 5)
//	call(* Particle+.force(..))              — '+' matches subtypes and
//	                                           interface implementations
//	within(Linpack) && !call(* *.idamax(..)) — boolean composition
//
// Grammar (informal):
//
//	expr      = or ;
//	or        = and { "||" and } ;
//	and       = unary { "&&" unary } ;
//	unary     = "!" unary | "(" expr ")" | primitive ;
//	primitive = ("call" | "execution") "(" signature ")"
//	          | "within" "(" typePattern ")"
//	          | "annotation" "(" "@" ident ")" ;
//	signature = { "@" ident } [ retPattern ] [ typePattern "." ] namePattern
//	            "(" argsPattern ")" ;
//	argsPattern = ".." | [ argPat { "," argPat } ] ;  argPat = ident | "*" ;
//	typePattern = pattern [ "+" ] ;     pattern = ident-with-"*"-wildcards ;
//
// In AOmpLib all joinpoints are method calls ("each mechanism acts upon a
// set of method calls in the base program"), so call and execution match
// identically; both are accepted for fidelity with the paper's examples.
package pointcut

import (
	"fmt"
	"strings"
)

// Subject is the joinpoint view a pointcut is matched against. The weaver's
// Joinpoint type implements it; tests may use lightweight fakes.
type Subject interface {
	// ClassName is the declaring class of the method.
	ClassName() string
	// MethodName is the method's simple name.
	MethodName() string
	// ArgKinds lists the exposed parameter kinds, e.g. ["int","int","int"]
	// for a for method. Parameters captured by closure are not part of the
	// parallelisation API and are not listed.
	ArgKinds() []string
	// ReturnsValue reports whether the method returns a value.
	ReturnsValue() bool
	// HasAnnotation reports whether the method carries the named annotation.
	HasAnnotation(name string) bool
	// ClassIsA reports whether the declaring class matches typeName
	// including inheritance: the class itself, any superclass, or any
	// implemented interface.
	ClassIsA(typeName string) bool
}

// Pointcut is a compiled pointcut expression.
type Pointcut struct {
	src  string
	expr node
}

// MustParse is Parse that panics on error; intended for aspect-module
// literals whose pointcuts are compile-time constants.
func MustParse(src string) *Pointcut {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

// Parse compiles a pointcut expression.
func Parse(src string) (*Pointcut, error) {
	ps := &parser{lex: newLexer(src)}
	expr, err := ps.parseExpr()
	if err != nil {
		return nil, fmt.Errorf("pointcut %q: %w", src, err)
	}
	if tok := ps.lex.next(); tok.kind != tokEOF {
		return nil, fmt.Errorf("pointcut %q: unexpected trailing %q", src, tok.text)
	}
	return &Pointcut{src: src, expr: expr}, nil
}

// Matches reports whether the pointcut selects the given joinpoint.
func (p *Pointcut) Matches(s Subject) bool { return p.expr.matches(s) }

// String returns the source expression.
func (p *Pointcut) String() string { return p.src }

// ---------------------------------------------------------------- AST --

type node interface{ matches(Subject) bool }

type orNode struct{ l, r node }
type andNode struct{ l, r node }
type notNode struct{ n node }

func (n orNode) matches(s Subject) bool  { return n.l.matches(s) || n.r.matches(s) }
func (n andNode) matches(s Subject) bool { return n.l.matches(s) && n.r.matches(s) }
func (n notNode) matches(s Subject) bool { return !n.n.matches(s) }

// withinNode matches the declaring class (no subtype operator in within,
// matching AspectJ's lexical semantics approximated on classes).
type withinNode struct{ pattern string }

func (n withinNode) matches(s Subject) bool { return wildcardMatch(n.pattern, s.ClassName()) }

// annotationNode matches methods carrying a named annotation.
type annotationNode struct{ name string }

func (n annotationNode) matches(s Subject) bool { return s.HasAnnotation(n.name) }

// sigNode matches a call/execution signature.
type sigNode struct {
	annotations []string
	ret         string // "", "*", "void", or a concrete kind
	classPat    string // "" or "*" match any class
	subtypes    bool   // classPat+ — include inheritance chain
	namePat     string
	args        []string // each "int", "*", or ".."; nil == ".."
}

func (n sigNode) matches(s Subject) bool {
	for _, a := range n.annotations {
		if !s.HasAnnotation(a) {
			return false
		}
	}
	switch n.ret {
	case "", "*":
	case "void":
		if s.ReturnsValue() {
			return false
		}
	default:
		if !s.ReturnsValue() {
			return false
		}
	}
	if n.classPat != "" && n.classPat != "*" {
		if n.subtypes {
			if !s.ClassIsA(n.classPat) && !wildcardMatch(n.classPat, s.ClassName()) {
				return false
			}
		} else if !wildcardMatch(n.classPat, s.ClassName()) {
			return false
		}
	}
	if !wildcardMatch(n.namePat, s.MethodName()) {
		return false
	}
	return argsMatch(n.args, s.ArgKinds())
}

func argsMatch(pats, kinds []string) bool {
	if pats == nil {
		return true // ".."
	}
	i := 0
	for pi, p := range pats {
		if p == ".." {
			// ".." swallows the rest; anything after ".." must match a
			// suffix — AOmpLib signatures never need that, so treat a
			// trailing ".." as match-rest.
			_ = pi
			return true
		}
		if i >= len(kinds) {
			return false
		}
		if p != "*" && p != kinds[i] {
			return false
		}
		i++
	}
	return i == len(kinds)
}

// wildcardMatch matches s against pattern where '*' matches any (possibly
// empty) sequence of characters.
func wildcardMatch(pattern, s string) bool {
	if pattern == "*" {
		return true
	}
	parts := strings.Split(pattern, "*")
	if len(parts) == 1 {
		return pattern == s
	}
	// Anchor first and last fragments; middle fragments float in order.
	if !strings.HasPrefix(s, parts[0]) {
		return false
	}
	s = s[len(parts[0]):]
	last := parts[len(parts)-1]
	for _, mid := range parts[1 : len(parts)-1] {
		if mid == "" {
			continue
		}
		idx := strings.Index(s, mid)
		if idx < 0 {
			return false
		}
		s = s[idx+len(mid):]
	}
	return strings.HasSuffix(s, last)
}
