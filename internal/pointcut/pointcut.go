// Package pointcut implements the subset of the AspectJ pointcut language
// that AOmpLib uses to bind aspect modules to base programs (paper §III.B):
//
//	call(void Linpack.reduceAllCols(..))
//	execution(int Linpack.dgefa(..))
//	call(@Parallel * *(..))                  — annotation matching (Fig. 5)
//	call(* Particle+.force(..))              — '+' matches subtypes and
//	                                           interface implementations
//	within(Linpack) && !call(* *.idamax(..)) — boolean composition
//
// Grammar (informal):
//
//	expr      = or ;
//	or        = and { "||" and } ;
//	and       = unary { "&&" unary } ;
//	unary     = "!" unary | "(" expr ")" | primitive ;
//	primitive = ("call" | "execution") "(" signature ")"
//	          | "within" "(" typePattern ")"
//	          | "annotation" "(" "@" ident ")" ;
//	signature = { "@" ident } [ retPattern ] [ typePattern "." ] namePattern
//	            "(" argsPattern ")" ;
//	argsPattern = ".." | [ argPat { "," argPat } ] ;  argPat = ident | "*" ;
//	typePattern = pattern [ "+" ] ;     pattern = ident-with-"*"-wildcards ;
//
// In AOmpLib all joinpoints are method calls ("each mechanism acts upon a
// set of method calls in the base program"), so call and execution match
// identically; both are accepted for fidelity with the paper's examples.
package pointcut

import (
	"fmt"
	"strings"
)

// Subject is the joinpoint view a pointcut is matched against. The weaver's
// Joinpoint type implements it; tests may use lightweight fakes.
type Subject interface {
	// ClassName is the declaring class of the method.
	ClassName() string
	// MethodName is the method's simple name.
	MethodName() string
	// ArgKinds lists the exposed parameter kinds, e.g. ["int","int","int"]
	// for a for method. Parameters captured by closure are not part of the
	// parallelisation API and are not listed.
	ArgKinds() []string
	// ReturnsValue reports whether the method returns a value.
	ReturnsValue() bool
	// HasAnnotation reports whether the method carries the named annotation.
	HasAnnotation(name string) bool
	// ClassIsA reports whether the declaring class matches typeName
	// including inheritance: the class itself, any superclass, or any
	// implemented interface.
	ClassIsA(typeName string) bool
}

// Pointcut is a compiled pointcut expression. Wildcard fragments are
// compiled into shape-classified matchers at parse time (exact, prefix,
// suffix, contains, or general fragment scans), so Matches never re-splits
// pattern strings — weaving over large registries pays string comparisons,
// not allocations.
type Pointcut struct {
	src  string
	expr node
}

// MustParse is Parse that panics on error; intended for aspect-module
// literals whose pointcuts are compile-time constants.
func MustParse(src string) *Pointcut {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

// Parse compiles a pointcut expression.
func Parse(src string) (*Pointcut, error) {
	ps := &parser{lex: newLexer(src)}
	expr, err := ps.parseExpr()
	if err != nil {
		return nil, fmt.Errorf("pointcut %q: %w", src, err)
	}
	if tok := ps.lex.next(); tok.kind != tokEOF {
		return nil, fmt.Errorf("pointcut %q: unexpected trailing %q", src, tok.text)
	}
	return &Pointcut{src: src, expr: expr}, nil
}

// Matches reports whether the pointcut selects the given joinpoint.
func (p *Pointcut) Matches(s Subject) bool { return p.expr.matches(s) }

// String returns the source expression.
func (p *Pointcut) String() string { return p.src }

// Hints returns the statically derived candidate keys of the pointcut —
// the basis of the weaver's pointcut→joinpoint index. See the Hints type
// for the superset contract.
func (p *Pointcut) Hints() Hints { return p.expr.hints() }

// Hints describes a statically known superset of the joinpoints a pointcut
// can select, expressed as exact index keys. Unless All is set, every
// subject the pointcut matches is guaranteed to have a declaring class
// named in Classes, or a method name in Methods, or an annotation named in
// Annotations (the union of the three key sets covers the match set). An
// indexed registry therefore only needs to evaluate the pointcut against
// the union of those buckets; All means no static narrowing was possible
// and every joinpoint is a candidate.
type Hints struct {
	// All reports that the pointcut could not be narrowed (wildcarded
	// names, subtype operators, negations).
	All bool
	// Classes lists exact declaring-class names.
	Classes []string
	// Methods lists exact method names.
	Methods []string
	// Annotations lists annotation names required by the pointcut.
	Annotations []string
}

// union merges two hint sets: the result covers every subject either side
// covers.
func (h Hints) union(o Hints) Hints {
	if h.All || o.All {
		return Hints{All: true}
	}
	return Hints{
		Classes:     append(append([]string(nil), h.Classes...), o.Classes...),
		Methods:     append(append([]string(nil), h.Methods...), o.Methods...),
		Annotations: append(append([]string(nil), h.Annotations...), o.Annotations...),
	}
}

// empty reports whether no key and no All flag is present (an impossible
// match set; treated as All by callers out of caution).
func (h Hints) empty() bool {
	return !h.All && len(h.Classes) == 0 && len(h.Methods) == 0 && len(h.Annotations) == 0
}

// ---------------------------------------------------------------- AST --

type node interface {
	matches(Subject) bool
	hints() Hints
}

type orNode struct{ l, r node }
type andNode struct{ l, r node }
type notNode struct{ n node }

func (n orNode) matches(s Subject) bool  { return n.l.matches(s) || n.r.matches(s) }
func (n andNode) matches(s Subject) bool { return n.l.matches(s) && n.r.matches(s) }
func (n notNode) matches(s Subject) bool { return !n.n.matches(s) }

// An or covers only what both branches cover; an and is covered by either
// branch alone, so the narrower (non-All) side's keys suffice; a negation
// can select anything outside its operand and is never narrowable.
func (n orNode) hints() Hints { return n.l.hints().union(n.r.hints()) }
func (n andNode) hints() Hints {
	if h := n.l.hints(); !h.All {
		return h
	}
	return n.r.hints()
}
func (n notNode) hints() Hints { return Hints{All: true} }

// withinNode matches the declaring class (no subtype operator in within,
// matching AspectJ's lexical semantics approximated on classes).
type withinNode struct{ pattern pattern }

func (n withinNode) matches(s Subject) bool { return n.pattern.match(s.ClassName()) }

func (n withinNode) hints() Hints {
	if lit, ok := n.pattern.literal(); ok {
		return Hints{Classes: []string{lit}}
	}
	return Hints{All: true}
}

// annotationNode matches methods carrying a named annotation.
type annotationNode struct{ name string }

func (n annotationNode) matches(s Subject) bool { return s.HasAnnotation(n.name) }
func (n annotationNode) hints() Hints           { return Hints{Annotations: []string{n.name}} }

// sigNode matches a call/execution signature.
type sigNode struct {
	annotations []string
	ret         string  // "", "*", "void", or a concrete kind
	classPat    pattern // empty raw or "*" match any class
	subtypes    bool    // classPat+ — include inheritance chain
	namePat     pattern
	args        []string // each "int", "*", or ".."; nil == ".."
}

func (n sigNode) matches(s Subject) bool {
	for _, a := range n.annotations {
		if !s.HasAnnotation(a) {
			return false
		}
	}
	switch n.ret {
	case "", "*":
	case "void":
		if s.ReturnsValue() {
			return false
		}
	default:
		if !s.ReturnsValue() {
			return false
		}
	}
	if n.classPat.raw != "" && n.classPat.raw != "*" {
		if n.subtypes {
			if !s.ClassIsA(n.classPat.raw) && !n.classPat.match(s.ClassName()) {
				return false
			}
		} else if !n.classPat.match(s.ClassName()) {
			return false
		}
	}
	if !n.namePat.match(s.MethodName()) {
		return false
	}
	return argsMatch(n.args, s.ArgKinds())
}

func (n sigNode) hints() Hints {
	// Required annotations are the most selective key; an exact class (the
	// subtype operator reaches classes with other names, so it disables the
	// key) comes next; an exact method name last.
	if len(n.annotations) > 0 {
		return Hints{Annotations: []string{n.annotations[0]}}
	}
	if lit, ok := n.classPat.literal(); ok && !n.subtypes {
		return Hints{Classes: []string{lit}}
	}
	if lit, ok := n.namePat.literal(); ok {
		return Hints{Methods: []string{lit}}
	}
	return Hints{All: true}
}

func argsMatch(pats, kinds []string) bool {
	if pats == nil {
		return true // ".."
	}
	i := 0
	for pi, p := range pats {
		if p == ".." {
			// ".." swallows the rest; anything after ".." must match a
			// suffix — AOmpLib signatures never need that, so treat a
			// trailing ".." as match-rest.
			_ = pi
			return true
		}
		if i >= len(kinds) {
			return false
		}
		if p != "*" && p != kinds[i] {
			return false
		}
		i++
	}
	return i == len(kinds)
}

// ------------------------------------------------- compiled patterns --

// patKind classifies a compiled wildcard pattern by shape, so the common
// spellings ("relax*", "*Cols", "*force*", exact names) match with one
// strings primitive instead of a fragment scan.
type patKind uint8

const (
	patExact patKind = iota
	patAny
	patPrefix
	patSuffix
	patContains
	patGeneral
)

// pattern is a wildcard identifier pattern compiled at parse time: '*'
// matches any (possibly empty) sequence of characters.
type pattern struct {
	raw   string
	kind  patKind
	lit   string   // the literal fragment of exact/prefix/suffix/contains
	parts []string // '*'-split fragments of the general shape
}

// compilePattern classifies raw once; match never re-splits it.
func compilePattern(raw string) pattern {
	if raw == "*" {
		return pattern{raw: raw, kind: patAny}
	}
	if !strings.Contains(raw, "*") {
		return pattern{raw: raw, kind: patExact, lit: raw}
	}
	parts := strings.Split(raw, "*")
	switch {
	case len(parts) == 2 && parts[0] == "":
		return pattern{raw: raw, kind: patSuffix, lit: parts[1]}
	case len(parts) == 2 && parts[1] == "":
		return pattern{raw: raw, kind: patPrefix, lit: parts[0]}
	case len(parts) == 3 && parts[0] == "" && parts[2] == "" && parts[1] != "":
		return pattern{raw: raw, kind: patContains, lit: parts[1]}
	}
	return pattern{raw: raw, kind: patGeneral, parts: parts}
}

// literal returns the exact string the pattern requires, if it is
// wildcard-free (the indexable case).
func (p pattern) literal() (string, bool) {
	if p.kind == patExact && p.raw != "" {
		return p.lit, true
	}
	return "", false
}

// match reports whether s matches the compiled pattern.
func (p pattern) match(s string) bool {
	switch p.kind {
	case patAny:
		return true
	case patExact:
		return s == p.lit
	case patPrefix:
		return strings.HasPrefix(s, p.lit)
	case patSuffix:
		return strings.HasSuffix(s, p.lit)
	case patContains:
		return strings.Contains(s, p.lit)
	}
	// General shape: anchor first and last fragments; middle fragments
	// float in order.
	parts := p.parts
	if !strings.HasPrefix(s, parts[0]) {
		return false
	}
	s = s[len(parts[0]):]
	last := parts[len(parts)-1]
	for _, mid := range parts[1 : len(parts)-1] {
		if mid == "" {
			continue
		}
		idx := strings.Index(s, mid)
		if idx < 0 {
			return false
		}
		s = s[idx+len(mid):]
	}
	return strings.HasSuffix(s, last)
}
