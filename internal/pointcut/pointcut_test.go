package pointcut

import (
	"strings"
	"testing"
	"testing/quick"
)

// fakeJP implements Subject for tests.
type fakeJP struct {
	class   string
	method  string
	args    []string
	retsVal bool
	annos   []string
	isA     []string // class + supertypes + interfaces
}

func (f fakeJP) ClassName() string  { return f.class }
func (f fakeJP) MethodName() string { return f.method }
func (f fakeJP) ArgKinds() []string { return f.args }
func (f fakeJP) ReturnsValue() bool { return f.retsVal }
func (f fakeJP) HasAnnotation(name string) bool {
	for _, a := range f.annos {
		if a == name {
			return true
		}
	}
	return false
}
func (f fakeJP) ClassIsA(t string) bool {
	if t == f.class {
		return true
	}
	for _, s := range f.isA {
		if s == t {
			return true
		}
	}
	return false
}

var (
	dgefa    = fakeJP{class: "Linpack", method: "dgefa", retsVal: true}
	reduce   = fakeJP{class: "Linpack", method: "reduceAllCols", args: []string{"int", "int", "int"}}
	inter    = fakeJP{class: "Linpack", method: "interchange"}
	dscal    = fakeJP{class: "Linpack", method: "dscal"}
	forceLJ  = fakeJP{class: "LJParticle", method: "force", isA: []string{"Particle", "IParticle"}}
	forceEl  = fakeJP{class: "ElectroParticle", method: "force", isA: []string{"Particle", "IParticle"}}
	mdMove   = fakeJP{class: "MD", method: "domove"}
	annotAny = fakeJP{class: "MD", method: "runiters", annos: []string{"Parallel"}}
)

func TestPaperExamples(t *testing.T) {
	// Every pointcut the paper's Figure 7 aspect uses.
	cases := []struct {
		src     string
		match   []fakeJP
		nomatch []fakeJP
	}{
		{"call(int Linpack.dgefa(..))", []fakeJP{dgefa}, []fakeJP{reduce, inter}},
		{"call(void reduceAllCols(..))", []fakeJP{reduce}, []fakeJP{dgefa, inter}},
		{"call(void Linpack.interchange(..)) || call(void Linpack.dscal(..))",
			[]fakeJP{inter, dscal}, []fakeJP{dgefa, reduce}},
		{"call(void reduceAllCols(..)) || call(void Linpack.interchange(..)) || call(void Linpack.dscal(..))",
			[]fakeJP{reduce, inter, dscal}, []fakeJP{dgefa}},
		// Figure 4: call (void someMethod());
		{"call(void someMethod())", []fakeJP{{class: "X", method: "someMethod", args: []string{}}}, []fakeJP{dgefa}},
		// Figure 5: call(@Parallel * *(*)) — annotation style.
		{"call(@Parallel * *(..))", []fakeJP{annotAny}, []fakeJP{dgefa, mdMove}},
	}
	for _, c := range cases {
		pc, err := Parse(c.src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.src, err)
		}
		for _, jp := range c.match {
			if !pc.Matches(jp) {
				t.Errorf("%q should match %s.%s", c.src, jp.class, jp.method)
			}
		}
		for _, jp := range c.nomatch {
			if pc.Matches(jp) {
				t.Errorf("%q should NOT match %s.%s", c.src, jp.class, jp.method)
			}
		}
	}
}

func TestSubtypeOperator(t *testing.T) {
	pc := MustParse("call(* Particle+.force(..))")
	if !pc.Matches(forceLJ) || !pc.Matches(forceEl) {
		t.Error("Particle+ did not match implementations")
	}
	if pc.Matches(dgefa) {
		t.Error("Particle+ matched unrelated class")
	}
	// Interface binding — "pointcuts defined over Java interfaces".
	pc2 := MustParse("call(* IParticle+.force(..))")
	if !pc2.Matches(forceLJ) {
		t.Error("interface pointcut did not match implementer")
	}
	// Without '+', the concrete class name must match exactly.
	pc3 := MustParse("call(* Particle.force(..))")
	if pc3.Matches(forceLJ) {
		t.Error("non-subtype pattern matched subclass")
	}
}

func TestWildcardPatterns(t *testing.T) {
	cases := []struct {
		src  string
		jp   fakeJP
		want bool
	}{
		{"call(* *.force(..))", forceLJ, true},
		{"call(* Lin*.d*(..))", dgefa, true},
		{"call(* *Particle.force(..))", forceEl, true},
		{"call(* *Particle.force(..))", mdMove, false},
		{"call(* *.*Cols(..))", reduce, true},
		{"call(* *.re*All*(..))", reduce, true},
		{"call(* *.*(int,int,int))", reduce, true},
		{"call(* *.*(int,int,int))", dgefa, false},
		{"call(* *.*(int,..))", reduce, true},
		{"call(* *.*(*,*,*))", reduce, true},
		{"call(* *.*())", dgefa, true}, // dgefa exposes no parameters
		{"call(* *.*())", reduce, false},
	}
	for _, c := range cases {
		pc, err := Parse(c.src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.src, err)
		}
		if got := pc.Matches(c.jp); got != c.want {
			t.Errorf("%q.Matches(%s.%s) = %v, want %v", c.src, c.jp.class, c.jp.method, got, c.want)
		}
	}
}

func TestBooleanComposition(t *testing.T) {
	pc := MustParse("within(Linpack) && !call(* *.dgefa(..))")
	if pc.Matches(dgefa) {
		t.Error("negation failed")
	}
	if !pc.Matches(reduce) {
		t.Error("conjunction failed")
	}
	if pc.Matches(mdMove) {
		t.Error("within failed")
	}
	// Parentheses and precedence: && binds tighter than ||.
	pc2 := MustParse("call(* MD.*(..)) || within(Linpack) && call(* *.dgefa(..))")
	if !pc2.Matches(mdMove) || !pc2.Matches(dgefa) || pc2.Matches(reduce) {
		t.Error("precedence broken")
	}
	pc3 := MustParse("(call(* MD.*(..)) || within(Linpack)) && call(* *.dgefa(..))")
	if pc3.Matches(mdMove) {
		t.Error("parenthesised grouping broken")
	}
}

func TestAnnotationDesignator(t *testing.T) {
	pc := MustParse("annotation(@Parallel)")
	if !pc.Matches(annotAny) || pc.Matches(dgefa) {
		t.Error("annotation() designator broken")
	}
}

func TestVoidVsValueReturn(t *testing.T) {
	pc := MustParse("call(void Linpack.*(..))")
	if pc.Matches(dgefa) {
		t.Error("void matched value-returning method")
	}
	if !pc.Matches(reduce) {
		t.Error("void did not match void method")
	}
	pc2 := MustParse("call(int Linpack.*(..))")
	if !pc2.Matches(dgefa) || pc2.Matches(reduce) {
		t.Error("typed return matching broken")
	}
}

func TestExecutionEquivalentToCall(t *testing.T) {
	a := MustParse("call(* Linpack.dgefa(..))")
	b := MustParse("execution(* Linpack.dgefa(..))")
	if a.Matches(dgefa) != b.Matches(dgefa) {
		t.Error("call and execution disagree")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"call(",
		"call()",
		"call(void )",
		"frobnicate(* *(..))",
		"call(* *(..)) &&",
		"call(* *(..)) || ",
		"call(* *(..) ",
		"call(* a.b.c.d(..))",
		"within()",
		"annotation(Parallel)",
		"!(call(* *(..))",
		"call(* *(..)) extra",
		"call(void a.(..))",
		"call(* *(int,))",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	src := "call(int Linpack.dgefa(..)) && !within(MD)"
	pc := MustParse(src)
	if pc.String() != src {
		t.Errorf("String() = %q, want %q", pc.String(), src)
	}
}

// Property: a pointcut built from a literal class.method always matches
// exactly that joinpoint and never a differently-named one.
func TestLiteralMatchProperty(t *testing.T) {
	sanitize := func(s string) string {
		var b strings.Builder
		for _, r := range s {
			if (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') {
				b.WriteRune(r)
			}
		}
		if b.Len() == 0 {
			return "X"
		}
		return b.String()
	}
	f := func(cls, m, otherM string) bool {
		c, mm, om := sanitize(cls), sanitize(m), sanitize(otherM)
		pc, err := Parse("call(* " + c + "." + mm + "(..))")
		if err != nil {
			return false
		}
		self := fakeJP{class: c, method: mm}
		if !pc.Matches(self) {
			return false
		}
		if om != mm && pc.Matches(fakeJP{class: c, method: om}) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the compiled pattern "*"+s+"*" matches x iff x contains s.
func TestWildcardContainsProperty(t *testing.T) {
	f := func(s, x string) bool {
		if strings.Contains(s, "*") || strings.Contains(x, "*") {
			return true // skip degenerate inputs
		}
		return compilePattern("*"+s+"*").match(x) == strings.Contains(x, s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestCompilePatternShapes(t *testing.T) {
	cases := []struct {
		raw  string
		kind patKind
		yes  []string
		no   []string
	}{
		{"dgefa", patExact, []string{"dgefa"}, []string{"dgefaX", "Xdgefa", ""}},
		{"*", patAny, []string{"", "anything"}, nil},
		{"relax*", patPrefix, []string{"relax", "relaxRed"}, []string{"elax", "Xrelax"}},
		{"*Cols", patSuffix, []string{"Cols", "reduceAllCols"}, []string{"ColsX"}},
		{"*All*", patContains, []string{"All", "reduceAllCols"}, []string{"al", ""}},
		{"re*All*s", patGeneral, []string{"reduceAllCols", "reAlls"}, []string{"reduceAll", "xreAlls"}},
		{"**", patGeneral, []string{"", "x"}, nil},
	}
	for _, c := range cases {
		p := compilePattern(c.raw)
		if p.kind != c.kind {
			t.Errorf("compilePattern(%q).kind = %d, want %d", c.raw, p.kind, c.kind)
		}
		for _, s := range c.yes {
			if !p.match(s) {
				t.Errorf("pattern %q should match %q", c.raw, s)
			}
		}
		for _, s := range c.no {
			if p.match(s) {
				t.Errorf("pattern %q should NOT match %q", c.raw, s)
			}
		}
	}
	if lit, ok := compilePattern("dgefa").literal(); !ok || lit != "dgefa" {
		t.Error("exact pattern lost its literal")
	}
	if _, ok := compilePattern("d*").literal(); ok {
		t.Error("wildcard pattern claims a literal")
	}
}

func TestHints(t *testing.T) {
	cases := []struct {
		src  string
		want Hints
	}{
		{"call(int Linpack.dgefa(..))", Hints{Classes: []string{"Linpack"}}},
		{"call(void reduceAllCols(..))", Hints{Methods: []string{"reduceAllCols"}}},
		{"call(@Parallel * *(..))", Hints{Annotations: []string{"Parallel"}}},
		{"annotation(@Critical)", Hints{Annotations: []string{"Critical"}}},
		{"within(Linpack)", Hints{Classes: []string{"Linpack"}}},
		{"within(Lin*)", Hints{All: true}},
		{"call(* Particle+.force(..))", Hints{Methods: []string{"force"}}},
		{"call(* *.*(..))", Hints{All: true}},
		{"!within(MD)", Hints{All: true}},
		{"call(* A.x(..)) || call(* B.y(..))", Hints{Classes: []string{"A", "B"}}},
		{"call(* A.x(..)) || within(L*)", Hints{All: true}},
		{"within(L*) && call(* *.dgefa(..))", Hints{Methods: []string{"dgefa"}}},
		{"within(Linpack) && call(* *.dgefa(..))", Hints{Classes: []string{"Linpack"}}},
	}
	for _, c := range cases {
		h := MustParse(c.src).Hints()
		if h.All != c.want.All ||
			strings.Join(h.Classes, ",") != strings.Join(c.want.Classes, ",") ||
			strings.Join(h.Methods, ",") != strings.Join(c.want.Methods, ",") ||
			strings.Join(h.Annotations, ",") != strings.Join(c.want.Annotations, ",") {
			t.Errorf("Hints(%q) = %+v, want %+v", c.src, h, c.want)
		}
	}
}

// Property: Hints is a superset contract — any subject a pointcut matches
// must fall in one of the hint buckets (or All must be set).
func TestHintsSupersetProperty(t *testing.T) {
	subjects := []fakeJP{dgefa, reduce, inter, dscal, forceLJ, forceEl, mdMove, annotAny}
	exprs := []string{
		"call(int Linpack.dgefa(..))",
		"call(* Particle+.force(..))",
		"call(@Parallel * *(..))",
		"within(Linpack) && !call(* *.dgefa(..))",
		"call(* MD.*(..)) || within(Linpack)",
		"call(* *.re*All*(..))",
		"annotation(@Parallel) || call(* *.domove(..))",
	}
	for _, src := range exprs {
		pc := MustParse(src)
		h := pc.Hints()
		for _, s := range subjects {
			if !pc.Matches(s) || h.All {
				continue
			}
			covered := false
			for _, c := range h.Classes {
				if c == s.class {
					covered = true
				}
			}
			for _, m := range h.Methods {
				if m == s.method {
					covered = true
				}
			}
			for _, a := range h.Annotations {
				if s.HasAnnotation(a) {
					covered = true
				}
			}
			if !covered {
				t.Errorf("%q matches %s.%s but hints %+v do not cover it", src, s.class, s.method, h)
			}
		}
	}
}

func TestParseDepthLimit(t *testing.T) {
	deep := strings.Repeat("!", maxParseDepth+8) + "within(X)"
	if _, err := Parse(deep); err == nil {
		t.Error("deeply nested expression parsed, want depth error")
	}
	ok := strings.Repeat("(", 10) + "within(X)" + strings.Repeat(")", 10)
	if _, err := Parse(ok); err != nil {
		t.Errorf("moderately nested expression failed: %v", err)
	}
}

func BenchmarkMatch(b *testing.B) {
	pc := MustParse("call(void Linpack.interchange(..)) || call(void Linpack.dscal(..))")
	for i := 0; i < b.N; i++ {
		pc.Matches(dscal)
	}
}

func BenchmarkParse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		MustParse("within(Linpack) && !call(* *.dgefa(int,..)) || annotation(@For)")
	}
}
