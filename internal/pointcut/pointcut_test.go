package pointcut

import (
	"strings"
	"testing"
	"testing/quick"
)

// fakeJP implements Subject for tests.
type fakeJP struct {
	class   string
	method  string
	args    []string
	retsVal bool
	annos   []string
	isA     []string // class + supertypes + interfaces
}

func (f fakeJP) ClassName() string  { return f.class }
func (f fakeJP) MethodName() string { return f.method }
func (f fakeJP) ArgKinds() []string { return f.args }
func (f fakeJP) ReturnsValue() bool { return f.retsVal }
func (f fakeJP) HasAnnotation(name string) bool {
	for _, a := range f.annos {
		if a == name {
			return true
		}
	}
	return false
}
func (f fakeJP) ClassIsA(t string) bool {
	if t == f.class {
		return true
	}
	for _, s := range f.isA {
		if s == t {
			return true
		}
	}
	return false
}

var (
	dgefa    = fakeJP{class: "Linpack", method: "dgefa", retsVal: true}
	reduce   = fakeJP{class: "Linpack", method: "reduceAllCols", args: []string{"int", "int", "int"}}
	inter    = fakeJP{class: "Linpack", method: "interchange"}
	dscal    = fakeJP{class: "Linpack", method: "dscal"}
	forceLJ  = fakeJP{class: "LJParticle", method: "force", isA: []string{"Particle", "IParticle"}}
	forceEl  = fakeJP{class: "ElectroParticle", method: "force", isA: []string{"Particle", "IParticle"}}
	mdMove   = fakeJP{class: "MD", method: "domove"}
	annotAny = fakeJP{class: "MD", method: "runiters", annos: []string{"Parallel"}}
)

func TestPaperExamples(t *testing.T) {
	// Every pointcut the paper's Figure 7 aspect uses.
	cases := []struct {
		src     string
		match   []fakeJP
		nomatch []fakeJP
	}{
		{"call(int Linpack.dgefa(..))", []fakeJP{dgefa}, []fakeJP{reduce, inter}},
		{"call(void reduceAllCols(..))", []fakeJP{reduce}, []fakeJP{dgefa, inter}},
		{"call(void Linpack.interchange(..)) || call(void Linpack.dscal(..))",
			[]fakeJP{inter, dscal}, []fakeJP{dgefa, reduce}},
		{"call(void reduceAllCols(..)) || call(void Linpack.interchange(..)) || call(void Linpack.dscal(..))",
			[]fakeJP{reduce, inter, dscal}, []fakeJP{dgefa}},
		// Figure 4: call (void someMethod());
		{"call(void someMethod())", []fakeJP{{class: "X", method: "someMethod", args: []string{}}}, []fakeJP{dgefa}},
		// Figure 5: call(@Parallel * *(*)) — annotation style.
		{"call(@Parallel * *(..))", []fakeJP{annotAny}, []fakeJP{dgefa, mdMove}},
	}
	for _, c := range cases {
		pc, err := Parse(c.src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.src, err)
		}
		for _, jp := range c.match {
			if !pc.Matches(jp) {
				t.Errorf("%q should match %s.%s", c.src, jp.class, jp.method)
			}
		}
		for _, jp := range c.nomatch {
			if pc.Matches(jp) {
				t.Errorf("%q should NOT match %s.%s", c.src, jp.class, jp.method)
			}
		}
	}
}

func TestSubtypeOperator(t *testing.T) {
	pc := MustParse("call(* Particle+.force(..))")
	if !pc.Matches(forceLJ) || !pc.Matches(forceEl) {
		t.Error("Particle+ did not match implementations")
	}
	if pc.Matches(dgefa) {
		t.Error("Particle+ matched unrelated class")
	}
	// Interface binding — "pointcuts defined over Java interfaces".
	pc2 := MustParse("call(* IParticle+.force(..))")
	if !pc2.Matches(forceLJ) {
		t.Error("interface pointcut did not match implementer")
	}
	// Without '+', the concrete class name must match exactly.
	pc3 := MustParse("call(* Particle.force(..))")
	if pc3.Matches(forceLJ) {
		t.Error("non-subtype pattern matched subclass")
	}
}

func TestWildcardPatterns(t *testing.T) {
	cases := []struct {
		src  string
		jp   fakeJP
		want bool
	}{
		{"call(* *.force(..))", forceLJ, true},
		{"call(* Lin*.d*(..))", dgefa, true},
		{"call(* *Particle.force(..))", forceEl, true},
		{"call(* *Particle.force(..))", mdMove, false},
		{"call(* *.*Cols(..))", reduce, true},
		{"call(* *.re*All*(..))", reduce, true},
		{"call(* *.*(int,int,int))", reduce, true},
		{"call(* *.*(int,int,int))", dgefa, false},
		{"call(* *.*(int,..))", reduce, true},
		{"call(* *.*(*,*,*))", reduce, true},
		{"call(* *.*())", dgefa, true}, // dgefa exposes no parameters
		{"call(* *.*())", reduce, false},
	}
	for _, c := range cases {
		pc, err := Parse(c.src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.src, err)
		}
		if got := pc.Matches(c.jp); got != c.want {
			t.Errorf("%q.Matches(%s.%s) = %v, want %v", c.src, c.jp.class, c.jp.method, got, c.want)
		}
	}
}

func TestBooleanComposition(t *testing.T) {
	pc := MustParse("within(Linpack) && !call(* *.dgefa(..))")
	if pc.Matches(dgefa) {
		t.Error("negation failed")
	}
	if !pc.Matches(reduce) {
		t.Error("conjunction failed")
	}
	if pc.Matches(mdMove) {
		t.Error("within failed")
	}
	// Parentheses and precedence: && binds tighter than ||.
	pc2 := MustParse("call(* MD.*(..)) || within(Linpack) && call(* *.dgefa(..))")
	if !pc2.Matches(mdMove) || !pc2.Matches(dgefa) || pc2.Matches(reduce) {
		t.Error("precedence broken")
	}
	pc3 := MustParse("(call(* MD.*(..)) || within(Linpack)) && call(* *.dgefa(..))")
	if pc3.Matches(mdMove) {
		t.Error("parenthesised grouping broken")
	}
}

func TestAnnotationDesignator(t *testing.T) {
	pc := MustParse("annotation(@Parallel)")
	if !pc.Matches(annotAny) || pc.Matches(dgefa) {
		t.Error("annotation() designator broken")
	}
}

func TestVoidVsValueReturn(t *testing.T) {
	pc := MustParse("call(void Linpack.*(..))")
	if pc.Matches(dgefa) {
		t.Error("void matched value-returning method")
	}
	if !pc.Matches(reduce) {
		t.Error("void did not match void method")
	}
	pc2 := MustParse("call(int Linpack.*(..))")
	if !pc2.Matches(dgefa) || pc2.Matches(reduce) {
		t.Error("typed return matching broken")
	}
}

func TestExecutionEquivalentToCall(t *testing.T) {
	a := MustParse("call(* Linpack.dgefa(..))")
	b := MustParse("execution(* Linpack.dgefa(..))")
	if a.Matches(dgefa) != b.Matches(dgefa) {
		t.Error("call and execution disagree")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"call(",
		"call()",
		"call(void )",
		"frobnicate(* *(..))",
		"call(* *(..)) &&",
		"call(* *(..)) || ",
		"call(* *(..) ",
		"call(* a.b.c.d(..))",
		"within()",
		"annotation(Parallel)",
		"!(call(* *(..))",
		"call(* *(..)) extra",
		"call(void a.(..))",
		"call(* *(int,))",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	src := "call(int Linpack.dgefa(..)) && !within(MD)"
	pc := MustParse(src)
	if pc.String() != src {
		t.Errorf("String() = %q, want %q", pc.String(), src)
	}
}

// Property: a pointcut built from a literal class.method always matches
// exactly that joinpoint and never a differently-named one.
func TestLiteralMatchProperty(t *testing.T) {
	sanitize := func(s string) string {
		var b strings.Builder
		for _, r := range s {
			if (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') {
				b.WriteRune(r)
			}
		}
		if b.Len() == 0 {
			return "X"
		}
		return b.String()
	}
	f := func(cls, m, otherM string) bool {
		c, mm, om := sanitize(cls), sanitize(m), sanitize(otherM)
		pc, err := Parse("call(* " + c + "." + mm + "(..))")
		if err != nil {
			return false
		}
		self := fakeJP{class: c, method: mm}
		if !pc.Matches(self) {
			return false
		}
		if om != mm && pc.Matches(fakeJP{class: c, method: om}) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: wildcardMatch("*"+s+"*", x) is true iff x contains s.
func TestWildcardContainsProperty(t *testing.T) {
	f := func(s, x string) bool {
		if strings.Contains(s, "*") || strings.Contains(x, "*") {
			return true // skip degenerate inputs
		}
		return wildcardMatch("*"+s+"*", x) == strings.Contains(x, s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMatch(b *testing.B) {
	pc := MustParse("call(void Linpack.interchange(..)) || call(void Linpack.dscal(..))")
	for i := 0; i < b.N; i++ {
		pc.Matches(dscal)
	}
}

func BenchmarkParse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		MustParse("within(Linpack) && !call(* *.dgefa(int,..)) || annotation(@For)")
	}
}
