package pointcut

import (
	"strings"
	"testing"
)

// FuzzParsePointcut pins three contracts of the parser:
//
//  1. No input — however hostile — panics or hangs; garbage returns an
//     error (the depth limit turns kilobytes of '(' into an error, not a
//     stack overflow).
//  2. Accepted inputs round-trip: Parse(p.String()) succeeds, because
//     String returns the original source.
//  3. Accepted inputs honour the Hints superset contract: any subject the
//     pointcut matches is covered by a hint bucket or All is set.
func FuzzParsePointcut(f *testing.F) {
	seeds := []string{
		"call(int Linpack.dgefa(..))",
		"call(void reduceAllCols(..))",
		"execution(* Particle+.force(..))",
		"call(@Parallel * *(..))",
		"annotation(@Critical)",
		"within(Linpack) && !call(* *.idamax(..))",
		"call(* MD.*(..)) || within(Lin*) && call(* *.d*(int,..))",
		"(call(* *.*()))",
		"call(* *.re*All*s(*,*,*))",
		strings.Repeat("(", 80) + "within(X)" + strings.Repeat(")", 80),
		strings.Repeat("!", 100) + "within(X)",
		"call(",
		"frobnicate(x)",
		"call(* a.b.c.d(..))",
		"@@@&&||**..++",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	subjects := []fakeJP{dgefa, reduce, forceLJ, mdMove, annotAny,
		{class: "X", method: "X"}, {class: "", method: ""}}
	f.Fuzz(func(t *testing.T, src string) {
		pc, err := Parse(src)
		if err != nil {
			return // garbage is allowed, as long as it does not panic
		}
		if pc.String() != src {
			t.Fatalf("String() = %q, want original %q", pc.String(), src)
		}
		if _, err := Parse(pc.String()); err != nil {
			t.Fatalf("round-trip Parse(%q) failed: %v", pc.String(), err)
		}
		h := pc.Hints()
		for _, s := range subjects {
			if !pc.Matches(s) || h.All {
				continue
			}
			covered := false
			for _, c := range h.Classes {
				covered = covered || c == s.class
			}
			for _, m := range h.Methods {
				covered = covered || m == s.method
			}
			for _, a := range h.Annotations {
				covered = covered || s.HasAnnotation(a)
			}
			if !covered {
				t.Fatalf("pointcut %q matches %s.%s but hints %+v do not cover it",
					src, s.class, s.method, h)
			}
		}
	})
}
