package pointcut

import (
	"fmt"
	"strings"
	"unicode"
)

// ------------------------------------------------------------- lexer --

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokLParen
	tokRParen
	tokDot
	tokDotDot
	tokComma
	tokAnd
	tokOr
	tokNot
	tokAt
	tokPlus
	tokStar
)

type token struct {
	kind tokKind
	text string
}

type lexer struct {
	src    string
	pos    int
	peeked *token
}

func newLexer(src string) *lexer { return &lexer{src: src} }

func (l *lexer) peek() token {
	if l.peeked == nil {
		t := l.scan()
		l.peeked = &t
	}
	return *l.peeked
}

func (l *lexer) next() token {
	if l.peeked != nil {
		t := *l.peeked
		l.peeked = nil
		return t
	}
	return l.scan()
}

func (l *lexer) scan() token {
	for l.pos < len(l.src) && unicode.IsSpace(rune(l.src[l.pos])) {
		l.pos++
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF}
	}
	c := l.src[l.pos]
	switch c {
	case '(':
		l.pos++
		return token{tokLParen, "("}
	case ')':
		l.pos++
		return token{tokRParen, ")"}
	case ',':
		l.pos++
		return token{tokComma, ","}
	case '@':
		l.pos++
		return token{tokAt, "@"}
	case '+':
		l.pos++
		return token{tokPlus, "+"}
	case '*':
		// '*' may begin a wildcard identifier fragment like "*Cols".
		return l.scanIdent()
	case '.':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '.' {
			l.pos += 2
			return token{tokDotDot, ".."}
		}
		l.pos++
		return token{tokDot, "."}
	case '&':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '&' {
			l.pos += 2
			return token{tokAnd, "&&"}
		}
	case '|':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '|' {
			l.pos += 2
			return token{tokOr, "||"}
		}
	case '!':
		l.pos++
		return token{tokNot, "!"}
	}
	if isIdentRune(rune(c)) {
		return l.scanIdent()
	}
	bad := string(c)
	l.pos++
	return token{tokIdent, bad} // surfaced as a parse error by callers
}

func isIdentRune(r rune) bool {
	return r == '_' || r == '*' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

func (l *lexer) scanIdent() token {
	start := l.pos
	for l.pos < len(l.src) && isIdentRune(rune(l.src[l.pos])) {
		l.pos++
	}
	text := l.src[start:l.pos]
	if text == "*" {
		return token{tokStar, "*"}
	}
	return token{tokIdent, text}
}

// ------------------------------------------------------------ parser --

// maxParseDepth bounds expression nesting so hostile inputs (kilobytes of
// '(' or '!') fail with an error instead of exhausting the goroutine
// stack — a contract the fuzz harness pins.
const maxParseDepth = 64

type parser struct {
	lex   *lexer
	depth int
}

func (p *parser) parseExpr() (node, error) {
	p.depth++
	defer func() { p.depth-- }()
	if p.depth > maxParseDepth {
		return nil, fmt.Errorf("expression nested deeper than %d", maxParseDepth)
	}
	return p.parseOr()
}

func (p *parser) parseOr() (node, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.lex.peek().kind == tokOr {
		p.lex.next()
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = orNode{left, right}
	}
	return left, nil
}

func (p *parser) parseAnd() (node, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.lex.peek().kind == tokAnd {
		p.lex.next()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = andNode{left, right}
	}
	return left, nil
}

func (p *parser) parseUnary() (node, error) {
	p.depth++
	defer func() { p.depth-- }()
	if p.depth > maxParseDepth {
		return nil, fmt.Errorf("expression nested deeper than %d", maxParseDepth)
	}
	switch tok := p.lex.peek(); tok.kind {
	case tokNot:
		p.lex.next()
		n, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return notNode{n}, nil
	case tokLParen:
		p.lex.next()
		n, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if t := p.lex.next(); t.kind != tokRParen {
			return nil, fmt.Errorf("expected ')', got %q", t.text)
		}
		return n, nil
	case tokIdent:
		return p.parsePrimitive()
	default:
		return nil, fmt.Errorf("unexpected %q", tok.text)
	}
}

func (p *parser) parsePrimitive() (node, error) {
	kw := p.lex.next()
	if t := p.lex.next(); t.kind != tokLParen {
		return nil, fmt.Errorf("expected '(' after %q", kw.text)
	}
	var n node
	var err error
	switch kw.text {
	case "call", "execution":
		n, err = p.parseSignature()
	case "within":
		pat, perr := p.parseTypeFragment()
		if perr != nil {
			return nil, perr
		}
		n = withinNode{pattern: compilePattern(pat)}
	case "annotation":
		if t := p.lex.next(); t.kind != tokAt {
			return nil, fmt.Errorf("expected '@' in annotation()")
		}
		name := p.lex.next()
		if name.kind != tokIdent {
			return nil, fmt.Errorf("expected annotation name")
		}
		n = annotationNode{name: name.text}
	default:
		return nil, fmt.Errorf("unknown pointcut designator %q", kw.text)
	}
	if err != nil {
		return nil, err
	}
	if t := p.lex.next(); t.kind != tokRParen {
		return nil, fmt.Errorf("expected ')' to close %s, got %q", kw.text, t.text)
	}
	return n, nil
}

// parseTypeFragment consumes one identifier-or-star fragment.
func (p *parser) parseTypeFragment() (string, error) {
	t := p.lex.next()
	if t.kind != tokIdent && t.kind != tokStar {
		return "", fmt.Errorf("expected type pattern, got %q", t.text)
	}
	return t.text, nil
}

// parseSignature parses the body of call(...)/execution(...).
func (p *parser) parseSignature() (node, error) {
	sig := sigNode{}

	// Leading annotations: call(@Parallel * *(..)).
	for p.lex.peek().kind == tokAt {
		p.lex.next()
		name := p.lex.next()
		if name.kind != tokIdent {
			return nil, fmt.Errorf("expected annotation name after '@'")
		}
		sig.annotations = append(sig.annotations, name.text)
	}

	// Collect fragments up to the argument list; they form
	// [ret] [class '.'] name, each optionally '*'-wildcarded, class
	// optionally suffixed '+'.
	type frag struct {
		text string
		plus bool
	}
	var frags []frag
	var dotted bool // whether a '.' separates the last two fragments
	for {
		tok := p.lex.peek()
		if tok.kind == tokLParen {
			break
		}
		switch tok.kind {
		case tokIdent, tokStar:
			p.lex.next()
			f := frag{text: tok.text}
			if p.lex.peek().kind == tokPlus {
				p.lex.next()
				f.plus = true
			}
			frags = append(frags, f)
		case tokDot:
			p.lex.next()
			dotted = true
			// The next fragment is the method name; merge handled below.
			tok2 := p.lex.next()
			if tok2.kind != tokIdent && tok2.kind != tokStar {
				return nil, fmt.Errorf("expected method name after '.', got %q", tok2.text)
			}
			frags = append(frags, frag{text: "." + tok2.text})
		default:
			return nil, fmt.Errorf("unexpected %q in signature", tok.text)
		}
	}
	if len(frags) == 0 {
		return nil, fmt.Errorf("empty signature")
	}

	// The final fragment is the method name (possibly ".name" if dotted);
	// the one before it (if dotted) is the class; an additional leading
	// fragment is the return pattern.
	last := frags[len(frags)-1]
	rest := frags[:len(frags)-1]
	if dotted && strings.HasPrefix(last.text, ".") {
		sig.namePat = compilePattern(last.text[1:])
		if len(rest) == 0 {
			return nil, fmt.Errorf("dangling '.' in signature")
		}
		cls := rest[len(rest)-1]
		sig.classPat, sig.subtypes = compilePattern(cls.text), cls.plus
		rest = rest[:len(rest)-1]
	} else {
		sig.namePat = compilePattern(last.text)
	}
	switch len(rest) {
	case 0:
	case 1:
		sig.ret = rest[0].text
	default:
		return nil, fmt.Errorf("too many fragments in signature")
	}

	// Argument list.
	if t := p.lex.next(); t.kind != tokLParen {
		return nil, fmt.Errorf("expected '(' for argument list")
	}
	if p.lex.peek().kind == tokRParen {
		p.lex.next()
		sig.args = []string{} // exactly zero args
		return sig, nil
	}
	var args []string
	for {
		t := p.lex.next()
		switch t.kind {
		case tokDotDot:
			args = append(args, "..")
		case tokStar:
			args = append(args, "*")
		case tokIdent:
			args = append(args, t.text)
		default:
			return nil, fmt.Errorf("unexpected %q in argument list", t.text)
		}
		nxt := p.lex.next()
		if nxt.kind == tokRParen {
			break
		}
		if nxt.kind != tokComma {
			return nil, fmt.Errorf("expected ',' or ')' in argument list, got %q", nxt.text)
		}
	}
	// "(..)" alone means any args — canonicalise to nil.
	if len(args) == 1 && args[0] == ".." {
		sig.args = nil
	} else {
		sig.args = args
	}
	return sig, nil
}
