// Package weaver is the Go analogue of the AspectJ weaver that AOmpLib is
// built on (paper §III.B/§IV). Base programs register their externally
// visible methods — the joinpoints — through typed wrappers; aspect modules
// contribute *around advice* selected by pointcuts; Weave composes, for
// every method, the matching advice into a wrapper chain exactly as the
// AspectJ compiler rewrites `m` into a woven `m` calling `original_m`
// (paper Fig. 12). Unweave restores the direct body, which is the
// library's "sequential semantics": a program with its aspects unplugged
// is the original sequential program.
//
// Method registration mirrors the paper's refactoring discipline: multiple
// statements are grouped "by moving those statements into an externally
// visible method" (M2M), and loops become *for methods* exposing
// (start, end, step) in their first three int parameters (M2FOR).
package weaver

// Kind classifies a joinpoint by its exposed signature. AOmpLib binds all
// constructs to method executions; four signature shapes cover the whole
// library (closure-captured parameters are not part of the
// parallelisation API and therefore not modelled).
type Kind int

const (
	// ProcKind is a plain method: func().
	ProcKind Kind = iota
	// ForKind is a for method: func(start, end, step int) (M2FOR refactor).
	ForKind
	// KeyedKind is a method exposing one int key: func(key int) — used by
	// @Ordered (iteration index) and case-specific per-key locking.
	KeyedKind
	// ValueKind is a value-returning method: func() any — used by
	// @FutureTask and the broadcasting forms of @Single/@Master.
	ValueKind
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case ProcKind:
		return "proc"
	case ForKind:
		return "for"
	case KeyedKind:
		return "keyed"
	case ValueKind:
		return "value"
	default:
		return "unknown"
	}
}

// argKinds reports the exposed parameter kinds used for pointcut matching.
func (k Kind) argKinds() []string {
	switch k {
	case ForKind:
		return []string{"int", "int", "int"}
	case KeyedKind:
		return []string{"int"}
	default:
		return []string{}
	}
}

// Annotation is a plain-Java-annotation analogue attached to a joinpoint
// via Program.Annotate (paper §III.B: "the library can be used with plain
// Java annotations"). Concrete annotation types live in the core package.
type Annotation interface {
	// AnnotationName is the name matched by @Name pointcuts.
	AnnotationName() string
}

// Class is a declaring scope for joinpoints, carrying the inheritance
// metadata pointcuts match against: "a pointcut can act upon all
// implementations of a method (including overriding methods) and also can
// act upon Java interfaces".
type Class struct {
	program    *Program
	name       string
	extends    *Class
	implements []string
}

// Name returns the class name.
func (c *Class) Name() string { return c.name }

// isA reports whether the class is, extends, or implements typeName.
func (c *Class) isA(typeName string) bool {
	for cl := c; cl != nil; cl = cl.extends {
		if cl.name == typeName {
			return true
		}
		for _, i := range cl.implements {
			if i == typeName {
				return true
			}
		}
	}
	return false
}

// Joinpoint identifies one method of one class. It implements
// pointcut.Subject.
type Joinpoint struct {
	class       *Class
	name        string
	kind        Kind
	annotations []Annotation
}

// ClassName implements pointcut.Subject.
func (j *Joinpoint) ClassName() string { return j.class.name }

// MethodName implements pointcut.Subject.
func (j *Joinpoint) MethodName() string { return j.name }

// ArgKinds implements pointcut.Subject.
func (j *Joinpoint) ArgKinds() []string { return j.kind.argKinds() }

// ReturnsValue implements pointcut.Subject.
func (j *Joinpoint) ReturnsValue() bool { return j.kind == ValueKind }

// HasAnnotation implements pointcut.Subject.
func (j *Joinpoint) HasAnnotation(name string) bool {
	for _, a := range j.annotations {
		if a.AnnotationName() == name {
			return true
		}
	}
	return false
}

// ClassIsA implements pointcut.Subject.
func (j *Joinpoint) ClassIsA(typeName string) bool { return j.class.isA(typeName) }

// Kind returns the joinpoint's signature kind.
func (j *Joinpoint) Kind() Kind { return j.kind }

// FQN returns "Class.method".
func (j *Joinpoint) FQN() string { return j.class.name + "." + j.name }

// Annotations returns the annotations attached to the joinpoint.
func (j *Joinpoint) Annotations() []Annotation { return j.annotations }
