package weaver

import (
	"sync"
	"sync/atomic"

	"aomplib/internal/rt"
)

// Call is the reified invocation flowing through an advice chain. Around
// advice may inspect and rewrite it before proceeding — the for
// work-sharing aspects rewrite Lo/Hi/Step exactly as the paper's advice
// "gathers the first two method parameters ... and calls the original
// method with thread specific parameters" (Fig. 10).
type Call struct {
	// JP is the joinpoint being invoked.
	JP *Joinpoint
	// Lo, Hi, Step carry the iteration space of ForKind methods.
	Lo, Hi, Step int
	// Key carries the key of KeyedKind methods (e.g. an iteration index
	// for @Ordered, or a particle index for per-key locking).
	Key int
	// Ret carries the result of ValueKind methods.
	Ret any
	// Worker is the team worker executing the call, nil outside parallel
	// regions. The region advice sets it for each team member; for calls
	// made within a region's dynamic extent it is resolved from
	// goroutine-local state on entry.
	Worker *rt.Worker
}

// HandlerFunc is one stage of an advice chain; the innermost handler is
// the original method body.
type HandlerFunc func(*Call)

// callPool recycles Call objects so the woven dispatch hot path allocates
// nothing: the reified invocation would otherwise escape to the heap on
// every call, because the composed chain is opaque to escape analysis.
var callPool = sync.Pool{New: func() any { return new(Call) }}

// GetCall returns a zeroed Call from the pool. Advice that re-dispatches
// copies of a call (work-sharing sub-ranges, per-worker region copies) uses
// the pool too, keeping those paths allocation-free at steady state.
func GetCall() *Call {
	return callPool.Get().(*Call)
}

// PutCall recycles c. The caller must not retain c afterwards; any advice
// that needs call state beyond the invocation copies the Call by value
// (tasks and futures do exactly that).
func PutCall(c *Call) {
	*c = Call{}
	callPool.Put(c)
}

// chain is an immutable woven pipeline, swapped atomically so weaving and
// unweaving are safe while calls are in flight.
type chain struct {
	handler HandlerFunc
	// needsWorker records whether any advice in the chain wants the
	// current worker resolved; unwoven methods skip the lookup entirely.
	needsWorker bool
	// applied lists the advice outermost-first, for weave reports.
	applied []appliedAdvice
}

type appliedAdvice struct {
	aspect string
	advice Advice
	// pointcut is the source form of the matcher that selected the
	// joinpoint, surfaced by Report for -explain tooling.
	pointcut string
	// gate is the advice's enable word; nil on ungated programs.
	gate *gate
}

// Method is a registered joinpoint together with its body and current
// woven chain.
type Method struct {
	jp      *Joinpoint
	body    HandlerFunc
	rawBody any
	current atomic.Pointer[chain]
}

// JP returns the method's joinpoint.
func (m *Method) JP() *Joinpoint { return m.jp }

// BodyFunc returns the original function the method was registered with
// (e.g. a func(lo, hi, step int) for ForKind). The static-weave backend
// (cmd/weavegen) uses it to call unadvised bodies directly, with no Call
// reification and no chain load.
func (m *Method) BodyFunc() any { return m.rawBody }

func (m *Method) invoke(c *Call) {
	ch := m.current.Load()
	if ch.needsWorker && c.Worker == nil {
		c.Worker = rt.Current()
	}
	ch.handler(c)
}

func (m *Method) reset() {
	m.current.Store(&chain{handler: m.body})
}

// Proc registers a plain method and returns its woven entry point. The
// returned function replaces direct calls to body in the base program —
// the analogue of AspectJ rewriting call sites (paper Fig. 12).
func (c *Class) Proc(name string, body func()) func() {
	m := c.register(name, ProcKind, func(*Call) { body() }, body)
	return func() {
		call := GetCall()
		call.JP = m.jp
		m.invoke(call)
		PutCall(call)
	}
}

// ForProc registers a for method (M2FOR refactor): the loop iteration
// space is exposed in the first three int parameters so pluggable aspects
// can rewrite the range.
func (c *Class) ForProc(name string, body func(lo, hi, step int)) func(lo, hi, step int) {
	m := c.register(name, ForKind, func(call *Call) { body(call.Lo, call.Hi, call.Step) }, body)
	return func(lo, hi, step int) {
		call := GetCall()
		call.JP, call.Lo, call.Hi, call.Step = m.jp, lo, hi, step
		m.invoke(call)
		PutCall(call)
	}
}

// KeyedProc registers a method exposing a single int key.
func (c *Class) KeyedProc(name string, body func(key int)) func(key int) {
	m := c.register(name, KeyedKind, func(call *Call) { body(call.Key) }, body)
	return func(key int) {
		call := GetCall()
		call.JP, call.Key = m.jp, key
		m.invoke(call)
		PutCall(call)
	}
}

// ValueProc registers a value-returning method. When woven with
// @Single/@Master the value is broadcast to the team; sequentially it is
// simply the body's result.
func (c *Class) ValueProc(name string, body func() any) func() any {
	m := c.register(name, ValueKind, func(call *Call) { call.Ret = body() }, body)
	return func() any {
		call := GetCall()
		call.JP = m.jp
		m.invoke(call)
		ret := call.Ret
		PutCall(call)
		return ret
	}
}

// FutureProc registers a value-returning method invoked through a Future.
// Unwoven (or without a @FutureTask aspect) the future is resolved
// synchronously, preserving sequential semantics; woven with @FutureTask
// the body runs asynchronously and the future's getter is the
// synchronisation point (@FutureResult).
func (c *Class) FutureProc(name string, body func() any) func() *rt.Future {
	m := c.register(name, ValueKind, func(call *Call) { call.Ret = body() }, body)
	return func() *rt.Future {
		call := GetCall()
		call.JP = m.jp
		m.invoke(call)
		ret := call.Ret
		PutCall(call)
		if f, ok := ret.(*rt.Future); ok {
			return f
		}
		return rt.ResolvedFuture(ret)
	}
}
