package weaver

import (
	"fmt"
	"sync/atomic"
	"testing"

	"aomplib/internal/pointcut"
)

// traceAdvice appends its tag around the invocation, recording wrap order.
type traceAdvice struct {
	tag    string
	prec   int
	log    *[]string
	worker bool
}

func (t traceAdvice) AdviceName() string { return t.tag }
func (t traceAdvice) Precedence() int    { return t.prec }
func (t traceAdvice) NeedsWorker() bool  { return t.worker }
func (t traceAdvice) Wrap(jp *Joinpoint, next HandlerFunc) HandlerFunc {
	return func(c *Call) {
		*t.log = append(*t.log, t.tag+">")
		next(c)
		*t.log = append(*t.log, "<"+t.tag)
	}
}

func bind(pc string, a Advice) Binding {
	return Binding{Matcher: pointcut.MustParse(pc), Advice: a}
}

func TestUnwovenCallsBodyDirectly(t *testing.T) {
	p := NewProgram("test")
	var ran bool
	f := p.Class("A").Proc("m", func() { ran = true })
	f()
	if !ran {
		t.Fatal("body did not run")
	}
}

func TestWeaveAppliesMatchingAdviceOnly(t *testing.T) {
	p := NewProgram("test")
	a := p.Class("A")
	var log []string
	m1 := a.Proc("hit", func() { log = append(log, "hit") })
	m2 := a.Proc("miss", func() { log = append(log, "miss") })
	p.Use(&SimpleAspect{Name: "asp", Bind: []Binding{
		bind("call(* A.hit(..))", traceAdvice{tag: "t", prec: 10, log: &log}),
	}})
	p.MustWeave()
	m1()
	m2()
	want := []string{"t>", "hit", "<t", "miss"}
	if fmt.Sprint(log) != fmt.Sprint(want) {
		t.Fatalf("log = %v, want %v", log, want)
	}
}

func TestPrecedenceOrdersWrapping(t *testing.T) {
	p := NewProgram("test")
	var log []string
	m := p.Class("A").Proc("m", func() { log = append(log, "body") })
	p.Use(&SimpleAspect{Name: "asp", Bind: []Binding{
		bind("call(* A.m(..))", traceAdvice{tag: "inner", prec: 1, log: &log}),
		bind("call(* A.m(..))", traceAdvice{tag: "outer", prec: 100, log: &log}),
		bind("call(* A.m(..))", traceAdvice{tag: "mid", prec: 50, log: &log}),
	}})
	p.MustWeave()
	m()
	want := "[outer> mid> inner> body <inner <mid <outer]"
	if got := fmt.Sprint(log); got != want {
		t.Fatalf("log = %v, want %v", got, want)
	}
}

func TestEqualPrecedenceKeepsDeploymentOrder(t *testing.T) {
	p := NewProgram("test")
	var log []string
	m := p.Class("A").Proc("m", func() { log = append(log, "body") })
	p.Use(&SimpleAspect{Name: "first", Bind: []Binding{
		bind("call(* A.m(..))", traceAdvice{tag: "a", prec: 5, log: &log})}})
	p.Use(&SimpleAspect{Name: "second", Bind: []Binding{
		bind("call(* A.m(..))", traceAdvice{tag: "b", prec: 5, log: &log})}})
	p.MustWeave()
	m()
	want := "[a> b> body <b <a]"
	if got := fmt.Sprint(log); got != want {
		t.Fatalf("log = %v, want %v", got, want)
	}
}

func TestUnweaveRestoresSequentialSemantics(t *testing.T) {
	p := NewProgram("test")
	var log []string
	m := p.Class("A").Proc("m", func() { log = append(log, "body") })
	p.Use(&SimpleAspect{Name: "asp", Bind: []Binding{
		bind("call(* A.m(..))", traceAdvice{tag: "t", prec: 1, log: &log})}})
	p.MustWeave()
	m()
	p.Unweave()
	m()
	want := "[t> body <t body]"
	if got := fmt.Sprint(log); got != want {
		t.Fatalf("log = %v, want %v", got, want)
	}
	// Re-weaving re-applies: plug/unplug at any time.
	p.MustWeave()
	log = nil
	m()
	if fmt.Sprint(log) != "[t> body <t]" {
		t.Fatalf("re-weave failed: %v", log)
	}
}

func TestRemoveAspect(t *testing.T) {
	p := NewProgram("test")
	var log []string
	m := p.Class("A").Proc("m", func() { log = append(log, "body") })
	p.Use(&SimpleAspect{Name: "asp", Bind: []Binding{
		bind("call(* A.m(..))", traceAdvice{tag: "t", prec: 1, log: &log})}})
	p.MustWeave()
	p.RemoveAspect("asp")
	p.MustWeave()
	m()
	if fmt.Sprint(log) != "[body]" {
		t.Fatalf("advice survived removal: %v", log)
	}
	if n := len(p.Aspects()); n != 0 {
		t.Fatalf("aspect list has %d entries", n)
	}
}

func TestForProcArgsFlow(t *testing.T) {
	p := NewProgram("test")
	var got [3]int
	f := p.Class("A").ForProc("loop", func(lo, hi, step int) { got = [3]int{lo, hi, step} })
	// Advice that halves the range.
	halve := adviceFunc{
		name: "halve", prec: 10,
		wrap: func(jp *Joinpoint, next HandlerFunc) HandlerFunc {
			return func(c *Call) {
				c2 := *c
				c2.Hi = c.Lo + (c.Hi-c.Lo)/2
				next(&c2)
			}
		},
	}
	p.Use(&SimpleAspect{Name: "asp", Bind: []Binding{bind("call(* A.loop(..))", halve)}})
	p.MustWeave()
	f(0, 100, 1)
	if got != [3]int{0, 50, 1} {
		t.Fatalf("got %v, want [0 50 1]", got)
	}
}

type adviceFunc struct {
	name   string
	prec   int
	worker bool
	wrap   func(*Joinpoint, HandlerFunc) HandlerFunc
}

func (a adviceFunc) AdviceName() string { return a.name }
func (a adviceFunc) Precedence() int    { return a.prec }
func (a adviceFunc) NeedsWorker() bool  { return a.worker }
func (a adviceFunc) Wrap(jp *Joinpoint, next HandlerFunc) HandlerFunc {
	return a.wrap(jp, next)
}

func TestValueProcAndFutureProc(t *testing.T) {
	p := NewProgram("test")
	v := p.Class("A").ValueProc("val", func() any { return 7 })
	if got := v(); got != 7 {
		t.Fatalf("ValueProc = %v", got)
	}
	fp := p.Class("A").FutureProc("fut", func() any { return 9 })
	f := fp()
	if !f.Resolved() {
		t.Fatal("unwoven FutureProc must resolve synchronously")
	}
	if got := f.Get(); got != 9 {
		t.Fatalf("future value = %v", got)
	}
}

func TestAnnotationsVisibleToPointcuts(t *testing.T) {
	p := NewProgram("test")
	var n atomic.Int32
	m := p.Class("A").Proc("m", func() {})
	p.MustAnnotate("A.m", testAnno{})
	count := adviceFunc{name: "count", prec: 1,
		wrap: func(jp *Joinpoint, next HandlerFunc) HandlerFunc {
			return func(c *Call) { n.Add(1); next(c) }
		}}
	p.Use(&SimpleAspect{Name: "asp", Bind: []Binding{
		bind("call(@Marked * *(..))", count)}})
	p.MustWeave()
	m()
	if n.Load() != 1 {
		t.Fatal("annotation pointcut did not select annotated method")
	}
	if err := p.Annotate("A.nope", testAnno{}); err == nil {
		t.Fatal("annotating unknown method succeeded")
	}
}

type testAnno struct{}

func (testAnno) AnnotationName() string { return "Marked" }

func TestInheritancePointcutRetained(t *testing.T) {
	p := NewProgram("test")
	parent := p.Class("Particle", Implements("IParticle"))
	child := p.Class("LJParticle", Extends(parent))
	var calls []string
	pf := parent.Proc("force", func() { calls = append(calls, "parent") })
	cf := child.Proc("force", func() { calls = append(calls, "child") })
	tag := adviceFunc{name: "tag", prec: 1,
		wrap: func(jp *Joinpoint, next HandlerFunc) HandlerFunc {
			return func(c *Call) {
				calls = append(calls, "advice:"+jp.ClassName())
				next(c)
			}
		}}
	// Binding on the superclass with '+' captures the override too —
	// "bindings that are retained over the class hierarchy".
	p.Use(&SimpleAspect{Name: "asp", Bind: []Binding{
		bind("call(* Particle+.force(..))", tag)}})
	p.MustWeave()
	pf()
	cf()
	want := "[advice:Particle parent advice:LJParticle child]"
	if got := fmt.Sprint(calls); got != want {
		t.Fatalf("calls = %v, want %v", got, want)
	}
	// Interface pointcut also reaches the subclass.
	calls = nil
	p.RemoveAspect("asp")
	p.Use(&SimpleAspect{Name: "asp2", Bind: []Binding{
		bind("call(* IParticle+.force(..))", tag)}})
	p.MustWeave()
	cf()
	if got := fmt.Sprint(calls); got != "[advice:LJParticle child]" {
		t.Fatalf("interface binding: %v", got)
	}
}

func TestExactMatcher(t *testing.T) {
	p := NewProgram("test")
	a := p.Class("A")
	var hits int
	m1 := a.Proc("m1", func() {})
	m2 := a.Proc("m2", func() {})
	count := adviceFunc{name: "c", prec: 1,
		wrap: func(jp *Joinpoint, next HandlerFunc) HandlerFunc {
			return func(c *Call) { hits++; next(c) }
		}}
	p.Use(&SimpleAspect{Name: "asp", Bind: []Binding{
		{Matcher: Exact(p.Method("A.m1").JP()), Advice: count}}})
	p.MustWeave()
	m1()
	m2()
	if hits != 1 {
		t.Fatalf("exact matcher hit %d methods", hits)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	p := NewProgram("test")
	a := p.Class("A")
	a.Proc("m", func() {})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate method registration did not panic")
		}
	}()
	a.Proc("m", func() {})
}

func TestClassRedeclareWithOptionsPanics(t *testing.T) {
	p := NewProgram("test")
	p.Class("A")
	if c := p.Class("A"); c == nil {
		t.Fatal("idempotent lookup failed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("re-declare with options did not panic")
		}
	}()
	p.Class("A", Implements("X"))
}

type rejectAll struct{ adviceFunc }

func (rejectAll) ValidateJP(jp *Joinpoint) error {
	return fmt.Errorf("cannot apply to %s", jp.FQN())
}

func TestValidatorFailsWeave(t *testing.T) {
	p := NewProgram("test")
	p.Class("A").Proc("m", func() {})
	bad := rejectAll{adviceFunc{name: "bad", prec: 1,
		wrap: func(jp *Joinpoint, next HandlerFunc) HandlerFunc { return next }}}
	p.Use(&SimpleAspect{Name: "asp", Bind: []Binding{bind("call(* A.m(..))", bad)}})
	if err := p.Weave(); err == nil {
		t.Fatal("Weave succeeded despite validator error")
	}
}

func TestReport(t *testing.T) {
	p := NewProgram("test")
	var log []string
	p.Class("B").Proc("z", func() {})
	p.Class("A").ForProc("loop", func(lo, hi, step int) {})
	p.MustAnnotate("A.loop", testAnno{})
	p.Use(&SimpleAspect{Name: "asp", Bind: []Binding{
		bind("call(* A.loop(..))", traceAdvice{tag: "t", prec: 1, log: &log})}})
	p.MustWeave()
	rep := p.Report()
	if len(rep) != 2 {
		t.Fatalf("report has %d entries", len(rep))
	}
	if rep[0].FQN != "A.loop" || rep[1].FQN != "B.z" {
		t.Fatalf("report not sorted: %+v", rep)
	}
	if rep[0].Kind != ForKind || len(rep[0].Advice) != 1 || rep[0].Advice[0] != "asp/t" {
		t.Fatalf("report entry wrong: %+v", rep[0])
	}
	if len(rep[0].Annotations) != 1 || rep[0].Annotations[0] != "Marked" {
		t.Fatalf("annotations missing: %+v", rep[0])
	}
	if len(rep[1].Advice) != 0 {
		t.Fatalf("unwoven method reports advice: %+v", rep[1])
	}
}

func TestKeyedProc(t *testing.T) {
	p := NewProgram("test")
	var got int
	f := p.Class("A").KeyedProc("k", func(key int) { got = key })
	f(17)
	if got != 17 {
		t.Fatalf("key = %d", got)
	}
	if jp := p.Method("A.k").JP(); jp.Kind() != KeyedKind || jp.ArgKinds()[0] != "int" {
		t.Fatal("keyed joinpoint metadata wrong")
	}
}

func BenchmarkUnwovenCall(b *testing.B) {
	p := NewProgram("bench")
	var sink int
	f := p.Class("A").Proc("m", func() { sink++ })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f()
	}
	_ = sink
}

func BenchmarkWovenCallNoWorkerAdvice(b *testing.B) {
	p := NewProgram("bench")
	var sink int
	f := p.Class("A").Proc("m", func() { sink++ })
	pass := adviceFunc{name: "pass", prec: 1,
		wrap: func(jp *Joinpoint, next HandlerFunc) HandlerFunc { return next }}
	p.Use(&SimpleAspect{Name: "asp", Bind: []Binding{bind("call(* A.m(..))", pass)}})
	p.MustWeave()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f()
	}
	_ = sink
}

func BenchmarkWovenCallWorkerAdvice(b *testing.B) {
	p := NewProgram("bench")
	var sink int
	f := p.Class("A").Proc("m", func() { sink++ })
	pass := adviceFunc{name: "pass", prec: 1, worker: true,
		wrap: func(jp *Joinpoint, next HandlerFunc) HandlerFunc { return next }}
	p.Use(&SimpleAspect{Name: "asp", Bind: []Binding{bind("call(* A.m(..))", pass)}})
	p.MustWeave()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f()
	}
	_ = sink
}
