package weaver

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Program is a base program's joinpoint registry plus its deployed
// aspects. It plays the role of the AspectJ build: classes and methods are
// registered as the base program initialises, aspects are added with Use
// (or removed), and Weave/Unweave correspond to building with or without
// the aspect modules — "sequential semantics and incremental development
// are intrinsically supported since aspects can be (un)plugged to/from a
// given base program at any time".
type Program struct {
	name string

	mu      sync.Mutex
	classes map[string]*Class
	methods []*Method
	aspects []Aspect
}

// NewProgram creates an empty program registry.
func NewProgram(name string) *Program {
	return &Program{name: name, classes: make(map[string]*Class)}
}

// Name returns the program name.
func (p *Program) Name() string { return p.name }

// ClassOpt configures a Class at creation.
type ClassOpt func(*Class)

// Implements declares interfaces the class implements; pointcuts with the
// '+' operator on an interface name select its implementers.
func Implements(interfaces ...string) ClassOpt {
	return func(c *Class) { c.implements = append(c.implements, interfaces...) }
}

// Extends declares the superclass; pointcuts on the superclass with '+'
// select subclasses, so bindings are "retained over the class hierarchy".
func Extends(parent *Class) ClassOpt {
	return func(c *Class) { c.extends = parent }
}

// Class registers (or retrieves) a class scope. Options are applied only
// on first creation; re-declaring an existing class with options panics,
// as that always indicates conflicting registrations.
func (p *Program) Class(name string, opts ...ClassOpt) *Class {
	p.mu.Lock()
	defer p.mu.Unlock()
	if c, ok := p.classes[name]; ok {
		if len(opts) > 0 {
			panic(fmt.Sprintf("weaver: class %q re-declared with options", name))
		}
		return c
	}
	c := &Class{program: p, name: name}
	for _, o := range opts {
		o(c)
	}
	p.classes[name] = c
	return c
}

func (c *Class) register(name string, kind Kind, body HandlerFunc) *Method {
	p := c.program
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, m := range p.methods {
		if m.jp.class == c && m.jp.name == name {
			panic(fmt.Sprintf("weaver: method %s.%s registered twice", c.name, name))
		}
	}
	m := &Method{jp: &Joinpoint{class: c, name: name, kind: kind}, body: body}
	m.reset()
	p.methods = append(p.methods, m)
	return m
}

// Annotate attaches annotations to the named method ("Class.method").
// Like Java annotations these are inert metadata until an aspect —
// typically the core package's annotation aspects (paper Fig. 5) —
// translates them into advice at weave time.
func (p *Program) Annotate(fqn string, annotations ...Annotation) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	m := p.lookupLocked(fqn)
	if m == nil {
		return fmt.Errorf("weaver: Annotate: unknown method %q", fqn)
	}
	m.jp.annotations = append(m.jp.annotations, annotations...)
	return nil
}

// MustAnnotate is Annotate that panics on error, for declaration blocks.
func (p *Program) MustAnnotate(fqn string, annotations ...Annotation) {
	if err := p.Annotate(fqn, annotations...); err != nil {
		panic(err)
	}
}

func (p *Program) lookupLocked(fqn string) *Method {
	i := strings.LastIndexByte(fqn, '.')
	if i < 0 {
		return nil
	}
	cls, name := fqn[:i], fqn[i+1:]
	for _, m := range p.methods {
		if m.jp.class.name == cls && m.jp.name == name {
			return m
		}
	}
	return nil
}

// Method returns the registered method named "Class.method", or nil.
func (p *Program) Method(fqn string) *Method {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.lookupLocked(fqn)
}

// Joinpoints returns all registered joinpoints (weave tooling).
func (p *Program) Joinpoints() []*Joinpoint {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]*Joinpoint, len(p.methods))
	for i, m := range p.methods {
		out[i] = m.jp
	}
	return out
}

// Use deploys aspect modules. The change takes effect at the next Weave.
func (p *Program) Use(aspects ...Aspect) {
	p.mu.Lock()
	p.aspects = append(p.aspects, aspects...)
	p.mu.Unlock()
}

// RemoveAspect undeploys all aspects with the given name.
func (p *Program) RemoveAspect(name string) {
	p.mu.Lock()
	kept := p.aspects[:0]
	for _, a := range p.aspects {
		if a.AspectName() != name {
			kept = append(kept, a)
		}
	}
	p.aspects = kept
	p.mu.Unlock()
}

// Aspects returns the names of deployed aspects in deployment order.
func (p *Program) Aspects() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	names := make([]string, len(p.aspects))
	for i, a := range p.aspects {
		names[i] = a.AspectName()
	}
	return names
}

// Weave (re)builds every method's advice chain from the deployed aspects.
// Matching advice is ordered by precedence (higher wraps further out;
// ties keep deployment order) and composed around the original body. The
// swap is atomic per method, so in-flight calls complete on the chain they
// started with.
func (p *Program) Weave() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, m := range p.methods {
		var applied []appliedAdvice
		for _, a := range p.aspects {
			for _, b := range a.Bindings() {
				if !b.Matcher.Matches(m.jp) {
					continue
				}
				if v, ok := b.Advice.(Validator); ok {
					if err := v.ValidateJP(m.jp); err != nil {
						return fmt.Errorf("weaver: aspect %q: %w", a.AspectName(), err)
					}
				}
				applied = append(applied, appliedAdvice{aspect: a.AspectName(), advice: b.Advice})
			}
		}
		// Stable sort: outermost (highest precedence) first.
		sort.SliceStable(applied, func(i, j int) bool {
			return applied[i].advice.Precedence() > applied[j].advice.Precedence()
		})
		h := m.body
		needsWorker := false
		for i := len(applied) - 1; i >= 0; i-- { // wrap innermost-first
			h = applied[i].advice.Wrap(m.jp, h)
			needsWorker = needsWorker || applied[i].advice.NeedsWorker()
		}
		m.current.Store(&chain{handler: h, needsWorker: needsWorker, applied: applied})
	}
	return nil
}

// MustWeave is Weave that panics on error.
func (p *Program) MustWeave() {
	if err := p.Weave(); err != nil {
		panic(err)
	}
}

// Unweave restores every method to its unadvised body: the program runs
// with its original sequential semantics.
func (p *Program) Unweave() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, m := range p.methods {
		m.reset()
	}
}

// WovenMethod describes one method's weave state for reports.
type WovenMethod struct {
	FQN         string
	Kind        Kind
	Annotations []string
	// Advice lists applied advice outermost-first as "aspect/advice".
	Advice []string
}

// Report returns the weave state of every method, sorted by FQN — the
// analogue of AspectJ's weave-info messages, used by cmd/weavedump and the
// Table 2 tooling.
func (p *Program) Report() []WovenMethod {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]WovenMethod, 0, len(p.methods))
	for _, m := range p.methods {
		wm := WovenMethod{FQN: m.jp.FQN(), Kind: m.jp.kind}
		for _, a := range m.jp.annotations {
			wm.Annotations = append(wm.Annotations, a.AnnotationName())
		}
		for _, ap := range m.current.Load().applied {
			wm.Advice = append(wm.Advice, ap.aspect+"/"+ap.advice.AdviceName())
		}
		out = append(out, wm)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].FQN < out[j].FQN })
	return out
}
