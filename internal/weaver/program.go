package weaver

import (
	"fmt"
	"sort"
	"sync"
)

// Program is a base program's joinpoint registry plus its deployed
// aspects. It plays the role of the AspectJ build: classes and methods are
// registered as the base program initialises, aspects are added with Use
// (or removed), and Weave/Unweave correspond to building with or without
// the aspect modules — "sequential semantics and incremental development
// are intrinsically supported since aspects can be (un)plugged to/from a
// given base program at any time".
//
// Once Weave has run, the program stays woven incrementally: Use,
// RemoveAspect, Annotate and late method registration rebuild only the
// affected methods' chains (candidates found through the pointcut hint
// index), each swapped atomically while calls are in flight.
type Program struct {
	name string

	mu      sync.Mutex
	classes map[string]*Class
	methods []*Method

	// Lookup indexes, maintained at registration/annotation time: byFQN
	// serves Method/Annotate in O(1); the bucket maps serve the pointcut
	// hint index (Hints → candidate methods) for incremental re-weaves.
	byFQN   map[string]*Method
	byClass map[string][]*Method
	byName  map[string][]*Method
	byAnno  map[string][]*Method

	aspects []Aspect

	// ungated disables per-advice gates (see Ungated); gates then remain
	// empty and chains compose exactly as plain nested wrappers.
	ungated bool
	// gates holds the per-(aspect, fqn) enable words; aspectOff records
	// aspect-wide defaults so gates created by later weaves inherit them.
	gates     map[gateKey]*gate
	aspectOff map[string]bool

	// woven flips to true at the first Weave and back to false at Unweave;
	// while true, registry mutations re-weave affected methods in place.
	woven bool
	// rebuilds counts chain compositions, pinning incrementality in tests.
	rebuilds uint64
}

// ProgramOpt configures a Program at creation.
type ProgramOpt func(*Program)

// Ungated builds advice chains without per-advice enable gates: each stage
// is the advice's Wrap output with no gate load in front. Such a program
// cannot use SetAdviceEnabled; it exists as the ablation baseline for
// measuring the gate's cost.
func Ungated() ProgramOpt {
	return func(p *Program) { p.ungated = true }
}

// NewProgram creates an empty program registry.
func NewProgram(name string, opts ...ProgramOpt) *Program {
	p := &Program{
		name:      name,
		classes:   make(map[string]*Class),
		byFQN:     make(map[string]*Method),
		byClass:   make(map[string][]*Method),
		byName:    make(map[string][]*Method),
		byAnno:    make(map[string][]*Method),
		gates:     make(map[gateKey]*gate),
		aspectOff: make(map[string]bool),
	}
	for _, o := range opts {
		o(p)
	}
	return p
}

// Name returns the program name.
func (p *Program) Name() string { return p.name }

// ClassOpt configures a Class at creation.
type ClassOpt func(*Class)

// Implements declares interfaces the class implements; pointcuts with the
// '+' operator on an interface name select its implementers.
func Implements(interfaces ...string) ClassOpt {
	return func(c *Class) { c.implements = append(c.implements, interfaces...) }
}

// Extends declares the superclass; pointcuts on the superclass with '+'
// select subclasses, so bindings are "retained over the class hierarchy".
func Extends(parent *Class) ClassOpt {
	return func(c *Class) { c.extends = parent }
}

// Class registers (or retrieves) a class scope. Options are applied only
// on first creation; re-declaring an existing class with options panics,
// as that always indicates conflicting registrations.
func (p *Program) Class(name string, opts ...ClassOpt) *Class {
	p.mu.Lock()
	defer p.mu.Unlock()
	if c, ok := p.classes[name]; ok {
		if len(opts) > 0 {
			panic(fmt.Sprintf("weaver: class %q re-declared with options", name))
		}
		return c
	}
	c := &Class{program: p, name: name}
	for _, o := range opts {
		o(c)
	}
	p.classes[name] = c
	return c
}

func (c *Class) register(name string, kind Kind, body HandlerFunc, rawBody any) *Method {
	p := c.program
	p.mu.Lock()
	defer p.mu.Unlock()
	fqn := c.name + "." + name
	if _, dup := p.byFQN[fqn]; dup {
		panic(fmt.Sprintf("weaver: method %s registered twice", fqn))
	}
	m := &Method{jp: &Joinpoint{class: c, name: name, kind: kind}, body: body, rawBody: rawBody}
	m.reset()
	p.methods = append(p.methods, m)
	p.byFQN[fqn] = m
	p.byClass[c.name] = append(p.byClass[c.name], m)
	p.byName[name] = append(p.byName[name], m)
	if p.woven {
		// Late registration into a woven program: the new method joins the
		// weave immediately, like a class loaded into a woven application.
		if err := p.reweaveLocked(m); err != nil {
			panic(fmt.Sprintf("weaver: weaving late-registered method %s: %v", fqn, err))
		}
	}
	return m
}

// Annotate attaches annotations to the named method ("Class.method").
// Like Java annotations these are inert metadata until an aspect —
// typically the core package's annotation aspects (paper Fig. 5) —
// translates them into advice at weave time. On a woven program the
// method's chain is rebuilt immediately.
func (p *Program) Annotate(fqn string, annotations ...Annotation) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	m := p.byFQN[fqn]
	if m == nil {
		return fmt.Errorf("weaver: Annotate: unknown method %q", fqn)
	}
	m.jp.annotations = append(m.jp.annotations, annotations...)
	for _, a := range annotations {
		n := a.AnnotationName()
		bucket := p.byAnno[n]
		present := false
		for _, bm := range bucket {
			if bm == m {
				present = true
				break
			}
		}
		if !present {
			p.byAnno[n] = append(bucket, m)
		}
	}
	if p.woven {
		if err := p.reweaveLocked(m); err != nil {
			return err
		}
	}
	return nil
}

// MustAnnotate is Annotate that panics on error, for declaration blocks.
func (p *Program) MustAnnotate(fqn string, annotations ...Annotation) {
	if err := p.Annotate(fqn, annotations...); err != nil {
		panic(err)
	}
}

// Method returns the registered method named "Class.method", or nil.
func (p *Program) Method(fqn string) *Method {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.byFQN[fqn]
}

// Joinpoints returns all registered joinpoints (weave tooling).
func (p *Program) Joinpoints() []*Joinpoint {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]*Joinpoint, len(p.methods))
	for i, m := range p.methods {
		out[i] = m.jp
	}
	return out
}

// candidatesLocked returns the methods an aspect's bindings could match,
// found through the hint index. Matchers that cannot provide hints (or
// whose hints say All) widen the candidate set to every method — hints are
// a superset contract, so evaluating the real matcher on the candidates
// never misses a joinpoint.
func (p *Program) candidatesLocked(aspects []Aspect) []*Method {
	seen := make(map[*Method]bool)
	var out []*Method
	add := func(ms []*Method) {
		for _, m := range ms {
			if !seen[m] {
				seen[m] = true
				out = append(out, m)
			}
		}
	}
	for _, a := range aspects {
		for _, b := range a.Bindings() {
			h, ok := b.Matcher.(Hinter)
			if !ok {
				return append([]*Method(nil), p.methods...)
			}
			hints := h.Hints()
			if hints.All {
				return append([]*Method(nil), p.methods...)
			}
			if len(hints.Classes)+len(hints.Methods)+len(hints.Annotations) == 0 {
				// An impossible match set; widen out of caution.
				return append([]*Method(nil), p.methods...)
			}
			for _, cl := range hints.Classes {
				add(p.byClass[cl])
			}
			for _, mn := range hints.Methods {
				add(p.byName[mn])
			}
			for _, an := range hints.Annotations {
				add(p.byAnno[an])
			}
		}
	}
	return out
}

// Use deploys aspect modules. On an unwoven program the change takes
// effect at the next Weave; on a woven program only the methods the new
// aspects' pointcuts can select (per the hint index) are re-woven, each
// chain swapped atomically. A validation failure during an incremental
// deploy panics — the program would otherwise be left half-deployed with
// no error path to the caller.
func (p *Program) Use(aspects ...Aspect) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.aspects = append(p.aspects, aspects...)
	if !p.woven {
		return
	}
	for _, m := range p.candidatesLocked(aspects) {
		if err := p.reweaveLocked(m); err != nil {
			panic(fmt.Sprintf("weaver: incremental Use: %v", err))
		}
	}
}

// RemoveAspect undeploys all aspects with the given name. On a woven
// program only the methods whose current chain contains the aspect's
// advice are re-woven.
func (p *Program) RemoveAspect(name string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	kept := p.aspects[:0]
	removed := false
	for _, a := range p.aspects {
		if a.AspectName() != name {
			kept = append(kept, a)
		} else {
			removed = true
		}
	}
	p.aspects = kept
	if !p.woven || !removed {
		return
	}
	for _, m := range p.methods {
		if !chainHasAspect(m.current.Load(), name) {
			continue
		}
		if err := p.reweaveLocked(m); err != nil {
			panic(fmt.Sprintf("weaver: incremental RemoveAspect: %v", err))
		}
	}
}

func chainHasAspect(ch *chain, name string) bool {
	for _, ad := range ch.applied {
		if ad.aspect == name {
			return true
		}
	}
	return false
}

// Aspects returns the names of deployed aspects in deployment order.
func (p *Program) Aspects() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	names := make([]string, len(p.aspects))
	for i, a := range p.aspects {
		names[i] = a.AspectName()
	}
	return names
}

// gateLocked returns the persistent gate for one aspect on one joinpoint,
// creating it enabled (or disabled, if the aspect was toggled off
// aspect-wide) on first use.
func (p *Program) gateLocked(aspect, fqn string) *gate {
	k := gateKey{aspect: aspect, fqn: fqn}
	g, ok := p.gates[k]
	if !ok {
		g = &gate{}
		g.set(!p.aspectOff[aspect])
		p.gates[k] = g
	}
	return g
}

// matchLocked evaluates every deployed aspect against one method and
// returns the matching advice, outermost (highest precedence) first.
func (p *Program) matchLocked(m *Method) ([]appliedAdvice, error) {
	var applied []appliedAdvice
	for _, a := range p.aspects {
		for _, b := range a.Bindings() {
			if !b.Matcher.Matches(m.jp) {
				continue
			}
			if v, ok := b.Advice.(Validator); ok {
				if err := v.ValidateJP(m.jp); err != nil {
					return nil, fmt.Errorf("weaver: aspect %q: %w", a.AspectName(), err)
				}
			}
			ad := appliedAdvice{
				aspect:   a.AspectName(),
				advice:   b.Advice,
				pointcut: b.Matcher.String(),
			}
			if !p.ungated {
				ad.gate = p.gateLocked(a.AspectName(), m.jp.FQN())
			}
			applied = append(applied, ad)
		}
	}
	// Stable sort: outermost (highest precedence) first.
	sort.SliceStable(applied, func(i, j int) bool {
		return applied[i].advice.Precedence() > applied[j].advice.Precedence()
	})
	return applied, nil
}

// composeChain builds the woven pipeline for m. Gated stages check their
// enable word inline (one atomic load + branch) and fall through to the
// next stage when off; stages whose gate is already off at composition
// time are collapsed out entirely, so a fully disabled chain is the bare
// body handler and needsWorker false.
func composeChain(m *Method, applied []appliedAdvice) *chain {
	h := m.body
	needsWorker := false
	for i := len(applied) - 1; i >= 0; i-- { // wrap innermost-first
		ad := applied[i]
		if ad.gate == nil {
			h = ad.advice.Wrap(m.jp, h)
			needsWorker = needsWorker || ad.advice.NeedsWorker()
			continue
		}
		if !ad.gate.on() {
			continue
		}
		inner := h
		wrapped := ad.advice.Wrap(m.jp, inner)
		g := ad.gate
		h = func(c *Call) {
			if !g.on() {
				inner(c)
				return
			}
			wrapped(c)
		}
		needsWorker = needsWorker || ad.advice.NeedsWorker()
	}
	return &chain{handler: h, needsWorker: needsWorker, applied: applied}
}

// reweaveLocked rebuilds one method's chain from the deployed aspects and
// swaps it in atomically.
func (p *Program) reweaveLocked(m *Method) error {
	applied, err := p.matchLocked(m)
	if err != nil {
		return err
	}
	m.current.Store(composeChain(m, applied))
	p.rebuilds++
	return nil
}

// Weave (re)builds every method's advice chain from the deployed aspects.
// Matching advice is ordered by precedence (higher wraps further out;
// ties keep deployment order) and composed around the original body. The
// swap is atomic per method, so in-flight calls complete on the chain they
// started with. After the first Weave the program stays woven: later
// Use/RemoveAspect/Annotate calls re-weave incrementally.
func (p *Program) Weave() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, m := range p.methods {
		if err := p.reweaveLocked(m); err != nil {
			return err
		}
	}
	p.woven = true
	return nil
}

// MustWeave is Weave that panics on error.
func (p *Program) MustWeave() {
	if err := p.Weave(); err != nil {
		panic(err)
	}
}

// Unweave restores every method to its unadvised body: the program runs
// with its original sequential semantics, and incremental re-weaving stops
// until the next Weave.
func (p *Program) Unweave() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, m := range p.methods {
		m.reset()
	}
	p.woven = false
}

// SetAdviceEnabled toggles the named aspect's advice without re-weaving
// the program. With no fqns the toggle is aspect-wide (and sticks as the
// default for methods woven later); otherwise it applies to the named
// "Class.method" joinpoints, which must currently carry the aspect's
// advice. Disabling is effective on the next call through each chain —
// the gate word is flipped first — after which affected chains are
// re-swapped so disabled stages collapse to a direct next-stage call;
// enabling takes effect at that re-swap. Returns an error on ungated
// programs, unknown methods, or methods the aspect is not applied to.
func (p *Program) SetAdviceEnabled(aspect string, enabled bool, fqns ...string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.ungated {
		return fmt.Errorf("weaver: program %q is ungated; SetAdviceEnabled unavailable", p.name)
	}
	var affected []*Method
	if len(fqns) == 0 {
		p.aspectOff[aspect] = !enabled
		for k, g := range p.gates {
			if k.aspect == aspect {
				g.set(enabled)
			}
		}
		for _, m := range p.methods {
			if chainHasAspect(m.current.Load(), aspect) {
				affected = append(affected, m)
			}
		}
	} else {
		// Validate every fqn before flipping any gate, so an error leaves
		// all gates untouched.
		for _, fqn := range fqns {
			m := p.byFQN[fqn]
			if m == nil {
				return fmt.Errorf("weaver: SetAdviceEnabled: unknown method %q", fqn)
			}
			if !chainHasAspect(m.current.Load(), aspect) {
				return fmt.Errorf("weaver: SetAdviceEnabled: aspect %q not applied to %q", aspect, fqn)
			}
			affected = append(affected, m)
		}
		for _, m := range affected {
			p.gateLocked(aspect, m.jp.FQN()).set(enabled)
		}
	}
	for _, m := range affected {
		if err := p.reweaveLocked(m); err != nil {
			return err
		}
	}
	return nil
}

// AdviceEnabled reports the gate state of one aspect on one joinpoint.
// Ungated programs always report true; so do (aspect, method) pairs never
// toggled, since gates default to enabled.
func (p *Program) AdviceEnabled(aspect, fqn string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.ungated {
		return true
	}
	if g, ok := p.gates[gateKey{aspect: aspect, fqn: fqn}]; ok {
		return g.on()
	}
	return !p.aspectOff[aspect]
}

// ChainRebuilds returns the number of chain compositions performed since
// the program was created — the observable cost of (re)weaving. Tests pin
// incrementality with it: deploying one narrow aspect must bump the count
// by the number of matched methods, not by the registry size.
func (p *Program) ChainRebuilds() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.rebuilds
}

// WovenMethod describes one method's weave state for reports.
type WovenMethod struct {
	FQN         string
	Kind        Kind
	Annotations []string
	// Advice lists applied advice outermost-first as "aspect/advice".
	Advice []string
	// Details carries per-advice metadata parallel to Advice.
	Details []AdviceInfo
}

// AdviceInfo is the per-advice detail in a weave report: which aspect
// applied which advice, through which pointcut, and whether its gate is
// currently enabled.
type AdviceInfo struct {
	// Aspect is the deploying aspect's name.
	Aspect string
	// Advice is the advice name (e.g. "parallel", "for(runtime)").
	Advice string
	// Pointcut is the source form of the matcher that selected the
	// joinpoint.
	Pointcut string
	// Enabled is the advice gate's current state (always true on ungated
	// programs).
	Enabled bool
}

// Report returns the weave state of every method, sorted by FQN — the
// analogue of AspectJ's weave-info messages, used by cmd/weavedump and the
// Table 2 tooling.
func (p *Program) Report() []WovenMethod {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]WovenMethod, 0, len(p.methods))
	for _, m := range p.methods {
		wm := WovenMethod{FQN: m.jp.FQN(), Kind: m.jp.kind}
		for _, a := range m.jp.annotations {
			wm.Annotations = append(wm.Annotations, a.AnnotationName())
		}
		for _, ap := range m.current.Load().applied {
			wm.Advice = append(wm.Advice, ap.aspect+"/"+ap.advice.AdviceName())
			wm.Details = append(wm.Details, AdviceInfo{
				Aspect:   ap.aspect,
				Advice:   ap.advice.AdviceName(),
				Pointcut: ap.pointcut,
				Enabled:  ap.gate == nil || ap.gate.on(),
			})
		}
		out = append(out, wm)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].FQN < out[j].FQN })
	return out
}
