package weaver

import "aomplib/internal/pointcut"

// Matcher selects joinpoints. *pointcut.Pointcut is the usual
// implementation; the annotation style uses exact matchers so that
// per-method annotation parameters (lock ids, thread counts) bind to
// exactly the annotated method.
type Matcher interface {
	Matches(pointcut.Subject) bool
	String() string
}

// Hinter is an optional Matcher extension: matchers that can statically
// narrow their candidate joinpoints expose pointcut.Hints, which the
// Program's incremental re-weave uses to rebuild only affected methods.
// *pointcut.Pointcut and Exact matchers implement it; a Matcher without
// hints widens incremental candidate sets to every registered method.
type Hinter interface {
	// Hints returns a statically known superset of the matcher's
	// selectable joinpoints (see pointcut.Hints for the contract).
	Hints() pointcut.Hints
}

// Exact returns a Matcher selecting a single joinpoint by identity.
func Exact(jp *Joinpoint) Matcher { return exactMatcher{jp} }

type exactMatcher struct{ jp *Joinpoint }

func (m exactMatcher) Matches(s pointcut.Subject) bool {
	j, ok := s.(*Joinpoint)
	return ok && j == m.jp
}
func (m exactMatcher) String() string { return "exact(" + m.jp.FQN() + ")" }
func (m exactMatcher) Hints() pointcut.Hints {
	return pointcut.Hints{Classes: []string{m.jp.ClassName()}}
}

// Advice is one parallelism mechanism applicable to a joinpoint. Each
// AOmpLib abstraction (parallel region, for, critical, ...) is an Advice
// implementation in the core package; applications may supply their own —
// "the library can be easily extended/changed to handle application
// specific mechanisms".
type Advice interface {
	// AdviceName identifies the mechanism in weave reports (e.g. "parallel",
	// "for(staticCyclic)").
	AdviceName() string
	// Precedence orders advice on a joinpoint: higher precedence wraps
	// further out. The core package defines the canonical ordering
	// (parallel region outermost ... thread-local innermost).
	Precedence() int
	// NeedsWorker reports whether the advice must know the current team
	// worker; only then does the woven method pay for the goroutine-local
	// lookup.
	NeedsWorker() bool
	// Wrap builds this advice's stage around next for joinpoint jp.
	Wrap(jp *Joinpoint, next HandlerFunc) HandlerFunc
}

// Binding attaches one Advice to the joinpoints selected by a Matcher.
type Binding struct {
	Matcher Matcher
	Advice  Advice
}

// Aspect is a deployable module of bindings — the analogue of one AspectJ
// aspect such as the paper's ParallelLinpack (Fig. 7).
type Aspect interface {
	// AspectName identifies the module for reports and removal.
	AspectName() string
	// Bindings returns the module's pointcut→advice bindings.
	Bindings() []Binding
}

// Validator is an optional Aspect extension: aspects that require certain
// joinpoint kinds (e.g. @For requires a for method) implement it to fail
// weaving loudly instead of misbehaving at run time.
type Validator interface {
	// ValidateJP reports an error if the advice cannot apply to jp.
	ValidateJP(jp *Joinpoint) error
}

// SimpleAspect is a convenience Aspect for ad-hoc and case-specific
// modules.
type SimpleAspect struct {
	Name string
	Bind []Binding
}

// AspectName implements Aspect.
func (a *SimpleAspect) AspectName() string { return a.Name }

// Bindings implements Aspect.
func (a *SimpleAspect) Bindings() []Binding { return a.Bind }
