package weaver

import "sync/atomic"

// gate is the per-(aspect, joinpoint) enable word. Enabled stages of a
// woven chain check it inline — one atomic load and a predictable branch —
// so disabling advice takes effect on the very next call, before any chain
// re-swap. Gates are owned by the Program and persist across re-weaves:
// a toggle survives Use/RemoveAspect/Weave cycles.
type gate struct{ word atomic.Uint32 }

// gateKey identifies a gate: one aspect applied to one joinpoint.
type gateKey struct{ aspect, fqn string }

func (g *gate) set(enabled bool) {
	if enabled {
		g.word.Store(1)
	} else {
		g.word.Store(0)
	}
}

// on reports the gate state; the inline chain check is this load.
func (g *gate) on() bool { return g.word.Load() != 0 }
