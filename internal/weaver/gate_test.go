package weaver

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func passAdvice(name string, prec int, worker bool) adviceFunc {
	return adviceFunc{name: name, prec: prec, worker: worker,
		wrap: func(jp *Joinpoint, next HandlerFunc) HandlerFunc {
			return func(c *Call) { next(c) }
		}}
}

func countAdvice(name string, prec int, n *atomic.Int32) adviceFunc {
	return adviceFunc{name: name, prec: prec,
		wrap: func(jp *Joinpoint, next HandlerFunc) HandlerFunc {
			return func(c *Call) { n.Add(1); next(c) }
		}}
}

func TestSetAdviceEnabledDisableAndReenable(t *testing.T) {
	p := NewProgram("test")
	var body, adv atomic.Int32
	m := p.Class("A").Proc("m", func() { body.Add(1) })
	p.Use(&SimpleAspect{Name: "asp", Bind: []Binding{
		bind("call(* A.m(..))", countAdvice("count", 1, &adv))}})
	p.MustWeave()

	m()
	if body.Load() != 1 || adv.Load() != 1 {
		t.Fatalf("woven call: body=%d adv=%d", body.Load(), adv.Load())
	}
	if err := p.SetAdviceEnabled("asp", false); err != nil {
		t.Fatal(err)
	}
	m()
	if body.Load() != 2 || adv.Load() != 1 {
		t.Fatalf("disabled call: body=%d adv=%d, want 2/1", body.Load(), adv.Load())
	}
	if p.AdviceEnabled("asp", "A.m") {
		t.Fatal("AdviceEnabled reports true after disable")
	}
	if err := p.SetAdviceEnabled("asp", true); err != nil {
		t.Fatal(err)
	}
	m()
	if body.Load() != 3 || adv.Load() != 2 {
		t.Fatalf("re-enabled call: body=%d adv=%d, want 3/2", body.Load(), adv.Load())
	}
}

// Disabling must take effect via the gate word itself — on the chain that
// is already installed, before any re-swap. We pin that by flipping the
// gate directly and calling through the old chain handler.
func TestGateWordDisablesInstalledChain(t *testing.T) {
	p := NewProgram("test")
	var adv atomic.Int32
	m := p.Class("A").Proc("m", func() {})
	p.Use(&SimpleAspect{Name: "asp", Bind: []Binding{
		bind("call(* A.m(..))", countAdvice("count", 1, &adv))}})
	p.MustWeave()
	meth := p.Method("A.m")
	oldChain := meth.current.Load()

	p.gates[gateKey{aspect: "asp", fqn: "A.m"}].set(false)
	c := GetCall()
	c.JP = meth.jp
	oldChain.handler(c) // pre-swap chain: the inline gate check must skip
	PutCall(c)
	if adv.Load() != 0 {
		t.Fatal("disabled gate did not skip advice on the installed chain")
	}
	_ = m
}

// A fully disabled chain collapses at re-swap: no gate stages remain and
// needsWorker is recomputed over enabled advice only.
func TestDisabledChainCollapses(t *testing.T) {
	p := NewProgram("test")
	p.Class("A").Proc("m", func() {})
	p.Use(&SimpleAspect{Name: "asp", Bind: []Binding{
		bind("call(* A.m(..))", passAdvice("pass", 1, true))}})
	p.MustWeave()
	meth := p.Method("A.m")
	if !meth.current.Load().needsWorker {
		t.Fatal("worker advice did not set needsWorker")
	}
	if err := p.SetAdviceEnabled("asp", false); err != nil {
		t.Fatal(err)
	}
	ch := meth.current.Load()
	if ch.needsWorker {
		t.Fatal("collapsed chain still resolves workers")
	}
	if len(ch.applied) != 1 {
		t.Fatalf("applied list must keep disabled advice for reports, got %d", len(ch.applied))
	}
}

func TestSetAdviceEnabledPerMethod(t *testing.T) {
	p := NewProgram("test")
	var adv atomic.Int32
	a := p.Class("A")
	m1 := a.Proc("one", func() {})
	m2 := a.Proc("two", func() {})
	p.Use(&SimpleAspect{Name: "asp", Bind: []Binding{
		bind("call(* A.*(..))", countAdvice("count", 1, &adv))}})
	p.MustWeave()

	if err := p.SetAdviceEnabled("asp", false, "A.one"); err != nil {
		t.Fatal(err)
	}
	m1()
	m2()
	if adv.Load() != 1 {
		t.Fatalf("per-method disable: adv=%d, want 1 (A.two only)", adv.Load())
	}
	if p.AdviceEnabled("asp", "A.one") || !p.AdviceEnabled("asp", "A.two") {
		t.Fatal("AdviceEnabled state wrong after per-method toggle")
	}
}

func TestAspectWideDisableStickyForLaterWeaves(t *testing.T) {
	p := NewProgram("test")
	var adv atomic.Int32
	m := p.Class("A").Proc("m", func() {})
	p.Use(&SimpleAspect{Name: "asp", Bind: []Binding{
		bind("call(* A.m(..))", countAdvice("count", 1, &adv))}})
	if err := p.SetAdviceEnabled("asp", false); err != nil {
		t.Fatal(err)
	}
	p.MustWeave() // gates created now must inherit the aspect-wide default
	m()
	if adv.Load() != 0 {
		t.Fatal("aspect-wide disable did not stick across Weave")
	}
	if p.AdviceEnabled("asp", "A.m") {
		t.Fatal("AdviceEnabled ignores sticky aspect default")
	}
}

func TestSetAdviceEnabledErrors(t *testing.T) {
	p := NewProgram("test", Ungated())
	p.Class("A").Proc("m", func() {})
	if err := p.SetAdviceEnabled("asp", false); err == nil {
		t.Fatal("ungated program accepted SetAdviceEnabled")
	}
	if !p.AdviceEnabled("asp", "A.m") {
		t.Fatal("ungated program must report advice enabled")
	}

	q := NewProgram("test2")
	q.Class("A").Proc("m", func() {})
	q.Use(&SimpleAspect{Name: "asp", Bind: []Binding{
		bind("call(* A.m(..))", passAdvice("pass", 1, false))}})
	q.MustWeave()
	if err := q.SetAdviceEnabled("asp", false, "A.nope"); err == nil {
		t.Fatal("unknown method accepted")
	}
	if err := q.SetAdviceEnabled("other", false, "A.m"); err == nil {
		t.Fatal("aspect not applied to method accepted")
	}
	// A failed per-method toggle must leave gates untouched.
	if err := q.SetAdviceEnabled("asp", false, "A.m", "A.nope"); err == nil {
		t.Fatal("partially invalid fqn list accepted")
	}
	if !q.AdviceEnabled("asp", "A.m") {
		t.Fatal("failed toggle flipped a gate")
	}
}

func TestUngatedChainsHaveNoGates(t *testing.T) {
	p := NewProgram("test", Ungated())
	var adv atomic.Int32
	m := p.Class("A").Proc("m", func() {})
	p.Use(&SimpleAspect{Name: "asp", Bind: []Binding{
		bind("call(* A.m(..))", countAdvice("count", 1, &adv))}})
	p.MustWeave()
	m()
	if adv.Load() != 1 {
		t.Fatal("ungated weave broken")
	}
	for _, ad := range p.Method("A.m").current.Load().applied {
		if ad.gate != nil {
			t.Fatal("ungated program composed a gated stage")
		}
	}
}

// chainPtrs snapshots every method's installed chain pointer, for pinning
// which chains a mutation rebuilt.
func chainPtrs(p *Program) map[string]*chain {
	out := make(map[string]*chain)
	for _, m := range p.methods {
		out[m.jp.FQN()] = m.current.Load()
	}
	return out
}

func TestIncrementalUseRebuildsOnlyMatchedMethods(t *testing.T) {
	p := NewProgram("test")
	a, b := p.Class("A"), p.Class("B")
	a.Proc("hit", func() {})
	a.Proc("miss", func() {})
	for i := 0; i < 8; i++ {
		b.Proc(fmt.Sprintf("m%d", i), func() {})
	}
	p.MustWeave()
	before := chainPtrs(p)
	rebuilds := p.ChainRebuilds()

	p.Use(&SimpleAspect{Name: "asp", Bind: []Binding{
		bind("call(* A.hit(..))", passAdvice("pass", 1, false))}})

	if got := p.ChainRebuilds() - rebuilds; got != 2 {
		t.Fatalf("Use rebuilt %d chains, want 2 (class-A candidates only)", got)
	}
	after := chainPtrs(p)
	for fqn := range after {
		changed := before[fqn] != after[fqn]
		wantChanged := fqn == "A.hit" || fqn == "A.miss" // hint bucket = class A
		if changed != wantChanged {
			t.Errorf("chain %s changed=%v, want %v", fqn, changed, wantChanged)
		}
	}
	if len(p.Method("A.hit").current.Load().applied) != 1 {
		t.Fatal("incremental Use did not apply advice")
	}
}

func TestIncrementalRemoveAspectRebuildsOnlyWovenMethods(t *testing.T) {
	p := NewProgram("test")
	a, b := p.Class("A"), p.Class("B")
	ahit := a.Proc("hit", func() {})
	for i := 0; i < 8; i++ {
		b.Proc(fmt.Sprintf("m%d", i), func() {})
	}
	p.Use(&SimpleAspect{Name: "asp", Bind: []Binding{
		bind("call(* A.hit(..))", passAdvice("pass", 1, false))}})
	p.MustWeave()
	before := chainPtrs(p)
	rebuilds := p.ChainRebuilds()

	p.RemoveAspect("asp")
	if got := p.ChainRebuilds() - rebuilds; got != 1 {
		t.Fatalf("RemoveAspect rebuilt %d chains, want 1", got)
	}
	after := chainPtrs(p)
	for fqn := range after {
		if (before[fqn] != after[fqn]) != (fqn == "A.hit") {
			t.Errorf("chain %s rebuild state wrong", fqn)
		}
	}
	if len(p.Method("A.hit").current.Load().applied) != 0 {
		t.Fatal("RemoveAspect left advice applied")
	}
	ahit()
}

func TestIncrementalAnnotateRewavesMethod(t *testing.T) {
	p := NewProgram("test")
	var adv atomic.Int32
	m := p.Class("A").Proc("m", func() {})
	p.Use(&SimpleAspect{Name: "asp", Bind: []Binding{
		bind("call(@Marked * *(..))", countAdvice("count", 1, &adv))}})
	p.MustWeave()
	m()
	if adv.Load() != 0 {
		t.Fatal("advice applied before annotation")
	}
	if err := p.Annotate("A.m", testAnno{}); err != nil {
		t.Fatal(err)
	}
	m()
	if adv.Load() != 1 {
		t.Fatal("annotation on woven program did not re-weave the method")
	}
}

func TestLateRegistrationJoinsWeave(t *testing.T) {
	p := NewProgram("test")
	var adv atomic.Int32
	p.Class("A").Proc("first", func() {})
	p.Use(&SimpleAspect{Name: "asp", Bind: []Binding{
		bind("call(* A.*(..))", countAdvice("count", 1, &adv))}})
	p.MustWeave()
	late := p.Class("A").Proc("late", func() {})
	late()
	if adv.Load() != 1 {
		t.Fatal("late-registered method was not woven")
	}
}

func TestUnweaveStopsIncrementalWeaving(t *testing.T) {
	p := NewProgram("test")
	var adv atomic.Int32
	m := p.Class("A").Proc("m", func() {})
	p.MustWeave()
	p.Unweave()
	p.Use(&SimpleAspect{Name: "asp", Bind: []Binding{
		bind("call(* A.m(..))", countAdvice("count", 1, &adv))}})
	m()
	if adv.Load() != 0 {
		t.Fatal("Use wove advice into an unwoven program")
	}
	p.MustWeave()
	m()
	if adv.Load() != 1 {
		t.Fatal("re-Weave did not apply deployed aspect")
	}
}

func TestReportDetails(t *testing.T) {
	p := NewProgram("test")
	p.Class("A").Proc("m", func() {})
	p.Use(&SimpleAspect{Name: "asp", Bind: []Binding{
		bind("call(* A.m(..))", passAdvice("pass", 1, false))}})
	p.MustWeave()
	if err := p.SetAdviceEnabled("asp", false); err != nil {
		t.Fatal(err)
	}
	rep := p.Report()
	if len(rep) != 1 || len(rep[0].Details) != 1 {
		t.Fatalf("report shape wrong: %+v", rep)
	}
	d := rep[0].Details[0]
	if d.Aspect != "asp" || d.Advice != "pass" || d.Pointcut != "call(* A.m(..))" || d.Enabled {
		t.Fatalf("detail = %+v", d)
	}
	if rep[0].Advice[0] != "asp/pass" {
		t.Fatalf("Advice format changed: %v", rep[0].Advice)
	}
}

func TestPlanVerifyAndFrozenHandler(t *testing.T) {
	p := NewProgram("test")
	var adv atomic.Int32
	p.Class("A").Proc("m", func() {})
	p.Use(&SimpleAspect{Name: "asp", Bind: []Binding{
		bind("call(* A.m(..))", countAdvice("count", 1, &adv))}})
	p.MustWeave()

	plan := p.Plan()
	if err := p.VerifyPlan(plan); err != nil {
		t.Fatalf("fresh plan failed verification: %v", err)
	}
	h, ok := p.FrozenHandler("A.m")
	if !ok {
		t.Fatal("FrozenHandler: method missing")
	}
	c := GetCall()
	c.JP = p.Method("A.m").jp
	h(c)
	PutCall(c)
	if adv.Load() != 1 {
		t.Fatal("frozen handler skipped enabled advice")
	}

	// The frozen handler must be immune to later toggles ...
	if err := p.SetAdviceEnabled("asp", false); err != nil {
		t.Fatal(err)
	}
	c = GetCall()
	c.JP = p.Method("A.m").jp
	h(c)
	PutCall(c)
	if adv.Load() != 2 {
		t.Fatal("frozen handler observed a toggle")
	}
	// ... and the drift must be caught by VerifyPlan.
	if err := p.VerifyPlan(plan); err == nil {
		t.Fatal("VerifyPlan missed a gate toggle")
	}

	if _, ok := p.FrozenHandler("A.nope"); ok {
		t.Fatal("FrozenHandler invented a method")
	}
	if err := p.VerifyPlan(StaticPlan{Program: "other"}); err == nil {
		t.Fatal("VerifyPlan accepted a foreign program")
	}
}

// FrozenHandler over a disabled advice must compose without it.
func TestFrozenHandlerSkipsDisabledAdvice(t *testing.T) {
	p := NewProgram("test")
	var adv atomic.Int32
	p.Class("A").Proc("m", func() {})
	p.Use(&SimpleAspect{Name: "asp", Bind: []Binding{
		bind("call(* A.m(..))", countAdvice("count", 1, &adv))}})
	p.MustWeave()
	if err := p.SetAdviceEnabled("asp", false); err != nil {
		t.Fatal(err)
	}
	h, _ := p.FrozenHandler("A.m")
	c := GetCall()
	h(c)
	PutCall(c)
	if adv.Load() != 0 {
		t.Fatal("frozen handler composed a disabled advice")
	}
}

func TestBodyFunc(t *testing.T) {
	p := NewProgram("test")
	var ran bool
	p.Class("A").ForProc("loop", func(lo, hi, step int) { ran = true })
	body, ok := p.Method("A.loop").BodyFunc().(func(lo, hi, step int))
	if !ok {
		t.Fatalf("BodyFunc type = %T", p.Method("A.loop").BodyFunc())
	}
	body(0, 1, 1)
	if !ran {
		t.Fatal("BodyFunc did not invoke the registered body")
	}
}

// Toggling while calls are in flight must be race-clean and every call
// must run the body exactly once (enabled or not).
func TestToggleWhileCallsInFlight(t *testing.T) {
	p := NewProgram("test")
	var body, adv atomic.Int64
	m := p.Class("A").Proc("m", func() { body.Add(1) })
	p.Use(&SimpleAspect{Name: "asp", Bind: []Binding{
		bind("call(* A.m(..))", adviceFunc{name: "count", prec: 1,
			wrap: func(jp *Joinpoint, next HandlerFunc) HandlerFunc {
				return func(c *Call) { adv.Add(1); next(c) }
			}})}})
	p.MustWeave()

	const callers, callsPer = 4, 2000
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < callsPer; j++ {
				m()
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < 200; j++ {
			if err := p.SetAdviceEnabled("asp", j%2 == 0); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	if body.Load() != callers*callsPer {
		t.Fatalf("body ran %d times, want %d", body.Load(), callers*callsPer)
	}
	if adv.Load() > body.Load() {
		t.Fatalf("advice ran more often than body: %d > %d", adv.Load(), body.Load())
	}
}

func BenchmarkWovenCallGatedEnabled(b *testing.B) {
	p := NewProgram("bench")
	m := p.Class("A").Proc("m", func() {})
	p.Use(&SimpleAspect{Name: "asp", Bind: []Binding{
		bind("call(* A.m(..))", passAdvice("pass", 1, false))}})
	p.MustWeave()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m()
	}
}

func BenchmarkWovenCallDisabledAdvice(b *testing.B) {
	p := NewProgram("bench")
	m := p.Class("A").Proc("m", func() {})
	p.Use(&SimpleAspect{Name: "asp", Bind: []Binding{
		bind("call(* A.m(..))", passAdvice("pass", 1, false))}})
	p.MustWeave()
	if err := p.SetAdviceEnabled("asp", false); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m()
	}
}

func BenchmarkWovenCallUngatedChain(b *testing.B) {
	p := NewProgram("bench", Ungated())
	m := p.Class("A").Proc("m", func() {})
	p.Use(&SimpleAspect{Name: "asp", Bind: []Binding{
		bind("call(* A.m(..))", passAdvice("pass", 1, false))}})
	p.MustWeave()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m()
	}
}
