package weaver

import (
	"testing"

	"aomplib/internal/rt"
)

// BenchmarkWovenCallWorkerAdviceInRegion measures the hot path that
// matters: a worker-needing woven call made inside a parallel region.
func BenchmarkWovenCallWorkerAdviceInRegion(b *testing.B) {
	p := NewProgram("bench")
	var sink int
	f := p.Class("A").Proc("m", func() { sink++ })
	pass := adviceFunc{name: "pass", prec: 1, worker: true,
		wrap: func(jp *Joinpoint, next HandlerFunc) HandlerFunc { return next }}
	p.Use(&SimpleAspect{Name: "asp", Bind: []Binding{bind("call(* A.m(..))", pass)}})
	p.MustWeave()
	b.ResetTimer()
	rt.Region(1, func(w *rt.Worker) {
		for i := 0; i < b.N; i++ {
			f()
		}
	})
	_ = sink
}
