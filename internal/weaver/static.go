package weaver

import (
	"fmt"
	"reflect"
	"sort"
)

// StaticPlan is a frozen snapshot of a program's weave: every registered
// method with the advice its chain currently applies and each advice's
// gate state. The static-weave backend (cmd/weavegen) embeds a plan
// literal in generated code and checks it against the live program with
// VerifyPlan, so statically woven call paths fail loudly instead of
// silently diverging when the dynamic configuration drifts.
type StaticPlan struct {
	// Program is the program name the plan was taken from.
	Program string
	// Methods lists every registered method sorted by FQN.
	Methods []PlannedMethod
}

// PlannedMethod is one method's weave state inside a StaticPlan.
type PlannedMethod struct {
	// FQN is "Class.method".
	FQN string
	// Kind is the joinpoint's signature kind.
	Kind Kind
	// NeedsWorker reports whether any enabled advice resolves the current
	// team worker; generated entry points only then pay the lookup.
	NeedsWorker bool
	// Advice lists applied advice outermost-first.
	Advice []PlannedAdvice
}

// PlannedAdvice identifies one applied advice and its gate state at plan
// time.
type PlannedAdvice struct {
	// Aspect is the deploying aspect's name.
	Aspect string
	// Name is the advice name.
	Name string
	// Enabled is the advice gate's state when the plan was taken.
	Enabled bool
}

// Plan snapshots the program's current weave as a StaticPlan.
func (p *Program) Plan() StaticPlan {
	p.mu.Lock()
	defer p.mu.Unlock()
	sp := StaticPlan{Program: p.name}
	for _, m := range p.methods {
		pm := PlannedMethod{FQN: m.jp.FQN(), Kind: m.jp.kind}
		for _, ad := range m.current.Load().applied {
			enabled := ad.gate == nil || ad.gate.on()
			pm.Advice = append(pm.Advice, PlannedAdvice{
				Aspect:  ad.aspect,
				Name:    ad.advice.AdviceName(),
				Enabled: enabled,
			})
			if enabled && ad.advice.NeedsWorker() {
				pm.NeedsWorker = true
			}
		}
		sp.Methods = append(sp.Methods, pm)
	}
	sort.Slice(sp.Methods, func(i, j int) bool { return sp.Methods[i].FQN < sp.Methods[j].FQN })
	return sp
}

// VerifyPlan checks that the program's current weave matches a plan taken
// earlier (typically the literal embedded by cmd/weavegen). A mismatch
// means the static-woven code was generated for a different configuration
// and must be regenerated.
func (p *Program) VerifyPlan(sp StaticPlan) error {
	cur := p.Plan()
	if cur.Program != sp.Program {
		return fmt.Errorf("weaver: static plan is for program %q, live program is %q", sp.Program, cur.Program)
	}
	if len(cur.Methods) != len(sp.Methods) {
		return fmt.Errorf("weaver: static plan has %d methods, live program has %d — regenerate (go generate)",
			len(sp.Methods), len(cur.Methods))
	}
	for i := range cur.Methods {
		if !reflect.DeepEqual(cur.Methods[i], sp.Methods[i]) {
			return fmt.Errorf("weaver: static plan drift at %s: plan %+v, live %+v — regenerate (go generate)",
				sp.Methods[i].FQN, sp.Methods[i], cur.Methods[i])
		}
	}
	return nil
}

// FrozenHandler composes the named method's currently enabled advice into
// a handler with no gate loads: the chain a statically woven entry point
// dispatches through. Unlike the live chain it never changes — later
// toggles and re-weaves do not affect it — which is exactly the
// frozen-configuration contract the static backend trades
// reconfigurability for.
// The second result is false if the method is unknown.
func (p *Program) FrozenHandler(fqn string) (HandlerFunc, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	m := p.byFQN[fqn]
	if m == nil {
		return nil, false
	}
	ch := m.current.Load()
	h := m.body
	for i := len(ch.applied) - 1; i >= 0; i-- { // wrap innermost-first
		ad := ch.applied[i]
		if ad.gate != nil && !ad.gate.on() {
			continue
		}
		h = ad.advice.Wrap(m.jp, h)
	}
	return h, true
}
