package weaver

import (
	"sync"
	"sync/atomic"
	"testing"

	"aomplib/internal/pointcut"
)

// Grandparent chains and interfaces inherited through parents must both
// satisfy '+' pointcuts — "bindings that are retained over the class
// hierarchy".
func TestDeepInheritanceChain(t *testing.T) {
	p := NewProgram("t")
	base := p.Class("Base", Implements("Runnable"))
	mid := p.Class("Mid", Extends(base))
	leaf := p.Class("Leaf", Extends(mid))
	var calls atomic.Int32
	count := adviceFunc{name: "c", prec: 1,
		wrap: func(jp *Joinpoint, next HandlerFunc) HandlerFunc {
			return func(c *Call) { calls.Add(1); next(c) }
		}}
	f := leaf.Proc("work", func() {})
	p.Use(&SimpleAspect{Name: "viaGrandparent", Bind: []Binding{
		{Matcher: pointcut.MustParse("call(* Base+.work(..))"), Advice: count}}})
	p.Use(&SimpleAspect{Name: "viaInheritedInterface", Bind: []Binding{
		{Matcher: pointcut.MustParse("call(* Runnable+.work(..))"), Advice: count}}})
	p.MustWeave()
	f()
	if calls.Load() != 2 {
		t.Fatalf("advice through hierarchy applied %d times, want 2", calls.Load())
	}
}

// Weaving while calls are in flight must be safe: in-flight calls finish
// on their old chain, new calls pick up the new one, and nothing races.
func TestConcurrentWeaveDuringCalls(t *testing.T) {
	p := NewProgram("t")
	var sink atomic.Int64
	f := p.Class("A").Proc("m", func() { sink.Add(1) })
	pass := adviceFunc{name: "p", prec: 1,
		wrap: func(jp *Joinpoint, next HandlerFunc) HandlerFunc { return next }}
	p.Use(&SimpleAspect{Name: "asp", Bind: []Binding{bind("call(* A.m(..))", pass)}})

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Complete at least one call before honoring stop: the weave
			// loop below can finish before this goroutine is ever
			// scheduled, and the test's invariant is that calls complete,
			// not that they overlap the weaving.
			f()
			for {
				select {
				case <-stop:
					return
				default:
					f()
				}
			}
		}()
	}
	for i := 0; i < 200; i++ {
		p.MustWeave()
		p.Unweave()
	}
	close(stop)
	wg.Wait()
	if sink.Load() == 0 {
		t.Fatal("no calls completed")
	}
}

// Negative-step for methods must work-share correctly too.
func TestForProcNegativeStepRange(t *testing.T) {
	p := NewProgram("t")
	var got []int
	f := p.Class("A").ForProc("down", func(lo, hi, step int) {
		for i := lo; i > hi; i += step {
			got = append(got, i)
		}
	})
	f(10, 0, -2)
	want := []int{10, 8, 6, 4, 2}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}
