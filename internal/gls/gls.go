// Package gls provides goroutine-local storage.
//
// AOmpLib's execution model (paper §III.A) relies on dynamic scoping: code
// running anywhere in the dynamic extent of a parallel region must be able
// to discover the worker (thread id, team) that is executing it, exactly as
// Java code can via ThreadLocal. Go deliberately hides goroutine identity,
// so this package reconstructs it by parsing the header line emitted by
// runtime.Stack, which is stable across all Go releases to date
// ("goroutine <id> [running]:"). The identifier is used only as a map key;
// no scheduling decision depends on it.
//
// The store is sharded to keep contention low when many workers register
// and deregister around parallel-region boundaries. Lookup cost is dominated
// by runtime.Stack (≈1µs); AOmpLib only performs lookups at woven
// method-call granularity (outer loops), never in inner loops, mirroring the
// paper's claim that advice overhead is negligible at region/work-sharing
// granularity.
package gls

import (
	"bytes"
	"runtime"
	"strconv"
	"sync"
)

// shardCount must be a power of two; 64 shards keep the per-shard mutexes
// uncontended for the team sizes the library targets (≤ hundreds).
const shardCount = 64

type shard struct {
	mu sync.RWMutex
	m  map[int64][]any
}

// Store maps the current goroutine to a stack of values. A stack (rather
// than a single slot) is required to support nested parallel regions: each
// region entry pushes the inner worker context and pops it on exit,
// restoring the enclosing one.
type Store struct {
	shards [shardCount]shard
}

// NewStore returns an empty store.
func NewStore() *Store {
	s := &Store{}
	for i := range s.shards {
		s.shards[i].m = make(map[int64][]any)
	}
	return s
}

func (s *Store) shardFor(id int64) *shard {
	return &s.shards[uint64(id)&(shardCount-1)]
}

// Push associates v with the current goroutine, stacking on top of any
// previous association (nested regions).
func (s *Store) Push(v any) {
	id := Goid()
	sh := s.shardFor(id)
	sh.mu.Lock()
	sh.m[id] = append(sh.m[id], v)
	sh.mu.Unlock()
}

// Pop removes the most recent association for the current goroutine.
// It panics if the goroutine has no association, which always indicates a
// Push/Pop pairing bug in the runtime layer.
func (s *Store) Pop() {
	id := Goid()
	sh := s.shardFor(id)
	sh.mu.Lock()
	stack := sh.m[id]
	if len(stack) == 0 {
		sh.mu.Unlock()
		panic("gls: Pop without matching Push")
	}
	if len(stack) == 1 {
		delete(sh.m, id)
	} else {
		sh.m[id] = stack[:len(stack)-1]
	}
	sh.mu.Unlock()
}

// Current returns the most recent value associated with the current
// goroutine, or nil if there is none (code running outside any parallel
// region).
func (s *Store) Current() any {
	id := Goid()
	sh := s.shardFor(id)
	sh.mu.RLock()
	stack := sh.m[id]
	var v any
	if n := len(stack); n > 0 {
		v = stack[n-1]
	}
	sh.mu.RUnlock()
	return v
}

// Depth reports the nesting depth registered for the current goroutine.
func (s *Store) Depth() int {
	id := Goid()
	sh := s.shardFor(id)
	sh.mu.RLock()
	d := len(sh.m[id])
	sh.mu.RUnlock()
	return d
}

var goroutinePrefix = []byte("goroutine ")

// Goid returns the runtime id of the calling goroutine.
func Goid() int64 {
	buf := make([]byte, 64)
	n := runtime.Stack(buf, false)
	buf = buf[:n]
	// Header: "goroutine 123 [running]:"
	if !bytes.HasPrefix(buf, goroutinePrefix) {
		panic("gls: unexpected runtime.Stack header: " + string(buf))
	}
	buf = buf[len(goroutinePrefix):]
	sp := bytes.IndexByte(buf, ' ')
	if sp < 0 {
		panic("gls: unexpected runtime.Stack header")
	}
	id, err := strconv.ParseInt(string(buf[:sp]), 10, 64)
	if err != nil {
		panic("gls: cannot parse goroutine id: " + err.Error())
	}
	return id
}
