// Package gls provides goroutine-local storage.
//
// AOmpLib's execution model (paper §III.A) relies on dynamic scoping: code
// running anywhere in the dynamic extent of a parallel region must be able
// to discover the worker (thread id, team) that is executing it, exactly as
// Java code can via ThreadLocal. Go deliberately hides goroutine identity,
// so this package reconstructs a per-goroutine binding stack by other
// means. Two backends are provided:
//
//   - The default backend (label.go) stores the binding stack in the
//     goroutine's profiler-label slot, reached through the stable
//     runtime/pprof label hooks. Lookup is a pointer load plus a one-word
//     validation — a few nanoseconds — which is what lets Runtime v2 keep
//     woven dispatch allocation-free and close to direct-call cost even for
//     worker-dependent advice. Because the label slot is copied to new
//     goroutines at spawn, bindings are inherited by goroutines started
//     inside a parallel region's dynamic extent (the OpenMP-task-like
//     semantics rt builds on). Programs that set their own profiler labels
//     (runtime/pprof.Do) while inside a region temporarily shadow the
//     binding; lookups then degrade to "no binding" instead of
//     misbehaving.
//
//   - A portable fallback (portable.go, build tag aomplib_portable_gls)
//     keeps the original sharded map keyed by the goroutine id parsed from
//     runtime.Stack. It has no spawn-time inheritance and a ~µs lookup, but
//     depends on nothing beyond the documented runtime.Stack header format.
//
// The store is a stack (rather than a single slot) to support nested
// parallel regions: each region entry pushes the inner worker context and
// pops it on exit, restoring the enclosing one. Push and Pop must be paired
// on the same goroutine.
package gls

import (
	"bytes"
	"runtime"
)

var goroutinePrefix = []byte("goroutine ")

// Goid returns the runtime id of the calling goroutine, parsed from the
// runtime.Stack header line ("goroutine <id> [running]:"), which is stable
// across all Go releases to date. It allocates nothing and is used by the
// portable backend and by diagnostics; the identifier is only ever a map
// key — no scheduling decision depends on it.
func Goid() int64 {
	var stack [64]byte
	n := runtime.Stack(stack[:], false)
	buf := stack[:n]
	if !bytes.HasPrefix(buf, goroutinePrefix) {
		panic("gls: unexpected runtime.Stack header: " + string(buf))
	}
	buf = buf[len(goroutinePrefix):]
	var id int64
	for i := 0; i < len(buf) && buf[i] >= '0' && buf[i] <= '9'; i++ {
		id = id*10 + int64(buf[i]-'0')
	}
	if id == 0 {
		panic("gls: cannot parse goroutine id from runtime.Stack header")
	}
	return id
}
