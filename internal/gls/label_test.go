//go:build !aomplib_portable_gls

package gls

import (
	"sync"
	"testing"
)

// These tests pin down semantics specific to the label backend: bindings
// active at spawn time are inherited by the child goroutine — the property
// rt uses to extend a region's dynamic extent to goroutines started inside
// it.

func TestInheritedBySpawnedGoroutine(t *testing.T) {
	s := NewStore()
	s.Push("region")
	defer s.Pop()
	got := make(chan any, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		got <- s.Current()
	}()
	wg.Wait()
	if v := <-got; v != "region" {
		t.Fatalf("child saw %v, want inherited binding", v)
	}
}

func TestChildPushDoesNotLeakToParent(t *testing.T) {
	s := NewStore()
	s.Push("outer")
	defer s.Pop()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.Push("child")
		if s.Current() != "child" {
			t.Error("child did not see its own push")
		}
		s.Pop()
		if s.Current() != "outer" {
			t.Error("child pop did not restore inherited binding")
		}
	}()
	wg.Wait()
	if s.Current() != "outer" {
		t.Fatalf("parent binding clobbered: %v", s.Current())
	}
}

// A chain inherited mid-stack stays readable while the parent keeps
// pushing and popping its own frames (race-detector coverage for the
// atomic prev links).
func TestConcurrentTraversalWhileParentMutates(t *testing.T) {
	s := NewStore()
	s.Push("base")
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if v := s.Current(); v != "base" {
					t.Error("inherited binding lost during parent mutation")
					return
				}
			}
		}()
	}
	other := NewStore()
	for i := 0; i < 1000; i++ {
		other.Push(i)
		if other.Current() != i {
			t.Fatal("parent lost its own binding")
		}
		other.Pop()
	}
	close(stop)
	wg.Wait()
	s.Pop()
}
