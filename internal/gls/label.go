//go:build !aomplib_portable_gls

package gls

import (
	"math/rand/v2"
	"sync/atomic"
	"unsafe"

	// The profiler-label hooks below are provided by the runtime under
	// runtime/pprof's name; the import documents the dependency.
	_ "runtime/pprof"
)

// The runtime keeps one pointer-sized profiler-label slot per goroutine
// (g.labels). It is read and written only by the owning goroutine, scanned
// by the garbage collector, and — crucially for the execution model —
// copied to child goroutines at spawn. These two hooks are how
// runtime/pprof itself accesses the slot; they have been stable since
// Go 1.9.

//go:linkname runtime_getProfLabel runtime/pprof.runtime_getProfLabel
func runtime_getProfLabel() unsafe.Pointer

//go:linkname runtime_setProfLabel runtime/pprof.runtime_setProfLabel
func runtime_setProfLabel(labels unsafe.Pointer)

// nodeMagic distinguishes this package's nodes from foreign label maps
// (runtime/pprof.labelMap) that the application may have installed. It is
// randomised per process so a foreign allocation cannot collide with it by
// construction; the low bit is set so it can never equal a small count or
// a heap pointer pattern of all zeroes.
var nodeMagic = rand.Uint64() | 1

// node is one goroutine-local binding. Nodes from different stores share a
// single per-goroutine chain through prev (the label slot holds the head).
// magic, store and val are immutable after publication; prev is atomic
// because the owning goroutine may unlink an interior node (Pop of an
// outer store) while goroutines that inherited the chain at spawn are
// still traversing it.
type node struct {
	magic uint64
	store *Store
	val   any
	prev  atomic.Pointer[node]
}

// own interprets a label pointer as one of our nodes, or returns nil for
// nil and foreign pointers. The first word is validated through a *uint64
// view before the *node conversion: reading one word of a foreign label
// map is safe (pprof label maps are word-aligned multi-word allocations),
// and converting to the larger node type only after the magic matches
// keeps the unsafe.Pointer rules (and -d=checkptr) satisfied.
func own(p unsafe.Pointer) *node {
	if p == nil || *(*uint64)(p) != nodeMagic {
		return nil
	}
	return (*node)(p)
}

// Store maps the current goroutine to a stack of values. Multiple stores
// interleave on one shared per-goroutine chain and are distinguished by
// store identity — the struct must have non-zero size so each NewStore
// call yields a distinct address.
type Store struct {
	_ uint8
}

// NewStore returns an empty store.
func NewStore() *Store { return &Store{} }

// Push associates v with the current goroutine, stacking on top of any
// previous association (nested regions). The binding is inherited by
// goroutines spawned while it is active.
func (s *Store) Push(v any) {
	n := &node{magic: nodeMagic, store: s, val: v}
	n.prev.Store((*node)(runtime_getProfLabel()))
	runtime_setProfLabel(unsafe.Pointer(n))
}

// Token records the goroutine-local state captured by PushToken, so
// Restore can rewind to it wholesale.
type Token struct {
	prev *node // the label (ours, foreign, or nil) current before the push
}

// PushToken is Push returning a Token for Restore. Strictly LIFO scopes —
// parallel-region entry/exit — prefer this pairing: Restore rewinds the
// goroutine's slot to exactly the captured state, so it stays safe even if
// the application clobbered the label slot in between (runtime/pprof label
// APIs replace the slot and restore their own idea of "previous", which
// silently discards bindings pushed after the context they captured).
func (s *Store) PushToken(v any) Token {
	prev := (*node)(runtime_getProfLabel())
	n := &node{magic: nodeMagic, store: s, val: v}
	n.prev.Store(prev)
	runtime_setProfLabel(unsafe.Pointer(n))
	return Token{prev: prev}
}

// Restore rewinds the goroutine's binding state to the point the Token was
// captured, discarding anything stacked (or clobbered) since.
func (s *Store) Restore(t Token) {
	runtime_setProfLabel(unsafe.Pointer(t.prev))
}

// Slot is a preallocated, reusable binding of one (store, value) pair.
// PushSlot/Restore pairs bind and unbind it at pointer cost — no node
// allocation — which is what lets a hot team's workers re-establish their
// context on every lease of the team with zero allocations.
//
// A Slot may be live on at most one goroutine's chain at a time; callers
// (the team lease protocol in internal/rt) must guarantee exclusivity.
// Goroutines that inherited a chain through the slot at spawn keep
// traversing safely after the slot is re-pushed elsewhere: the store and
// value are immutable after NewSlot and the chain link is atomic, so they
// merely observe the slot's current link.
type Slot struct{ n node }

// NewSlot returns a reusable binding of v for this store.
func (s *Store) NewSlot(v any) *Slot {
	sl := &Slot{}
	sl.n.magic = nodeMagic
	sl.n.store = s
	sl.n.val = v
	return sl
}

// PushSlot binds sl on the current goroutine, stacking on top of whatever
// is bound, and returns the Token that Restore rewinds. Unlike PushToken
// it allocates nothing: the node lives in the slot.
func (s *Store) PushSlot(sl *Slot) Token {
	prev := (*node)(runtime_getProfLabel())
	sl.n.prev.Store(prev)
	runtime_setProfLabel(unsafe.Pointer(&sl.n))
	return Token{prev: prev}
}

// Pop removes the most recent association this goroutine holds for s,
// restoring the one below it (which may belong to another store, or be a
// foreign profiler label). It panics if no association is reachable, which
// always indicates a Push/Pop pairing bug in the runtime layer.
func (s *Store) Pop() {
	head := own(runtime_getProfLabel())
	if head != nil && head.store == s {
		runtime_setProfLabel(unsafe.Pointer(head.prev.Load()))
		return
	}
	for n := head; n != nil; {
		p := own(unsafe.Pointer(n.prev.Load()))
		if p == nil {
			break
		}
		if p.store == s {
			n.prev.Store(p.prev.Load())
			return
		}
		n = p
	}
	panic("gls: Pop without matching Push")
}

// Current returns the most recent value associated with the current
// goroutine (directly or by spawn-time inheritance), or nil if there is
// none — code running outside any parallel region.
func (s *Store) Current() any {
	for n := own(runtime_getProfLabel()); n != nil; n = own(unsafe.Pointer(n.prev.Load())) {
		if n.store == s {
			return n.val
		}
	}
	return nil
}

// Depth reports the number of bindings of this store reachable from the
// current goroutine.
func (s *Store) Depth() int {
	d := 0
	for n := own(runtime_getProfLabel()); n != nil; n = own(unsafe.Pointer(n.prev.Load())) {
		if n.store == s {
			d++
		}
	}
	return d
}
