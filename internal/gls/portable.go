//go:build aomplib_portable_gls

package gls

import "sync"

// Portable backend: a sharded map keyed by the goroutine id parsed from
// runtime.Stack. Lookup cost is dominated by runtime.Stack (≈1µs); AOmpLib
// only performs lookups at woven method-call granularity (outer loops),
// never in inner loops. Unlike the label backend, bindings are NOT
// inherited by spawned goroutines.

// shardCount must be a power of two; 64 shards keep the per-shard mutexes
// uncontended for the team sizes the library targets (≤ hundreds).
const shardCount = 64

type shard struct {
	mu sync.RWMutex
	m  map[int64][]any
}

// Store maps the current goroutine to a stack of values.
type Store struct {
	shards [shardCount]shard
}

// NewStore returns an empty store.
func NewStore() *Store {
	s := &Store{}
	for i := range s.shards {
		s.shards[i].m = make(map[int64][]any)
	}
	return s
}

func (s *Store) shardFor(id int64) *shard {
	return &s.shards[uint64(id)&(shardCount-1)]
}

// Token exists for API parity with the label backend; the map store needs
// no state to rewind (it is immune to profiler-label clobbering).
type Token struct{}

// PushToken is Push returning a Token for Restore.
func (s *Store) PushToken(v any) Token {
	s.Push(v)
	return Token{}
}

// Restore undoes the matching PushToken.
func (s *Store) Restore(Token) { s.Pop() }

// Slot is the portable counterpart of the label backend's reusable
// binding. The map store has no per-binding node to recycle, so the slot
// simply remembers the value and PushSlot pushes it; the map operations
// may allocate, which the portable backend's performance contract allows.
type Slot struct{ v any }

// NewSlot returns a reusable binding of v for this store.
func (s *Store) NewSlot(v any) *Slot { return &Slot{v: v} }

// PushSlot binds the slot's value on the current goroutine, stacking on
// top of any previous association.
func (s *Store) PushSlot(sl *Slot) Token { return s.PushToken(sl.v) }

// Push associates v with the current goroutine, stacking on top of any
// previous association (nested regions).
func (s *Store) Push(v any) {
	id := Goid()
	sh := s.shardFor(id)
	sh.mu.Lock()
	sh.m[id] = append(sh.m[id], v)
	sh.mu.Unlock()
}

// Pop removes the most recent association for the current goroutine.
// It panics if the goroutine has no association, which always indicates a
// Push/Pop pairing bug in the runtime layer.
func (s *Store) Pop() {
	id := Goid()
	sh := s.shardFor(id)
	sh.mu.Lock()
	stack := sh.m[id]
	if len(stack) == 0 {
		sh.mu.Unlock()
		panic("gls: Pop without matching Push")
	}
	if len(stack) == 1 {
		delete(sh.m, id)
	} else {
		sh.m[id] = stack[:len(stack)-1]
	}
	sh.mu.Unlock()
}

// Current returns the most recent value associated with the current
// goroutine, or nil if there is none (code running outside any parallel
// region).
func (s *Store) Current() any {
	id := Goid()
	sh := s.shardFor(id)
	sh.mu.RLock()
	stack := sh.m[id]
	var v any
	if n := len(stack); n > 0 {
		v = stack[n-1]
	}
	sh.mu.RUnlock()
	return v
}

// Depth reports the nesting depth registered for the current goroutine.
func (s *Store) Depth() int {
	id := Goid()
	sh := s.shardFor(id)
	sh.mu.RLock()
	d := len(sh.m[id])
	sh.mu.RUnlock()
	return d
}
