package gls

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestGoidStable(t *testing.T) {
	a, b := Goid(), Goid()
	if a != b {
		t.Fatalf("Goid changed within one goroutine: %d vs %d", a, b)
	}
}

func TestGoidDistinctAcrossGoroutines(t *testing.T) {
	main := Goid()
	ch := make(chan int64, 8)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ch <- Goid()
		}()
	}
	wg.Wait()
	close(ch)
	seen := map[int64]bool{main: true}
	for id := range ch {
		if seen[id] {
			t.Fatalf("duplicate goroutine id %d", id)
		}
		seen[id] = true
	}
}

func TestPushPopCurrent(t *testing.T) {
	s := NewStore()
	if got := s.Current(); got != nil {
		t.Fatalf("empty store Current = %v, want nil", got)
	}
	s.Push("outer")
	if got := s.Current(); got != "outer" {
		t.Fatalf("Current = %v, want outer", got)
	}
	s.Push("inner")
	if got := s.Current(); got != "inner" {
		t.Fatalf("Current = %v, want inner (nested)", got)
	}
	if d := s.Depth(); d != 2 {
		t.Fatalf("Depth = %d, want 2", d)
	}
	s.Pop()
	if got := s.Current(); got != "outer" {
		t.Fatalf("after Pop Current = %v, want outer", got)
	}
	s.Pop()
	if got := s.Current(); got != nil {
		t.Fatalf("after final Pop Current = %v, want nil", got)
	}
}

func TestPopWithoutPushPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pop on empty store did not panic")
		}
	}()
	NewStore().Pop()
}

// Two stores on the same goroutine must not observe each other's values,
// whatever the interleaving of their pushes.
func TestStoresIndependent(t *testing.T) {
	a, b := NewStore(), NewStore()
	a.Push("a1")
	b.Push("b1")
	a.Push("a2")
	if a.Current() != "a2" || b.Current() != "b1" {
		t.Fatalf("interleaved stores: a=%v b=%v", a.Current(), b.Current())
	}
	if a.Depth() != 2 || b.Depth() != 1 {
		t.Fatalf("depths a=%d b=%d", a.Depth(), b.Depth())
	}
	a.Pop() // unlinks a2
	if a.Current() != "a1" || b.Current() != "b1" {
		t.Fatalf("after pop: a=%v b=%v", a.Current(), b.Current())
	}
	b.Pop()
	if a.Current() != "a1" || b.Current() != nil {
		t.Fatalf("after b pop: a=%v b=%v", a.Current(), b.Current())
	}
	a.Pop()
	if a.Current() != nil || a.Depth() != 0 {
		t.Fatalf("store a not empty after final pop")
	}
}

// A goroutine's own Push always shadows whatever it started with, and its
// Pop restores it — worker isolation inside teams relies on this.
func TestOwnPushShadows(t *testing.T) {
	s := NewStore()
	s.Push("main")
	defer s.Pop()
	var wg sync.WaitGroup
	errs := make(chan string, 32)
	for i := 0; i < 32; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.Push(i)
			if v := s.Current(); v != i {
				errs <- "goroutine did not see its own value"
			}
			s.Pop()
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	if v := s.Current(); v != "main" {
		t.Fatalf("main value clobbered: %v", v)
	}
}

// Property: for any sequence of pushes, Current always reflects the last
// push and Depth the number of pushes.
func TestPushStackProperty(t *testing.T) {
	s := NewStore()
	f := func(vals []int) bool {
		for i, v := range vals {
			s.Push(v)
			if s.Depth() != i+1 || s.Current() != v {
				return false
			}
		}
		for i := len(vals) - 1; i >= 0; i-- {
			if s.Current() != vals[i] {
				return false
			}
			s.Pop()
		}
		return s.Current() == nil && s.Depth() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkGoid(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Goid()
	}
}

func BenchmarkCurrent(b *testing.B) {
	s := NewStore()
	s.Push("x")
	defer s.Pop()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Current()
	}
}

func BenchmarkPushPop(b *testing.B) {
	s := NewStore()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Push(i)
		s.Pop()
	}
}

// PushToken/Restore is the LIFO-scope pairing used by region entry/exit;
// Restore must rewind wholesale.
func TestPushTokenRestore(t *testing.T) {
	s := NewStore()
	tok := s.PushToken("outer")
	inner := s.PushToken("inner")
	if s.Current() != "inner" {
		t.Fatalf("Current = %v", s.Current())
	}
	s.Restore(inner)
	if s.Current() != "outer" {
		t.Fatalf("after inner restore Current = %v", s.Current())
	}
	s.Restore(tok)
	if s.Current() != nil || s.Depth() != 0 {
		t.Fatalf("after outer restore: %v depth %d", s.Current(), s.Depth())
	}
}
