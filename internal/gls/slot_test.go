package gls

import "testing"

// Slots are the reusable bindings behind hot-team workers: one slot must
// survive many push/restore rounds, interleave with ordinary PushToken
// bindings, and always expose its value while bound.
func TestSlotReusableAcrossRounds(t *testing.T) {
	s := NewStore()
	sl := s.NewSlot("worker")
	for round := 0; round < 5; round++ {
		if s.Current() != nil {
			t.Fatalf("round %d: binding leaked from previous round", round)
		}
		tok := s.PushSlot(sl)
		if got := s.Current(); got != "worker" {
			t.Fatalf("round %d: Current = %v, want worker", round, got)
		}
		s.Restore(tok)
	}
	if s.Current() != nil {
		t.Fatal("binding leaked after final restore")
	}
}

func TestSlotStacksWithPushToken(t *testing.T) {
	s := NewStore()
	sl := s.NewSlot("inner")
	outer := s.PushToken("outer")
	tok := s.PushSlot(sl)
	if s.Current() != "inner" {
		t.Fatalf("Current = %v, want inner", s.Current())
	}
	if d := s.Depth(); d != 2 {
		t.Fatalf("Depth = %d, want 2", d)
	}
	s.Restore(tok)
	if s.Current() != "outer" {
		t.Fatalf("Current after restore = %v, want outer", s.Current())
	}
	s.Restore(outer)
	if s.Current() != nil {
		t.Fatal("binding leaked")
	}
}

func TestSlotsFromDistinctStoresInterleave(t *testing.T) {
	a, b := NewStore(), NewStore()
	slA, slB := a.NewSlot(1), b.NewSlot(2)
	tokA := a.PushSlot(slA)
	tokB := b.PushSlot(slB)
	if a.Current() != 1 || b.Current() != 2 {
		t.Fatalf("cross-store slots collided: a=%v b=%v", a.Current(), b.Current())
	}
	b.Restore(tokB)
	if a.Current() != 1 || b.Current() != nil {
		t.Fatalf("restore of b disturbed a: a=%v b=%v", a.Current(), b.Current())
	}
	a.Restore(tokA)
}
