// Package evolib is a compact evolutionary-computation framework in the
// mould of JECoLi, the "Java Evolutionary Computation Library" the paper
// reports as AOmpLib's flagship application (§VII: "The library is being
// successfully applied to many Java frameworks ... One of such cases is
// the JECoLi"). It implements a generational genetic algorithm over
// real-valued genomes — population initialisation, tournament selection,
// uniform crossover, Gaussian mutation, elitism — written as a purely
// sequential base program whose hot spots are for methods, so AOmpLib
// aspects can parallelise fitness evaluation and breeding without
// touching the domain code.
//
// Determinism: every individual's randomness derives from a generator
// seeded by (base seed, generation, slot index), so results are identical
// regardless of how slots are distributed over threads — the same
// technique the MonteCarlo benchmark uses.
package evolib

import (
	"fmt"
	"math"
	"sort"

	"aomplib/internal/rng"
)

// Fitness scores a genome; larger is better. Implementations must be
// pure (no shared mutable state) so evaluation can be work-shared.
type Fitness func(genome []float64) float64

// Config parametrises a run.
type Config struct {
	// PopSize is the number of individuals (must be ≥ 2).
	PopSize int
	// GenomeLen is the number of real-valued genes.
	GenomeLen int
	// Generations is the number of generational steps.
	Generations int
	// TournamentK is the tournament size for selection (≥ 1).
	TournamentK int
	// CrossoverRate in [0,1] is the per-pair uniform crossover chance.
	CrossoverRate float64
	// MutationRate in [0,1] is the per-gene Gaussian mutation chance.
	MutationRate float64
	// MutationSigma is the mutation step width.
	MutationSigma float64
	// Elite is the number of best individuals copied unchanged.
	Elite int
	// Seed makes runs reproducible.
	Seed int64
	// LowerBound/UpperBound clamp genes.
	LowerBound, UpperBound float64
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.PopSize < 2:
		return fmt.Errorf("evolib: PopSize %d < 2", c.PopSize)
	case c.GenomeLen < 1:
		return fmt.Errorf("evolib: GenomeLen %d < 1", c.GenomeLen)
	case c.TournamentK < 1:
		return fmt.Errorf("evolib: TournamentK %d < 1", c.TournamentK)
	case c.Elite < 0 || c.Elite >= c.PopSize:
		return fmt.Errorf("evolib: Elite %d out of range", c.Elite)
	case c.UpperBound <= c.LowerBound:
		return fmt.Errorf("evolib: bounds [%v,%v] empty", c.LowerBound, c.UpperBound)
	}
	return nil
}

// Individual is one genome with its cached fitness.
type Individual struct {
	Genome  []float64
	Fitness float64
}

// GA is the base program: a generational genetic algorithm whose hot
// loops are exposed as for methods (EvaluateSlots, BreedSlots).
type GA struct {
	cfg Config
	fit Fitness

	pop  []Individual
	next []Individual

	generation int
	// BestHistory records the best fitness after each generation.
	BestHistory []float64
}

// New builds a GA with a deterministically initialised population.
func New(cfg Config, fit Fitness) (*GA, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if fit == nil {
		return nil, fmt.Errorf("evolib: nil fitness")
	}
	g := &GA{cfg: cfg, fit: fit}
	g.pop = make([]Individual, cfg.PopSize)
	g.next = make([]Individual, cfg.PopSize)
	span := cfg.UpperBound - cfg.LowerBound
	for i := range g.pop {
		r := rng.New(cfg.Seed ^ int64(i)*0x9E3779B9)
		genome := make([]float64, cfg.GenomeLen)
		for j := range genome {
			genome[j] = cfg.LowerBound + span*r.NextDouble()
		}
		g.pop[i] = Individual{Genome: genome, Fitness: math.Inf(-1)}
		g.next[i] = Individual{Genome: make([]float64, cfg.GenomeLen)}
	}
	return g, nil
}

// slotRand derives the deterministic generator for one (generation, slot)
// pair, independent of thread assignment.
func (g *GA) slotRand(slot int) *rng.Random {
	return rng.New(g.cfg.Seed + int64(g.generation)*1_000_003 + int64(slot)*7_919)
}

// EvaluateSlots is the fitness-evaluation for method over population
// slots [lo,hi): the dominant, embarrassingly parallel cost of a GA and
// the loop JECoLi parallelises with AOmpLib.
func (g *GA) EvaluateSlots(lo, hi, step int) {
	for i := lo; i < hi; i += step {
		g.pop[i].Fitness = g.fit(g.pop[i].Genome)
	}
}

// rankIndices returns population indices sorted best-first. It runs on a
// single activity (cheap: O(P log P) against the O(P·eval) evaluation).
func (g *GA) rankIndices() []int {
	idx := make([]int, len(g.pop))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return g.pop[idx[a]].Fitness > g.pop[idx[b]].Fitness
	})
	return idx
}

// ranked caches the current generation's ranking for BreedSlots; it is
// computed once per generation by a single/master activity.
var _ = sort.SearchInts // keep sort imported even if ranking changes

type generationPlan struct {
	ranked []int
}

// PlanGeneration ranks the evaluated population; it must run exactly once
// per generation (a @Single/@Master method in the woven versions) before
// BreedSlots.
func (g *GA) PlanGeneration() *generationPlan {
	plan := &generationPlan{ranked: g.rankIndices()}
	g.BestHistory = append(g.BestHistory, g.pop[plan.ranked[0]].Fitness)
	return plan
}

// BreedSlots is the breeding for method over next-generation slots
// [lo,hi): elitism for the first Elite slots, then tournament selection,
// uniform crossover and Gaussian mutation. Each slot writes only its own
// next-generation individual, so slots are freely work-shareable.
func (g *GA) BreedSlots(lo, hi, step int, plan *generationPlan) {
	cfg := g.cfg
	for slot := lo; slot < hi; slot += step {
		dst := &g.next[slot]
		if slot < cfg.Elite {
			copy(dst.Genome, g.pop[plan.ranked[slot]].Genome)
			dst.Fitness = g.pop[plan.ranked[slot]].Fitness
			continue
		}
		r := g.slotRand(slot)
		p1 := g.tournament(r)
		p2 := g.tournament(r)
		// Uniform crossover.
		if r.NextDouble() < cfg.CrossoverRate {
			for j := range dst.Genome {
				if r.NextBoolean() {
					dst.Genome[j] = g.pop[p1].Genome[j]
				} else {
					dst.Genome[j] = g.pop[p2].Genome[j]
				}
			}
		} else {
			copy(dst.Genome, g.pop[p1].Genome)
		}
		// Gaussian mutation with clamping.
		for j := range dst.Genome {
			if r.NextDouble() < cfg.MutationRate {
				v := dst.Genome[j] + cfg.MutationSigma*r.NextGaussian()
				dst.Genome[j] = math.Min(cfg.UpperBound, math.Max(cfg.LowerBound, v))
			}
		}
		dst.Fitness = math.Inf(-1)
	}
}

// tournament picks the best of TournamentK uniformly random individuals.
func (g *GA) tournament(r *rng.Random) int {
	best := int(r.NextIntN(int32(len(g.pop))))
	for k := 1; k < g.cfg.TournamentK; k++ {
		c := int(r.NextIntN(int32(len(g.pop))))
		if g.pop[c].Fitness > g.pop[best].Fitness {
			best = c
		}
	}
	return best
}

// SwapGenerations promotes the bred population (single activity, between
// barriers in the woven versions).
func (g *GA) SwapGenerations() {
	g.pop, g.next = g.next, g.pop
	g.generation++
}

// Generation returns the current generation index.
func (g *GA) Generation() int { return g.generation }

// Best returns the best individual of the current population (requires an
// evaluated population).
func (g *GA) Best() Individual {
	best := g.pop[0]
	for _, ind := range g.pop[1:] {
		if ind.Fitness > best.Fitness {
			best = ind
		}
	}
	return Individual{Genome: append([]float64(nil), best.Genome...), Fitness: best.Fitness}
}

// Pop returns the population size.
func (g *GA) Pop() int { return len(g.pop) }

// --------------------------------------------------- test problems -----

// Sphere is the classic continuous minimisation test function, negated so
// larger is better; optimum 0 at the origin.
func Sphere(genome []float64) float64 {
	s := 0.0
	for _, v := range genome {
		s += v * v
	}
	return -s
}

// Rastrigin is the standard multi-modal benchmark, negated; optimum 0 at
// the origin.
func Rastrigin(genome []float64) float64 {
	s := 10 * float64(len(genome))
	for _, v := range genome {
		s += v*v - 10*math.Cos(2*math.Pi*v)
	}
	return -s
}
