package evolib

import (
	"aomplib/internal/core"
	"aomplib/internal/sched"
	"aomplib/internal/weaver"
)

// RunSeq evolves the GA sequentially: the base algorithm with no aspects.
func RunSeq(g *GA) Individual {
	for gen := 0; gen < g.cfg.Generations; gen++ {
		g.EvaluateSlots(0, g.Pop(), 1)
		plan := g.PlanGeneration()
		g.BreedSlots(0, g.Pop(), 1, plan)
		g.SwapGenerations()
	}
	g.EvaluateSlots(0, g.Pop(), 1)
	return g.Best()
}

// BuildAomp registers the GA's joinpoints and deploys the parallelisation
// aspects the paper describes for JECoLi-style frameworks: the whole
// evolution is one parallel region; fitness evaluation and breeding are
// work-shared for methods (evaluation dynamic — fitness cost may vary per
// individual; breeding block); ranking and generation swap are master
// operations fenced by barriers. It returns the evolve entry point.
func BuildAomp(g *GA, threads int) (run func() Individual, prog *weaver.Program) {
	prog = weaver.NewProgram("EvoLib")
	cls := prog.Class("GA")

	var plan *generationPlan
	evaluate := cls.ForProc("evaluateSlots", g.EvaluateSlots)
	rank := cls.Proc("planGeneration", func() { plan = g.PlanGeneration() })
	breed := cls.ForProc("breedSlots", func(lo, hi, step int) {
		g.BreedSlots(lo, hi, step, plan)
	})
	swap := cls.Proc("swapGenerations", g.SwapGenerations)
	evolve := cls.Proc("evolve", func() {
		for gen := 0; gen < g.cfg.Generations; gen++ {
			evaluate(0, g.Pop(), 1)
			rank()
			breed(0, g.Pop(), 1)
			swap()
		}
		evaluate(0, g.Pop(), 1)
	})

	prog.Use(core.ParallelRegion("call(* GA.evolve(..))").Threads(threads))
	prog.Use(core.ForShare("call(* GA.evaluateSlots(..))").Named("EvalFor").
		Schedule(sched.Dynamic).Chunk(8))
	prog.Use(core.ForShare("call(* GA.breedSlots(..))").Named("BreedFor"))
	prog.Use(core.MasterSection("call(* GA.planGeneration(..)) || call(* GA.swapGenerations(..))"))
	prog.Use(core.BarrierAfterPoint(
		"call(* GA.evaluateSlots(..)) || call(* GA.planGeneration(..))" +
			" || call(* GA.breedSlots(..)) || call(* GA.swapGenerations(..))"))
	prog.MustWeave()

	return func() Individual {
		evolve()
		return g.Best()
	}, prog
}
