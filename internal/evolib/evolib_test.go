package evolib

import (
	"math"
	"testing"
	"testing/quick"
)

func testConfig() Config {
	return Config{
		PopSize: 60, GenomeLen: 8, Generations: 15,
		TournamentK: 3, CrossoverRate: 0.9,
		MutationRate: 0.1, MutationSigma: 0.3, Elite: 2,
		Seed: 42, LowerBound: -5.12, UpperBound: 5.12,
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.PopSize = 1 },
		func(c *Config) { c.GenomeLen = 0 },
		func(c *Config) { c.TournamentK = 0 },
		func(c *Config) { c.Elite = -1 },
		func(c *Config) { c.Elite = c.PopSize },
		func(c *Config) { c.UpperBound = c.LowerBound },
	}
	for i, mutate := range bad {
		c := testConfig()
		mutate(&c)
		if _, err := New(c, Sphere); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := New(testConfig(), nil); err == nil {
		t.Error("nil fitness accepted")
	}
}

func TestSequentialImprovesFitness(t *testing.T) {
	g, err := New(testConfig(), Sphere)
	if err != nil {
		t.Fatal(err)
	}
	best := RunSeq(g)
	if len(g.BestHistory) != testConfig().Generations {
		t.Fatalf("history has %d entries", len(g.BestHistory))
	}
	if best.Fitness <= g.BestHistory[0] {
		t.Fatalf("no improvement: first %v, final %v", g.BestHistory[0], best.Fitness)
	}
	// Sphere optimum is 0; a short run should get within a few units.
	if best.Fitness < -10 {
		t.Fatalf("final fitness %v implausibly poor", best.Fitness)
	}
}

func TestElitismMonotoneBest(t *testing.T) {
	g, _ := New(testConfig(), Rastrigin)
	RunSeq(g)
	for i := 1; i < len(g.BestHistory); i++ {
		if g.BestHistory[i] < g.BestHistory[i-1]-1e-12 {
			t.Fatalf("best fitness regressed at generation %d: %v -> %v",
				i, g.BestHistory[i-1], g.BestHistory[i])
		}
	}
}

func TestAompMatchesSequentialBitwise(t *testing.T) {
	for _, threads := range []int{1, 2, 4} {
		seqGA, _ := New(testConfig(), Sphere)
		seqBest := RunSeq(seqGA)

		aompGA, _ := New(testConfig(), Sphere)
		run, _ := BuildAomp(aompGA, threads)
		aompBest := run()

		if seqBest.Fitness != aompBest.Fitness {
			t.Fatalf("threads=%d: fitness %v vs %v", threads, seqBest.Fitness, aompBest.Fitness)
		}
		for j := range seqBest.Genome {
			if seqBest.Genome[j] != aompBest.Genome[j] {
				t.Fatalf("threads=%d: genome differs at %d", threads, j)
			}
		}
		for i := range seqGA.BestHistory {
			if seqGA.BestHistory[i] != aompGA.BestHistory[i] {
				t.Fatalf("threads=%d: history differs at generation %d", threads, i)
			}
		}
	}
}

func TestWeaveReportListsGAConstructs(t *testing.T) {
	g, _ := New(testConfig(), Sphere)
	_, prog := BuildAomp(g, 2)
	found := map[string]bool{}
	for _, wm := range prog.Report() {
		for _, adv := range wm.Advice {
			found[adv] = true
		}
	}
	for _, want := range []string{
		"ParallelRegion/parallel",
		"EvalFor/for(dynamic)",
		"BreedFor/for(staticBlock)",
	} {
		if !found[want] {
			t.Fatalf("weave report missing %q: %v", want, found)
		}
	}
}

func TestGenesStayInBounds(t *testing.T) {
	cfg := testConfig()
	cfg.MutationRate = 1.0
	cfg.MutationSigma = 10
	g, _ := New(cfg, Sphere)
	RunSeq(g)
	for i := 0; i < g.Pop(); i++ {
		for _, v := range g.pop[i].Genome {
			if v < cfg.LowerBound || v > cfg.UpperBound {
				t.Fatalf("gene %v escaped [%v,%v]", v, cfg.LowerBound, cfg.UpperBound)
			}
		}
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	a, _ := New(testConfig(), Rastrigin)
	b, _ := New(testConfig(), Rastrigin)
	if RunSeq(a).Fitness != RunSeq(b).Fitness {
		t.Fatal("same seed produced different runs")
	}
}

// Property: fitness functions are maximised at the origin.
func TestTestProblemOptima(t *testing.T) {
	zero := make([]float64, 6)
	if Sphere(zero) != 0 || math.Abs(Rastrigin(zero)) > 1e-9 {
		t.Fatal("optima not at origin")
	}
	f := func(gs [6]float64) bool {
		g := make([]float64, len(gs))
		for i, v := range gs {
			g[i] = math.Mod(v, 10) // test functions' meaningful domain
			if math.IsNaN(g[i]) {
				g[i] = 0
			}
		}
		return Sphere(g) <= 0 && Rastrigin(g) <= 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
