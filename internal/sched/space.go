package sched

import "fmt"

// Space is a half-open loop iteration space: the iterations of
//
//	for i := Lo; i < Hi; i += Step   (Step > 0)
//	for i := Lo; i > Hi; i += Step   (Step < 0)
//
// Step must be non-zero; a zero step is rejected by Validate.
type Space struct {
	Lo, Hi, Step int
}

// Validate reports an error for a malformed space (zero step).
func (s Space) Validate() error {
	if s.Step == 0 {
		return fmt.Errorf("sched: zero step in space %+v", s)
	}
	return nil
}

// Count returns the number of iterations in the space.
func (s Space) Count() int {
	switch {
	case s.Step > 0:
		if s.Hi <= s.Lo {
			return 0
		}
		return (s.Hi - s.Lo + s.Step - 1) / s.Step
	case s.Step < 0:
		if s.Hi >= s.Lo {
			return 0
		}
		return (s.Lo - s.Hi + (-s.Step) - 1) / (-s.Step)
	default:
		return 0
	}
}

// At returns the loop value of the idx-th iteration (0-based). It does not
// bounds-check; callers derive idx from Count.
func (s Space) At(idx int) int { return s.Lo + idx*s.Step }

// Slice returns the sub-space covering iteration indices [from, to) of s,
// preserving the step. from and to are clamped to [0, Count].
func (s Space) Slice(from, to int) Space {
	n := s.Count()
	if from < 0 {
		from = 0
	}
	if to > n {
		to = n
	}
	if from >= to {
		return Space{Lo: s.Lo, Hi: s.Lo, Step: s.Step}
	}
	return Space{Lo: s.At(from), Hi: s.At(to-1) + sign(s.Step), Step: s.Step}
}

// Split partitions the space into at most n balanced sub-spaces that
// together cover every iteration exactly once (block sizes differ by at
// most one; empty sub-spaces are omitted, so fewer than n parts are
// returned when the space has fewer than n iterations). It is the building
// block for taskloop-style decompositions — each part can be spawned as a
// deferred task and load-balanced by work stealing — and for custom
// schedules.
func (s Space) Split(n int) []Space {
	if n < 1 {
		n = 1
	}
	total := s.Count()
	if total == 0 {
		return nil
	}
	if n > total {
		n = total
	}
	out := make([]Space, 0, n)
	for id := 0; id < n; id++ {
		sub := Block(s, n, id)
		if sub.Count() > 0 {
			out = append(out, sub)
		}
	}
	return out
}

// SplitGrain partitions the space into balanced sub-spaces of at least
// grain iterations each (the last may round up: parts hold between grain
// and 2·grain-1 iterations, OpenMP taskloop grainsize semantics). A space
// smaller than grain yields a single part. It is the @TaskLoop(grainsize)
// decomposition primitive.
func (s Space) SplitGrain(grain int) []Space {
	if grain < 1 {
		grain = 1
	}
	n := s.Count() / grain
	if n < 1 {
		n = 1
	}
	return s.Split(n)
}

// SplitWeighted partitions the space into len(weights) contiguous
// sub-spaces sized proportionally to the weights, together covering every
// iteration exactly once. It is the weighted analogue of Split for
// asymmetry-aware decomposition: weight w_i buys part i approximately
// n·w_i/Σw iterations (cut points are rounded, so sizes differ from the
// ideal by at most one). Non-finite or non-positive weights, or a
// non-positive sum, fall back to the balanced Split. Unlike Split, empty
// sub-spaces are kept so part i always belongs to worker i.
func (s Space) SplitWeighted(weights []float64) []Space {
	nw := len(weights)
	if nw == 0 {
		return nil
	}
	cuts := weightedCuts(s.Count(), nw, weights)
	out := make([]Space, nw)
	for id := 0; id < nw; id++ {
		out[id] = s.Slice(cuts[id], cuts[id+1])
	}
	return out
}

// weightedCuts computes the nw+1 iteration-index boundaries of a weighted
// contiguous partition of n iterations: part i covers [cuts[i], cuts[i+1]).
// Cut i is the rounded cumulative share n·(w_0+…+w_{i-1})/Σw, clamped to
// be monotone, so the partition is exact and deterministic for given
// inputs. Unusable weights (nil, wrong length, any non-finite or
// non-positive value, or a non-positive sum) yield the balanced
// StaticBlock cuts.
func weightedCuts(n, nw int, weights []float64) []int {
	cuts := make([]int, nw+1)
	var sum float64
	usable := len(weights) == nw
	for _, w := range weights {
		if !(w > 0) || w > 1e300 { // catches NaN, ±Inf, zero, negatives
			usable = false
			break
		}
		sum += w
	}
	if !usable || !(sum > 0) {
		// Balanced fallback: the StaticBlock partition (remainders spread
		// from worker 0), expressed as cut points.
		per, rem := n/nw, n%nw
		for id := 0; id < nw; id++ {
			size := per
			if id < rem {
				size++
			}
			cuts[id+1] = cuts[id] + size
		}
		return cuts
	}
	var cum float64
	for id := 0; id < nw; id++ {
		cum += weights[id]
		c := int(float64(n)*(cum/sum) + 0.5)
		if c < cuts[id] {
			c = cuts[id]
		}
		if c > n {
			c = n
		}
		cuts[id+1] = c
	}
	cuts[nw] = n
	return cuts
}

// Values expands the space into the explicit list of loop values.
// Intended for tests and small spaces only.
func (s Space) Values() []int {
	n := s.Count()
	out := make([]int, n)
	for i := 0; i < n; i++ {
		out[i] = s.At(i)
	}
	return out
}

func sign(x int) int {
	if x < 0 {
		return -1
	}
	return 1
}

// String implements fmt.Stringer for diagnostics and weave reports.
func (s Space) String() string {
	return fmt.Sprintf("[%d,%d;%d)", s.Lo, s.Hi, s.Step)
}
