package sched

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

// TestWeightedCutsProportional pins the carve math: cut i is the rounded
// cumulative share, so every part's size is within one iteration of its
// ideal n·w_i/Σw, and the cuts are a monotone exact partition of [0, n).
func TestWeightedCutsProportional(t *testing.T) {
	weights := []float64{4, 1, 2, 1}
	n := 800
	cuts := weightedCuts(n, len(weights), weights)
	if cuts[0] != 0 || cuts[len(cuts)-1] != n {
		t.Fatalf("cuts %v do not span [0, %d]", cuts, n)
	}
	var sum float64
	for _, w := range weights {
		sum += w
	}
	for i, w := range weights {
		size := cuts[i+1] - cuts[i]
		ideal := float64(n) * w / sum
		if math.Abs(float64(size)-ideal) > 1 {
			t.Errorf("part %d: size %d, ideal %.1f — off by more than rounding", i, size, ideal)
		}
		if cuts[i+1] < cuts[i] {
			t.Fatalf("cuts %v not monotone at %d", cuts, i)
		}
	}
}

// TestWeightedCutsFallsBackBalanced pins the unusable-weights contract:
// nil, mis-sized, non-finite, non-positive, or zero-sum weights must all
// yield the balanced StaticBlock cuts — never a panic, never a skewed
// carve from garbage.
func TestWeightedCutsFallsBackBalanced(t *testing.T) {
	want := weightedCuts(10, 3, nil)
	if got := []int{want[0], want[1], want[2], want[3]}; got[1]-got[0] != 4 || got[2]-got[1] != 3 || got[3]-got[2] != 3 {
		t.Fatalf("balanced cuts = %v, want sizes 4,3,3", want)
	}
	bad := [][]float64{
		{1, 2},                // mis-sized
		{1, -1, 1},            // negative
		{1, 0, 1},             // zero
		{1, math.NaN(), 1},    // NaN
		{1, math.Inf(1), 1},   // +Inf
		{1e301, 1e301, 1e301}, // overflow guard
	}
	for _, ws := range bad {
		got := weightedCuts(10, 3, ws)
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("weights %v: cuts %v, want balanced %v", ws, got, want)
				break
			}
		}
	}
}

// Property: SplitWeighted covers every iteration exactly once for any
// weights (usable or not), keeps one sub-space per weight, and keeps them
// contiguous in order.
func TestSplitWeightedCoversExactlyOnce(t *testing.T) {
	f := func(count uint16, nth uint8, seeds [8]uint16) bool {
		sp := Space{2, 2 + int(count%3000), 3}
		nw := int(nth%8) + 1
		ws := make([]float64, nw)
		for i := range ws {
			ws[i] = float64(seeds[i]%64) / 8 // some parts land on 0 → fallback path
		}
		parts := sp.SplitWeighted(ws)
		if len(parts) != nw {
			return false
		}
		var got []int
		for _, p := range parts {
			got = append(got, p.Values()...)
		}
		return sameMultiset(got, sp.Values())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestStealDispenserWeightedProportionalCarve pins that the weighted
// dispenser's initial per-worker ranges follow the weights: a worker
// draining only its own range (victim -1 means the local slot served)
// gets its proportional share before the first steal.
func TestStealDispenserWeightedProportionalCarve(t *testing.T) {
	// weights 3:1 over 80 iterations → worker 1's own range ≈ 20.
	d := NewStealDispenserWeighted(Space{0, 80, 1}, 1, 2, []float64{3, 1})
	own := 0
	for {
		from, to, victim, _, ok := d.Next(1)
		if !ok || victim >= 0 {
			break
		}
		own += int(to - from)
	}
	if own < 19 || own > 21 {
		t.Fatalf("worker 1 owned %d of 80 iterations, want ≈20 under weights 3:1", own)
	}
}

// TestStealDispenserWeightedStealsMostLoaded pins the loaded victim
// policy: a dry worker's steal scans every sibling and takes from the
// one holding the largest remainder, not the first non-empty slot.
func TestStealDispenserWeightedStealsMostLoaded(t *testing.T) {
	// Carve 100 iterations as 10/20/70 across workers 0..2: worker 0 runs
	// dry first and must pick worker 2 (the largest remainder), even
	// though worker 1's slot comes first in rotation order.
	d := NewStealDispenserWeighted(Space{0, 100, 1}, 1, 3, []float64{1, 2, 7})
	for {
		_, _, victim, probes, ok := d.Next(0)
		if !ok {
			t.Fatal("space drained before any steal was observed")
		}
		if victim < 0 {
			continue
		}
		if victim != 2 {
			t.Fatalf("first steal took from slot %d, want the most-loaded slot 2", victim)
		}
		if probes < 2 {
			t.Fatalf("loaded steal probed %d slots, want a full sibling scan", probes)
		}
		return
	}
}

// Property: the weighted dispenser preserves the exactly-once guarantee
// under concurrent draining for arbitrary weights, chunks and team sizes
// — skewed carves change who starts with what, never coverage.
func TestStealDispenserWeightedConcurrentExactlyOnce(t *testing.T) {
	f := func(count uint16, chunk uint8, nth uint8, seeds [8]uint16) bool {
		n := int(count % 2000)
		workers := int(nth%8) + 1
		ws := make([]float64, workers)
		for i := range ws {
			ws[i] = float64(seeds[i]%16) + 0.25
		}
		d := NewStealDispenserWeighted(Space{0, n, 1}, int(chunk%9), workers, ws)
		hits := make([]int32, n)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				for {
					from, to, _, _, ok := d.Next(id)
					if !ok {
						return
					}
					for i := from; i < to; i++ {
						hits[i]++ // each index owned by one goroutine
					}
				}
			}(w)
		}
		wg.Wait()
		for _, h := range hits {
			if h != 1 {
				return false
			}
		}
		return d.Remaining() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestStealDispenserWeightedForeignId pins that ids outside [0, nthreads)
// drain leftovers from a weighted dispenser too, stealing whole ranges
// without installing into any worker's slot.
func TestStealDispenserWeightedForeignId(t *testing.T) {
	d := NewStealDispenserWeighted(Space{0, 8, 1}, 1, 2, []float64{1, 3})
	total := 0
	for {
		from, to, victim, _, ok := d.Next(-5)
		if !ok {
			break
		}
		if victim < 0 {
			t.Fatal("foreign id claimed from a local slot it does not have")
		}
		total += int(to - from)
	}
	if total != 8 {
		t.Fatalf("foreign id drained %d of 8 iterations", total)
	}
}
