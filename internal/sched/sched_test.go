package sched

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func TestSpaceCount(t *testing.T) {
	cases := []struct {
		sp   Space
		want int
	}{
		{Space{0, 10, 1}, 10},
		{Space{0, 10, 3}, 4}, // 0,3,6,9
		{Space{0, 0, 1}, 0},
		{Space{5, 5, 1}, 0},
		{Space{10, 0, 1}, 0},
		{Space{3, 10, 2}, 4}, // 3,5,7,9
		{Space{10, 0, -1}, 10},
		{Space{10, 0, -3}, 4}, // 10,7,4,1
		{Space{0, 10, -1}, 0},
		{Space{0, 1, 100}, 1},
	}
	for _, c := range cases {
		if got := c.sp.Count(); got != c.want {
			t.Errorf("%v.Count() = %d, want %d", c.sp, got, c.want)
		}
	}
}

func TestSpaceValidate(t *testing.T) {
	if err := (Space{0, 1, 0}).Validate(); err == nil {
		t.Error("zero step not rejected")
	}
	if err := (Space{0, 1, 1}).Validate(); err != nil {
		t.Errorf("valid space rejected: %v", err)
	}
}

func TestSpaceSlice(t *testing.T) {
	sp := Space{3, 20, 2} // 3,5,7,9,11,13,15,17,19
	sub := sp.Slice(2, 5) // 7,9,11
	if got := sub.Values(); len(got) != 3 || got[0] != 7 || got[2] != 11 {
		t.Errorf("Slice(2,5) = %v, want [7 9 11]", got)
	}
	if empty := sp.Slice(4, 4); empty.Count() != 0 {
		t.Errorf("empty slice has %d iterations", empty.Count())
	}
	// Clamping.
	if got := sp.Slice(-5, 100).Count(); got != sp.Count() {
		t.Errorf("clamped slice count = %d, want %d", got, sp.Count())
	}
}

// collectStatic runs a static partitioner across all workers and returns
// every executed loop value.
func collectStatic(part func(Space, int, int) Space, sp Space, nthreads int) []int {
	var all []int
	for id := 0; id < nthreads; id++ {
		all = append(all, part(sp, nthreads, id).Values()...)
	}
	return all
}

func sameMultiset(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	ac := append([]int(nil), a...)
	bc := append([]int(nil), b...)
	sort.Ints(ac)
	sort.Ints(bc)
	for i := range ac {
		if ac[i] != bc[i] {
			return false
		}
	}
	return true
}

// Property: Block and Cyclic both execute every iteration exactly once,
// for any space and team size.
func TestStaticPartitionCoverageProperty(t *testing.T) {
	f := func(lo int8, count uint8, step uint8, nth uint8) bool {
		st := int(step%7) + 1
		sp := Space{Lo: int(lo), Step: st}
		sp.Hi = sp.Lo + int(count%64)*st // exactly count%64 iterations
		n := int(nth%9) + 1
		want := sp.Values()
		return sameMultiset(collectStatic(Block, sp, n), want) &&
			sameMultiset(collectStatic(Cyclic, sp, n), want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: static partitions also cover negative-step loops.
func TestStaticPartitionNegativeStepProperty(t *testing.T) {
	f := func(lo int8, count uint8, step uint8, nth uint8) bool {
		st := -(int(step%7) + 1)
		sp := Space{Lo: int(lo), Step: st}
		sp.Hi = sp.Lo + int(count%64)*st
		n := int(nth%9) + 1
		want := sp.Values()
		return sameMultiset(collectStatic(Block, sp, n), want) &&
			sameMultiset(collectStatic(Cyclic, sp, n), want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestBlockBalanced(t *testing.T) {
	// 10 iterations over 4 workers: sizes must be 3,3,2,2.
	sp := Space{0, 10, 1}
	sizes := make([]int, 4)
	for id := 0; id < 4; id++ {
		sizes[id] = Block(sp, 4, id).Count()
	}
	want := []int{3, 3, 2, 2}
	for i := range want {
		if sizes[i] != want[i] {
			t.Fatalf("block sizes = %v, want %v", sizes, want)
		}
	}
}

func TestBlockContiguous(t *testing.T) {
	sp := Space{0, 100, 1}
	prevEnd := 0
	for id := 0; id < 7; id++ {
		b := Block(sp, 7, id)
		vals := b.Values()
		if len(vals) == 0 {
			continue
		}
		if vals[0] != prevEnd {
			t.Fatalf("worker %d starts at %d, want %d", id, vals[0], prevEnd)
		}
		prevEnd = vals[len(vals)-1] + 1
	}
	if prevEnd != 100 {
		t.Fatalf("coverage ends at %d, want 100", prevEnd)
	}
}

func TestCyclicInterleaving(t *testing.T) {
	sp := Space{0, 8, 1}
	got := Cyclic(sp, 3, 1).Values()
	want := []int{1, 4, 7}
	if !sameMultiset(got, want) {
		t.Fatalf("cyclic id=1 = %v, want %v", got, want)
	}
}

func TestCyclicMoreWorkersThanIterations(t *testing.T) {
	sp := Space{0, 2, 1}
	if got := Cyclic(sp, 8, 5).Count(); got != 0 {
		t.Fatalf("worker beyond iteration count got %d iterations", got)
	}
	all := collectStatic(Cyclic, sp, 8)
	if !sameMultiset(all, []int{0, 1}) {
		t.Fatalf("coverage = %v", all)
	}
}

func TestDispenserSequential(t *testing.T) {
	sp := Space{0, 10, 1}
	d := NewDispenser(sp, 3, false, 2)
	var got []int
	for {
		from, to, ok := d.Next()
		if !ok {
			break
		}
		for i := from; i < to; i++ {
			got = append(got, sp.At(int(i)))
		}
	}
	if !sameMultiset(got, sp.Values()) {
		t.Fatalf("dynamic coverage = %v", got)
	}
	if d.Remaining() != 0 {
		t.Fatalf("remaining = %d", d.Remaining())
	}
}

// Property: under concurrent draining, every iteration index is dispensed
// exactly once regardless of chunk size, policy, or worker count.
func TestDispenserConcurrentExactlyOnce(t *testing.T) {
	f := func(count uint16, chunk uint8, guided bool, nth uint8) bool {
		n := int(count % 2000)
		workers := int(nth%8) + 1
		sp := Space{0, n, 1}
		d := NewDispenser(sp, int(chunk%9), guided, workers)
		hits := make([]int32, n)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					from, to, ok := d.Next()
					if !ok {
						return
					}
					for i := from; i < to; i++ {
						hits[i]++ // each index owned by one goroutine
					}
				}
			}()
		}
		wg.Wait()
		for _, h := range hits {
			if h != 1 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestGuidedChunksShrink(t *testing.T) {
	sp := Space{0, 1024, 1}
	d := NewDispenser(sp, 1, true, 4)
	var sizes []int64
	for {
		from, to, ok := d.Next()
		if !ok {
			break
		}
		sizes = append(sizes, to-from)
	}
	if len(sizes) < 3 {
		t.Fatalf("guided produced only %d chunks", len(sizes))
	}
	if sizes[0] != 1024/8 {
		t.Fatalf("first guided chunk = %d, want 128", sizes[0])
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] > sizes[i-1] {
			t.Fatalf("guided chunk grew: %v", sizes)
		}
	}
	var sum int64
	for _, s := range sizes {
		sum += s
	}
	if sum != 1024 {
		t.Fatalf("guided dispensed %d iterations, want 1024", sum)
	}
}

func TestKindString(t *testing.T) {
	names := map[Kind]string{
		StaticBlock:  "staticBlock",
		StaticCyclic: "staticCyclic",
		Dynamic:      "dynamic",
		Guided:       "guided",
		Custom:       "caseSpecific",
		Kind(42):     "Kind(42)",
	}
	for k, want := range names {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestDispenserChunkFloor(t *testing.T) {
	d := NewDispenser(Space{0, 5, 1}, 0, false, 0)
	from, to, ok := d.Next()
	if !ok || from != 0 || to != 1 {
		t.Fatalf("chunk<1 not floored to 1: %d %d %v", from, to, ok)
	}
}

// Property: Split covers every iteration exactly once, for any space and
// part count, with balanced parts.
func TestSplitCoversExactlyOnce(t *testing.T) {
	f := func(lo int8, count uint8, step int8, parts uint8) bool {
		st := int(step)
		if st == 0 {
			st = 1
		}
		sp := Space{Lo: int(lo), Hi: int(lo) + int(count)*st, Step: st}
		want := sp.Values()
		var got []int
		minSize, maxSize := 1<<30, 0
		for _, sub := range sp.Split(int(parts)%9 + 1) {
			c := sub.Count()
			if c == 0 {
				return false // empty parts must be omitted
			}
			if c < minSize {
				minSize = c
			}
			if c > maxSize {
				maxSize = c
			}
			got = append(got, sub.Values()...)
		}
		if len(want) == 0 {
			return got == nil
		}
		if maxSize-minSize > 1 {
			return false // parts must be balanced
		}
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitEdgeCases(t *testing.T) {
	if got := (Space{0, 0, 1}).Split(4); got != nil {
		t.Fatalf("empty space split = %v", got)
	}
	if got := (Space{0, 3, 1}).Split(10); len(got) != 3 {
		t.Fatalf("oversplit produced %d parts, want 3", len(got))
	}
	if got := (Space{0, 10, 1}).Split(0); len(got) != 1 || got[0] != (Space{0, 10, 1}) {
		t.Fatalf("Split(0) = %v, want whole space", got)
	}
}

func TestSplitGrainCoverageAndBounds(t *testing.T) {
	f := func(lo int8, count uint8, step uint8, grain uint8) bool {
		s := Space{Lo: int(lo), Hi: int(lo) + int(count)*int(step%7+1), Step: int(step%7 + 1)}
		g := int(grain%9) + 1
		parts := s.SplitGrain(g)
		// Exactly-once coverage.
		seen := map[int]int{}
		for _, p := range parts {
			for _, v := range p.Values() {
				seen[v]++
			}
		}
		for _, v := range s.Values() {
			if seen[v] != 1 {
				return false
			}
		}
		if len(seen) != s.Count() {
			return false
		}
		// Grainsize bounds: every part holds in [grain, 2*grain), except a
		// single part covering a space smaller than grain.
		for _, p := range parts {
			n := p.Count()
			if len(parts) == 1 && s.Count() < g {
				continue
			}
			if n < g || n >= 2*g {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitGrainEdgeCases(t *testing.T) {
	if got := (Space{0, 0, 1}).SplitGrain(4); got != nil {
		t.Fatalf("empty space = %v", got)
	}
	if got := (Space{0, 3, 1}).SplitGrain(10); len(got) != 1 || got[0].Count() != 3 {
		t.Fatalf("undersized space = %v, want one whole part", got)
	}
	if got := (Space{0, 10, 1}).SplitGrain(0); len(got) != 10 {
		t.Fatalf("grain 0 should clamp to 1, got %v", got)
	}
}

// ------------------------------------------------------ steal schedule --

func TestStealDispenserSequentialCoverage(t *testing.T) {
	sp := Space{3, 40, 2}
	d := NewStealDispenser(sp, 3, 4)
	var got []int
	for {
		from, to, victim, _, ok := d.Next(0)
		if !ok {
			break
		}
		if to-from > 3 {
			t.Fatalf("chunk [%d,%d) exceeds chunk size 3", from, to)
		}
		_ = victim
		for i := from; i < to; i++ {
			got = append(got, sp.At(int(i)))
		}
	}
	if !sameMultiset(got, sp.Values()) {
		t.Fatalf("steal coverage = %v, want %v", got, sp.Values())
	}
	if d.Remaining() != 0 {
		t.Fatalf("remaining = %d after drain", d.Remaining())
	}
}

func TestStealDispenserStealsOnExhaustion(t *testing.T) {
	// Worker 0 drains the whole space alone: everything beyond its own
	// static block must arrive via steals, reported with a victim slot.
	d := NewStealDispenser(Space{0, 64, 1}, 4, 4)
	covered := make([]int, 64)
	steals := 0
	for {
		from, to, victim, _, ok := d.Next(0)
		if !ok {
			break
		}
		if victim >= 0 {
			if victim == 0 || victim >= 4 {
				t.Fatalf("victim slot %d out of range", victim)
			}
			steals++
		}
		for i := from; i < to; i++ {
			covered[i]++
		}
	}
	for i, c := range covered {
		if c != 1 {
			t.Fatalf("iteration %d dispensed %d times", i, c)
		}
	}
	if steals == 0 {
		t.Fatal("lone worker drained 4 ranges without a single steal")
	}
}

// Property: under concurrent draining with per-worker slots, every
// iteration index is dispensed exactly once for any space, chunk and team
// size, and a worker that runs dry migrates onto siblings' ranges.
func TestStealDispenserConcurrentExactlyOnce(t *testing.T) {
	f := func(count uint16, chunk uint8, nth uint8) bool {
		n := int(count % 2000)
		workers := int(nth%8) + 1
		d := NewStealDispenser(Space{0, n, 1}, int(chunk%9), workers)
		hits := make([]int32, n)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				for {
					from, to, _, _, ok := d.Next(id)
					if !ok {
						return
					}
					for i := from; i < to; i++ {
						hits[i]++ // each index owned by one goroutine
					}
				}
			}(w)
		}
		wg.Wait()
		for _, h := range hits {
			if h != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStealDispenserEdgeCases(t *testing.T) {
	// Empty space: immediately exhausted for every worker.
	d := NewStealDispenser(Space{5, 5, 1}, 1, 3)
	if _, _, _, _, ok := d.Next(1); ok {
		t.Fatal("empty space dispensed work")
	}
	// Out-of-range ids have no slot: they steal whole ranges directly
	// (never installing into a real worker's slot) rather than panicking.
	d = NewStealDispenser(Space{0, 2, 1}, 1, 2)
	if _, _, victim, _, ok := d.Next(99); !ok || victim < 0 {
		t.Fatalf("foreign id found no work (ok=%v victim=%d)", ok, victim)
	}
	// Fewer iterations than workers: the tail slots start empty and steal.
	d = NewStealDispenser(Space{0, 2, 1}, 1, 8)
	total := 0
	for id := 7; id >= 0; id-- {
		for {
			from, to, _, _, ok := d.Next(id)
			if !ok {
				break
			}
			total += int(to - from)
		}
	}
	if total != 2 {
		t.Fatalf("dispensed %d iterations, want 2", total)
	}
}

func TestSetDefaultAcceptsSteal(t *testing.T) {
	orig := Default()
	defer SetDefault(orig) //nolint:errcheck // restoring a previously valid kind
	if _, err := SetDefault(Steal); err != nil {
		t.Fatalf("SetDefault(Steal): %v", err)
	}
	if got := Resolve(Runtime, 100, 4); got != Steal {
		t.Fatalf("Runtime resolved to %v with steal default", got)
	}
}

// TestDispenserBatchClaim pins the batched claim: far from the tail a
// NextBatch(k) claim spans k chunks; within the tail guard it backs off to
// single chunks; and coverage stays exact either way.
func TestDispenserBatchClaim(t *testing.T) {
	d := NewDispenser(Space{0, 1000, 1}, 5, false, 2)
	from, to, ok := d.NextBatch(4)
	if !ok || to-from != 20 {
		t.Fatalf("first batch = [%d,%d), want 20 iterations", from, to)
	}
	// Drain; near the tail claims must shrink back to the chunk size.
	last := to - from
	covered := to - from
	for {
		from, to, ok = d.NextBatch(4)
		if !ok {
			break
		}
		last = to - from
		covered += to - from
	}
	if covered != 1000 {
		t.Fatalf("covered %d iterations, want 1000", covered)
	}
	if last > 5 {
		t.Fatalf("tail claim spans %d iterations, want <= chunk", last)
	}
	if d.ChunkSize() != 5 {
		t.Fatalf("ChunkSize = %d", d.ChunkSize())
	}
}
