// Package sched implements the loop-scheduling policies of AOmpLib's `for`
// work-sharing construct (paper §III.C/§IV): static by blocks, static
// cyclic, dynamic (chunked self-scheduling), guided, steal (chunks stolen
// from per-worker shares rather than dispensed from one counter), and
// case-specific (user-supplied) schedules such as the one the Sparse
// benchmark requires (paper Table 2, "FOR (Case Specific)").
//
// A for method exposes its loop as the triple (start, end, step) in its
// first three int parameters; schedulers rewrite that triple per worker.
// All computations are done in *iteration-index space* (0..Count) and
// mapped back to loop values, so remainders are distributed exactly and
// every iteration is executed exactly once — properties the tests verify
// with testing/quick.
//
// The package also carries the policy knobs shared by the facade and the
// parallel algorithms layer: Kind (with Resolve/ParseKind for the
// runtime/auto bindings) and AutoGrain, the default task grain used when
// a caller does not pick one.
package sched
