package sched

import (
	"fmt"
	"strings"
	"sync/atomic"
)

// Kind enumerates the built-in scheduling policies of the @For construct
// (paper Table 1: schedule = staticBlock | staticCyclic | dynamic; guided
// is provided as the Java-7-era extension the paper lists under current
// work, and Custom supports the "case specific" schedules of Table 2).
type Kind int

const (
	// StaticBlock assigns each worker one contiguous block of iterations,
	// with remainders spread one-per-worker from worker 0 (exact OpenMP
	// static semantics, refining the simplified formula of paper Fig. 10).
	StaticBlock Kind = iota
	// StaticCyclic deals iterations round-robin: worker id executes
	// iterations id, id+N, id+2N, ... (paper §II: "cyclic load-distribution").
	StaticCyclic
	// Dynamic hands out fixed-size chunks from a shared counter on demand
	// (paper Fig. 11; default chunk 1).
	Dynamic
	// Guided hands out exponentially shrinking chunks (remaining/2N,
	// floored at the chunk size).
	Guided
	// Steal carves one contiguous iteration range per worker statically —
	// the StaticBlock partition — and lets workers that exhaust their range
	// steal half the remainder of a loaded sibling (LLVM's static_steal;
	// OpenMP 5's nonmonotonic:dynamic permits exactly this reordering).
	// Owners draw chunks from their own cache line, so the per-chunk CAS
	// of Dynamic never becomes a team-wide contention point; balancing
	// costs one extra CAS only when a range actually runs dry.
	Steal
	// Custom delegates to a user ScheduleFunc (case-specific schedule).
	Custom
	// Auto picks a concrete schedule per construct encounter from the
	// loop's shape: static by blocks when the trip count is small relative
	// to the team (chunk dispensing would dominate such loops), guided
	// otherwise (self-balancing at negligible relative cost). The choice
	// is a pure function of trip count and team size (Resolve), so every
	// worker of a team resolves the same encounter identically.
	Auto
	// Runtime defers the choice to the process-wide default schedule
	// (SetDefault) — the OMP_SCHEDULE analogue. Sweeping schedules from a
	// benchmark flag needs no aspect changes: bind Runtime, set the
	// default per run.
	Runtime
	// WeightedSteal is Steal made asymmetry-aware (Saez et al.,
	// arXiv:2402.07664: equal chunking assumes uniform workers): the
	// initial contiguous ranges are carved proportionally to per-worker
	// speed weights the runtime measures (EWMA of iteration throughput),
	// and a dry worker steals from the *most loaded* sibling — the one
	// whose packed (lo,hi) word holds the largest remainder — instead of
	// the first non-empty slot a rotation scan finds. With no weights
	// available (untrained workers) it degrades to exactly Steal.
	WeightedSteal
	// Adaptive closes the obs→sched feedback loop: the runtime re-resolves
	// the schedule kind and chunk per construct encounter from the
	// previous encounter's measured per-worker imbalance (hot teams make
	// encounters persistent, so the state has a home). Like Auto it is an
	// indirect kind — Resolve inside the team-shared encounter state picks
	// the concrete policy — but unlike Auto the choice is fed by
	// measurement, not just the loop shape. Auto itself resolves to
	// Adaptive on re-encounters, so long-running Auto loops self-tune.
	Adaptive
)

// String implements fmt.Stringer; names match the paper's annotations.
func (k Kind) String() string {
	switch k {
	case StaticBlock:
		return "staticBlock"
	case StaticCyclic:
		return "staticCyclic"
	case Dynamic:
		return "dynamic"
	case Guided:
		return "guided"
	case Steal:
		return "steal"
	case Custom:
		return "caseSpecific"
	case Auto:
		return "auto"
	case Runtime:
		return "runtime"
	case WeightedSteal:
		return "weightedSteal"
	case Adaptive:
		return "adaptive"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Kinds lists every named schedule in declaration order, for flag help
// and parser errors.
func Kinds() []Kind {
	return []Kind{StaticBlock, StaticCyclic, Dynamic, Guided, Steal, Custom, Auto, Runtime, WeightedSteal, Adaptive}
}

// ParseKind resolves a schedule name — as produced by Kind.String,
// case-insensitively — back to its Kind. Unknown names error with the
// valid list.
func ParseKind(s string) (Kind, error) {
	names := make([]string, 0, len(Kinds()))
	for _, k := range Kinds() {
		if strings.EqualFold(s, k.String()) {
			return k, nil
		}
		names = append(names, k.String())
	}
	return 0, fmt.Errorf("sched: unknown schedule %q (valid: %s)", s, strings.Join(names, ", "))
}

// defaultKind is the process-wide schedule behind Runtime. The zero value
// is StaticBlock — OpenMP's default — so unset means "static by blocks".
var defaultKind atomic.Int32

// Default returns the process-wide default schedule that Runtime resolves
// to.
func Default() Kind { return Kind(defaultKind.Load()) }

// SetDefault sets the process-wide default schedule, returning the
// previous one. Runtime (a self-reference) and Custom (it cannot carry the
// required ScheduleFunc through a process-wide knob) are rejected.
func SetDefault(k Kind) (Kind, error) {
	switch k {
	case StaticBlock, StaticCyclic, Dynamic, Guided, Steal, Auto, WeightedSteal, Adaptive:
		return Kind(defaultKind.Swap(int32(k))), nil
	case Runtime:
		return Default(), fmt.Errorf("sched: runtime cannot be its own default")
	case Custom:
		return Default(), fmt.Errorf("sched: caseSpecific needs a ScheduleFunc and cannot be the process default")
	}
	return Default(), fmt.Errorf("sched: unknown schedule Kind(%d)", int(k))
}

// autoGuidedMin is the per-worker trip count above which Auto prefers
// guided: below it the loop is too short for chunk dispensing to pay for
// the balancing it buys.
const autoGuidedMin = 64

// Resolve maps Runtime to the process-wide default, then Auto to a
// concrete policy chosen from the trip count and team size. Runtime reads
// the mutable default, so callers that need one decision per team
// encounter must call Resolve once and share the result (rt.BeginFor
// resolves inside the team-shared encounter state for exactly this
// reason).
func Resolve(k Kind, count, nthreads int) Kind {
	if k == Runtime {
		k = Default()
	}
	if k == Auto {
		if nthreads <= 1 || count < nthreads*autoGuidedMin {
			return StaticBlock
		}
		return Guided
	}
	if (k == Steal || k == WeightedSteal) && count > stealMaxCount {
		// The steal dispenser packs (lo, hi) iteration indices into one
		// 64-bit word (32 bits each) so ranges split with a single CAS;
		// loops too long for that fall back to the chunked dispenser.
		// Pure function of the trip count, so a team resolves uniformly.
		return Dynamic
	}
	if k == Adaptive {
		// Adaptive needs per-encounter team state to resolve; outside it —
		// one worker, or a space the steal dispenser cannot represent —
		// there is nothing to adapt between, so collapse to the shape-only
		// choice here. A remaining Adaptive is resolved by the runtime's
		// encounter state (rt.BeginFor), never dispatched on directly.
		if nthreads <= 1 {
			return StaticBlock
		}
		if count > stealMaxCount {
			return Guided
		}
	}
	return k
}

// autoGrainMin is the smallest chunk AutoGrain hands out: below it the
// per-piece dispatch cost dominates any body cheap enough to want a
// computed grain in the first place.
const autoGrainMin = 16

// autoGrainPieces bounds how many pieces AutoGrain cuts a space into.
// 256 gives a wide team plenty of units to balance with while keeping the
// split tree (and a Reduce's partial array) small.
const autoGrainPieces = 256

// AutoGrain picks a grainsize for decomposing an n-iteration generic
// range (parallel.For nesting, Reduce/Scan chunking) when the caller gave
// none. It is deliberately a pure function of n — never of the team
// width — so the decomposition shape, and therefore the combine tree of a
// deterministic Reduce/Scan, is identical at every width.
func AutoGrain(n int) int {
	if n <= 0 {
		return 1
	}
	g := (n + autoGrainPieces - 1) / autoGrainPieces
	if g < autoGrainMin {
		g = autoGrainMin
	}
	return g
}

// ScheduleFunc is the extension point for case-specific schedules: given
// the worker id, team size and full iteration space it returns the
// sub-spaces that worker must execute. Implementations must together cover
// every iteration exactly once across ids 0..nthreads-1.
type ScheduleFunc func(id, nthreads int, sp Space) []Space

// Block computes the StaticBlock sub-space for one worker. Workers with
// id < remainder receive one extra iteration, so block sizes differ by at
// most one.
func Block(sp Space, nthreads, id int) Space {
	n := sp.Count()
	if nthreads <= 0 {
		nthreads = 1
	}
	per := n / nthreads
	rem := n % nthreads
	var from int
	if id < rem {
		from = id * (per + 1)
	} else {
		from = rem*(per+1) + (id-rem)*per
	}
	size := per
	if id < rem {
		size++
	}
	return sp.Slice(from, from+size)
}

// Cyclic computes the StaticCyclic sub-space for one worker: same bounds,
// offset start, stride multiplied by the team size.
func Cyclic(sp Space, nthreads, id int) Space {
	if nthreads <= 0 {
		nthreads = 1
	}
	if id >= sp.Count() {
		return Space{Lo: sp.Lo, Hi: sp.Lo, Step: sp.Step}
	}
	return Space{Lo: sp.At(id), Hi: sp.Hi, Step: sp.Step * nthreads}
}

// Dispenser is the shared state behind Dynamic and Guided scheduling: a
// single atomic cursor over iteration-index space that workers draw chunks
// from. One Dispenser instance is shared by the whole team per construct
// encounter (the runtime layer manages instance identity). The cursor sits
// on its own cache line: every worker of the team CASes it, and sharing a
// line with the read-only bounds would drag those reads into the coherence
// storm.
type Dispenser struct {
	next atomic.Int64
	_    [56]byte // rest of the cursor's cache line
	// Immutable after NewDispenser; read-shared without contention.
	total    int64
	chunk    int64
	guided   bool
	nthreads int64
}

// NewDispenser creates a dispenser over sp handing out chunks of the given
// size (minimum chunk for guided). chunk < 1 is treated as 1, matching the
// paper's default of one iteration per task.
func NewDispenser(sp Space, chunk int, guided bool, nthreads int) *Dispenser {
	if chunk < 1 {
		chunk = 1
	}
	if nthreads < 1 {
		nthreads = 1
	}
	return &Dispenser{
		total:    int64(sp.Count()),
		chunk:    int64(chunk),
		guided:   guided,
		nthreads: int64(nthreads),
	}
}

// Next reserves the next chunk, returning iteration-index bounds [from, to).
// ok is false when the space is exhausted.
func (d *Dispenser) Next() (from, to int64, ok bool) {
	return d.NextBatch(1)
}

// NextBatch reserves up to maxChunks consecutive chunks with one CAS,
// returning iteration-index bounds [from, to). Callers dispense the batch
// locally in ChunkSize pieces, so the observable chunk granularity is
// unchanged while the shared cursor is touched maxChunks times less often.
// Batching backs off to single chunks near the tail (when fewer than one
// batch per worker remains) so the last chunks still balance; guided
// sizing already self-batches and ignores maxChunks.
func (d *Dispenser) NextBatch(maxChunks int) (from, to int64, ok bool) {
	for {
		cur := d.next.Load()
		if cur >= d.total {
			return 0, 0, false
		}
		size := d.chunk
		if d.guided {
			if g := (d.total - cur) / (2 * d.nthreads); g > size {
				size = g
			}
		} else if maxChunks > 1 {
			if batch := d.chunk * int64(maxChunks); d.total-cur > batch*d.nthreads {
				size = batch
			}
		}
		end := cur + size
		if end > d.total {
			end = d.total
		}
		if d.next.CompareAndSwap(cur, end) {
			return cur, end, true
		}
	}
}

// ChunkSize reports the chunk granularity the dispenser serves (the
// minimum chunk for guided).
func (d *Dispenser) ChunkSize() int64 { return d.chunk }

// Remaining reports how many iterations have not yet been dispensed.
// Intended for tests and diagnostics.
func (d *Dispenser) Remaining() int64 {
	r := d.total - d.next.Load()
	if r < 0 {
		return 0
	}
	return r
}

// ------------------------------------------------------ steal schedule --

// stealMaxCount bounds the trip count the steal dispenser can represent:
// (lo, hi) iteration indices share one 64-bit word, 32 bits each, so a
// range splits — owner claim from the front, thief claim from the back —
// with a single CAS and no lock.
const stealMaxCount = 1<<31 - 1

// stealSlot is one worker's remaining range, alone on its cache line:
// owners hammer their own slot, and only an out-of-work thief's CAS ever
// pulls the line away.
type stealSlot struct {
	bounds atomic.Uint64 // hi<<32 | lo, iteration indices
	_      [56]byte
}

func packRange(lo, hi int64) uint64 { return uint64(hi)<<32 | uint64(lo) }
func unpackRange(v uint64) (lo, hi int64) {
	return int64(v & 0xffffffff), int64(v >> 32)
}

// StealDispenser is the shared state behind the Steal schedule: the
// StaticBlock partition materialised as per-worker atomic ranges. Owners
// draw chunks from the front of their own range; a worker whose range is
// exhausted steals the back half of a loaded sibling's range and installs
// it as its new local range (LLVM static_steal). Iterations are executed
// exactly once: a range lives in exactly one slot, and every split is a
// single CAS on that slot.
type StealDispenser struct {
	slots []stealSlot
	chunk int64
	// loaded selects the WeightedSteal victim policy: scan every sibling
	// and steal from the one holding the largest remaining range, instead
	// of the first non-empty slot a rotation scan finds. Uniform Steal
	// keeps the rotation scan — its O(1) expected probes are the right
	// trade when ranges are symmetric anyway.
	loaded bool
}

// NewStealDispenser carves sp into one contiguous per-worker range each
// (the StaticBlock partition, remainders spread from worker 0). chunk < 1
// is treated as 1. sp.Count() must not exceed 2^31-1 — Resolve falls back
// to Dynamic above that, so construction never sees such spaces.
func NewStealDispenser(sp Space, chunk, nthreads int) *StealDispenser {
	if chunk < 1 {
		chunk = 1
	}
	if nthreads < 1 {
		nthreads = 1
	}
	d := &StealDispenser{slots: make([]stealSlot, nthreads), chunk: int64(chunk)}
	n := sp.Count()
	per := n / nthreads
	rem := n % nthreads
	lo := 0
	for id := 0; id < nthreads; id++ {
		size := per
		if id < rem {
			size++
		}
		d.slots[id].bounds.Store(packRange(int64(lo), int64(lo+size)))
		lo += size
	}
	return d
}

// NewStealDispenserWeighted carves sp into one contiguous range per worker
// sized proportionally to weights (measured worker speeds), so a 4x-faster
// worker starts with ~4x the iterations and the slow sibling is not handed
// work it must be robbed of later. weights that are nil, mis-sized, or
// unusable (weightedCuts) fall back to the balanced carve. Victim
// selection is most-loaded-first either way — under asymmetry the largest
// remainder marks the worker most in need of help, and halving it moves
// the most work per steal. The resulting dispenser serves the
// WeightedSteal schedule; chunk and count limits are as for
// NewStealDispenser.
func NewStealDispenserWeighted(sp Space, chunk, nthreads int, weights []float64) *StealDispenser {
	if nthreads < 1 {
		nthreads = 1
	}
	if chunk < 1 {
		chunk = 1
	}
	d := &StealDispenser{slots: make([]stealSlot, nthreads), chunk: int64(chunk), loaded: true}
	cuts := weightedCuts(sp.Count(), nthreads, weights)
	for id := 0; id < nthreads; id++ {
		d.slots[id].bounds.Store(packRange(int64(cuts[id]), int64(cuts[id+1])))
	}
	return d
}

// Next reserves the next chunk for worker id, returning iteration-index
// bounds [from, to). victim is the slot a range was stolen from when this
// call had to steal (the worker's own range had run dry), -1 otherwise;
// probes counts the sibling slots examined while stealing (0 when the
// local range served — the locality order is always self first, remote
// only when dry), so callers can observe fruitless scan length; ok is
// false when no work is left anywhere the worker could see. A false ok
// is conservative: a range being migrated by a concurrent thief can be
// missed, which costs balance, never coverage — the thief that owns it
// will execute it.
//
// Ids outside [0, nthreads) have no slot of their own: they steal a whole
// range per call and never install it anywhere, so a foreign caller can
// drain leftovers without aliasing a real worker's slot (the install
// store below is safe precisely because each slot has one owner).
func (d *StealDispenser) Next(id int) (from, to int64, victim, probes int, ok bool) {
	if id < 0 || id >= len(d.slots) {
		lo, hi, vi, pr := d.stealFrom(-1)
		if vi < 0 {
			return 0, 0, -1, pr, false
		}
		return lo, hi, vi, pr, true
	}
	victim = -1
	self := &d.slots[id]
	for {
		for {
			v := self.bounds.Load()
			lo, hi := unpackRange(v)
			if lo >= hi {
				break
			}
			take := d.chunk
			if hi-lo < take {
				take = hi - lo
			}
			if self.bounds.CompareAndSwap(v, packRange(lo+take, hi)) {
				return lo, lo + take, victim, probes, true
			}
		}
		lo, hi, vi, pr := d.stealFrom(id)
		probes += pr
		if vi < 0 {
			return 0, 0, victim, probes, false
		}
		victim = vi
		// The slot's owner is the only goroutine that writes an empty
		// slot, and thieves skip empty slots, so this plain store cannot
		// clobber a concurrent claim.
		self.bounds.Store(packRange(lo, hi))
	}
}

// stealFrom scans the slots other than id (id < 0 scans all) for a
// non-empty range and splits off its back half — or all of it when less
// than one chunk would remain — returning the stolen bounds, the victim's
// slot, and the number of slots probed. Uniform dispensers take the first
// non-empty slot of a rotation scan starting after id; loaded (weighted)
// dispensers complete the scan and target the slot with the largest
// remainder. Both retry while some victim visibly holds work (a failed
// CAS means another worker made progress, so the loop is lock-free) and
// report victim -1 once every slot scanned was empty.
func (d *StealDispenser) stealFrom(id int) (lo, hi int64, victim, probes int) {
	n := len(d.slots)
	for {
		best := -1
		var bestVal uint64
		var bestRem int64
		for i := 0; i < n; i++ {
			vi := i
			if id >= 0 {
				if i == 0 {
					continue // never steal from yourself
				}
				vi = (id + i) % n
			}
			v := &d.slots[vi]
			probes++
			val := v.bounds.Load()
			vlo, vhi := unpackRange(val)
			if vlo >= vhi {
				continue
			}
			if d.loaded {
				if rem := vhi - vlo; rem > bestRem {
					best, bestVal, bestRem = vi, val, rem
				}
				continue
			}
			if slo, shi, ok := d.trySteal(vi, val); ok {
				return slo, shi, vi, probes
			}
			best = vi // witnessed work: keep retrying the scan
		}
		if best < 0 {
			return 0, 0, -1, probes
		}
		if d.loaded {
			if slo, shi, ok := d.trySteal(best, bestVal); ok {
				return slo, shi, best, probes
			}
		}
	}
}

// trySteal CASes the back half out of slot vi given its observed bounds
// word — or the whole range when less than one chunk would remain, so the
// victim is never left a sub-chunk stub.
func (d *StealDispenser) trySteal(vi int, val uint64) (lo, hi int64, ok bool) {
	vlo, vhi := unpackRange(val)
	take := (vhi - vlo + 1) / 2
	if vhi-vlo-take < d.chunk {
		take = vhi - vlo
	}
	mid := vhi - take
	if d.slots[vi].bounds.CompareAndSwap(val, packRange(vlo, mid)) {
		return mid, vhi, true
	}
	return 0, 0, false
}

// Remaining reports how many iterations are still claimable across all
// ranges. Intended for tests and diagnostics; the sum is a snapshot, not
// an atomic observation.
func (d *StealDispenser) Remaining() int64 {
	var r int64
	for i := range d.slots {
		lo, hi := unpackRange(d.slots[i].bounds.Load())
		if hi > lo {
			r += hi - lo
		}
	}
	return r
}
