package sched

import (
	"fmt"
	"strings"
	"sync/atomic"
)

// Kind enumerates the built-in scheduling policies of the @For construct
// (paper Table 1: schedule = staticBlock | staticCyclic | dynamic; guided
// is provided as the Java-7-era extension the paper lists under current
// work, and Custom supports the "case specific" schedules of Table 2).
type Kind int

const (
	// StaticBlock assigns each worker one contiguous block of iterations,
	// with remainders spread one-per-worker from worker 0 (exact OpenMP
	// static semantics, refining the simplified formula of paper Fig. 10).
	StaticBlock Kind = iota
	// StaticCyclic deals iterations round-robin: worker id executes
	// iterations id, id+N, id+2N, ... (paper §II: "cyclic load-distribution").
	StaticCyclic
	// Dynamic hands out fixed-size chunks from a shared counter on demand
	// (paper Fig. 11; default chunk 1).
	Dynamic
	// Guided hands out exponentially shrinking chunks (remaining/2N,
	// floored at the chunk size).
	Guided
	// Custom delegates to a user ScheduleFunc (case-specific schedule).
	Custom
	// Auto picks a concrete schedule per construct encounter from the
	// loop's shape: static by blocks when the trip count is small relative
	// to the team (chunk dispensing would dominate such loops), guided
	// otherwise (self-balancing at negligible relative cost). The choice
	// is a pure function of trip count and team size (Resolve), so every
	// worker of a team resolves the same encounter identically.
	Auto
	// Runtime defers the choice to the process-wide default schedule
	// (SetDefault) — the OMP_SCHEDULE analogue. Sweeping schedules from a
	// benchmark flag needs no aspect changes: bind Runtime, set the
	// default per run.
	Runtime
)

// String implements fmt.Stringer; names match the paper's annotations.
func (k Kind) String() string {
	switch k {
	case StaticBlock:
		return "staticBlock"
	case StaticCyclic:
		return "staticCyclic"
	case Dynamic:
		return "dynamic"
	case Guided:
		return "guided"
	case Custom:
		return "caseSpecific"
	case Auto:
		return "auto"
	case Runtime:
		return "runtime"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Kinds lists every named schedule in declaration order, for flag help
// and parser errors.
func Kinds() []Kind {
	return []Kind{StaticBlock, StaticCyclic, Dynamic, Guided, Custom, Auto, Runtime}
}

// ParseKind resolves a schedule name — as produced by Kind.String,
// case-insensitively — back to its Kind. Unknown names error with the
// valid list.
func ParseKind(s string) (Kind, error) {
	names := make([]string, 0, len(Kinds()))
	for _, k := range Kinds() {
		if strings.EqualFold(s, k.String()) {
			return k, nil
		}
		names = append(names, k.String())
	}
	return 0, fmt.Errorf("sched: unknown schedule %q (valid: %s)", s, strings.Join(names, ", "))
}

// defaultKind is the process-wide schedule behind Runtime. The zero value
// is StaticBlock — OpenMP's default — so unset means "static by blocks".
var defaultKind atomic.Int32

// Default returns the process-wide default schedule that Runtime resolves
// to.
func Default() Kind { return Kind(defaultKind.Load()) }

// SetDefault sets the process-wide default schedule, returning the
// previous one. Runtime (a self-reference) and Custom (it cannot carry the
// required ScheduleFunc through a process-wide knob) are rejected.
func SetDefault(k Kind) (Kind, error) {
	switch k {
	case StaticBlock, StaticCyclic, Dynamic, Guided, Auto:
		return Kind(defaultKind.Swap(int32(k))), nil
	case Runtime:
		return Default(), fmt.Errorf("sched: runtime cannot be its own default")
	case Custom:
		return Default(), fmt.Errorf("sched: caseSpecific needs a ScheduleFunc and cannot be the process default")
	}
	return Default(), fmt.Errorf("sched: unknown schedule Kind(%d)", int(k))
}

// autoGuidedMin is the per-worker trip count above which Auto prefers
// guided: below it the loop is too short for chunk dispensing to pay for
// the balancing it buys.
const autoGuidedMin = 64

// Resolve maps Runtime to the process-wide default, then Auto to a
// concrete policy chosen from the trip count and team size. Runtime reads
// the mutable default, so callers that need one decision per team
// encounter must call Resolve once and share the result (rt.BeginFor
// resolves inside the team-shared encounter state for exactly this
// reason).
func Resolve(k Kind, count, nthreads int) Kind {
	if k == Runtime {
		k = Default()
	}
	if k == Auto {
		if nthreads <= 1 || count < nthreads*autoGuidedMin {
			return StaticBlock
		}
		return Guided
	}
	return k
}

// ScheduleFunc is the extension point for case-specific schedules: given
// the worker id, team size and full iteration space it returns the
// sub-spaces that worker must execute. Implementations must together cover
// every iteration exactly once across ids 0..nthreads-1.
type ScheduleFunc func(id, nthreads int, sp Space) []Space

// Block computes the StaticBlock sub-space for one worker. Workers with
// id < remainder receive one extra iteration, so block sizes differ by at
// most one.
func Block(sp Space, nthreads, id int) Space {
	n := sp.Count()
	if nthreads <= 0 {
		nthreads = 1
	}
	per := n / nthreads
	rem := n % nthreads
	var from int
	if id < rem {
		from = id * (per + 1)
	} else {
		from = rem*(per+1) + (id-rem)*per
	}
	size := per
	if id < rem {
		size++
	}
	return sp.Slice(from, from+size)
}

// Cyclic computes the StaticCyclic sub-space for one worker: same bounds,
// offset start, stride multiplied by the team size.
func Cyclic(sp Space, nthreads, id int) Space {
	if nthreads <= 0 {
		nthreads = 1
	}
	if id >= sp.Count() {
		return Space{Lo: sp.Lo, Hi: sp.Lo, Step: sp.Step}
	}
	return Space{Lo: sp.At(id), Hi: sp.Hi, Step: sp.Step * nthreads}
}

// Dispenser is the shared state behind Dynamic and Guided scheduling: a
// single atomic cursor over iteration-index space that workers draw chunks
// from. One Dispenser instance is shared by the whole team per construct
// encounter (the runtime layer manages instance identity).
type Dispenser struct {
	next     atomic.Int64
	total    int64
	chunk    int64
	guided   bool
	nthreads int64
}

// NewDispenser creates a dispenser over sp handing out chunks of the given
// size (minimum chunk for guided). chunk < 1 is treated as 1, matching the
// paper's default of one iteration per task.
func NewDispenser(sp Space, chunk int, guided bool, nthreads int) *Dispenser {
	if chunk < 1 {
		chunk = 1
	}
	if nthreads < 1 {
		nthreads = 1
	}
	return &Dispenser{
		total:    int64(sp.Count()),
		chunk:    int64(chunk),
		guided:   guided,
		nthreads: int64(nthreads),
	}
}

// Next reserves the next chunk, returning iteration-index bounds [from, to).
// ok is false when the space is exhausted.
func (d *Dispenser) Next() (from, to int64, ok bool) {
	for {
		cur := d.next.Load()
		if cur >= d.total {
			return 0, 0, false
		}
		size := d.chunk
		if d.guided {
			if g := (d.total - cur) / (2 * d.nthreads); g > size {
				size = g
			}
		}
		end := cur + size
		if end > d.total {
			end = d.total
		}
		if d.next.CompareAndSwap(cur, end) {
			return cur, end, true
		}
	}
}

// Remaining reports how many iterations have not yet been dispensed.
// Intended for tests and diagnostics.
func (d *Dispenser) Remaining() int64 {
	r := d.total - d.next.Load()
	if r < 0 {
		return 0
	}
	return r
}
