package sched

import (
	"strings"
	"testing"
)

func TestKindStringCoversAllKinds(t *testing.T) {
	want := map[Kind]string{
		StaticBlock:   "staticBlock",
		StaticCyclic:  "staticCyclic",
		Dynamic:       "dynamic",
		Guided:        "guided",
		Steal:         "steal",
		Custom:        "caseSpecific",
		Auto:          "auto",
		Runtime:       "runtime",
		WeightedSteal: "weightedSteal",
		Adaptive:      "adaptive",
	}
	for _, k := range Kinds() {
		if k.String() != want[k] {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), k.String(), want[k])
		}
	}
	if got := Kind(99).String(); got != "Kind(99)" {
		t.Errorf("unknown kind String = %q", got)
	}
}

func TestParseKindRoundTrips(t *testing.T) {
	for _, k := range Kinds() {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v; want %v", k.String(), got, err, k)
		}
		// Case-insensitive, as flag values are typed by hand.
		upper, err := ParseKind(strings.ToUpper(k.String()))
		if err != nil || upper != k {
			t.Errorf("ParseKind(%q) = %v, %v; want %v", strings.ToUpper(k.String()), upper, err, k)
		}
	}
	if _, err := ParseKind("fancy"); err == nil {
		t.Fatal("unknown schedule name parsed")
	} else if !strings.Contains(err.Error(), "staticBlock") {
		t.Fatalf("parse error does not list valid names: %v", err)
	}
}

func TestSetDefaultGuardsAndSwaps(t *testing.T) {
	orig := Default()
	defer SetDefault(orig) //nolint:errcheck // restoring a previously valid kind
	if prev, err := SetDefault(Guided); err != nil || prev != orig {
		t.Fatalf("SetDefault(Guided) = %v, %v", prev, err)
	}
	if Default() != Guided {
		t.Fatalf("Default() = %v after SetDefault(Guided)", Default())
	}
	if _, err := SetDefault(Runtime); err == nil {
		t.Fatal("Runtime accepted as its own default")
	}
	if _, err := SetDefault(Custom); err == nil {
		t.Fatal("Custom accepted as process default")
	}
	if _, err := SetDefault(Kind(42)); err == nil {
		t.Fatal("unknown kind accepted as process default")
	}
	if Default() != Guided {
		t.Fatalf("rejected SetDefault mutated the default: %v", Default())
	}
}

func TestResolveRuntimeAndAuto(t *testing.T) {
	orig := Default()
	defer SetDefault(orig) //nolint:errcheck
	if _, err := SetDefault(StaticCyclic); err != nil {
		t.Fatal(err)
	}
	if got := Resolve(Runtime, 1000, 4); got != StaticCyclic {
		t.Fatalf("Runtime resolved to %v, want staticCyclic", got)
	}
	// Runtime -> Auto -> concrete: the default may itself be Auto.
	if _, err := SetDefault(Auto); err != nil {
		t.Fatal(err)
	}
	if got := Resolve(Runtime, 4*autoGuidedMin, 4); got != Guided {
		t.Fatalf("Runtime->Auto large loop resolved to %v, want guided", got)
	}

	// Auto: short loops and single workers stay static; long loops on
	// real teams go guided. Concrete kinds pass through untouched.
	cases := []struct {
		count, nthreads int
		want            Kind
	}{
		{count: 10, nthreads: 4, want: StaticBlock},
		{count: 4*autoGuidedMin - 1, nthreads: 4, want: StaticBlock},
		{count: 4 * autoGuidedMin, nthreads: 4, want: Guided},
		{count: 1 << 20, nthreads: 1, want: StaticBlock},
	}
	for _, c := range cases {
		if got := Resolve(Auto, c.count, c.nthreads); got != c.want {
			t.Errorf("Resolve(Auto, %d, %d) = %v, want %v", c.count, c.nthreads, got, c.want)
		}
	}
	for _, k := range []Kind{StaticBlock, StaticCyclic, Dynamic, Guided, Steal, Custom} {
		if got := Resolve(k, 5, 2); got != k {
			t.Errorf("Resolve(%v) rewrote a concrete kind to %v", k, got)
		}
	}
}

// TestResolveAutoBoundaryTripCounts pins Auto's decision at the degenerate
// trip counts the heuristic's comparison sits on: empty loops, single
// iterations, and exactly one iteration per worker must all stay static —
// chunk dispensing can never pay for itself there — and the first count
// that clears the per-worker threshold flips to guided.
func TestResolveAutoBoundaryTripCounts(t *testing.T) {
	cases := []struct {
		count, nthreads int
		want            Kind
	}{
		{count: 0, nthreads: 1, want: StaticBlock},
		{count: 0, nthreads: 8, want: StaticBlock},
		{count: 1, nthreads: 1, want: StaticBlock},
		{count: 1, nthreads: 8, want: StaticBlock},
		{count: 8, nthreads: 8, want: StaticBlock}, // n == team size
		{count: 8*autoGuidedMin - 1, nthreads: 8, want: StaticBlock},
		{count: 8 * autoGuidedMin, nthreads: 8, want: Guided},
		{count: 1 << 20, nthreads: 0, want: StaticBlock}, // degenerate team
	}
	for _, c := range cases {
		if got := Resolve(Auto, c.count, c.nthreads); got != c.want {
			t.Errorf("Resolve(Auto, %d, %d) = %v, want %v", c.count, c.nthreads, got, c.want)
		}
	}
}

// TestAutoGrain pins the generic-range grain heuristic: a pure function
// of the trip count (width-independence is what keeps Reduce/Scan
// decomposition deterministic), never below the dispatch-amortizing
// minimum, never cutting more than the piece bound.
func TestAutoGrain(t *testing.T) {
	if got := AutoGrain(0); got != 1 {
		t.Errorf("AutoGrain(0) = %d, want 1", got)
	}
	if got := AutoGrain(-5); got != 1 {
		t.Errorf("AutoGrain(-5) = %d, want 1", got)
	}
	for _, n := range []int{1, 10, 100, 1000, 1 << 16, 1 << 24} {
		g := AutoGrain(n)
		if g < autoGrainMin && g < n {
			t.Errorf("AutoGrain(%d) = %d, below minimum %d", n, g, autoGrainMin)
		}
		pieces := (n + g - 1) / g
		if pieces > autoGrainPieces {
			t.Errorf("AutoGrain(%d) = %d cuts %d pieces, bound %d", n, g, pieces, autoGrainPieces)
		}
	}
	// Large inputs scale the grain so the piece count stays put.
	if AutoGrain(1<<24) <= AutoGrain(1<<16) {
		t.Error("AutoGrain does not grow with the input")
	}
}

// TestResolveStealOverflowFallsBack pins the packed-range guard: loops
// whose trip count cannot be packed into 32-bit bounds resolve to Dynamic
// (uniformly across a team — Resolve is pure), everything below passes
// through.
func TestResolveStealOverflowFallsBack(t *testing.T) {
	if got := Resolve(Steal, stealMaxCount, 4); got != Steal {
		t.Errorf("Resolve(Steal, max, 4) = %v, want Steal", got)
	}
	if got := Resolve(Steal, stealMaxCount+1, 4); got != Dynamic {
		t.Errorf("Resolve(Steal, max+1, 4) = %v, want Dynamic fallback", got)
	}
}
