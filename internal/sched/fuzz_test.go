package sched

import (
	"strings"
	"testing"
)

// FuzzParseKind feeds ParseKind arbitrary strings: garbage must come back
// as an error (never a panic, never a silent zero Kind masquerading as
// StaticBlock), and every accepted name must round-trip through
// Kind.String back to the same Kind, case-insensitively. Run as a short
// -fuzztime smoke in CI; the corpus seeds cover every canonical name plus
// near-miss mutations.
func FuzzParseKind(f *testing.F) {
	for _, k := range Kinds() {
		f.Add(k.String())
		f.Add(strings.ToUpper(k.String()))
		f.Add(k.String() + "x")
	}
	f.Add("")
	f.Add("static")
	f.Add("dyn amic")
	f.Add("\x00guided")
	// Near-misses of the asymmetry-aware spellings: spacing, casing and
	// truncation mutations around weightedSteal and adaptive.
	f.Add("weighted steal")
	f.Add("weightedsteal")
	f.Add("WEIGHTEDSTEAL")
	f.Add("weighted")
	f.Add("adaptive ")
	f.Add("adapt")
	f.Add("adaptivesteal")
	f.Fuzz(func(t *testing.T, s string) {
		k, err := ParseKind(s)
		if err != nil {
			if !strings.Contains(err.Error(), "unknown schedule") {
				t.Fatalf("ParseKind(%q) error lost its shape: %v", s, err)
			}
			return
		}
		if !strings.EqualFold(s, k.String()) {
			t.Fatalf("ParseKind(%q) = %v, whose name %q does not match the input", s, k, k.String())
		}
		rk, rerr := ParseKind(k.String())
		if rerr != nil || rk != k {
			t.Fatalf("round-trip failed: ParseKind(%q) = %v, %v; want %v", k.String(), rk, rerr, k)
		}
	})
}
