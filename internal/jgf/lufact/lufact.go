// Package lufact reproduces the JGF LUFact benchmark — the Java Linpack
// kernel the paper uses as its case study (§III.E, Figs. 6-8): LU
// factorisation with partial pivoting (dgefa) followed by triangular
// solves (dgesl). The matrix is stored column-major (a[j] is column j), so
// the row-elimination loop over columns k+1..n is the parallel for method
// reduceAllCols; pivot selection, interchange and pivot-column scaling are
// master operations fenced by barriers (Table 2: "PR, FOR (block), 4xBR,
// 2xMA").
package lufact

import (
	"fmt"
	"math"

	"aomplib/internal/core"
	"aomplib/internal/jgf/harness"
	"aomplib/internal/jgf/jgfutil"
	"aomplib/internal/rng"
	"aomplib/internal/sched"
	"aomplib/internal/weaver"
)

// Params sizes the benchmark.
type Params struct {
	// N is the matrix dimension.
	N int
}

// JGF problem sizes.
var (
	SizeA = Params{N: 500}
	SizeB = Params{N: 1000}
	// SizeTest keeps unit tests fast.
	SizeTest = Params{N: 96}
)

// Linpack is the base program after the paper's refactoring.
type Linpack struct {
	n    int
	a    [][]float64 // a[j] is column j
	b    []float64
	x    []float64
	ipvt []int

	// copies for residual validation
	a0 [][]float64
	b0 []float64
}

// New builds the base program with the Linpack random matrix and b chosen
// so the solution is approximately all-ones.
func New(p Params) *Linpack {
	lp := &Linpack{
		n:    p.N,
		a:    make([][]float64, p.N),
		b:    make([]float64, p.N),
		x:    make([]float64, p.N),
		ipvt: make([]int, p.N),
		a0:   make([][]float64, p.N),
		b0:   make([]float64, p.N),
	}
	r := rng.New(1325)
	for j := 0; j < p.N; j++ {
		lp.a[j] = make([]float64, p.N)
		for i := 0; i < p.N; i++ {
			lp.a[j][i] = r.NextDouble() - 0.5
		}
	}
	for j := 0; j < p.N; j++ {
		for i := 0; i < p.N; i++ {
			lp.b[i] += lp.a[j][i]
		}
	}
	for j := 0; j < p.N; j++ {
		lp.a0[j] = append([]float64(nil), lp.a[j]...)
	}
	copy(lp.b0, lp.b)
	return lp
}

// idamax returns the index (relative to the column) of the element with
// the largest magnitude in col[from:n].
func idamax(col []float64, from, n int) int {
	best, bi := math.Abs(col[from]), from
	for i := from + 1; i < n; i++ {
		if v := math.Abs(col[i]); v > best {
			best, bi = v, i
		}
	}
	return bi
}

// Interchange records the pivot and swaps the pivot element into place in
// the pivot column (paper Fig. 6); it runs on the master under barriers.
func (lp *Linpack) Interchange(k, l int) {
	lp.ipvt[k] = l
	if l != k {
		colK := lp.a[k]
		colK[l], colK[k] = colK[k], colK[l]
	}
}

// Dscal computes the multipliers: scales the pivot column below the
// diagonal by -1/pivot (master operation).
func (lp *Linpack) Dscal(k int) {
	colK := lp.a[k]
	t := -1.0 / colK[k]
	for i := k + 1; i < lp.n; i++ {
		colK[i] *= t
	}
}

// ReduceAllCols is the for method of the case study: row elimination with
// column indexing for columns [lo,hi), using pivot column k and pivot row
// l. Each column is touched by exactly one worker.
func (lp *Linpack) ReduceAllCols(lo, hi, step int, k, l int) {
	colK := lp.a[k]
	for j := lo; j < hi; j += step {
		colJ := lp.a[j]
		t := colJ[l]
		if l != k {
			colJ[l] = colJ[k]
			colJ[k] = t
		}
		// daxpy: colJ[k+1:] += t * colK[k+1:]
		if t != 0 {
			for i := k + 1; i < lp.n; i++ {
				colJ[i] += t * colK[i]
			}
		}
	}
}

// Dgesl solves the factored system (forward elimination + back
// substitution); O(n²), run sequentially as in JGF.
func (lp *Linpack) Dgesl() {
	n := lp.n
	copy(lp.x, lp.b)
	for k := 0; k < n-1; k++ {
		l := lp.ipvt[k]
		t := lp.x[l]
		if l != k {
			lp.x[l] = lp.x[k]
			lp.x[k] = t
		}
		colK := lp.a[k]
		for i := k + 1; i < n; i++ {
			lp.x[i] += t * colK[i]
		}
	}
	for k := n - 1; k >= 0; k-- {
		lp.x[k] /= lp.a[k][k]
		t := -lp.x[k]
		colK := lp.a[k]
		for i := 0; i < k; i++ {
			lp.x[i] += t * colK[i]
		}
	}
}

// validate computes the normalised residual ‖A₀x−b₀‖∞ and checks it is at
// rounding level, as the Linpack benchmark does.
func (lp *Linpack) validate() error {
	n := lp.n
	resid, normA, normX := 0.0, 0.0, 0.0
	r := make([]float64, n)
	for i := range r {
		r[i] = -lp.b0[i]
	}
	for j := 0; j < n; j++ {
		xj := lp.x[j]
		for i := 0; i < n; i++ {
			r[i] += lp.a0[j][i] * xj
		}
		for i := 0; i < n; i++ {
			if v := math.Abs(lp.a0[j][i]); v > normA {
				normA = v
			}
		}
		if v := math.Abs(xj); v > normX {
			normX = v
		}
	}
	for i := 0; i < n; i++ {
		if v := math.Abs(r[i]); v > resid {
			resid = v
		}
	}
	eps := 2.220446049250313e-16
	thresh := float64(n) * normA * normX * eps * 100
	if resid > thresh || math.IsNaN(resid) {
		return fmt.Errorf("lufact: residual %g exceeds %g", resid, thresh)
	}
	return nil
}

// dgefaSeq is the sequential factorisation driving all three versions'
// control flow.
func (lp *Linpack) dgefaSeq() {
	n := lp.n
	for k := 0; k < n-1; k++ {
		l := idamax(lp.a[k], k, n)
		lp.Interchange(k, l)
		if lp.a[k][k] != 0 {
			lp.Dscal(k)
			lp.ReduceAllCols(k+1, n, 1, k, l)
		}
	}
	lp.ipvt[n-1] = n - 1
}

// ------------------------------------------------------------- versions --

type seqInstance struct {
	p  Params
	lp *Linpack
}

// NewSeq returns the sequential version.
func NewSeq(p Params) harness.Instance { return &seqInstance{p: p} }

func (in *seqInstance) Setup() { in.lp = New(in.p) }
func (in *seqInstance) Kernel() {
	in.lp.dgefaSeq()
	in.lp.Dgesl()
}
func (in *seqInstance) Validate() error { return in.lp.validate() }

type mtInstance struct {
	p       Params
	threads int
	lp      *Linpack
}

// NewMT returns the hand-threaded baseline: every worker runs the outer
// factorisation loop; worker 0 performs pivoting and scaling between
// barriers; the elimination columns are block-distributed per step.
func NewMT(p Params, threads int) harness.Instance {
	return &mtInstance{p: p, threads: threads}
}

func (in *mtInstance) Setup() { in.lp = New(in.p) }

func (in *mtInstance) Kernel() {
	lp := in.lp
	n := lp.n
	bar := jgfutil.NewBarrier(in.threads)
	// curL is committed by worker 0 between barriers and read by everyone
	// afterwards (the barriers order the accesses).
	var curL int
	jgfutil.Run(in.threads, func(id int) {
		for k := 0; k < n-1; k++ {
			bar.Wait()
			if id == 0 {
				curL = idamax(lp.a[k], k, n)
				lp.Interchange(k, curL)
			}
			bar.Wait()
			if lp.a[k][k] != 0 {
				if id == 0 {
					lp.Dscal(k)
				}
				bar.Wait()
				lo, hi := jgfutil.Block(n-(k+1), in.threads, id)
				lp.ReduceAllCols(k+1+lo, k+1+hi, 1, k, curL)
				bar.Wait()
			}
		}
		if id == 0 {
			lp.ipvt[n-1] = n - 1
		}
	})
	lp.Dgesl()
}

func (in *mtInstance) Validate() error { return in.lp.validate() }

type aompInstance struct {
	p       Params
	threads int
	lp      *Linpack
	run     func()
	prog    *weaver.Program
}

// NewAomp returns the AOmpLib version structured exactly as the paper's
// Figure 7 aspect: dgefa is the parallel region; reduceAllCols carries the
// for construct; interchange and dscal are master operations; four barrier
// points fence the phases.
func NewAomp(p Params, threads int) harness.Instance {
	return &aompInstance{p: p, threads: threads}
}

func (in *aompInstance) Setup() {
	in.lp = New(in.p)
	lp := in.lp
	in.prog = weaver.NewProgram("Linpack")
	prog := in.prog
	cls := prog.Class("Linpack")

	// The pivot row/column indices of the current step are committed by
	// the master inside interchange (fenced by its barriers) and read by
	// everyone afterwards, mirroring the omitted parameters of the paper's
	// sketch.
	var curK, curL int
	interchange := cls.KeyedProc("interchange", func(k int) {
		l := idamax(lp.a[k], k, lp.n)
		curK, curL = k, l
		lp.Interchange(k, l)
	})
	dscal := cls.Proc("dscal", func() { lp.Dscal(curK) })
	reduceAllCols := cls.ForProc("reduceAllCols", func(lo, hi, step int) {
		lp.ReduceAllCols(lo, hi, step, curK, curL)
	})
	dgefa := cls.Proc("dgefa", func() {
		n := lp.n
		for k := 0; k < n-1; k++ {
			interchange(k)
			if lp.a[k][k] != 0 {
				dscal()
				reduceAllCols(k+1, n, 1)
			}
		}
	})
	in.run = func() {
		dgefa()
		lp.ipvt[lp.n-1] = lp.n - 1
		lp.Dgesl()
	}

	prog.Use(core.ParallelRegion("call(* Linpack.dgefa(..))").Threads(in.threads))
	prog.Use(core.ForShare("call(* Linpack.reduceAllCols(..))").Schedule(sched.Runtime))
	prog.Use(core.MasterSection("call(* Linpack.interchange(..)) || call(* Linpack.dscal(..))"))
	prog.Use(core.BarrierBeforePoint("call(* Linpack.interchange(..))"))
	prog.Use(core.BarrierAfterPoint(
		"call(* Linpack.reduceAllCols(..)) || call(* Linpack.interchange(..)) || call(* Linpack.dscal(..))"))
	prog.MustWeave()
}

func (in *aompInstance) Kernel()         { in.run() }
func (in *aompInstance) Validate() error { return in.lp.validate() }

// WeaveReport exposes the woven structure for the Table 2 tooling.
func (in *aompInstance) WeaveReport() []weaver.WovenMethod { return in.prog.Report() }

type aompDepInstance struct {
	p       Params
	threads int
	lp      *Linpack
	run     func()
	prog    *weaver.Program
}

// NewAompDep returns the dataflow (wavefront) AOmpLib version: instead of
// fencing every factorisation step with team barriers, the master spawns
// one pivot task per step and one update task per column block, ordered by
// @Depend clauses. A pivot task publishes its column (out=&a[k]) after
// taking over the block that owns it (inout=block); update tasks read the
// pivot column (in=&a[k]) and own their block (inout=block). Step k+1's
// pivot therefore starts as soon as the update of its own block retires,
// while the remaining blocks of step k are still in flight — the classic
// lookahead wavefront that barrier-based LUFact cannot express.
func NewAompDep(p Params, threads int) harness.Instance {
	return &aompDepInstance{p: p, threads: threads}
}

func (in *aompDepInstance) Setup() {
	in.lp = New(in.p)
	lp := in.lp
	n := lp.n
	// Column blocks: enough to keep every worker busy with lookahead work,
	// coarse enough that a block update amortises its task bookkeeping.
	nb := in.threads * 2
	if nb > n {
		nb = n
	}
	width := (n + nb - 1) / nb
	nb = (n + width - 1) / width
	lvals := make([]int, n) // pivot row per step, published by the pivot task
	zero := make([]bool, n) // exact-zero pivots: that step eliminates nothing
	blocks := make([]byte, nb)

	in.prog = weaver.NewProgram("LinpackDF")
	prog := in.prog
	cls := prog.Class("Linpack")

	pivot := cls.KeyedProc("pivot", func(k int) {
		l := idamax(lp.a[k], k, n)
		lvals[k] = l
		lp.Interchange(k, l)
		if lp.a[k][k] != 0 {
			lp.Dscal(k)
		} else {
			zero[k] = true
		}
	})
	// updateBlock(key) eliminates columns (k, n) ∩ block jb with pivot
	// column k, where key = k*nb + jb.
	update := cls.KeyedProc("updateBlock", func(key int) {
		k, jb := key/nb, key%nb
		if zero[k] {
			return
		}
		lo := k + 1
		if b := jb * width; b > lo {
			lo = b
		}
		hi := (jb + 1) * width
		if hi > n {
			hi = n
		}
		lp.ReduceAllCols(lo, hi, 1, k, lvals[k])
	})
	spawnAll := cls.Proc("spawnAll", func() {
		for k := 0; k < n-1; k++ {
			pivot(k)
			for jb := (k + 1) / width; jb < nb; jb++ {
				update(k*nb + jb)
			}
		}
	})
	factor := cls.Proc("factor", func() { spawnAll() })

	prog.MustAnnotate("Linpack.factor", core.Parallel{Threads: in.threads})
	prog.MustAnnotate("Linpack.spawnAll", core.Master{})
	prog.MustAnnotate("Linpack.pivot", core.Task{}, core.Depend{
		Out:   []any{core.DepFn(func(k int) any { return &lp.a[k] })},
		InOut: []any{core.DepFn(func(k int) any { return &blocks[k/width] })},
	})
	prog.MustAnnotate("Linpack.updateBlock", core.Task{}, core.Depend{
		In:    []any{core.DepFn(func(key int) any { return &lp.a[key/nb] })},
		InOut: []any{core.DepFn(func(key int) any { return &blocks[key%nb] })},
	})
	prog.Use(core.AnnotationAspects(prog)...)
	prog.MustWeave()

	in.run = func() {
		factor()
		lp.ipvt[n-1] = n - 1
		lp.Dgesl()
	}
}

func (in *aompDepInstance) Kernel()         { in.run() }
func (in *aompDepInstance) Validate() error { return in.lp.validate() }

// WeaveReport exposes the woven structure for the Table 2 tooling.
func (in *aompDepInstance) WeaveReport() []weaver.WovenMethod { return in.prog.Report() }
