package lufact

import (
	"math"
	"testing"

	"aomplib/internal/jgf/harness"
)

func runAll(t *testing.T, p Params, threads int) (*seqInstance, *mtInstance, *aompInstance) {
	t.Helper()
	seq := NewSeq(p).(*seqInstance)
	mt := NewMT(p, threads).(*mtInstance)
	ao := NewAomp(p, threads).(*aompInstance)
	for _, in := range []harness.Instance{seq, mt, ao} {
		in.Setup()
		in.Kernel()
		if err := in.Validate(); err != nil {
			t.Fatalf("validation: %v", err)
		}
	}
	return seq, mt, ao
}

func TestAllVersionsAgreeBitwise(t *testing.T) {
	// The elimination arithmetic is identical (per-column ownership), so
	// factors, pivots and solutions must match bit for bit.
	seq, mt, ao := runAll(t, SizeTest, 3)
	for i := range seq.lp.ipvt {
		if seq.lp.ipvt[i] != mt.lp.ipvt[i] || seq.lp.ipvt[i] != ao.lp.ipvt[i] {
			t.Fatalf("pivot %d differs: %d %d %d", i, seq.lp.ipvt[i], mt.lp.ipvt[i], ao.lp.ipvt[i])
		}
	}
	for j := range seq.lp.a {
		for i := range seq.lp.a[j] {
			if seq.lp.a[j][i] != mt.lp.a[j][i] {
				t.Fatalf("MT factor differs at col %d row %d", j, i)
			}
			if seq.lp.a[j][i] != ao.lp.a[j][i] {
				t.Fatalf("Aomp factor differs at col %d row %d", j, i)
			}
		}
	}
	for i := range seq.lp.x {
		if seq.lp.x[i] != mt.lp.x[i] || seq.lp.x[i] != ao.lp.x[i] {
			t.Fatalf("solution differs at %d", i)
		}
	}
}

func TestSolutionNearOnes(t *testing.T) {
	// b was constructed as the row sums of A, so x ≈ 1 everywhere.
	seq := NewSeq(SizeTest).(*seqInstance)
	seq.Setup()
	seq.Kernel()
	for i, v := range seq.lp.x {
		if math.Abs(v-1) > 1e-6 {
			t.Fatalf("x[%d] = %v, want ≈1", i, v)
		}
	}
}

func TestResidualValidationCatchesCorruption(t *testing.T) {
	seq := NewSeq(Params{N: 32}).(*seqInstance)
	seq.Setup()
	seq.Kernel()
	seq.lp.x[3] += 0.5 // corrupt the solution
	if err := seq.Validate(); err == nil {
		t.Fatal("corrupted solution passed validation")
	}
}

func TestIdamax(t *testing.T) {
	col := []float64{1, -9, 3, 9, -2}
	if got := idamax(col, 0, len(col)); got != 1 {
		t.Fatalf("idamax = %d, want 1 (first max magnitude)", got)
	}
	if got := idamax(col, 2, len(col)); got != 3 {
		t.Fatalf("idamax from 2 = %d, want 3", got)
	}
}

func TestVariousThreadCounts(t *testing.T) {
	for _, threads := range []int{1, 2, 4} {
		seq, _, ao := runAll(t, Params{N: 48}, threads)
		for i := range seq.lp.x {
			if seq.lp.x[i] != ao.lp.x[i] {
				t.Fatalf("threads=%d: solution differs at %d", threads, i)
			}
		}
	}
}

func TestDataflowVersionAgreesBitwise(t *testing.T) {
	// The wavefront dataflow version performs the same per-column
	// arithmetic in the same order (blocks serialize per column, pivot
	// tasks serialize per step), so its factors, pivots and solution must
	// match the sequential version bit for bit.
	for _, threads := range []int{1, 2, 4} {
		seq := NewSeq(SizeTest).(*seqInstance)
		seq.Setup()
		seq.Kernel()
		df := NewAompDep(SizeTest, threads).(*aompDepInstance)
		df.Setup()
		df.Kernel()
		if err := df.Validate(); err != nil {
			t.Fatalf("threads=%d: %v", threads, err)
		}
		for i := range seq.lp.ipvt {
			if seq.lp.ipvt[i] != df.lp.ipvt[i] {
				t.Fatalf("threads=%d: pivot %d differs: %d vs %d", threads, i, seq.lp.ipvt[i], df.lp.ipvt[i])
			}
		}
		for j := range seq.lp.a {
			for i := range seq.lp.a[j] {
				if seq.lp.a[j][i] != df.lp.a[j][i] {
					t.Fatalf("threads=%d: dataflow factor differs at col %d row %d", threads, j, i)
				}
			}
		}
		for i := range seq.lp.x {
			if seq.lp.x[i] != df.lp.x[i] {
				t.Fatalf("threads=%d: solution differs at %d", threads, i)
			}
		}
	}
}

func TestDataflowRepeatedKernelRuns(t *testing.T) {
	// The harness re-runs Kernel after a fresh Setup; the woven dataflow
	// program must stay valid across repetitions.
	df := NewAompDep(SizeTest, 3).(*aompDepInstance)
	for rep := 0; rep < 3; rep++ {
		df.Setup()
		df.Kernel()
		if err := df.Validate(); err != nil {
			t.Fatalf("rep %d: %v", rep, err)
		}
	}
}
