package sparse

import (
	"testing"

	"aomplib/internal/jgf/harness"
	"aomplib/internal/sched"
)

func runAll(t *testing.T, p Params, threads int) (*seqInstance, *mtInstance, *aompInstance) {
	t.Helper()
	seq := NewSeq(p).(*seqInstance)
	mt := NewMT(p, threads).(*mtInstance)
	ao := NewAomp(p, threads).(*aompInstance)
	for _, in := range []harness.Instance{seq, mt, ao} {
		in.Setup()
		in.Kernel()
		if err := in.Validate(); err != nil {
			t.Fatalf("validation: %v", err)
		}
	}
	return seq, mt, ao
}

func TestAllVersionsAgreeBitwise(t *testing.T) {
	// Rows are owned by single workers in every version, so y must be
	// bit-identical.
	seq, mt, ao := runAll(t, SizeTest, 3)
	for i := range seq.s.y {
		if seq.s.y[i] != mt.s.y[i] {
			t.Fatalf("MT y[%d] differs", i)
		}
		if seq.s.y[i] != ao.s.y[i] {
			t.Fatalf("Aomp y[%d] differs", i)
		}
	}
}

func TestRowStartMonotone(t *testing.T) {
	s := New(SizeTest)
	for r := 0; r < s.n; r++ {
		if s.rowStart[r] > s.rowStart[r+1] {
			t.Fatalf("rowStart not monotone at %d", r)
		}
		for k := s.rowStart[r]; k < s.rowStart[r+1]; k++ {
			if s.row[k] != r {
				t.Fatalf("triplet %d has row %d, want %d", k, s.row[k], r)
			}
		}
	}
	if s.rowStart[s.n] != s.nz {
		t.Fatalf("rowStart[n] = %d, want %d", s.rowStart[s.n], s.nz)
	}
}

func TestBalancedScheduleCoversAllRowsOnce(t *testing.T) {
	s := New(SizeTest)
	sp := sched.Space{Lo: 0, Hi: s.n, Step: 1}
	for _, threads := range []int{1, 2, 3, 5, 8} {
		covered := make([]int, s.n)
		for id := 0; id < threads; id++ {
			for _, sub := range s.BalancedSchedule(id, threads, sp) {
				for r := sub.Lo; r < sub.Hi; r += sub.Step {
					covered[r]++
				}
			}
		}
		for r, c := range covered {
			if c != 1 {
				t.Fatalf("threads=%d: row %d covered %d times", threads, r, c)
			}
		}
	}
}

func TestBalancedScheduleBalancesNonzeros(t *testing.T) {
	s := New(Params{N: 2000, NZ: 20000, Iters: 1})
	sp := sched.Space{Lo: 0, Hi: s.n, Step: 1}
	const threads = 4
	var counts [threads]int
	for id := 0; id < threads; id++ {
		for _, sub := range s.BalancedSchedule(id, threads, sp) {
			counts[id] += s.rowStart[sub.Hi] - s.rowStart[sub.Lo]
		}
	}
	target := s.nz / threads
	for id, c := range counts {
		if c < target/2 || c > target*2 {
			t.Fatalf("worker %d has %d nonzeros, target %d — schedule unbalanced", id, c, target)
		}
	}
}

func TestSingleThread(t *testing.T) {
	runAll(t, Params{N: 200, NZ: 1000, Iters: 3}, 1)
}
