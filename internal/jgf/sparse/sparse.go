// Package sparse reproduces the JGF SparseMatmult benchmark: repeated
// sparse matrix-vector multiplication y += A·x with A in compressed
// row-ordered triplet form. Rows carry wildly different nonzero counts, so
// a plain block distribution is unbalanced; the paper uses a
// *case-specific* for schedule that assigns each worker a row range with
// approximately equal nonzeros (Table 2: "PR, FOR (Case Specific), CS").
package sparse

import (
	"fmt"
	"math"
	"sort"

	"aomplib/internal/core"
	"aomplib/internal/jgf/harness"
	"aomplib/internal/rng"
	"aomplib/internal/sched"
	"aomplib/internal/weaver"
)

// Params sizes the benchmark.
type Params struct {
	// N is the matrix dimension, NZ the number of nonzeros, Iters the
	// number of multiplication sweeps.
	N, NZ, Iters int
}

// JGF problem sizes.
var (
	SizeA = Params{N: 50_000, NZ: 250_000, Iters: 200}
	SizeB = Params{N: 100_000, NZ: 500_000, Iters: 200}
	// SizeTest keeps unit tests fast.
	SizeTest = Params{N: 500, NZ: 3_000, Iters: 20}
)

// Sparse is the base program: triplets sorted by row, plus the row index
// (first triplet of each row) used by the balanced schedule.
type Sparse struct {
	n, nz, iters int
	row, col     []int
	val          []float64
	x, y         []float64
	// rowStart[r] is the first triplet index of row r (rowStart[n] = nz).
	rowStart []int
	ytotal   float64
}

// New builds the base program with a deterministic random matrix.
func New(p Params) *Sparse {
	s := &Sparse{
		n: p.N, nz: p.NZ, iters: p.Iters,
		row: make([]int, p.NZ), col: make([]int, p.NZ), val: make([]float64, p.NZ),
		x: make([]float64, p.N), y: make([]float64, p.N),
	}
	r := rng.New(1966)
	for i := 0; i < p.NZ; i++ {
		s.row[i] = int(r.NextIntN(int32(p.N)))
		s.col[i] = int(r.NextIntN(int32(p.N)))
		s.val[i] = r.NextDouble()
	}
	for i := 0; i < p.N; i++ {
		s.x[i] = r.NextDouble()
	}
	// Sort triplets by (row, col) so each row is contiguous — the JGF
	// kernel relies on row-major traversal.
	idx := make([]int, p.NZ)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ia, ib := idx[a], idx[b]
		if s.row[ia] != s.row[ib] {
			return s.row[ia] < s.row[ib]
		}
		return s.col[ia] < s.col[ib]
	})
	rr := make([]int, p.NZ)
	cc := make([]int, p.NZ)
	vv := make([]float64, p.NZ)
	for i, j := range idx {
		rr[i], cc[i], vv[i] = s.row[j], s.col[j], s.val[j]
	}
	s.row, s.col, s.val = rr, cc, vv
	s.rowStart = make([]int, p.N+1)
	pos := 0
	for rrow := 0; rrow <= p.N; rrow++ {
		for pos < p.NZ && s.row[pos] < rrow {
			pos++
		}
		s.rowStart[rrow] = pos
	}
	return s
}

// MultiplyRows is the for method over *row* indices [lo,hi): y[r] is
// written only by the worker owning row r, so no synchronisation on y is
// needed, exactly as in the JGF multi-threaded kernel.
func (s *Sparse) MultiplyRows(lo, hi, step int) {
	for r := lo; r < hi; r += step {
		acc := s.y[r]
		for k := s.rowStart[r]; k < s.rowStart[r+1]; k++ {
			acc += s.x[s.col[k]] * s.val[k]
		}
		s.y[r] = acc
	}
}

// BalancedSchedule is the case-specific schedule: contiguous row ranges
// with approximately equal nonzero counts per worker (the Table 2 "CS").
func (s *Sparse) BalancedSchedule(id, nthreads int, sp sched.Space) []sched.Space {
	if nthreads <= 1 {
		return []sched.Space{sp}
	}
	target := s.nz / nthreads
	// Boundaries in row space chosen by cumulative nonzeros.
	loRow, hiRow := sp.Lo, sp.Lo
	wantLo, wantHi := id*target, (id+1)*target
	if id == nthreads-1 {
		wantHi = s.nz
	}
	loRow = sort.SearchInts(s.rowStart[:s.n+1], wantLo)
	hiRow = sort.SearchInts(s.rowStart[:s.n+1], wantHi)
	if loRow > sp.Hi {
		loRow = sp.Hi
	}
	if hiRow > sp.Hi {
		hiRow = sp.Hi
	}
	if id == nthreads-1 {
		hiRow = sp.Hi
	}
	return []sched.Space{{Lo: loRow, Hi: hiRow, Step: sp.Step}}
}

// Sum computes the validation checksum.
func (s *Sparse) Sum() float64 {
	t := 0.0
	for _, v := range s.y {
		t += v
	}
	return t
}

func (s *Sparse) validate() error {
	if math.IsNaN(s.ytotal) || s.ytotal == 0 {
		return fmt.Errorf("sparse: checksum %v", s.ytotal)
	}
	return nil
}

// ------------------------------------------------------------- versions --

type seqInstance struct {
	p Params
	s *Sparse
}

// NewSeq returns the sequential version.
func NewSeq(p Params) harness.Instance { return &seqInstance{p: p} }

func (in *seqInstance) Setup() { in.s = New(in.p) }
func (in *seqInstance) Kernel() {
	for it := 0; it < in.s.iters; it++ {
		in.s.MultiplyRows(0, in.s.n, 1)
	}
	in.s.ytotal = in.s.Sum()
}
func (in *seqInstance) Validate() error { return in.s.validate() }

type mtInstance struct {
	p       Params
	threads int
	s       *Sparse
}

// NewMT returns the hand-threaded baseline with the same nonzero-balanced
// row partition the JGF Java-threads kernel computes by hand.
func NewMT(p Params, threads int) harness.Instance {
	return &mtInstance{p: p, threads: threads}
}

func (in *mtInstance) Setup() { in.s = New(in.p) }

func (in *mtInstance) Kernel() {
	s := in.s
	t := in.threads
	done := make(chan struct{}, t)
	for id := 0; id < t; id++ {
		go func(id int) {
			sub := s.BalancedSchedule(id, t, sched.Space{Lo: 0, Hi: s.n, Step: 1})[0]
			for it := 0; it < s.iters; it++ {
				s.MultiplyRows(sub.Lo, sub.Hi, sub.Step)
			}
			done <- struct{}{}
		}(id)
	}
	for id := 0; id < t; id++ {
		<-done
	}
	s.ytotal = s.Sum()
}

func (in *mtInstance) Validate() error { return in.s.validate() }

type aompInstance struct {
	p       Params
	threads int
	s       *Sparse
	run     func()
	prog    *weaver.Program
}

// NewAomp returns the AOmpLib version: parallel region + for with the
// case-specific balanced schedule plugged in via CustomSchedule.
func NewAomp(p Params, threads int) harness.Instance {
	return &aompInstance{p: p, threads: threads}
}

func (in *aompInstance) Setup() {
	in.s = New(in.p)
	in.prog = weaver.NewProgram("Sparse")
	prog := in.prog
	cls := prog.Class("Sparse")
	mult := cls.ForProc("multiplyRows", in.s.MultiplyRows)
	in.run = cls.Proc("run", func() {
		for it := 0; it < in.s.iters; it++ {
			mult(0, in.s.n, 1)
		}
	})
	prog.Use(core.ParallelRegion("call(* Sparse.run(..))").Threads(in.threads))
	prog.Use(core.ForShare("call(* Sparse.multiplyRows(..))").CustomSchedule(in.s.BalancedSchedule))
	prog.MustWeave()
}

func (in *aompInstance) Kernel() {
	in.run()
	in.s.ytotal = in.s.Sum()
}
func (in *aompInstance) Validate() error { return in.s.validate() }

// WeaveReport exposes the woven structure for the Table 2 tooling.
func (in *aompInstance) WeaveReport() []weaver.WovenMethod { return in.prog.Report() }
