// Package crypt reproduces the JGF Crypt benchmark: IDEA (International
// Data Encryption Algorithm) encryption and decryption over a byte array.
// The kernel is embarrassingly parallel over 8-byte blocks, which the
// paper parallelises with a parallel region and a block-scheduled for
// method (Table 2: "PR, FOR (block)").
package crypt

import (
	"fmt"

	"aomplib/internal/core"
	"aomplib/internal/jgf/harness"
	"aomplib/internal/rng"
	"aomplib/internal/sched"
	"aomplib/internal/weaver"
)

// mul is IDEA multiplication modulo 2^16+1 with 0 representing 2^16.
func mul(a, b uint32) uint16 {
	if a == 0 {
		return uint16(1 - b)
	}
	if b == 0 {
		return uint16(1 - a)
	}
	p := a * b
	lo, hi := p&0xffff, p>>16
	if lo >= hi {
		return uint16(lo - hi)
	}
	return uint16(lo - hi + 1)
}

// mulInv returns the multiplicative inverse of x modulo 2^16+1 (with the
// IDEA zero convention), via the extended Euclidean algorithm.
func mulInv(x uint16) uint16 {
	if x <= 1 {
		return x // 0 and 1 are self-inverse under the convention
	}
	t1 := uint32(0x10001) / uint32(x)
	y := uint32(0x10001) % uint32(x)
	if y == 1 {
		return uint16((1 - t1) & 0xffff)
	}
	t0 := uint32(1)
	xx := uint32(x)
	for y != 1 {
		q := xx / y
		xx %= y
		t0 += q * t1
		if xx == 1 {
			return uint16(t0)
		}
		q = y / xx
		y %= xx
		t1 += q * t0
	}
	return uint16((1 - t1) & 0xffff)
}

// calcEncryptKey expands a 128-bit user key (8×16-bit) into the 52
// encryption subkeys via the standard 25-bit rotation schedule.
func calcEncryptKey(userKey [8]uint16) [52]uint16 {
	var z [52]uint16
	for i := 0; i < 8; i++ {
		z[i] = userKey[i]
	}
	for i := 8; i < 52; i++ {
		switch {
		case i&7 < 6:
			z[i] = (z[i-7]&127)<<9 | z[i-6]>>7
		case i&7 == 6:
			z[i] = (z[i-7]&127)<<9 | z[i-14]>>7
		default:
			z[i] = (z[i-15]&127)<<9 | z[i-14]>>7
		}
	}
	return z
}

// calcDecryptKey derives the 52 decryption subkeys from the encryption
// schedule: inverses of the transform keys with the two middle add-keys
// swapped in the 7 interior rounds (because the cipher swaps x2/x3).
func calcDecryptKey(z [52]uint16) [52]uint16 {
	var dk [52]uint16
	p := 52
	put := func(v uint16) { p--; dk[p] = v }

	// Inverse of the output transform becomes the first round's keys.
	t1 := mulInv(z[0])
	t2 := uint16(-int32(z[1]) & 0xffff)
	t3 := uint16(-int32(z[2]) & 0xffff)
	t4 := mulInv(z[3])
	put(t4)
	put(t3)
	put(t2)
	put(t1)
	k := 4
	for r := 1; r < 8; r++ {
		ma1, ma2 := z[k], z[k+1]
		k += 2
		put(ma2)
		put(ma1)
		t1 = mulInv(z[k])
		t2 = uint16(-int32(z[k+1]) & 0xffff)
		t3 = uint16(-int32(z[k+2]) & 0xffff)
		t4 = mulInv(z[k+3])
		k += 4
		put(t4)
		put(t2) // swapped with t3: interior rounds
		put(t3)
		put(t1)
	}
	ma1, ma2 := z[k], z[k+1]
	k += 2
	put(ma2)
	put(ma1)
	t1 = mulInv(z[k])
	t2 = uint16(-int32(z[k+1]) & 0xffff)
	t3 = uint16(-int32(z[k+2]) & 0xffff)
	t4 = mulInv(z[k+3])
	put(t4)
	put(t3) // no swap: these invert the first round
	put(t2)
	put(t1)
	return dk
}

// cipherBlock runs the 8.5-round IDEA cipher on one 8-byte block.
func cipherBlock(src, dst []byte, z *[52]uint16) {
	x1 := uint32(src[0]) | uint32(src[1])<<8
	x2 := uint32(src[2]) | uint32(src[3])<<8
	x3 := uint32(src[4]) | uint32(src[5])<<8
	x4 := uint32(src[6]) | uint32(src[7])<<8
	k := 0
	for r := 0; r < 8; r++ {
		x1 = uint32(mul(x1, uint32(z[k])))
		x2 = (x2 + uint32(z[k+1])) & 0xffff
		x3 = (x3 + uint32(z[k+2])) & 0xffff
		x4 = uint32(mul(x4, uint32(z[k+3])))
		t2 := x1 ^ x3
		t2 = uint32(mul(t2, uint32(z[k+4])))
		t1 := (t2 + (x2 ^ x4)) & 0xffff
		t1 = uint32(mul(t1, uint32(z[k+5])))
		t2 = (t1 + t2) & 0xffff
		x1 ^= t1
		x4 ^= t2
		t2 ^= x2
		x2 = x3 ^ t1
		x3 = t2
		k += 6
	}
	y1 := mul(x1, uint32(z[48]))
	y2 := uint16((x3 + uint32(z[49])) & 0xffff) // note x2/x3 swap
	y3 := uint16((x2 + uint32(z[50])) & 0xffff)
	y4 := mul(x4, uint32(z[51]))
	dst[0], dst[1] = byte(y1), byte(y1>>8)
	dst[2], dst[3] = byte(y2), byte(y2>>8)
	dst[4], dst[5] = byte(y3), byte(y3>>8)
	dst[6], dst[7] = byte(y4), byte(y4>>8)
}

// Params sizes the benchmark (bytes; rounded down to whole blocks).
type Params struct {
	// N is the plaintext length in bytes.
	N int
}

// JGF problem sizes.
var (
	SizeA = Params{N: 3_000_000}
	SizeB = Params{N: 20_000_000}
	// SizeTest keeps unit tests fast.
	SizeTest = Params{N: 8 * 1024}
)

// Crypt is the base program: plaintext, ciphertext, decrypted text and the
// two key schedules.
type Crypt struct {
	nblocks int
	plain1  []byte
	crypt1  []byte
	plain2  []byte
	z, dk   [52]uint16
}

// New builds the base program with deterministic random plaintext and key.
func New(p Params) *Crypt {
	nblocks := p.N / 8
	c := &Crypt{
		nblocks: nblocks,
		plain1:  make([]byte, nblocks*8),
		crypt1:  make([]byte, nblocks*8),
		plain2:  make([]byte, nblocks*8),
	}
	r := rng.New(136506717)
	var userKey [8]uint16
	for i := range userKey {
		userKey[i] = uint16(r.NextIntN(65536))
	}
	for i := range c.plain1 {
		c.plain1[i] = byte(r.NextIntN(256))
	}
	c.z = calcEncryptKey(userKey)
	c.dk = calcDecryptKey(c.z)
	return c
}

// EncryptBlocks is the for method over 8-byte block indices [lo,hi).
func (c *Crypt) EncryptBlocks(lo, hi, step int) {
	for b := lo; b < hi; b += step {
		o := b * 8
		cipherBlock(c.plain1[o:o+8], c.crypt1[o:o+8], &c.z)
	}
}

// DecryptBlocks is the for method decrypting block indices [lo,hi).
func (c *Crypt) DecryptBlocks(lo, hi, step int) {
	for b := lo; b < hi; b += step {
		o := b * 8
		cipherBlock(c.crypt1[o:o+8], c.plain2[o:o+8], &c.dk)
	}
}

func (c *Crypt) validate() error {
	for i := range c.plain1 {
		if c.plain1[i] != c.plain2[i] {
			return fmt.Errorf("crypt: decrypt(encrypt(p)) differs from p at byte %d", i)
		}
	}
	// Guard against the identity cipher masking a broken key schedule.
	same := 0
	for i := range c.plain1 {
		if c.plain1[i] == c.crypt1[i] {
			same++
		}
	}
	if same == len(c.plain1) {
		return fmt.Errorf("crypt: ciphertext equals plaintext")
	}
	return nil
}

// ------------------------------------------------------------- versions --

type seqInstance struct {
	p Params
	c *Crypt
}

// NewSeq returns the sequential version.
func NewSeq(p Params) harness.Instance { return &seqInstance{p: p} }

func (in *seqInstance) Setup() { in.c = New(in.p) }
func (in *seqInstance) Kernel() {
	in.c.EncryptBlocks(0, in.c.nblocks, 1)
	in.c.DecryptBlocks(0, in.c.nblocks, 1)
}
func (in *seqInstance) Validate() error { return in.c.validate() }

type mtInstance struct {
	p       Params
	threads int
	c       *Crypt
}

// NewMT returns the hand-threaded baseline: explicit goroutines, block
// distribution over cipher blocks, join between the two phases.
func NewMT(p Params, threads int) harness.Instance {
	return &mtInstance{p: p, threads: threads}
}

func (in *mtInstance) Setup() { in.c = New(in.p) }

func (in *mtInstance) phase(f func(lo, hi, step int)) {
	n := in.c.nblocks
	done := make(chan struct{}, in.threads)
	for id := 0; id < in.threads; id++ {
		go func(id int) {
			per, rem := n/in.threads, n%in.threads
			lo := id*per + min(id, rem)
			hi := lo + per
			if id < rem {
				hi++
			}
			f(lo, hi, 1)
			done <- struct{}{}
		}(id)
	}
	for id := 0; id < in.threads; id++ {
		<-done
	}
}

func (in *mtInstance) Kernel() {
	in.phase(in.c.EncryptBlocks)
	in.phase(in.c.DecryptBlocks)
}
func (in *mtInstance) Validate() error { return in.c.validate() }

type aompInstance struct {
	p       Params
	threads int
	c       *Crypt
	run     func()
	prog    *weaver.Program
}

// NewAomp returns the AOmpLib version: a parallel region over the kernel,
// block-scheduled for methods for both phases, and a barrier between them
// (decryption reads the ciphertext all workers produce).
func NewAomp(p Params, threads int) harness.Instance {
	return &aompInstance{p: p, threads: threads}
}

func (in *aompInstance) Setup() {
	in.c = New(in.p)
	in.prog = weaver.NewProgram("Crypt")
	prog := in.prog
	cls := prog.Class("Crypt")
	enc := cls.ForProc("encryptBlocks", in.c.EncryptBlocks)
	dec := cls.ForProc("decryptBlocks", in.c.DecryptBlocks)
	in.run = cls.Proc("run", func() {
		enc(0, in.c.nblocks, 1)
		dec(0, in.c.nblocks, 1)
	})
	prog.Use(core.ParallelRegion("call(* Crypt.run(..))").Threads(in.threads))
	prog.Use(core.ForShare("call(* Crypt.encryptBlocks(..)) || call(* Crypt.decryptBlocks(..))").Schedule(sched.Runtime))
	prog.Use(core.BarrierAfterPoint("call(* Crypt.encryptBlocks(..))"))
	prog.MustWeave()
}

func (in *aompInstance) Kernel()         { in.run() }
func (in *aompInstance) Validate() error { return in.c.validate() }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// WeaveReport exposes the woven structure for the Table 2 tooling.
func (in *aompInstance) WeaveReport() []weaver.WovenMethod { return in.prog.Report() }
