package crypt

import (
	"bytes"
	"testing"
	"testing/quick"

	"aomplib/internal/jgf/harness"
)

func TestMulInverse(t *testing.T) {
	// mul and mulInv must be inverse over the full 16-bit domain.
	for x := 0; x < 1<<16; x++ {
		inv := mulInv(uint16(x))
		if got := mul(uint32(uint16(x)), uint32(inv)); got != 1 {
			t.Fatalf("mul(%d, inv=%d) = %d, want 1", x, inv, got)
		}
	}
}

func TestMulIdentity(t *testing.T) {
	for _, x := range []uint32{1, 2, 77, 0xfffe, 0xffff} {
		if mul(x, 1) != uint16(x) {
			t.Fatalf("mul(%d,1) = %d", x, mul(x, 1))
		}
	}
	// 0 represents 2^16: mul(0,0) = 2^16 * 2^16 mod (2^16+1) = 1.
	if mul(0, 0) != 1 {
		t.Fatalf("mul(0,0) = %d, want 1", mul(0, 0))
	}
}

func TestBlockRoundTripProperty(t *testing.T) {
	f := func(block [8]byte, key [8]uint16) bool {
		z := calcEncryptKey(key)
		dk := calcDecryptKey(z)
		var enc, dec [8]byte
		cipherBlock(block[:], enc[:], &z)
		cipherBlock(enc[:], dec[:], &dk)
		return dec == block
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestCipherChangesData(t *testing.T) {
	var key [8]uint16
	for i := range key {
		key[i] = uint16(i*7 + 1)
	}
	z := calcEncryptKey(key)
	src := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	dst := make([]byte, 8)
	cipherBlock(src, dst, &z)
	if bytes.Equal(src, dst) {
		t.Fatal("cipher is identity")
	}
}

func runAll(t *testing.T, p Params, threads int) (*seqInstance, *mtInstance, *aompInstance) {
	t.Helper()
	seq := NewSeq(p).(*seqInstance)
	mt := NewMT(p, threads).(*mtInstance)
	ao := NewAomp(p, threads).(*aompInstance)
	for _, in := range []harness.Instance{seq, mt, ao} {
		in.Setup()
		in.Kernel()
		if err := in.Validate(); err != nil {
			t.Fatalf("validation: %v", err)
		}
	}
	return seq, mt, ao
}

func TestAllVersionsProduceIdenticalCiphertext(t *testing.T) {
	seq, mt, ao := runAll(t, SizeTest, 3)
	if !bytes.Equal(seq.c.crypt1, mt.c.crypt1) {
		t.Fatal("MT ciphertext differs from sequential")
	}
	if !bytes.Equal(seq.c.crypt1, ao.c.crypt1) {
		t.Fatal("Aomp ciphertext differs from sequential")
	}
}

func TestOddSizes(t *testing.T) {
	// Non-multiple of thread count and of block size.
	runAll(t, Params{N: 8*123 + 5}, 3)
}

func TestSingleThread(t *testing.T) {
	runAll(t, Params{N: 1024}, 1)
}
