package jgfutil

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestBarrierPhases(t *testing.T) {
	const n, phases = 4, 50
	b := NewBarrier(n)
	var arrived [phases]atomic.Int32
	Run(n, func(id int) {
		for p := 0; p < phases; p++ {
			arrived[p].Add(1)
			b.Wait()
			if got := arrived[p].Load(); got != n {
				t.Errorf("phase %d: %d arrivals visible after barrier", p, got)
			}
		}
	})
}

func TestRunJoinsAll(t *testing.T) {
	var count atomic.Int32
	Run(8, func(id int) { count.Add(1) })
	if count.Load() != 8 {
		t.Fatalf("ran %d workers", count.Load())
	}
}

func TestRunPassesDistinctIDs(t *testing.T) {
	var seen [8]atomic.Int32
	Run(8, func(id int) { seen[id].Add(1) })
	for id := range seen {
		if seen[id].Load() != 1 {
			t.Fatalf("id %d used %d times", id, seen[id].Load())
		}
	}
}

// Property: Block partitions [0,n) into contiguous, disjoint, complete
// ranges with sizes differing by at most one.
func TestBlockProperty(t *testing.T) {
	f := func(n uint16, nth uint8) bool {
		items := int(n % 5000)
		workers := int(nth%16) + 1
		prevHi := 0
		minSize, maxSize := items+1, -1
		for id := 0; id < workers; id++ {
			lo, hi := Block(items, workers, id)
			if lo != prevHi || hi < lo {
				return false
			}
			size := hi - lo
			if size < minSize {
				minSize = size
			}
			if size > maxSize {
				maxSize = size
			}
			prevHi = hi
		}
		return prevHi == items && maxSize-minSize <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
