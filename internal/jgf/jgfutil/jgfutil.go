// Package jgfutil holds the small helpers the hand-threaded JGF-MT
// baselines share: a reusable barrier and a block partitioner. The MT
// versions deliberately do not use the AOmpLib runtime, so the Figure 13
// comparison pits the aspect library against independent plain-Go
// threading, as the paper pits AOmpLib against plain Java threads.
package jgfutil

import "sync"

// Barrier is a reusable counting barrier (mutex + condvar), the direct
// analogue of the TournamentBarrier/SimpleBarrier the JGF threaded codes
// use.
type Barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	parties int
	arrived int
	gen     uint64
}

// NewBarrier creates a barrier for n parties.
func NewBarrier(n int) *Barrier {
	b := &Barrier{parties: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Wait blocks until all parties arrive.
func (b *Barrier) Wait() {
	b.mu.Lock()
	gen := b.gen
	b.arrived++
	if b.arrived == b.parties {
		b.arrived = 0
		b.gen++
		b.cond.Broadcast()
	} else {
		for gen == b.gen {
			b.cond.Wait()
		}
	}
	b.mu.Unlock()
}

// Block returns the half-open range [lo,hi) of n items assigned to worker
// id out of nthreads under an even block distribution (remainder spread
// over the leading workers).
func Block(n, nthreads, id int) (lo, hi int) {
	per, rem := n/nthreads, n%nthreads
	lo = id * per
	if id < rem {
		lo += id
	} else {
		lo += rem
	}
	hi = lo + per
	if id < rem {
		hi++
	}
	return lo, hi
}

// Run spawns nthreads workers executing body(id) and joins them.
func Run(nthreads int, body func(id int)) {
	var wg sync.WaitGroup
	for id := 0; id < nthreads; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			body(id)
		}(id)
	}
	wg.Wait()
}
