// Package montecarlo reproduces the JGF MonteCarlo benchmark: a financial
// simulation pricing a product by generating thousands of stochastic rate
// paths. The original derives drift and volatility from a historical rate
// file shipped with the suite; that file is proprietary to the suite, so
// this reproduction synthesises an equivalent historical path with the
// same generator family and fits the same log-return estimators — the
// workload (per-path geometric Brownian walk) is identical (DESIGN.md §2).
//
// Every Monte Carlo run k draws its own generator seeded seed+k, exactly
// as the JGF code does, so run results are identical no matter which
// thread executes them — runs are distributed cyclically (Table 2:
// "PR, FOR (cyclic)").
package montecarlo

import (
	"fmt"
	"math"

	"aomplib/internal/core"
	"aomplib/internal/jgf/harness"
	"aomplib/internal/jgf/jgfutil"
	"aomplib/internal/rng"
	"aomplib/internal/sched"
	"aomplib/internal/weaver"
)

// Params sizes the benchmark.
type Params struct {
	// Runs is the number of Monte Carlo paths, Steps the walk length.
	Runs, Steps int
}

// JGF problem sizes (A: 10000 runs over 1000 time steps).
var (
	SizeA = Params{Runs: 10_000, Steps: 1_000}
	SizeB = Params{Runs: 60_000, Steps: 1_000}
	// SizeTest keeps unit tests fast.
	SizeTest = Params{Runs: 400, Steps: 100}
)

const (
	baseSeed  = 10_000
	startRate = 0.1
	dt        = 1.0 / 365.0
)

// MonteCarlo is the base program.
type MonteCarlo struct {
	runs, steps int
	mu, sigma   float64
	results     []float64
	avg         float64
}

// New builds the base program: synthesises the historical path and fits
// the drift and volatility estimators used by all runs.
func New(p Params) *MonteCarlo {
	mc := &MonteCarlo{runs: p.Runs, steps: p.Steps, results: make([]float64, p.Runs)}
	// Synthetic historical rate path (the suite's hitData substitute).
	r := rng.New(baseSeed - 1)
	const histLen = 1000
	rate := startRate
	logret := make([]float64, 0, histLen)
	for i := 0; i < histLen; i++ {
		next := rate * math.Exp(0.0001+0.1*math.Sqrt(dt)*r.NextGaussian())
		logret = append(logret, math.Log(next/rate))
		rate = next
	}
	// Standard estimators: mean and variance of log returns.
	var mean float64
	for _, v := range logret {
		mean += v
	}
	mean /= float64(len(logret))
	var variance float64
	for _, v := range logret {
		variance += (v - mean) * (v - mean)
	}
	variance /= float64(len(logret) - 1)
	mc.sigma = math.Sqrt(variance / dt)
	mc.mu = mean/dt + 0.5*mc.sigma*mc.sigma
	return mc
}

// RunPath executes Monte Carlo run k: a geometric Brownian walk seeded
// seed+k whose mean rate is the run's result (disjoint writes per run).
func (mc *MonteCarlo) RunPath(k int) {
	r := rng.New(rng.UpdateSeed(baseSeed, k))
	drift := (mc.mu - 0.5*mc.sigma*mc.sigma) * dt
	volStep := mc.sigma * math.Sqrt(dt)
	rate := startRate
	sum := 0.0
	for s := 0; s < mc.steps; s++ {
		rate *= math.Exp(drift + volStep*r.NextGaussian())
		sum += rate
	}
	mc.results[k] = sum / float64(mc.steps)
}

// RunPaths is the cyclic for method over run indices [lo,hi).
func (mc *MonteCarlo) RunPaths(lo, hi, step int) {
	for k := lo; k < hi; k += step {
		mc.RunPath(k)
	}
}

// Average folds the per-run results (done once, after the parallel loop,
// in deterministic order so all versions agree bit-for-bit).
func (mc *MonteCarlo) Average() {
	sum := 0.0
	for _, v := range mc.results {
		sum += v
	}
	mc.avg = sum / float64(mc.runs)
}

// Result returns the priced average rate.
func (mc *MonteCarlo) Result() float64 { return mc.avg }

func (mc *MonteCarlo) validate() error {
	if math.IsNaN(mc.avg) || mc.avg <= 0 {
		return fmt.Errorf("montecarlo: degenerate result %v", mc.avg)
	}
	// The expected rate must stay within an order of magnitude of the
	// start rate for these drift parameters.
	if mc.avg < startRate/10 || mc.avg > startRate*10 {
		return fmt.Errorf("montecarlo: result %v implausible for start %v", mc.avg, startRate)
	}
	return nil
}

// ------------------------------------------------------------- versions --

type seqInstance struct {
	p  Params
	mc *MonteCarlo
}

// NewSeq returns the sequential version.
func NewSeq(p Params) harness.Instance { return &seqInstance{p: p} }

func (in *seqInstance) Setup() { in.mc = New(in.p) }
func (in *seqInstance) Kernel() {
	in.mc.RunPaths(0, in.mc.runs, 1)
	in.mc.Average()
}
func (in *seqInstance) Validate() error { return in.mc.validate() }

// Result exposes the priced value for cross-version tests.
func (in *seqInstance) Result() float64 { return in.mc.Result() }

type mtInstance struct {
	p       Params
	threads int
	mc      *MonteCarlo
}

// NewMT returns the hand-threaded baseline with a cyclic run distribution.
func NewMT(p Params, threads int) harness.Instance {
	return &mtInstance{p: p, threads: threads}
}

func (in *mtInstance) Setup() { in.mc = New(in.p) }
func (in *mtInstance) Kernel() {
	jgfutil.Run(in.threads, func(id int) {
		in.mc.RunPaths(id, in.mc.runs, in.threads)
	})
	in.mc.Average()
}
func (in *mtInstance) Validate() error { return in.mc.validate() }

// Result exposes the priced value for cross-version tests.
func (in *mtInstance) Result() float64 { return in.mc.Result() }

type aompInstance struct {
	p       Params
	threads int
	mc      *MonteCarlo
	run     func()
	prog    *weaver.Program
}

// NewAomp returns the AOmpLib version: parallel region + cyclic for, with
// the final averaging as a master operation after a barrier.
func NewAomp(p Params, threads int) harness.Instance {
	return &aompInstance{p: p, threads: threads}
}

func (in *aompInstance) Setup() {
	in.mc = New(in.p)
	in.prog = weaver.NewProgram("MonteCarlo")
	prog := in.prog
	cls := prog.Class("MonteCarlo")
	paths := cls.ForProc("runPaths", in.mc.RunPaths)
	avg := cls.Proc("average", in.mc.Average)
	in.run = cls.Proc("run", func() {
		paths(0, in.mc.runs, 1)
		avg()
	})
	prog.Use(core.ParallelRegion("call(* MonteCarlo.run(..))").Threads(in.threads))
	prog.Use(core.ForShare("call(* MonteCarlo.runPaths(..))").Schedule(sched.StaticCyclic))
	prog.Use(core.BarrierAfterPoint("call(* MonteCarlo.runPaths(..))"))
	prog.Use(core.MasterSection("call(* MonteCarlo.average(..))"))
	prog.MustWeave()
}

func (in *aompInstance) Kernel()         { in.run() }
func (in *aompInstance) Validate() error { return in.mc.validate() }

// Result exposes the priced value for cross-version tests.
func (in *aompInstance) Result() float64 { return in.mc.Result() }

// WeaveReport exposes the woven structure for the Table 2 tooling.
func (in *aompInstance) WeaveReport() []weaver.WovenMethod { return in.prog.Report() }
