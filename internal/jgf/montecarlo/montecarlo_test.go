package montecarlo

import (
	"testing"

	"aomplib/internal/jgf/harness"
)

type resulted interface {
	harness.Instance
	Result() float64
}

func runOne(t *testing.T, in resulted) float64 {
	t.Helper()
	in.Setup()
	in.Kernel()
	if err := in.Validate(); err != nil {
		t.Fatalf("validation: %v", err)
	}
	return in.Result()
}

func TestAllVersionsAgreeBitwise(t *testing.T) {
	// Per-run seeding makes results independent of which thread runs a
	// path, and the final average is computed serially, so all versions
	// agree exactly.
	seq := runOne(t, NewSeq(SizeTest).(*seqInstance))
	mt := runOne(t, NewMT(SizeTest, 3).(*mtInstance))
	ao := runOne(t, NewAomp(SizeTest, 3).(*aompInstance))
	if seq != mt {
		t.Fatalf("MT result %v differs from sequential %v", mt, seq)
	}
	if seq != ao {
		t.Fatalf("Aomp result %v differs from sequential %v", ao, seq)
	}
}

func TestResultScale(t *testing.T) {
	got := runOne(t, NewSeq(SizeTest).(*seqInstance))
	if got < 0.01 || got > 1.0 {
		t.Fatalf("priced rate %v outside plausible band", got)
	}
}

func TestRunsAreDeterministicPerIndex(t *testing.T) {
	mc1 := New(SizeTest)
	mc2 := New(SizeTest)
	mc1.RunPath(7)
	mc1.RunPath(3)
	mc2.RunPath(3) // opposite order
	mc2.RunPath(7)
	if mc1.results[7] != mc2.results[7] || mc1.results[3] != mc2.results[3] {
		t.Fatal("run results depend on execution order")
	}
}

func TestEstimatorsFinite(t *testing.T) {
	mc := New(SizeTest)
	if mc.sigma <= 0 || mc.sigma > 2 {
		t.Fatalf("sigma = %v", mc.sigma)
	}
	if mc.mu < -2 || mc.mu > 2 {
		t.Fatalf("mu = %v", mc.mu)
	}
}

func TestManyThreads(t *testing.T) {
	seq := runOne(t, NewSeq(Params{Runs: 37, Steps: 50}).(*seqInstance))
	ao := runOne(t, NewAomp(Params{Runs: 37, Steps: 50}, 8).(*aompInstance))
	if seq != ao {
		t.Fatal("oversubscribed Aomp differs")
	}
}
