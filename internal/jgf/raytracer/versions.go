package raytracer

import (
	"aomplib/internal/core"
	"aomplib/internal/jgf/harness"
	"aomplib/internal/jgf/jgfutil"
	"aomplib/internal/sched"
	"aomplib/internal/weaver"
)

// Params sizes the benchmark.
type Params struct {
	// Width and Height are the image dimensions in pixels.
	Width, Height int
}

// JGF problem sizes (A renders 150², B 500²).
var (
	SizeA = Params{Width: 150, Height: 150}
	SizeB = Params{Width: 500, Height: 500}
	// SizeTest keeps unit tests fast.
	SizeTest = Params{Width: 48, Height: 48}
)

type seqInstance struct {
	p  Params
	rt *RayTracer
}

// NewSeq returns the sequential version.
func NewSeq(p Params) harness.Instance { return &seqInstance{p: p} }

func (in *seqInstance) Setup() { in.rt = NewTracer(in.p.Width, in.p.Height) }
func (in *seqInstance) Kernel() {
	var sum int64
	for y := 0; y < in.rt.height; y++ {
		sum += in.rt.RenderRow(y)
	}
	in.rt.AddChecksum(sum)
}
func (in *seqInstance) Validate() error { return in.rt.Validate() }

// Checksum exposes the image checksum for cross-version tests.
func (in *seqInstance) Checksum() int64 { return in.rt.Checksum() }

type mtInstance struct {
	p       Params
	threads int
	rt      *RayTracer
}

// NewMT returns the hand-threaded baseline: cyclic row distribution with a
// per-thread checksum folded in at the end, as the JGF Java-threads
// version does.
func NewMT(p Params, threads int) harness.Instance {
	return &mtInstance{p: p, threads: threads}
}

func (in *mtInstance) Setup() { in.rt = NewTracer(in.p.Width, in.p.Height) }
func (in *mtInstance) Kernel() {
	jgfutil.Run(in.threads, func(id int) {
		var local int64
		for y := id; y < in.rt.height; y += in.threads {
			local += in.rt.RenderRow(y)
		}
		in.rt.AddChecksum(local)
	})
}
func (in *mtInstance) Validate() error { return in.rt.Validate() }

// Checksum exposes the image checksum for cross-version tests.
func (in *mtInstance) Checksum() int64 { return in.rt.Checksum() }

type aompInstance struct {
	p       Params
	threads int
	rt      *RayTracer
	run     func()
	prog    *weaver.Program
}

// NewAomp returns the AOmpLib version: parallel region, cyclic for over
// rows, and a thread-local checksum field reduced at the end of the
// region (the TLF of Table 2).
func NewAomp(p Params, threads int) harness.Instance {
	return &aompInstance{p: p, threads: threads}
}

func (in *aompInstance) Setup() {
	in.rt = NewTracer(in.p.Width, in.p.Height)
	tracer := in.rt
	in.prog = weaver.NewProgram("RayTracer")
	prog := in.prog
	cls := prog.Class("RayTracer")

	// Thread-local checksum accessor (the @ThreadLocalField): sequentially
	// it hands out one shared accumulator cell.
	seqCell := new(int64)
	checksumAcc := cls.ValueProc("checksumAcc", func() any { return seqCell })

	render := cls.ForProc("renderRows", func(lo, hi, step int) {
		acc := checksumAcc().(*int64)
		for y := lo; y < hi; y += step {
			*acc += tracer.RenderRow(y)
		}
	})
	collect := cls.Proc("collect", func() {})
	in.run = cls.Proc("run", func() {
		render(0, tracer.height, 1)
		collect()
		if core.ThreadID() == 0 {
			// Fold the sequential cell (non-zero only when unwoven).
			tracer.AddChecksum(*seqCell)
			*seqCell = 0
		}
	})

	csTL := core.NewThreadLocal("call(* RayTracer.checksumAcc(..))", "checksum").
		InitFresh(func() any { return new(int64) })
	prog.Use(core.ParallelRegion("call(* RayTracer.run(..))").Threads(in.threads))
	prog.Use(core.ForShare("call(* RayTracer.renderRows(..))").Schedule(sched.StaticCyclic))
	prog.Use(csTL)
	prog.Use(core.ReducePoint("call(* RayTracer.collect(..))", csTL, func(local any) {
		tracer.AddChecksum(*(local.(*int64)))
	}))
	prog.MustWeave()
}

func (in *aompInstance) Kernel()         { in.run() }
func (in *aompInstance) Validate() error { return in.rt.Validate() }

// Checksum exposes the image checksum for cross-version tests.
func (in *aompInstance) Checksum() int64 { return in.rt.Checksum() }

// WeaveReport exposes the woven structure for the Table 2 tooling.
func (in *aompInstance) WeaveReport() []weaver.WovenMethod { return in.prog.Report() }
