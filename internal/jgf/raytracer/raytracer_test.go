package raytracer

import (
	"math"
	"testing"

	"aomplib/internal/jgf/harness"
)

type checksummed interface {
	harness.Instance
	Checksum() int64
}

func runOne(t *testing.T, in checksummed) int64 {
	t.Helper()
	in.Setup()
	in.Kernel()
	if err := in.Validate(); err != nil {
		t.Fatalf("validation: %v", err)
	}
	return in.Checksum()
}

func TestAllVersionsAgreeExactly(t *testing.T) {
	seq := runOne(t, NewSeq(SizeTest).(*seqInstance))
	mt := runOne(t, NewMT(SizeTest, 3).(*mtInstance))
	ao := runOne(t, NewAomp(SizeTest, 3).(*aompInstance))
	if seq != mt {
		t.Fatalf("MT checksum %d differs from sequential %d", mt, seq)
	}
	if seq != ao {
		t.Fatalf("Aomp checksum %d differs from sequential %d", ao, seq)
	}
}

func TestSphereIntersection(t *testing.T) {
	s := Sphere{Center: Vec{0, 0, 10}, Radius: 2}
	if tHit := s.intersect(Ray{Org: Vec{0, 0, 0}, Dir: Vec{0, 0, 1}}); math.Abs(tHit-8) > 1e-12 {
		t.Fatalf("head-on hit at %v, want 8", tHit)
	}
	if tHit := s.intersect(Ray{Org: Vec{0, 0, 0}, Dir: Vec{0, 1, 0}}); tHit != -1 {
		t.Fatalf("miss returned %v", tHit)
	}
	// Ray starting inside: the far surface is hit.
	if tHit := s.intersect(Ray{Org: Vec{0, 0, 10}, Dir: Vec{0, 0, 1}}); math.Abs(tHit-2) > 1e-12 {
		t.Fatalf("inside hit at %v, want 2", tHit)
	}
}

func TestSceneHasCanonical64Spheres(t *testing.T) {
	sc := NewScene()
	if len(sc.Spheres) != 64 {
		t.Fatalf("scene has %d spheres, want 64", len(sc.Spheres))
	}
	if len(sc.Lights) != 2 {
		t.Fatalf("scene has %d lights", len(sc.Lights))
	}
}

func TestShadowing(t *testing.T) {
	sc := NewScene()
	// A ray toward a sphere centre must be occluded by that sphere.
	target := sc.Spheres[0].Center
	dir := target.Sub(sc.Eye).Norm()
	dist := math.Sqrt(target.Sub(sc.Eye).Dot(target.Sub(sc.Eye)))
	if !sc.occluded(Ray{Org: sc.Eye, Dir: dir}, dist) {
		t.Fatal("ray to sphere centre not occluded")
	}
}

func TestVecOps(t *testing.T) {
	v := Vec{3, 4, 0}
	if n := v.Norm(); math.Abs(n.Dot(n)-1) > 1e-12 {
		t.Fatalf("Norm not unit: %v", n)
	}
	if (Vec{}).Norm() != (Vec{}) {
		t.Fatal("zero Norm changed value")
	}
	if v.Mul(Vec{2, 0.5, 1}) != (Vec{6, 2, 0}) {
		t.Fatal("Mul wrong")
	}
}

func TestQuantizeClamps(t *testing.T) {
	if quantize(-1) != 0 || quantize(2) != 255 || quantize(0.5) != 127 {
		t.Fatal("quantize clamping wrong")
	}
}

func TestRowsNonUniform(t *testing.T) {
	// The scene does not cover every row equally — the reason for the
	// cyclic schedule. Verify at least two rows differ in checksum.
	rt := NewTracer(32, 32)
	r0 := rt.RenderRow(0)
	mid := rt.RenderRow(16)
	if r0 == mid {
		t.Skip("rows happen to match at this resolution")
	}
}

func TestSingleThreadAndOversubscribed(t *testing.T) {
	seq := runOne(t, NewSeq(Params{Width: 24, Height: 24}).(*seqInstance))
	one := runOne(t, NewAomp(Params{Width: 24, Height: 24}, 1).(*aompInstance))
	many := runOne(t, NewAomp(Params{Width: 24, Height: 24}, 8).(*aompInstance))
	if seq != one || seq != many {
		t.Fatalf("checksums differ: %d %d %d", seq, one, many)
	}
}
