// Package raytracer reproduces the JGF RayTracer benchmark: a Whitted-
// style recursive ray tracer rendering the suite's canonical scene of 64
// spheres arranged in a 4×4×4 grid under two point lights. Rows are
// rendered independently and cost varies with scene coverage, so the
// paper distributes them cyclically; the per-thread pixel checksum is a
// thread-local field reduced at the end (Table 2: "PR, FOR (cyclic),
// TLF"; refactoring M2FOR).
//
// The checksum is an integer sum of quantised pixel channels, so it is
// identical across all versions regardless of execution order.
package raytracer

import (
	"fmt"
	"math"
	"sync/atomic"
)

// Vec is a 3-component vector.
type Vec struct{ X, Y, Z float64 }

// Add returns v + o.
func (v Vec) Add(o Vec) Vec { return Vec{v.X + o.X, v.Y + o.Y, v.Z + o.Z} }

// Sub returns v - o.
func (v Vec) Sub(o Vec) Vec { return Vec{v.X - o.X, v.Y - o.Y, v.Z - o.Z} }

// Scale returns v * s.
func (v Vec) Scale(s float64) Vec { return Vec{v.X * s, v.Y * s, v.Z * s} }

// Dot returns v · o.
func (v Vec) Dot(o Vec) float64 { return v.X*o.X + v.Y*o.Y + v.Z*o.Z }

// Norm returns v normalised (zero vector is returned unchanged).
func (v Vec) Norm() Vec {
	l := math.Sqrt(v.Dot(v))
	if l == 0 {
		return v
	}
	return v.Scale(1 / l)
}

// Mul returns the component-wise product (colour filtering).
func (v Vec) Mul(o Vec) Vec { return Vec{v.X * o.X, v.Y * o.Y, v.Z * o.Z} }

// Ray is an origin and unit direction.
type Ray struct{ Org, Dir Vec }

// Surface holds the Phong material of a sphere.
type Surface struct {
	Color          Vec
	Kd, Ks, Shine  float64
	Reflectiveness float64
}

// Sphere is the only primitive the JGF scene needs.
type Sphere struct {
	Center Vec
	Radius float64
	Mat    Surface
}

// intersect returns the smallest positive ray parameter hitting s, or -1.
func (s *Sphere) intersect(r Ray) float64 {
	oc := r.Org.Sub(s.Center)
	b := 2 * oc.Dot(r.Dir)
	c := oc.Dot(oc) - s.Radius*s.Radius
	disc := b*b - 4*c
	if disc < 0 {
		return -1
	}
	sq := math.Sqrt(disc)
	if t := (-b - sq) / 2; t > 1e-9 {
		return t
	}
	if t := (-b + sq) / 2; t > 1e-9 {
		return t
	}
	return -1
}

// Light is a point light.
type Light struct {
	Pos       Vec
	Intensity float64
}

// Scene is the render input.
type Scene struct {
	Spheres []Sphere
	Lights  []Light
	Eye     Vec
	Ambient float64
}

// NewScene builds the canonical 64-sphere scene.
func NewScene() *Scene {
	sc := &Scene{
		Eye:     Vec{0, 0, -30},
		Ambient: 0.12,
		Lights: []Light{
			{Pos: Vec{-20, 30, -25}, Intensity: 0.9},
			{Pos: Vec{25, 18, -30}, Intensity: 0.6},
		},
	}
	idx := 0
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			for k := 0; k < 4; k++ {
				col := Vec{
					0.3 + 0.7*float64(i)/3,
					0.3 + 0.7*float64(j)/3,
					0.3 + 0.7*float64(k)/3,
				}
				sc.Spheres = append(sc.Spheres, Sphere{
					Center: Vec{
						float64(i)*6 - 9,
						float64(j)*6 - 9,
						float64(k)*6 + 10,
					},
					Radius: 2.0 + 0.5*float64((idx*7)%3),
					Mat: Surface{
						Color: col, Kd: 0.7, Ks: 0.3, Shine: 15,
						Reflectiveness: 0.25 + 0.05*float64(idx%4),
					},
				})
				idx++
			}
		}
	}
	return sc
}

const maxDepth = 4

// trace returns the colour seen along r.
func (sc *Scene) trace(r Ray, depth int) Vec {
	bestT := math.Inf(1)
	var hit *Sphere
	for i := range sc.Spheres {
		if t := sc.Spheres[i].intersect(r); t > 0 && t < bestT {
			bestT, hit = t, &sc.Spheres[i]
		}
	}
	if hit == nil {
		return Vec{} // background: black
	}
	p := r.Org.Add(r.Dir.Scale(bestT))
	n := p.Sub(hit.Center).Norm()
	if n.Dot(r.Dir) > 0 {
		n = n.Scale(-1)
	}
	col := hit.Mat.Color.Scale(sc.Ambient)
	for _, l := range sc.Lights {
		ld := l.Pos.Sub(p)
		dist := math.Sqrt(ld.Dot(ld))
		ldir := ld.Scale(1 / dist)
		diff := n.Dot(ldir)
		if diff <= 0 {
			continue
		}
		if sc.occluded(Ray{Org: p.Add(ldir.Scale(1e-6)), Dir: ldir}, dist) {
			continue
		}
		col = col.Add(hit.Mat.Color.Scale(hit.Mat.Kd * diff * l.Intensity))
		// Phong specular highlight.
		refl := ldir.Sub(n.Scale(2 * ldir.Dot(n))).Norm()
		if spec := refl.Dot(r.Dir); spec > 0 {
			s := math.Pow(spec, hit.Mat.Shine) * hit.Mat.Ks * l.Intensity
			col = col.Add(Vec{s, s, s})
		}
	}
	if depth < maxDepth && hit.Mat.Reflectiveness > 0 {
		rdir := r.Dir.Sub(n.Scale(2 * r.Dir.Dot(n))).Norm()
		rcol := sc.trace(Ray{Org: p.Add(rdir.Scale(1e-6)), Dir: rdir}, depth+1)
		col = col.Add(rcol.Mul(hit.Mat.Color).Scale(hit.Mat.Reflectiveness))
	}
	return col
}

// occluded reports whether anything blocks the segment of length dist.
func (sc *Scene) occluded(r Ray, dist float64) bool {
	for i := range sc.Spheres {
		if t := sc.Spheres[i].intersect(r); t > 0 && t < dist {
			return true
		}
	}
	return false
}

// RayTracer is the base program.
type RayTracer struct {
	scene         *Scene
	width, height int
	// checksum is the global reduction target; parallel versions
	// accumulate per-thread partials and fold them in.
	checksum atomic.Int64
}

// NewTracer builds the base program.
func NewTracer(width, height int) *RayTracer {
	return &RayTracer{scene: NewScene(), width: width, height: height}
}

func quantize(v float64) int64 {
	if v < 0 {
		v = 0
	}
	if v > 1 {
		v = 1
	}
	return int64(v * 255)
}

// RenderRow renders row y and returns its integer checksum contribution.
func (rt *RayTracer) RenderRow(y int) int64 {
	sc := rt.scene
	var sum int64
	fw, fh := float64(rt.width), float64(rt.height)
	viewSize := 25.0
	for x := 0; x < rt.width; x++ {
		px := (float64(x)/fw - 0.5) * viewSize
		py := (0.5 - float64(y)/fh) * viewSize
		dir := Vec{px, py, 0}.Sub(sc.Eye).Norm()
		c := sc.trace(Ray{Org: sc.Eye, Dir: dir}, 0)
		sum += quantize(c.X) + quantize(c.Y) + quantize(c.Z)
	}
	return sum
}

// Checksum returns the accumulated image checksum.
func (rt *RayTracer) Checksum() int64 { return rt.checksum.Load() }

// AddChecksum folds a partial checksum into the global one.
func (rt *RayTracer) AddChecksum(v int64) { rt.checksum.Add(v) }

// Validate checks the checksum is non-trivial (scene visible) and stable
// bounds hold; exact cross-version equality is asserted by the tests.
func (rt *RayTracer) Validate() error {
	cs := rt.Checksum()
	if cs <= 0 {
		return fmt.Errorf("raytracer: empty image (checksum %d)", cs)
	}
	max := int64(rt.width*rt.height) * 3 * 255
	if cs > max {
		return fmt.Errorf("raytracer: checksum %d exceeds maximum %d", cs, max)
	}
	return nil
}
