package harness

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// fakeInstance counts lifecycle calls and burns a predictable amount of
// time in Kernel.
type fakeInstance struct {
	setups, kernels int
	sleep           time.Duration
	fail            error
}

func (f *fakeInstance) Setup()  { f.setups++ }
func (f *fakeInstance) Kernel() { f.kernels++; time.Sleep(f.sleep) }
func (f *fakeInstance) Validate() error {
	return f.fail
}

func TestMeasureLifecycle(t *testing.T) {
	inst := &fakeInstance{sleep: time.Millisecond}
	m := Measure("bench", Aomp, 3, inst, 4)
	if inst.kernels != 4 {
		t.Fatalf("kernel ran %d times, want 4", inst.kernels)
	}
	if inst.setups != 4 { // initial + one per extra rep
		t.Fatalf("setup ran %d times, want 4", inst.setups)
	}
	if m.Seconds <= 0 {
		t.Fatal("non-positive time")
	}
	if m.Benchmark != "bench" || m.Version != Aomp || m.Threads != 3 {
		t.Fatalf("metadata wrong: %+v", m)
	}
}

func TestMeasureRepsFloor(t *testing.T) {
	inst := &fakeInstance{}
	Measure("bench", Seq, 1, inst, 0)
	if inst.kernels != 1 {
		t.Fatalf("reps<1 ran kernel %d times", inst.kernels)
	}
}

func TestMeasurePropagatesValidation(t *testing.T) {
	inst := &fakeInstance{fail: errors.New("bad result")}
	if m := Measure("bench", MT, 2, inst, 1); m.Err == nil {
		t.Fatal("validation error lost")
	}
}

func TestSpeedup(t *testing.T) {
	seq := Measurement{Seconds: 2}
	if s := Speedup(seq, Measurement{Seconds: 1}); s != 2 {
		t.Fatalf("speedup = %v", s)
	}
	if s := Speedup(seq, Measurement{Seconds: 0}); s != 0 {
		t.Fatalf("zero-time speedup = %v", s)
	}
}

func TestTableRenderAndDeltas(t *testing.T) {
	tab := NewTable()
	tab.Add(Measurement{Benchmark: "X", Version: Seq, Threads: 1, Seconds: 2.0})
	tab.Add(Measurement{Benchmark: "X", Version: MT, Threads: 2, Seconds: 1.0})
	tab.Add(Measurement{Benchmark: "X", Version: Aomp, Threads: 2, Seconds: 1.1})
	tab.Add(Measurement{Benchmark: "Y", Version: Seq, Threads: 1, Seconds: 1.0})
	tab.Add(Measurement{Benchmark: "Y", Version: MT, Threads: 2, Seconds: 0.5, Err: errors.New("x")})

	var sb strings.Builder
	tab.Render(&sb)
	out := sb.String()
	if !strings.Contains(out, "X") || !strings.Contains(out, "2.00x") {
		t.Fatalf("render missing speedup:\n%s", out)
	}
	if !strings.Contains(out, "INVALID") {
		t.Fatalf("render missing INVALID marker:\n%s", out)
	}
	if !strings.Contains(out, "-") {
		t.Fatalf("render missing hole marker:\n%s", out)
	}

	deltas := tab.Deltas(2)
	if len(deltas) != 1 {
		t.Fatalf("deltas = %v, want only X", deltas)
	}
	if d := deltas["X"]; d < 0.09 || d > 0.11 {
		t.Fatalf("delta X = %v, want ≈0.10", d)
	}
}
