// Package harness drives the Java Grande Forum (JGF) benchmark
// reproductions used in the paper's evaluation (§V): each benchmark comes
// in three versions — Seq (the refactored sequential base program), MT
// (the hand-threaded JGF multi-thread baseline) and Aomp (the same base
// program composed with AOmpLib aspect modules) — and the harness times
// kernels, validates results and computes the speed-ups of Figure 13.
package harness

import (
	"fmt"
	"io"
	"math"
	"sort"
	"time"
)

// Instance is one configured benchmark run. Setup allocates and
// initialises data (untimed, as in JGF), Kernel is the timed section, and
// Validate checks the result afterwards.
type Instance interface {
	Setup()
	Kernel()
	Validate() error
}

// Version labels the three implementations compared in Figure 13.
type Version string

// Version labels. AompDep is the dataflow (@Depend) variant of an Aomp
// version, where barrier fences are replaced by task dependence edges;
// Par is the same kernel expressed through the generic algorithms layer
// (package parallel) instead of woven aspects, benchmarked so the layer's
// dispatch cost is measured against the hand-woven @For baseline.
const (
	Seq     Version = "Seq"
	MT      Version = "JGF-MT"
	Aomp    Version = "Aomp"
	AompDep Version = "Aomp-DF"
	Par     Version = "Parallel"
)

// Measurement is one timed, validated benchmark execution. Seconds is the
// fastest repetition (the JGF headline number); Min/Max/Mean/Stddev
// summarise all repetitions so run-to-run noise is visible in reports
// (Min == Seconds, Stddev is the population deviation, 0 for one rep).
type Measurement struct {
	Benchmark string
	Version   Version
	Threads   int
	Seconds   float64
	Min       float64
	Max       float64
	Mean      float64
	Stddev    float64
	Reps      int
	Err       error
}

// Measure runs inst: one untimed Setup, then reps timed Kernel executions
// (the fastest is the headline, JGF-style; all repetitions feed the spread
// statistics), then Validate.
func Measure(name string, version Version, threads int, inst Instance, reps int) Measurement {
	if reps < 1 {
		reps = 1
	}
	inst.Setup()
	secs := make([]float64, reps)
	for r := 0; r < reps; r++ {
		start := time.Now()
		inst.Kernel()
		secs[r] = time.Since(start).Seconds()
		if r != reps-1 {
			inst.Setup() // fresh state per repetition
		}
	}
	m := Measurement{
		Benchmark: name,
		Version:   version,
		Threads:   threads,
		Reps:      reps,
		Err:       inst.Validate(),
	}
	m.Min, m.Max = secs[0], secs[0]
	sum := 0.0
	for _, s := range secs {
		sum += s
		m.Min = math.Min(m.Min, s)
		m.Max = math.Max(m.Max, s)
	}
	m.Mean = sum / float64(reps)
	varsum := 0.0
	for _, s := range secs {
		varsum += (s - m.Mean) * (s - m.Mean)
	}
	m.Stddev = math.Sqrt(varsum / float64(reps))
	m.Seconds = m.Min
	return m
}

// Speedup computes seq.Seconds / m.Seconds.
func Speedup(seq, m Measurement) float64 {
	if m.Seconds == 0 {
		return 0
	}
	return seq.Seconds / m.Seconds
}

// Table renders measurements grouped by benchmark as a Figure 13-style
// speed-up table: one row per benchmark, one column per (version, threads)
// pair, values relative to the benchmark's sequential run.
type Table struct {
	rows map[string]map[string]Measurement
	seq  map[string]Measurement
	cols map[string]bool
}

// NewTable creates an empty results table.
func NewTable() *Table {
	return &Table{
		rows: map[string]map[string]Measurement{},
		seq:  map[string]Measurement{},
		cols: map[string]bool{},
	}
}

// Add records a measurement.
func (t *Table) Add(m Measurement) {
	if m.Version == Seq {
		t.seq[m.Benchmark] = m
		return
	}
	key := fmt.Sprintf("%s/%dT", m.Version, m.Threads)
	t.cols[key] = true
	if t.rows[m.Benchmark] == nil {
		t.rows[m.Benchmark] = map[string]Measurement{}
	}
	t.rows[m.Benchmark][key] = m
}

// Render writes the speed-up table to w.
func (t *Table) Render(w io.Writer) {
	var cols []string
	for c := range t.cols {
		cols = append(cols, c)
	}
	sort.Strings(cols)
	var names []string
	for n := range t.rows {
		names = append(names, n)
	}
	sort.Strings(names)

	fmt.Fprintf(w, "%-12s %10s", "benchmark", "seq(s)")
	for _, c := range cols {
		fmt.Fprintf(w, " %14s", c)
	}
	fmt.Fprintln(w)
	for _, n := range names {
		seq := t.seq[n]
		fmt.Fprintf(w, "%-12s %10.3f", n, seq.Seconds)
		for _, c := range cols {
			m, ok := t.rows[n][c]
			switch {
			case !ok:
				fmt.Fprintf(w, " %14s", "-")
			case m.Err != nil:
				fmt.Fprintf(w, " %14s", "INVALID")
			default:
				fmt.Fprintf(w, " %13.2fx", Speedup(seq, m))
			}
		}
		fmt.Fprintln(w)
	}
}

// Deltas returns, per benchmark, the relative difference between the Aomp
// and JGF-MT versions at the given thread count:
// (tAomp - tMT) / tMT. This quantifies the paper's "performance difference
// ... is less than 1%" claim.
func (t *Table) Deltas(threads int) map[string]float64 {
	out := map[string]float64{}
	for name, row := range t.rows {
		mt, ok1 := row[fmt.Sprintf("%s/%dT", MT, threads)]
		ao, ok2 := row[fmt.Sprintf("%s/%dT", Aomp, threads)]
		if ok1 && ok2 && mt.Seconds > 0 {
			out[name] = (ao.Seconds - mt.Seconds) / mt.Seconds
		}
	}
	return out
}
