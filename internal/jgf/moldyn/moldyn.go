// Package moldyn reproduces the JGF MolDyn benchmark, the paper's central
// case study (§II, §V, Figs. 2/3/14/15): a Lennard-Jones molecular
// dynamics simulation of N = 4·mm³ particles on an FCC lattice with
// periodic boundaries and a radial cutoff, integrated with velocity
// Verlet.
//
// The force computation exploits Newton's third law (forces are
// symmetric), creating the data race the paper uses to compare dependence-
// management strategies (Figure 15):
//
//   - thread-local force arrays reduced after the loop (the JGF strategy;
//     Table 2: "PR, FOR (cyclic), 2xTLF"),
//   - a critical region on the force update,
//   - one lock per particle.
//
// All strategies are pluggable aspects over one base program. Because Go
// has no field-access joinpoints, the base routes force-buffer access
// through one accessor joinpoint per worker portion (ForceSink) and
// commits pair updates through the PairSink interface — the documented
// substitution for AspectJ's @ThreadLocalField on fields (DESIGN.md §2).
package moldyn

import (
	"fmt"
	"math"

	"aomplib/internal/rng"
)

// Params sizes the benchmark.
type Params struct {
	// MM is the FCC lattice dimension; N = 4·MM³ particles.
	MM int
	// Moves is the number of time steps.
	Moves int
}

// Problem sizes. The paper's Figure 15 sweeps 864, 2048, 8788, 19652,
// 256k and 500k particles (MM = 6, 8, 13, 17, 40, 50).
var (
	SizeA = Params{MM: 8, Moves: 50}  // 2048 particles (JGF size A)
	SizeB = Params{MM: 13, Moves: 30} // 8788 particles (JGF size B)
	// SizeTest keeps unit tests fast.
	SizeTest = Params{MM: 4, Moves: 8} // 256 particles
)

// N returns the particle count for the given lattice dimension.
func (p Params) N() int { return 4 * p.MM * p.MM * p.MM }

// Physical constants (reduced Lennard-Jones units). Density and reference
// temperature are JGF's; the time step differs because JGF folds a 1/48
// rescaling into its force convention — with the standard 48·(r⁻¹⁴−½r⁻⁸)
// force used here, the equivalent stable step is h ≈ 0.004 (documented
// substitution, DESIGN.md §2).
const (
	den        = 0.83134 // density
	tref       = 0.722   // reference temperature
	h          = 0.004   // time step
	relaxEvery = 10      // velocity rescaling interval (steps)
)

// MolDyn is the base program: particle state plus the global force buffer.
type MolDyn struct {
	n     int
	moves int

	side, sideHalf float64
	rcoff, rcoffSq float64

	x, y, z    []float64
	vx, vy, vz []float64

	// f is the global ("object field") force buffer; parallel variants
	// may replicate it per thread via the ForceSink aspect seam.
	f *Forces

	// Reduction targets.
	ekin float64 // per-step kinetic-energy accumulator (2·KE)
	sc   float64 // velocity scale factor decided by temperature control

	// Step bookkeeping for temperature control and diagnostics.
	step      int
	epotTotal float64
	ekinTotal float64
	virTotal  float64
}

// New builds the base program: FCC lattice positions and Maxwell
// (Gaussian) velocities with zero net momentum, rescaled to tref.
func New(p Params) *MolDyn {
	n := p.N()
	md := &MolDyn{
		n:     n,
		moves: p.Moves,
		x:     make([]float64, n), y: make([]float64, n), z: make([]float64, n),
		vx: make([]float64, n), vy: make([]float64, n), vz: make([]float64, n),
		f:  NewForces(n),
		sc: 1,
	}
	md.side = math.Cbrt(float64(n) / den)
	md.sideHalf = md.side / 2

	a := md.side / float64(p.MM)
	// JGF cutoff mm/4, floored so tiny test lattices still interact (the
	// FCC nearest-neighbour distance is a/√2) and capped at half the box
	// for the minimum-image convention.
	md.rcoff = float64(p.MM) / 4.0
	if floor := 1.3 * a / math.Sqrt2; md.rcoff < floor {
		md.rcoff = floor
	}
	if md.rcoff > md.sideHalf {
		md.rcoff = md.sideHalf
	}
	md.rcoffSq = md.rcoff * md.rcoff
	offsets := [4][3]float64{{0, 0, 0}, {0.5, 0.5, 0}, {0.5, 0, 0.5}, {0, 0.5, 0.5}}
	idx := 0
	for _, o := range offsets {
		for i := 0; i < p.MM; i++ {
			for j := 0; j < p.MM; j++ {
				for k := 0; k < p.MM; k++ {
					md.x[idx] = (float64(i) + o[0]) * a
					md.y[idx] = (float64(j) + o[1]) * a
					md.z[idx] = (float64(k) + o[2]) * a
					idx++
				}
			}
		}
	}

	r := rng.New(6457)
	var sx, sy, sz float64
	for i := 0; i < n; i++ {
		md.vx[i] = r.NextGaussian()
		md.vy[i] = r.NextGaussian()
		md.vz[i] = r.NextGaussian()
		sx += md.vx[i]
		sy += md.vy[i]
		sz += md.vz[i]
	}
	// Zero net momentum, then rescale to the reference temperature.
	var v2 float64
	for i := 0; i < n; i++ {
		md.vx[i] -= sx / float64(n)
		md.vy[i] -= sy / float64(n)
		md.vz[i] -= sz / float64(n)
		v2 += md.vx[i]*md.vx[i] + md.vy[i]*md.vy[i] + md.vz[i]*md.vz[i]
	}
	sc := math.Sqrt(3 * float64(n) * tref / v2)
	for i := 0; i < n; i++ {
		md.vx[i] *= sc
		md.vy[i] *= sc
		md.vz[i] *= sc
	}
	return md
}

// minImage folds a displacement into the nearest periodic image.
func (md *MolDyn) minImage(d float64) float64 {
	if d > md.sideHalf {
		return d - md.side
	}
	if d < -md.sideHalf {
		return d + md.side
	}
	return d
}

// KickDrift is the first Verlet half step for particles [lo,hi): half
// velocity kick with the current forces, then position drift with
// periodic wrapping (the paper's domove).
func (md *MolDyn) KickDrift(lo, hi, step int) {
	for i := lo; i < hi; i += step {
		md.vx[i] += 0.5 * h * md.f.X[i]
		md.vy[i] += 0.5 * h * md.f.Y[i]
		md.vz[i] += 0.5 * h * md.f.Z[i]
		md.x[i] = wrap(md.x[i]+h*md.vx[i], md.side)
		md.y[i] = wrap(md.y[i]+h*md.vy[i], md.side)
		md.z[i] = wrap(md.z[i]+h*md.vz[i], md.side)
	}
}

func wrap(v, side float64) float64 {
	if v >= side {
		return v - side
	}
	if v < 0 {
		return v + side
	}
	return v
}

// ClearForces zeroes the global force buffer rows [lo,hi) so the pair
// sinks can accumulate the new step's forces.
func (md *MolDyn) ClearForces(lo, hi, step int) {
	for i := lo; i < hi; i += step {
		md.f.X[i], md.f.Y[i], md.f.Z[i] = 0, 0, 0
	}
}

// ClearEnergies zeroes the global pair-energy accumulators (a master
// operation between barriers).
func (md *MolDyn) ClearEnergies() {
	md.f.Epot, md.f.Vir = 0, 0
}

// ForceRow computes all interactions of particle i with particles j > i
// (Newton's third law halves the pair loop — the source of the data
// race), committing updates through sink.
func (md *MolDyn) ForceRow(i int, sink PairSink) {
	xi, yi, zi := md.x[i], md.y[i], md.z[i]
	var fxi, fyi, fzi, epot, vir float64
	for j := i + 1; j < md.n; j++ {
		dx := md.minImage(xi - md.x[j])
		dy := md.minImage(yi - md.y[j])
		dz := md.minImage(zi - md.z[j])
		r2 := dx*dx + dy*dy + dz*dz
		if r2 >= md.rcoffSq {
			continue
		}
		r2i := 1 / r2
		r6 := r2i * r2i * r2i
		epot += 4 * r6 * (r6 - 1)
		wij := 48 * r6 * (r6 - 0.5) * r2i
		vir -= wij * r2
		fx, fy, fz := wij*dx, wij*dy, wij*dz
		fxi += fx
		fyi += fy
		fzi += fz
		sink.Apply(j, -fx, -fy, -fz) // third Newton law (paper Fig. 14)
	}
	sink.Apply(i, fxi, fyi, fzi)
	sink.AddEnergy(epot, vir)
}

// ComputeForces is the cyclic for method over particle rows: row cost
// shrinks with i (j > i), so the paper distributes rows cyclically.
func (md *MolDyn) ComputeForces(lo, hi, step int, sink PairSink) {
	for i := lo; i < hi; i += step {
		md.ForceRow(i, sink)
	}
}

// ReduceForces folds per-thread force buffers (if any) into the global
// buffer for particles [lo,hi) and clears them for the next step. With no
// private buffers (sequential, critical, per-particle-lock variants) it is
// a no-op.
func (md *MolDyn) ReduceForces(lo, hi, step int, bufs []*Forces) {
	for _, b := range bufs {
		for i := lo; i < hi; i += step {
			md.f.X[i] += b.X[i]
			md.f.Y[i] += b.Y[i]
			md.f.Z[i] += b.Z[i]
			b.X[i], b.Y[i], b.Z[i] = 0, 0, 0
		}
	}
}

// MergeEnergies folds per-thread pair-energy partials into the global
// buffer (a master operation).
func (md *MolDyn) MergeEnergies(bufs []*Forces) {
	for _, b := range bufs {
		md.f.Epot += b.Epot
		md.f.Vir += b.Vir
		b.Epot, b.Vir = 0, 0
	}
}

// Kick is the second Verlet half step for particles [lo,hi); it returns
// the partial squared-velocity sum the caller accumulates into the ekin
// reduction target.
func (md *MolDyn) Kick(lo, hi, step int) float64 {
	var v2 float64
	for i := lo; i < hi; i += step {
		md.vx[i] += 0.5 * h * md.f.X[i]
		md.vy[i] += 0.5 * h * md.f.Y[i]
		md.vz[i] += 0.5 * h * md.f.Z[i]
		v2 += md.vx[i]*md.vx[i] + md.vy[i]*md.vy[i] + md.vz[i]*md.vz[i]
	}
	return v2
}

// TemperatureControl consumes the reduced ekin accumulator: every
// relaxEvery steps it derives the velocity scale restoring tref, and it
// folds the step energies into the run totals (a master operation).
func (md *MolDyn) TemperatureControl() {
	md.step++
	ke := 0.5 * md.ekin
	md.ekinTotal = ke
	md.epotTotal = md.f.Epot
	md.virTotal = md.f.Vir
	if md.step%relaxEvery == 0 {
		temp := md.ekin / (3 * float64(md.n))
		md.sc = math.Sqrt(tref / temp)
	} else {
		md.sc = 1
	}
	md.ekin = 0
}

// ScaleVelocities applies the velocity rescaling decided by
// TemperatureControl to particles [lo,hi).
func (md *MolDyn) ScaleVelocities(lo, hi, step int) {
	if md.sc == 1 {
		return
	}
	for i := lo; i < hi; i += step {
		md.vx[i] *= md.sc
		md.vy[i] *= md.sc
		md.vz[i] *= md.sc
	}
}

// Energies returns the last step's kinetic and potential energy and the
// virial — the quantities compared across versions.
func (md *MolDyn) Energies() (ekin, epot, vir float64) {
	return md.ekinTotal, md.epotTotal, md.virTotal
}

// validate checks physical invariants: finite energies, non-zero
// interactions and near-zero total force (Newton's third law makes pair
// contributions cancel exactly in exact arithmetic).
func (md *MolDyn) validate() error {
	ekin, epot, _ := md.Energies()
	if math.IsNaN(ekin) || math.IsNaN(epot) || ekin <= 0 || epot == 0 {
		return fmt.Errorf("moldyn: degenerate energies ekin=%v epot=%v", ekin, epot)
	}
	var fx, fy, fz, scale float64
	for i := 0; i < md.n; i++ {
		fx += md.f.X[i]
		fy += md.f.Y[i]
		fz += md.f.Z[i]
		scale += math.Abs(md.f.X[i]) + math.Abs(md.f.Y[i]) + math.Abs(md.f.Z[i])
	}
	tol := 1e-9 * (scale + 1)
	if math.Abs(fx) > tol || math.Abs(fy) > tol || math.Abs(fz) > tol {
		return fmt.Errorf("moldyn: total force (%g,%g,%g) not conserved (tol %g)", fx, fy, fz, tol)
	}
	return nil
}
