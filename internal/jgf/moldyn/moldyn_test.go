package moldyn

import (
	"math"
	"testing"

	"aomplib/internal/jgf/harness"
)

func relDiff(a, b float64) float64 {
	d := math.Abs(a - b)
	m := math.Max(math.Abs(a), math.Abs(b))
	if m == 0 {
		return 0
	}
	return d / m
}

type energied interface {
	harness.Instance
	Energies() (float64, float64, float64)
}

func runOne(t *testing.T, in energied) (ekin, epot, vir float64) {
	t.Helper()
	in.Setup()
	in.Kernel()
	if err := in.Validate(); err != nil {
		t.Fatalf("validation: %v", err)
	}
	return in.Energies()
}

// Force reductions reorder floating-point sums, so cross-version energies
// agree to tight tolerance rather than bitwise.
const tol = 1e-9

func TestMTMatchesSequential(t *testing.T) {
	ek0, ep0, _ := runOne(t, NewSeq(SizeTest).(*seqInstance))
	ek1, ep1, _ := runOne(t, NewMT(SizeTest, 3).(*mtInstance))
	if relDiff(ek0, ek1) > tol || relDiff(ep0, ep1) > tol {
		t.Fatalf("MT energies diverge: ekin %v vs %v, epot %v vs %v", ek0, ek1, ep0, ep1)
	}
}

func TestAompStrategiesMatchSequential(t *testing.T) {
	ek0, ep0, _ := runOne(t, NewSeq(SizeTest).(*seqInstance))
	for _, strat := range []Strategy{ThreadLocalStrategy, CriticalStrategy, LockPerParticleStrategy} {
		ek, ep, _ := runOne(t, NewAomp(SizeTest, 3, strat).(*aompInstance))
		if relDiff(ek0, ek) > tol || relDiff(ep0, ep) > tol {
			t.Fatalf("%v energies diverge: ekin %v vs %v, epot %v vs %v",
				strat, ek0, ek, ep0, ep)
		}
	}
}

func TestLatticeDensity(t *testing.T) {
	md := New(SizeTest)
	if md.n != SizeTest.N() {
		t.Fatalf("n = %d, want %d", md.n, SizeTest.N())
	}
	vol := md.side * md.side * md.side
	if relDiff(float64(md.n)/vol, den) > 1e-12 {
		t.Fatalf("density %v, want %v", float64(md.n)/vol, den)
	}
	for i := 0; i < md.n; i++ {
		if md.x[i] < 0 || md.x[i] >= md.side || md.y[i] < 0 || md.y[i] >= md.side {
			t.Fatalf("particle %d outside box", i)
		}
	}
}

func TestInitialMomentumZero(t *testing.T) {
	md := New(SizeTest)
	var px, py, pz float64
	for i := 0; i < md.n; i++ {
		px += md.vx[i]
		py += md.vy[i]
		pz += md.vz[i]
	}
	if math.Abs(px) > 1e-9 || math.Abs(py) > 1e-9 || math.Abs(pz) > 1e-9 {
		t.Fatalf("net momentum (%g,%g,%g)", px, py, pz)
	}
}

func TestInitialTemperature(t *testing.T) {
	md := New(SizeTest)
	var v2 float64
	for i := 0; i < md.n; i++ {
		v2 += md.vx[i]*md.vx[i] + md.vy[i]*md.vy[i] + md.vz[i]*md.vz[i]
	}
	temp := v2 / (3 * float64(md.n))
	if relDiff(temp, tref) > 1e-12 {
		t.Fatalf("initial temperature %v, want %v", temp, tref)
	}
}

func TestMinImage(t *testing.T) {
	md := New(SizeTest)
	if got := md.minImage(md.side*0.75 - 0); got >= md.sideHalf {
		t.Fatalf("minImage did not fold: %v", got)
	}
	if got := md.minImage(0.1); got != 0.1 {
		t.Fatalf("minImage changed small displacement: %v", got)
	}
}

func TestSinksEquivalent(t *testing.T) {
	// All three sinks must accumulate identical forces for a serial
	// workload.
	n := 64
	ref := NewForces(n)
	crit := NewForces(n)
	table := NewForces(n)
	cs := NewCriticalSink(crit)
	ts := NewLockTableSink(table)
	for i := 0; i < 1000; i++ {
		j := i % n
		fx, fy, fz := float64(i)*0.5, -float64(i), float64(i%7)
		ref.Apply(j, fx, fy, fz)
		cs.Apply(j, fx, fy, fz)
		ts.Apply(j, fx, fy, fz)
		ref.AddEnergy(0.1, -0.2)
		cs.AddEnergy(0.1, -0.2)
		ts.AddEnergy(0.1, -0.2)
	}
	for j := 0; j < n; j++ {
		if ref.X[j] != crit.X[j] || ref.X[j] != table.X[j] {
			t.Fatalf("sink forces differ at %d", j)
		}
	}
	if ref.Epot != crit.Epot || ref.Epot != table.Epot {
		t.Fatal("sink energies differ")
	}
}

func TestStrategyString(t *testing.T) {
	if ThreadLocalStrategy.String() != "ThreadLocal" ||
		CriticalStrategy.String() != "Critical" ||
		LockPerParticleStrategy.String() != "Locks" {
		t.Fatal("strategy names wrong")
	}
}

func TestEnergyConservationLoose(t *testing.T) {
	// Without rescaling steps in between, total energy drifts only
	// slightly over a few steps at this time step.
	p := Params{MM: 3, Moves: 5}
	seq := NewSeq(p).(*seqInstance)
	seq.Setup()
	seq.Kernel()
	ek, ep, _ := seq.Energies()
	total := ek + ep
	if math.IsNaN(total) || math.Abs(total) > 1e6 {
		t.Fatalf("energy blew up: %v", total)
	}
}
