package moldyn

import (
	"aomplib/internal/core"
	"aomplib/internal/jgf/harness"
	"aomplib/internal/jgf/jgfutil"
	"aomplib/internal/sched"
	"aomplib/internal/weaver"
)

// Strategy selects the dependence-management approach for the symmetric
// force updates — the three parallelisations Figure 15 compares.
type Strategy int

// Strategies of Figure 15.
const (
	// ThreadLocalStrategy replicates the force buffer per thread and
	// reduces after the force loop (the JGF approach).
	ThreadLocalStrategy Strategy = iota
	// CriticalStrategy serialises force updates through one critical
	// region.
	CriticalStrategy
	// LockPerParticleStrategy guards each particle with its own lock.
	LockPerParticleStrategy
)

// String implements fmt.Stringer; names follow Figure 15's series.
func (s Strategy) String() string {
	switch s {
	case CriticalStrategy:
		return "Critical"
	case LockPerParticleStrategy:
		return "Locks"
	default:
		return "ThreadLocal"
	}
}

// baseProgram registers the MolDyn joinpoints against a weaver program and
// returns the runiters entry point. It is shared by the sequential and all
// aspect-woven versions — the paper's point is precisely that the base
// never changes across parallelisation strategies.
type baseProgram struct {
	md  *MolDyn
	run func()

	forceSink func() any
	buffers   func() any
}

func buildBase(md *MolDyn, prog *weaver.Program) *baseProgram {
	b := &baseProgram{md: md}
	cls := prog.Class("MD")
	n := md.n

	// Accessor joinpoints (the M2M refactorings standing in for field
	// joinpoints; see package comment).
	b.forceSink = cls.ValueProc("forceSink", func() any { return PairSink(md.f) })
	b.buffers = cls.ValueProc("privateBuffers", func() any { return []*Forces(nil) })
	ekinAcc := cls.ValueProc("ekinAcc", func() any { return &md.ekin })

	kickDrift := cls.ForProc("kickDrift", md.KickDrift)
	clearF := cls.ForProc("clearForces", md.ClearForces)
	clearE := cls.Proc("clearEnergies", md.ClearEnergies)
	compute := cls.ForProc("computeForces", func(lo, hi, step int) {
		md.ComputeForces(lo, hi, step, b.forceSink().(PairSink))
	})
	reduceF := cls.ForProc("reduceForces", func(lo, hi, step int) {
		md.ReduceForces(lo, hi, step, b.buffers().([]*Forces))
	})
	mergeE := cls.Proc("mergeEnergies", func() {
		md.MergeEnergies(b.buffers().([]*Forces))
	})
	kick := cls.ForProc("kick", func(lo, hi, step int) {
		*(ekinAcc().(*float64)) += md.Kick(lo, hi, step)
	})
	temper := cls.Proc("temperature", md.TemperatureControl)
	scaleV := cls.ForProc("scaleVelocities", md.ScaleVelocities)

	forcePhase := func() {
		clearF(0, n, 1)
		clearE()
		compute(0, n, 1)
		reduceF(0, n, 1)
		mergeE()
	}
	b.run = cls.Proc("runiters", func() {
		forcePhase() // initial forces
		for move := 0; move < md.moves; move++ {
			kickDrift(0, n, 1)
			forcePhase()
			kick(0, n, 1)
			temper()
			scaleV(0, n, 1)
		}
	})
	return b
}

// weaveCommon deploys the aspects every parallel strategy shares: the
// parallel region, work sharing (cyclic force loop, block elsewhere),
// phase barriers, master sections, and the thread-local ekin accumulator
// with its reduction (the second TLF of Table 2).
func weaveCommon(prog *weaver.Program, threads int, md *MolDyn) {
	prog.Use(core.ParallelRegion("call(* MD.runiters(..))").Threads(threads))
	prog.Use(core.ForShare("call(* MD.computeForces(..))").Named("ForCyclic").
		Schedule(sched.StaticCyclic))
	prog.Use(core.ForShare(
		"call(* MD.kickDrift(..)) || call(* MD.clearForces(..)) || call(* MD.reduceForces(..))" +
			" || call(* MD.kick(..)) || call(* MD.scaleVelocities(..))").Named("ForBlock"))
	prog.Use(core.BarrierAfterPoint(
		"call(* MD.kickDrift(..)) || call(* MD.clearForces(..)) || call(* MD.clearEnergies(..))" +
			" || call(* MD.computeForces(..)) || call(* MD.reduceForces(..))" +
			" || call(* MD.mergeEnergies(..)) || call(* MD.temperature(..))"))
	prog.Use(core.MasterSection(
		"call(* MD.clearEnergies(..)) || call(* MD.mergeEnergies(..)) || call(* MD.temperature(..))"))

	ekinTL := core.NewThreadLocal("call(* MD.ekinAcc(..))", "ekin").
		InitFresh(func() any { return new(float64) })
	prog.Use(ekinTL)
	prog.Use(core.ReducePoint("call(* MD.temperature(..))", ekinTL, func(local any) {
		// merge runs on the master between the reduction barriers
		md.ekin += *(local.(*float64))
	}))
}

// ------------------------------------------------------------- versions --

type seqInstance struct {
	p    Params
	md   *MolDyn
	base *baseProgram
}

// NewSeq returns the sequential version (the unwoven base program).
func NewSeq(p Params) harness.Instance { return &seqInstance{p: p} }

func (in *seqInstance) Setup() {
	in.md = New(in.p)
	in.base = buildBase(in.md, weaver.NewProgram("MolDynSeq"))
}
func (in *seqInstance) Kernel()         { in.base.run() }
func (in *seqInstance) Validate() error { return in.md.validate() }

// Energies exposes the result for cross-version comparisons in tests.
func (in *seqInstance) Energies() (float64, float64, float64) { return in.md.Energies() }

type mtInstance struct {
	p       Params
	threads int
	md      *MolDyn
}

// NewMT returns the hand-threaded JGF baseline: per-thread force buffers,
// cyclic force rows, block distribution elsewhere, explicit barriers —
// the structure of the paper's Figure 3, extended to full steps.
func NewMT(p Params, threads int) harness.Instance {
	return &mtInstance{p: p, threads: threads}
}

func (in *mtInstance) Setup() { in.md = New(in.p) }

func (in *mtInstance) Kernel() {
	md := in.md
	t := in.threads
	n := md.n
	buffers := make([]*Forces, t)
	for i := range buffers {
		buffers[i] = NewForces(n)
	}
	ekins := make([]float64, t)
	bar := jgfutil.NewBarrier(t)

	jgfutil.Run(t, func(id int) {
		lo, hi := jgfutil.Block(n, t, id)
		buf := buffers[id]
		forcePhase := func() {
			md.ClearForces(lo, hi, 1)
			if id == 0 {
				md.ClearEnergies()
			}
			bar.Wait()
			md.ComputeForces(id, n, t, buf) // cyclic distribution
			bar.Wait()
			md.ReduceForces(lo, hi, 1, buffers)
			bar.Wait()
			if id == 0 {
				md.MergeEnergies(buffers)
			}
			bar.Wait()
		}
		forcePhase()
		for move := 0; move < md.moves; move++ {
			md.KickDrift(lo, hi, 1)
			bar.Wait()
			forcePhase()
			ekins[id] = md.Kick(lo, hi, 1)
			bar.Wait()
			if id == 0 {
				for _, e := range ekins {
					md.ekin += e
				}
				md.TemperatureControl()
			}
			bar.Wait()
			md.ScaleVelocities(lo, hi, 1)
		}
	})
}

func (in *mtInstance) Validate() error { return in.md.validate() }

// Energies exposes the result for cross-version comparisons in tests.
func (in *mtInstance) Energies() (float64, float64, float64) { return in.md.Energies() }

type aompInstance struct {
	p        Params
	threads  int
	strategy Strategy
	md       *MolDyn
	base     *baseProgram
	prog     *weaver.Program
}

// NewAomp returns the AOmpLib version with the chosen dependence-
// management strategy plugged in as aspects over the unchanged base
// program — the experiment of Figure 15.
func NewAomp(p Params, threads int, strategy Strategy) harness.Instance {
	return &aompInstance{p: p, threads: threads, strategy: strategy}
}

func (in *aompInstance) Setup() {
	in.md = New(in.p)
	in.prog = weaver.NewProgram("MolDyn")
	in.base = buildBase(in.md, in.prog)
	weaveCommon(in.prog, in.threads, in.md)

	md := in.md
	switch in.strategy {
	case CriticalStrategy:
		sink := NewCriticalSink(md.f)
		in.prog.Use(core.Around("CriticalForceSink", "call(* MD.forceSink(..))",
			core.PrecThreadLocal, false,
			func(c *weaver.Call, proceed func(*weaver.Call)) { c.Ret = PairSink(sink) }))
	case LockPerParticleStrategy:
		sink := NewLockTableSink(md.f)
		in.prog.Use(core.Around("LockTableForceSink", "call(* MD.forceSink(..))",
			core.PrecThreadLocal, false,
			func(c *weaver.Call, proceed func(*weaver.Call)) { c.Ret = PairSink(sink) }))
	default: // ThreadLocalStrategy — the first TLF of Table 2
		forceTL := core.NewThreadLocal("call(* MD.forceSink(..))", "forces").
			InitFresh(func() any { return NewForces(md.n) })
		in.prog.Use(forceTL)
		in.prog.Use(core.Around("PrivateBuffers", "call(* MD.privateBuffers(..))",
			core.PrecThreadLocal, true,
			func(c *weaver.Call, proceed func(*weaver.Call)) {
				if c.Worker == nil {
					proceed(c)
					return
				}
				vals := forceTL.Values(c.Worker.Team)
				bufs := make([]*Forces, 0, len(vals))
				for _, v := range vals {
					bufs = append(bufs, v.(*Forces))
				}
				c.Ret = bufs
			}))
	}
	in.prog.MustWeave()
}

func (in *aompInstance) Kernel()         { in.base.run() }
func (in *aompInstance) Validate() error { return in.md.validate() }

// Energies exposes the result for cross-version comparisons in tests.
func (in *aompInstance) Energies() (float64, float64, float64) { return in.md.Energies() }

// WeaveReport exposes the woven structure for the Table 2 tooling.
func (in *aompInstance) WeaveReport() []weaver.WovenMethod { return in.prog.Report() }
