package moldyn

import (
	"sync"

	"aomplib/internal/rt"
)

// PairSink is the dependence-management seam of the force kernel: every
// force write and pair-energy contribution flows through it. It is the Go
// analogue of the field joinpoints AOmpLib's @ThreadLocalField/@Critical
// aspects intercept in Java — the parallelisation strategies of Figure 15
// differ only in which sink the woven ForceSink accessor returns, leaving
// the base kernel untouched.
type PairSink interface {
	// Apply adds (fx,fy,fz) to particle j's force.
	Apply(j int, fx, fy, fz float64)
	// AddEnergy accumulates one row's potential-energy and virial partials.
	AddEnergy(epot, vir float64)
}

// Forces is a force buffer with pair-energy accumulators. It is itself a
// PairSink (unsynchronised direct writes) — the sequential sink and the
// per-thread replica of the thread-local strategy.
type Forces struct {
	X, Y, Z []float64
	Epot    float64
	Vir     float64
}

// NewForces allocates a zeroed buffer for n particles.
func NewForces(n int) *Forces {
	return &Forces{X: make([]float64, n), Y: make([]float64, n), Z: make([]float64, n)}
}

// Apply implements PairSink with plain writes.
func (f *Forces) Apply(j int, fx, fy, fz float64) {
	f.X[j] += fx
	f.Y[j] += fy
	f.Z[j] += fz
}

// AddEnergy implements PairSink with plain accumulation.
func (f *Forces) AddEnergy(epot, vir float64) {
	f.Epot += epot
	f.Vir += vir
}

// CriticalSink serialises every force update through one mutex — the
// Figure 15 "Critical" strategy ("the use of a critical region on force
// update"). Cheap in memory, contended under many threads.
type CriticalSink struct {
	mu sync.Mutex
	f  *Forces
}

// NewCriticalSink wraps the global buffer with a single critical region.
func NewCriticalSink(f *Forces) *CriticalSink { return &CriticalSink{f: f} }

// Apply implements PairSink under the global lock.
func (s *CriticalSink) Apply(j int, fx, fy, fz float64) {
	s.mu.Lock()
	s.f.Apply(j, fx, fy, fz)
	s.mu.Unlock()
}

// AddEnergy implements PairSink under the global lock.
func (s *CriticalSink) AddEnergy(epot, vir float64) {
	s.mu.Lock()
	s.f.AddEnergy(epot, vir)
	s.mu.Unlock()
}

// LockTableSink guards each particle with its own lock — the Figure 15
// "Locks" strategy ("the use of a lock per particle"). Disjoint updates
// proceed in parallel; memory cost is one lock per particle instead of one
// buffer per thread.
type LockTableSink struct {
	table *rt.LockTable
	emu   sync.Mutex
	f     *Forces
}

// NewLockTableSink wraps the global buffer with one lock per particle.
func NewLockTableSink(f *Forces) *LockTableSink {
	return &LockTableSink{table: rt.NewLockTable(len(f.X)), f: f}
}

// Apply implements PairSink under particle j's lock.
func (s *LockTableSink) Apply(j int, fx, fy, fz float64) {
	s.table.Lock(j)
	s.f.Apply(j, fx, fy, fz)
	s.table.Unlock(j)
}

// AddEnergy implements PairSink under a dedicated energy lock (row
// granularity: once per particle row, negligible contention).
func (s *LockTableSink) AddEnergy(epot, vir float64) {
	s.emu.Lock()
	s.f.AddEnergy(epot, vir)
	s.emu.Unlock()
}
