// Package series reproduces the JGF Series benchmark: the first n Fourier
// coefficients of f(x) = (x+1)^x on [0,2], computed by trapezoid
// integration with 1000 sub-intervals per coefficient. Work per
// coefficient is uniform, so the paper parallelises it with a parallel
// region and a block-scheduled for method (Table 2: "PR, FOR (block)";
// refactorings M2FOR + M2M).
package series

import (
	"fmt"
	"math"

	"aomplib/internal/core"
	"aomplib/internal/jgf/harness"
	"aomplib/internal/sched"
	"aomplib/internal/weaver"
	"aomplib/parallel"
)

// Params sizes the benchmark.
type Params struct {
	// N is the number of Fourier coefficient pairs.
	N int
}

// JGF problem sizes (size A is 10000 coefficients).
var (
	SizeA = Params{N: 10000}
	SizeB = Params{N: 100000}
	// SizeTest keeps unit tests and CI-scale benches fast.
	SizeTest = Params{N: 200}
)

// Series is the base program: the sequential kernel after the paper's
// refactoring. TestArray[0][i] holds a_i, TestArray[1][i] holds b_i.
type Series struct {
	n         int
	TestArray [2][]float64
}

// New allocates a Series base program.
func New(p Params) *Series {
	s := &Series{n: p.N}
	s.TestArray[0] = make([]float64, p.N)
	s.TestArray[1] = make([]float64, p.N)
	return s
}

// thefunction is f(x) weighted for the requested integral:
// sel 0: f(x); 1: f(x)·cos(ω·x); 2: f(x)·sin(ω·x).
func thefunction(x, omegan float64, sel int) float64 {
	fx := math.Pow(x+1, x)
	switch sel {
	case 1:
		return fx * math.Cos(omegan*x)
	case 2:
		return fx * math.Sin(omegan*x)
	default:
		return fx
	}
}

// referenceA0 computes ½∫₀²(x+1)ˣdx by composite Simpson quadrature at a
// resolution far beyond the kernel's, memoised for reuse in validation.
var refA0Cache float64

func referenceA0() float64 {
	if refA0Cache != 0 {
		return refA0Cache
	}
	const steps = 1 << 16
	hh := 2.0 / steps
	sum := thefunction(0, 0, 0) + thefunction(2, 0, 0)
	for i := 1; i < steps; i++ {
		w := 2.0
		if i%2 == 1 {
			w = 4.0
		}
		sum += w * thefunction(float64(i)*hh, 0, 0)
	}
	refA0Cache = sum * hh / 3 / 2
	return refA0Cache
}

// trapezoidIntegrate integrates thefunction over [x0,x1] with nsteps
// intervals, as the JGF kernel does.
func trapezoidIntegrate(x0, x1 float64, nsteps int, omegan float64, sel int) float64 {
	x := x0
	dx := (x1 - x0) / float64(nsteps)
	rvalue := thefunction(x0, omegan, sel) / 2
	for n := nsteps - 1; n > 0; n-- {
		x += dx
		rvalue += thefunction(x, omegan, sel)
	}
	rvalue += thefunction(x1, omegan, sel) / 2
	return rvalue * dx
}

// BuildCoeffs is the for method (M2FOR refactor) computing coefficients
// [lo,hi) with the given step: index 0 is a_0, index i>0 the (a_i, b_i)
// pair.
func (s *Series) BuildCoeffs(lo, hi, step int) {
	omega := 2 * math.Pi / 2.0 // period is [0,2]
	for i := lo; i < hi; i += step {
		if i == 0 {
			s.TestArray[0][0] = trapezoidIntegrate(0, 2, 1000, 0, 0) / 2
			continue
		}
		w := omega * float64(i)
		s.TestArray[0][i] = trapezoidIntegrate(0, 2, 1000, w, 1)
		s.TestArray[1][i] = trapezoidIntegrate(0, 2, 1000, w, 2)
	}
}

// validate checks a_0 against a high-precision reference for
// ½∫₀²(x+1)ˣdx and requires every coefficient to be finite. The kernel
// integrates with 1000 trapezoids, so the check allows its discretisation
// error. Cross-version equality is asserted separately by the test suite.
func (s *Series) validate() error {
	refA0 := referenceA0()
	if d := math.Abs(s.TestArray[0][0] - refA0); d > 1e-4 {
		return fmt.Errorf("series: a0 = %v, want %v (|Δ|=%g)", s.TestArray[0][0], refA0, d)
	}
	for j := 0; j < 2; j++ {
		for i, v := range s.TestArray[j] {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("series: coefficient [%d][%d] = %v", j, i, v)
			}
		}
	}
	return nil
}

// ------------------------------------------------------------- versions --

type seqInstance struct {
	p Params
	s *Series
}

// NewSeq returns the sequential version.
func NewSeq(p Params) harness.Instance { return &seqInstance{p: p} }

func (in *seqInstance) Setup()          { in.s = New(in.p) }
func (in *seqInstance) Kernel()         { in.s.BuildCoeffs(0, in.s.n, 1) }
func (in *seqInstance) Validate() error { return in.s.validate() }

type mtInstance struct {
	p       Params
	threads int
	s       *Series
}

// NewMT returns the hand-threaded JGF-MT baseline: explicit goroutines
// with a block distribution, mirroring the Java-threads version.
func NewMT(p Params, threads int) harness.Instance {
	return &mtInstance{p: p, threads: threads}
}

func (in *mtInstance) Setup() { in.s = New(in.p) }

func (in *mtInstance) Kernel() {
	done := make(chan struct{}, in.threads)
	n := in.s.n
	for id := 0; id < in.threads; id++ {
		go func(id int) {
			// Block distribution, remainder to the leading workers.
			per, rem := n/in.threads, n%in.threads
			lo := id*per + min(id, rem)
			hi := lo + per
			if id < rem {
				hi++
			}
			in.s.BuildCoeffs(lo, hi, 1)
			done <- struct{}{}
		}(id)
	}
	for id := 0; id < in.threads; id++ {
		<-done
	}
}

func (in *mtInstance) Validate() error { return in.s.validate() }

type aompInstance struct {
	p       Params
	threads int
	s       *Series
	run     func()
	build   func(lo, hi, step int)
	prog    *weaver.Program
}

// NewAomp returns the AOmpLib version: the same base program composed with
// a ParallelRegion and a block-scheduled ForShare aspect.
//
//go:generate go run aomplib/cmd/weavegen -target=series -o=static_gen.go
func NewAomp(p Params, threads int) harness.Instance {
	return &aompInstance{p: p, threads: threads}
}

func (in *aompInstance) Setup() {
	in.s = New(in.p)
	in.prog = weaver.NewProgram("Series")
	prog := in.prog
	cls := prog.Class("Series")
	// Call sites go through instance fields so UseStatic can rewire them
	// to the statically woven entries without touching the registry.
	in.build = cls.ForProc("buildCoeffs", in.s.BuildCoeffs)
	in.run = cls.Proc("run", func() { in.build(0, in.s.n, 1) })
	prog.Use(core.ParallelRegion("call(* Series.run(..))").Threads(in.threads))
	prog.Use(core.ForShare("call(* Series.buildCoeffs(..))").Schedule(sched.Runtime))
	prog.MustWeave()
}

// Program exposes the underlying weave registry for static-weave tooling
// (cmd/weavegen) and diagnostics.
func (in *aompInstance) Program() *weaver.Program { return in.prog }

// UseStatic rewires the instance's call sites to the statically woven
// entry points generated by cmd/weavegen (static_gen.go), after verifying
// the generated plan still matches the live weave. Every subsequent
// Kernel run dispatches with zero dynamic weaving overhead: no chain
// loads and no gate checks.
func (in *aompInstance) UseStatic() error {
	e, err := BindStatic(in.prog)
	if err != nil {
		return err
	}
	in.build = e.BuildCoeffs
	in.run = e.Run
	return nil
}

func (in *aompInstance) Kernel()         { in.run() }
func (in *aompInstance) Validate() error { return in.s.validate() }

type parInstance struct {
	p       Params
	threads int
	s       *Series
	opts    []parallel.Opt
}

// NewParallel returns the generic-algorithms version: the same base
// program driven by parallel.ForRange instead of woven aspects. Schedule
// Runtime matches the Aomp binding, so -schedule sweeps cover both.
func NewParallel(p Params, threads int) harness.Instance {
	return &parInstance{p: p, threads: threads}
}

func (in *parInstance) Setup() {
	in.s = New(in.p)
	in.opts = []parallel.Opt{
		parallel.WithThreads(in.threads), parallel.WithSchedule(parallel.Runtime),
	}
}

func (in *parInstance) Kernel() {
	parallel.ForRange(0, in.s.n, func(lo, hi int) { in.s.BuildCoeffs(lo, hi, 1) }, in.opts...)
}

func (in *parInstance) Validate() error { return in.s.validate() }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// WeaveReport exposes the woven structure for the Table 2 tooling.
func (in *aompInstance) WeaveReport() []weaver.WovenMethod { return in.prog.Report() }
