package series

import "testing"

// TestStaticWeaveEquivalence runs the kernel through the dynamic weaver
// and through the statically woven entries (cmd/weavegen) and requires
// bitwise-identical coefficients: the static backend must be an
// optimisation, never a semantic change.
func TestStaticWeaveEquivalence(t *testing.T) {
	dyn := NewAomp(SizeTest, 2).(*aompInstance)
	dyn.Setup()
	dyn.Kernel()
	if err := dyn.Validate(); err != nil {
		t.Fatalf("dynamic: %v", err)
	}

	st := NewAomp(SizeTest, 2).(*aompInstance)
	st.Setup()
	if err := st.UseStatic(); err != nil {
		t.Fatalf("UseStatic: %v", err)
	}
	st.Kernel()
	if err := st.Validate(); err != nil {
		t.Fatalf("static: %v", err)
	}

	for j := 0; j < 2; j++ {
		for i := range dyn.s.TestArray[j] {
			if dyn.s.TestArray[j][i] != st.s.TestArray[j][i] {
				t.Fatalf("coefficient [%d][%d]: dynamic %v, static %v",
					j, i, dyn.s.TestArray[j][i], st.s.TestArray[j][i])
			}
		}
	}
}

// TestUseStaticRejectsDrift pins that a reconfigured program cannot bind
// stale static entries.
func TestUseStaticRejectsDrift(t *testing.T) {
	in := NewAomp(SizeTest, 2).(*aompInstance)
	in.Setup()
	if err := in.prog.SetAdviceEnabled("For", false); err != nil {
		t.Fatal(err)
	}
	if err := in.UseStatic(); err == nil {
		t.Fatal("UseStatic bound against a drifted configuration")
	}
}
