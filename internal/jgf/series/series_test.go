package series

import (
	"testing"

	"aomplib/internal/jgf/harness"
)

func runAll(t *testing.T, p Params, threads int) (*seqInstance, *mtInstance, *aompInstance) {
	t.Helper()
	seq := NewSeq(p).(*seqInstance)
	mt := NewMT(p, threads).(*mtInstance)
	ao := NewAomp(p, threads).(*aompInstance)
	for _, in := range []harness.Instance{seq, mt, ao} {
		in.Setup()
		in.Kernel()
		if err := in.Validate(); err != nil {
			t.Fatalf("validation: %v", err)
		}
	}
	return seq, mt, ao
}

func TestAllVersionsAgreeBitwise(t *testing.T) {
	seq, mt, ao := runAll(t, SizeTest, 3)
	for j := 0; j < 2; j++ {
		for i := range seq.s.TestArray[j] {
			if seq.s.TestArray[j][i] != mt.s.TestArray[j][i] {
				t.Fatalf("MT coefficient [%d][%d] differs", j, i)
			}
			if seq.s.TestArray[j][i] != ao.s.TestArray[j][i] {
				t.Fatalf("Aomp coefficient [%d][%d] differs", j, i)
			}
		}
	}
}

func TestKnownFirstCoefficient(t *testing.T) {
	seq := NewSeq(Params{N: 4}).(*seqInstance)
	seq.Setup()
	seq.Kernel()
	if err := seq.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSingleThreadAomp(t *testing.T) {
	runAll(t, Params{N: 50}, 1)
}

func TestMoreThreadsThanWork(t *testing.T) {
	// 3 coefficients over 8 threads: coverage must still be exact.
	seq, _, ao := runAll(t, Params{N: 3}, 8)
	for i := range seq.s.TestArray[0] {
		if seq.s.TestArray[0][i] != ao.s.TestArray[0][i] {
			t.Fatalf("coefficient %d differs with oversubscribed team", i)
		}
	}
}

func TestHarnessMeasure(t *testing.T) {
	m := harness.Measure("series", harness.Aomp, 2, NewAomp(SizeTest, 2), 2)
	if m.Err != nil {
		t.Fatalf("measurement invalid: %v", m.Err)
	}
	if m.Seconds <= 0 {
		t.Fatal("non-positive time")
	}
}
