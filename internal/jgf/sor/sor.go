// Package sor reproduces the JGF SOR benchmark: successive over-relaxation
// on an M×N grid with ω = 1.25. All versions use the red-black ordering of
// the JGF multi-threaded kernel (the sequential lexicographic ordering is
// not parallelisable), so sequential and parallel runs produce identical
// grids. The paper parallelises it with a parallel region, a
// block-scheduled for method over rows and a barrier between colour
// phases (Table 2: "PR, FOR (block), BR").
package sor

import (
	"fmt"
	"math"

	"aomplib/internal/core"
	"aomplib/internal/jgf/harness"
	"aomplib/internal/jgf/jgfutil"
	"aomplib/internal/rng"
	"aomplib/internal/sched"
	"aomplib/internal/weaver"
	"aomplib/parallel"
)

// Params sizes the benchmark.
type Params struct {
	// M, N are the grid dimensions; Iters the number of full sweeps.
	M, N, Iters int
}

// JGF problem sizes (100 iterations over square grids).
var (
	SizeA = Params{M: 1000, N: 1000, Iters: 100}
	SizeB = Params{M: 1500, N: 1500, Iters: 100}
	// SizeTest keeps unit tests fast.
	SizeTest = Params{M: 64, N: 64, Iters: 20}
)

const omega = 1.25

// SOR is the base program.
type SOR struct {
	m, n  int
	iters int
	g     [][]float64
	// gTotal is the validation checksum (sum of all grid values).
	gTotal float64
}

// New builds the base program with a deterministic random grid.
func New(p Params) *SOR {
	s := &SOR{m: p.M, n: p.N, iters: p.Iters}
	r := rng.New(10101010)
	s.g = make([][]float64, p.M)
	for i := range s.g {
		row := make([]float64, p.N)
		for j := range row {
			row[j] = r.NextDouble() * 1e-6
		}
		s.g[i] = row
	}
	return s
}

// RelaxColor is the for method sweeping rows [lo,hi) for one colour
// (0 = red, 1 = black): within each row only points with (i+j)%2 == color
// are relaxed, so all updates of one phase are independent.
func (s *SOR) RelaxColor(lo, hi, step int, color int) {
	omegaOver4 := omega * 0.25
	oneMinusOmega := 1 - omega
	for i := lo; i < hi; i += step {
		if i < 1 || i >= s.m-1 {
			continue
		}
		gi := s.g[i]
		gim1 := s.g[i-1]
		gip1 := s.g[i+1]
		start := 1 + (i+1+color)%2
		for j := start; j < s.n-1; j += 2 {
			gi[j] = omegaOver4*(gim1[j]+gip1[j]+gi[j-1]+gi[j+1]) + oneMinusOmega*gi[j]
		}
	}
}

// Sum computes the validation checksum.
func (s *SOR) Sum() float64 {
	total := 0.0
	for i := range s.g {
		for _, v := range s.g[i] {
			total += v
		}
	}
	return total
}

func (s *SOR) validate() error {
	if math.IsNaN(s.gTotal) || s.gTotal == 0 {
		return fmt.Errorf("sor: checksum %v", s.gTotal)
	}
	return nil
}

// ------------------------------------------------------------- versions --

type seqInstance struct {
	p Params
	s *SOR
}

// NewSeq returns the sequential version.
func NewSeq(p Params) harness.Instance { return &seqInstance{p: p} }

func (in *seqInstance) Setup() { in.s = New(in.p) }
func (in *seqInstance) Kernel() {
	for it := 0; it < in.s.iters; it++ {
		in.s.RelaxColor(0, in.s.m, 1, 0)
		in.s.RelaxColor(0, in.s.m, 1, 1)
	}
	in.s.gTotal = in.s.Sum()
}
func (in *seqInstance) Validate() error { return in.s.validate() }

type mtInstance struct {
	p       Params
	threads int
	s       *SOR
}

// NewMT returns the hand-threaded baseline: persistent goroutines sweeping
// row blocks with a barrier between colour phases, as the JGF Java-threads
// kernel does.
func NewMT(p Params, threads int) harness.Instance {
	return &mtInstance{p: p, threads: threads}
}

func (in *mtInstance) Setup() { in.s = New(in.p) }

func (in *mtInstance) Kernel() {
	s := in.s
	t := in.threads
	bar := jgfutil.NewBarrier(t)
	jgfutil.Run(t, func(id int) {
		lo, hi := jgfutil.Block(s.m, t, id)
		for it := 0; it < s.iters; it++ {
			for color := 0; color < 2; color++ {
				s.RelaxColor(lo, hi, 1, color)
				bar.Wait()
			}
		}
	})
	s.gTotal = s.Sum()
}

func (in *mtInstance) Validate() error { return in.s.validate() }

type aompInstance struct {
	p       Params
	threads int
	s       *SOR
	run     func()
	red     func(lo, hi, step int)
	black   func(lo, hi, step int)
	prog    *weaver.Program
}

// NewAomp returns the AOmpLib version: the same base program with a
// parallel region over the sweep loop, a block-scheduled for and a barrier
// after each colour phase.
//
//go:generate go run aomplib/cmd/weavegen -target=sor -o=static_gen.go
func NewAomp(p Params, threads int) harness.Instance {
	return &aompInstance{p: p, threads: threads}
}

func (in *aompInstance) Setup() {
	in.s = New(in.p)
	in.prog = weaver.NewProgram("SOR")
	prog := in.prog
	cls := prog.Class("SOR")
	// Call sites go through instance fields so UseStatic can rewire them
	// to the statically woven entries without touching the registry.
	in.red = cls.ForProc("relaxRed", func(lo, hi, step int) { in.s.RelaxColor(lo, hi, step, 0) })
	in.black = cls.ForProc("relaxBlack", func(lo, hi, step int) { in.s.RelaxColor(lo, hi, step, 1) })
	in.run = cls.Proc("run", func() {
		for it := 0; it < in.s.iters; it++ {
			in.red(0, in.s.m, 1)
			in.black(0, in.s.m, 1)
		}
	})
	prog.Use(core.ParallelRegion("call(* SOR.run(..))").Threads(in.threads))
	prog.Use(core.ForShare("call(* SOR.relax*(..))").Schedule(sched.Runtime))
	prog.Use(core.BarrierAfterPoint("call(* SOR.relax*(..))"))
	prog.MustWeave()
}

// Program exposes the underlying weave registry for static-weave tooling
// (cmd/weavegen) and diagnostics.
func (in *aompInstance) Program() *weaver.Program { return in.prog }

// UseStatic rewires the instance's call sites to the statically woven
// entry points generated by cmd/weavegen (static_gen.go), after verifying
// the generated plan still matches the live weave. Every subsequent
// Kernel run dispatches with zero dynamic weaving overhead: no chain
// loads and no gate checks.
func (in *aompInstance) UseStatic() error {
	e, err := BindStatic(in.prog)
	if err != nil {
		return err
	}
	in.red = e.RelaxRed
	in.black = e.RelaxBlack
	in.run = e.Run
	return nil
}

func (in *aompInstance) Kernel() {
	in.run()
	in.s.gTotal = in.s.Sum()
}
func (in *aompInstance) Validate() error { return in.s.validate() }

// WeaveReport exposes the woven structure for the Table 2 tooling.
func (in *aompInstance) WeaveReport() []weaver.WovenMethod { return in.prog.Report() }

type aompDepInstance struct {
	p       Params
	threads int
	s       *SOR
	run     func()
	prog    *weaver.Program
}

// NewAompDep returns the dataflow AOmpLib version: the grid rows are
// partitioned into blocks and each colour sweep of each block becomes a
// task whose @Depend clauses tie it only to its neighbour blocks — in on
// the blocks above and below (their boundary rows are read), inout on its
// own. Blocks therefore synchronise with their neighbourhood instead of
// the whole team: a fast block may be a full colour phase ahead of a slow
// distant one, where the barrier version holds everyone at each phase.
func NewAompDep(p Params, threads int) harness.Instance {
	return &aompDepInstance{p: p, threads: threads}
}

func (in *aompDepInstance) Setup() {
	in.s = New(in.p)
	s := in.s
	nb := in.threads * 2
	if nb > s.m {
		nb = s.m
	}
	width := (s.m + nb - 1) / nb
	nb = (s.m + width - 1) / width
	tags := make([]byte, nb)

	in.prog = weaver.NewProgram("SORDF")
	prog := in.prog
	cls := prog.Class("SOR")

	sweepBlock := func(b, color int) {
		lo := b * width
		hi := lo + width
		if hi > s.m {
			hi = s.m
		}
		s.RelaxColor(lo, hi, 1, color)
	}
	red := cls.KeyedProc("redBlock", func(b int) { sweepBlock(b, 0) })
	black := cls.KeyedProc("blackBlock", func(b int) { sweepBlock(b, 1) })
	spawnAll := cls.Proc("spawnAll", func() {
		for it := 0; it < s.iters; it++ {
			for b := 0; b < nb; b++ {
				red(b)
			}
			for b := 0; b < nb; b++ {
				black(b)
			}
		}
	})
	sweep := cls.Proc("sweep", func() { spawnAll() })

	neighbourhood := core.Depend{
		In: []any{
			core.DepFn(func(b int) any {
				if b == 0 {
					return nil
				}
				return &tags[b-1]
			}),
			core.DepFn(func(b int) any {
				if b+1 >= nb {
					return nil
				}
				return &tags[b+1]
			}),
		},
		InOut: []any{core.DepFn(func(b int) any { return &tags[b] })},
	}
	prog.MustAnnotate("SOR.sweep", core.Parallel{Threads: in.threads})
	prog.MustAnnotate("SOR.spawnAll", core.Master{})
	prog.MustAnnotate("SOR.redBlock", core.Task{}, neighbourhood)
	prog.MustAnnotate("SOR.blackBlock", core.Task{}, neighbourhood)
	prog.Use(core.AnnotationAspects(prog)...)
	prog.MustWeave()
	in.run = sweep
}

func (in *aompDepInstance) Kernel() {
	in.run()
	in.s.gTotal = in.s.Sum()
}
func (in *aompDepInstance) Validate() error { return in.s.validate() }

// WeaveReport exposes the woven structure for the Table 2 tooling.
func (in *aompDepInstance) WeaveReport() []weaver.WovenMethod { return in.prog.Report() }

type parInstance struct {
	p       Params
	threads int
	s       *SOR
	opts    []parallel.Opt
}

// NewParallel returns the generic-algorithms version: each colour phase
// of each sweep is one parallel.ForRange over the rows — the region join
// is the inter-phase barrier, where the Aomp version holds one region
// open and weaves explicit barriers. Schedule Runtime matches the Aomp
// binding so -schedule sweeps cover both.
func NewParallel(p Params, threads int) harness.Instance {
	return &parInstance{p: p, threads: threads}
}

func (in *parInstance) Setup() {
	in.s = New(in.p)
	in.opts = []parallel.Opt{
		parallel.WithThreads(in.threads), parallel.WithSchedule(parallel.Runtime),
	}
}

func (in *parInstance) Kernel() {
	s := in.s
	for it := 0; it < s.iters; it++ {
		parallel.ForRange(0, s.m, func(lo, hi int) { s.RelaxColor(lo, hi, 1, 0) }, in.opts...)
		parallel.ForRange(0, s.m, func(lo, hi int) { s.RelaxColor(lo, hi, 1, 1) }, in.opts...)
	}
	s.gTotal = s.Sum()
}

func (in *parInstance) Validate() error { return in.s.validate() }
