package sor

import "testing"

// TestStaticWeaveEquivalence runs the red-black sweep through the dynamic
// weaver and through the statically woven entries (cmd/weavegen) and
// requires a bitwise-identical grid: the static backend must be an
// optimisation, never a semantic change.
func TestStaticWeaveEquivalence(t *testing.T) {
	dyn := NewAomp(SizeTest, 2).(*aompInstance)
	dyn.Setup()
	dyn.Kernel()
	if err := dyn.Validate(); err != nil {
		t.Fatalf("dynamic: %v", err)
	}

	st := NewAomp(SizeTest, 2).(*aompInstance)
	st.Setup()
	if err := st.UseStatic(); err != nil {
		t.Fatalf("UseStatic: %v", err)
	}
	st.Kernel()
	if err := st.Validate(); err != nil {
		t.Fatalf("static: %v", err)
	}

	if dyn.s.gTotal != st.s.gTotal {
		t.Fatalf("gTotal: dynamic %v, static %v", dyn.s.gTotal, st.s.gTotal)
	}
	for i := range dyn.s.g {
		for j := range dyn.s.g[i] {
			if dyn.s.g[i][j] != st.s.g[i][j] {
				t.Fatalf("grid [%d][%d]: dynamic %v, static %v", i, j, dyn.s.g[i][j], st.s.g[i][j])
			}
		}
	}
}
