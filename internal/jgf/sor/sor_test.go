package sor

import (
	"testing"

	"aomplib/internal/jgf/harness"
)

func runAll(t *testing.T, p Params, threads int) (*seqInstance, *mtInstance, *aompInstance) {
	t.Helper()
	seq := NewSeq(p).(*seqInstance)
	mt := NewMT(p, threads).(*mtInstance)
	ao := NewAomp(p, threads).(*aompInstance)
	for _, in := range []harness.Instance{seq, mt, ao} {
		in.Setup()
		in.Kernel()
		if err := in.Validate(); err != nil {
			t.Fatalf("validation: %v", err)
		}
	}
	return seq, mt, ao
}

func TestAllVersionsAgreeBitwise(t *testing.T) {
	// Red-black ordering makes parallel sweeps deterministic: every
	// version must produce the identical grid.
	seq, mt, ao := runAll(t, SizeTest, 3)
	for i := range seq.s.g {
		for j := range seq.s.g[i] {
			if seq.s.g[i][j] != mt.s.g[i][j] {
				t.Fatalf("MT grid differs at (%d,%d)", i, j)
			}
			if seq.s.g[i][j] != ao.s.g[i][j] {
				t.Fatalf("Aomp grid differs at (%d,%d)", i, j)
			}
		}
	}
	if seq.s.gTotal != mt.s.gTotal || seq.s.gTotal != ao.s.gTotal {
		t.Fatalf("checksums differ: %v %v %v", seq.s.gTotal, mt.s.gTotal, ao.s.gTotal)
	}
}

func TestConvergesTowardSmooth(t *testing.T) {
	// SOR smooths the random grid: the max-abs value must not grow.
	p := Params{M: 32, N: 32, Iters: 50}
	before := New(p)
	maxBefore := 0.0
	for i := range before.g {
		for _, v := range before.g[i] {
			if v > maxBefore {
				maxBefore = v
			}
		}
	}
	seq := NewSeq(p).(*seqInstance)
	seq.Setup()
	seq.Kernel()
	maxAfter := 0.0
	for i := 1; i < p.M-1; i++ {
		for j := 1; j < p.N-1; j++ {
			if v := seq.s.g[i][j]; v > maxAfter {
				maxAfter = v
			}
		}
	}
	if maxAfter > maxBefore*2 {
		t.Fatalf("relaxation diverged: %g -> %g", maxBefore, maxAfter)
	}
}

func TestBoundaryRowsUntouched(t *testing.T) {
	p := SizeTest
	ref := New(p)
	seq := NewSeq(p).(*seqInstance)
	seq.Setup()
	seq.Kernel()
	for j := range ref.g[0] {
		if seq.s.g[0][j] != ref.g[0][j] || seq.s.g[p.M-1][j] != ref.g[p.M-1][j] {
			t.Fatal("boundary row modified")
		}
	}
}

func TestSingleThreadAndOddRows(t *testing.T) {
	runAll(t, Params{M: 33, N: 17, Iters: 5}, 1)
	runAll(t, Params{M: 33, N: 17, Iters: 5}, 4)
}

var _ = harness.Seq // keep the harness import for runAll's signature

func TestDataflowVersionAgreesBitwise(t *testing.T) {
	// Within a colour phase all point updates are independent and each
	// point's update reads the same neighbour values regardless of block
	// interleaving (the dependence clauses keep neighbour blocks at most
	// one phase apart), so the dataflow grid matches sequential bit for
	// bit.
	for _, threads := range []int{1, 2, 4} {
		seq := NewSeq(SizeTest).(*seqInstance)
		seq.Setup()
		seq.Kernel()
		df := NewAompDep(SizeTest, threads).(*aompDepInstance)
		df.Setup()
		df.Kernel()
		if err := df.Validate(); err != nil {
			t.Fatalf("threads=%d: %v", threads, err)
		}
		if df.s.gTotal != seq.s.gTotal {
			t.Fatalf("threads=%d: checksum %v differs from sequential %v", threads, df.s.gTotal, seq.s.gTotal)
		}
		for i := range seq.s.g {
			for j := range seq.s.g[i] {
				if seq.s.g[i][j] != df.s.g[i][j] {
					t.Fatalf("threads=%d: grid differs at (%d,%d)", threads, i, j)
				}
			}
		}
	}
}
