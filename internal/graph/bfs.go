package graph

import (
	"sync/atomic"

	"aomplib/internal/core"
	"aomplib/internal/sched"
	"aomplib/internal/weaver"
)

// BFS is a level-synchronous breadth-first search: each round expands the
// current frontier in parallel, claiming unvisited vertices with
// compare-and-swap so a vertex is adopted by exactly one parent, and a
// barrier separates levels. Frontier sizes vary wildly on power-law
// graphs, making the expansion loop the second irregular kernel of the
// §VII study.
type BFS struct {
	g      *Graph
	source int

	// Dist[v] is the BFS level of v, or -1 if unreached.
	Dist []int32

	frontier, next []int32
	frontierLen    int
	nextLen        int64

	// levels counts completed rounds (diagnostics).
	levels int
}

// NewBFS prepares a traversal of g from source.
func NewBFS(g *Graph, source int) *BFS {
	b := &BFS{
		g: g, source: source,
		Dist:     make([]int32, g.N),
		frontier: make([]int32, g.N),
		next:     make([]int32, g.N),
	}
	for v := range b.Dist {
		b.Dist[v] = -1
	}
	b.Dist[source] = 0
	b.frontier[0] = int32(source)
	b.frontierLen = 1
	return b
}

// ExpandFrontier is the for method over frontier slots [lo,hi): every
// unvisited neighbour is claimed with CAS and appended to the next
// frontier through an atomic cursor. Claiming makes the result
// deterministic (the distance is the level regardless of which parent
// wins), so all schedules and thread counts agree.
func (b *BFS) ExpandFrontier(lo, hi, step int) {
	if lo >= hi {
		return
	}
	// All frontier vertices share a level; atomic load because failed CAS
	// attempts by other workers touch the same cells concurrently.
	level := atomic.LoadInt32(&b.Dist[b.frontier[lo]])
	for s := lo; s < hi; s += step {
		u := b.frontier[s]
		for e := b.g.RowStart[u]; e < b.g.RowStart[u+1]; e++ {
			w := int32(b.g.Adj[e])
			if atomic.CompareAndSwapInt32(&b.Dist[w], -1, level+1) {
				slot := atomic.AddInt64(&b.nextLen, 1) - 1
				b.next[slot] = w
			}
		}
	}
}

// AdvanceLevel swaps the frontiers (a master operation between barriers).
func (b *BFS) AdvanceLevel() {
	b.frontier, b.next = b.next, b.frontier
	b.frontierLen = int(b.nextLen)
	b.nextLen = 0
	b.levels++
}

// Done reports whether the frontier is empty.
func (b *BFS) Done() bool { return b.frontierLen == 0 }

// Levels returns the number of completed rounds.
func (b *BFS) Levels() int { return b.levels }

// RunSeq executes the unwoven traversal.
func (b *BFS) RunSeq() {
	for !b.Done() {
		b.ExpandFrontier(0, b.frontierLen, 1)
		b.AdvanceLevel()
	}
}

// Reached counts visited vertices.
func (b *BFS) Reached() int {
	n := 0
	for _, d := range b.Dist {
		if d >= 0 {
			n++
		}
	}
	return n
}

// BuildBFSAomp weaves the traversal: a parallel region over the level
// loop, a dynamically scheduled for over the frontier (frontier slots
// carry very uneven out-degrees) and a master+barrier level swap. The
// level loop condition reads frontierLen, which the master updates between
// barriers, so every worker iterates the same number of rounds.
func BuildBFSAomp(b *BFS, threads int, chunk int) (run func(), prog *weaver.Program) {
	prog = weaver.NewProgram("BFS")
	cls := prog.Class("BFS")

	expand := cls.ForProc("expandFrontier", b.ExpandFrontier)
	advance := cls.Proc("advanceLevel", b.AdvanceLevel)
	traverse := cls.Proc("traverse", func() {
		for !b.Done() {
			expand(0, b.frontierLen, 1)
			advance()
		}
	})

	prog.Use(core.ParallelRegion("call(* BFS.traverse(..))").Threads(threads))
	prog.Use(core.ForShare("call(* BFS.expandFrontier(..))").
		Schedule(sched.Dynamic).Chunk(chunk)) // implicit barrier after
	prog.Use(core.MasterSection("call(* BFS.advanceLevel(..))"))
	prog.Use(core.BarrierAfterPoint("call(* BFS.advanceLevel(..))"))
	prog.MustWeave()
	return traverse, prog
}
