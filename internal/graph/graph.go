// Package graph explores the paper's stated current work: "the
// investigation of the feasibility of this approach in more irregular
// algorithms (e.g., graph based)" (§VII). It provides a CSR directed
// graph with a power-law synthetic generator, plus PageRank and BFS
// kernels written as sequential base programs with for methods — the
// highly skewed per-vertex work is exactly the case where AOmpLib's
// pluggable scheduling policies (dynamic/guided vs static) matter.
package graph

import (
	"fmt"

	"aomplib/internal/rng"
)

// Graph is a directed graph in compressed sparse row form.
type Graph struct {
	// N is the vertex count.
	N int
	// RowStart[v]..RowStart[v+1] index Adj with v's out-neighbours.
	RowStart []int
	// Adj is the concatenated adjacency.
	Adj []int
	// OutDeg caches out-degrees (OutDeg[v] == RowStart[v+1]-RowStart[v]).
	OutDeg []int
}

// Edges returns the edge count.
func (g *Graph) Edges() int { return len(g.Adj) }

// Validate checks structural invariants.
func (g *Graph) Validate() error {
	if len(g.RowStart) != g.N+1 {
		return fmt.Errorf("graph: RowStart length %d, want %d", len(g.RowStart), g.N+1)
	}
	if g.RowStart[0] != 0 || g.RowStart[g.N] != len(g.Adj) {
		return fmt.Errorf("graph: RowStart bounds corrupt")
	}
	for v := 0; v < g.N; v++ {
		if g.RowStart[v] > g.RowStart[v+1] {
			return fmt.Errorf("graph: RowStart not monotone at %d", v)
		}
		if g.OutDeg[v] != g.RowStart[v+1]-g.RowStart[v] {
			return fmt.Errorf("graph: OutDeg[%d] inconsistent", v)
		}
	}
	for _, w := range g.Adj {
		if w < 0 || w >= g.N {
			return fmt.Errorf("graph: adjacency target %d out of range", w)
		}
	}
	return nil
}

// NewPowerLaw generates a deterministic directed graph with a skewed
// degree distribution: vertex v receives a share of the 2·avgDeg·n edge
// endpoints proportional to 1/(v+1) (a Zipf-like head), producing the
// hub-dominated row lengths that break static block scheduling.
func NewPowerLaw(n, avgDeg int, seed int64) *Graph {
	r := rng.New(seed)
	g := &Graph{N: n, RowStart: make([]int, n+1), OutDeg: make([]int, n)}
	edges := n * avgDeg
	// Zipf normalisation.
	var h float64
	for v := 1; v <= n; v++ {
		h += 1 / float64(v)
	}
	remaining := edges
	for v := 0; v < n && remaining > 0; v++ {
		share := int(float64(edges) / (float64(v+1) * h))
		if share < 1 {
			share = 1
		}
		if share > remaining {
			share = remaining
		}
		g.OutDeg[v] = share
		remaining -= share
	}
	// Any remainder lands on the tail uniformly.
	for remaining > 0 {
		g.OutDeg[int(r.NextIntN(int32(n)))]++
		remaining--
	}
	total := 0
	for v := 0; v < n; v++ {
		g.RowStart[v] = total
		total += g.OutDeg[v]
	}
	g.RowStart[n] = total
	g.Adj = make([]int, total)
	for v := 0; v < n; v++ {
		for e := g.RowStart[v]; e < g.RowStart[v+1]; e++ {
			g.Adj[e] = int(r.NextIntN(int32(n)))
		}
	}
	return g
}

// NewGrid generates an n×n grid graph (4-neighbourhood) — the regular
// counterpart used to contrast schedules.
func NewGrid(side int) *Graph {
	n := side * side
	g := &Graph{N: n, RowStart: make([]int, n+1), OutDeg: make([]int, n)}
	var adj []int
	at := func(r, c int) int { return r*side + c }
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			v := at(r, c)
			g.RowStart[v] = len(adj)
			if r > 0 {
				adj = append(adj, at(r-1, c))
			}
			if r < side-1 {
				adj = append(adj, at(r+1, c))
			}
			if c > 0 {
				adj = append(adj, at(r, c-1))
			}
			if c < side-1 {
				adj = append(adj, at(r, c+1))
			}
			g.OutDeg[v] = len(adj) - g.RowStart[v]
		}
	}
	g.RowStart[n] = len(adj)
	g.Adj = adj
	return g
}
