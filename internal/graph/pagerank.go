package graph

import (
	"math"

	"aomplib/internal/core"
	"aomplib/internal/sched"
	"aomplib/internal/weaver"
)

// PageRank computes the stationary rank vector by power iteration with
// damping d: rank'[v] = (1-d)/N + d·Σ_{u→v} rank[u]/outdeg(u), using the
// pull formulation over a reversed graph so each vertex writes only its
// own slot (work-shareable without synchronisation on the vector).
type PageRank struct {
	g       *Graph
	rev     *Graph // reversed edges: rev.Adj of v lists u with u→v
	damping float64
	iters   int

	rank, next []float64
	// danglingSum accumulates rank mass of zero-out-degree vertices per
	// iteration (a thread-local reduction target in the woven version).
	danglingSum float64
	// delta is the L1 change of the last iteration (convergence metric).
	delta float64
}

// NewPageRank prepares a run over g.
func NewPageRank(g *Graph, damping float64, iters int) *PageRank {
	pr := &PageRank{g: g, rev: reverse(g), damping: damping, iters: iters}
	pr.rank = make([]float64, g.N)
	pr.next = make([]float64, g.N)
	for v := range pr.rank {
		pr.rank[v] = 1 / float64(g.N)
	}
	return pr
}

func reverse(g *Graph) *Graph {
	rev := &Graph{N: g.N, RowStart: make([]int, g.N+1), OutDeg: make([]int, g.N)}
	for _, w := range g.Adj {
		rev.OutDeg[w]++
	}
	total := 0
	for v := 0; v < g.N; v++ {
		rev.RowStart[v] = total
		total += rev.OutDeg[v]
	}
	rev.RowStart[g.N] = total
	rev.Adj = make([]int, total)
	cursor := append([]int(nil), rev.RowStart[:g.N]...)
	for u := 0; u < g.N; u++ {
		for e := g.RowStart[u]; e < g.RowStart[u+1]; e++ {
			w := g.Adj[e]
			rev.Adj[cursor[w]] = u
			cursor[w]++
		}
	}
	return rev
}

// AccumulateDangling is the for method summing the rank of dangling
// vertices in [lo,hi) into the per-thread accumulator returned by acc.
func (pr *PageRank) AccumulateDangling(lo, hi, step int, acc *float64) {
	local := 0.0
	for v := lo; v < hi; v += step {
		if pr.g.OutDeg[v] == 0 {
			local += pr.rank[v]
		}
	}
	*acc += local
}

// UpdateRanks is the pull for method over vertices [lo,hi): per-vertex
// cost is the in-degree, which is wildly skewed on power-law graphs.
func (pr *PageRank) UpdateRanks(lo, hi, step int) {
	n := float64(pr.g.N)
	base := (1-pr.damping)/n + pr.damping*pr.danglingSum/n
	for v := lo; v < hi; v += step {
		sum := 0.0
		for e := pr.rev.RowStart[v]; e < pr.rev.RowStart[v+1]; e++ {
			u := pr.rev.Adj[e]
			sum += pr.rank[u] / float64(pr.g.OutDeg[u])
		}
		pr.next[v] = base + pr.damping*sum
	}
}

// FinishIteration swaps the vectors and records the L1 delta (master
// operation between barriers in the woven version).
func (pr *PageRank) FinishIteration() {
	d := 0.0
	for v := range pr.rank {
		d += math.Abs(pr.next[v] - pr.rank[v])
	}
	pr.delta = d
	pr.rank, pr.next = pr.next, pr.rank
	pr.danglingSum = 0
}

// RunSeq executes the unwoven base program.
func (pr *PageRank) RunSeq() {
	for it := 0; it < pr.iters; it++ {
		pr.AccumulateDangling(0, pr.g.N, 1, &pr.danglingSum)
		pr.UpdateRanks(0, pr.g.N, 1)
		pr.FinishIteration()
	}
}

// Ranks returns the current rank vector (not a copy).
func (pr *PageRank) Ranks() []float64 { return pr.rank }

// Delta returns the last iteration's L1 change.
func (pr *PageRank) Delta() float64 { return pr.delta }

// Sum returns the total rank mass (should stay ≈ 1).
func (pr *PageRank) Sum() float64 {
	s := 0.0
	for _, v := range pr.rank {
		s += v
	}
	return s
}

// BuildAomp weaves the PageRank base program: one parallel region over
// the iteration loop, a thread-local dangling accumulator with reduction,
// and a for over vertices with a selectable schedule — the experiment
// knob for irregular graphs.
func BuildAomp(pr *PageRank, threads int, kind sched.Kind, chunk int) (run func(), prog *weaver.Program) {
	prog = weaver.NewProgram("PageRank")
	cls := prog.Class("PageRank")

	acc := cls.ValueProc("danglingAcc", func() any { return &pr.danglingSum })
	dangling := cls.ForProc("accumulateDangling", func(lo, hi, step int) {
		pr.AccumulateDangling(lo, hi, step, acc().(*float64))
	})
	update := cls.ForProc("updateRanks", pr.UpdateRanks)
	finish := cls.Proc("finishIteration", pr.FinishIteration)
	iterate := cls.Proc("iterate", func() {
		for it := 0; it < pr.iters; it++ {
			dangling(0, pr.g.N, 1)
			update(0, pr.g.N, 1)
			finish()
		}
	})

	tl := core.NewThreadLocal("call(* PageRank.danglingAcc(..))", "dangling").
		InitFresh(func() any { return new(float64) })
	prog.Use(core.ParallelRegion("call(* PageRank.iterate(..))").Threads(threads))
	prog.Use(core.ForShare("call(* PageRank.accumulateDangling(..))").Named("DanglingFor"))
	prog.Use(core.ForShare("call(* PageRank.updateRanks(..))").Named("UpdateFor").
		Schedule(kind).Chunk(chunk))
	prog.Use(tl)
	// The dangling partials must be merged before UpdateRanks reads them.
	prog.Use(core.ReducePoint("call(* PageRank.updateRanks(..))", tl, func(local any) {
		pr.danglingSum += *(local.(*float64))
	}))
	prog.Use(core.BarrierAfterPoint("call(* PageRank.updateRanks(..)) || call(* PageRank.finishIteration(..))"))
	prog.Use(core.MasterSection("call(* PageRank.finishIteration(..))"))
	prog.MustWeave()

	return iterate, prog
}
