package graph

import (
	"math"
	"testing"
	"testing/quick"

	"aomplib/internal/sched"
)

func TestPowerLawStructure(t *testing.T) {
	g := NewPowerLaw(500, 8, 7)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Edges() < 500*8 {
		t.Fatalf("edges = %d, want ≥ %d", g.Edges(), 500*8)
	}
	// Skew: the top vertex must carry far more than the average degree.
	if g.OutDeg[0] < 4*8 {
		t.Fatalf("hub degree %d not skewed", g.OutDeg[0])
	}
}

func TestPowerLawDeterministic(t *testing.T) {
	a := NewPowerLaw(200, 4, 99)
	b := NewPowerLaw(200, 4, 99)
	for i := range a.Adj {
		if a.Adj[i] != b.Adj[i] {
			t.Fatal("same seed produced different graphs")
		}
	}
}

func TestGridStructure(t *testing.T) {
	g := NewGrid(10)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.N != 100 {
		t.Fatalf("n = %d", g.N)
	}
	// Interior vertices have degree 4, corners 2.
	if g.OutDeg[0] != 2 || g.OutDeg[11] != 4 {
		t.Fatalf("grid degrees wrong: corner %d, interior %d", g.OutDeg[0], g.OutDeg[11])
	}
	if g.Edges() != 2*2*10*9 {
		t.Fatalf("grid edges = %d, want %d", g.Edges(), 2*2*10*9)
	}
}

// Property: generated graphs always validate, for any size/degree/seed.
func TestGeneratorValidityProperty(t *testing.T) {
	f := func(n uint8, deg uint8, seed int16) bool {
		g := NewPowerLaw(int(n%64)+2, int(deg%8)+1, int64(seed))
		return g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestReversePreservesEdges(t *testing.T) {
	g := NewPowerLaw(100, 4, 3)
	rev := reverse(g)
	if rev.Edges() != g.Edges() {
		t.Fatalf("reverse edges %d != %d", rev.Edges(), g.Edges())
	}
	if err := rev.Validate(); err != nil {
		t.Fatal(err)
	}
	// Every edge u→w appears as w←u.
	type edge struct{ u, w int }
	fwd := map[edge]int{}
	for u := 0; u < g.N; u++ {
		for e := g.RowStart[u]; e < g.RowStart[u+1]; e++ {
			fwd[edge{u, g.Adj[e]}]++
		}
	}
	for w := 0; w < rev.N; w++ {
		for e := rev.RowStart[w]; e < rev.RowStart[w+1]; e++ {
			key := edge{rev.Adj[e], w}
			if fwd[key] == 0 {
				t.Fatalf("reversed edge %v missing forward", key)
			}
			fwd[key]--
		}
	}
}

func TestPageRankMassConserved(t *testing.T) {
	g := NewPowerLaw(400, 6, 11)
	pr := NewPageRank(g, 0.85, 30)
	pr.RunSeq()
	if s := pr.Sum(); math.Abs(s-1) > 1e-9 {
		t.Fatalf("rank mass = %v, want 1", s)
	}
	if pr.Delta() > 0.05 {
		t.Fatalf("power iteration not converging: delta %v", pr.Delta())
	}
}

func TestPageRankHubRanksHigh(t *testing.T) {
	// On the power-law graph, the hub (vertex 0) receives many in-links
	// via random targets? In-links are uniform; instead verify on a star:
	// centre of a star graph out-ranks the leaves.
	side := 31
	star := &Graph{N: side + 1, RowStart: make([]int, side+2), OutDeg: make([]int, side+1)}
	var adj []int
	// every leaf points at vertex 0
	star.RowStart[0] = 0 // vertex 0 has no out-edges
	for v := 1; v <= side; v++ {
		star.RowStart[v] = len(adj)
		adj = append(adj, 0)
		star.OutDeg[v] = 1
	}
	star.RowStart[side+1] = len(adj)
	star.Adj = adj
	if err := star.Validate(); err != nil {
		t.Fatal(err)
	}
	pr := NewPageRank(star, 0.85, 40)
	pr.RunSeq()
	for v := 1; v <= side; v++ {
		if pr.Ranks()[0] <= pr.Ranks()[v] {
			t.Fatalf("star centre rank %v not above leaf %v", pr.Ranks()[0], pr.Ranks()[v])
		}
	}
}

func TestAompMatchesSequentialAllSchedules(t *testing.T) {
	g := NewPowerLaw(600, 5, 21)
	ref := NewPageRank(g, 0.85, 15)
	ref.RunSeq()

	for _, cfg := range []struct {
		kind  sched.Kind
		chunk int
	}{
		{sched.StaticBlock, 0},
		{sched.StaticCyclic, 0},
		{sched.Dynamic, 16},
		{sched.Guided, 4},
	} {
		pr := NewPageRank(g, 0.85, 15)
		run, _ := BuildAomp(pr, 3, cfg.kind, cfg.chunk)
		run()
		for v := range ref.Ranks() {
			if math.Abs(pr.Ranks()[v]-ref.Ranks()[v]) > 1e-12 {
				t.Fatalf("%v: rank[%d] = %v, want %v", cfg.kind, v, pr.Ranks()[v], ref.Ranks()[v])
			}
		}
		if s := pr.Sum(); math.Abs(s-1) > 1e-9 {
			t.Fatalf("%v: mass %v", cfg.kind, s)
		}
	}
}

func TestDanglingMassHandled(t *testing.T) {
	// Two vertices: 0→1, 1 dangling. Without dangling redistribution the
	// mass leaks; with it, sum stays 1.
	g := &Graph{N: 2, RowStart: []int{0, 1, 1}, Adj: []int{1}, OutDeg: []int{1, 0}}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	pr := NewPageRank(g, 0.85, 50)
	pr.RunSeq()
	if s := pr.Sum(); math.Abs(s-1) > 1e-9 {
		t.Fatalf("dangling mass leaked: sum %v", s)
	}
}

func TestGridPageRankUniform(t *testing.T) {
	// On a symmetric 4-regular torus ranks would be uniform; on a grid,
	// interior symmetry still forces the centre ranks to match.
	g := NewGrid(9)
	pr := NewPageRank(g, 0.85, 60)
	pr.RunSeq()
	c1 := pr.Ranks()[4*9+4] // centre
	c2 := pr.Ranks()[4*9+4]
	if c1 != c2 {
		t.Fatal("unstable")
	}
	// Mirror symmetry: (1,1) vs (7,7).
	a, b := pr.Ranks()[1*9+1], pr.Ranks()[7*9+7]
	if math.Abs(a-b) > 1e-12 {
		t.Fatalf("symmetric vertices differ: %v vs %v", a, b)
	}
}
