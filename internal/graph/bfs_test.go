package graph

import (
	"testing"
)

func TestBFSGridDistances(t *testing.T) {
	// On a grid, BFS distance is the Manhattan distance from the source.
	side := 12
	g := NewGrid(side)
	b := NewBFS(g, 0)
	b.RunSeq()
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			want := int32(r + c)
			if got := b.Dist[r*side+c]; got != want {
				t.Fatalf("dist(%d,%d) = %d, want %d", r, c, got, want)
			}
		}
	}
	if b.Reached() != side*side {
		t.Fatalf("reached %d of %d", b.Reached(), side*side)
	}
	if b.Levels() != 2*side-1 {
		t.Fatalf("levels = %d, want %d", b.Levels(), 2*side-1)
	}
}

func TestBFSUnreachable(t *testing.T) {
	// Two-vertex graph with no edges: only the source is reached.
	g := &Graph{N: 2, RowStart: []int{0, 0, 0}, OutDeg: []int{0, 0}}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	b := NewBFS(g, 0)
	b.RunSeq()
	if b.Dist[0] != 0 || b.Dist[1] != -1 {
		t.Fatalf("dist = %v", b.Dist)
	}
}

func TestBFSAompMatchesSequential(t *testing.T) {
	g := NewPowerLaw(2000, 6, 5)
	ref := NewBFS(g, 0)
	ref.RunSeq()

	for _, threads := range []int{1, 2, 4} {
		b := NewBFS(g, 0)
		run, _ := BuildBFSAomp(b, threads, 16)
		run()
		for v := range ref.Dist {
			if b.Dist[v] != ref.Dist[v] {
				t.Fatalf("threads=%d: dist[%d] = %d, want %d", threads, v, b.Dist[v], ref.Dist[v])
			}
		}
		if b.Levels() != ref.Levels() {
			t.Fatalf("threads=%d: levels %d vs %d", threads, b.Levels(), ref.Levels())
		}
	}
}

func TestBFSTriangleInequality(t *testing.T) {
	// For every edge u→w with both reached: dist(w) ≤ dist(u)+1.
	g := NewPowerLaw(1500, 8, 17)
	b := NewBFS(g, 3)
	b.RunSeq()
	for u := 0; u < g.N; u++ {
		if b.Dist[u] < 0 {
			continue
		}
		for e := g.RowStart[u]; e < g.RowStart[u+1]; e++ {
			w := g.Adj[e]
			if b.Dist[w] < 0 || b.Dist[w] > b.Dist[u]+1 {
				t.Fatalf("edge %d(%d)→%d(%d) violates BFS property", u, b.Dist[u], w, b.Dist[w])
			}
		}
	}
}

func TestBFSWeaveReport(t *testing.T) {
	b := NewBFS(NewGrid(4), 0)
	_, prog := BuildBFSAomp(b, 2, 4)
	found := false
	for _, wm := range prog.Report() {
		for _, adv := range wm.Advice {
			if adv == "For/for(dynamic)" {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("dynamic for missing from weave report: %+v", prog.Report())
	}
}
