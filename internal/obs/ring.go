package obs

import (
	"runtime"
	"sync/atomic"
)

// EventKind tags one trace record.
type EventKind uint8

// Event kinds recorded by the built-in tracer. Begin/End pairs become
// nested duration slices in the Chrome export; the rest become instants,
// flow endpoints or derived spans (barrier waits).
const (
	EvRegionFork EventKind = iota + 1
	EvRegionJoin
	EvImplicitBegin
	EvImplicitEnd
	EvTeamLease
	EvTeamRetire
	EvTaskCreate
	EvTaskSchedule
	EvTaskComplete
	EvTaskInline
	EvStealSuccess
	EvBarrierArrive
	EvBarrierDepart
	EvDepRelease
	EvWorkBegin
	EvWorkEnd
	EvSpanBegin
	EvSpanEnd
)

// Event is one fixed-size trace record. Fields are kind-specific: Task
// carries a task trace id, an interned span name, or a victim worker id;
// Arg carries wait nanoseconds, team sizes, schedule kinds or hit flags.
// Records are plain data — workers write them into preallocated ring slots
// and the drain copies them out, so nothing here may hold a pointer.
type Event struct {
	When   int64 // ns since the trace epoch
	Team   uint64
	Task   uint64
	Arg    uint64
	Kind   EventKind
	Worker WorkerID
	Level  uint8
}

// ring is one worker's bounded event buffer. Appends are lock-free and
// allocation-free: a writer claims a slot with a CAS on next, writes the
// record, and drops the event (counted) when the buffer is full or a drain
// is in progress. The drain excludes writers without a lock: it raises
// draining, waits for the writers count to reach zero — every writer
// increments it before touching the buffer and decrements it after, so the
// final decrement's release pairs with the drain's acquire and orders all
// record writes before the drain's reads — then copies out [base, next)
// and advances base. Slot indices are claimed monotonically and masked
// into the buffer, so slots are reused ring-wise across drains; between
// two drains each live index maps to a distinct slot, which is what makes
// concurrent claimants write-disjoint.
type ring struct {
	buf  []Event
	mask uint64

	next     atomic.Uint64 // next slot index to claim (monotonic)
	base     atomic.Uint64 // drained watermark: live records are [base, next)
	writers  atomic.Int32  // writers past the draining check
	draining atomic.Bool
	dropped  atomic.Uint64
}

// newRing creates a ring with capacity rounded up to a power of two.
func newRing(capacity int) *ring {
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &ring{buf: make([]Event, n), mask: uint64(n - 1)}
}

// append records ev, reporting whether it was stored; a full ring or one
// being drained drops the event (counted) instead. Safe for concurrent
// writers — goroutines that inherited one worker's context, and distinct
// workers folded onto a shared ring, can emit concurrently.
func (r *ring) append(ev Event) bool {
	stored := false
	r.writers.Add(1)
	if r.draining.Load() {
		r.dropped.Add(1)
		r.writers.Add(-1)
		return false
	}
	for {
		i := r.next.Load()
		if i-r.base.Load() >= uint64(len(r.buf)) {
			r.dropped.Add(1)
			break
		}
		if r.next.CompareAndSwap(i, i+1) {
			r.buf[i&r.mask] = ev
			stored = true
			break
		}
	}
	r.writers.Add(-1)
	return stored
}

// drain removes and returns all buffered records in claim order. Emits
// racing with the drain are dropped (counted), never torn: the drain
// blocks new writers and waits out in-flight ones before reading.
func (r *ring) drain() []Event {
	r.draining.Store(true)
	for r.writers.Load() != 0 {
		runtime.Gosched()
	}
	base, next := r.base.Load(), r.next.Load()
	var out []Event
	if next > base {
		out = make([]Event, 0, next-base)
		for i := base; i < next; i++ {
			out = append(out, r.buf[i&r.mask])
		}
	}
	r.base.Store(next)
	r.draining.Store(false)
	return out
}

// snapshot copies out all buffered records in claim order without
// consuming them — the flight recorder's read: the window stays buffered
// for later triggers, aging out via trim instead of the drain. Writers
// are excluded (and drop, counted) exactly as in drain.
func (r *ring) snapshot() []Event {
	r.draining.Store(true)
	for r.writers.Load() != 0 {
		runtime.Gosched()
	}
	base, next := r.base.Load(), r.next.Load()
	var out []Event
	if next > base {
		out = make([]Event, 0, next-base)
		for i := base; i < next; i++ {
			out = append(out, r.buf[i&r.mask])
		}
	}
	r.draining.Store(false)
	return out
}

// trim advances base past records older than cutoff (When < cutoff) and,
// if the buffer is still fuller than maxLive records, past the oldest
// overflow — the flight recorder's aging pass, keeping the ring a bounded
// sliding window instead of a fill-once buffer. Runs under the same
// writer-exclusion handshake as drain; maxLive <= 0 skips the occupancy
// bound.
func (r *ring) trim(cutoff int64, maxLive int) {
	r.draining.Store(true)
	for r.writers.Load() != 0 {
		runtime.Gosched()
	}
	base, next := r.base.Load(), r.next.Load()
	for base < next && r.buf[base&r.mask].When < cutoff {
		base++
	}
	if maxLive > 0 && next-base > uint64(maxLive) {
		base = next - uint64(maxLive)
	}
	r.base.Store(base)
	r.draining.Store(false)
}

// reset discards buffered records and the drop counter (StartTrace).
func (r *ring) reset() {
	r.draining.Store(true)
	for r.writers.Load() != 0 {
		runtime.Gosched()
	}
	r.base.Store(r.next.Load())
	r.dropped.Store(0)
	r.draining.Store(false)
}

// len reports the number of buffered records (diagnostics/tests).
func (r *ring) len() int { return int(r.next.Load() - r.base.Load()) }
