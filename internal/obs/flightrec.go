package obs

import (
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Flight recorder: a continuously recording, bounded trace of the last few
// seconds. Where StartTrace/StopTrace capture a deliberate window, the
// flight recorder runs always-on once enabled, reusing the per-worker ring
// machinery with a background trimmer that ages records out of a sliding
// window — memory stays bounded by ring capacity regardless of uptime.
// When a trigger fires (a parallel region slower than a settable
// threshold, or a spike of admission rejections), the current window is
// snapshotted off the hot path into a frozen capture that
// WriteFlightSnapshot renders as Chrome trace JSON: the moments *leading
// up to* the anomaly, which an after-the-fact StartTrace can never show.

// flightRingCapacity sizes the recorder's per-worker rings. Smaller than
// the tracer's: the window trimmer keeps occupancy low, and the recorder
// is meant to stay enabled in production.
const flightRingCapacity = 1 << 12

// defaultFlightWindow is the record-retention window until
// SetFlightWindow overrides it.
const defaultFlightWindow = 5 * time.Second

// flightRecorder owns a private collector (its rings never mix with the
// tracer's) plus the trigger and trimmer state.
type flightRecorder struct {
	col *collector

	windowNs    atomic.Int64  // retention window
	latThreshNs atomic.Int64  // region-latency trigger; 0 disables
	rejectSpike atomic.Int64  // admission rejects per second to trigger; 0 disables
	rejectEpoch atomic.Int64  // current 1s epoch of the spike counter
	rejectCount atomic.Int64  // rejects observed in rejectEpoch
	triggered   atomic.Bool   // a trigger fired and its capture is pending/held
	triggerCnt  atomic.Uint64 // total triggers since the recorder was created

	// regionTimes pairs fork to join for the latency trigger — same lossy
	// table the metrics registry uses, private so the two never steal each
	// other's entries.
	regionTimes *pairTable

	// triggerC wakes the trimmer goroutine to capture immediately instead
	// of waiting out the tick. Capacity 1 + non-blocking send: the emit
	// path never parks.
	triggerC chan struct{}

	// capMu guards the frozen capture taken at trigger time.
	capMu      sync.Mutex
	capture    []Event
	captureWhy string

	// lifecycle of the trimmer goroutine.
	runMu sync.Mutex
	stopC chan struct{}
	doneC chan struct{}
}

func newFlightRecorder() *flightRecorder {
	f := &flightRecorder{
		col:         newCollector(flightRingCapacity, defaultMaxRings()),
		regionTimes: newPairTable(1024),
		triggerC:    make(chan struct{}, 1),
	}
	f.windowNs.Store(int64(defaultFlightWindow))
	return f
}

// trigger latches the trigger flag and wakes the trimmer to capture. The
// first trigger wins until WriteFlightSnapshot clears it — follow-on
// anomalies inside the same window do not re-snapshot over the evidence.
func (f *flightRecorder) trigger(why string) {
	f.triggerCnt.Add(1)
	if !f.triggered.CompareAndSwap(false, true) {
		return
	}
	f.capMu.Lock()
	f.captureWhy = why
	f.capMu.Unlock()
	select {
	case f.triggerC <- struct{}{}:
	default:
	}
}

// hooks wraps the private collector's recording hooks with the trigger
// probes: region fork/join pairing for the latency trigger and a per-second
// reject counter for the spike trigger.
func (f *flightRecorder) hooks() *Hooks {
	h := f.col.hooks()
	baseFork, baseJoin, baseReject := h.RegionFork, h.RegionJoin, h.AdmitReject
	h.RegionFork = func(master WorkerID, team uint64, level, size int) {
		baseFork(master, team, level, size)
		if f.latThreshNs.Load() > 0 {
			f.regionTimes.put(team, monotonicNs())
		}
	}
	h.RegionJoin = func(master WorkerID, team uint64, level int) {
		baseJoin(master, team, level)
		thresh := f.latThreshNs.Load()
		if thresh <= 0 {
			return
		}
		if t0, ok := f.regionTimes.take(team); ok && monotonicNs()-t0 > thresh {
			f.trigger("region latency over threshold")
		}
	}
	h.AdmitReject = func(tenant uint64, reason AdmitReason) {
		if baseReject != nil {
			baseReject(tenant, reason)
		}
		spike := f.rejectSpike.Load()
		if spike <= 0 {
			return
		}
		// Lossy 1s epoch counter: a rollover race can reset a concurrent
		// increment, undercounting by a few — fine for a spike detector.
		epoch := monotonicNs() / int64(time.Second)
		if e := f.rejectEpoch.Load(); e != epoch {
			if f.rejectEpoch.CompareAndSwap(e, epoch) {
				f.rejectCount.Store(0)
			}
		}
		if f.rejectCount.Add(1) >= spike {
			f.trigger("admission reject spike")
		}
	}
	return h
}

// snapshotWindow copies every ring's live records without consuming them,
// dropping records that aged past the window between trims.
func (f *flightRecorder) snapshotWindow() []Event {
	cutoff := f.col.now() - f.windowNs.Load()
	var out []Event
	for _, r := range *f.col.rings.Load() {
		for _, ev := range r.snapshot() {
			if ev.When >= cutoff {
				out = append(out, ev)
			}
		}
	}
	return out
}

// run is the trimmer goroutine: every quarter-window (clamped to
// [50ms, 1s]) it ages records out of the rings; on a trigger it freezes
// the window into the capture first, so the anomaly's lead-up survives
// any number of later trims.
func (f *flightRecorder) run(stopC, doneC chan struct{}) {
	defer close(doneC)
	interval := func() time.Duration {
		iv := time.Duration(f.windowNs.Load()) / 4
		if iv < 50*time.Millisecond {
			iv = 50 * time.Millisecond
		}
		if iv > time.Second {
			iv = time.Second
		}
		return iv
	}
	t := time.NewTimer(interval())
	defer t.Stop()
	for {
		select {
		case <-stopC:
			return
		case <-f.triggerC:
			snap := f.snapshotWindow()
			f.capMu.Lock()
			f.capture = snap
			f.capMu.Unlock()
		case <-t.C:
			cutoff := f.col.now() - f.windowNs.Load()
			for _, r := range *f.col.rings.Load() {
				r.trim(cutoff, 0)
			}
			t.Reset(interval())
		}
	}
}

// ------------------------------------------------------------ public API --

// flight is the process-wide recorder behind EnableFlight. Built lazily
// under installMu on first enable.
var flight *flightRecorder

// EnableFlight turns the flight recorder on or off and returns the
// previous setting. Enabled, the runtime's emit points continuously
// record into the recorder's private bounded rings; a background trimmer
// keeps only the last window (SetFlightWindow) and triggers — slow
// regions, admission reject spikes — freeze the window for
// WriteFlightSnapshot. The recorder composes with the tracer, the metrics
// registry and custom tools; its memory ceiling is rings x ring capacity,
// independent of uptime. Disabling stops recording and the trimmer but
// keeps any frozen capture readable.
func EnableFlight(on bool) bool {
	installMu.Lock()
	defer installMu.Unlock()
	prev := flightHooks != nil
	if on == prev {
		return prev
	}
	if on {
		if flight == nil {
			flight = newFlightRecorder()
		}
		flightHooks = flight.hooks()
		flight.col.start()
		flight.runMu.Lock()
		flight.stopC = make(chan struct{})
		flight.doneC = make(chan struct{})
		go flight.run(flight.stopC, flight.doneC)
		flight.runMu.Unlock()
	} else {
		flightHooks = nil
		flight.col.recording.Store(false)
		flight.runMu.Lock()
		close(flight.stopC)
		<-flight.doneC
		flight.runMu.Unlock()
	}
	rebuildActiveLocked()
	return prev
}

// FlightEnabled reports whether the flight recorder is recording.
func FlightEnabled() bool {
	installMu.Lock()
	defer installMu.Unlock()
	return flightHooks != nil
}

// SetFlightWindow sets the recorder's retention window — how far back
// WriteFlightSnapshot reaches — and returns the previous setting.
// Non-positive values are ignored. Records are also bounded by ring
// capacity, so a very long window on a very busy runtime retains less
// than asked.
func SetFlightWindow(d time.Duration) time.Duration {
	installMu.Lock()
	defer installMu.Unlock()
	if flight == nil {
		flight = newFlightRecorder()
	}
	prev := time.Duration(flight.windowNs.Load())
	if d > 0 {
		flight.windowNs.Store(int64(d))
	}
	return prev
}

// SetFlightRegionLatencyThreshold arms (or, with a non-positive value,
// disarms) the slow-region trigger: a parallel region whose fork-to-join
// latency exceeds d freezes the flight window. Returns the previous
// setting; zero means disarmed.
func SetFlightRegionLatencyThreshold(d time.Duration) time.Duration {
	installMu.Lock()
	defer installMu.Unlock()
	if flight == nil {
		flight = newFlightRecorder()
	}
	prev := time.Duration(flight.latThreshNs.Load())
	if d > 0 {
		flight.latThreshNs.Store(int64(d))
	} else {
		flight.latThreshNs.Store(0)
	}
	return prev
}

// SetFlightRejectSpike arms (or, with a non-positive value, disarms) the
// admission-rejection trigger: perSecond or more rejects inside one
// second freeze the flight window. Returns the previous setting; zero
// means disarmed.
func SetFlightRejectSpike(perSecond int) int {
	installMu.Lock()
	defer installMu.Unlock()
	if flight == nil {
		flight = newFlightRecorder()
	}
	prev := int(flight.rejectSpike.Load())
	if perSecond > 0 {
		flight.rejectSpike.Store(int64(perSecond))
	} else {
		flight.rejectSpike.Store(0)
	}
	return prev
}

// FlightTriggered reports whether a trigger has fired and its frozen
// capture is waiting to be read. WriteFlightSnapshot clears it.
func FlightTriggered() bool {
	installMu.Lock()
	f := flight
	installMu.Unlock()
	return f != nil && f.triggered.Load()
}

// WriteFlightSnapshot writes the flight recorder's view as Chrome
// trace-event JSON (load it at ui.perfetto.dev). If a trigger fired, the
// frozen capture from the trigger moment is written and the trigger is
// re-armed; otherwise the current live window is snapshotted
// non-destructively. triggered reports which case it was. Before the
// first EnableFlight it writes a valid empty trace.
func WriteFlightSnapshot(w io.Writer) (triggered bool, err error) {
	installMu.Lock()
	f := flight
	installMu.Unlock()
	if f == nil {
		installMu.Lock()
		if flight == nil {
			flight = newFlightRecorder()
		}
		f = flight
		installMu.Unlock()
	}
	var events []Event
	if f.triggered.Load() {
		f.capMu.Lock()
		events = f.capture
		f.capture = nil
		f.capMu.Unlock()
		triggered = events != nil
		if triggered {
			f.triggered.Store(false)
		}
	}
	if !triggered {
		// A trigger may have latched with its capture still in flight in
		// the trimmer goroutine; fall through to a live snapshot rather
		// than blocking the scrape.
		events = f.snapshotWindow()
	}
	return triggered, writeChromeTrace(w, f.col, events)
}
