package obs

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// The ring must fill to capacity, drop (and count) the overflow, and reuse
// its slots ring-wise across drains — wraparound is masked indexing over a
// monotonically claimed slot counter, so records land in previously
// drained slots without corruption.
func TestRingWraparoundAndDropAccounting(t *testing.T) {
	r := newRing(8)
	for i := 1; i <= 20; i++ {
		r.append(Event{Kind: EvTaskCreate, Task: uint64(i)})
	}
	if got := r.len(); got != 8 {
		t.Fatalf("ring holds %d records, want capacity 8", got)
	}
	if got := r.dropped.Load(); got != 12 {
		t.Fatalf("dropped = %d, want 12", got)
	}
	evs := r.drain()
	if len(evs) != 8 {
		t.Fatalf("drained %d records, want 8", len(evs))
	}
	for i, ev := range evs {
		if ev.Task != uint64(i+1) {
			t.Fatalf("record %d has task %d, want %d (oldest-first order)", i, ev.Task, i+1)
		}
	}

	// Slots are reused across drains: the next fill wraps the masked index
	// over the just-drained slots.
	for i := 100; i < 110; i++ {
		r.append(Event{Kind: EvTaskCreate, Task: uint64(i)})
	}
	evs = r.drain()
	if len(evs) != 8 {
		t.Fatalf("second drain got %d records, want 8", len(evs))
	}
	for i, ev := range evs {
		if ev.Task != uint64(100+i) {
			t.Fatalf("after wraparound record %d has task %d, want %d", i, ev.Task, 100+i)
		}
	}
	if got := r.dropped.Load(); got != 14 {
		t.Fatalf("dropped = %d, want 14", got)
	}
	if r.len() != 0 {
		t.Fatalf("ring not empty after drain: %d", r.len())
	}
}

func TestRingCapacityRoundsUp(t *testing.T) {
	r := newRing(9)
	if len(r.buf) != 16 {
		t.Fatalf("capacity = %d, want 16 (next power of two)", len(r.buf))
	}
}

// Drains racing with emitters must never tear a record or lose one
// unaccounted: every append either lands in some drain or bumps the drop
// counter. Run under -race this also proves the writers-counter handshake
// orders slot writes before drain reads.
func TestRingConcurrentDrainWhileEmitting(t *testing.T) {
	r := newRing(64)
	const writersN, perWriter = 4, 20000
	var (
		appended atomic.Uint64
		done     atomic.Int32
		wg       sync.WaitGroup
	)
	for g := 0; g < writersN; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer done.Add(1)
			for i := 0; i < perWriter; i++ {
				r.append(Event{Kind: EvTaskCreate, Task: appended.Add(1)})
			}
		}()
	}
	drained := 0
	seen := map[uint64]bool{}
	for done.Load() != writersN {
		if r.len() == 0 {
			// Back-to-back drains would keep the draining flag permanently
			// raised and shed every append; yield so writers get windows,
			// as a real StopTrace-style drain cadence does.
			runtime.Gosched()
			continue
		}
		for _, ev := range r.drain() {
			if ev.Kind != EvTaskCreate || ev.Task == 0 {
				t.Fatalf("torn record drained: %+v", ev)
			}
			if seen[ev.Task] {
				t.Fatalf("record %d drained twice", ev.Task)
			}
			seen[ev.Task] = true
			drained++
		}
	}
	wg.Wait()
	for _, ev := range r.drain() {
		if seen[ev.Task] {
			t.Fatalf("record %d drained twice", ev.Task)
		}
		seen[ev.Task] = true
		drained++
	}
	total := appended.Load()
	if got := uint64(drained) + r.dropped.Load(); got != total {
		t.Fatalf("accounting: drained %d + dropped %d = %d, want appended %d",
			drained, r.dropped.Load(), got, total)
	}
	if drained == 0 {
		t.Fatal("nothing drained — the test exercised only the drop path")
	}
}

// The collector must route events to per-worker rings, reset them on
// start, and survive hook calls from workers it has never seen.
func TestCollectorRoutingAndReset(t *testing.T) {
	c := newCollector(32, 128)
	h := c.hooks()
	c.start()
	h.TaskCreate(3, 1, TaskDeferred)
	h.TaskCreate(7, 2, TaskDeferred)
	h.TaskCreate(NoWorker, 3, TaskDeferred)
	if got := c.stats().TasksSpawned; got != 3 {
		t.Fatalf("TasksSpawned = %d, want 3", got)
	}
	evs := c.stop()
	if len(evs) != 3 {
		t.Fatalf("drained %d events, want 3", len(evs))
	}
	workers := map[WorkerID]bool{}
	for _, ev := range evs {
		workers[ev.Worker] = true
	}
	for _, w := range []WorkerID{3, 7, NoWorker} {
		if !workers[w] {
			t.Fatalf("no event for worker %d: %+v", w, evs)
		}
	}
	// start discards anything recorded since the stop.
	c.recording.Store(true)
	h.TaskCreate(3, 4, TaskDeferred)
	c.start()
	if evs := c.stop(); len(evs) != 0 {
		t.Fatalf("start did not discard stale records: %d left", len(evs))
	}
}

// The ring pool is bounded: workers beyond maxRings fold onto shared
// rings, so endless cold-spawned teams cannot allocate buffers forever —
// and folded workers still keep their own identity in the records.
func TestRingPoolBounded(t *testing.T) {
	c := newCollector(64, 4)
	h := c.hooks()
	c.start()
	const workers = 40
	for w := WorkerID(0); w < workers; w++ {
		h.TaskCreate(w, uint64(w)+1, TaskDeferred)
	}
	if n := len(*c.rings.Load()); n > 4 {
		t.Fatalf("ring pool grew to %d rings, bound is 4", n)
	}
	evs := c.stop()
	ids := map[WorkerID]bool{}
	for _, ev := range evs {
		ids[ev.Worker] = true
	}
	if len(ids) != workers {
		t.Fatalf("folded records kept %d distinct worker ids, want %d", len(ids), workers)
	}
}

// RingDrops must accumulate across StartTrace resets (unlike
// EventsDropped, which each reset zeroes), and the ring/fold accounting
// must report the pool's true shape.
func TestStatsRingAccounting(t *testing.T) {
	c := newCollector(8, 4)
	h := c.hooks()
	c.start()
	for i := 0; i < 20; i++ {
		h.TaskCreate(1, uint64(i+1), TaskDeferred) // capacity 8: 12 drops
	}
	st := c.stats()
	if st.EventsDropped != 12 || st.RingDrops != 12 {
		t.Fatalf("after overflow: EventsDropped=%d RingDrops=%d, want 12/12", st.EventsDropped, st.RingDrops)
	}
	c.start() // reset zeroes the live drop counters
	st = c.stats()
	if st.EventsDropped != 0 {
		t.Fatalf("EventsDropped survived the reset: %d", st.EventsDropped)
	}
	if st.RingDrops != 12 {
		t.Fatalf("RingDrops lost the pre-reset drops: %d, want 12", st.RingDrops)
	}
	for i := 0; i < 10; i++ {
		h.TaskCreate(1, uint64(i+1), TaskDeferred) // 2 more drops
	}
	if st = c.stats(); st.RingDrops != 14 {
		t.Fatalf("RingDrops = %d, want 14 (cumulative across traces)", st.RingDrops)
	}
	if st.TraceRings == 0 || st.TraceRings > 4 {
		t.Fatalf("TraceRings = %d, want 1..4", st.TraceRings)
	}
	if st.WorkersFolded != 0 {
		t.Fatalf("WorkersFolded = %d before any fold", st.WorkersFolded)
	}
	h.TaskCreate(10, 99, TaskDeferred) // idx 11 folds (bound 4)
	if st = c.stats(); st.WorkersFolded != 8 {
		t.Fatalf("WorkersFolded = %d, want 8 (raw indices 4..11 share rings)", st.WorkersFolded)
	}
}

func TestInternNameStable(t *testing.T) {
	c := newCollector(8, 128)
	a, b := c.intern("Demo.run"), c.intern("Demo.loop")
	if a == b {
		t.Fatal("distinct names share an id")
	}
	if c.intern("Demo.run") != a {
		t.Fatal("intern is not idempotent")
	}
	if c.spanName(a) != "Demo.run" || c.spanName(b) != "Demo.loop" {
		t.Fatalf("spanName round-trip failed: %q %q", c.spanName(a), c.spanName(b))
	}
	if c.spanName(999) == "" {
		t.Fatal("unknown id must resolve to a placeholder, not empty")
	}
}

// Overflow workers folding onto shared rings (maxRings exceeded) while
// drains race the emitters: the drop counters must reconcile exactly with
// what was emitted — every hook call either lands in some drain or bumps a
// ring's drop counter, and EventsRecorded counts precisely the stored
// ones. Run under -race in CI.
func TestCollectorFoldedConcurrentDrainReconciles(t *testing.T) {
	c := newCollector(64, 4) // 3 usable worker rings for 24 workers: heavy folding
	h := c.hooks()
	c.start()

	const workersN = 24
	const perWorker = 5000
	var next atomic.Uint64
	var done atomic.Int32
	var wg sync.WaitGroup
	for w := 0; w < workersN; w++ {
		wg.Add(1)
		go func(w WorkerID) {
			defer wg.Done()
			defer done.Add(1)
			for i := 0; i < perWorker; i++ {
				h.TaskCreate(w, next.Add(1), TaskDeferred)
			}
		}(WorkerID(w))
	}

	// Drain continuously while emitters run — the StopTrace cadence, but
	// without toggling recording so every emit is either stored or dropped.
	drained := 0
	seen := map[uint64]bool{}
	ids := map[WorkerID]bool{}
	drainAll := func() {
		for _, r := range *c.rings.Load() {
			for _, ev := range r.drain() {
				if ev.Kind != EvTaskCreate || ev.Task == 0 {
					t.Errorf("torn record drained: %+v", ev)
				}
				if seen[ev.Task] {
					t.Errorf("record %d drained twice", ev.Task)
				}
				seen[ev.Task] = true
				ids[ev.Worker] = true
				drained++
			}
		}
	}
	for done.Load() != workersN {
		drainAll()
		runtime.Gosched()
	}
	wg.Wait()
	drainAll()

	var dropped uint64
	for _, r := range *c.rings.Load() {
		dropped += r.dropped.Load()
	}
	emitted := next.Load()
	if got := uint64(drained) + dropped; got != emitted {
		t.Fatalf("accounting: drained %d + dropped %d = %d, want emitted %d",
			drained, dropped, got, emitted)
	}
	if stored := c.stats().EventsRecorded; stored != uint64(drained) {
		t.Fatalf("EventsRecorded = %d, but %d records were drained", stored, drained)
	}
	if n := len(*c.rings.Load()); n > 4 {
		t.Fatalf("ring pool grew to %d rings under folding, bound is 4", n)
	}

	// Quiesced phase: with the rings empty, one emit per worker must store
	// and keep its identity — folding shares buffer capacity, never worker
	// ids. (Which workers got stored during the racy phase above is
	// scheduler-dependent, so identity is asserted here deterministically.)
	ids = map[WorkerID]bool{}
	for w := 0; w < workersN; w++ {
		h.TaskCreate(WorkerID(w), next.Add(1), TaskDeferred)
	}
	for _, r := range *c.rings.Load() {
		for _, ev := range r.drain() {
			ids[ev.Worker] = true
		}
	}
	if len(ids) != workersN {
		t.Fatalf("folded records kept %d distinct worker ids, want %d", len(ids), workersN)
	}
}
