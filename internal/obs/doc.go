// Package obs is the runtime observability subsystem: an OMPT-style tool
// interface the rest of the runtime reports into. The runtime (internal/rt)
// carries emit points at every interesting transition — region fork/join,
// hot-team lease/retire, task create/schedule/complete, steal attempts,
// barrier waits, dependence releases, work-sharing encounters (including
// the parallel package's algorithm dispatch, which reports as ordinary
// work-sharing) — each guarded by a single atomic load of the published
// hook table. With no tool installed that load returns nil and the emit
// point is one predicted branch, so the runtime's allocation-free hot
// paths are unchanged.
//
// The package ships one built-in tool, the tracer: hook implementations
// that count events into an aggregate Stats snapshot and, while a trace is
// recording, append fixed-size records to per-worker ring buffers with no
// locks and no allocations on the emit path. A drain pass converts the
// records to Chrome trace-event JSON (loadable in Perfetto: one track per
// worker, nested phase slices, flow arrows from task spawn to task run and
// from dependence release to the released task).
//
// Custom tools install their own hook table with SetHooks, the OMPT
// analogue of registering a tool; the built-in tracer is installed with
// EnableTracing/StartTrace.
package obs
