package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"aomplib/internal/sched"
)

// Chrome trace-event export: the drain pass converts the fixed-size ring
// records into the Trace Event Format understood by Perfetto
// (ui.perfetto.dev) and chrome://tracing. Layout:
//
//   - one track (tid) per worker, named "worker N", plus a shared track
//     for events emitted outside any worker context;
//   - begin/end record pairs (implicit task, work-sharing, task execution,
//     user spans) become nested "X" duration slices — pairing is defensive,
//     so a trace cut mid-region still exports properly nested slices;
//   - barrier arrive/depart pairs become wait slices spanning the time the
//     worker was blocked;
//   - task spawn→run and dependence release→run become flow arrows;
//   - region fork/join, team lease/retire, steals and inline tasks become
//     instants.
//
// The export runs entirely off the hot path, after StopTrace has drained
// the rings.

const chromePid = 1

// chromeEvent is one entry of the traceEvents array.
type chromeEvent struct {
	Name string         `json:"name,omitempty"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	ID   uint64         `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON object format of the trace file.
type chromeTrace struct {
	TraceEvents     []chromeEvent  `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// trackID maps a worker to its Chrome thread id (tids must be positive;
// the NoWorker track gets tid 1, worker N gets tid N+2).
func trackID(w WorkerID) int { return int(w) + 2 }

func trackName(w WorkerID) string {
	if w == NoWorker {
		return "(outside regions)"
	}
	return fmt.Sprintf("worker %d", w)
}

// usec converts trace nanoseconds to the microsecond float ts Chrome uses.
func usec(ns int64) float64 { return float64(ns) / 1e3 }

// openSpan is one stack frame of the begin/end pairing. startNs keeps the
// exact begin time: durations are computed in integer nanoseconds and only
// then converted, so nested slices cannot leak past their parents through
// float rounding.
type openSpan struct {
	ev      chromeEvent // slice under construction; Ts set, Dur pending
	startNs int64
	end     EventKind // record kind that closes it
	key     uint64    // task id / span name id that must match (0 = any)
}

// writeChromeTrace converts drained records to trace JSON. c resolves
// interned span names and contributes the stats snapshot.
func writeChromeTrace(w io.Writer, c *collector, events []Event) error {
	byTrack := map[WorkerID][]Event{}
	var maxTs int64
	for _, ev := range events {
		byTrack[ev.Worker] = append(byTrack[ev.Worker], ev)
		if ev.When > maxTs {
			maxTs = ev.When
		}
	}

	// Pass 1: flow endpoints. A task's schedule record anchors the arrow
	// heads for its spawn and (if any) dependence-release arrows; arrows
	// are emitted only when both ends exist in the trace. Flow ids share
	// the task id space: spawn arrows use task<<1, release arrows task<<1|1.
	scheduled := map[uint64]bool{}
	released := map[uint64]bool{}
	for _, ev := range events {
		switch ev.Kind {
		case EvTaskSchedule:
			scheduled[ev.Task] = true
		case EvDepRelease:
			released[ev.Task] = true
		}
	}

	var out []chromeEvent
	out = append(out, chromeEvent{
		Name: "process_name", Ph: "M", Pid: chromePid,
		Args: map[string]any{"name": "aomplib runtime"},
	})

	var tracks []WorkerID
	for w := range byTrack {
		tracks = append(tracks, w)
	}
	sort.Slice(tracks, func(i, j int) bool { return tracks[i] < tracks[j] })

	for _, tr := range tracks {
		tid := trackID(tr)
		out = append(out,
			chromeEvent{Name: "thread_name", Ph: "M", Pid: chromePid, Tid: tid,
				Args: map[string]any{"name": trackName(tr)}},
			chromeEvent{Name: "thread_sort_index", Ph: "M", Pid: chromePid, Tid: tid,
				Args: map[string]any{"sort_index": tid}})

		evs := byTrack[tr]
		sort.SliceStable(evs, func(i, j int) bool { return evs[i].When < evs[j].When })

		var stack []openSpan
		push := func(ev chromeEvent, startNs int64, end EventKind, key uint64) {
			stack = append(stack, openSpan{ev: ev, startNs: startNs, end: end, key: key})
		}
		// close pops frames until one matching (kind, key); frames above
		// it — and, when no frame matches, nothing — are closed at ts.
		// Closing strictly from the top keeps every emitted slice properly
		// nested even when begins and ends were recorded unbalanced (trace
		// cut mid-construct, hooks toggled mid-region).
		closeSpan := func(kind EventKind, key uint64, ts int64) {
			match := -1
			for i := len(stack) - 1; i >= 0; i-- {
				if stack[i].end == kind && (stack[i].key == 0 || key == 0 || stack[i].key == key) {
					match = i
					break
				}
			}
			if match < 0 {
				return
			}
			for i := len(stack) - 1; i >= match; i-- {
				sp := stack[i]
				sp.ev.Dur = usec(max(ts-sp.startNs, 0))
				out = append(out, sp.ev)
			}
			stack = stack[:match]
		}

		for _, ev := range evs {
			ts := usec(ev.When)
			switch ev.Kind {
			case EvImplicitBegin:
				push(chromeEvent{Name: fmt.Sprintf("parallel L%d", ev.Level), Cat: "region",
					Ph: "X", Ts: ts, Pid: chromePid, Tid: tid,
					Args: map[string]any{"team": ev.Team, "level": ev.Level}}, ev.When, EvImplicitEnd, ev.Team)
			case EvImplicitEnd:
				closeSpan(EvImplicitEnd, ev.Team, ev.When)
			case EvWorkBegin:
				push(chromeEvent{Name: "for (" + sched.Kind(ev.Arg).String() + ")", Cat: "work",
					Ph: "X", Ts: ts, Pid: chromePid, Tid: tid}, ev.When, EvWorkEnd, ev.Team)
			case EvWorkEnd:
				closeSpan(EvWorkEnd, ev.Team, ev.When)
			case EvTaskSchedule:
				push(chromeEvent{Name: fmt.Sprintf("task %d", ev.Task), Cat: "task",
					Ph: "X", Ts: ts, Pid: chromePid, Tid: tid,
					Args: map[string]any{"task": ev.Task}}, ev.When, EvTaskComplete, ev.Task)
				// Arrow heads bind to this slice (bp "e": enclosing slice).
				out = append(out, chromeEvent{Name: "spawn", Cat: "taskflow", Ph: "f", BP: "e",
					Ts: ts, Pid: chromePid, Tid: tid, ID: ev.Task << 1})
				if released[ev.Task] {
					out = append(out, chromeEvent{Name: "dep release", Cat: "depflow", Ph: "f", BP: "e",
						Ts: ts, Pid: chromePid, Tid: tid, ID: ev.Task<<1 | 1})
				}
			case EvTaskComplete:
				closeSpan(EvTaskComplete, ev.Task, ev.When)
			case EvSpanBegin:
				push(chromeEvent{Name: c.spanName(uint32(ev.Task)), Cat: "span",
					Ph: "X", Ts: ts, Pid: chromePid, Tid: tid}, ev.When, EvSpanEnd, ev.Task)
			case EvSpanEnd:
				closeSpan(EvSpanEnd, ev.Task, ev.When)
			case EvBarrierArrive:
				push(chromeEvent{Name: "barrier", Cat: "barrier",
					Ph: "X", Ts: ts, Pid: chromePid, Tid: tid,
					Args: map[string]any{"team": ev.Team}}, ev.When, EvBarrierDepart, ev.Team)
			case EvBarrierDepart:
				closeSpan(EvBarrierDepart, ev.Team, ev.When)
			case EvTaskCreate:
				out = append(out, chromeEvent{Name: "spawn", Cat: "task", Ph: "i", S: "t",
					Ts: ts, Pid: chromePid, Tid: tid,
					Args: map[string]any{"task": ev.Task, "kind": TaskKind(ev.Arg).String()}})
				if scheduled[ev.Task] {
					out = append(out, chromeEvent{Name: "spawn", Cat: "taskflow", Ph: "s",
						Ts: ts, Pid: chromePid, Tid: tid, ID: ev.Task << 1})
				}
			case EvDepRelease:
				out = append(out, chromeEvent{Name: "dep release", Cat: "dep", Ph: "i", S: "t",
					Ts: ts, Pid: chromePid, Tid: tid, Args: map[string]any{"task": ev.Task}})
				if scheduled[ev.Task] {
					out = append(out, chromeEvent{Name: "dep release", Cat: "depflow", Ph: "s",
						Ts: ts, Pid: chromePid, Tid: tid, ID: ev.Task<<1 | 1})
				}
			case EvRegionFork:
				out = append(out, chromeEvent{Name: "region fork", Cat: "region", Ph: "i", S: "t",
					Ts: ts, Pid: chromePid, Tid: tid,
					Args: map[string]any{"team": ev.Team, "size": ev.Arg, "level": ev.Level}})
			case EvRegionJoin:
				out = append(out, chromeEvent{Name: "region join", Cat: "region", Ph: "i", S: "t",
					Ts: ts, Pid: chromePid, Tid: tid, Args: map[string]any{"team": ev.Team}})
			case EvTeamLease:
				hit := ev.Arg>>32 != 0
				out = append(out, chromeEvent{Name: "team lease", Cat: "pool", Ph: "i", S: "t",
					Ts: ts, Pid: chromePid, Tid: tid,
					Args: map[string]any{"team": ev.Team, "size": uint32(ev.Arg), "pool_hit": hit}})
			case EvTeamRetire:
				out = append(out, chromeEvent{Name: "team retire", Cat: "pool", Ph: "i", S: "t",
					Ts: ts, Pid: chromePid, Tid: tid, Args: map[string]any{"team": ev.Team}})
			case EvStealSuccess:
				out = append(out, chromeEvent{Name: "steal", Cat: "steal", Ph: "i", S: "t",
					Ts: ts, Pid: chromePid, Tid: tid,
					Args: map[string]any{"task": ev.Task, "victim": int32(uint32(ev.Arg))}})
			case EvTaskInline:
				out = append(out, chromeEvent{Name: "inline task", Cat: "task", Ph: "i", S: "t",
					Ts: ts, Pid: chromePid, Tid: tid, Args: map[string]any{"task": ev.Task}})
			}
		}
		// Close anything the trace cut off, at the trace end.
		for i := len(stack) - 1; i >= 0; i-- {
			sp := stack[i]
			sp.ev.Dur = usec(max(maxTs-sp.startNs, 0))
			out = append(out, sp.ev)
		}
	}

	st := c.stats()
	trace := chromeTrace{
		TraceEvents:     out,
		DisplayTimeUnit: "ms",
		OtherData: map[string]any{
			"tool":            "aomplib tracer",
			"events_recorded": st.EventsRecorded,
			"events_dropped":  st.EventsDropped,
			"tracks":          len(tracks),
		},
	}
	enc := json.NewEncoder(w)
	return enc.Encode(trace)
}

// String names a TaskKind for trace args.
func (k TaskKind) String() string {
	switch k {
	case TaskDeferred:
		return "deferred"
	case TaskFuture:
		return "future"
	case TaskDependent:
		return "dependent"
	case TaskFutureDependent:
		return "future+dependent"
	}
	return "unknown"
}
