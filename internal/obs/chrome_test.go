package obs

import (
	"bytes"
	"encoding/json"
	"sort"
	"testing"
)

// parsedEvent mirrors the subset of the Chrome trace-event fields the
// validations need.
type parsedEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Tid  int            `json:"tid"`
	ID   uint64         `json:"id"`
	Args map[string]any `json:"args"`
}

type parsedTrace struct {
	TraceEvents     []parsedEvent  `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData"`
}

func exportTrace(t *testing.T, c *collector, evs []Event) parsedTrace {
	t.Helper()
	var buf bytes.Buffer
	if err := writeChromeTrace(&buf, c, evs); err != nil {
		t.Fatalf("writeChromeTrace: %v", err)
	}
	var tr parsedTrace
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v\n%s", err, buf.String())
	}
	return tr
}

// checkNesting asserts that the "X" duration slices of every track are
// properly nested: any two slices on one track are either disjoint or one
// contains the other.
func checkNesting(t *testing.T, evs []parsedEvent) {
	t.Helper()
	const eps = 1e-6
	byTid := map[int][]parsedEvent{}
	for _, ev := range evs {
		if ev.Ph == "X" {
			byTid[ev.Tid] = append(byTid[ev.Tid], ev)
		}
	}
	for tid, spans := range byTid {
		sort.Slice(spans, func(i, j int) bool {
			if spans[i].Ts != spans[j].Ts {
				return spans[i].Ts < spans[j].Ts
			}
			return spans[i].Dur > spans[j].Dur // ties: container first
		})
		var stack []parsedEvent
		for _, sp := range spans {
			for len(stack) > 0 && stack[len(stack)-1].Ts+stack[len(stack)-1].Dur <= sp.Ts+eps {
				stack = stack[:len(stack)-1]
			}
			if len(stack) > 0 {
				top := stack[len(stack)-1]
				if sp.Ts+sp.Dur > top.Ts+top.Dur+eps {
					t.Fatalf("track %d: slice %q [%f,%f] partially overlaps %q [%f,%f]",
						tid, sp.Name, sp.Ts, sp.Ts+sp.Dur, top.Name, top.Ts, top.Ts+top.Dur)
				}
			}
			stack = append(stack, sp)
		}
	}
}

// A synthetic two-worker timeline with every record kind must export as
// valid JSON: named worker tracks, properly nested slices, and matched
// flow arrows for the task and its dependence release.
func TestChromeExportStructure(t *testing.T) {
	c := newCollector(256, 128)
	h := c.hooks()
	c.start()

	spanID := c.intern("Demo.run")
	h.TeamLease(NoWorker, 1, 2, true)
	h.RegionFork(0, 1, 1, 2)
	h.ImplicitBegin(0, 1, 1)
	h.ImplicitBegin(1, 1, 1)
	h.SpanBegin(0, spanID)
	h.WorkBegin(0, 1, 0)
	h.WorkEnd(0, 1)
	h.TaskCreate(0, 42, TaskDependent)
	h.DepRelease(0, 42)
	h.StealSuccess(1, 42, 0)
	h.TaskSchedule(1, 42)
	h.TaskComplete(1, 42)
	h.BarrierArrive(0, 1)
	h.BarrierDepart(0, 1, 1500)
	h.SpanEnd(0, spanID)
	h.ImplicitEnd(1, 1)
	h.ImplicitEnd(0, 1)
	h.RegionJoin(0, 1, 1)
	h.TeamRetire(1, 2)

	tr := exportTrace(t, c, c.stop())
	if tr.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", tr.DisplayTimeUnit)
	}

	names := map[string]bool{}
	var flowsS, flowsF []uint64
	xNames := map[string]bool{}
	for _, ev := range tr.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name == "thread_name" {
				names[ev.Args["name"].(string)] = true
			}
		case "s":
			flowsS = append(flowsS, ev.ID)
		case "f":
			flowsF = append(flowsF, ev.ID)
		case "X":
			xNames[ev.Name] = true
		}
	}
	for _, want := range []string{"worker 0", "worker 1", "(outside regions)"} {
		if !names[want] {
			t.Fatalf("missing track %q (have %v)", want, names)
		}
	}
	for _, want := range []string{"parallel L1", "Demo.run", "barrier", "task 42"} {
		if !xNames[want] {
			t.Fatalf("missing slice %q (have %v)", want, xNames)
		}
	}
	var spawnArrow, depArrow bool
	for _, s := range flowsS {
		for _, f := range flowsF {
			if s == f {
				if s&1 == 0 {
					spawnArrow = true // spawn arrows use id task<<1
				} else {
					depArrow = true // release arrows use id task<<1|1
				}
			}
		}
	}
	if !spawnArrow {
		t.Fatalf("no matched spawn flow arrow: starts %v finishes %v", flowsS, flowsF)
	}
	if !depArrow {
		t.Fatalf("no matched dependence-release flow arrow: starts %v finishes %v", flowsS, flowsF)
	}
	checkNesting(t, tr.TraceEvents)
}

// A trace cut mid-construct (begins without ends) must still export with
// every slice closed and properly nested.
func TestChromeExportClosesUnbalanced(t *testing.T) {
	c := newCollector(64, 128)
	h := c.hooks()
	c.start()
	h.ImplicitBegin(0, 1, 1)
	h.WorkBegin(0, 1, 0)
	h.TaskSchedule(0, 7)
	// deliberately no ends; one later event moves the trace clock forward
	h.TaskCreate(1, 8, TaskDeferred)

	tr := exportTrace(t, c, c.stop())
	x := 0
	for _, ev := range tr.TraceEvents {
		if ev.Ph == "X" {
			x++
			if ev.Dur <= 0 {
				t.Fatalf("unclosed slice %q exported without a duration", ev.Name)
			}
		}
	}
	if x != 3 {
		t.Fatalf("exported %d slices, want 3 (implicit, work, task)", x)
	}
	checkNesting(t, tr.TraceEvents)

	// Ends without begins are dropped, not mis-paired.
	c.start()
	h.WorkEnd(0, 1)
	h.TaskComplete(0, 9)
	tr = exportTrace(t, c, c.stop())
	for _, ev := range tr.TraceEvents {
		if ev.Ph == "X" {
			t.Fatalf("stray end exported a slice: %+v", ev)
		}
	}
}

// An empty trace must still be a valid, loadable file.
func TestChromeExportEmpty(t *testing.T) {
	c := newCollector(8, 128)
	tr := exportTrace(t, c, nil)
	if len(tr.TraceEvents) != 1 { // process_name metadata only
		t.Fatalf("empty trace has %d events, want 1", len(tr.TraceEvents))
	}
}
