package obs

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
)

// drive pushes one deterministic mix of samples through a registry's hook
// table, attributing them to worker w and tenant tn — the merge-
// determinism test runs it with different attributions and expects
// identical merged snapshots.
func drive(h *Hooks, w WorkerID, tn uint64, base uint64) {
	h.RegionFork(w, base+1, 0, 4)
	h.RegionJoin(w, base+1, 0)
	h.TaskCreate(w, base+2, TaskDeferred)
	h.TaskSchedule(w, base+2)
	h.TaskComplete(w, base+2)
	h.TaskInline(w, base+3)
	h.StealAttempt(w)
	h.StealSuccess(w, base+2, w+1)
	h.StealScan(w, 3)
	h.BarrierDepart(w, base+1, 1500)
	h.WorkBegin(w, base+1, 1)
	h.AdmitGrant(tn, 700)
	h.AdmitReject(tn, AdmitReasonTimeout)
}

// Merged snapshots must not depend on which worker (and thus which shard)
// recorded which sample: shard merging is plain addition. Region and
// spawn latencies are wall-clock deltas, so only their counts are
// compared; every other field must match bit for bit.
func TestMetricsShardMergeDeterminism(t *testing.T) {
	RegisterTenant(0, "det-t0")
	RegisterTenant(1, "det-t1")
	RegisterTenant(2, "det-t2")
	spreads := [][]WorkerID{
		{0, 0, 0, 0, 0, 0},        // all on one shard
		{0, 1, 2, 3, 4, 5},        // spread across shards
		{NoWorker, 9, 9, 2, 0, 5}, // shared ring slot + repeats
		{63, 64, 65, 0, 1, 2},     // beyond the shard bound: folded
	}
	normalize := func(s MetricsSnapshot) (MetricsSnapshot, uint64, uint64) {
		regionCnt, spawnCnt := s.RegionLatency.Count, s.SpawnLatency.Count
		s.RegionLatency = HistogramSnapshot{}
		s.SpawnLatency = HistogramSnapshot{}
		return s, regionCnt, spawnCnt
	}
	var want MetricsSnapshot
	var wantRegion, wantSpawn uint64
	for i, workers := range spreads {
		m := newMetricsRegistry(8)
		h := m.hooks()
		for j, w := range workers {
			drive(h, w, uint64(j%3), uint64(j)*10)
		}
		got, regionCnt, spawnCnt := normalize(m.snapshot())
		if i == 0 {
			want, wantRegion, wantSpawn = got, regionCnt, spawnCnt
			continue
		}
		if fmt.Sprintf("%+v", got) != fmt.Sprintf("%+v", want) {
			t.Fatalf("spread %d produced a different snapshot:\n got %+v\nwant %+v", i, got, want)
		}
		if regionCnt != wantRegion || spawnCnt != wantSpawn {
			t.Fatalf("spread %d latency counts differ: region %d/%d spawn %d/%d",
				i, regionCnt, wantRegion, spawnCnt, wantSpawn)
		}
	}
	if want.RegionEntries != 6 || want.TasksSpawned != 12 || want.TasksCompleted != 12 {
		t.Fatalf("counter totals wrong: %+v", want)
	}
	if wantRegion != 6 || want.BarrierWait.Count != 6 {
		t.Fatalf("histogram counts wrong: region=%d barrier=%d",
			wantRegion, want.BarrierWait.Count)
	}
}

// Histogram buckets are log2 by bit length; the boundary pins are the
// contract the exposition's le bounds depend on.
func TestHistogramBucketBoundaries(t *testing.T) {
	var h histShard
	for _, ns := range []int64{0, 1, 2, 3, 4, 1023, 1024, -5} {
		h.record(ns)
	}
	// Expected buckets: 0 -> b0; 1 -> b1; 2,3 -> b2; 4 -> b3;
	// 1023 -> b10; 1024 -> b11; -5 discarded.
	wantCounts := map[int]uint64{0: 1, 1: 1, 2: 2, 3: 1, 10: 1, 11: 1}
	for i := 0; i <= histSlots; i++ {
		if got := h.counts[i].Load(); got != wantCounts[i] {
			t.Fatalf("bucket %d (le %dns) = %d, want %d", i, bucketUpperNs(i), got, wantCounts[i])
		}
	}
	if got := h.sumNs.Load(); got != 0+1+2+3+4+1023+1024 {
		t.Fatalf("sum = %d, want %d (negative sample must be discarded)", got, 2057)
	}
	// Upper bounds: bucket i covers values with bit length i, so the
	// inclusive bound is 2^i - 1.
	for i, want := range map[int]int64{0: 0, 1: 1, 2: 3, 10: 1023, 11: 2047} {
		if got := bucketUpperNs(i); got != want {
			t.Fatalf("bucketUpperNs(%d) = %d, want %d", i, got, want)
		}
	}
	if bucketUpperNs(histSlots) != math.MaxInt64 {
		t.Fatal("overflow bucket must be unbounded")
	}

	// A sample beyond every finite bucket lands in the overflow slot.
	var o histShard
	o.record(math.MaxInt64)
	if o.counts[histSlots].Load() != 1 {
		t.Fatal("MaxInt64 sample missed the overflow bucket")
	}
}

// Snapshots racing with recorders must be safe (-race is the oracle) and
// the final quiesced snapshot exact.
func TestMetricsConcurrentRecordVsSnapshot(t *testing.T) {
	m := newMetricsRegistry(8)
	h := m.hooks()
	const goroutines, iters = 8, 3000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var snaps sync.WaitGroup
	snaps.Add(1)
	go func() {
		defer snaps.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := m.snapshot()
			if s.TasksCompleted > s.TasksSpawned {
				t.Error("completed ran ahead of spawned in a racing snapshot")
				return
			}
		}
	}()
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			w := WorkerID(g)
			for i := 0; i < iters; i++ {
				h.TaskCreate(w, uint64(g*iters+i+1), TaskDeferred)
				h.TaskComplete(w, uint64(g*iters+i+1))
				h.BarrierDepart(w, 1, int64(i))
				h.AdmitGrant(uint64(g), 0)
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	snaps.Wait()

	s := m.snapshot()
	const total = goroutines * iters
	if s.TasksSpawned != total || s.TasksCompleted != total {
		t.Fatalf("tasks: spawned=%d completed=%d, want %d", s.TasksSpawned, s.TasksCompleted, total)
	}
	if s.BarrierWait.Count != total {
		t.Fatalf("barrier histogram count = %d, want %d", s.BarrierWait.Count, total)
	}
	var admits uint64
	for _, tn := range s.Tenants {
		admits += tn.Admits
	}
	if admits != total {
		t.Fatalf("tenant admits sum = %d, want %d", admits, total)
	}
}

// The lossy pairing table must pair when unmolested, lose on collision,
// and never return another key's timestamp.
func TestPairTableLossyPairing(t *testing.T) {
	p := newPairTable(16)
	p.put(5, 100)
	if ns, ok := p.take(5); !ok || ns != 100 {
		t.Fatalf("take(5) = %d,%v want 100,true", ns, ok)
	}
	if _, ok := p.take(5); ok {
		t.Fatal("second take of the same key must miss")
	}
	// 5 and 5+16 collide; the later put owns the slot.
	p.put(5, 100)
	p.put(5+16, 200)
	if _, ok := p.take(5); ok {
		t.Fatal("overwritten key must miss, not alias the new entry")
	}
	if ns, ok := p.take(5 + 16); !ok || ns != 200 {
		t.Fatalf("surviving key lost: %d,%v", ns, ok)
	}
}

// Tenant ids beyond the table bound must aggregate on the overflow row.
func TestTenantOverflowRow(t *testing.T) {
	m := newMetricsRegistry(2)
	h := m.hooks()
	h.AdmitGrant(3, 0)
	h.AdmitGrant(maxMetricTenants+7, 0)
	h.AdmitGrant(maxMetricTenants+900, 0)
	s := m.snapshot()
	var other *TenantMetrics
	for i := range s.Tenants {
		if s.Tenants[i].Name == "_other" {
			other = &s.Tenants[i]
		}
	}
	if other == nil || other.Admits != 2 {
		t.Fatalf("overflow row missing or wrong: %+v", s.Tenants)
	}
}

// The registry's own exposition must satisfy its own strict lint, and
// counters must round-trip: values written are values parsed.
func TestExpositionRoundTrip(t *testing.T) {
	prevEnabled := EnableMetrics(true)
	defer EnableMetrics(prevEnabled)
	installMu.Lock()
	h := metricsHooks
	installMu.Unlock()

	RegisterTenant(242, "roundtrip-tenant")
	h.RegionFork(1, 777001, 0, 4)
	h.RegionJoin(1, 777001, 0)
	h.AdmitGrant(242, 900)
	h.WorkBegin(1, 777001, 0)

	var buf bytes.Buffer
	extra := Family{Name: "aomp_roundtrip_gauge", Help: "test gauge", Type: "gauge",
		Samples: []Sample{{Value: 12.5}}}
	if err := WriteMetricsText(&buf, extra); err != nil {
		t.Fatalf("WriteMetricsText: %v", err)
	}
	text := buf.String()
	if err := LintExposition(strings.NewReader(text)); err != nil {
		t.Fatalf("own exposition fails own lint: %v\n%s", err, text)
	}
	for _, want := range []string{
		"aomp_region_entries_total ",
		`aomp_tenant_admits_total{tenant="roundtrip-tenant"} `,
		`aomp_region_latency_seconds_bucket{le="+Inf"} `,
		"aomp_region_latency_seconds_count ",
		"aomp_roundtrip_gauge 12.5",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
}

// The lint is the CI oracle; it must reject the failure classes it
// exists to catch.
func TestLintRejections(t *testing.T) {
	cases := map[string]string{
		"duplicate sample": `# HELP aomp_x help
# TYPE aomp_x counter
aomp_x 1
aomp_x 2
`,
		"duplicate TYPE": `# TYPE aomp_x counter
# TYPE aomp_x counter
aomp_x 1
`,
		"TYPE after sample": `# TYPE aomp_x counter
aomp_x 1
# TYPE aomp_y counter
# TYPE aomp_x gauge
`,
		"undeclared family": `# TYPE aomp_x counter
aomp_y 1
`,
		"invalid metric name": `# TYPE aomp_x counter
0badname 1
`,
		"invalid label name": `# TYPE aomp_x counter
aomp_x{0bad="v"} 1
`,
		"unparseable value": `# TYPE aomp_x counter
aomp_x one
`,
		"histogram without +Inf": `# TYPE aomp_h histogram
aomp_h_bucket{le="0.5"} 1
aomp_h_count 1
`,
		"decreasing buckets": `# TYPE aomp_h histogram
aomp_h_bucket{le="0.5"} 5
aomp_h_bucket{le="1"} 3
aomp_h_bucket{le="+Inf"} 5
aomp_h_count 5
`,
		"count disagrees with +Inf": `# TYPE aomp_h histogram
aomp_h_bucket{le="+Inf"} 5
aomp_h_count 7
`,
	}
	for name, text := range cases {
		if err := LintExposition(strings.NewReader(text)); err == nil {
			t.Errorf("lint accepted %s:\n%s", name, text)
		}
	}
	good := `# HELP aomp_x fine
# TYPE aomp_x counter
aomp_x{a="1"} 1
aomp_x{a="2"} 2
`
	if err := LintExposition(strings.NewReader(good)); err != nil {
		t.Errorf("lint rejected valid exposition: %v", err)
	}
}

// The exposition must stay lint-clean whatever the registry's state —
// including the zero snapshot ReadMetrics fabricates before the first
// EnableMetrics (every histogram carries its +Inf bucket, never nils).
func TestZeroSnapshotWellFormed(t *testing.T) {
	s := ReadMetrics()
	for _, h := range []HistogramSnapshot{s.RegionLatency, s.BarrierWait, s.AdmitWait, s.SpawnLatency} {
		if len(h.Buckets) == 0 {
			t.Fatalf("histogram %q snapshot has no buckets (missing +Inf)", h.Name)
		}
		if h.Buckets[len(h.Buckets)-1].UpperNs != math.MaxInt64 {
			t.Fatalf("histogram %q last bucket is not +Inf", h.Name)
		}
	}
	var buf bytes.Buffer
	if err := WriteMetricsText(&buf); err != nil {
		t.Fatalf("WriteMetricsText on zero registry: %v", err)
	}
	if err := LintExposition(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("zero exposition fails lint: %v\n%s", err, buf.String())
	}
}

// Hook composition: with two consumers installed the published table must
// fan every event out to both; dropping back to one must publish that
// table directly; dropping to zero must publish nil.
func TestHookSlotComposition(t *testing.T) {
	var toolForks int
	prevTool := SetHooks(&Hooks{
		RegionFork: func(WorkerID, uint64, int, int) { toolForks++ },
	})
	defer SetHooks(prevTool)
	prevMetrics := EnableMetrics(true)
	defer EnableMetrics(prevMetrics)

	before := ReadMetrics().RegionEntries
	h := Active()
	if h == nil {
		t.Fatal("active table nil with two consumers installed")
	}
	h.RegionFork(0, 888001, 0, 2)
	if toolForks != 1 {
		t.Fatalf("custom tool missed the fanned-out event (forks=%d)", toolForks)
	}
	if got := ReadMetrics().RegionEntries; got != before+1 {
		t.Fatalf("metrics missed the fanned-out event (%d -> %d)", before, got)
	}

	EnableMetrics(false)
	if Active() == nil || Active().RegionFork == nil {
		t.Fatal("tool slot lost when metrics disabled")
	}
	Active().RegionFork(0, 888002, 0, 2)
	if toolForks != 2 {
		t.Fatalf("tool stopped receiving after metrics disabled (forks=%d)", toolForks)
	}
	if got := ReadMetrics().RegionEntries; got != before+1 {
		t.Fatalf("metrics kept counting while disabled (%d)", got)
	}
}
