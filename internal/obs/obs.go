package obs

import "sync/atomic"

// WorkerID is a process-unique worker identity, stable for the lifetime of
// the worker (hot-team workers keep theirs across leases). It names the
// trace track events land on. NoWorker marks events emitted outside any
// worker context (sequential code, rescue goroutines).
type WorkerID int32

// NoWorker is the WorkerID of emit points outside any parallel region.
const NoWorker WorkerID = -1

// AdmitReason classifies why an admission-controlled region entry was
// refused a team lease and degraded to serialized execution.
type AdmitReason uint8

// Admission refusal reasons: the reject policy refused immediately, the
// bounded wait queue was full, or a queued wait hit its timeout.
const (
	AdmitReasonPolicy AdmitReason = iota
	AdmitReasonQueueFull
	AdmitReasonTimeout
)

// TaskKind classifies task creation events.
type TaskKind uint8

// Task kinds: deferred deque tasks (@Task), future-backed tasks
// (@FutureTask), and their dependence-clause variants (@Depend).
const (
	TaskDeferred TaskKind = iota
	TaskFuture
	TaskDependent
	TaskFutureDependent
)

// Hooks is the tool interface: one callback per runtime event, in the
// spirit of OpenMP's OMPT. Nil entries are skipped by the emit points, so
// a tool implements only what it needs. Callbacks run inline on the
// emitting goroutine — often inside the runtime's hottest loops — and must
// not block, allocate, or re-enter the runtime.
type Hooks struct {
	// RegionFork fires on the master as a parallel region starts, before
	// any worker wakes; RegionJoin fires after the region fully joined.
	RegionFork func(master WorkerID, team uint64, level, size int)
	RegionJoin func(master WorkerID, team uint64, level int)

	// ImplicitBegin/ImplicitEnd bracket one worker's share of a region
	// entry (OMPT's implicit task): every worker of the team fires the
	// pair, master included.
	ImplicitBegin func(w WorkerID, team uint64, level int)
	ImplicitEnd   func(w WorkerID, team uint64)

	// TeamLease fires when a region entry obtains its team — hit reports
	// whether the hot-team pool served it; TeamRetire fires when a team is
	// destroyed (panic retirement, eviction, pool drain).
	TeamLease  func(w WorkerID, team uint64, size int, hit bool)
	TeamRetire func(team uint64, size int)

	// Multi-tenant admission (rt server mode). AdmitEnqueue fires when a
	// region entry starts waiting for a team lease; depth is the wait-queue
	// depth including the new waiter. AdmitGrant fires when an entry is
	// granted a lease — waitNs is zero for uncontended grants and the
	// queue-wait time otherwise; tenant is the rt-assigned tenant id
	// (rt.AdmissionStats maps ids to names). AdmitReject fires when an
	// entry is refused a lease and degrades to serialized execution.
	// All three fire on the entering goroutine, outside any worker context.
	AdmitEnqueue func(tenant uint64, depth int)
	AdmitGrant   func(tenant uint64, waitNs int64)
	AdmitReject  func(tenant uint64, reason AdmitReason)

	// TaskCreate fires when a task is queued on a deque or parked in the
	// dependence tracker; TaskSchedule/TaskComplete bracket its execution
	// (on the executing worker, which may differ from the spawner);
	// TaskInline fires instead of the triple for tasks that never enter a
	// deque — out-of-region spawns running on their own goroutines.
	TaskCreate   func(w WorkerID, task uint64, kind TaskKind)
	TaskSchedule func(w WorkerID, task uint64)
	TaskComplete func(w WorkerID, task uint64)
	TaskInline   func(w WorkerID, task uint64)

	// StealAttempt fires when a worker with an empty deque starts probing
	// its siblings; StealSuccess fires when a probe takes a task.
	StealAttempt func(w WorkerID)
	StealSuccess func(w WorkerID, task uint64, victim WorkerID)

	// StealScan fires when a loop-range steal scan completes — successful
	// or fruitless — carrying the number of sibling slots probed, so
	// victim-selection quality (probes per steal) is observable.
	StealScan func(w WorkerID, probes int)

	// LoopRate fires as a worker finishes its share of a work-sharing
	// construct encounter, carrying the iterations it executed and the
	// nanoseconds they took. It feeds the per-worker throughput counters
	// behind ReadWorkerRates — the cheap, drain-free view schedulers and
	// dashboards watch for worker asymmetry.
	LoopRate func(w WorkerID, iters, elapsedNs int64)

	// BarrierArrive fires as a worker reaches a team barrier;
	// BarrierDepart fires as it is released, carrying the nanoseconds the
	// worker spent waiting.
	BarrierArrive func(w WorkerID, team uint64)
	BarrierDepart func(w WorkerID, team uint64, waitNs int64)

	// DepRelease fires when the retirement of a task's last predecessor
	// releases a parked dependent task to a deque.
	DepRelease func(w WorkerID, task uint64)

	// WorkBegin/WorkEnd bracket one worker's share of a work-sharing
	// construct encounter (@For); kind is the resolved sched.Kind.
	WorkBegin func(w WorkerID, team uint64, kind uint8)
	WorkEnd   func(w WorkerID, team uint64)

	// SpanBegin/SpanEnd bracket a user-defined span — the TraceSpans
	// aspect emits them around matched method calls. name is an id
	// interned with InternName.
	SpanBegin func(w WorkerID, name uint32)
	SpanEnd   func(w WorkerID, name uint32)
}

// active is the published hook table. One atomic load decides the disabled
// path, so emit points cost a predicted branch when no tool is installed.
var active atomic.Pointer[Hooks]

// Active returns the installed hook table, or nil when observability is
// off. Runtime emit points call this once and skip everything on nil.
func Active() *Hooks { return active.Load() }

// SetHooks installs a custom tool's hook table (nil uninstalls), returning
// the previous occupant of the tool slot (the custom table or the built-in
// tracer it replaces). The table must not be mutated after installation —
// publish a fresh one instead. A custom tool shares the tool slot with the
// built-in tracer exactly as before, but composes freely with the metrics
// registry and the flight recorder: events fan out to every enabled
// consumer.
func SetHooks(h *Hooks) *Hooks {
	installMu.Lock()
	defer installMu.Unlock()
	prev := toolHooks
	toolHooks = h
	rebuildActiveLocked()
	return prev
}
