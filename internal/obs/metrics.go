package obs

import (
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"

	"aomplib/internal/sched"
)

// Always-on production metrics. Where the tracer buffers a timeline for
// post-hoc inspection, the metrics registry keeps cheap cumulative
// aggregates a monitoring system scrapes continuously: counters and
// log-bucketed histograms fed from the same hook emit points the tracer
// uses. The registry is sized and allocated up front, so the enabled
// record path touches only preallocated padded atomics — no allocation,
// no locks — and the disabled path is the hook table's usual one atomic
// load and predicted branch.
//
// Shard discipline: every per-worker metric is striped across
// cache-line-isolated shards indexed by the emitting WorkerID, folded
// modulo the shard bound exactly like the tracer's rings, so two workers
// never contend on a line in steady state. Snapshots merge shards with
// plain addition — commutative, so the merged totals are independent of
// which worker's samples landed on which shard.

// histSlots is the number of log2 latency buckets: bucket i counts
// samples whose nanosecond value has bit length i (2^(i-1) <= v < 2^i;
// bucket 0 counts zeros). 40 buckets cover 1ns to ~550s; larger samples
// land in the overflow bucket, rendered as +Inf.
const histSlots = 40

// histShard is one worker's slice of a histogram: bucket counts plus a
// nanosecond sum, all plain atomics owned (in steady state) by a single
// worker.
type histShard struct {
	counts   [histSlots + 1]atomic.Uint64 // [histSlots] is the overflow bucket
	sumNs    atomic.Uint64
	_padding [24]byte
}

// record files one nanosecond sample. Negative samples (clock anomalies,
// mispaired lossy lookups) are discarded rather than wrapped.
func (h *histShard) record(ns int64) {
	if ns < 0 {
		return
	}
	b := bits.Len64(uint64(ns))
	if b > histSlots {
		b = histSlots
	}
	h.counts[b].Add(1)
	h.sumNs.Add(uint64(ns))
}

// bucketUpperNs returns the inclusive nanosecond upper bound of bucket i
// (the Prometheus `le` value); the overflow bucket has no finite bound.
func bucketUpperNs(i int) int64 {
	if i >= histSlots {
		return math.MaxInt64
	}
	return int64(1)<<uint(i) - 1
}

// schedKinds bounds the per-schedule loop-share counter vector. Larger
// kind values (future schedules, corrupt emits) fold onto the last slot.
const schedKinds = 16

// metricShard is one worker's slice of every sharded metric, padded so
// two shards never share a cache line head or tail.
type metricShard struct {
	regionEntries  atomic.Uint64
	barrierWaits   atomic.Uint64
	stealAttempts  atomic.Uint64
	steals         atomic.Uint64
	stealProbes    atomic.Uint64
	tasksSpawned   atomic.Uint64
	tasksCompleted atomic.Uint64
	loopShares     [schedKinds]atomic.Uint64

	regionLat   histShard
	barrierWait histShard
	spawnLat    histShard
	_padding    [64]byte
}

// maxMetricTenants bounds the per-tenant counter table. Tenant ids are
// assigned sequentially by the admission controller; ids beyond the bound
// aggregate on the overflow row, exported with the tenant label "_other".
const maxMetricTenants = 256

// tenantShard is one tenant's admission counters. Admission events fire
// on entering goroutines outside any worker context, so these are keyed
// by tenant, not by worker.
type tenantShard struct {
	admits   atomic.Uint64
	queued   atomic.Uint64
	rejects  atomic.Uint64
	timeouts atomic.Uint64
}

// pairSlot is one entry of a lossy open-addressed pairing table (see
// pairTable).
type pairSlot struct {
	key atomic.Uint64
	ns  atomic.Uint64
}

// pairTable matches begin events to end events across goroutines without
// allocating: begin stores (key, timestamp) at key&mask, end claims the
// slot back if the key still matches. Collisions overwrite — the table is
// a sampling device for histograms, not an exact join — and a claim whose
// key was overwritten simply contributes no sample. Keys are runtime
// trace ids (teams, tasks), which start at 1, so 0 means empty.
type pairTable struct {
	slots []pairSlot
	mask  uint64
}

func newPairTable(capacity int) *pairTable {
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &pairTable{slots: make([]pairSlot, n), mask: uint64(n - 1)}
}

// put files the begin timestamp for key. The ns store is ordered before
// the key store (Go atomics are sequentially consistent), so a take that
// observes the key observes its timestamp.
func (p *pairTable) put(key uint64, ns int64) {
	s := &p.slots[key&p.mask]
	s.ns.Store(uint64(ns))
	s.key.Store(key)
}

// take claims the begin timestamp for key, reporting whether the slot
// still held it (false after a collision overwrote the entry).
func (p *pairTable) take(key uint64) (int64, bool) {
	s := &p.slots[key&p.mask]
	if s.key.Load() != key {
		return 0, false
	}
	ns := int64(s.ns.Load())
	if !s.key.CompareAndSwap(key, 0) {
		return 0, false
	}
	return ns, true
}

// metricsRegistry is the process-wide metrics state. All storage is
// allocated at construction; the record path only indexes into it.
type metricsRegistry struct {
	shards  []metricShard
	tenants [maxMetricTenants + 1]tenantShard // [maxMetricTenants] is the overflow row

	// admitWait is recorded on entering goroutines (no worker identity);
	// a single shard keeps it simple — the admission path already takes
	// the controller mutex, so one more shared line is not the bottleneck.
	admitWait histShard

	regionTimes *pairTable // team tid -> region fork ns
	spawnTimes  *pairTable // task trace id -> spawn ns
}

func newMetricsRegistry(shards int) *metricsRegistry {
	if shards < 2 {
		shards = 2
	}
	return &metricsRegistry{
		shards:      make([]metricShard, shards),
		regionTimes: newPairTable(1024),
		spawnTimes:  newPairTable(4096),
	}
}

// shard folds a WorkerID onto its metric shard, exactly like the tracer
// folds rings: index 0 belongs to NoWorker, workers beyond the bound
// share the tail slots.
func (m *metricsRegistry) shard(w WorkerID) *metricShard {
	idx := int(w) + 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(m.shards) {
		idx = 1 + (idx-1)%(len(m.shards)-1)
	}
	return &m.shards[idx]
}

// tenant folds a tenant id onto its counter row.
func (m *metricsRegistry) tenant(id uint64) *tenantShard {
	if id < maxMetricTenants {
		return &m.tenants[id]
	}
	return &m.tenants[maxMetricTenants]
}

// hooks builds the registry's hook table: bound closures created once at
// enable time, so the record path allocates nothing.
func (m *metricsRegistry) hooks() *Hooks {
	return &Hooks{
		RegionFork: func(master WorkerID, team uint64, level, size int) {
			m.shard(master).regionEntries.Add(1)
			m.regionTimes.put(team, monotonicNs())
		},
		RegionJoin: func(master WorkerID, team uint64, level int) {
			if t0, ok := m.regionTimes.take(team); ok {
				m.shard(master).regionLat.record(monotonicNs() - t0)
			}
		},
		TaskCreate: func(w WorkerID, task uint64, kind TaskKind) {
			m.shard(w).tasksSpawned.Add(1)
			m.spawnTimes.put(task, monotonicNs())
		},
		TaskSchedule: func(w WorkerID, task uint64) {
			if t0, ok := m.spawnTimes.take(task); ok {
				m.shard(w).spawnLat.record(monotonicNs() - t0)
			}
		},
		TaskComplete: func(w WorkerID, task uint64) {
			m.shard(w).tasksCompleted.Add(1)
		},
		TaskInline: func(w WorkerID, task uint64) {
			m.shard(w).tasksSpawned.Add(1)
			m.shard(w).tasksCompleted.Add(1)
		},
		StealAttempt: func(w WorkerID) {
			m.shard(w).stealAttempts.Add(1)
		},
		StealSuccess: func(w WorkerID, task uint64, victim WorkerID) {
			m.shard(w).steals.Add(1)
		},
		StealScan: func(w WorkerID, probes int) {
			m.shard(w).stealProbes.Add(uint64(probes))
		},
		BarrierDepart: func(w WorkerID, team uint64, waitNs int64) {
			s := m.shard(w)
			s.barrierWaits.Add(1)
			s.barrierWait.record(waitNs)
		},
		WorkBegin: func(w WorkerID, team uint64, kind uint8) {
			k := int(kind)
			if k >= schedKinds {
				k = schedKinds - 1
			}
			m.shard(w).loopShares[k].Add(1)
		},
		AdmitGrant: func(tenant uint64, waitNs int64) {
			t := m.tenant(tenant)
			t.admits.Add(1)
			if waitNs > 0 {
				t.queued.Add(1)
			}
			m.admitWait.record(waitNs)
		},
		AdmitReject: func(tenant uint64, reason AdmitReason) {
			t := m.tenant(tenant)
			t.rejects.Add(1)
			if reason == AdmitReasonTimeout {
				t.timeouts.Add(1)
			}
		},
	}
}

// ------------------------------------------------------- snapshot types --

// HistogramBucket is one cumulative bucket of a HistogramSnapshot:
// the count of samples at or below UpperNs nanoseconds. The overflow
// bucket carries UpperNs == math.MaxInt64 and equals Count.
type HistogramBucket struct {
	UpperNs int64  `json:"upper_ns"`
	Count   uint64 `json:"count"`
}

// HistogramSnapshot is one merged histogram: total sample count, total
// nanoseconds, and cumulative log2 buckets up to the highest occupied
// one (the overflow bucket is always last). Merging the per-worker
// shards is plain addition, so the snapshot is deterministic regardless
// of which worker recorded which sample.
type HistogramSnapshot struct {
	Name    string            `json:"name"`
	Count   uint64            `json:"count"`
	SumNs   uint64            `json:"sum_ns"`
	Buckets []HistogramBucket `json:"buckets"`
}

// ScheduleShareCount is one schedule kind's worker-share counter: how
// many times a worker began its share of a work-sharing encounter
// resolved to this schedule.
type ScheduleShareCount struct {
	Schedule string `json:"schedule"`
	Shares   uint64 `json:"shares"`
}

// TenantMetrics is one tenant's admission counters in a MetricsSnapshot.
// Tenants beyond the registry's table bound aggregate under the name
// "_other".
type TenantMetrics struct {
	ID       uint64 `json:"id"`
	Name     string `json:"name"`
	Admits   uint64 `json:"admits"`
	Queued   uint64 `json:"queued"`
	Rejects  uint64 `json:"rejects"`
	Timeouts uint64 `json:"timeouts"`
}

// MetricsSnapshot is the merged view of the always-on metrics registry.
// Counters are cumulative since EnableMetrics first turned the registry
// on; they are never reset.
type MetricsSnapshot struct {
	Enabled bool `json:"enabled"`

	RegionEntries  uint64 `json:"region_entries"`
	BarrierWaits   uint64 `json:"barrier_waits"`
	StealAttempts  uint64 `json:"steal_attempts"`
	Steals         uint64 `json:"steals"`
	StealProbes    uint64 `json:"steal_probes"`
	TasksSpawned   uint64 `json:"tasks_spawned"`
	TasksCompleted uint64 `json:"tasks_completed"`

	LoopShares []ScheduleShareCount `json:"loop_shares,omitempty"`
	Tenants    []TenantMetrics      `json:"tenants,omitempty"`

	RegionLatency HistogramSnapshot `json:"region_latency"`
	BarrierWait   HistogramSnapshot `json:"barrier_wait"`
	AdmitWait     HistogramSnapshot `json:"admit_wait"`
	SpawnLatency  HistogramSnapshot `json:"spawn_latency"`
}

// snapshotHist merges histogram shards (selected by sel) into cumulative
// buckets.
func (m *metricsRegistry) snapshotHist(name string, sel func(*metricShard) *histShard) HistogramSnapshot {
	var counts [histSlots + 1]uint64
	var sum uint64
	add := func(h *histShard) {
		for i := range h.counts {
			counts[i] += h.counts[i].Load()
		}
		sum += h.sumNs.Load()
	}
	if sel == nil {
		add(&m.admitWait)
	} else {
		for i := range m.shards {
			add(sel(&m.shards[i]))
		}
	}
	out := HistogramSnapshot{Name: name, SumNs: sum}
	top := 0
	var cum uint64
	for i, c := range counts {
		cum += c
		if c != 0 {
			top = i
		}
	}
	out.Count = cum
	cum = 0
	for i := 0; i <= top && i < histSlots; i++ {
		cum += counts[i]
		out.Buckets = append(out.Buckets, HistogramBucket{UpperNs: bucketUpperNs(i), Count: cum})
	}
	out.Buckets = append(out.Buckets, HistogramBucket{UpperNs: math.MaxInt64, Count: out.Count})
	return out
}

// snapshot merges every shard into one MetricsSnapshot.
func (m *metricsRegistry) snapshot() MetricsSnapshot {
	out := MetricsSnapshot{Enabled: MetricsEnabled()}
	var loop [schedKinds]uint64
	for i := range m.shards {
		s := &m.shards[i]
		out.RegionEntries += s.regionEntries.Load()
		out.BarrierWaits += s.barrierWaits.Load()
		out.StealAttempts += s.stealAttempts.Load()
		out.Steals += s.steals.Load()
		out.StealProbes += s.stealProbes.Load()
		out.TasksSpawned += s.tasksSpawned.Load()
		out.TasksCompleted += s.tasksCompleted.Load()
		for k := range s.loopShares {
			loop[k] += s.loopShares[k].Load()
		}
	}
	for k, n := range loop {
		if n != 0 {
			out.LoopShares = append(out.LoopShares, ScheduleShareCount{
				Schedule: sched.Kind(k).String(), Shares: n,
			})
		}
	}
	for id := range m.tenants {
		t := &m.tenants[id]
		admits, rejects := t.admits.Load(), t.rejects.Load()
		if admits == 0 && rejects == 0 {
			continue
		}
		name := "_other"
		if id < maxMetricTenants {
			name = tenantName(uint64(id))
		}
		out.Tenants = append(out.Tenants, TenantMetrics{
			ID: uint64(id), Name: name,
			Admits: admits, Queued: t.queued.Load(),
			Rejects: rejects, Timeouts: t.timeouts.Load(),
		})
	}
	sort.Slice(out.Tenants, func(i, j int) bool { return out.Tenants[i].Name < out.Tenants[j].Name })
	out.RegionLatency = m.snapshotHist("region_latency", func(s *metricShard) *histShard { return &s.regionLat })
	out.BarrierWait = m.snapshotHist("barrier_wait", func(s *metricShard) *histShard { return &s.barrierWait })
	out.AdmitWait = m.snapshotHist("admit_wait", nil)
	out.SpawnLatency = m.snapshotHist("spawn_latency", func(s *metricShard) *histShard { return &s.spawnLat })
	return out
}

// ------------------------------------------------------------ public API --

// metrics is the process-wide registry behind EnableMetrics/ReadMetrics.
// Built lazily under installMu on first enable so tests that never touch
// metrics pay nothing.
var metrics *metricsRegistry

// tenantNames maps admission tenant ids to names for exposition labels;
// the admission controller registers every tenant it creates (cold path,
// once per tenant).
var (
	tenantNamesMu sync.RWMutex
	tenantNames   = map[uint64]string{}
)

// RegisterTenant records the name behind an admission tenant id so
// per-tenant metric rows and exposition labels can carry it. Called by
// the runtime when a tenant is first seen; re-registration overwrites.
func RegisterTenant(id uint64, name string) {
	tenantNamesMu.Lock()
	tenantNames[id] = name
	tenantNamesMu.Unlock()
}

// tenantName resolves a registered tenant id, falling back to a stable
// placeholder for ids the runtime never registered.
func tenantName(id uint64) string {
	tenantNamesMu.RLock()
	n, ok := tenantNames[id]
	tenantNamesMu.RUnlock()
	if ok {
		return n
	}
	return "unknown"
}

// EnableMetrics turns the always-on metrics registry on or off and
// returns the previous setting. Enabled, every runtime emit point also
// feeds the sharded counters and histograms behind ReadMetrics — the
// record path is preallocated padded atomics, 0 allocs/op; counters
// accumulate until process exit and are never reset. Disabled (the
// default), the emit points cost their usual one atomic load and branch.
// Metrics compose with the tracer and custom tools: enabling one never
// evicts another.
func EnableMetrics(on bool) bool {
	installMu.Lock()
	defer installMu.Unlock()
	prev := metricsHooks != nil
	if on {
		if metrics == nil {
			metrics = newMetricsRegistry(defaultMaxRings())
		}
		if metricsHooks == nil {
			metricsHooks = metrics.hooks()
		}
	} else {
		metricsHooks = nil
	}
	rebuildActiveLocked()
	return prev
}

// MetricsEnabled reports whether the metrics registry is recording.
func MetricsEnabled() bool {
	installMu.Lock()
	defer installMu.Unlock()
	return metricsHooks != nil
}

// ReadMetrics merges every shard of the metrics registry into one
// snapshot. Safe to call at any time from any goroutine, including with
// recording in flight — counters are monotone, so a racing scrape is at
// worst one sample behind. Before the first EnableMetrics it returns a
// zero snapshot.
func ReadMetrics() MetricsSnapshot {
	installMu.Lock()
	m := metrics
	installMu.Unlock()
	if m == nil {
		return MetricsSnapshot{
			RegionLatency: HistogramSnapshot{Name: "region_latency", Buckets: []HistogramBucket{{UpperNs: math.MaxInt64}}},
			BarrierWait:   HistogramSnapshot{Name: "barrier_wait", Buckets: []HistogramBucket{{UpperNs: math.MaxInt64}}},
			AdmitWait:     HistogramSnapshot{Name: "admit_wait", Buckets: []HistogramBucket{{UpperNs: math.MaxInt64}}},
			SpawnLatency:  HistogramSnapshot{Name: "spawn_latency", Buckets: []HistogramBucket{{UpperNs: math.MaxInt64}}},
		}
	}
	return m.snapshot()
}
