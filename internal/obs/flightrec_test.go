package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// snapshot must be non-destructive — the same records stay drainable —
// and trim must age records out by their When stamp.
func TestRingSnapshotAndTrim(t *testing.T) {
	r := newRing(16)
	for i := 1; i <= 10; i++ {
		r.append(Event{Kind: EvTaskCreate, Task: uint64(i), When: int64(i * 100)})
	}
	snap := r.snapshot()
	if len(snap) != 10 {
		t.Fatalf("snapshot returned %d records, want 10", len(snap))
	}
	if r.len() != 10 {
		t.Fatalf("snapshot consumed records: %d left, want 10", r.len())
	}
	again := r.snapshot()
	if len(again) != 10 || again[0].Task != 1 || again[9].Task != 10 {
		t.Fatalf("second snapshot differs: %+v", again)
	}

	// Trim by age: records with When < 500 go.
	r.trim(500, 0)
	if got := r.len(); got != 6 {
		t.Fatalf("after trim(500) %d records remain, want 6 (When 500..1000)", got)
	}
	if evs := r.snapshot(); evs[0].When != 500 {
		t.Fatalf("oldest surviving record has When=%d, want 500", evs[0].When)
	}

	// Trim by occupancy: keep at most 2 newest.
	r.trim(0, 2)
	if got := r.len(); got != 2 {
		t.Fatalf("after trim(maxLive=2) %d records remain, want 2", got)
	}
	if evs := r.drain(); evs[0].Task != 9 || evs[1].Task != 10 {
		t.Fatalf("occupancy trim kept the wrong records: %+v", evs)
	}
}

// The slow-region trigger must latch exactly when fork-to-join latency
// exceeds the threshold.
func TestFlightRegionLatencyTrigger(t *testing.T) {
	f := newFlightRecorder()
	f.latThreshNs.Store(int64(2 * time.Millisecond))
	h := f.hooks()
	f.col.start()

	// Fast region: no trigger.
	h.RegionFork(0, 1, 0, 2)
	h.RegionJoin(0, 1, 0)
	if f.triggered.Load() {
		t.Fatal("fast region tripped the latency trigger")
	}

	// Slow region: trigger latches and the wakeup lands on triggerC.
	h.RegionFork(0, 2, 0, 2)
	time.Sleep(5 * time.Millisecond)
	h.RegionJoin(0, 2, 0)
	if !f.triggered.Load() {
		t.Fatal("slow region did not trip the latency trigger")
	}
	select {
	case <-f.triggerC:
	default:
		t.Fatal("trigger did not wake the trimmer channel")
	}

	// The capture path renders valid Chrome JSON with the recorded events.
	snap := f.snapshotWindow()
	if len(snap) == 0 {
		t.Fatal("flight rings recorded nothing")
	}
	var buf bytes.Buffer
	if err := writeChromeTrace(&buf, f.col, snap); err != nil {
		t.Fatalf("writeChromeTrace: %v", err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("flight snapshot is not valid JSON")
	}
	if !strings.Contains(buf.String(), "region fork") {
		t.Fatalf("flight snapshot lost the region events:\n%s", buf.String())
	}
}

// A burst of admission rejects inside one second must trip the spike
// trigger; sparse rejects must not.
func TestFlightRejectSpikeTrigger(t *testing.T) {
	f := newFlightRecorder()
	f.rejectSpike.Store(5)
	h := f.hooks()
	f.col.start()

	for i := 0; i < 4; i++ {
		h.AdmitReject(1, AdmitReasonPolicy)
	}
	if f.triggered.Load() {
		t.Fatal("4 rejects tripped a 5/s spike trigger")
	}
	h.AdmitReject(1, AdmitReasonPolicy)
	if !f.triggered.Load() {
		t.Fatal("5th reject in the same second did not trip the trigger")
	}
}

// The public lifecycle: enable, run events through the published hook
// table, trip a trigger, read the frozen capture via WriteFlightSnapshot
// (which re-arms), and verify the live-window path afterwards.
func TestFlightRecorderEndToEnd(t *testing.T) {
	if FlightEnabled() {
		t.Fatal("flight recorder unexpectedly enabled at test start")
	}
	EnableFlight(true)
	defer EnableFlight(false)
	SetFlightWindow(2 * time.Second)
	prevThresh := SetFlightRegionLatencyThreshold(time.Millisecond)
	defer SetFlightRegionLatencyThreshold(prevThresh)

	h := Active()
	if h == nil {
		t.Fatal("no active hook table with the flight recorder enabled")
	}
	h.RegionFork(0, 901, 0, 2)
	h.ImplicitBegin(1, 901, 0)
	h.ImplicitEnd(1, 901)
	time.Sleep(3 * time.Millisecond)
	h.RegionJoin(0, 901, 0)

	if !FlightTriggered() {
		t.Fatal("slow region did not trigger the enabled recorder")
	}
	// The capture happens in the trimmer goroutine; wait for it.
	deadline := time.Now().Add(2 * time.Second)
	var buf bytes.Buffer
	for {
		buf.Reset()
		triggered, err := WriteFlightSnapshot(&buf)
		if err != nil {
			t.Fatalf("WriteFlightSnapshot: %v", err)
		}
		if triggered {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("trigger capture never materialized")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("triggered flight snapshot is not valid JSON")
	}
	if !strings.Contains(buf.String(), "worker 1") {
		t.Fatalf("flight snapshot lost the worker track:\n%s", buf.String())
	}
	if FlightTriggered() {
		t.Fatal("WriteFlightSnapshot did not re-arm the trigger")
	}

	// Live-window path: no trigger pending, snapshot the current rings.
	h.RegionFork(0, 902, 0, 2)
	h.RegionJoin(0, 902, 0)
	buf.Reset()
	triggered, err := WriteFlightSnapshot(&buf)
	if err != nil || triggered {
		t.Fatalf("live snapshot: triggered=%v err=%v", triggered, err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("live flight snapshot is not valid JSON")
	}
}

// The trimmer must age events out of the rings so the recorder's memory
// reflects the window, not the uptime.
func TestFlightWindowTrimsOldEvents(t *testing.T) {
	f := newFlightRecorder()
	f.windowNs.Store(int64(10 * time.Millisecond))
	h := f.hooks()
	f.col.start()

	h.TaskCreate(0, 1, TaskDeferred)
	time.Sleep(20 * time.Millisecond)
	// Manual trim (what the goroutine tick does).
	cutoff := f.col.now() - f.windowNs.Load()
	for _, r := range *f.col.rings.Load() {
		r.trim(cutoff, 0)
	}
	h.TaskCreate(0, 2, TaskDeferred)
	snap := f.snapshotWindow()
	if len(snap) != 1 || snap[0].Task != 2 {
		t.Fatalf("window kept stale events: %+v", snap)
	}
}
