package obs

import "sync"

// Tool installation and composition. The runtime's emit points load one
// atomic hook-table pointer (active, in obs.go); this file decides what
// that pointer holds. Three consumer slots exist:
//
//   - the tool slot: the built-in tracer (EnableTracing) or a custom
//     table (SetHooks) — mutually exclusive, exactly as before metrics
//     existed;
//   - the metrics slot: the always-on metrics registry (EnableMetrics);
//   - the flight slot: the flight recorder (EnableFlight).
//
// With zero consumers, active is nil and the emit points take the
// disabled branch. With one, its table is published directly — no
// wrapper, no indirection beyond the hook call itself. With several, a
// fresh composed table fans each event out to every consumer; the
// composition is built here, at (un)install time, so the emit path never
// sees a closure allocated per call.

// installMu serializes every install/uninstall mutation and the derived
// rebuild of the published table.
var installMu sync.Mutex

// Consumer slots. toolHooks is the legacy single-tool slot; metricsHooks
// and flightHooks are the continuous-telemetry consumers that compose
// with it.
var (
	toolHooks    *Hooks
	metricsHooks *Hooks
	flightHooks  *Hooks
)

// rebuildActiveLocked republishes the active table from the consumer
// slots. Callers hold installMu.
func rebuildActiveLocked() {
	var tables []*Hooks
	for _, t := range []*Hooks{toolHooks, metricsHooks, flightHooks} {
		if t != nil {
			tables = append(tables, t)
		}
	}
	switch len(tables) {
	case 0:
		active.Store(nil)
	case 1:
		active.Store(tables[0])
	default:
		active.Store(compose(tables))
	}
}

// fan builders: collapse a per-field callback list to nil (none), the
// single callback (no wrapper cost), or a fan-out closure.

func fan1[A any](fns []func(A)) func(A) {
	switch len(fns) {
	case 0:
		return nil
	case 1:
		return fns[0]
	}
	return func(a A) {
		for _, f := range fns {
			f(a)
		}
	}
}

func fan2[A, B any](fns []func(A, B)) func(A, B) {
	switch len(fns) {
	case 0:
		return nil
	case 1:
		return fns[0]
	}
	return func(a A, b B) {
		for _, f := range fns {
			f(a, b)
		}
	}
}

func fan3[A, B, C any](fns []func(A, B, C)) func(A, B, C) {
	switch len(fns) {
	case 0:
		return nil
	case 1:
		return fns[0]
	}
	return func(a A, b B, c C) {
		for _, f := range fns {
			f(a, b, c)
		}
	}
}

func fan4[A, B, C, D any](fns []func(A, B, C, D)) func(A, B, C, D) {
	switch len(fns) {
	case 0:
		return nil
	case 1:
		return fns[0]
	}
	return func(a A, b B, c C, d D) {
		for _, f := range fns {
			f(a, b, c, d)
		}
	}
}

// pick gathers the non-nil instances of one hook field across tables.
func pick[F any](tables []*Hooks, sel func(*Hooks) F, isNil func(F) bool) []F {
	var out []F
	for _, t := range tables {
		if f := sel(t); !isNil(f) {
			out = append(out, f)
		}
	}
	return out
}

// compose builds one table fanning each event out to every consumer that
// implements it. Closures are created here, once per rebuild; the emit
// path pays one extra indirect call per extra consumer and allocates
// nothing.
func compose(tables []*Hooks) *Hooks {
	p1 := func(sel func(*Hooks) func(WorkerID)) func(WorkerID) {
		return fan1(pick(tables, sel, func(f func(WorkerID)) bool { return f == nil }))
	}
	h := &Hooks{
		StealAttempt: p1(func(t *Hooks) func(WorkerID) { return t.StealAttempt }),
	}
	h.RegionFork = fan4(pick(tables,
		func(t *Hooks) func(WorkerID, uint64, int, int) { return t.RegionFork },
		func(f func(WorkerID, uint64, int, int)) bool { return f == nil }))
	h.RegionJoin = fan3(pick(tables,
		func(t *Hooks) func(WorkerID, uint64, int) { return t.RegionJoin },
		func(f func(WorkerID, uint64, int)) bool { return f == nil }))
	h.ImplicitBegin = fan3(pick(tables,
		func(t *Hooks) func(WorkerID, uint64, int) { return t.ImplicitBegin },
		func(f func(WorkerID, uint64, int)) bool { return f == nil }))
	h.ImplicitEnd = fan2(pick(tables,
		func(t *Hooks) func(WorkerID, uint64) { return t.ImplicitEnd },
		func(f func(WorkerID, uint64)) bool { return f == nil }))
	h.TeamLease = fan4(pick(tables,
		func(t *Hooks) func(WorkerID, uint64, int, bool) { return t.TeamLease },
		func(f func(WorkerID, uint64, int, bool)) bool { return f == nil }))
	h.TeamRetire = fan2(pick(tables,
		func(t *Hooks) func(uint64, int) { return t.TeamRetire },
		func(f func(uint64, int)) bool { return f == nil }))
	h.AdmitEnqueue = fan2(pick(tables,
		func(t *Hooks) func(uint64, int) { return t.AdmitEnqueue },
		func(f func(uint64, int)) bool { return f == nil }))
	h.AdmitGrant = fan2(pick(tables,
		func(t *Hooks) func(uint64, int64) { return t.AdmitGrant },
		func(f func(uint64, int64)) bool { return f == nil }))
	h.AdmitReject = fan2(pick(tables,
		func(t *Hooks) func(uint64, AdmitReason) { return t.AdmitReject },
		func(f func(uint64, AdmitReason)) bool { return f == nil }))
	h.TaskCreate = fan3(pick(tables,
		func(t *Hooks) func(WorkerID, uint64, TaskKind) { return t.TaskCreate },
		func(f func(WorkerID, uint64, TaskKind)) bool { return f == nil }))
	h.TaskSchedule = fan2(pick(tables,
		func(t *Hooks) func(WorkerID, uint64) { return t.TaskSchedule },
		func(f func(WorkerID, uint64)) bool { return f == nil }))
	h.TaskComplete = fan2(pick(tables,
		func(t *Hooks) func(WorkerID, uint64) { return t.TaskComplete },
		func(f func(WorkerID, uint64)) bool { return f == nil }))
	h.TaskInline = fan2(pick(tables,
		func(t *Hooks) func(WorkerID, uint64) { return t.TaskInline },
		func(f func(WorkerID, uint64)) bool { return f == nil }))
	h.StealSuccess = fan3(pick(tables,
		func(t *Hooks) func(WorkerID, uint64, WorkerID) { return t.StealSuccess },
		func(f func(WorkerID, uint64, WorkerID)) bool { return f == nil }))
	h.StealScan = fan2(pick(tables,
		func(t *Hooks) func(WorkerID, int) { return t.StealScan },
		func(f func(WorkerID, int)) bool { return f == nil }))
	h.LoopRate = fan3(pick(tables,
		func(t *Hooks) func(WorkerID, int64, int64) { return t.LoopRate },
		func(f func(WorkerID, int64, int64)) bool { return f == nil }))
	h.BarrierArrive = fan2(pick(tables,
		func(t *Hooks) func(WorkerID, uint64) { return t.BarrierArrive },
		func(f func(WorkerID, uint64)) bool { return f == nil }))
	h.BarrierDepart = fan3(pick(tables,
		func(t *Hooks) func(WorkerID, uint64, int64) { return t.BarrierDepart },
		func(f func(WorkerID, uint64, int64)) bool { return f == nil }))
	h.DepRelease = fan2(pick(tables,
		func(t *Hooks) func(WorkerID, uint64) { return t.DepRelease },
		func(f func(WorkerID, uint64)) bool { return f == nil }))
	h.WorkBegin = fan3(pick(tables,
		func(t *Hooks) func(WorkerID, uint64, uint8) { return t.WorkBegin },
		func(f func(WorkerID, uint64, uint8)) bool { return f == nil }))
	h.WorkEnd = fan2(pick(tables,
		func(t *Hooks) func(WorkerID, uint64) { return t.WorkEnd },
		func(f func(WorkerID, uint64)) bool { return f == nil }))
	h.SpanBegin = fan2(pick(tables,
		func(t *Hooks) func(WorkerID, uint32) { return t.SpanBegin },
		func(f func(WorkerID, uint32)) bool { return f == nil }))
	h.SpanEnd = fan2(pick(tables,
		func(t *Hooks) func(WorkerID, uint32) { return t.SpanEnd },
		func(f func(WorkerID, uint32)) bool { return f == nil }))
	return h
}
