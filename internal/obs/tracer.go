package obs

import (
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Stats is the aggregate runtime counter snapshot of the built-in tracer.
// Counters accumulate while tracing is enabled (EnableTracing/StartTrace)
// and are cumulative across traces; they do not require a recording trace,
// so long-running servers can watch steal and barrier pressure without
// paying for event buffering.
type Stats struct {
	RegionForks   uint64 // parallel region entries observed
	RegionJoins   uint64 // parallel region joins observed
	TeamLeases    uint64 // team acquisitions observed
	TeamLeaseHits uint64 // leases served by the hot-team pool
	TeamRetires   uint64 // teams destroyed while observed

	TasksSpawned   uint64 // tasks queued on deques or parked on dependences
	TasksInlined   uint64 // tasks run outside the deques (own goroutine)
	TasksCompleted uint64 // task executions finished

	StealAttempts uint64 // empty-deque probes of sibling deques
	Steals        uint64 // probes that took a task
	StealProbes   uint64 // sibling slots examined by loop-range steal scans

	BarrierWaits  uint64 // barrier passages observed
	BarrierWaitNs uint64 // total nanoseconds spent blocked in barriers

	DepReleases uint64 // parked dependent tasks released to deques

	// Multi-tenant admission counters (rt server mode). Counter-only, like
	// StealAttempts: admission events happen on the entering goroutine
	// outside any worker context, so they carry no timeline value — the
	// queue-side picture lives in rt.AdmissionStats.
	AdmitGrants   uint64 // team leases granted (fast-path and after queueing)
	AdmitQueued   uint64 // grants that waited in the admission queue first
	AdmitWaitNs   uint64 // total nanoseconds spent queued for admission
	AdmitRejects  uint64 // lease requests refused (policy, full queue, timeout)
	AdmitTimeouts uint64 // refusals specifically due to a queue-wait timeout

	EventsRecorded uint64 // records stored in trace ring buffers
	EventsDropped  uint64 // records dropped since the last StartTrace reset

	// Ring-buffer accounting, exposed so production monitors can tell a
	// quiet trace from one that silently shed events. RingDrops is the
	// cumulative drop count across every trace since the tracer was
	// created — unlike EventsDropped it survives StartTrace resets (the
	// accumulation happens at reset time, so drops landing mid-reset may
	// be counted one snapshot late). TraceRings is the number of ring
	// buffers allocated so far; WorkersFolded estimates how many distinct
	// workers were folded onto shared rings because their ids exceeded
	// the ring bound (exact when worker ids are dense, a lower bound
	// otherwise).
	RingDrops     uint64
	TraceRings    int
	WorkersFolded int
}

// counters is the atomic backing of Stats.
type counters struct {
	regionForks, regionJoins          atomic.Uint64
	teamLeases, teamHits, teamRetires atomic.Uint64
	tasksSpawned, tasksInlined        atomic.Uint64
	tasksCompleted                    atomic.Uint64
	stealAttempts, steals             atomic.Uint64
	stealProbes                       atomic.Uint64
	barrierWaits, barrierWaitNs       atomic.Uint64
	depReleases                       atomic.Uint64
	admitGrants, admitQueued          atomic.Uint64
	admitWaitNs                       atomic.Uint64
	admitRejects, admitTimeouts       atomic.Uint64
	recorded                          atomic.Uint64
}

// DefaultRingCapacity is the per-worker event buffer capacity (records,
// not bytes) used unless SetRingCapacity overrides it. At 48 bytes per
// record a full buffer is under 800 KiB per worker.
const DefaultRingCapacity = 1 << 14

// collector is the built-in tracer: per-worker rings plus counters. The
// package-level singleton serves the public API; tests build private
// instances and drive the hook methods directly.
type collector struct {
	c         counters
	recording atomic.Bool
	epoch     atomic.Int64 // trace start, ns reading of the monotonic clock

	// rings is indexed by WorkerID+1 (index 0 is the shared ring for
	// NoWorker emits). The slice is copy-on-write: the hot path is one
	// atomic load and an index; growth happens under growMu only when a
	// new worker emits its first event. The pool is bounded by maxRings —
	// workers beyond it fold onto shared rings modulo the bound, so a
	// workload that keeps cold-spawning teams (hot teams off, deep
	// nesting) shares buffer capacity instead of allocating a ring per
	// ephemeral worker forever. Folding costs nothing in the export:
	// records carry their worker id, so folded workers keep distinct
	// tracks.
	rings    atomic.Pointer[[]*ring]
	growMu   sync.Mutex
	ringCap  int
	maxRings int

	// droppedCum accumulates per-ring drop counters across StartTrace
	// resets (each reset zeroes the live counters); foldedMax tracks the
	// highest raw ring index ever folded, so stats can report how many
	// workers shared rings.
	droppedCum atomic.Uint64
	foldedMax  atomic.Int64

	// rates holds the per-worker throughput counters behind
	// ReadWorkerRates, indexed and folded exactly like rings (WorkerID+1,
	// modulo the bound). Allocated eagerly — one padded line per slot is a
	// few KiB — so the emit path is a pure index, no growth branch.
	rates []rateSlot

	// names interns user-span labels; ids index list.
	namesMu sync.RWMutex
	byName  map[string]uint32
	names   []string
}

// rateSlot is one worker's cumulative loop-rate counters, alone on a cache
// line: each worker adds to its own slot at loop-share end, and sharing
// lines would turn independent workers into false-sharing partners.
type rateSlot struct {
	iters  atomic.Int64
	workNs atomic.Int64
	probes atomic.Int64
	_      [40]byte
}

func newCollector(ringCap, maxRings int) *collector {
	if maxRings < 2 {
		maxRings = 2
	}
	c := &collector{ringCap: ringCap, maxRings: maxRings, byName: map[string]uint32{}}
	c.rates = make([]rateSlot, maxRings)
	c.rings.Store(&[]*ring{})
	return c
}

// defaultMaxRings bounds the tracer's ring pool: enough for a few
// default-sized teams' worth of distinct workers before folding sets in,
// and a hard memory ceiling of maxRings x ringCap records either way.
func defaultMaxRings() int {
	n := 4*runtime.GOMAXPROCS(0) + 1
	if n < 65 {
		n = 65
	}
	return n
}

// clock is the trace timebase. time.Since carries the monotonic reading,
// costs ~25ns and allocates nothing — fine for an emit point that already
// writes a 48-byte record.
var processEpoch = time.Now()

func monotonicNs() int64 { return int64(time.Since(processEpoch)) }

// now returns nanoseconds since the trace epoch.
func (c *collector) now() int64 { return monotonicNs() - c.epoch.Load() }

// ring returns the event buffer for w, creating it on first use (the only
// allocating path; it runs at most maxRings times per collector, never in
// steady state).
func (c *collector) ring(w WorkerID) *ring {
	idx := int(w) + 1
	if idx < 0 {
		idx = 0
	}
	if idx >= c.maxRings {
		// Track the widest fold for stats; the CAS loop runs only while
		// new maxima appear, so steady state costs one load + branch.
		for {
			m := c.foldedMax.Load()
			if int64(idx) <= m || c.foldedMax.CompareAndSwap(m, int64(idx)) {
				break
			}
		}
		idx = 1 + (idx-1)%(c.maxRings-1)
	}
	rs := *c.rings.Load()
	if idx < len(rs) {
		return rs[idx]
	}
	c.growMu.Lock()
	defer c.growMu.Unlock()
	rs = *c.rings.Load()
	if idx < len(rs) {
		return rs[idx]
	}
	grown := make([]*ring, idx+1)
	copy(grown, rs)
	for i := len(rs); i <= idx; i++ {
		grown[i] = newRing(c.ringCap)
	}
	c.rings.Store(&grown)
	return grown[idx]
}

// rate returns the per-worker rate slot for w, folded like ring indices.
func (c *collector) rate(w WorkerID) *rateSlot {
	idx := int(w) + 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(c.rates) {
		idx = 1 + (idx-1)%(len(c.rates)-1)
	}
	return &c.rates[idx]
}

// record appends one event if a trace is recording.
func (c *collector) record(w WorkerID, ev Event) {
	if !c.recording.Load() {
		return
	}
	ev.When = c.now()
	ev.Worker = w
	if c.ring(w).append(ev) {
		c.c.recorded.Add(1)
	}
}

// start begins a fresh trace: buffered records from earlier traces are
// discarded and the epoch resets.
func (c *collector) start() {
	c.recording.Store(false)
	for _, r := range *c.rings.Load() {
		// Fold the live drop counter into the cumulative total before the
		// reset zeroes it, so RingDrops survives trace restarts.
		c.droppedCum.Add(r.dropped.Load())
		r.reset()
	}
	c.epoch.Store(monotonicNs())
	c.recording.Store(true)
}

// stop ends the trace and drains every ring into one record set.
func (c *collector) stop() []Event {
	c.recording.Store(false)
	var out []Event
	for _, r := range *c.rings.Load() {
		out = append(out, r.drain()...)
	}
	return out
}

// stats snapshots the counters.
func (c *collector) stats() Stats {
	var dropped uint64
	rings := *c.rings.Load()
	for _, r := range rings {
		dropped += r.dropped.Load()
	}
	folded := 0
	if m := c.foldedMax.Load(); m >= int64(c.maxRings) {
		folded = int(m) - c.maxRings + 1
	}
	return Stats{
		RingDrops:      c.droppedCum.Load() + dropped,
		TraceRings:     len(rings),
		WorkersFolded:  folded,
		RegionForks:    c.c.regionForks.Load(),
		RegionJoins:    c.c.regionJoins.Load(),
		TeamLeases:     c.c.teamLeases.Load(),
		TeamLeaseHits:  c.c.teamHits.Load(),
		TeamRetires:    c.c.teamRetires.Load(),
		TasksSpawned:   c.c.tasksSpawned.Load(),
		TasksInlined:   c.c.tasksInlined.Load(),
		TasksCompleted: c.c.tasksCompleted.Load(),
		StealAttempts:  c.c.stealAttempts.Load(),
		Steals:         c.c.steals.Load(),
		StealProbes:    c.c.stealProbes.Load(),
		BarrierWaits:   c.c.barrierWaits.Load(),
		BarrierWaitNs:  c.c.barrierWaitNs.Load(),
		DepReleases:    c.c.depReleases.Load(),
		AdmitGrants:    c.c.admitGrants.Load(),
		AdmitQueued:    c.c.admitQueued.Load(),
		AdmitWaitNs:    c.c.admitWaitNs.Load(),
		AdmitRejects:   c.c.admitRejects.Load(),
		AdmitTimeouts:  c.c.admitTimeouts.Load(),
		EventsRecorded: c.c.recorded.Load(),
		EventsDropped:  dropped,
	}
}

// intern returns the stable id of a span name, assigning one on first use.
func (c *collector) intern(name string) uint32 {
	c.namesMu.RLock()
	id, ok := c.byName[name]
	c.namesMu.RUnlock()
	if ok {
		return id
	}
	c.namesMu.Lock()
	defer c.namesMu.Unlock()
	if id, ok := c.byName[name]; ok {
		return id
	}
	id = uint32(len(c.names))
	c.names = append(c.names, name)
	c.byName[name] = id
	return id
}

// spanName resolves an interned id (drain side).
func (c *collector) spanName(id uint32) string {
	c.namesMu.RLock()
	defer c.namesMu.RUnlock()
	if int(id) < len(c.names) {
		return c.names[id]
	}
	return "span"
}

// hooks builds the collector's hook table. Every callback is a bound
// method value created once here, so installing the tracer allocates only
// at EnableTracing time, never on the emit path.
func (c *collector) hooks() *Hooks {
	return &Hooks{
		RegionFork: func(master WorkerID, team uint64, level, size int) {
			c.c.regionForks.Add(1)
			c.record(master, Event{Kind: EvRegionFork, Team: team, Arg: uint64(size), Level: uint8(level)})
		},
		RegionJoin: func(master WorkerID, team uint64, level int) {
			c.c.regionJoins.Add(1)
			c.record(master, Event{Kind: EvRegionJoin, Team: team, Level: uint8(level)})
		},
		ImplicitBegin: func(w WorkerID, team uint64, level int) {
			c.record(w, Event{Kind: EvImplicitBegin, Team: team, Level: uint8(level)})
		},
		ImplicitEnd: func(w WorkerID, team uint64) {
			c.record(w, Event{Kind: EvImplicitEnd, Team: team})
		},
		TeamLease: func(w WorkerID, team uint64, size int, hit bool) {
			c.c.teamLeases.Add(1)
			var h uint64
			if hit {
				h = 1
				c.c.teamHits.Add(1)
			}
			c.record(w, Event{Kind: EvTeamLease, Team: team, Arg: h<<32 | uint64(uint32(size))})
		},
		TeamRetire: func(team uint64, size int) {
			c.c.teamRetires.Add(1)
			c.record(NoWorker, Event{Kind: EvTeamRetire, Team: team, Arg: uint64(size)})
		},
		TaskCreate: func(w WorkerID, task uint64, kind TaskKind) {
			c.c.tasksSpawned.Add(1)
			c.record(w, Event{Kind: EvTaskCreate, Task: task, Arg: uint64(kind)})
		},
		TaskSchedule: func(w WorkerID, task uint64) {
			c.record(w, Event{Kind: EvTaskSchedule, Task: task})
		},
		TaskComplete: func(w WorkerID, task uint64) {
			c.c.tasksCompleted.Add(1)
			c.record(w, Event{Kind: EvTaskComplete, Task: task})
		},
		TaskInline: func(w WorkerID, task uint64) {
			c.c.tasksInlined.Add(1)
			c.record(w, Event{Kind: EvTaskInline, Task: task})
		},
		StealAttempt: func(w WorkerID) {
			// Counter only: idle workers probe in a helping loop, and one
			// instant per probe would flood the rings with no timeline value.
			c.c.stealAttempts.Add(1)
		},
		StealSuccess: func(w WorkerID, task uint64, victim WorkerID) {
			c.c.steals.Add(1)
			c.record(w, Event{Kind: EvStealSuccess, Task: task, Arg: uint64(uint32(victim))})
		},
		StealScan: func(w WorkerID, probes int) {
			// Counter only, like StealAttempt: scan lengths aggregate, they
			// are not timeline moments.
			c.c.stealProbes.Add(uint64(probes))
			c.rate(w).probes.Add(int64(probes))
		},
		LoopRate: func(w WorkerID, iters, elapsedNs int64) {
			r := c.rate(w)
			r.iters.Add(iters)
			r.workNs.Add(elapsedNs)
		},
		BarrierArrive: func(w WorkerID, team uint64) {
			c.c.barrierWaits.Add(1)
			c.record(w, Event{Kind: EvBarrierArrive, Team: team})
		},
		BarrierDepart: func(w WorkerID, team uint64, waitNs int64) {
			c.c.barrierWaitNs.Add(uint64(waitNs))
			c.record(w, Event{Kind: EvBarrierDepart, Team: team, Arg: uint64(waitNs)})
		},
		// AdmitEnqueue stays nil: the enqueue is implied by AdmitGrant's
		// waitNs>0 or by AdmitReject, and depth snapshots live in
		// rt.AdmissionStats.
		AdmitGrant: func(tenant uint64, waitNs int64) {
			c.c.admitGrants.Add(1)
			if waitNs > 0 {
				c.c.admitQueued.Add(1)
				c.c.admitWaitNs.Add(uint64(waitNs))
			}
		},
		AdmitReject: func(tenant uint64, reason AdmitReason) {
			c.c.admitRejects.Add(1)
			if reason == AdmitReasonTimeout {
				c.c.admitTimeouts.Add(1)
			}
		},
		DepRelease: func(w WorkerID, task uint64) {
			c.c.depReleases.Add(1)
			c.record(w, Event{Kind: EvDepRelease, Task: task})
		},
		WorkBegin: func(w WorkerID, team uint64, kind uint8) {
			c.record(w, Event{Kind: EvWorkBegin, Team: team, Arg: uint64(kind)})
		},
		WorkEnd: func(w WorkerID, team uint64) {
			c.record(w, Event{Kind: EvWorkEnd, Team: team})
		},
		SpanBegin: func(w WorkerID, name uint32) {
			c.record(w, Event{Kind: EvSpanBegin, Task: uint64(name)})
		},
		SpanEnd: func(w WorkerID, name uint32) {
			c.record(w, Event{Kind: EvSpanEnd, Task: uint64(name)})
		},
	}
}

// ------------------------------------------------------------ public API --

// tracer is the process-wide built-in collector behind EnableTracing,
// StartTrace, StopTrace, ReadStats and InternName.
var (
	tracer      = newCollector(DefaultRingCapacity, defaultMaxRings())
	tracerHooks *Hooks
)

// EnableTracing installs (or uninstalls) the built-in tracer in the tool
// slot and returns whether it was previously installed. Enabling starts
// the aggregate counters; event buffering additionally needs StartTrace.
// Enabling replaces a custom tool installed with SetHooks (they share the
// tool slot), but composes with the metrics registry and the flight
// recorder. Disabling leaves a custom tool untouched.
func EnableTracing(on bool) bool {
	installMu.Lock()
	defer installMu.Unlock()
	prev := tracerHooks != nil && toolHooks == tracerHooks
	if on {
		if tracerHooks == nil {
			tracerHooks = tracer.hooks()
		}
		toolHooks = tracerHooks
		rebuildActiveLocked()
		return prev
	}
	tracer.recording.Store(false)
	if prev {
		toolHooks = nil
		rebuildActiveLocked()
	}
	return prev
}

// TracingEnabled reports whether the built-in tracer occupies the tool
// slot.
func TracingEnabled() bool {
	installMu.Lock()
	defer installMu.Unlock()
	return tracerHooks != nil && toolHooks == tracerHooks
}

// StartTrace enables the tracer if needed and begins recording events into
// the per-worker ring buffers, discarding any previous trace.
func StartTrace() {
	EnableTracing(true)
	tracer.start()
}

// StopTrace ends the recording started by StartTrace, drains the ring
// buffers and writes the trace as Chrome trace-event JSON to w (load it at
// ui.perfetto.dev or chrome://tracing). Aggregate counters keep running;
// use EnableTracing(false) to uninstall the tracer entirely. Without a
// prior StartTrace it writes a valid empty trace.
func StopTrace(w io.Writer) error {
	events := tracer.stop()
	return writeChromeTrace(w, tracer, events)
}

// ReadStats snapshots the built-in tracer's aggregate counters.
func ReadStats() Stats { return tracer.stats() }

// WorkerRate is one worker's cumulative loop-throughput counters: the
// iterations it executed inside for constructs, the nanoseconds those
// shares took, and the sibling slots it probed while stealing loop
// ranges. Iters/WorkNs is the worker's observed speed; a worker whose
// ratio trails its siblings' is the asymmetric (throttled, contended,
// or simply slower) one, and StealProbes/steals gauges how hard its
// victim selection worked.
type WorkerRate struct {
	Worker      WorkerID
	Iters       int64
	WorkNs      int64
	StealProbes int64
}

// ReadWorkerRates snapshots the built-in tracer's per-worker rate
// counters without draining or pausing a trace — they are plain padded
// atomics fed by the LoopRate/StealScan hooks, so the read is safe from
// any goroutine at any time. Slots that never counted are omitted.
// Workers beyond the tracer's ring bound fold onto shared slots (like
// trace rings); a folded slot reports the lowest WorkerID that maps to
// it. Counters accumulate while tracing is enabled and reset never —
// callers diff snapshots for interval rates.
func ReadWorkerRates() []WorkerRate {
	out := make([]WorkerRate, 0, len(tracer.rates))
	for i := range tracer.rates {
		r := &tracer.rates[i]
		wr := WorkerRate{
			Worker:      WorkerID(i - 1),
			Iters:       r.iters.Load(),
			WorkNs:      r.workNs.Load(),
			StealProbes: r.probes.Load(),
		}
		if wr.Iters != 0 || wr.WorkNs != 0 || wr.StealProbes != 0 {
			out = append(out, wr)
		}
	}
	return out
}

// InternName returns the stable id the built-in tracer files user spans
// under — aspects intern their joinpoint names once at weave time and emit
// the id, keeping the emit path free of string handling.
func InternName(name string) uint32 { return tracer.intern(name) }

// SetRingCapacity sets the per-worker event buffer capacity (records,
// rounded up to a power of two) for rings created after the call, and
// returns the previous setting. Existing rings keep their size; call it
// before the first StartTrace. Intended for tests and long traces.
func SetRingCapacity(n int) int {
	installMu.Lock()
	defer installMu.Unlock()
	prev := tracer.ringCap
	if n > 0 {
		tracer.ringCap = n
	}
	return prev
}
