package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (version 0.0.4), written without any
// dependency: the format is lines of `name{labels} value` grouped under
// `# HELP` / `# TYPE` headers. WriteMetricsText renders the metrics
// registry — counters, per-schedule and per-tenant vectors, and the four
// latency histograms in seconds — plus any caller-supplied families
// (pool gauges, admission queue depth, ring accounting), and
// LintExposition is the strict parser the CI lint test runs against our
// own output.

// Label is one exposition label pair.
type Label struct {
	Name  string
	Value string
}

// Sample is one exposition sample of a Family: a value under a label
// set (possibly empty).
type Sample struct {
	Labels []Label
	Value  float64
}

// Family is one caller-supplied metric family appended to the registry's
// own output — the hook for gauges whose truth lives outside obs (pool
// occupancy, admission queue depth). Type must be "counter", "gauge" or
// "untyped".
type Family struct {
	Name    string
	Help    string
	Type    string
	Samples []Sample
}

// metricPrefix namespaces every exported family.
const metricPrefix = "aomp_"

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// escapeHelp escapes a HELP string per the exposition format.
func escapeHelp(v string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(v)
}

// formatValue renders a sample value the way Prometheus expects.
func formatValue(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// writeFamily writes one HELP/TYPE header and its samples.
func writeFamily(w *bufio.Writer, f Family) {
	fmt.Fprintf(w, "# HELP %s %s\n", f.Name, escapeHelp(f.Help))
	fmt.Fprintf(w, "# TYPE %s %s\n", f.Name, f.Type)
	for _, s := range f.Samples {
		writeSample(w, f.Name, s.Labels, s.Value)
	}
}

func writeSample(w *bufio.Writer, name string, labels []Label, v float64) {
	w.WriteString(name)
	if len(labels) > 0 {
		w.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				w.WriteByte(',')
			}
			fmt.Fprintf(w, `%s="%s"`, l.Name, escapeLabel(l.Value))
		}
		w.WriteByte('}')
	}
	w.WriteByte(' ')
	w.WriteString(formatValue(v))
	w.WriteByte('\n')
}

// writeHistogram renders one HistogramSnapshot as a Prometheus histogram
// in seconds: cumulative `_bucket{le=...}` lines (le in seconds), then
// `_sum` and `_count`.
func writeHistogram(w *bufio.Writer, name, help string, h HistogramSnapshot) {
	fmt.Fprintf(w, "# HELP %s %s\n", name, escapeHelp(help))
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	for _, b := range h.Buckets {
		le := "+Inf"
		if b.UpperNs != math.MaxInt64 {
			le = formatValue(float64(b.UpperNs) / 1e9)
		}
		fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", name, le, b.Count)
	}
	fmt.Fprintf(w, "%s_sum %s\n", name, formatValue(float64(h.SumNs)/1e9))
	fmt.Fprintf(w, "%s_count %d\n", name, h.Count)
}

// counterFamily builds a single-sample counter Family.
func counterFamily(name, help string, v uint64) Family {
	return Family{Name: name, Help: help, Type: "counter",
		Samples: []Sample{{Value: float64(v)}}}
}

// WriteMetricsText renders the metrics registry as Prometheus text
// exposition (content type "text/plain; version=0.0.4"), followed by any
// caller-supplied extra families. Extra family names must not collide
// with the registry's own (all share the "aomp_" prefix; the registry
// never emits a family listed below twice, and LintExposition rejects
// duplicates). The write is a point-in-time scrape of monotone counters:
// safe concurrently with recording.
func WriteMetricsText(w io.Writer, extra ...Family) error {
	snap := ReadMetrics()
	bw := bufio.NewWriter(w)

	writeFamily(bw, counterFamily(metricPrefix+"region_entries_total",
		"Parallel region entries observed by the metrics registry.", snap.RegionEntries))
	writeFamily(bw, counterFamily(metricPrefix+"barrier_waits_total",
		"Barrier passages observed.", snap.BarrierWaits))
	writeFamily(bw, counterFamily(metricPrefix+"steal_attempts_total",
		"Empty-deque probes of sibling task deques.", snap.StealAttempts))
	writeFamily(bw, counterFamily(metricPrefix+"steals_total",
		"Probes that took a task or a loop range.", snap.Steals))
	writeFamily(bw, counterFamily(metricPrefix+"steal_probes_total",
		"Sibling slots examined by loop-range steal scans.", snap.StealProbes))
	writeFamily(bw, counterFamily(metricPrefix+"tasks_spawned_total",
		"Tasks queued on deques, parked on dependences, or inlined.", snap.TasksSpawned))
	writeFamily(bw, counterFamily(metricPrefix+"tasks_completed_total",
		"Task executions finished.", snap.TasksCompleted))

	loop := Family{Name: metricPrefix + "loop_shares_total",
		Help: "Worker shares of work-sharing encounters by resolved schedule kind.",
		Type: "counter"}
	for _, s := range snap.LoopShares {
		loop.Samples = append(loop.Samples, Sample{
			Labels: []Label{{Name: "schedule", Value: s.Schedule}},
			Value:  float64(s.Shares),
		})
	}
	writeFamily(bw, loop)

	admits := Family{Name: metricPrefix + "tenant_admits_total",
		Help: "Team leases granted per admission tenant.", Type: "counter"}
	queued := Family{Name: metricPrefix + "tenant_queued_total",
		Help: "Grants per tenant that waited in the admission queue first.", Type: "counter"}
	rejects := Family{Name: metricPrefix + "tenant_rejects_total",
		Help: "Lease requests refused per tenant (policy, full queue, timeout).", Type: "counter"}
	timeouts := Family{Name: metricPrefix + "tenant_timeouts_total",
		Help: "Refusals per tenant due to a queue-wait timeout.", Type: "counter"}
	for _, t := range snap.Tenants {
		lbl := []Label{{Name: "tenant", Value: t.Name}}
		admits.Samples = append(admits.Samples, Sample{Labels: lbl, Value: float64(t.Admits)})
		queued.Samples = append(queued.Samples, Sample{Labels: lbl, Value: float64(t.Queued)})
		rejects.Samples = append(rejects.Samples, Sample{Labels: lbl, Value: float64(t.Rejects)})
		timeouts.Samples = append(timeouts.Samples, Sample{Labels: lbl, Value: float64(t.Timeouts)})
	}
	writeFamily(bw, admits)
	writeFamily(bw, queued)
	writeFamily(bw, rejects)
	writeFamily(bw, timeouts)

	writeHistogram(bw, metricPrefix+"region_latency_seconds",
		"Parallel region latency, fork to full join.", snap.RegionLatency)
	writeHistogram(bw, metricPrefix+"barrier_wait_seconds",
		"Time workers spent blocked in team barriers.", snap.BarrierWait)
	writeHistogram(bw, metricPrefix+"admission_wait_seconds",
		"Queue wait of admitted region entries (zero for fast-path grants).", snap.AdmitWait)
	writeHistogram(bw, metricPrefix+"task_spawn_latency_seconds",
		"Latency from task spawn to the start of its execution.", snap.SpawnLatency)

	for _, f := range extra {
		writeFamily(bw, f)
	}
	return bw.Flush()
}

// -------------------------------------------------------------- linting --

// validMetricName / validLabelName follow the exposition grammar.
func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" || s == "__name__" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// baseFamily strips a histogram sample suffix so _bucket/_sum/_count
// lines resolve to their declaring family.
func baseFamily(name string, typ map[string]string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if b, ok := strings.CutSuffix(name, suf); ok {
			if typ[b] == "histogram" {
				return b
			}
		}
	}
	return name
}

// parseSampleLine splits `name{labels} value` into its parts. Label
// values may contain escaped quotes.
func parseSampleLine(line string) (name string, labels []Label, value string, err error) {
	rest := line
	brace := strings.IndexByte(rest, '{')
	sp := strings.IndexAny(rest, " \t")
	if brace >= 0 && (sp < 0 || brace < sp) {
		name = rest[:brace]
		rest = rest[brace+1:]
		for {
			rest = strings.TrimLeft(rest, " \t")
			if rest == "" {
				return "", nil, "", fmt.Errorf("unterminated label set")
			}
			if rest[0] == '}' {
				rest = rest[1:]
				break
			}
			eq := strings.IndexByte(rest, '=')
			if eq < 0 || len(rest) < eq+2 || rest[eq+1] != '"' {
				return "", nil, "", fmt.Errorf("malformed label in %q", line)
			}
			ln := strings.TrimSpace(rest[:eq])
			rest = rest[eq+2:]
			var sb strings.Builder
			i := 0
			for ; i < len(rest); i++ {
				if rest[i] == '\\' && i+1 < len(rest) {
					switch rest[i+1] {
					case '\\':
						sb.WriteByte('\\')
					case '"':
						sb.WriteByte('"')
					case 'n':
						sb.WriteByte('\n')
					default:
						return "", nil, "", fmt.Errorf("bad escape in label value: %q", line)
					}
					i++
					continue
				}
				if rest[i] == '"' {
					break
				}
				sb.WriteByte(rest[i])
			}
			if i >= len(rest) {
				return "", nil, "", fmt.Errorf("unterminated label value in %q", line)
			}
			labels = append(labels, Label{Name: ln, Value: sb.String()})
			rest = rest[i+1:]
			rest = strings.TrimLeft(rest, " \t")
			if strings.HasPrefix(rest, ",") {
				rest = rest[1:]
			}
		}
	} else {
		if sp < 0 {
			return "", nil, "", fmt.Errorf("sample line without value: %q", line)
		}
		name = rest[:sp]
		rest = rest[sp:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", nil, "", fmt.Errorf("want `value [timestamp]` after name, got %q", rest)
	}
	return name, labels, fields[0], nil
}

// labelKey canonicalizes a label set for duplicate detection.
func labelKey(labels []Label) string {
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var sb strings.Builder
	for _, l := range ls {
		sb.WriteString(l.Name)
		sb.WriteByte('=')
		sb.WriteString(strconv.Quote(l.Value))
		sb.WriteByte(';')
	}
	return sb.String()
}

// LintExposition strictly validates Prometheus text exposition: every
// line must parse; TYPE may be declared at most once per family and
// before its samples; every sample must belong to a declared family
// (histogram samples via their _bucket/_sum/_count suffixes); metric and
// label names must match the exposition grammar; no two samples of a
// family may share a label set; histogram buckets must carry parseable
// `le` bounds with nondecreasing cumulative counts ending in a +Inf
// bucket that equals the family's _count. It is the test oracle the CI
// lint runs against the library's own /metrics output.
func LintExposition(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)

	typ := map[string]string{}
	seen := map[string]map[string]float64{} // family -> labelKey -> value
	type bucketRow struct {
		le  float64
		cum float64
		key string // labels minus le
	}
	buckets := map[string][]bucketRow{}
	counts := map[string]float64{}
	sawSample := map[string]bool{}

	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimRight(sc.Text(), " \t")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				if len(fields) >= 2 && (fields[1] == "HELP" || fields[1] == "TYPE") {
					return fmt.Errorf("line %d: malformed %s comment: %q", lineNo, fields[1], line)
				}
				continue // free-form comment
			}
			name := fields[2]
			if !validMetricName(name) {
				return fmt.Errorf("line %d: invalid metric family name %q", lineNo, name)
			}
			if fields[1] == "TYPE" {
				if len(fields) != 4 {
					return fmt.Errorf("line %d: malformed TYPE line %q", lineNo, line)
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("line %d: unknown metric type %q", lineNo, fields[3])
				}
				if _, dup := typ[name]; dup {
					return fmt.Errorf("line %d: duplicate TYPE declaration for family %q", lineNo, name)
				}
				if sawSample[name] {
					return fmt.Errorf("line %d: TYPE for %q after its samples", lineNo, name)
				}
				typ[name] = fields[3]
			}
			continue
		}

		name, labels, valStr, err := parseSampleLine(line)
		if err != nil {
			return fmt.Errorf("line %d: %v", lineNo, err)
		}
		if !validMetricName(name) {
			return fmt.Errorf("line %d: invalid metric name %q", lineNo, name)
		}
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			return fmt.Errorf("line %d: unparseable value %q: %v", lineNo, valStr, err)
		}
		fam := baseFamily(name, typ)
		if _, ok := typ[fam]; !ok {
			return fmt.Errorf("line %d: sample %q belongs to no declared family", lineNo, name)
		}
		sawSample[fam] = true

		var le *float64
		rest := labels[:0:0]
		for _, l := range labels {
			if !validLabelName(l.Name) {
				return fmt.Errorf("line %d: invalid label name %q", lineNo, l.Name)
			}
			if l.Name == "le" && strings.HasSuffix(name, "_bucket") {
				v, err := strconv.ParseFloat(l.Value, 64)
				if err != nil {
					return fmt.Errorf("line %d: unparseable le bound %q", lineNo, l.Value)
				}
				le = &v
				continue
			}
			rest = append(rest, l)
		}

		key := name + "\x00" + labelKey(labels)
		if seen[fam] == nil {
			seen[fam] = map[string]float64{}
		}
		if _, dup := seen[fam][key]; dup {
			return fmt.Errorf("line %d: duplicate sample %q", lineNo, line)
		}
		seen[fam][key] = val

		if typ[fam] == "histogram" {
			switch {
			case strings.HasSuffix(name, "_bucket"):
				if le == nil {
					return fmt.Errorf("line %d: histogram bucket without le label: %q", lineNo, line)
				}
				buckets[fam] = append(buckets[fam], bucketRow{le: *le, cum: val, key: labelKey(rest)})
			case strings.HasSuffix(name, "_count"):
				counts[fam+"\x00"+labelKey(rest)] = val
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}

	for fam, rows := range buckets {
		byKey := map[string][]bucketRow{}
		for _, r := range rows {
			byKey[r.key] = append(byKey[r.key], r)
		}
		for key, rs := range byKey {
			sort.Slice(rs, func(i, j int) bool { return rs[i].le < rs[j].le })
			last := rs[len(rs)-1]
			if !math.IsInf(last.le, 1) {
				return fmt.Errorf("family %q: histogram without a +Inf bucket", fam)
			}
			for i := 1; i < len(rs); i++ {
				if rs[i].cum < rs[i-1].cum {
					return fmt.Errorf("family %q: bucket counts decrease at le=%v (%v -> %v)",
						fam, rs[i].le, rs[i-1].cum, rs[i].cum)
				}
			}
			if c, ok := counts[fam+"\x00"+key]; ok && c != last.cum {
				return fmt.Errorf("family %q: _count %v disagrees with +Inf bucket %v", fam, c, last.cum)
			}
		}
	}
	return nil
}
