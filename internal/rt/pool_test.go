package rt

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// resetPool gives a test a deterministic pool: hot teams on, cache empty.
// The returned func restores the previous configuration.
func resetPool(t *testing.T) func() {
	t.Helper()
	prevHot := SetHotTeams(false) // drains the cache
	SetHotTeams(true)
	return func() { SetHotTeams(prevHot) }
}

// captureTeam returns the team that served one region entry of size n.
func captureTeam(n int) *Team {
	var team *Team
	Region(n, func(w *Worker) {
		if w.ID == 0 {
			team = w.Team
		}
	})
	return team
}

func TestHotTeamReusedAcrossRegions(t *testing.T) {
	defer resetPool(t)()
	t1 := captureTeam(3)
	e1 := t1.Epoch()
	t2 := captureTeam(3)
	if t1 != t2 {
		t.Fatalf("second region did not reuse the cached team: %p vs %p", t1, t2)
	}
	if t2.Epoch() != e1+1 {
		t.Fatalf("epoch did not advance across leases: %d -> %d", e1, t2.Epoch())
	}
	st := ReadPoolStats()
	if st.Hits == 0 {
		t.Fatal("pool recorded no hit for the warm entry")
	}
	if st.IdleTeams == 0 {
		t.Fatal("team was not parked back in the pool")
	}
}

func TestHotTeamsOffSpawnsFreshTeams(t *testing.T) {
	prev := SetHotTeams(false)
	defer SetHotTeams(prev)
	if HotTeamsEnabled() {
		t.Fatal("gate did not disable")
	}
	if st := ReadPoolStats(); st.IdleTeams != 0 || st.IdleWorkers != 0 {
		t.Fatalf("disabling did not drain the pool: %+v", st)
	}
	t1 := captureTeam(3)
	t2 := captureTeam(3)
	if t1 == t2 {
		t.Fatal("teams reused with hot teams disabled")
	}
}

// A reused team must be indistinguishable from a fresh one: encounter
// counters, thread-local values and single/master claims all restart.
func TestHotTeamLeaseStateFresh(t *testing.T) {
	defer resetPool(t)()
	const n = 3
	for lease := 0; lease < 3; lease++ {
		var inits atomic.Int32
		var claims atomic.Int32
		Region(n, func(w *Worker) {
			if enc := w.NextEncounter("lease-key"); enc != 0 {
				t.Errorf("lease %d worker %d: first encounter index %d, want 0", lease, w.ID, enc)
			}
			if _, ok := w.TLSIfPresent("lease-tls"); ok {
				t.Errorf("lease %d worker %d: thread-local leaked from previous lease", lease, w.ID)
			}
			w.TLS("lease-tls", func() any { inits.Add(1); return w.ID })
			if claim, _ := SingleBegin(w, "lease-single", false); claim {
				claims.Add(1)
			}
		})
		if inits.Load() != n {
			t.Fatalf("lease %d: %d TLS inits, want %d", lease, inits.Load(), n)
		}
		if claims.Load() != 1 {
			t.Fatalf("lease %d: single claimed %d times, want 1", lease, claims.Load())
		}
	}
}

// Nesting deeper than the pool can hold must degrade to cold spawns, not
// deadlock — leasing never blocks. Run under -race in CI (portable job
// included).
func TestHotTeamNestedDeeperThanPool(t *testing.T) {
	defer resetPool(t)()
	prevSize := SetPoolSize(2)
	defer SetPoolSize(prevSize)
	prevNested := SetNested(true)
	defer SetNested(prevNested)

	const depth = 8
	var leaves atomic.Int32
	var nest func(d int)
	nest = func(d int) {
		if d == 0 {
			leaves.Add(1)
			return
		}
		Region(2, func(w *Worker) {
			if w.ID == 0 {
				nest(d - 1)
			}
		})
	}
	nest(depth)
	if leaves.Load() != 1 {
		t.Fatalf("nested chain ran %d leaves, want 1", leaves.Load())
	}
	if st := ReadPoolStats(); st.IdleWorkers > 2 {
		t.Fatalf("pool holds %d idle workers, bound is 2", st.IdleWorkers)
	}
}

// A worker panic retires the team — the poisoned team must never be
// leased again — while futures queued on it still resolve.
func TestHotTeamPanicRetiresNeverRecycles(t *testing.T) {
	defer resetPool(t)()
	before := ReadPoolStats()
	var f *Future
	var poisoned *Team
	func() {
		defer func() {
			if r := recover(); r != "lease boom" {
				t.Fatalf("recovered %v, want lease boom", r)
			}
		}()
		Region(2, func(w *Worker) {
			if w.ID == 0 {
				poisoned = w.Team
				f = SpawnFuture(func() any { return "still resolves" })
			}
			w.Team.Barrier().Wait()
			panic("lease boom")
		})
	}()
	if got := f.Get(); got != "still resolves" {
		t.Fatalf("future after panicked lease = %v", got)
	}
	after := ReadPoolStats()
	if after.Retired != before.Retired+1 {
		t.Fatalf("retired count %d -> %d, want +1", before.Retired, after.Retired)
	}
	for i := 0; i < 4; i++ {
		if captureTeam(2) == poisoned {
			t.Fatal("poisoned team was recycled")
		}
	}
}

func TestSetPoolSizeBoundsAndEvicts(t *testing.T) {
	defer resetPool(t)()
	prev := SetPoolSize(8)
	defer SetPoolSize(prev)
	captureTeam(3)
	captureTeam(3) // reuses; one idle team of 3
	if st := ReadPoolStats(); st.IdleWorkers != 3 {
		t.Fatalf("idle workers = %d, want 3", st.IdleWorkers)
	}
	SetPoolSize(2) // 3 no longer fits: evict
	if st := ReadPoolStats(); st.IdleWorkers != 0 || st.IdleTeams != 0 {
		t.Fatalf("shrink did not evict: %+v", st)
	}
	// The size in active use always keeps one pooled team, even above the
	// bound — otherwise the bound would silently disable reuse for large
	// teams. It parks alone (pool emptied for it first).
	big := captureTeam(3)
	if st := ReadPoolStats(); st.IdleWorkers != 3 || st.IdleTeams != 1 {
		t.Fatalf("over-bound team in active use was not cached: %+v", st)
	}
	if captureTeam(3) != big {
		t.Fatal("over-bound team was not reused")
	}
	// A release of another size evicts it and parks within the bound.
	captureTeam(2)
	if st := ReadPoolStats(); st.IdleWorkers != 2 || st.IdleTeams != 1 {
		t.Fatalf("fitting team not cached after evicting the big one: %+v", st)
	}
}

// Concurrent outer regions lease distinct teams from one pool; tasks,
// barriers and futures keep their contracts on every lease. Run under
// -race in CI.
func TestHotTeamPoolConcurrentStress(t *testing.T) {
	defer resetPool(t)()
	const goroutines, iters, teamSize = 4, 50, 2
	var tasksRun atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				var f *Future
				Region(teamSize, func(w *Worker) {
					if w.ID == 0 {
						Spawn(func() { tasksRun.Add(1) })
						f = SpawnFuture(func() any { return w.Team.Epoch() })
					}
					w.Team.Barrier().Wait()
				})
				if f.Get() == nil {
					panic("unresolved future after region")
				}
			}
		}()
	}
	wg.Wait()
	if got := tasksRun.Load(); got != goroutines*iters {
		t.Fatalf("tasks ran %d times, want %d", got, goroutines*iters)
	}
}

// A goroutine that inherited a worker context and outlives its region
// must still be able to Spawn safely while the team sits in the pool (or
// serves a later lease): the task runs, nothing deadlocks.
func TestStragglerSpawnAfterLeaseEnds(t *testing.T) {
	defer resetPool(t)()
	release := make(chan struct{})
	done := make(chan struct{})
	Region(2, func(w *Worker) {
		if w.ID != 0 {
			return
		}
		go func() {
			<-release
			Spawn(func() { close(done) })
		}()
	})
	close(release) // the region has completed; its team is pooled
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("straggler task never ran")
	}
}

// A full pool must make room for the just-finished team — the warmest,
// currently-in-demand size — by evicting stale inventory, not drop it.
// (Regression: a lone size-1 team parked by a 1-thread sweep must not
// starve every later size-4 release into cold spawns.)
func TestReleaseEvictsStaleSizesToMakeRoom(t *testing.T) {
	defer resetPool(t)()
	prev := SetPoolSize(4)
	defer SetPoolSize(prev)
	captureTeam(1) // parks a size-1 team
	big := captureTeam(4)
	if st := ReadPoolStats(); st.IdleWorkers != 4 || st.IdleTeams != 1 {
		t.Fatalf("size-4 release did not evict the stale size-1 team: %+v", st)
	}
	if captureTeam(4) != big {
		t.Fatal("subsequent size-4 entry did not reuse the parked team")
	}
}

// SetDefaultThreads must round-trip through the save/restore idiom: the
// raw override is returned (0 = GOMAXPROCS-tracking), so restoring never
// pins a stale GOMAXPROCS reading as an explicit override.
func TestSetDefaultThreadsRoundTrips(t *testing.T) {
	prev := SetDefaultThreads(3)
	if DefaultThreads() != 3 {
		t.Fatalf("override ineffective: %d", DefaultThreads())
	}
	if got := SetDefaultThreads(prev); got != 3 {
		t.Fatalf("swap returned %d, want 3", got)
	}
	if prev == 0 && defaultThreads.Load() != 0 {
		t.Fatal("restore pinned an explicit override instead of GOMAXPROCS tracking")
	}
}

func BenchmarkRegionEntryWarm(b *testing.B) {
	prev := SetHotTeams(true)
	defer SetHotTeams(prev)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Region(2, func(w *Worker) {})
	}
}

func BenchmarkRegionEntryCold(b *testing.B) {
	prev := SetHotTeams(false)
	defer SetHotTeams(prev)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Region(2, func(w *Worker) {})
	}
}

// TestHotTeamStressSetPoolSizeChurnPanics oversubscribes the pool — many
// goroutines entering nested 2–4-worker regions — while SetPoolSize
// shrinks and grows the cache underneath and periodic worker panics retire
// teams mid-traffic. The assertions are survival ones: every entry
// completes (no deadlock, no lost wakeup), panics propagate to exactly the
// entries that raised them, and the pool ends within its configured bound.
// Run under -race in CI.
func TestHotTeamStressSetPoolSizeChurnPanics(t *testing.T) {
	defer resetPool(t)()
	prevPool := SetPoolSize(4) // 2 two-worker teams: goroutines ≫ pool
	defer SetPoolSize(prevPool)

	const goroutines, iters = 16, 60
	stop := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		sizes := []int{2, 8, 1, 4}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			SetPoolSize(sizes[i%len(sizes)])
			time.Sleep(100 * time.Microsecond)
		}
	}()

	var completed, panicsSeen atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				wantPanic := (g+i)%13 == 0
				func() {
					defer func() {
						if r := recover(); r != nil {
							if !wantPanic {
								panic(r)
							}
							panicsSeen.Add(1)
						} else if wantPanic {
							t.Error("worker panic did not propagate to the region entry")
						}
					}()
					Region(2+(g+i)%3, func(w *Worker) {
						if w.ID == 0 && i%4 == 0 {
							Region(2, func(inner *Worker) {})
						}
						if wantPanic && w.ID == w.Team.Size-1 {
							panic("churn")
						}
					})
				}()
				completed.Add(1)
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	churn.Wait()

	if got := completed.Load(); got != goroutines*iters {
		t.Fatalf("completed %d entries, want %d", got, goroutines*iters)
	}
	if panicsSeen.Load() == 0 {
		t.Fatal("stress schedule never exercised the panic-retire path")
	}
	// The churner may have left any bound in force; pin one and verify the
	// pool respects it once traffic has stopped.
	SetPoolSize(4)
	if st := ReadPoolStats(); st.IdleWorkers > 4 {
		t.Fatalf("pool over bound after churn: %d idle workers", st.IdleWorkers)
	}
}
