package rt

import "sync"

// The @Critical mechanism replaces Java's built-in synchronized: its scope
// is "all threads in the system" rather than one team, and the lock can be
// shared among multiple type-unrelated objects by naming it with an id
// (paper §III.C). Three registries back the three flavours the paper
// describes: named locks (@Critical(id=...)), per-object captured locks
// (criticalUsingCapturedLock), and per-key lock tables (the "lock per
// particle" case-specific strategy of Figure 15).

var (
	namedMu    sync.Mutex
	namedLocks = map[string]*sync.Mutex{}

	objectLocks sync.Map // comparable key -> *sync.Mutex
)

// NamedLock returns the process-wide lock registered under id, creating it
// on first use. Annotations sharing an id therefore share a lock even
// across unrelated classes, as in OpenMP named critical sections.
func NamedLock(id string) *sync.Mutex {
	namedMu.Lock()
	defer namedMu.Unlock()
	l := namedLocks[id]
	if l == nil {
		l = &sync.Mutex{}
		namedLocks[id] = l
	}
	return l
}

// ObjectLock returns the lock owned by the given target, creating it on
// first use — the analogue of "the lock of the object where the annotation
// is defined is used (as in plain Java)". key must be comparable (use a
// pointer to the target object).
func ObjectLock(key any) *sync.Mutex {
	if l, ok := objectLocks.Load(key); ok {
		return l.(*sync.Mutex)
	}
	l, _ := objectLocks.LoadOrStore(key, &sync.Mutex{})
	return l.(*sync.Mutex)
}

// LockTable is a fixed-size table of locks indexed by a small integer key,
// supporting fine-grained strategies such as one lock per particle. The
// zero value is unusable; create tables with NewLockTable.
type LockTable struct {
	locks []sync.Mutex
}

// NewLockTable creates a table of n locks.
func NewLockTable(n int) *LockTable {
	return &LockTable{locks: make([]sync.Mutex, n)}
}

// Lock locks entry key (clamped into range by modulo, so tables can be
// sized independently of the exact key universe).
func (t *LockTable) Lock(key int) { t.locks[t.index(key)].Lock() }

// Unlock unlocks entry key.
func (t *LockTable) Unlock(key int) { t.locks[t.index(key)].Unlock() }

// Len reports the number of locks in the table.
func (t *LockTable) Len() int { return len(t.locks) }

func (t *LockTable) index(key int) int {
	i := key % len(t.locks)
	if i < 0 {
		i += len(t.locks)
	}
	return i
}
