package rt

import (
	"reflect"
	"sync"
)

// The @Critical mechanism replaces Java's built-in synchronized: its scope
// is "all threads in the system" rather than one team, and the lock can be
// shared among multiple type-unrelated objects by naming it with an id
// (paper §III.C). Three registries back the three flavours the paper
// describes: named locks (@Critical(id=...)), per-object captured locks
// (criticalUsingCapturedLock), and per-key lock tables (the "lock per
// particle" case-specific strategy of Figure 15).
//
// Both registries are sharded: lookups from different critical sections
// land on different shards, so resolving a lock never serialises the whole
// process on one mutex the way the original single map+Mutex registry did.
// The woven @Critical advice additionally caches the resolved lock in its
// binding at weave time, so steady-state critical entries do one pointer
// load and never touch a registry at all — the shards only matter for
// weave-time resolution and for programs that resolve locks dynamically.

// lockShards is the registry shard count. Power of two so shard selection
// is a mask; 32 is far beyond any plausible weave-time concurrency.
const lockShards = 32

// namedShard is one stripe of the named-lock registry. Reads (the common
// case after first use) take only the shard's read lock.
type namedShard struct {
	mu sync.RWMutex           // 24 bytes
	m  map[string]*sync.Mutex // 8 bytes
	_  [32]byte               // pad to 64: neighbouring shards off this line
}

var namedShards [lockShards]namedShard

// fnv32 is FNV-1a over the id, inlined so shard selection costs no
// allocation or import beyond arithmetic.
func fnv32(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// NamedLock returns the process-wide lock registered under id, creating it
// on first use. Annotations sharing an id therefore share a lock even
// across unrelated classes, as in OpenMP named critical sections.
func NamedLock(id string) *sync.Mutex {
	s := &namedShards[fnv32(id)&(lockShards-1)]
	s.mu.RLock()
	l := s.m[id]
	s.mu.RUnlock()
	if l != nil {
		return l
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.m == nil {
		s.m = make(map[string]*sync.Mutex)
	}
	if l = s.m[id]; l == nil {
		l = &sync.Mutex{}
		s.m[id] = l
	}
	return l
}

// objectShards stripes the per-object registry. Each shard is a sync.Map
// (lock-free steady-state loads); sharding additionally spreads first-use
// stores and the maps' internal promotion work across stripes.
var objectShards [lockShards]sync.Map

// objectShard picks the stripe for a key. Pointer-shaped keys — the
// documented usage is "a pointer to the target object" — hash by address;
// other comparable keys fall back to stripe 0, which is exactly the old
// single-registry behaviour for them.
func objectShard(key any) *sync.Map {
	v := reflect.ValueOf(key)
	switch v.Kind() {
	case reflect.Pointer, reflect.UnsafePointer, reflect.Chan, reflect.Map, reflect.Func:
		// Fibonacci hash of the address; high bits select the stripe so
		// allocator alignment in the low bits cannot collapse the spread.
		return &objectShards[(uint64(v.Pointer())*0x9e3779b97f4a7c15)>>(64-5)&(lockShards-1)]
	}
	return &objectShards[0]
}

// ObjectLock returns the lock owned by the given target, creating it on
// first use — the analogue of "the lock of the object where the annotation
// is defined is used (as in plain Java)". key must be comparable (use a
// pointer to the target object).
func ObjectLock(key any) *sync.Mutex {
	s := objectShard(key)
	if l, ok := s.Load(key); ok {
		return l.(*sync.Mutex)
	}
	l, _ := s.LoadOrStore(key, &sync.Mutex{})
	return l.(*sync.Mutex)
}

// LockTable is a fixed-size table of locks indexed by a small integer key,
// supporting fine-grained strategies such as one lock per particle. Each
// lock sits on its own cache line: neighbouring particles are exactly the
// keys hot at the same time, and eight mutexes sharing a line would turn
// the fine-grained strategy back into coarse coherence traffic. The zero
// value is unusable; create tables with NewLockTable.
type LockTable struct {
	locks []paddedMutex
}

type paddedMutex struct {
	mu sync.Mutex
	_  [56]byte
}

// NewLockTable creates a table of n locks.
func NewLockTable(n int) *LockTable {
	return &LockTable{locks: make([]paddedMutex, n)}
}

// Lock locks entry key (clamped into range by modulo, so tables can be
// sized independently of the exact key universe).
func (t *LockTable) Lock(key int) { t.locks[t.index(key)].mu.Lock() }

// Unlock unlocks entry key.
func (t *LockTable) Unlock(key int) { t.locks[t.index(key)].mu.Unlock() }

// Len reports the number of locks in the table.
func (t *LockTable) Len() int { return len(t.locks) }

func (t *LockTable) index(key int) int {
	i := key % len(t.locks)
	if i < 0 {
		i += len(t.locks)
	}
	return i
}
