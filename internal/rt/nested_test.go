package rt

import (
	"context"
	"runtime/pprof"
	"sync/atomic"
	"testing"
	"time"
)

// Nested region with the gate on (default): the inner region is a real
// team with its own ids, size and barrier, and the outer context is
// restored afterwards.
func TestNestedRegionRealTeamSemantics(t *testing.T) {
	const outer, inner = 2, 3
	var innerRuns atomic.Int32
	var phaseSum atomic.Int32
	Region(outer, func(ow *Worker) {
		outerID := ow.ID
		Region(inner, func(iw *Worker) {
			innerRuns.Add(1)
			if iw.Team.Size != inner || NumThreads() != inner {
				t.Errorf("inner NumThreads = %d, want %d", NumThreads(), inner)
			}
			if ThreadID() != iw.ID || iw.ID < 0 || iw.ID >= inner {
				t.Errorf("inner ThreadID = %d (worker %d)", ThreadID(), iw.ID)
			}
			if Level() != 2 {
				t.Errorf("inner Level = %d, want 2", Level())
			}
			if iw.Team.ParentTeam() == nil || iw.Team.ParentTeam().Size != outer {
				t.Errorf("inner team lineage broken")
			}
			if iw.Team.Root().Size != outer || iw.Team.Root().Level() != 1 {
				t.Errorf("root team lookup broken")
			}
			// The inner barrier must synchronise exactly the inner team:
			// all inner workers add before any proceeds past it.
			phaseSum.Add(1)
			iw.Team.Barrier().Wait()
			if got := phaseSum.Load(); got < inner {
				t.Errorf("inner barrier released with %d arrivals", got)
			}
			iw.Team.Barrier().Wait()
			if iw.ID == 0 {
				phaseSum.Add(-inner) // reset per inner team, one resetter each
			}
		})
		if ThreadID() != outerID || NumThreads() != outer || Level() != 1 {
			t.Errorf("outer context not restored: id=%d n=%d level=%d",
				ThreadID(), NumThreads(), Level())
		}
	})
	if innerRuns.Load() != outer*inner {
		t.Fatalf("inner bodies ran %d times, want %d", innerRuns.Load(), outer*inner)
	}
}

// With nesting disabled, an inner region collapses to a single-worker team
// but keeps consistent inner-team semantics.
func TestNestedRegionGateOff(t *testing.T) {
	prev := SetNested(false)
	defer SetNested(prev)
	if NestedEnabled() {
		t.Fatal("gate did not disable")
	}
	var innerRuns atomic.Int32
	Region(2, func(ow *Worker) {
		Region(3, func(iw *Worker) {
			innerRuns.Add(1)
			if NumThreads() != 1 || ThreadID() != 0 {
				t.Errorf("serialized inner region: id=%d n=%d", ThreadID(), NumThreads())
			}
			if Level() != 2 {
				t.Errorf("serialized inner region level = %d, want 2", Level())
			}
			iw.Team.Barrier().Wait() // must not deadlock: one party
		})
	})
	if innerRuns.Load() != 2 {
		t.Fatalf("inner bodies ran %d times, want 2 (one per outer worker)", innerRuns.Load())
	}
	// Outermost regions are unaffected by the gate.
	var n atomic.Int32
	Region(3, func(w *Worker) { n.Add(1) })
	if n.Load() != 3 {
		t.Fatalf("outermost region ran %d workers with nesting off", n.Load())
	}
}

// Tasks spawned in an inner team join at the inner region's end, not the
// outer one's — deque scoping follows the team.
func TestNestedRegionTaskScoping(t *testing.T) {
	var innerTasks atomic.Int32
	Region(2, func(ow *Worker) {
		Region(2, func(iw *Worker) {
			if iw.ID == 0 {
				Spawn(func() { innerTasks.Add(1) })
			}
		})
		// Inner regions have fully joined their tasks here.
		if got := innerTasks.Load(); got < 1 {
			t.Errorf("inner region exited with %d tasks run", got)
		}
	})
	if innerTasks.Load() != 2 {
		t.Fatalf("inner tasks ran %d times, want 2", innerTasks.Load())
	}
}

func TestLevelOutsideRegions(t *testing.T) {
	if Level() != 0 {
		t.Fatalf("Level outside regions = %d", Level())
	}
}

func TestTaskYield(t *testing.T) {
	if TaskYield(4) != 0 {
		t.Fatal("TaskYield outside region ran tasks")
	}
	Region(1, func(w *Worker) {
		var ran atomic.Int32
		Spawn(func() { ran.Add(1) })
		Spawn(func() { ran.Add(1) })
		if got := TaskYield(1); got != 1 || ran.Load() != 1 {
			t.Errorf("TaskYield(1) ran %d tasks (%d executed)", got, ran.Load())
		}
		if got := TaskYield(8); got != 1 || ran.Load() != 2 {
			t.Errorf("second TaskYield ran %d tasks (%d executed)", got, ran.Load())
		}
	})
}

// A panic inside a deferred task is captured and re-raised at region end,
// and queued tasks never leak the group counter.
func TestDeferredTaskPanicPropagates(t *testing.T) {
	defer func() {
		if r := recover(); r != "task boom" {
			t.Fatalf("recovered %v, want task boom", r)
		}
	}()
	Region(2, func(w *Worker) {
		if w.ID == 0 {
			Spawn(func() { panic("task boom") })
		}
	})
}

// An application setting its own profiler labels inside a region (the one
// mechanism that can clobber the label-backend binding) must degrade
// worker lookups gracefully and never break region exit.
func TestRegionSurvivesForeignProfilerLabels(t *testing.T) {
	var sawDegraded atomic.Bool
	Region(2, func(w *Worker) {
		pprof.Do(context.Background(), pprof.Labels("app", "probe"), func(context.Context) {
			// Inside Do the binding is either shadowed (label backend) or
			// untouched (portable backend); both are acceptable — what
			// matters is no crash and no garbage.
			if Current() == nil {
				sawDegraded.Store(true)
			} else if Current() != w {
				t.Error("foreign label produced a wrong worker")
			}
		})
	})
	if Current() != nil {
		t.Fatal("worker context leaked after region with foreign labels")
	}
	_ = sawDegraded.Load() // backend-dependent; informational only
}

// A future spawned on an enclosing team and demanded inside a nested
// region must not deadlock: the getter claims and executes the queued
// producer directly when team-deque helping cannot reach it. With nesting
// disabled the inner team is a single worker, making the hang — absent
// the claim path — deterministic.
func TestFutureGetAcrossNestedRegion(t *testing.T) {
	prev := SetNested(false)
	defer SetNested(prev)
	var got atomic.Int64
	Region(1, func(ow *Worker) {
		f := SpawnFuture(func() any { return 40 + 2 })
		Region(1, func(iw *Worker) {
			got.Store(int64(f.Get().(int)))
		})
	})
	if got.Load() != 42 {
		t.Fatalf("future across nested region = %d, want 42", got.Load())
	}
}

// Futures queued when a region panics must still resolve — the region
// failure re-raises, but a holder of the future elsewhere cannot be left
// blocked forever on Get.
func TestQueuedFutureResolvesDespiteRegionPanic(t *testing.T) {
	var f *Future
	func() {
		defer func() {
			if r := recover(); r != "region boom" {
				t.Fatalf("recovered %v, want region boom", r)
			}
		}()
		Region(2, func(w *Worker) {
			if w.ID == 0 {
				f = SpawnFuture(func() any { return "late" })
			}
			// Every worker panics, so every quiesce is skipped and only
			// the master's end-of-region safety drain can run the task.
			w.Team.Barrier().Wait()
			panic("region boom")
		})
	}()
	resolved := make(chan any, 1)
	go func() { resolved <- f.Get() }()
	select {
	case v := <-resolved:
		if v != "late" {
			t.Fatalf("future = %v, want late", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("future never resolved after region panic")
	}
}
