package rt

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// admissionTestSetup enables admission with a clean configuration and
// registers cleanup restoring the defaults. Counters are cumulative and
// process-global, so tests assert deltas, not absolutes.
func admissionTestSetup(t *testing.T, maxTeams int, policy AdmitPolicy, timeout time.Duration) {
	t.Helper()
	prevHot := SetHotTeams(true)
	prevOn := SetAdmissionControl(true)
	prevP, prevT := SetAdmitPolicy(policy, timeout)
	prevMax := SetAdmitMaxTeams(maxTeams)
	prevQB := SetAdmitQueueBound(0)
	t.Cleanup(func() {
		SetAdmitQueueBound(prevQB)
		SetAdmitMaxTeams(prevMax)
		SetAdmitPolicy(prevP, prevT)
		SetAdmissionControl(prevOn)
		SetHotTeams(prevHot)
	})
}

// occupyRegion enters a 2-worker region on its own goroutine whose master
// blocks until release is closed; the returned channel closes once the
// region is running (slot held). done closes when the region has fully
// exited.
func occupyRegion(t *testing.T, tenant string, release <-chan struct{}) (started, done chan struct{}) {
	t.Helper()
	started = make(chan struct{})
	done = make(chan struct{})
	go func() {
		defer close(done)
		tok := EnterTenant(tenant)
		defer tok.Exit()
		Region(2, func(w *Worker) {
			if w.ID == 0 {
				close(started)
				<-release
			}
		})
	}()
	return started, done
}

func waitCond(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestAdmissionFastPathGrantAndToken(t *testing.T) {
	admissionTestSetup(t, 8, AdmitBlock, 0)
	before := ReadAdmissionStats()

	tok := EnterTenant("fastpath")
	ran := 0
	Region(2, func(w *Worker) {
		if w.ID == 0 {
			ran = NumThreads()
		}
	})
	tok.Exit()

	if ran != 2 {
		t.Fatalf("admitted region ran with %d threads, want 2", ran)
	}
	if got := tok.Admitted(); got != 1 {
		t.Fatalf("token Admitted = %d, want 1", got)
	}
	if tok.Queued() != 0 || tok.Rejected() != 0 || tok.Degraded() != 0 {
		t.Fatalf("unexpected token outcomes: queued=%d rejected=%d degraded=%d",
			tok.Queued(), tok.Rejected(), tok.Degraded())
	}
	after := ReadAdmissionStats()
	if after.Admitted-before.Admitted < 1 || after.FastAdmits-before.FastAdmits < 1 {
		t.Fatalf("stats did not record the fast admit: %+v vs %+v", after, before)
	}
	if after.Held != 0 {
		t.Fatalf("slot leaked: Held = %d after region exit", after.Held)
	}
	found := false
	for _, ts := range after.Tenants {
		if ts.Name == "fastpath" {
			found = true
			if ts.Admitted < 1 || ts.Held != 0 {
				t.Fatalf("tenant stats wrong: %+v", ts)
			}
		}
	}
	if !found {
		t.Fatalf("tenant fastpath missing from stats: %+v", after.Tenants)
	}
}

func TestAdmissionFIFOOrder(t *testing.T) {
	admissionTestSetup(t, 1, AdmitBlock, 0)

	relA := make(chan struct{})
	startedA, doneA := occupyRegion(t, "fifo-a", relA)
	<-startedA

	// Enqueue B, then C, strictly in order.
	var order []string
	var orderMu sync.Mutex
	enqueue := func(name string, depth int) chan struct{} {
		done := make(chan struct{})
		go func() {
			defer close(done)
			tok := EnterTenant(name)
			defer tok.Exit()
			Region(2, func(w *Worker) {
				if w.ID == 0 {
					orderMu.Lock()
					order = append(order, name)
					orderMu.Unlock()
				}
			})
		}()
		waitCond(t, "queue depth "+fmt.Sprint(depth), func() bool {
			return ReadAdmissionStats().QueueDepth >= depth
		})
		return done
	}
	doneB := enqueue("fifo-b", 1)
	doneC := enqueue("fifo-c", 2)

	close(relA)
	<-doneA
	<-doneB
	<-doneC

	orderMu.Lock()
	defer orderMu.Unlock()
	if len(order) != 2 || order[0] != "fifo-b" || order[1] != "fifo-c" {
		t.Fatalf("FIFO violated: grant order %v, want [fifo-b fifo-c]", order)
	}
}

func TestAdmissionQuotaSkipsOffenderNotOthers(t *testing.T) {
	admissionTestSetup(t, 2, AdmitBlock, 0)
	prevQuota := SetTenantQuota("quota-a", 1)
	defer SetTenantQuota("quota-a", prevQuota)

	relA := make(chan struct{})
	startedA, doneA := occupyRegion(t, "quota-a", relA)
	<-startedA

	// A second quota-a region must queue (over quota) even though a global
	// slot is free.
	relA2 := make(chan struct{})
	startedA2, doneA2 := occupyRegion(t, "quota-a", relA2)
	waitCond(t, "a2 queued", func() bool { return ReadAdmissionStats().QueueDepth >= 1 })
	select {
	case <-startedA2:
		t.Fatal("second quota-a region was granted beyond the tenant quota")
	default:
	}

	// A different tenant must be granted immediately — the quota-blocked
	// waiter ahead of it in the queue must not block it.
	relB := make(chan struct{})
	startedB, doneB := occupyRegion(t, "quota-b", relB)
	select {
	case <-startedB:
	case <-time.After(5 * time.Second):
		t.Fatal("tenant quota-b starved behind a quota-blocked waiter")
	}

	// Releasing A's first region frees its quota; A2 must now be granted.
	close(relA)
	<-doneA
	select {
	case <-startedA2:
	case <-time.After(5 * time.Second):
		t.Fatal("second quota-a region never granted after quota freed")
	}
	close(relA2)
	close(relB)
	<-doneA2
	<-doneB
}

func TestAdmissionRejectDegradesServesSerialized(t *testing.T) {
	admissionTestSetup(t, 1, AdmitReject, 0)

	rel := make(chan struct{})
	started, done := occupyRegion(t, "rej-hold", rel)
	<-started

	tok := EnterTenant("rej-shed")
	width := 0
	Region(4, func(w *Worker) {
		if w.ID == 0 {
			width = NumThreads()
		}
	})
	tok.Exit()

	if width != 1 {
		t.Fatalf("rejected region ran with %d threads, want serialized 1", width)
	}
	if tok.Rejected() != 1 || tok.Degraded() != 1 {
		t.Fatalf("token outcomes: rejected=%d degraded=%d, want 1/1", tok.Rejected(), tok.Degraded())
	}
	close(rel)
	<-done
}

func TestAdmissionTimeoutDegrades(t *testing.T) {
	admissionTestSetup(t, 1, AdmitTimeout, 5*time.Millisecond)

	rel := make(chan struct{})
	started, done := occupyRegion(t, "to-hold", rel)
	<-started

	tok := EnterTenant("to-wait")
	width := 0
	Region(2, func(w *Worker) {
		if w.ID == 0 {
			width = NumThreads()
		}
	})
	tok.Exit()
	if width != 1 {
		t.Fatalf("timed-out region ran with %d threads, want serialized 1", width)
	}
	if tok.TimedOut() != 1 || tok.Degraded() != 1 {
		t.Fatalf("token outcomes: timedOut=%d degraded=%d, want 1/1", tok.TimedOut(), tok.Degraded())
	}
	if st := ReadAdmissionStats(); st.QueueDepth != 0 {
		t.Fatalf("timed-out waiter left in queue: depth %d", st.QueueDepth)
	}
	close(rel)
	<-done
}

func TestAdmissionQueueBoundOverflowDegrades(t *testing.T) {
	admissionTestSetup(t, 1, AdmitBlock, 0)
	SetAdmitQueueBound(1)

	rel := make(chan struct{})
	started, done := occupyRegion(t, "qb-hold", rel)
	<-started

	relW := make(chan struct{})
	_, doneW := occupyRegion(t, "qb-wait", relW)
	waitCond(t, "one waiter queued", func() bool { return ReadAdmissionStats().QueueDepth >= 1 })

	// The queue is at its bound: the next entry must degrade, not block —
	// a bounded queue rejects rather than deadlocks at saturation.
	tok := EnterTenant("qb-overflow")
	width := 0
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		Region(2, func(w *Worker) {
			if w.ID == 0 {
				width = NumThreads()
			}
		})
	}()
	select {
	case <-finished:
	case <-time.After(5 * time.Second):
		t.Fatal("overflow entry blocked instead of degrading")
	}
	tok.Exit()
	if width != 1 {
		t.Fatalf("overflow region ran with %d threads, want serialized 1", width)
	}
	close(rel)
	close(relW)
	<-done
	<-doneW
}

func TestAdmissionNestedRegionsBypassQueue(t *testing.T) {
	admissionTestSetup(t, 1, AdmitBlock, 0)

	// The single slot is held by this region; its nested region must run
	// without re-entering admission (which would self-deadlock).
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		Region(2, func(w *Worker) {
			if w.ID == 0 {
				Region(2, func(inner *Worker) {})
			}
		})
	}()
	select {
	case <-finished:
	case <-time.After(5 * time.Second):
		t.Fatal("nested region deadlocked against its own admission slot")
	}
}

func TestAdmissionDisableReleasesWaiters(t *testing.T) {
	admissionTestSetup(t, 1, AdmitBlock, 0)

	rel := make(chan struct{})
	started, done := occupyRegion(t, "dis-hold", rel)
	<-started
	relW := make(chan struct{})
	startedW, doneW := occupyRegion(t, "dis-wait", relW)
	waitCond(t, "waiter queued", func() bool { return ReadAdmissionStats().QueueDepth >= 1 })

	SetAdmissionControl(false)
	select {
	case <-startedW:
	case <-time.After(5 * time.Second):
		t.Fatal("queued waiter not released by SetAdmissionControl(false)")
	}
	close(relW)
	close(rel)
	<-done
	<-doneW
	if st := ReadAdmissionStats(); st.Held != 0 || st.QueueDepth != 0 {
		t.Fatalf("controller not drained after disable: held=%d depth=%d", st.Held, st.QueueDepth)
	}
}

func TestAdmissionPanicReleasesSlot(t *testing.T) {
	admissionTestSetup(t, 1, AdmitBlock, 0)

	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("worker panic not re-raised")
			}
		}()
		Region(2, func(w *Worker) {
			if w.ID == 1 {
				panic("boom")
			}
		})
	}()
	// The slot must have been released despite the panic: another region
	// must be admitted without queueing.
	if st := ReadAdmissionStats(); st.Held != 0 {
		t.Fatalf("panicked region leaked its slot: held=%d", st.Held)
	}
	Region(2, func(w *Worker) {})
}

// TestHotTeamAdmissionStressOversubscribed is the multi-tenant server
// shape under -race: many request goroutines (≫ pool and admission
// capacity) entering small nested regions through every policy while pool
// size, quotas and panic retirement churn underneath. Completion is the
// assertion — no deadlock, no lost slot — plus zero held slots at the end.
// The HotTeam name keeps it inside the CI pool-stress step's -run pattern.
func TestHotTeamAdmissionStressOversubscribed(t *testing.T) {
	admissionTestSetup(t, 2, AdmitTimeout, 2*time.Millisecond)
	SetAdmitQueueBound(8)
	prevPool := SetPoolSize(4)
	defer SetPoolSize(prevPool)

	const goroutines = 24
	const iters = 40
	stop := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		sizes := []int{2, 4, 8, 1}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			SetPoolSize(sizes[i%len(sizes)])
			SetTenantQuota("stress-0", i%3) // 0 clears, 1..2 cap
			if i%2 == 0 {
				SetAdmitPolicy(AdmitBlock, 0)
			} else {
				SetAdmitPolicy(AdmitTimeout, time.Millisecond)
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()

	var completed atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tenant := fmt.Sprintf("stress-%d", g%4)
			for i := 0; i < iters; i++ {
				tok := EnterTenant(tenant)
				func() {
					defer func() { recover() }() // panic-retire churn below
					Region(2+(i%3), func(w *Worker) {
						if w.ID == 0 && i%3 == 0 {
							Region(2, func(inner *Worker) {})
						}
						if w.ID == 1 && i%17 == 0 {
							panic("retire me")
						}
					})
				}()
				tok.Exit()
				completed.Add(1)
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	churn.Wait()

	if got := completed.Load(); got != goroutines*iters {
		t.Fatalf("completed %d region entries, want %d", got, goroutines*iters)
	}
	waitCond(t, "all slots released", func() bool { return ReadAdmissionStats().Held == 0 })
	if st := ReadAdmissionStats(); st.QueueDepth != 0 {
		t.Fatalf("waiters left queued after stress: %d", st.QueueDepth)
	}
}
