package rt

import (
	"sync"
	"sync/atomic"
	"time"

	"aomplib/internal/sched"
)

// ForContext is the per-worker view of one encounter of a for work-sharing
// construct. It carries the full iteration space and the shared per-encounter
// state (dynamic dispenser, ordered sequencer). The for advice pushes it on
// the worker while executing the worker's portion so that nested constructs
// — notably @Ordered, which "is only supported within the calling context
// of a for method" — can find it.
type ForContext struct {
	Space  sched.Space
	Kind   sched.Kind
	Worker *Worker
	shared *forShared

	// batchLo/batchHi are the worker-locally claimed but not yet dispensed
	// iteration indices of a dynamic batch: Dispense claims several chunks
	// from the shared cursor in one CAS and serves them from here, so the
	// observable chunk granularity is unchanged while the team-shared
	// cursor is touched a fraction as often.
	batchLo, batchHi int64

	// start/iters bracket this worker's share for the speed estimator:
	// BeginFor stamps start, the dispensers accumulate iters (static kinds
	// are reconstructed arithmetically at EndFor), and EndFor folds
	// iters/elapsed into the worker's speed EWMA (adapt.go). Worker-local
	// plain fields — no atomics, no allocation.
	start time.Time
	iters int64
}

// dispenseBatchChunks is how many dynamic chunks one shared-cursor CAS
// claims (away from the loop tail, where NextBatch backs off to single
// chunks so the last work still balances).
const dispenseBatchChunks = 4

// forShared is the team-shared state of one for-construct encounter.
type forShared struct {
	// kind is the schedule this encounter resolved to. Indirect kinds
	// (sched.Runtime, sched.Auto) are resolved exactly once, by the first
	// arriving worker, and shared here — so a concurrent change of the
	// process-wide default can never split one encounter across two
	// schedules (which would desynchronise the implicit barrier).
	kind  sched.Kind
	disp  *sched.Dispenser      // dynamic/guided only
	sdisp *sched.StealDispenser // steal/weightedSteal only

	// adapt links the encounter to its construct's persistent adaptive
	// state; nil when the construct is not adaptively scheduled. The
	// imbalance measurement below feeds it: each worker folds its share
	// time into maxNs/sumNs at EndFor, and the last finisher (left hits
	// zero) publishes max/mean — the ratio the next encounter re-tunes on.
	adapt    *loopAdapt
	nthreads int
	maxNs    atomic.Int64
	sumNs    atomic.Int64
	left     atomic.Int32

	// ordered sequencing: next loop value whose ordered section may run.
	omu   sync.Mutex
	ocond *sync.Cond
	onext int
}

// noteDone folds one worker's share time into the encounter's imbalance
// measurement, publishing to the adaptive state when the last worker
// finishes.
func (fs *forShared) noteDone(elapsed int64) {
	for {
		cur := fs.maxNs.Load()
		if elapsed <= cur || fs.maxNs.CompareAndSwap(cur, elapsed) {
			break
		}
	}
	sum := fs.sumNs.Add(elapsed)
	if fs.left.Add(-1) == 0 {
		if mean := sum / int64(fs.nthreads); mean > 0 {
			fs.adapt.publish(float64(fs.maxNs.Load()) / float64(mean))
		}
	}
}

type forKey struct {
	key any
}

// BeginFor establishes the work-sharing context for one encounter of the
// construct identified by key on worker w. kind/chunk select the schedule;
// indirect kinds (Runtime, Auto, Adaptive) resolve once per encounter in
// the shared state, and the resolved kind is published as ForContext.Kind
// — callers switch on it, not on the declared kind. Adaptive — and Auto on
// a re-encounter of the same construct — resolves through the team's
// persistent adaptive state (adapt.go), so the schedule each encounter
// runs under is fed by the imbalance the previous one measured. The
// returned ForContext must be finished with EndFor (normally deferred).
// Contexts are recycled through a worker-private free list, so
// steady-state encounters of for constructs allocate nothing on the
// worker side.
func BeginFor(w *Worker, key any, sp sched.Space, kind sched.Kind, chunk int) *ForContext {
	enc := w.NextEncounter(forKey{key})
	t := w.Team
	shared := t.Instance(forKey{key}, enc, func() any {
		// Runs under t.mu (Instance), which also guards t.adapt/t.weights.
		n := sp.Count()
		declared := kind
		if declared == sched.Runtime {
			declared = sched.Default()
		}
		fs := &forShared{onext: sp.Lo, nthreads: t.Size}
		k, c := declared, chunk
		switch {
		case (declared == sched.Adaptive || declared == sched.Auto) && t.Size > 1:
			k, c, fs.adapt = t.adaptResolveLocked(key, declared, n, c)
			fs.left.Store(int32(t.Size))
		default:
			k = sched.Resolve(k, n, t.Size)
		}
		fs.kind = k
		switch k {
		case sched.Dynamic, sched.Guided:
			fs.disp = sched.NewDispenser(sp, c, k == sched.Guided, t.Size)
		case sched.Steal:
			fs.sdisp = sched.NewStealDispenser(sp, c, t.Size)
		case sched.WeightedSteal:
			fs.sdisp = sched.NewStealDispenserWeighted(sp, c, t.Size, t.speedWeightsLocked())
		}
		return fs
	}).(*forShared)
	var fc *ForContext
	if n := len(w.fcFree); n > 0 {
		fc = w.fcFree[n-1]
		w.fcFree = w.fcFree[:n-1]
	} else {
		fc = &ForContext{}
	}
	*fc = ForContext{Space: sp, Kind: shared.kind, Worker: w, shared: shared, start: time.Now()}
	w.activeFor = append(w.activeFor, fc)
	t.Release(forKey{key}, enc)
	if h := obsHooks(); h != nil && h.WorkBegin != nil {
		h.WorkBegin(w.gid, t.tid, uint8(shared.kind))
	}
	return fc
}

// EndFor pops the work-sharing context from the worker, folds the share's
// measured throughput into the worker's speed estimate and the encounter's
// imbalance measurement, and recycles the context.
func (fc *ForContext) EndFor() {
	w := fc.Worker
	if n := len(w.activeFor); n > 0 && w.activeFor[n-1] == fc {
		w.activeFor = w.activeFor[:n-1]
		elapsed := int64(time.Since(fc.start))
		iters := fc.iters
		switch fc.Kind {
		// Static shares never dispense — reconstruct the count they ran.
		case sched.StaticBlock:
			iters = int64(sched.Block(fc.Space, w.Team.Size, w.ID).Count())
		case sched.StaticCyclic:
			iters = int64(sched.Cyclic(fc.Space, w.Team.Size, w.ID).Count())
		}
		w.updateSpeed(iters, elapsed)
		fs := fc.shared
		if fs.adapt != nil {
			fs.noteDone(elapsed)
		}
		fc.shared = nil
		w.fcFree = append(w.fcFree, fc)
		if h := obsHooks(); h != nil {
			if h.LoopRate != nil && iters > 0 {
				h.LoopRate(w.gid, iters, elapsed)
			}
			if h.WorkEnd != nil {
				h.WorkEnd(w.gid, w.Team.tid)
			}
		}
	}
}

// ActiveFor returns the innermost work-sharing context of the worker, or
// nil when the worker is not inside a for construct.
func (w *Worker) ActiveFor() *ForContext {
	if n := len(w.activeFor); n > 0 {
		return w.activeFor[n-1]
	}
	return nil
}

// Dispense draws the next chunk for dynamic/guided schedules, returning it
// as a sub-space. ok is false when the iteration space is exhausted.
// Dynamic chunks are drawn through a worker-local batch (several chunks
// claimed per shared-cursor CAS, served one chunk at a time from the
// ForContext); guided claims are served whole, as before, since guided
// sizing self-batches.
func (fc *ForContext) Dispense() (sched.Space, bool) {
	d := fc.shared.disp
	if fc.batchLo >= fc.batchHi {
		from, to, ok := d.NextBatch(dispenseBatchChunks)
		if !ok {
			return sched.Space{}, false
		}
		fc.batchLo, fc.batchHi = from, to
	}
	from := fc.batchLo
	to := fc.batchHi
	if fc.shared.kind != sched.Guided {
		if c := from + d.ChunkSize(); c < to {
			to = c
		}
	}
	fc.batchLo = to
	fc.iters += to - from
	return fc.Space.Slice(int(from), int(to)), true
}

// DispenseSteal draws the next chunk for the steal and weightedSteal
// schedules: from the worker's own statically carved range while it lasts
// (the locality order — remote ranges are touched only when the local one
// is dry), then from ranges stolen off loaded siblings. Steals are
// reported to an installed tool through the same steal hooks task stealing
// uses; a fruitless scan reports a bare attempt, and any scan reports its
// probe count so victim-selection quality is observable.
func (fc *ForContext) DispenseSteal() (sched.Space, bool) {
	w := fc.Worker
	from, to, victim, probes, ok := fc.shared.sdisp.Next(w.ID)
	if victim >= 0 || !ok {
		if h := obsHooks(); h != nil {
			if h.StealAttempt != nil {
				h.StealAttempt(w.gid)
			}
			if h.StealScan != nil && probes > 0 {
				h.StealScan(w.gid, probes)
			}
			if victim >= 0 && victim < len(w.Team.workers) && h.StealSuccess != nil {
				// Loop-range steals have no task identity; 0 marks them in
				// the shared steal event stream.
				h.StealSuccess(w.gid, 0, w.Team.workers[victim].gid)
			}
		}
	}
	if !ok {
		return sched.Space{}, false
	}
	fc.iters += to - from
	return fc.Space.Slice(int(from), int(to)), true
}

// Ordered runs section when the loop value `iter` becomes the next value
// in the sequential iteration order of the construct (paper Table 1,
// @Ordered). Every iteration of the space must execute its ordered section
// exactly once, otherwise later iterations deadlock — the same contract as
// OpenMP's ordered clause.
func (fc *ForContext) Ordered(iter int, section func()) {
	fs := fc.shared
	fs.omu.Lock()
	if fs.ocond == nil { // lazily allocated: most for constructs never order
		fs.ocond = sync.NewCond(&fs.omu)
	}
	for fs.onext != iter {
		fs.ocond.Wait()
	}
	fs.omu.Unlock()
	// Section runs outside the lock: only one iteration can hold the turn.
	section()
	fs.omu.Lock()
	fs.onext = iter + fc.Space.Step
	if fs.ocond != nil {
		fs.ocond.Broadcast()
	}
	fs.omu.Unlock()
}

// singleState is the team-shared state of one encounter of a single/master
// construct; the broadcast channel exists only for value-returning forms
// (withResult), keeping void masters/singles allocation-light.
type singleState struct {
	claimed bool
	mu      sync.Mutex
	done    chan struct{}
	result  any
}

type singleKey struct{ key any }

func newSingleState(withResult bool) *singleState {
	st := &singleState{}
	if withResult {
		st.done = make(chan struct{})
	}
	return st
}

// SingleBegin returns (true, state) for the one worker of the team that
// claims this encounter of the single construct identified by key, and
// (false, state) for everyone else (paper Table 1, @Single). withResult
// must be true when the construct broadcasts a value via Publish/Await.
func SingleBegin(w *Worker, key any, withResult bool) (bool, *singleState) {
	enc := w.NextEncounter(singleKey{key})
	st := w.Team.Instance(singleKey{key}, enc, func() any {
		return newSingleState(withResult)
	}).(*singleState)
	w.Team.Release(singleKey{key}, enc)
	st.mu.Lock()
	claim := !st.claimed
	st.claimed = true
	st.mu.Unlock()
	return claim, st
}

// MasterBegin is SingleBegin with a deterministic claimer: worker 0
// (paper Table 1, @Master).
func MasterBegin(w *Worker, key any, withResult bool) (bool, *singleState) {
	enc := w.NextEncounter(singleKey{key})
	st := w.Team.Instance(singleKey{key}, enc, func() any {
		return newSingleState(withResult)
	}).(*singleState)
	w.Team.Release(singleKey{key}, enc)
	return w.ID == 0, st
}

// Publish stores the executed method's result and releases waiters.
func (s *singleState) Publish(v any) {
	s.result = v
	close(s.done)
}

// Await blocks until the executing worker publishes, then returns the
// value — "the result is propagated to all threads in the team".
func (s *singleState) Await() any {
	<-s.done
	return s.result
}

// TLS returns the worker-local value for the construct identified by key,
// creating it with factory on first access by this worker (paper Table 1,
// @ThreadLocalField: "each thread local object field is initialised ...
// [on] the first thread access").
func (w *Worker) TLS(key any, factory func() any) any {
	v, ok := w.tls[key]
	if !ok {
		if w.tls == nil {
			w.tls = make(map[any]any)
		}
		v = factory()
		w.tls[key] = v
	}
	return v
}

// TLSIfPresent returns the worker-local value and whether it exists,
// without creating it.
func (w *Worker) TLSIfPresent(key any) (any, bool) {
	v, ok := w.tls[key]
	return v, ok
}

// TLSDelete removes the worker-local value (used after reductions so a
// subsequent access re-initialises from the global value).
func (w *Worker) TLSDelete(key any) { delete(w.tls, key) }
