package rt

import (
	"sync"
	"sync/atomic"
)

// task is one deferred activity spawned by @Task or @FutureTask inside a
// parallel region. It is queued on the spawning worker's deque and executed
// by whichever team worker reaches it first — the spawner at a scheduling
// point, or a sibling that steals it. state makes execution claimable out
// of band: a future's getter (possibly on a different, nested team) or a
// straggler spawner can take ownership directly, and whoever later pops the
// queued reference finds it already claimed and skips it.
type task struct {
	fn    func()
	group *TaskGroup
	state atomic.Int32 // 0 = queued, 1 = claimed by an executor
}

// claim takes execution ownership; exactly one caller wins.
func (t *task) claim() bool { return t.state.CompareAndSwap(0, 1) }

// run claims and executes the task, reporting whether this caller executed
// it (false: someone else already claimed it).
func (t *task) run() bool {
	if !t.claim() {
		return false
	}
	t.exec()
	return true
}

// exec executes an already-claimed task, guaranteeing the group is
// signalled even if the body panics (the panic then propagates to the
// executing worker, where the region machinery re-raises it on the master).
func (t *task) exec() {
	defer t.group.Done()
	t.fn()
}

// deque is a double-ended task queue owned by one worker. The owner pushes
// and pops at the bottom (LIFO, keeping its working set hot), thieves take
// from the top (FIFO, stealing the oldest — typically largest — work
// first), the classic work-stealing discipline. A mutex guards the ring:
// steals are rare relative to pushes and the critical sections are a few
// instructions, so a lock-free Chase-Lev buys little here while a mutex
// keeps the structure trivially correct under the race detector and allows
// spawn-from-inherited-context goroutines to share the bottom end safely.
type deque struct {
	mu   sync.Mutex
	buf  []*task
	head int // index of the top (oldest) element
	n    int // number of queued tasks
}

// push adds t at the bottom of the deque, growing the ring as needed.
func (d *deque) push(t *task) {
	d.mu.Lock()
	if d.n == len(d.buf) {
		grown := make([]*task, max(8, 2*len(d.buf)))
		for i := 0; i < d.n; i++ {
			grown[i] = d.buf[(d.head+i)%len(d.buf)]
		}
		d.buf, d.head = grown, 0
	}
	d.buf[(d.head+d.n)%len(d.buf)] = t
	d.n++
	d.mu.Unlock()
}

// popBottom removes and returns the most recently pushed task, or nil.
func (d *deque) popBottom() *task {
	d.mu.Lock()
	if d.n == 0 {
		d.mu.Unlock()
		return nil
	}
	d.n--
	i := (d.head + d.n) % len(d.buf)
	t := d.buf[i]
	d.buf[i] = nil
	d.mu.Unlock()
	return t
}

// stealTop removes and returns the oldest queued task, or nil.
func (d *deque) stealTop() *task {
	d.mu.Lock()
	if d.n == 0 {
		d.mu.Unlock()
		return nil
	}
	t := d.buf[d.head]
	d.buf[d.head] = nil
	d.head = (d.head + 1) % len(d.buf)
	d.n--
	d.mu.Unlock()
	return t
}

// size reports the number of queued tasks (diagnostics/tests).
func (d *deque) size() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.n
}

// findTask returns the next task this worker should execute: its own
// newest first, then — when its deque is empty — one stolen from a random
// sibling. Returns nil when no queued work is visible anywhere in the team.
func (w *Worker) findTask() *task {
	if t := w.deque.popBottom(); t != nil {
		return t
	}
	ws := w.Team.workers
	if len(ws) <= 1 {
		return nil
	}
	start := int(w.nextRand() % uint64(len(ws)))
	for i := 0; i < len(ws); i++ {
		v := ws[(start+i)%len(ws)]
		if v == w {
			continue
		}
		if t := v.deque.stealTop(); t != nil {
			return t
		}
	}
	return nil
}

// nextRand is a per-worker xorshift64 used for steal-victim selection; no
// locking, no global rand contention. The state is atomic only so that
// goroutines sharing an inherited worker context stay race-clean — the
// sequence quality does not matter, victim choice just needs to spread.
func (w *Worker) nextRand() uint64 {
	x := w.rng.Load()
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	w.rng.Store(x)
	return x
}
