package rt

import (
	"sync"
	"sync/atomic"
)

// Task lifecycle states. A depend-free task is born taskReady; a task with
// unsatisfied dependence edges is born taskParked and becomes taskReady
// only when its last predecessor retires (depend.go). Parked tasks are not
// claimable: a future's getter that reaches its producer directly backs
// off instead of running it ahead of its predecessors.
const (
	taskReady   = 0
	taskClaimed = 1
	taskParked  = 2
)

// task is one deferred activity spawned by @Task or @FutureTask inside a
// parallel region. It is queued on the spawning worker's deque and executed
// by whichever team worker reaches it first — the spawner at a scheduling
// point, or a sibling that steals it. state makes execution claimable out
// of band: a future's getter (possibly on a different, nested team) or a
// straggler spawner can take ownership directly, and whoever later pops the
// queued reference finds it already claimed and skips it.
//
// refs counts live references (deque/tracker slot, spawner, future) so
// pooled tasks can be recycled the moment the last holder lets go; tasks
// backing a Future are never pooled, because the future retains its task
// pointer indefinitely.
type task struct {
	fn      func()
	group   *TaskGroup
	spawner *Worker  // deque that receives the task when released; nil = global scope
	node    *depNode // dependence bookkeeping; nil for depend-free tasks
	traceID uint64   // observability identity (flow arrows); 0 with no tool
	state   atomic.Int32
	refs    atomic.Int32
	pooled  bool
}

// claim takes execution ownership; exactly one caller wins. Parked tasks
// (unsatisfied dependences) are not claimable.
func (t *task) claim() bool { return t.state.CompareAndSwap(taskReady, taskClaimed) }

// unpark makes a parked task claimable again (its last predecessor
// retired). Reports whether this caller performed the transition.
func (t *task) unpark() bool { return t.state.CompareAndSwap(taskParked, taskReady) }

// run claims and executes the task, reporting whether this caller executed
// it (false: someone else already claimed it, or it is parked).
func (t *task) run() bool {
	if !t.claim() {
		return false
	}
	t.exec()
	return true
}

// exec executes an already-claimed task, guaranteeing — even if the body
// panics (the panic then propagates to the executing worker, where the
// region machinery re-raises it on the master) — that the task retires its
// dependence node, releasing successors, and signals its group. Schedule
// and complete events bracket the execution on the executing context's
// track; the complete fires after retirement, so dependence-release events
// order inside the task's slice.
func (t *task) exec() {
	if h := obsHooks(); h != nil {
		gid := curGID()
		if h.TaskSchedule != nil {
			h.TaskSchedule(gid, t.traceID)
		}
		if h.TaskComplete != nil {
			id := t.traceID
			defer h.TaskComplete(gid, id)
		}
	}
	defer t.retire()
	t.fn()
}

// retire completes the task's bookkeeping: successors of its dependence
// node are released, then the group is signalled. Runs exactly once per
// executed task (claim won exactly once), panic or not.
func (t *task) retire() {
	if n := t.node; n != nil {
		t.node = nil
		n.tr.retire(n)
	}
	t.group.Done()
}

// decRef drops one reference; the last dropper recycles pooled tasks.
func (t *task) decRef() {
	if t.refs.Add(-1) == 0 && t.pooled {
		t.fn, t.group, t.spawner, t.node = nil, nil, nil, nil
		t.traceID = 0
		t.state.Store(taskReady)
		taskPool.Put(t)
	}
}

// deque is a double-ended task queue owned by one worker. The owner pushes
// and pops at the bottom (LIFO, keeping its working set hot), thieves take
// from the top (FIFO, stealing the oldest — typically largest — work
// first), the classic work-stealing discipline. Deques persist across
// team leases: a clean region end drains every live task, so the next
// lease inherits an empty ring with its grown capacity — reuse, not
// reallocation. (Claimed-and-skipped references from a straggler spawn
// may remain; popBottom/stealTop callers already tolerate them.) A mutex guards the ring:
// steals are rare relative to pushes and the critical sections are a few
// instructions, so a lock-free Chase-Lev buys little here while a mutex
// keeps the structure trivially correct under the race detector and allows
// spawn-from-inherited-context goroutines to share the bottom end safely.
type deque struct {
	mu   sync.Mutex
	buf  []*task
	head int // index of the top (oldest) element
	n    int // number of queued tasks
}

// push adds t at the bottom of the deque, growing the ring as needed.
func (d *deque) push(t *task) {
	d.mu.Lock()
	if d.n == len(d.buf) {
		grown := make([]*task, max(8, 2*len(d.buf)))
		for i := 0; i < d.n; i++ {
			grown[i] = d.buf[(d.head+i)%len(d.buf)]
		}
		d.buf, d.head = grown, 0
	}
	d.buf[(d.head+d.n)%len(d.buf)] = t
	d.n++
	d.mu.Unlock()
}

// popBottom removes and returns the most recently pushed task, or nil.
func (d *deque) popBottom() *task {
	d.mu.Lock()
	if d.n == 0 {
		d.mu.Unlock()
		return nil
	}
	d.n--
	i := (d.head + d.n) % len(d.buf)
	t := d.buf[i]
	d.buf[i] = nil
	d.mu.Unlock()
	return t
}

// stealTop removes and returns the oldest queued task, or nil.
func (d *deque) stealTop() *task {
	d.mu.Lock()
	if d.n == 0 {
		d.mu.Unlock()
		return nil
	}
	t := d.buf[d.head]
	d.buf[d.head] = nil
	d.head = (d.head + 1) % len(d.buf)
	d.n--
	d.mu.Unlock()
	return t
}

// size reports the number of queued tasks (diagnostics/tests).
func (d *deque) size() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.n
}

// findTask returns the next task this worker should execute: its own
// newest first, then — when its deque is empty — one stolen from a random
// sibling. Returns nil when no queued work is visible anywhere in the team.
func (w *Worker) findTask() *task {
	if t := w.deque.popBottom(); t != nil {
		return t
	}
	ws := w.Team.workers
	if len(ws) <= 1 {
		return nil
	}
	h := obsHooks()
	if h != nil && h.StealAttempt != nil {
		h.StealAttempt(w.gid)
	}
	start := int(w.nextRand() % uint64(len(ws)))
	for i := 0; i < len(ws); i++ {
		v := ws[(start+i)%len(ws)]
		if v == w {
			continue
		}
		if t := v.deque.stealTop(); t != nil {
			if h != nil && h.StealSuccess != nil {
				h.StealSuccess(w.gid, t.traceID, v.gid)
			}
			return t
		}
	}
	return nil
}

// runTask executes t on w with the task's group adopted as the worker's
// current spawn scope, so activities spawned by the task body join the
// group the task belongs to (@TaskGroup includes descendant tasks). It
// reports whether this caller executed the task.
//
// Adoption is strictly same-team: when a task of an enclosing team is
// executed from a nested team (a future's getter helping across regions),
// adopting its group would make sub-spawns join the enclosing team's
// group while their tasks land on the executor's nested deque — a deque
// the enclosing team's join can never see, hence a deadlock. Cross-team
// executions therefore keep the executor's own scope: sub-spawns stay
// consistent (group and deque on the executing team) and are joined by
// the executing region's end, as in the pre-dataflow runtime.
func (w *Worker) runTask(t *task) bool {
	if t.spawner == nil || t.spawner.Team != w.Team {
		return t.run()
	}
	prev := w.curGroup.Swap(t.group)
	defer w.curGroup.Store(prev)
	return t.run()
}

// nextRand is a per-worker xorshift64 used for steal-victim selection; no
// locking, no global rand contention. The state is atomic only so that
// goroutines sharing an inherited worker context stay race-clean — the
// sequence quality does not matter, victim choice just needs to spread.
func (w *Worker) nextRand() uint64 {
	x := w.rng.Load()
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	w.rng.Store(x)
	return x
}
