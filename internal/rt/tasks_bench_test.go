package rt

import "testing"

// The Task* benchmarks are CI allocation gates: the steady-state task
// spawn path — plain and dependence-clause — must stay at 0 allocs/op
// (task objects, dependence nodes and per-address state are all pooled).
// Bodies and clause slices are hoisted so the measurement isolates the
// runtime, not the caller's closure captures.

func BenchmarkTaskSpawnWait(b *testing.B) {
	b.ReportAllocs()
	Region(2, func(w *Worker) {
		if w.ID != 0 {
			return
		}
		var x int
		body := func() { x++ }
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			Spawn(body)
			if i&63 == 63 {
				TaskWait()
			}
		}
		TaskWait()
		b.StopTimer()
		_ = x
	})
}

func BenchmarkTaskDependChain(b *testing.B) {
	b.ReportAllocs()
	Region(2, func(w *Worker) {
		if w.ID != 0 {
			return
		}
		var x int
		body := func() { x++ }
		d := Deps{InOut: []any{&x}}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			SpawnDep(body, d)
			if i&63 == 63 {
				TaskWait()
			}
		}
		TaskWait()
		b.StopTimer()
		_ = x
	})
}

func BenchmarkTaskDependFanIn(b *testing.B) {
	b.ReportAllocs()
	Region(2, func(w *Worker) {
		if w.ID != 0 {
			return
		}
		var x, y int
		read := func() { _ = x }
		write := func() { x++; y++ }
		dr := Deps{In: []any{&x}, Out: []any{&y}}
		dw := Deps{InOut: []any{&x}, In: []any{&y}}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			SpawnDep(read, dr)
			SpawnDep(read, dr)
			SpawnDep(write, dw)
			if i&31 == 31 {
				TaskWait()
			}
		}
		TaskWait()
		b.StopTimer()
	})
}

func BenchmarkTaskYieldSpawn(b *testing.B) {
	b.ReportAllocs()
	Region(2, func(w *Worker) {
		if w.ID != 0 {
			return
		}
		var x int
		body := func() { x++ }
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			Spawn(body)
			TaskYield(1)
		}
		TaskWait()
		b.StopTimer()
		_ = x
	})
}
