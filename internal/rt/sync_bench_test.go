package rt

import (
	"fmt"
	"sync"
	"testing"

	"aomplib/internal/sched"
)

// Contention microbenchmarks for the synchronisation hot paths: the team
// barrier phase, the shared loop-chunk dispenser, and the critical-section
// lock registries. These are the CI-gated evidence for the de-contending
// work — the benchstat job compares them against the merge base and fails
// the build on regressions.

// benchBarrierPhase measures one full barrier round trip across `workers`
// parties, every party being a real team worker (so arrivals ride the
// fan-in tree, not the anonymous root path).
func benchBarrierPhase(b *testing.B, workers int) {
	b.ReportAllocs()
	Region(workers, func(w *Worker) {
		bar := w.Team.Barrier()
		for i := 0; i < b.N; i++ {
			bar.WaitWorker(w)
		}
	})
}

func BenchmarkBarrierPhase(b *testing.B) {
	for _, w := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("w=%d", w), func(b *testing.B) { benchBarrierPhase(b, w) })
	}
}

// condBarrier is the pre-refactor mutex+cond team barrier, kept here as
// the measured baseline the tree barrier's ≥2x claim is made against.
type condBarrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	parties int
	arrived int
	gen     uint64
}

func newCondBarrier(parties int) *condBarrier {
	cb := &condBarrier{parties: parties}
	cb.cond = sync.NewCond(&cb.mu)
	return cb
}

func (b *condBarrier) wait() uint64 {
	b.mu.Lock()
	gen := b.gen
	b.arrived++
	if b.arrived == b.parties {
		b.arrived = 0
		b.gen++
		b.cond.Broadcast()
		b.mu.Unlock()
		return gen
	}
	for gen == b.gen {
		b.cond.Wait()
	}
	b.mu.Unlock()
	return gen
}

func BenchmarkBarrierPhaseBaselineCond(b *testing.B) {
	for _, workers := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("w=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			bar := newCondBarrier(workers)
			Region(workers, func(w *Worker) {
				for i := 0; i < b.N; i++ {
					bar.wait()
				}
			})
		})
	}
}

// BenchmarkDispenseContended hammers one shared dynamic dispenser from a
// full team, chunk 1 — the worst-case schedule of the paper's Fig. 11 and
// the contention point the batched claim (NextBatch through ForContext)
// exists for. Reported ns/op covers `workers` draws (every worker draws
// b.N times).
func BenchmarkDispenseContended(b *testing.B) {
	const workers = 4
	b.ReportAllocs()
	Region(workers, func(w *Worker) {
		// Shared dispenser sized b.N * workers, so each worker performs
		// ~b.N draws before exhaustion (the first arriver builds it).
		dd := w.Team.Instance("bench-disp", 0, func() any {
			return sched.NewDispenser(sched.Space{Lo: 0, Hi: b.N * workers, Step: 1}, 1, false, workers)
		}).(*sched.Dispenser)
		w.Team.Release("bench-disp", 0)
		for {
			if _, _, ok := dd.Next(); !ok {
				break
			}
		}
	})
}

// BenchmarkDispenseBatchedFor is the same contention measured through the
// real work-sharing path: BeginFor/Dispense with the worker-local batch
// claiming dispenseBatchChunks chunks per shared CAS.
func BenchmarkDispenseBatchedFor(b *testing.B) {
	const workers = 4
	b.ReportAllocs()
	sp := sched.Space{Lo: 0, Hi: b.N * workers, Step: 1}
	Region(workers, func(w *Worker) {
		fc := BeginFor(w, "bench-batched", sp, sched.Dynamic, 1)
		for {
			if _, ok := fc.Dispense(); !ok {
				break
			}
		}
		fc.EndFor()
	})
}

// BenchmarkStealDispense drives the steal schedule end to end at the
// dispenser level: statically carved per-worker ranges, owner claims on
// private cache lines, range stealing on exhaustion.
func BenchmarkStealDispense(b *testing.B) {
	const workers = 4
	b.ReportAllocs()
	sp := sched.Space{Lo: 0, Hi: b.N * workers, Step: 1}
	Region(workers, func(w *Worker) {
		fc := BeginFor(w, "bench-steal", sp, sched.Steal, 1)
		if fc.Kind != sched.Steal {
			b.Errorf("resolved to %v, want steal", fc.Kind)
		}
		for {
			if _, ok := fc.DispenseSteal(); !ok {
				break
			}
		}
		fc.EndFor()
	})
}

// BenchmarkNamedLockLookup measures the @Critical(id=...) registry under
// concurrent lookups of distinct ids — the path the sharding de-contends.
// Steady-state woven critical sections never reach it (the advice caches
// the lock at weave time); this measures dynamic resolution.
func BenchmarkNamedLockLookup(b *testing.B) {
	b.ReportAllocs()
	ids := [8]string{"a", "b", "c", "d", "e", "f", "g", "h"}
	for i := range ids {
		NamedLock(ids[i]) // pre-create: measure lookup, not insertion
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if NamedLock(ids[i&7]) == nil {
				b.Error("nil lock")
			}
			i++
		}
	})
}

// BenchmarkObjectLockLookup measures the captured-lock registry (pointer
// keys, sharded sync.Maps) under concurrent lookups.
func BenchmarkObjectLockLookup(b *testing.B) {
	b.ReportAllocs()
	keys := [8]*int{}
	for i := range keys {
		keys[i] = new(int)
		ObjectLock(keys[i])
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if ObjectLock(keys[i&7]) == nil {
				b.Error("nil lock")
			}
			i++
		}
	})
}
