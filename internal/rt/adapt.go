package rt

import (
	"math"
	"runtime"
	"sync/atomic"

	"aomplib/internal/sched"
)

// This file holds the asymmetry- and feedback-aware half of loop
// scheduling: per-worker throughput estimates (the input to weighted range
// carving), per-construct adaptive state (the memory behind sched.Adaptive
// and re-encountered sched.Auto), and the asymmetric-hardware simulation
// hook benchmarks use to make the weighted-vs-uniform difference
// measurable on symmetric CI machines.
//
// The estimator follows Saez et al. (arXiv:2402.07664): on asymmetric
// multicores the useful per-worker signal is relative retired-work rate,
// and an EWMA over recent loop shares tracks it closely enough to carve
// static ranges by — the residual error is what the steal half of the
// schedule mops up.

// speedAlpha is the EWMA smoothing factor for worker speed estimates.
// 1/4 reaches ~90% of a step change in 8 encounters — fast enough to track
// DVFS/contention shifts, smooth enough that one noisy share (a GC pause,
// a preemption) cannot flip the carve.
const speedAlpha = 0.25

// Speed returns the worker's measured loop throughput estimate in
// iterations per nanosecond, or 0 while untrained. Safe from any
// goroutine; only the worker itself writes it.
func (w *Worker) Speed() float64 {
	return math.Float64frombits(w.speed.Load())
}

// updateSpeed folds one finished loop share (iters iterations in ns
// nanoseconds) into the worker's speed EWMA. Called by the owner only
// (EndFor), so the read-modify-write needs no CAS: a plain load and store
// on the worker's own padded line, preserving the 0 allocs/op dispatch
// gates.
func (w *Worker) updateSpeed(iters, ns int64) {
	if iters <= 0 || ns <= 0 {
		return
	}
	r := float64(iters) / float64(ns)
	old := math.Float64frombits(w.speed.Load())
	if old > 0 {
		r = old + speedAlpha*(r-old)
	}
	w.speed.Store(math.Float64bits(r))
}

// speedWeightsLocked fills the team's scratch weight buffer with every
// worker's speed estimate, for carving a weighted-steal partition. It
// returns nil — meaning "carve uniformly" — when no worker is trained
// yet. Workers without an estimate of their own (a worker whose whole
// static share was stolen before it ran executes zero iterations and
// learns nothing) are assumed average: they get the mean of the trained
// speeds, not a near-zero weight that would starve them on their first
// real encounter. Callers must hold t.mu (BeginFor's Instance factory
// does); the buffer is reused across encounters and never retained by
// the dispenser.
func (t *Team) speedWeightsLocked() []float64 {
	if cap(t.weights) < t.Size {
		t.weights = make([]float64, t.Size)
	}
	ws := t.weights[:t.Size]
	var sum float64
	trained := 0
	for i, w := range t.workers {
		s := w.Speed()
		if s > 0 {
			sum += s
			trained++
		}
		ws[i] = s
	}
	if trained == 0 {
		return nil
	}
	if trained < len(ws) {
		mean := sum / float64(trained)
		for i, s := range ws {
			if !(s > 0) {
				ws[i] = mean
			}
		}
	}
	return ws
}

// maxAdaptLoops bounds the per-team adaptive state table. A program with
// more distinct for constructs than this per team is churning construct
// identities (e.g. closures as keys); learning is impossible there, so the
// table resets rather than growing without bound.
const maxAdaptLoops = 128

// Adaptation thresholds on the imbalance ratio (slowest worker's share
// time over the mean). Above adaptImbHigh the encounter wasted >25% of the
// team at the implicit barrier — rebalance harder; below adaptImbLow the
// loop is effectively balanced — spend the headroom on cheaper (coarser)
// dispatch. The band between is hysteresis: oscillating between policies
// every encounter would forfeit both benefits.
const (
	adaptImbHigh = 1.25
	adaptImbLow  = 1.08
)

// adaptDefaultChunk picks the steal-chunk size for an adaptively scheduled
// loop: 8 chunks per worker balances steal granularity (a thief can take
// meaningful work) against dispatch cost.
func adaptDefaultChunk(n, nthreads int) int {
	c := n / (nthreads * 8)
	if c < 1 {
		c = 1
	}
	return c
}

// loopAdapt is the persistent adaptive state of one for construct on one
// team: the schedule it resolved to last, and the imbalance that encounter
// measured. kind/chunk/count/rounds are guarded by Team.mu (touched only
// inside BeginFor's Instance factory); imb is written by the encounter's
// last-finishing worker outside the lock, hence atomic.
type loopAdapt struct {
	kind   sched.Kind // concrete kind the last encounter ran under
	chunk  int
	count  int    // trip count the state was tuned for
	rounds uint64 // encounters observed
	// skewed latches once any encounter measured high imbalance: a loop
	// that needed balancing once may need it again, so balanced
	// re-encounters then coarsen the chunk instead of dropping all the
	// way back to static dispatch (which would oscillate under
	// asymmetry: uniform static carve → skew → weighted → balanced →
	// static → skew …).
	skewed bool
	imb    atomic.Uint64 // float64 bits: last max/mean share-time ratio
}

// imbalance returns the last published imbalance ratio, or 0 when no
// encounter has completed yet.
func (a *loopAdapt) imbalance() float64 {
	return math.Float64frombits(a.imb.Load())
}

// publish records the imbalance the just-finished encounter measured.
func (a *loopAdapt) publish(imb float64) {
	a.imb.Store(math.Float64bits(imb))
}

// adaptMeasurable reports whether per-share wall times can measure
// cross-worker imbalance for a team of the given size. When the team's
// workers time-share fewer processors than the team has members, every
// share's elapsed time includes the time the worker spent descheduled
// while its siblings ran — balanced loops then measure imbalance ratios
// approaching the team size, and re-tuning on that noise makes every
// loop converge to fine-grained stealing it doesn't need. In that
// regime the adaptive state keeps whatever it last resolved to. A var
// so tests can force the measured path on single-CPU machines.
var adaptMeasurable = func(teamSize int) bool {
	return runtime.GOMAXPROCS(0) >= teamSize
}

// adaptResolveLocked resolves one encounter of an Adaptive (or
// re-encountered Auto) for construct to a concrete schedule, creating or
// updating the construct's persistent state. declared is Adaptive or Auto
// (Runtime already unwrapped). Callers must hold t.mu.
//
// Policy: the first sight of a loop (or a reshaped trip count) gets the
// shape heuristic — exactly Auto's static/guided choice — so an adaptive
// loop costs nothing over auto until there is measurement to act on; on
// an oversubscribed team (see adaptMeasurable) it gets static block
// instead, because dispensing overhead cannot be repaid when the workers
// time-share the CPUs and the feedback below is blind there. Measured
// re-encounters act on the imbalance: too skewed → move to weighted
// steal, whose carve absorbs the asymmetry, or halve the chunk if
// already balancing (finer grain gives thieves more rebalancing
// currency); well balanced → drop back to static dispatch if the loop
// never needed balancing, else coarsen the chunk (cheaper dispatch
// either way); in between → keep what works.
func (t *Team) adaptResolveLocked(key any, declared sched.Kind, n, chunk int) (sched.Kind, int, *loopAdapt) {
	if t.adapt == nil {
		t.adapt = make(map[any]*loopAdapt)
	}
	st := t.adapt[key]
	if st == nil {
		if len(t.adapt) >= maxAdaptLoops {
			clear(t.adapt)
		}
		st = &loopAdapt{}
		t.adapt[key] = st
	}
	st.rounds++
	k, c := st.kind, st.chunk
	switch {
	case st.rounds == 1 || st.count != n:
		// First sight, or the loop changed shape: tune from shape alone.
		if adaptMeasurable(t.Size) {
			k, c = sched.Resolve(sched.Auto, n, t.Size), chunk
		} else {
			k, c = sched.StaticBlock, chunk
		}
	case !adaptMeasurable(t.Size):
		// Imbalance is unmeasurable here (see adaptMeasurable): keep the
		// last resolution rather than re-tune on scheduler noise.
	default:
		switch imb := st.imbalance(); {
		case imb > adaptImbHigh:
			st.skewed = true
			if k != sched.WeightedSteal && k != sched.Dynamic {
				k = sched.WeightedSteal
				c = adaptDefaultChunk(n, t.Size)
			} else if c > 1 {
				c /= 2
			}
		case imb > 0 && imb < adaptImbLow:
			if !st.skewed && k != sched.StaticBlock && k != sched.StaticCyclic {
				// Balanced and never needed balancing: pay zero dispatch.
				// Static encounters keep measuring imbalance (EndFor
				// reconstructs static share counts), so the loop upgrades
				// back the moment skew appears.
				k = sched.StaticBlock
			} else if next := c * 2; next <= n/(2*t.Size) {
				// Balanced but once-skewed (or already static): coarsen
				// dispatch instead, capped so every worker still sees two
				// chunks' worth of rebalancing slack.
				c = next
			}
		}
	}
	k = sched.Resolve(k, n, t.Size) // WeightedSteal > 2^31 iters → Dynamic
	st.kind, st.chunk, st.count = k, c, n
	return k, c, st
}

// ------------------------------------------------- asymmetry simulation --

// asymSpinTab, when set, slows selected workers by spinning a fixed number
// of units per loop iteration they execute — a software model of an
// asymmetric multicore (efficiency cores, thermally throttled cores, a
// noisy neighbour) for benchmarks on symmetric machines. nil when off, so
// the per-chunk cost of the feature is one predicted-nil pointer load.
var asymSpinTab atomic.Pointer[[]uint32]

// asymSink defeats dead-code elimination of the spin loop.
var asymSink atomic.Uint64

// SetAsymSpin installs per-worker slowdown: spins[id] busy-work units are
// executed per loop iteration by the worker with that team ID (one unit is
// one multiply-add, a few hundred picoseconds). Workers beyond the slice,
// and all workers when spins is nil or empty, run unthrottled. The slice
// is copied. Intended for benchmarks (jgfbench -asym) and tests; it
// throttles every schedule equally, so schedule comparisons under it are
// fair.
func SetAsymSpin(spins []int) {
	if len(spins) == 0 {
		asymSpinTab.Store(nil)
		return
	}
	tab := make([]uint32, len(spins))
	for i, s := range spins {
		if s > 0 {
			tab[i] = uint32(s)
		}
	}
	asymSpinTab.Store(&tab)
}

// AsymDelay spins the calling worker for iters iterations' worth of its
// configured slowdown. Called once per dispensed sub-range, not per
// iteration, so the overhead when enabled is the spin itself, not loop
// bookkeeping.
func AsymDelay(id, iters int) {
	p := asymSpinTab.Load()
	if p == nil {
		return
	}
	tab := *p
	if id < 0 || id >= len(tab) || tab[id] == 0 || iters <= 0 {
		return
	}
	n := uint64(tab[id]) * uint64(iters)
	x := uint64(id)*2862933555777941757 + 3037000493
	for i := uint64(0); i < n; i++ {
		x = x*6364136223846793005 + 1442695040888963407
	}
	asymSink.Store(x)
}
