package rt

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"aomplib/internal/gls"
	"aomplib/internal/obs"
)

// Multi-tenant admission: fair arbitration of the process-wide hot-team
// pool under request traffic. A server that runs thousands of request
// goroutines, each entering small parallel regions, needs the opposite of
// the benchmark shape the pool was built for — many concurrent top-level
// leases instead of one caller re-entering a big region. With admission
// control enabled, every top-level region entry first obtains a lease slot
// from a bounded controller:
//
//   - at most MaxTeams top-level regions hold teams concurrently (the
//     default tracks the pool capacity, so offered load beyond the warm
//     pool queues instead of cold-spawning goroutine herds);
//   - waiters queue FIFO, so ordering is starvation-free by construction —
//     a tenant cannot be overtaken indefinitely by later arrivals;
//   - per-tenant quotas cap how many slots one tenant may hold at once; a
//     waiter whose tenant is over quota is skipped (it waits for its own
//     tenant's releases), never blocking other tenants behind it;
//   - when no slot is available the configured policy decides: Block waits
//     (bounded queue), Timeout waits up to a deadline, Reject refuses
//     immediately. A refused or timed-out entry does not fail — it
//     degrades gracefully: the region runs serialized on the calling
//     goroutine (a cold team of one that bypasses the pool, so saturation
//     cannot thrash warm inventory out of it). The parallel-region
//     contract "the body always executes" holds under any load.
//
// Nested region entries never pass through admission: the top-level entry
// already holds the slot, and queueing inside a held slot could deadlock.
// Admission off (the default) costs region entry one atomic load.

// AdmitPolicy selects what a region entry does when no lease slot is
// available.
type AdmitPolicy uint8

const (
	// AdmitBlock queues the entry FIFO until a slot frees (bounded queue;
	// overflow degrades to serialized execution instead of blocking).
	AdmitBlock AdmitPolicy = iota
	// AdmitTimeout queues like AdmitBlock but degrades to serialized
	// execution when the configured timeout elapses first.
	AdmitTimeout
	// AdmitReject refuses immediately: the entry runs serialized without
	// ever waiting. The fail-fast policy for latency-bound servers.
	AdmitReject
)

// String implements fmt.Stringer for diagnostics and reports.
func (p AdmitPolicy) String() string {
	switch p {
	case AdmitBlock:
		return "block"
	case AdmitTimeout:
		return "timeout"
	case AdmitReject:
		return "reject"
	}
	return "unknown"
}

// admissionOn gates the whole layer; the zero value (off) keeps the
// uncontended warm region entry at one extra atomic load.
var admissionOn atomic.Bool

// DefaultAdmitQueueBound is the wait-queue bound used when
// SetAdmitQueueBound has not set one. Beyond it, even AdmitBlock entries
// degrade instead of queueing — a bounded queue rejects rather than
// deadlocks at saturation.
const DefaultAdmitQueueBound = 1024

// tenantState is one tenant's admission accounting. Tenants are created on
// first use and never removed (their identity anchors cumulative stats).
type tenantState struct {
	name string
	id   uint64

	quota atomic.Int32 // max concurrent slots; 0 = unlimited
	held  atomic.Int32 // slots held right now

	admitted atomic.Uint64 // leases granted
	queued   atomic.Uint64 // grants that waited in the queue first
	rejected atomic.Uint64 // lease requests refused
	timedOut atomic.Uint64 // refusals due to queue-wait timeout
	degraded atomic.Uint64 // entries that ran serialized without a lease
	waitNs   atomic.Uint64 // total queue-wait nanoseconds
	maxWait  atomic.Uint64 // max single queue wait, nanoseconds
}

func (t *tenantState) recordWait(ns uint64) {
	t.waitNs.Add(ns)
	for {
		cur := t.maxWait.Load()
		if ns <= cur || t.maxWait.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// admitWaiter is one queued region entry. granted/refused transitions
// happen under the controller mutex; ready is closed exactly once.
type admitWaiter struct {
	tenant  *tenantState
	ready   chan struct{}
	granted bool
}

// admitController is the process-wide arbitration state.
type admitController struct {
	mu         sync.Mutex
	policy     AdmitPolicy
	timeout    time.Duration
	maxTeams   int // explicit cap; 0 derives from the pool capacity
	queueBound int // explicit bound; 0 selects DefaultAdmitQueueBound
	held       int // slots currently granted
	queue      []*admitWaiter
	queuePeak  int

	tenantsMu sync.Mutex
	tenants   map[string]*tenantState
	tenantIDs atomic.Uint64

	// Global cumulative counters (atomics: token/stat readers run outside
	// the controller mutex).
	fastAdmits atomic.Uint64
	queuedTot  atomic.Uint64
	admitted   atomic.Uint64
	rejected   atomic.Uint64
	timedOut   atomic.Uint64
	degraded   atomic.Uint64
	waitNs     atomic.Uint64
	maxWait    atomic.Uint64
}

var admCtl = admitController{
	timeout: 50 * time.Millisecond,
	tenants: map[string]*tenantState{},
}

// defaultTenant accounts entries with no EnterTenant binding in scope.
var defaultTenant = admCtl.tenantFor("default")

// tenantFor returns the tenant state for name, creating it on first use.
func (c *admitController) tenantFor(name string) *tenantState {
	c.tenantsMu.Lock()
	defer c.tenantsMu.Unlock()
	if c.tenants == nil {
		c.tenants = map[string]*tenantState{}
	}
	t := c.tenants[name]
	if t == nil {
		t = &tenantState{name: name, id: c.tenantIDs.Add(1)}
		c.tenants[name] = t
		// Let the metrics registry label this tenant's counter row by
		// name; cold path, once per tenant.
		obs.RegisterTenant(t.id, name)
	}
	return t
}

// capLocked resolves the concurrent-lease bound: the explicit SetAdmitMaxTeams
// value, or the pool's idle-worker capacity expressed in default-sized teams
// — admit what the warm pool can serve, queue the rest. Called with c.mu
// held; takes poolMu (admission mu → poolMu is the one permitted order).
func (c *admitController) capLocked() int {
	if c.maxTeams > 0 {
		return c.maxTeams
	}
	poolMu.Lock()
	workers := poolCapacityLocked()
	poolMu.Unlock()
	teams := workers / DefaultThreads()
	if teams < 1 {
		teams = 1
	}
	return teams
}

func (c *admitController) queueBoundLocked() int {
	if c.queueBound > 0 {
		return c.queueBound
	}
	return DefaultAdmitQueueBound
}

// canGrantLocked reports whether tenant t may take a slot right now.
func (c *admitController) canGrantLocked(t *tenantState) bool {
	if c.held >= c.capLocked() {
		return false
	}
	if q := t.quota.Load(); q > 0 && t.held.Load() >= q {
		return false
	}
	return true
}

// grantLocked takes a slot for t.
func (c *admitController) grantLocked(t *tenantState) {
	c.held++
	t.held.Add(1)
}

// pumpLocked grants queued waiters in FIFO order while slots remain. A
// waiter whose tenant is over quota is skipped in place — it keeps its
// queue position for when its own tenant releases, and never blocks the
// tenants behind it (the starvation-free ordering invariant: global FIFO
// across tenants, per-tenant quota skips only the offender).
func (c *admitController) pumpLocked() {
	for c.held < c.capLocked() {
		granted := -1
		for i, w := range c.queue {
			if c.canGrantLocked(w.tenant) {
				granted = i
				break
			}
		}
		if granted < 0 {
			return
		}
		w := c.queue[granted]
		copy(c.queue[granted:], c.queue[granted+1:])
		c.queue[len(c.queue)-1] = nil
		c.queue = c.queue[:len(c.queue)-1]
		c.grantLocked(w.tenant)
		w.granted = true
		close(w.ready)
	}
}

// removeWaiterLocked unlinks a timed-out waiter; reports false when the
// waiter was granted before the lock was taken (the grant wins the race).
func (c *admitController) removeWaiterLocked(w *admitWaiter) bool {
	if w.granted {
		return false
	}
	for i, q := range c.queue {
		if q == w {
			copy(c.queue[i:], c.queue[i+1:])
			c.queue[len(c.queue)-1] = nil
			c.queue = c.queue[:len(c.queue)-1]
			return true
		}
	}
	return false
}

// admitGrant is the outcome of admitRegion threaded back to RegionArg.
type admitGrant struct {
	tenant   *tenantState // non-nil when a slot is held (admitExit required)
	degraded bool         // run serialized (team of one, pool bypassed)
}

// admitRegion arbitrates one top-level region entry: grant a slot (fast or
// after queueing, per policy) or degrade. Emits obs admission hooks.
func admitRegion() admitGrant {
	c := &admCtl
	tk, _ := tenantStore.Current().(*TenantToken)
	ts := defaultTenant
	if tk != nil {
		ts = tk.st
	}

	c.mu.Lock()
	if c.canGrantLocked(ts) {
		c.grantLocked(ts)
		c.mu.Unlock()
		c.fastAdmits.Add(1)
		c.admitted.Add(1)
		ts.admitted.Add(1)
		if tk != nil {
			tk.admitted.Add(1)
		}
		if h := obsHooks(); h != nil && h.AdmitGrant != nil {
			h.AdmitGrant(ts.id, 0)
		}
		return admitGrant{tenant: ts}
	}

	policy, timeout := c.policy, c.timeout
	if policy == AdmitReject || len(c.queue) >= c.queueBoundLocked() {
		reason := obs.AdmitReasonPolicy
		if policy != AdmitReject {
			reason = obs.AdmitReasonQueueFull
		}
		c.mu.Unlock()
		return refuse(c, ts, tk, reason)
	}

	w := &admitWaiter{tenant: ts, ready: make(chan struct{})}
	c.queue = append(c.queue, w)
	depth := len(c.queue)
	if depth > c.queuePeak {
		c.queuePeak = depth
	}
	c.mu.Unlock()
	c.queuedTot.Add(1)
	ts.queued.Add(1)
	if tk != nil {
		tk.queuedWaits.Add(1)
	}
	if h := obsHooks(); h != nil && h.AdmitEnqueue != nil {
		h.AdmitEnqueue(ts.id, depth)
	}

	start := time.Now()
	if policy == AdmitTimeout && timeout > 0 {
		timer := time.NewTimer(timeout)
		select {
		case <-w.ready:
			timer.Stop()
		case <-timer.C:
			c.mu.Lock()
			removed := c.removeWaiterLocked(w)
			c.mu.Unlock()
			if removed {
				c.timedOut.Add(1)
				ts.timedOut.Add(1)
				if tk != nil {
					tk.timedOut.Add(1)
				}
				return refuse(c, ts, tk, obs.AdmitReasonTimeout)
			}
			// The grant raced the timer and won; consume it.
			<-w.ready
		}
	} else {
		<-w.ready
	}
	wait := time.Since(start)
	ns := uint64(wait.Nanoseconds())
	c.waitNs.Add(ns)
	for {
		cur := c.maxWait.Load()
		if ns <= cur || c.maxWait.CompareAndSwap(cur, ns) {
			break
		}
	}
	ts.recordWait(ns)
	c.admitted.Add(1)
	ts.admitted.Add(1)
	if tk != nil {
		tk.admitted.Add(1)
	}
	if h := obsHooks(); h != nil && h.AdmitGrant != nil {
		h.AdmitGrant(ts.id, int64(ns))
	}
	return admitGrant{tenant: ts}
}

// refuse records one refused lease and returns the degraded outcome.
func refuse(c *admitController, ts *tenantState, tk *TenantToken, reason obs.AdmitReason) admitGrant {
	c.rejected.Add(1)
	c.degraded.Add(1)
	ts.rejected.Add(1)
	ts.degraded.Add(1)
	if tk != nil {
		tk.rejected.Add(1)
		tk.degraded.Add(1)
	}
	if h := obsHooks(); h != nil && h.AdmitReject != nil {
		h.AdmitReject(ts.id, reason)
	}
	return admitGrant{degraded: true}
}

// admitExit returns a slot and wakes the next eligible waiter.
func admitExit(ts *tenantState) {
	c := &admCtl
	c.mu.Lock()
	c.held--
	ts.held.Add(-1)
	c.pumpLocked()
	c.mu.Unlock()
}

// SetAdmissionControl enables or disables the admission layer, returning
// the previous setting. Disabling grants every queued waiter (their
// regions proceed with full teams; the slots release normally).
func SetAdmissionControl(on bool) bool {
	prev := admissionOn.Swap(on)
	if !on {
		c := &admCtl
		c.mu.Lock()
		for _, w := range c.queue {
			c.grantLocked(w.tenant)
			w.granted = true
			close(w.ready)
		}
		c.queue = c.queue[:0]
		c.mu.Unlock()
	}
	return prev
}

// AdmissionEnabled reports whether top-level region entries pass through
// admission control.
func AdmissionEnabled() bool { return admissionOn.Load() }

// SetAdmitPolicy sets the backpressure policy (and the queue-wait timeout,
// meaningful for AdmitTimeout), returning the previous pair. A freshly
// relaxed policy does not re-evaluate waiters already queued.
func SetAdmitPolicy(p AdmitPolicy, timeout time.Duration) (AdmitPolicy, time.Duration) {
	c := &admCtl
	c.mu.Lock()
	prevP, prevT := c.policy, c.timeout
	c.policy = p
	if timeout > 0 {
		c.timeout = timeout
	}
	c.mu.Unlock()
	return prevP, prevT
}

// SetAdmitMaxTeams bounds how many top-level regions may hold teams
// concurrently (0 restores the default, which tracks the hot-team pool
// capacity in default-sized teams). Returns the previous explicit bound.
// Raising the bound immediately grants eligible waiters.
func SetAdmitMaxTeams(n int) int {
	if n < 0 {
		n = 0
	}
	c := &admCtl
	c.mu.Lock()
	prev := c.maxTeams
	c.maxTeams = n
	c.pumpLocked()
	c.mu.Unlock()
	return prev
}

// SetAdmitQueueBound bounds the admission wait queue (0 restores
// DefaultAdmitQueueBound). Entries that would overflow the bound degrade to
// serialized execution instead of queueing — the saturation valve. Returns
// the previous explicit bound.
func SetAdmitQueueBound(n int) int {
	if n < 0 {
		n = 0
	}
	c := &admCtl
	c.mu.Lock()
	prev := c.queueBound
	c.queueBound = n
	c.mu.Unlock()
	return prev
}

// SetTenantQuota caps how many lease slots the named tenant may hold
// concurrently (0 removes the cap), returning the previous quota. Raising
// a quota immediately grants the tenant's eligible waiters.
func SetTenantQuota(name string, maxConcurrent int) int {
	if maxConcurrent < 0 {
		maxConcurrent = 0
	}
	ts := admCtl.tenantFor(name)
	prev := int(ts.quota.Swap(int32(maxConcurrent)))
	c := &admCtl
	c.mu.Lock()
	c.pumpLocked()
	c.mu.Unlock()
	return prev
}

// ------------------------------------------------------- tenant binding --

// tenantStore binds a TenantToken to the calling goroutine (and, with the
// default gls backend, to goroutines spawned in its dynamic extent).
var tenantStore = gls.NewStore()

// TenantToken is one tenant-scoped admission context, bound to the calling
// goroutine by EnterTenant. Region entries in its scope are arbitrated
// against the token's tenant and record their outcomes on the token, so a
// request handler can tell afterwards whether its regions ran at full
// width, queued first, or degraded. Outcome counters are cumulative over
// the token's lifetime (atomics: inherited bindings may enter regions
// concurrently).
type TenantToken struct {
	st  *tenantState
	tok gls.Token

	admitted    atomic.Uint32
	queuedWaits atomic.Uint32
	rejected    atomic.Uint32
	timedOut    atomic.Uint32
	degraded    atomic.Uint32
}

// EnterTenant binds the calling goroutine to the named tenant for admission
// accounting and returns the token; Exit unbinds it. Tokens nest — the
// innermost binding wins. Typical server use is one token per request:
//
//	tok := rt.EnterTenant(tenantID)
//	defer tok.Exit()
//	...woven parallel code...
//	if tok.Rejected() > 0 { /* shed load signal */ }
func EnterTenant(name string) *TenantToken {
	tk := &TenantToken{st: admCtl.tenantFor(name)}
	tk.tok = tenantStore.PushToken(tk)
	return tk
}

// Exit removes the token's goroutine binding. Must be called on the
// goroutine that called EnterTenant, after any regions in its scope have
// completed.
func (tk *TenantToken) Exit() { tenantStore.Restore(tk.tok) }

// Tenant reports the token's tenant name.
func (tk *TenantToken) Tenant() string { return tk.st.name }

// Admitted reports how many region entries in this token's scope were
// granted a team lease (fast-path or after queueing).
func (tk *TenantToken) Admitted() int { return int(tk.admitted.Load()) }

// Queued reports how many region entries in this token's scope waited in
// the admission queue before their grant.
func (tk *TenantToken) Queued() int { return int(tk.queuedWaits.Load()) }

// Rejected reports how many region entries in this token's scope were
// refused a lease (reject policy, full queue, or timeout) and ran
// serialized.
func (tk *TenantToken) Rejected() int { return int(tk.rejected.Load()) }

// TimedOut reports how many of the token's refusals were queue-wait
// timeouts.
func (tk *TenantToken) TimedOut() int { return int(tk.timedOut.Load()) }

// Degraded reports how many region entries in this token's scope ran
// serialized on the calling goroutine instead of on a full team.
func (tk *TenantToken) Degraded() int { return int(tk.degraded.Load()) }

// --------------------------------------------------------------- stats --

// TenantAdmissionStats is one tenant's slice of AdmissionStats.
type TenantAdmissionStats struct {
	Name  string // tenant name (EnterTenant argument)
	ID    uint64 // tenant id carried by obs admission hooks
	Quota int    // concurrent-slot cap; 0 = unlimited
	Held  int    // slots held right now

	Admitted  uint64 // leases granted
	Queued    uint64 // grants that waited in the queue first
	Rejected  uint64 // lease requests refused
	TimedOut  uint64 // refusals due to queue-wait timeout
	Degraded  uint64 // entries that ran serialized
	WaitNs    uint64 // total queue-wait nanoseconds
	MaxWaitNs uint64 // longest single queue wait
}

// AdmissionStats is a snapshot of the admission controller: configuration,
// instantaneous queue state, cumulative counters, and the per-tenant
// breakdown (sorted by name). Counter invariants: Admitted = FastAdmits +
// grants-after-queueing, Degraded == Rejected (every refusal degrades),
// and each tenant's Held never exceeds its Quota when one is set.
type AdmissionStats struct {
	Enabled    bool
	Policy     AdmitPolicy
	Timeout    time.Duration
	MaxTeams   int // effective concurrent-lease bound
	QueueBound int // effective wait-queue bound

	Held       int // slots granted right now
	QueueDepth int // waiters queued right now
	QueuePeak  int // deepest queue observed

	FastAdmits uint64
	Queued     uint64
	Admitted   uint64
	Rejected   uint64
	TimedOut   uint64
	Degraded   uint64
	WaitNs     uint64
	MaxWaitNs  uint64

	Tenants []TenantAdmissionStats
}

// ReadAdmissionStats snapshots the admission controller.
func ReadAdmissionStats() AdmissionStats {
	c := &admCtl
	c.mu.Lock()
	st := AdmissionStats{
		Enabled:    admissionOn.Load(),
		Policy:     c.policy,
		Timeout:    c.timeout,
		MaxTeams:   c.capLocked(),
		QueueBound: c.queueBoundLocked(),
		Held:       c.held,
		QueueDepth: len(c.queue),
		QueuePeak:  c.queuePeak,
	}
	c.mu.Unlock()
	st.FastAdmits = c.fastAdmits.Load()
	st.Queued = c.queuedTot.Load()
	st.Admitted = c.admitted.Load()
	st.Rejected = c.rejected.Load()
	st.TimedOut = c.timedOut.Load()
	st.Degraded = c.degraded.Load()
	st.WaitNs = c.waitNs.Load()
	st.MaxWaitNs = c.maxWait.Load()

	c.tenantsMu.Lock()
	for _, t := range c.tenants {
		st.Tenants = append(st.Tenants, TenantAdmissionStats{
			Name:      t.name,
			ID:        t.id,
			Quota:     int(t.quota.Load()),
			Held:      int(t.held.Load()),
			Admitted:  t.admitted.Load(),
			Queued:    t.queued.Load(),
			Rejected:  t.rejected.Load(),
			TimedOut:  t.timedOut.Load(),
			Degraded:  t.degraded.Load(),
			WaitNs:    t.waitNs.Load(),
			MaxWaitNs: t.maxWait.Load(),
		})
	}
	c.tenantsMu.Unlock()
	sort.Slice(st.Tenants, func(i, j int) bool { return st.Tenants[i].Name < st.Tenants[j].Name })
	return st
}
