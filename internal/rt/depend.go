package rt

import (
	"sync"

	"aomplib/internal/obs"
)

// This file implements dataflow task scheduling (@Depend): tasks declare
// in/out/inout clauses on address keys, and the runtime derives the
// OpenMP 4.x dependence edges from the spawn order — a task with an in
// clause waits for the previous writer of that address; a task with an
// out/inout clause waits for the previous writer and all readers since.
// Tasks with unsatisfied edges park in the team's dependence tracker
// instead of a deque; when the last predecessor retires they are released
// to the spawning worker's deque, where they are claimable and steal-safe
// like any other deferred task, so helping waits and nested teams keep
// working.

// Deps carries the dependence clauses of one spawn (@Depend{In, Out,
// InOut}). Keys are compared with ==; use addresses (&x, &a[i]) so
// distinct objects never alias. nil elements are ignored, which lets
// callers express boundary cases ("no left neighbour") without building
// fresh slices. In/out edge derivation treats Out and InOut identically;
// the split mirrors the OpenMP clauses and documents intent.
type Deps struct {
	In, Out, InOut []any
}

func (d Deps) empty() bool { return len(d.In) == 0 && len(d.Out) == 0 && len(d.InOut) == 0 }

// depNode is the dependence bookkeeping of one task: remaining predecessor
// count, successor list, and the keys it touched (for retirement cleanup).
// Nodes are recycled on a per-tracker free list so steady-state dataflow
// spawning allocates nothing. All fields are guarded by the tracker mutex.
type depNode struct {
	tr      *depTracker
	task    *task
	npred   int
	succs   []*depNode
	keys    []any
	retired bool
}

// depObj is the per-address dependence state: the last (unretired) writer
// and the readers since. Dropped — and recycled — once both are gone, so
// long-running regions don't accumulate per-address state.
type depObj struct {
	lastWriter *depNode
	readers    []*depNode
}

// depTracker is the per-team (or global) dependence graph. One mutex
// guards the whole structure: edge construction and retirement are a few
// pointer operations, and tasks heavy enough to want @Depend dwarf the
// critical sections.
type depTracker struct {
	mu        sync.Mutex
	objs      map[any]*depObj
	freeNodes []*depNode
	freeObjs  []*depObj
}

func newDepTracker() *depTracker {
	return &depTracker{objs: make(map[any]*depObj)}
}

// globalDeps orders dependent tasks spawned outside any parallel region;
// released tasks run on their own goroutines, like all out-of-region tasks.
var globalDeps = newDepTracker()

func (tr *depTracker) getNode(t *task) *depNode {
	if n := len(tr.freeNodes); n > 0 {
		nd := tr.freeNodes[n-1]
		tr.freeNodes[n-1] = nil
		tr.freeNodes = tr.freeNodes[:n-1]
		nd.task = t
		return nd
	}
	return &depNode{tr: tr, task: t}
}

func (tr *depTracker) putNode(n *depNode) {
	for i := range n.succs {
		n.succs[i] = nil
	}
	for i := range n.keys {
		n.keys[i] = nil
	}
	n.task, n.succs, n.keys = nil, n.succs[:0], n.keys[:0]
	n.npred, n.retired = 0, false
	tr.freeNodes = append(tr.freeNodes, n)
}

func (tr *depTracker) getObj() *depObj {
	if n := len(tr.freeObjs); n > 0 {
		o := tr.freeObjs[n-1]
		tr.freeObjs[n-1] = nil
		tr.freeObjs = tr.freeObjs[:n-1]
		return o
	}
	return &depObj{}
}

func (tr *depTracker) putObj(o *depObj) {
	for i := range o.readers {
		o.readers[i] = nil
	}
	o.lastWriter, o.readers = nil, o.readers[:0]
	tr.freeObjs = append(tr.freeObjs, o)
}

func (tr *depTracker) obj(key any) *depObj {
	o := tr.objs[key]
	if o == nil {
		o = tr.getObj()
		tr.objs[key] = o
	}
	return o
}

// edge records pred → n. Duplicate edges (two clauses meeting the same
// predecessor) are fine: the increment and the retirement decrement stay
// symmetric.
func edge(pred, n *depNode) {
	pred.succs = append(pred.succs, n)
	n.npred++
}

// enqueue registers t's dependence clauses, building edges from the
// not-yet-retired predecessors the clauses imply. It reports whether the
// task is immediately runnable; if not, the task has been parked (the
// tracker inherits the queue reference) and will be released to the
// spawner's deque when its last predecessor retires.
func (tr *depTracker) enqueue(t *task, d Deps) bool {
	tr.mu.Lock()
	n := tr.getNode(t)
	t.node = n
	for _, k := range d.In {
		if k == nil {
			continue
		}
		o := tr.obj(k)
		n.keys = append(n.keys, k)
		if w := o.lastWriter; w != nil && !w.retired {
			edge(w, n)
		}
		o.readers = append(o.readers, n)
	}
	tr.writeClause(n, d.Out)
	tr.writeClause(n, d.InOut)
	ready := n.npred == 0
	if !ready {
		t.state.Store(taskParked)
	}
	tr.mu.Unlock()
	return ready
}

// writeClause applies one out/inout key list: the node waits for the last
// writer and every reader since, then becomes the last writer itself.
func (tr *depTracker) writeClause(n *depNode, keys []any) {
	for _, k := range keys {
		if k == nil {
			continue
		}
		o := tr.obj(k)
		n.keys = append(n.keys, k)
		if w := o.lastWriter; w != nil && !w.retired {
			edge(w, n)
		}
		for _, r := range o.readers {
			if r != n && !r.retired {
				edge(r, n)
			}
		}
		for i := range o.readers {
			o.readers[i] = nil
		}
		o.readers = o.readers[:0]
		o.lastWriter = n
	}
}

// retire finalises n after its task executed: per-address state it pinned
// is cleaned up, each successor loses one predecessor, and successors that
// reach zero are released. Runs for panicking tasks too (task.retire is
// deferred), so a failing predecessor releases — never deadlocks — its
// successors.
func (tr *depTracker) retire(n *depNode) {
	tr.mu.Lock()
	n.retired = true
	for _, k := range n.keys {
		o := tr.objs[k]
		if o == nil {
			continue
		}
		for i, r := range o.readers {
			if r == n {
				last := len(o.readers) - 1
				o.readers[i] = o.readers[last]
				o.readers[last] = nil
				o.readers = o.readers[:last]
				break
			}
		}
		if o.lastWriter == n {
			o.lastWriter = nil
		}
		if o.lastWriter == nil && len(o.readers) == 0 {
			delete(tr.objs, k)
			tr.putObj(o)
		}
	}
	for _, s := range n.succs {
		s.npred--
		if s.npred == 0 {
			tr.releaseLocked(s.task)
		}
	}
	tr.putNode(n)
	tr.mu.Unlock()
}

// releaseLocked makes a fully-satisfied parked task runnable: team tasks
// are pushed to their spawning worker's deque (claimable and steal-safe
// from there), global-scope tasks get their own goroutine. Called with
// tr.mu held; the deque and group locks nest strictly inside it.
func (tr *depTracker) releaseLocked(t *task) {
	if !t.unpark() {
		return
	}
	if h := obsHooks(); h != nil && h.DepRelease != nil {
		h.DepRelease(curGID(), t.traceID)
	}
	if w := t.spawner; w != nil {
		w.deque.push(t)
		t.group.notify()
		return
	}
	if t.claim() {
		go func() {
			t.exec()
			t.decRef()
		}()
	}
}

// SpawnDep runs body asynchronously under the caller's task scope, ordered
// after the previously spawned tasks its dependence clauses conflict with
// (@Task + @Depend). With empty clauses it is exactly Spawn.
func SpawnDep(body func(), d Deps) {
	if d.empty() {
		Spawn(body)
		return
	}
	if w := Current(); w != nil && !w.Team.completed.Load() {
		g := w.spawnGroup()
		g.Add(1)
		t := newTask(body, g, w)
		if h := obsHooks(); h != nil {
			stampTask(h, t, w, obs.TaskDependent)
		}
		if w.Team.depTracker().enqueue(t, d) {
			w.deque.push(t)
			g.notify()
			if w.Team.completed.Load() && t.claim() {
				// Team died between the entry check and the push; the
				// spawner's reference transfers to the rescue goroutine.
				go func() {
					t.exec()
					t.decRef()
				}()
				return
			}
		}
		t.decRef()
		return
	}
	globalTasks.Add(1)
	t := newTask(body, globalTasks, nil)
	if globalDeps.enqueue(t, d) && t.claim() {
		// The tracker/queue reference transfers to the goroutine; the
		// spawner reference is dropped below.
		go func() {
			t.exec()
			t.decRef()
		}()
	}
	t.decRef()
}

// SpawnFutureDep is SpawnFuture with dependence clauses: the future's
// producer runs after its predecessors, and the getter remains a safe
// synchronisation point — a getter reaching a still-parked producer helps
// execute other tasks (including, transitively, the predecessors) instead
// of running the producer early.
func SpawnFutureDep(fn func() any, d Deps) *Future {
	if d.empty() {
		return SpawnFuture(fn)
	}
	f := NewFuture()
	resolve := func() {
		f.val = fn()
		close(f.done)
	}
	if w := Current(); w != nil && !w.Team.completed.Load() {
		g := w.spawnGroup()
		g.Add(1)
		t := &task{fn: resolve, group: g, spawner: w} // retained by f: never pooled
		t.refs.Store(2)
		f.task = t
		if h := obsHooks(); h != nil {
			stampTask(h, t, w, obs.TaskFutureDependent)
		}
		if w.Team.depTracker().enqueue(t, d) {
			w.deque.push(t)
			g.notify()
			if w.Team.completed.Load() && t.claim() {
				go t.exec()
				return f
			}
		}
		return f
	}
	globalTasks.Add(1)
	t := &task{fn: resolve, group: globalTasks}
	t.refs.Store(2)
	f.task = t
	if globalDeps.enqueue(t, d) && t.claim() {
		go t.exec()
	}
	return f
}

// TaskGroupScope executes body and then waits for every task spawned in
// its dynamic extent — including tasks spawned by those tasks — to
// complete (@TaskGroup). The wait runs even when body panics, so no task
// outlives its scope; the waiting worker helps execute queued team tasks,
// like every scheduling point. Outside parallel regions the scope degrades
// to a global task join, matching @TaskWait.
func TaskGroupScope(body func()) {
	w := Current()
	if w == nil {
		defer globalTasks.Wait()
		body()
		return
	}
	g := newScopedGroup(w.spawnGroup())
	prev := w.curGroup.Swap(g)
	defer func() {
		w.curGroup.Store(prev)
		g.helpWait(w)
	}()
	body()
}
