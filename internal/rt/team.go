package rt

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"aomplib/internal/gls"
)

// current holds the per-goroutine stack of worker contexts. Parallel
// regions push a Worker on each participating goroutine; nested regions
// stack naturally.
var current = gls.NewStore()

// glsContexts counts live worker registrations, so Current can answer
// "no parallel region anywhere" with one atomic load — keeping woven
// calls in sequential programs at direct-call cost.
var glsContexts atomic.Int64

// Current returns the Worker executing on this goroutine, or nil when the
// caller is outside any parallel region (sequential part of the program).
func Current() *Worker {
	if glsContexts.Load() > 0 {
		if v := current.Current(); v != nil {
			return v.(*Worker)
		}
	}
	return nil
}

// ThreadID reports the id of the calling worker within its (innermost)
// team, or 0 outside parallel regions — the paper's getThreadId().
func ThreadID() int {
	if w := Current(); w != nil {
		return w.ID
	}
	return 0
}

// NumThreads reports the size of the calling worker's team, or 1 outside
// parallel regions.
func NumThreads() int {
	if w := Current(); w != nil {
		return w.Team.Size
	}
	return 1
}

// DefaultThreads is the team size used when a parallel region does not
// specify one; it mirrors OpenMP's default of one thread per available
// processor.
func DefaultThreads() int { return runtime.GOMAXPROCS(0) }

// Team is a team of workers executing one parallel region entry.
type Team struct {
	// Size is the number of workers (master included).
	Size int
	// Level is the region nesting depth (outermost region = 1).
	Level int
	// Parent is the worker that entered the region (nil at the outermost
	// level when entered from sequential code).
	Parent *Worker

	barrier *Barrier
	tasks   *TaskGroup

	mu         sync.Mutex
	constructs map[any]map[int64]*instanceSlot
}

type instanceSlot struct {
	state    any
	released int
}

// Worker is one activity in a team. Exported fields are safe to read from
// the worker's own goroutine; maps are worker-private.
type Worker struct {
	ID   int
	Team *Team

	encounters map[any]int64
	activeFor  []*ForContext // stack: nested work-sharing contexts
	tls        map[any]any   // thread-local values keyed by construct identity
}

// Barrier returns the team barrier.
func (t *Team) Barrier() *Barrier { return t.barrier }

// Tasks returns the team task group (joined by @TaskWait and at region end).
func (t *Team) Tasks() *TaskGroup { return t.tasks }

// Region executes body with a team of n workers, reproducing paper Fig. 9:
// the caller becomes worker 0 (the master), n-1 goroutines are spawned,
// each establishes its worker context and runs body, and the master joins
// all spawned workers before returning. Any panic raised by a worker is
// re-raised on the master after the join, so failures cannot be lost.
//
// n < 1 selects DefaultThreads(). Nested calls create a fresh inner team,
// as the library "also supports nested parallel regions".
func Region(n int, body func(w *Worker)) {
	if n < 1 {
		n = DefaultThreads()
	}
	parent := Current()
	level := 1
	if parent != nil {
		level = parent.Team.Level + 1
	}
	team := &Team{
		Size:       n,
		Level:      level,
		Parent:     parent,
		barrier:    NewBarrier(n),
		tasks:      NewTaskGroup(),
		constructs: make(map[any]map[int64]*instanceSlot),
	}

	var (
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicVal any
		panicked bool
	)
	run := func(w *Worker) {
		defer func() {
			if r := recover(); r != nil {
				panicMu.Lock()
				if !panicked {
					panicked, panicVal = true, r
				}
				panicMu.Unlock()
			}
		}()
		glsContexts.Add(1)
		current.Push(w)
		defer func() {
			current.Pop()
			glsContexts.Add(-1)
		}()
		body(w)
	}

	for i := 1; i < n; i++ {
		w := newWorker(i, team)
		wg.Add(1)
		go func() {
			defer wg.Done()
			run(w)
		}()
	}
	master := newWorker(0, team)
	run(master)
	wg.Wait()
	// Join any tasks spawned in the region that were not explicitly waited
	// for, so the region's synchronisation point is complete.
	team.tasks.Wait()
	if panicked {
		panic(panicVal)
	}
}

func newWorker(id int, t *Team) *Worker {
	return &Worker{
		ID:         id,
		Team:       t,
		encounters: make(map[any]int64),
		tls:        make(map[any]any),
	}
}

// NextEncounter returns this worker's encounter index for the construct
// identified by key, incrementing it. Work-sharing and single constructs
// use matching encounter indices across workers to share per-encounter
// state; this requires — as in OpenMP — that such constructs are
// encountered by all workers of the team or by none.
func (w *Worker) NextEncounter(key any) int64 {
	n := w.encounters[key]
	w.encounters[key] = n + 1
	return n
}

// Instance returns the shared state for encounter enc of construct key,
// creating it with factory on first arrival. All workers of the team
// observe the same state value for the same (key, enc) pair.
func (t *Team) Instance(key any, enc int64, factory func() any) any {
	t.mu.Lock()
	byEnc := t.constructs[key]
	if byEnc == nil {
		byEnc = make(map[int64]*instanceSlot)
		t.constructs[key] = byEnc
	}
	slot := byEnc[enc]
	if slot == nil {
		slot = &instanceSlot{state: factory()}
		byEnc[enc] = slot
	}
	st := slot.state
	t.mu.Unlock()
	return st
}

// Release marks the calling worker as done with encounter enc of construct
// key; when all workers have released it the state is dropped, bounding
// memory across the many encounters of long-running regions.
func (t *Team) Release(key any, enc int64) {
	t.mu.Lock()
	if byEnc := t.constructs[key]; byEnc != nil {
		if slot := byEnc[enc]; slot != nil {
			slot.released++
			if slot.released >= t.Size {
				delete(byEnc, enc)
				if len(byEnc) == 0 {
					delete(t.constructs, key)
				}
			}
		}
	}
	t.mu.Unlock()
}

// pendingInstances reports construct instances not yet fully released
// (diagnostics/tests only).
func (t *Team) pendingInstances() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, byEnc := range t.constructs {
		n += len(byEnc)
	}
	return n
}

// String implements fmt.Stringer for diagnostics.
func (w *Worker) String() string {
	return fmt.Sprintf("worker %d/%d (level %d)", w.ID, w.Team.Size, w.Team.Level)
}
