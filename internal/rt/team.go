package rt

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"aomplib/internal/gls"
	"aomplib/internal/obs"
)

// current holds the per-goroutine stack of worker contexts. Parallel
// regions push a Worker on each participating goroutine; nested regions
// stack naturally. With the default gls backend the binding extends to
// goroutines spawned inside the region's dynamic extent.
var current = gls.NewStore()

// glsContexts counts live worker registrations, so Current can answer
// "no parallel region anywhere" with one atomic load — keeping woven
// calls in sequential programs at direct-call cost even under the
// portable gls backend, whose per-goroutine lookup is comparatively slow.
// Hot-team workers register only for the duration of a lease round; while
// parked they hold no binding, so sequential code between regions keeps
// the fast path.
var glsContexts atomic.Int64

// Current returns the Worker executing on this goroutine, or nil when the
// caller is outside any parallel region (sequential part of the program).
func Current() *Worker {
	if glsContexts.Load() > 0 {
		if v := current.Current(); v != nil {
			return v.(*Worker)
		}
	}
	return nil
}

// ThreadID reports the id of the calling worker within its (innermost)
// team, or 0 outside parallel regions — the paper's getThreadId().
func ThreadID() int {
	if w := Current(); w != nil {
		return w.ID
	}
	return 0
}

// NumThreads reports the size of the calling worker's team, or 1 outside
// parallel regions.
func NumThreads() int {
	if w := Current(); w != nil {
		return w.Team.Size
	}
	return 1
}

// Level reports the parallel-region nesting depth at the caller: 0 outside
// any region, 1 inside an outermost region, and so on.
func Level() int {
	if w := Current(); w != nil {
		return w.Team.Level()
	}
	return 0
}

// defaultThreads holds the explicitly set process-wide default team size
// — the size used by parallel regions that do not specify one. 0 means
// "unset": follow GOMAXPROCS live, so programs that resize it (cgroup
// quota libraries, runtime.GOMAXPROCS in main) keep getting
// correctly-sized teams. Once set, region entry reads one atomic instead
// of re-deriving anything.
var defaultThreads atomic.Int32

// DefaultThreads returns the team size used when a parallel region does
// not specify one: the SetDefaultThreads override, or one thread per
// available processor (OpenMP's default).
func DefaultThreads() int {
	if n := defaultThreads.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// SetDefaultThreads sets the process-wide default team size atomically,
// returning the previously stored override — 0 when the default was
// GOMAXPROCS-tracking. Returning the raw value (not the effective one)
// keeps the save/restore idiom `prev := SetDefaultThreads(n); ...;
// SetDefaultThreads(prev)` round-tripping exactly: restoring a 0 restores
// live GOMAXPROCS tracking instead of pinning its current reading.
func SetDefaultThreads(n int) int {
	if n < 1 {
		n = 0
	}
	return int(defaultThreads.Swap(int32(n)))
}

// nestedOff gates nested parallel regions (the analogue of OMP_NESTED).
// Nesting is enabled by default; when disabled, a Region entered from
// inside a team runs serialized — a fresh inner team of one worker — so
// ThreadID/NumThreads/barriers keep consistent inner-team semantics either
// way. The zero value means "enabled" so the gate costs one atomic load.
var nestedOff atomic.Bool

// SetNested enables or disables nested parallel regions, returning the
// previous setting.
func SetNested(on bool) bool { return !nestedOff.Swap(!on) }

// NestedEnabled reports whether nested parallel regions spawn real teams.
func NestedEnabled() bool { return !nestedOff.Load() }

// Team is a long-lived team of workers. One team serves many parallel
// region entries over its lifetime: each entry leases the team (from the
// hot-team pool, or cold-spawned), runs one lease round on its workers,
// and either recycles the team into the pool or retires it (pool.go).
type Team struct {
	// Size is the number of workers (master included). It is fixed for
	// the team's lifetime and is the pool's cache key.
	Size int
	// tid is the team's process-unique observability identity, carried by
	// every trace event the team's lifecycle emits.
	tid uint64
	// level is the region nesting depth of the current lease (outermost
	// region = 1). Atomic — with hot teams it is rewritten per lease, and
	// goroutines that outlived an earlier lease may still query it
	// through a stale worker context; they get the current lease's value
	// (stale-but-defined), never a data race.
	level atomic.Int32
	// parent is the worker that entered the current lease's region (nil
	// at the outermost level when entered from sequential code). Atomic
	// for the same reason as level.
	parent atomic.Pointer[Worker]

	// workers lists all team members (index == Worker.ID); it is what
	// task stealing iterates over. Immutable after newTeam.
	workers []*Worker

	barrier *Barrier

	// completed flips once the current lease has fully joined; spawns
	// observed after that fall back to the global (goroutine-per-task)
	// scope until the next lease begins.
	completed atomic.Bool

	// epoch counts leases served by this team. State recorded against a
	// team during one region entry (e.g. thread-local drains) is keyed by
	// (team, epoch) so reuse cannot conflate entries.
	epoch atomic.Uint64

	// Lease round state: body/arg are what every worker of the round
	// executes, wg joins the non-master workers. (Re)written by beginLease
	// before workers wake; the wake-channel send orders the writes against
	// worker reads.
	body func(*Worker, any)
	arg  any
	wg   sync.WaitGroup

	// poisoned marks a team one of whose workers escaped a lease round via
	// runtime.Goexit — its goroutine is gone, so the team must be retired,
	// never recycled. Panics do not poison (the worker survives them), but
	// a panicked lease also retires its team (pool.go).
	poisoned atomic.Bool
	// retired guards double-destruction; a team reaches destroy exactly
	// once — from its lease holder or from a pool drain.
	retired bool

	panicMu  sync.Mutex
	panicVal any
	panicked bool

	mu         sync.Mutex
	tasks      *TaskGroup  // lazily created on first task spawn/wait
	deps       *depTracker // lazily created on first @Depend spawn
	constructs map[any]map[int64]*instanceSlot

	// adapt is the per-construct adaptive scheduling state (adapt.go),
	// keyed by the for construct's identity. Unlike constructs it is
	// deliberately NOT cleared by beginLease: hot teams make loop
	// encounters persistent across region entries, and that persistence is
	// exactly what lets a re-encountered loop re-tune its schedule from
	// the previous encounter's measured imbalance. Guarded by mu (all
	// access happens inside BeginFor's Instance factory, which runs under
	// mu); bounded by maxAdaptLoops.
	adapt map[any]*loopAdapt
	// weights is the reusable scratch buffer speedWeightsLocked fills with
	// worker speed estimates when carving a weighted-steal partition.
	// Guarded by mu; never retained by the dispenser.
	weights []float64
}

type instanceSlot struct {
	state    any
	released int
}

// Worker is one activity in a team. Exported fields are safe to read from
// the worker's own goroutine; maps are worker-private and lazily created.
type Worker struct {
	ID   int
	Team *Team
	// gid is the worker's process-unique observability identity — the
	// trace track its events land on. Stable across leases.
	gid obs.WorkerID

	deque deque         // pending deferred tasks (stealable by siblings)
	rng   atomic.Uint64 // steal-victim selection state

	// slot is the worker's reusable goroutine-local binding, pushed for
	// the duration of each lease round; reuse keeps warm region entries
	// free of gls allocations.
	slot *gls.Slot
	// wake parks the worker goroutine between leases (nil for the master,
	// who always runs on the entering goroutine). A send dispatches one
	// lease round; closing the channel retires the goroutine.
	wake chan struct{}

	encounters map[any]int64
	activeFor  []*ForContext // stack: nested work-sharing contexts
	tls        map[any]any   // thread-local values keyed by construct identity
	fcFree     []*ForContext // recycled work-sharing contexts

	// curGroup is the innermost @TaskGroup scope active on this worker;
	// spawned tasks join it instead of the team group, and executing a
	// task adopts its group so descendants join the same scope. Atomic
	// because goroutines with inherited worker context may share w.
	curGroup atomic.Pointer[TaskGroup]

	// speed is the worker's measured loop throughput — an EWMA of
	// iterations per nanosecond across for-construct shares, stored as
	// float64 bits (adapt.go). The owner stores it at each EndFor; the
	// first-arriving worker of a weighted-steal encounter reads every
	// sibling's to carve the initial ranges. It lives on its own cache
	// line so those cross-worker reads never drag the deque or rng lines
	// into coherence traffic, and it survives leases — hot teams are what
	// make the estimate trainable at all.
	_     [64]byte
	speed atomic.Uint64
	_     [56]byte
}

// Barrier returns the team barrier.
func (t *Team) Barrier() *Barrier { return t.barrier }

// Epoch reports how many region entries this team has served. Within one
// entry it is stable; state keyed by (team, epoch) cannot leak between
// entries of a reused team.
func (t *Team) Epoch() uint64 { return t.epoch.Load() }

// Tasks returns the team task group (joined by @TaskWait and at region
// end), creating it on first use so task-free regions pay nothing.
func (t *Team) Tasks() *TaskGroup {
	t.mu.Lock()
	if t.tasks == nil {
		t.tasks = NewTaskGroup()
	}
	g := t.tasks
	t.mu.Unlock()
	return g
}

// tasksIfAny returns the team task group if any task activity created it.
func (t *Team) tasksIfAny() *TaskGroup {
	t.mu.Lock()
	g := t.tasks
	t.mu.Unlock()
	return g
}

// depTracker returns the team's dependence tracker (@Depend bookkeeping),
// creating it on first use so dependence-free regions pay nothing. The
// tracker — and its node/object free lists — carries across leases, one
// of the reuse wins for region-per-iteration dataflow programs.
func (t *Team) depTracker() *depTracker {
	t.mu.Lock()
	if t.deps == nil {
		t.deps = newDepTracker()
	}
	d := t.deps
	t.mu.Unlock()
	return d
}

// Level reports the region nesting depth of the team's current lease
// (outermost region = 1).
func (t *Team) Level() int { return int(t.level.Load()) }

// Parent returns the worker that entered the current lease's region, or
// nil at the outermost level (or between leases).
func (t *Team) Parent() *Worker { return t.parent.Load() }

// ParentTeam returns the team enclosing this one, or nil at the outermost
// level — the team lineage behind nested parallel regions.
func (t *Team) ParentTeam() *Team {
	if p := t.parent.Load(); p != nil {
		return p.Team
	}
	return nil
}

// Root returns the outermost team of this team's lineage.
func (t *Team) Root() *Team {
	for t.ParentTeam() != nil {
		t = t.ParentTeam()
	}
	return t
}

// Region executes body with a team of n workers, reproducing paper Fig. 9:
// the caller becomes worker 0 (the master), n-1 workers run body on their
// own goroutines, each establishes its worker context, and the master
// joins all workers before returning. Any panic raised by a worker is
// re-raised on the master after the join, so failures cannot be lost.
//
// With hot teams (the default), the workers are leased from a process-wide
// pool of parked goroutines and returned to it afterwards, so
// region-per-iteration programs do not pay goroutine spawn/join per entry;
// SetHotTeams(false) restores the spawn-and-discard behaviour. Either way
// each entry observes a fresh team: encounter counters, thread-locals and
// task scopes start empty.
//
// n < 1 selects DefaultThreads(). Nested calls create a fresh inner team,
// as the library "also supports nested parallel regions"; with nesting
// disabled (SetNested(false)) the inner team has a single worker. The
// region's end is a task scheduling point: every worker drains the team's
// deferred tasks before the join completes.
func Region(n int, body func(w *Worker)) {
	RegionArg(n, plainBody, body)
}

// plainBody adapts Region's closure form to the argument-carrying form
// without allocating (func values are pointer-shaped).
func plainBody(w *Worker, arg any) { arg.(func(*Worker))(w) }

// RegionArg is Region with the body's state threaded through an explicit
// argument: body is typically a long-lived function and arg a pooled
// per-entry struct. This split keeps warm region entries allocation-free —
// a per-entry closure would escape to the heap on every call because the
// team stores it for its workers.
func RegionArg(n int, body func(w *Worker, arg any), arg any) {
	if n < 1 {
		n = DefaultThreads()
	}
	parent := Current()
	level := 1
	if parent != nil {
		level = parent.Team.Level() + 1
		if !NestedEnabled() {
			n = 1
		}
	}
	pooled := true
	if parent == nil && admissionOn.Load() {
		// Top-level entries pass through multi-tenant admission; nested
		// entries ride the slot their top-level region already holds (and
		// must never queue — a wait inside a held slot could deadlock).
		g := admitRegion()
		if g.degraded {
			// Refused a lease: degrade gracefully — run serialized on a
			// cold team of one that bypasses the pool, so saturation
			// traffic cannot thrash warm full-width teams out of it.
			n = 1
			pooled = false
		}
		if g.tenant != nil {
			// Deferred (not inlined into the two completion paths below) so
			// the slot releases exactly once on every exit: normal return,
			// re-raised worker panic, and master Goexit.
			defer admitExit(g.tenant)
		}
	}
	var t *Team
	if pooled {
		t = acquireTeam(n)
	} else {
		t = bypassTeam(n)
	}
	t.beginLease(parent, level, body, arg)
	if h := obsHooks(); h != nil && h.RegionFork != nil {
		h.RegionFork(t.workers[0].gid, t.tid, level, n)
	}
	finished := false
	defer func() {
		if !finished {
			// The master escaped the lease via runtime.Goexit (worker
			// panics are recorded, never propagated, by runWorker): join
			// the workers' round, drain stragglers so queued futures still
			// resolve, then retire the team — its lease never completed,
			// so it must not be recycled. The retirement itself is
			// deferred one level deeper: a drained straggler task may
			// itself call runtime.Goexit, and aborting this cleanup
			// before the retire would leak the parked worker goroutines
			// and leave completed=false on an undrainable team.
			defer func() {
				t.completed.Store(true)
				t.emitRegionJoin(level)
				t.endLease()
				retireTeam(t)
			}()
			t.wg.Wait()
			t.drainStragglers(t.workers[0])
		}
	}()
	for i := 1; i < n; i++ {
		t.workers[i].wake <- struct{}{}
	}
	t.runWorker(t.workers[0])
	t.wg.Wait()
	t.drainStragglers(t.workers[0])
	finished = true
	t.completed.Store(true)
	t.emitRegionJoin(level)
	t.panicMu.Lock()
	panicked, panicVal := t.panicked, t.panicVal
	t.panicMu.Unlock()
	t.endLease()
	switch {
	case panicked || t.poisoned.Load():
		retireTeam(t)
	case pooled:
		releaseTeam(t)
	default:
		// Degraded admission entry: its one-worker team bypassed the pool
		// on the way in and is simply discarded on the way out.
		t.destroy()
	}
	if panicked {
		panic(panicVal)
	}
}

// emitRegionJoin reports the region's full join to an installed tool.
func (t *Team) emitRegionJoin(level int) {
	if h := obsHooks(); h != nil && h.RegionJoin != nil {
		h.RegionJoin(t.workers[0].gid, t.tid, level)
	}
}

// beginLease prepares a team — fresh or cached — for one region entry.
// The per-worker reset restores the observable state of a brand-new team
// (encounter counters, thread-locals and task scopes start empty, so a
// reused team is indistinguishable from a cold-spawned one) while the
// expensive structure — goroutines, deques, barrier, task group, the
// dependence tracker and its free lists — carries over. The writes here
// happen before any worker runs: the wake-channel send orders them for
// the spawned workers, and the master reads them on the entering
// goroutine itself.
//
// The map clears assume no goroutine outside the lease touches
// worker-private state. That is the standing work-sharing contract
// (constructs are encountered by all workers of a team or by none, within
// the region): a goroutine that outlived its region entry may still
// Spawn — the deque and group paths are lock/atomic-protected; with the
// team idle or retired the completed flag routes the task to the rescue
// goroutine, and with the team re-leased (completed freshly false) the
// task simply joins the current entry and is drained by its join — but
// running work-sharing, single/master or thread-local constructs from
// such a goroutine was already an encounter-contract violation on
// throwaway teams and is undefined on reused ones.
func (t *Team) beginLease(parent *Worker, level int, body func(*Worker, any), arg any) {
	t.parent.Store(parent)
	t.level.Store(int32(level))
	t.body, t.arg = body, arg
	t.epoch.Add(1)
	t.completed.Store(false)
	t.panicMu.Lock()
	t.panicked, t.panicVal = false, nil
	t.panicMu.Unlock()
	t.wg.Add(t.Size - 1)
	for _, w := range t.workers {
		clear(w.encounters)
		clear(w.tls)
		w.activeFor = w.activeFor[:0]
		w.curGroup.Store(nil)
	}
	// t.adapt and the workers' speed estimates deliberately survive the
	// reset: they are the cross-lease memory that adaptive scheduling and
	// weighted stealing learn from (adapt.go).
}

// endLease drops the lease's references so a cached team pins neither the
// region body, its argument, nor the parent lineage between entries.
func (t *Team) endLease() {
	t.body, t.arg = nil, nil
	t.parent.Store(nil)
}

// recordPanic stores the first panic of the current lease round.
func (t *Team) recordPanic(r any) {
	t.panicMu.Lock()
	if !t.panicked {
		t.panicked, t.panicVal = true, r
	}
	t.panicMu.Unlock()
}

// runWorker executes one lease round on w: establish the worker context,
// run the body, then help drain the team's deferred tasks (the implicit
// region-end scheduling point). A panic is recorded for the master to
// re-raise after the join; it never unwinds past this frame, so a pooled
// worker goroutine survives to serve later leases.
func (t *Team) runWorker(w *Worker) {
	defer func() {
		if r := recover(); r != nil {
			t.recordPanic(r)
		}
	}()
	glsContexts.Add(1)
	tok := current.PushSlot(w.slot)
	defer func() {
		current.Restore(tok)
		glsContexts.Add(-1)
	}()
	if h := obsHooks(); h != nil {
		// The end emit is deferred so a panicking or Goexit-ing share still
		// closes its slice; the drain tolerates the missing end either way.
		if h.ImplicitBegin != nil {
			h.ImplicitBegin(w.gid, t.tid, t.Level())
		}
		if h.ImplicitEnd != nil {
			defer h.ImplicitEnd(w.gid, t.tid)
		}
	}
	t.body(w, t.arg)
	// Implicit region-end join for deferred tasks: each worker helps
	// execute queued tasks (its own, then stolen) until none remain
	// anywhere in the team.
	if g := t.tasksIfAny(); g != nil {
		g.helpWait(w)
	}
}

// workerLoop is the persistent goroutine behind one non-master worker:
// park on the wake channel, serve one lease round, park again. Closing
// the channel retires the goroutine. If a round escapes through
// runtime.Goexit — which recover cannot intercept — the deferred check
// still signals the join and poisons the team, so the lease holder
// retires it instead of recycling a team with a dead worker.
func (t *Team) workerLoop(w *Worker) {
	for range w.wake {
		roundDone := false
		func() {
			defer func() {
				if !roundDone {
					t.poisoned.Store(true)
				}
				t.wg.Done()
			}()
			t.runWorker(w)
			roundDone = true
		}()
		if !roundDone {
			return
		}
	}
}

// drainStragglers runs, on the master, any task still queued after the
// join — stragglers spawned from goroutines that inherited a worker
// context around the join, or tasks left behind because worker quiesces
// were skipped by a panic. Futures must resolve even when the region
// fails, and a team must be quiescent before it is recycled or retired;
// a panicking task is recorded like a worker panic and the drain resumes,
// so cleanup always completes and the first panic re-raises.
func (t *Team) drainStragglers(master *Worker) {
	g := t.tasksIfAny()
	if g == nil {
		return
	}
	glsContexts.Add(1)
	tok := current.PushSlot(master.slot)
	// Deferred, not straight-line: a drained task may exit via
	// runtime.Goexit, and skipping the Restore would leave glsContexts
	// permanently raised (killing the sequential fast path) and the
	// master slot on the chain — which the retry drain in RegionArg's
	// Goexit defer would then push onto itself.
	defer func() {
		current.Restore(tok)
		glsContexts.Add(-1)
	}()
	for {
		clean := true
		func() {
			defer func() {
				if r := recover(); r != nil {
					clean = false
					t.recordPanic(r)
				}
			}()
			g.helpWait(master)
		}()
		if clean {
			break
		}
	}
}

// newTeam builds a team of n workers whose n-1 non-master goroutines are
// spawned immediately and parked awaiting their first lease.
func newTeam(n int) *Team {
	t := &Team{
		Size:    n,
		tid:     teamTIDs.Add(1),
		barrier: NewBarrier(n),
		workers: make([]*Worker, n),
	}
	t.barrier.owner = t
	for i := 0; i < n; i++ {
		t.workers[i] = newWorker(i, t)
	}
	for i := 1; i < n; i++ {
		w := t.workers[i]
		w.wake = make(chan struct{}, 1)
		go t.workerLoop(w)
	}
	return t
}

// destroy retires a team: the worker goroutines are released (their wake
// channels close) and the team is dropped for collection.
func (t *Team) destroy() {
	if t.retired {
		return
	}
	t.retired = true
	if h := obsHooks(); h != nil && h.TeamRetire != nil {
		h.TeamRetire(t.tid, t.Size)
	}
	for _, w := range t.workers[1:] {
		close(w.wake)
	}
}

func newWorker(id int, t *Team) *Worker {
	w := &Worker{ID: id, Team: t, gid: obs.WorkerID(workerGIDs.Add(1) - 1)}
	w.rng.Store(uint64(id)*0x9e3779b97f4a7c15 + 0x1234567887654321)
	w.slot = current.NewSlot(w)
	return w
}

// NextEncounter returns this worker's encounter index for the construct
// identified by key, incrementing it. Work-sharing and single constructs
// use matching encounter indices across workers to share per-encounter
// state; this requires — as in OpenMP — that such constructs are
// encountered by all workers of the team or by none. Counters reset at
// each lease, so every region entry starts from encounter 0 exactly as on
// a fresh team.
func (w *Worker) NextEncounter(key any) int64 {
	if w.encounters == nil {
		w.encounters = make(map[any]int64)
	}
	n := w.encounters[key]
	w.encounters[key] = n + 1
	return n
}

// Instance returns the shared state for encounter enc of construct key,
// creating it with factory on first arrival. All workers of the team
// observe the same state value for the same (key, enc) pair.
func (t *Team) Instance(key any, enc int64, factory func() any) any {
	t.mu.Lock()
	if t.constructs == nil {
		t.constructs = make(map[any]map[int64]*instanceSlot)
	}
	byEnc := t.constructs[key]
	if byEnc == nil {
		byEnc = make(map[int64]*instanceSlot)
		t.constructs[key] = byEnc
	}
	slot := byEnc[enc]
	if slot == nil {
		slot = &instanceSlot{state: factory()}
		byEnc[enc] = slot
	}
	st := slot.state
	t.mu.Unlock()
	return st
}

// Release marks the calling worker as done with encounter enc of construct
// key; when all workers have released it the state is dropped, bounding
// memory across the many encounters of long-running regions. Instance and
// Release always pair within one lease (construct encounters cannot span
// region entries), so reuse inherits an empty construct table.
func (t *Team) Release(key any, enc int64) {
	t.mu.Lock()
	if byEnc := t.constructs[key]; byEnc != nil {
		if slot := byEnc[enc]; slot != nil {
			slot.released++
			if slot.released >= t.Size {
				delete(byEnc, enc)
				if len(byEnc) == 0 {
					delete(t.constructs, key)
				}
			}
		}
	}
	t.mu.Unlock()
}

// pendingInstances reports construct instances not yet fully released
// (diagnostics/tests only).
func (t *Team) pendingInstances() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, byEnc := range t.constructs {
		n += len(byEnc)
	}
	return n
}

// String implements fmt.Stringer for diagnostics.
func (w *Worker) String() string {
	return fmt.Sprintf("worker %d/%d (level %d)", w.ID, w.Team.Size, w.Team.Level())
}
